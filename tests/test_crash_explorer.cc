/**
 * @file
 * Tests for the systematic crash explorer: on correctly-durable
 * applications every explored crash recovers exactly the committed
 * prefix; on buggy builds the explorer demonstrates real data loss;
 * step-stride exploration exercises torn intermediate states.
 */

#include <gtest/gtest.h>

#include "apps/pclht.hh"
#include "apps/pmlog.hh"
#include "pmcheck/crash_explorer.hh"
#include "test_util.hh"

namespace hippo::test
{

using pmcheck::CrashExplorerConfig;
using pmcheck::exploreCrashes;

TEST(CrashExplorer, FixedLogRecoversExactCommittedPrefix)
{
    apps::PmlogConfig cfg;
    cfg.seedBugs = false;
    cfg.capacity = 64 << 10;
    auto m = apps::buildPmlog(cfg);

    CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {8};
    xc.recovery = "log_walk";

    auto res = exploreCrashes(m.get(), xc);
    // durpoints: 1 init + 8 appends.
    ASSERT_EQ(res.durPointsInRun, 9u);
    ASSERT_EQ(res.outcomes.size(), 9u);
    // Crash at the init durpoint: empty log; at append k's
    // durability point: exactly k entries.
    for (uint64_t i = 0; i < res.outcomes.size(); i++)
        EXPECT_EQ(res.outcomes[i].recovered, i) << "durpoint " << i;
    EXPECT_TRUE(res.durPointRecoveryNonDecreasing());
    EXPECT_EQ(res.cleanRunRecovered, 8u);
}

TEST(CrashExplorer, BuggyLogLosesDataAtEveryCrashPoint)
{
    auto m = apps::buildPmlog({});
    CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {8};
    xc.recovery = "log_walk";

    auto res = exploreCrashes(m.get(), xc);
    // With no flushes at all, nothing survives any crash.
    EXPECT_EQ(res.maxRecovered(), 0u);
}

TEST(CrashExplorer, RepairedLogMatchesDeveloperBuild)
{
    auto repaired = apps::buildPmlog({});
    runPipelineWithArg(repaired.get(), "log_example", 8);

    CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {8};
    xc.recovery = "log_walk";

    auto res = exploreCrashes(repaired.get(), xc);
    for (uint64_t i = 0; i < res.outcomes.size(); i++)
        EXPECT_EQ(res.outcomes[i].recovered, i) << "durpoint " << i;
}

TEST(CrashExplorer, StepStrideExploresTornStates)
{
    apps::PmlogConfig cfg;
    cfg.seedBugs = false;
    cfg.capacity = 64 << 10;
    auto m = apps::buildPmlog(cfg);

    CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {6};
    xc.recovery = "log_walk";
    xc.exploreDurPoints = false;
    xc.stepStride = 97; // deliberately unaligned with op size

    auto res = exploreCrashes(m.get(), xc);
    EXPECT_GT(res.outcomes.size(), 10u);
    // Torn appends are never visible: each crash recovers between 0
    // and the 6 committed entries, never garbage counts.
    for (const auto &o : res.outcomes) {
        EXPECT_LE(o.recovered, 6u)
            << "step " << o.crashPoint;
    }
    EXPECT_EQ(res.cleanRunRecovered, 6u);
}

TEST(CrashExplorer, BudgetIsRespected)
{
    apps::PmlogConfig cfg;
    cfg.seedBugs = false;
    auto m = apps::buildPmlog(cfg);

    CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {20};
    xc.recovery = "log_walk";
    xc.stepStride = 50;
    xc.maxCrashes = 7;

    auto res = exploreCrashes(m.get(), xc);
    EXPECT_EQ(res.outcomes.size(), 7u);
}

TEST(CrashExplorer, BudgetPrioritizesDurPointsOverStepCrashes)
{
    // The crash plan lists every durpoint crash before any
    // step-stride crash and is truncated to maxCrashes before any
    // replay runs: under budget pressure the step crashes are the
    // ones dropped, and only once the budget exceeds the durpoint
    // count do step crashes get the remainder.
    apps::PmlogConfig cfg;
    cfg.seedBugs = false;
    auto m = apps::buildPmlog(cfg);

    CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {10}; // 11 durpoints (init + 10 appends)
    xc.recovery = "log_walk";
    xc.stepStride = 40;
    xc.maxCrashes = 14;

    auto res = exploreCrashes(m.get(), xc);
    ASSERT_EQ(res.durPointsInRun, 11u);
    ASSERT_EQ(res.outcomes.size(), 14u);
    for (size_t i = 0; i < 11; i++)
        EXPECT_FALSE(res.outcomes[i].atStep) << "outcome " << i;
    for (size_t i = 11; i < 14; i++) {
        EXPECT_TRUE(res.outcomes[i].atStep) << "outcome " << i;
        EXPECT_EQ(res.outcomes[i].crashPoint,
                  (i - 10) * xc.stepStride);
    }
}

TEST(CrashExplorer, RepairedPclhtIsMonotone)
{
    auto repaired = apps::buildPclht({});
    runPipelineWithArg(repaired.get(), "clht_example", 12);

    // Insert-only workload for monotonicity: drive clht_put through
    // a wrapper-free exploration of the example (which also
    // deletes, so use min/max bounds instead of exact counts).
    CrashExplorerConfig xc;
    xc.entry = "clht_example";
    xc.entryArgs = {12};
    xc.recovery = "clht_recover";
    auto res = exploreCrashes(repaired.get(), xc);
    EXPECT_GT(res.outcomes.size(), 12u); // puts + deletes
    EXPECT_EQ(res.minRecovered(), 0u);
    EXPECT_LE(res.maxRecovered(), 12u);
}

} // namespace hippo::test
