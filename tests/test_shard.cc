/**
 * @file
 * The sharded execution subsystem (src/shard): router determinism
 * (host-side hash agrees with the VM's @hash_key, whole-bucket
 * ownership, Scan decomposition), concurrent YCSB stream
 * determinism, and the headline invariance contract — identical
 * aggregate stats and recovery digests across shards {1,4,8} x
 * jobs {1,4} x engine {Tree,Bytecode}.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "apps/pmkv.hh"
#include "ir/builder.hh"
#include "shard/shard.hh"
#include "support/metrics.hh"
#include "ycsb/concurrent.hh"

namespace hippo::test
{

namespace
{

/** Small geometry shared by every test in this file. */
constexpr uint64_t kRecords = 64;
constexpr uint64_t kOps = 64;
constexpr uint64_t kScanOps = 12;
constexpr unsigned kClients = 4;

std::unique_ptr<ir::Module>
buildStore()
{
    apps::PmkvConfig cfg;
    cfg.variant = apps::PmkvVariant::Manual;
    return apps::buildPmkv(cfg);
}

/** Load + A mix + E slice, one fixed stream for every leg. */
struct Streams
{
    ycsb::ConcurrentOps load, mix, scans;
    uint64_t keyLimit = 0;
};

Streams
buildStreams()
{
    Streams s;
    s.load = ycsb::buildLoadOps(kRecords, kClients);
    ycsb::ConcurrentSpec spec;
    spec.workload = ycsb::Workload::A;
    spec.recordCount = kRecords;
    spec.opCount = kOps;
    spec.clients = kClients;
    spec.seed = 1234;
    s.mix = ycsb::buildConcurrentOps(spec);
    spec.workload = ycsb::Workload::E;
    spec.opCount = kScanOps;
    spec.seed = 1235;
    s.scans = ycsb::buildConcurrentOps(spec);
    s.keyLimit = std::max(s.mix.keySpace, s.scans.keySpace);
    return s;
}

struct LegOutcome
{
    shard::ShardRunStats stats;
    uint64_t digest = 0;
};

LegOutcome
runLeg(ir::Module *m, const Streams &s, unsigned shards,
       unsigned jobs, vm::VmEngine engine,
       support::MetricsRegistry *reg = nullptr)
{
    shard::ShardConfig cfg;
    cfg.shards = shards;
    cfg.jobs = jobs;
    cfg.engine = engine;
    cfg.kv.variant = apps::PmkvVariant::Manual;
    shard::ShardedKv kv(m, cfg, reg);
    kv.init();
    LegOutcome out;
    for (const ycsb::ConcurrentOps *phase :
         {&s.load, &s.mix, &s.scans}) {
        auto r = kv.run(phase->ops);
        out.stats.ops += r.ops;
        out.stats.subOps += r.subOps;
        out.stats.opSteps += r.opSteps;
        out.stats.scanHits += r.scanHits;
    }
    out.digest = kv.mergedRecoveryDigest(s.keyLimit);
    return out;
}

} // namespace

TEST(ShardRouter, HostHashMatchesVmHashKey)
{
    auto m = buildStore();
    apps::PmkvConfig cfg;
    shard::ShardConfig scfg;
    scfg.kv.variant = apps::PmkvVariant::Manual;
    shard::ShardedKv kv(m.get(), scfg);
    for (uint64_t key : {0ull, 1ull, 7ull, 63ull, 1000ull,
                         0xdeadbeefull, ~0ull}) {
        vm::RunResult res = kv.vmOf(0).run("hash_key", {key});
        ASSERT_TRUE(res.ok()) << res.diag;
        EXPECT_EQ(shard::Router::bucketFor(key, cfg.buckets),
                  res.returnValue)
            << "host hash diverges from @hash_key at key " << key;
    }
}

TEST(ShardRouter, WholeBucketOwnership)
{
    // Keys in the same bucket must land on the same shard at every
    // shard count, and shardFor must equal bucket mod shards.
    constexpr uint64_t buckets = 4096;
    for (unsigned shards : {1u, 2u, 4u, 8u}) {
        shard::Router router(shards, buckets);
        std::map<uint64_t, unsigned> bucket_shard;
        for (uint64_t key = 0; key < 2000; key++) {
            uint64_t b = shard::Router::bucketFor(key, buckets);
            unsigned s = router.shardFor(key);
            EXPECT_EQ(s, (unsigned)(b & (shards - 1)));
            auto [it, fresh] = bucket_shard.emplace(b, s);
            if (!fresh) {
                EXPECT_EQ(it->second, s)
                    << "bucket " << b << " split across shards";
            }
        }
    }
}

TEST(ShardRouter, RejectsBadGeometry)
{
    // hippo_assert reports the failed expression text.
    EXPECT_DEATH(shard::Router(3, 4096), "assertion failed");
    EXPECT_DEATH(shard::Router(8, 4), "assertion failed");
}

TEST(ShardRouter, ScanDecomposition)
{
    shard::Router router(4, 4096);
    std::vector<ycsb::Op> ops;
    ops.push_back({ycsb::OpType::Read, 5, 0});
    ycsb::Op scan{ycsb::OpType::Scan, 10, 0};
    scan.scanLength = 7;
    ops.push_back(scan);
    auto queues = router.route(ops);
    ASSERT_EQ(queues.size(), 4u);

    size_t total = 0, from_scan = 0;
    std::set<uint64_t> scan_keys;
    for (const auto &q : queues)
        for (const shard::RoutedOp &r : q) {
            EXPECT_NE(r.op.type, ycsb::OpType::Scan)
                << "Scans must never reach a shard queue";
            total++;
            if (r.fromScan) {
                from_scan++;
                EXPECT_EQ(r.op.type, ycsb::OpType::Read);
                scan_keys.insert(r.op.key);
            }
        }
    EXPECT_EQ(total, 8u);     // 1 Read + 7 scan sub-ops
    EXPECT_EQ(from_scan, 7u); // keys 10..16
    EXPECT_EQ(scan_keys, (std::set<uint64_t>{10, 11, 12, 13, 14,
                                             15, 16}));
    EXPECT_EQ(router.stats().ops, 2u);
    EXPECT_EQ(router.stats().subOps, 8u);
    EXPECT_EQ(router.stats().scanSubOps, 7u);
}

TEST(ConcurrentYcsb, StreamIsAPureFunctionOfTheSpec)
{
    ycsb::ConcurrentSpec spec;
    spec.workload = ycsb::Workload::A;
    spec.recordCount = kRecords;
    spec.opCount = 100;
    spec.clients = 3; // exercises the uneven budget split
    spec.seed = 42;
    auto a = ycsb::buildConcurrentOps(spec);
    auto b = ycsb::buildConcurrentOps(spec);
    ASSERT_EQ(a.ops.size(), 100u);
    EXPECT_EQ(a.keySpace, b.keySpace);
    for (size_t i = 0; i < a.ops.size(); i++) {
        EXPECT_EQ(a.ops[i].type, b.ops[i].type) << i;
        EXPECT_EQ(a.ops[i].key, b.ops[i].key) << i;
        EXPECT_EQ(a.ops[i].scanLength, b.ops[i].scanLength) << i;
    }
    spec.seed = 43;
    auto c = ycsb::buildConcurrentOps(spec);
    bool differs = false;
    for (size_t i = 0; i < c.ops.size(); i++)
        differs |= c.ops[i].key != a.ops[i].key;
    EXPECT_TRUE(differs) << "seed must steer the stream";
}

TEST(ConcurrentYcsb, LoadMergesToSerialOrder)
{
    for (unsigned clients : {1u, 2u, 4u}) {
        auto load = ycsb::buildLoadOps(kRecords, clients);
        ASSERT_EQ(load.ops.size(), kRecords);
        for (uint64_t i = 0; i < kRecords; i++) {
            EXPECT_EQ(load.ops[i].type, ycsb::OpType::Insert);
            EXPECT_EQ(load.ops[i].key, i)
                << "clients=" << clients << " op " << i;
        }
        EXPECT_EQ(load.keySpace, kRecords);
    }
}

TEST(ConcurrentYcsb, InsertKeysAreStripedDisjoint)
{
    ycsb::ConcurrentSpec spec;
    spec.workload = ycsb::Workload::D; // insert-heavy
    spec.recordCount = kRecords;
    spec.opCount = 200;
    spec.clients = 4;
    spec.seed = 7;
    auto s = ycsb::buildConcurrentOps(spec);
    std::set<uint64_t> inserted;
    for (const ycsb::Op &op : s.ops) {
        EXPECT_LT(op.key, s.keySpace);
        if (op.type != ycsb::OpType::Insert)
            continue;
        EXPECT_GE(op.key, kRecords) << "insert into the load range";
        EXPECT_TRUE(inserted.insert(op.key).second)
            << "two clients inserted key " << op.key;
    }
}

TEST(Shard, StatsAndDigestInvariantAcrossShardsJobsEngine)
{
    auto m = buildStore();
    Streams s = buildStreams();
    for (vm::VmEngine engine :
         {vm::VmEngine::Tree, vm::VmEngine::Bytecode}) {
        LegOutcome ref;
        bool have_ref = false;
        for (unsigned shards : {1u, 4u, 8u}) {
            for (unsigned jobs : {1u, 4u}) {
                LegOutcome leg = runLeg(m.get(), s, shards, jobs,
                                        engine);
                if (!have_ref) {
                    ref = leg;
                    have_ref = true;
                    EXPECT_GT(leg.stats.ops, 0u);
                    EXPECT_GT(leg.stats.opSteps, 0u);
                    continue;
                }
                EXPECT_EQ(leg.stats.ops, ref.stats.ops);
                EXPECT_EQ(leg.stats.subOps, ref.stats.subOps);
                EXPECT_EQ(leg.stats.opSteps, ref.stats.opSteps)
                    << "shards=" << shards << " jobs=" << jobs;
                EXPECT_EQ(leg.stats.scanHits, ref.stats.scanHits);
                EXPECT_EQ(leg.digest, ref.digest)
                    << "shards=" << shards << " jobs=" << jobs;
            }
        }
    }
}

TEST(Shard, EnginesAgreeOnTheRecoveredState)
{
    auto m = buildStore();
    Streams s = buildStreams();
    LegOutcome tree =
        runLeg(m.get(), s, 4, 1, vm::VmEngine::Tree);
    LegOutcome fast =
        runLeg(m.get(), s, 4, 1, vm::VmEngine::Bytecode);
    EXPECT_EQ(tree.digest, fast.digest)
        << "interpreters disagree on the logical store";
    EXPECT_EQ(tree.stats.scanHits, fast.stats.scanHits);
}

TEST(Shard, LatencyHistogramInvariantAcrossJobs)
{
    auto m = buildStore();
    Streams s = buildStreams();
    // Private registries: the per-op latency histogram (count, sum,
    // percentiles) must be byte-identical at every jobs setting —
    // observations are rounded to integer sim-ns, so worker
    // interleaving cannot shift the sum.
    std::map<std::string, double> ref;
    for (unsigned jobs : {1u, 4u}) {
        support::MetricsRegistry reg;
        runLeg(m.get(), s, 4, jobs, vm::VmEngine::Bytecode, &reg);
        auto snap = reg.deterministicSnapshot();
        ASSERT_TRUE(snap.count("ycsb.latency.op_ns.count"));
        EXPECT_GT(snap["ycsb.latency.op_ns.count"], 0);
        if (ref.empty()) {
            ref = snap;
            continue;
        }
        ASSERT_EQ(snap.size(), ref.size());
        for (const auto &[path, value] : ref)
            EXPECT_EQ(snap[path], value)
                << path << " drifts at jobs=" << jobs;
    }
}

TEST(Shard, ExploreShardsIsConsistentAndShardCountInvariant)
{
    auto m = buildStore();
    // A small exercise entry touching the set path twice.
    ir::Function *f = m->addFunction("kv_exercise", ir::Type::Int);
    ir::BasicBlock *bb = f->addBlock("entry");
    ir::IRBuilder b(m.get());
    b.setInsertPoint(bb);
    b.setLoc("test_shard.cc", 1);
    auto call = [&](const char *name,
                    std::vector<ir::Value *> args) {
        return b.createCall(m->findFunction(name), std::move(args));
    };
    call("kv_init", {});
    call("kv_handle_set", {b.getInt(3), b.getInt(24)});
    call("kv_handle_set", {b.getInt(7), b.getInt(24)});
    b.createRet(call("kv_recover", {}));

    pmcheck::CrashExplorerConfig xc;
    xc.entry = "kv_exercise";
    xc.recovery = "kv_recover";
    xc.maxCrashes = 1u << 20;
    xc.poolBytes = 32u << 20;
    xc.vmEngine = vm::VmEngine::Bytecode;
    auto x1 = shard::exploreShards(m.get(), xc, 1);
    auto x2 = shard::exploreShards(m.get(), xc, 2);
    EXPECT_TRUE(x1.consistent);
    EXPECT_TRUE(x2.consistent);
    ASSERT_EQ(x1.shardDigests.size(), 1u);
    ASSERT_EQ(x2.shardDigests.size(), 2u);
    EXPECT_EQ(x1.digest, x2.digest)
        << "merged exploration digest depends on the shard count";
    EXPECT_EQ(x1.unverified + x2.unverified, 0u);
}

} // namespace hippo::test
