/**
 * @file
 * Tests for the pmkv application and the Redis-variant factory
 * (§6.3): functional correctness, bug finding on the flush-free
 * build, repair, crash-recovery behavior, and the performance
 * ordering RedisH-full >= Redis-pm >> RedisH-intra.
 */

#include <gtest/gtest.h>

#include "apps/kv_driver.hh"
#include "test_util.hh"

namespace hippo::test
{

using apps::buildPmkv;
using apps::buildRedisVariants;
using apps::KvDriver;
using apps::PmkvConfig;
using apps::PmkvVariant;

namespace
{

PmkvConfig
smallConfig(PmkvVariant v = PmkvVariant::FlushFree)
{
    PmkvConfig cfg;
    cfg.variant = v;
    cfg.buckets = 256;
    cfg.logCapacity = 2u << 20;
    return cfg;
}

} // namespace

TEST(Pmkv, SetThenGetRoundTrips)
{
    auto m = buildPmkv(smallConfig(PmkvVariant::Manual));
    pmem::PmPool pool(16u << 20);
    KvDriver driver(m.get(), &pool);
    driver.init();

    driver.vm().run("kv_handle_set", {42, 100});
    auto got = driver.vm().run("kv_handle_get", {42});
    EXPECT_EQ(got.returnValue, 100u);
    auto miss = driver.vm().run("kv_handle_get", {43});
    EXPECT_EQ(miss.returnValue, 0u);
}

TEST(Pmkv, UpdateShadowsOldValueLength)
{
    auto m = buildPmkv(smallConfig(PmkvVariant::Manual));
    pmem::PmPool pool(16u << 20);
    KvDriver driver(m.get(), &pool);
    driver.init();

    driver.vm().run("kv_handle_set", {7, 100});
    driver.vm().run("kv_handle_update", {7, 48});
    auto got = driver.vm().run("kv_handle_get", {7});
    EXPECT_EQ(got.returnValue, 48u);
}

TEST(Pmkv, ScanCountsPresentKeys)
{
    auto m = buildPmkv(smallConfig(PmkvVariant::Manual));
    pmem::PmPool pool(16u << 20);
    KvDriver driver(m.get(), &pool);
    driver.init();
    for (uint64_t k = 10; k < 20; k++)
        driver.vm().run("kv_handle_set", {k, 64});
    auto hits = driver.vm().run("kv_handle_scan", {12, 5});
    EXPECT_EQ(hits.returnValue, 5u);
    auto partial = driver.vm().run("kv_handle_scan", {18, 5});
    EXPECT_EQ(partial.returnValue, 2u);
}

TEST(Pmkv, FlushFreeBuildHasDurabilityBugs)
{
    auto m = buildPmkv(smallConfig());
    pmem::PmPool pool(16u << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    KvDriver driver(m.get(), &pool, vc);
    driver.init();
    driver.run(ycsb::Workload::Load, 16, 16, 3);
    driver.run(ycsb::Workload::A, 16, 16, 5);

    auto report = pmcheck::analyze(driver.vm().trace());
    EXPECT_FALSE(report.clean());
    // Fences were kept, so every bug is a missing flush.
    for (const auto &bug : report.bugs)
        EXPECT_EQ(bug.kind, pmcheck::BugKind::MissingFlush)
            << bug.str();
}

TEST(Pmkv, ManualBuildIsClean)
{
    auto m = buildPmkv(smallConfig(PmkvVariant::Manual));
    pmem::PmPool pool(16u << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    KvDriver driver(m.get(), &pool, vc);
    driver.init();
    driver.run(ycsb::Workload::Load, 16, 16, 3);
    driver.run(ycsb::Workload::A, 16, 16, 5);

    auto report = pmcheck::analyze(driver.vm().trace());
    EXPECT_TRUE(report.clean()) << report.writeText();
}

TEST(Pmkv, RedisVariantsRepairAndHoist)
{
    auto variants = buildRedisVariants(smallConfig());

    EXPECT_FALSE(variants.flushFreeReport.clean());
    EXPECT_GT(variants.fullSummary.fixes.size(), 0u);
    // The full repair must contain interprocedural fixes at both one
    // and two frames above the PM modification (the buf_copy and
    // hdr_checksum hoists), while the intra repair has none.
    EXPECT_GT(variants.fullSummary.interproceduralCount(), 0u);
    EXPECT_GT(variants.fullSummary.hoistedAtLevel(1), 0u);
    EXPECT_GT(variants.fullSummary.hoistedAtLevel(2), 0u);
    EXPECT_EQ(variants.intraSummary.interproceduralCount(), 0u);

    EXPECT_NE(variants.hippoFull->findFunction("buf_copy_PM"),
              nullptr);
    EXPECT_NE(variants.hippoFull->findFunction("hdr_checksum_PM"),
              nullptr);
    EXPECT_NE(variants.hippoFull->findFunction("u64_store_PM"),
              nullptr);
}

TEST(Pmkv, RepairedVariantsFunctionallyCorrect)
{
    auto variants = buildRedisVariants(smallConfig());
    for (ir::Module *m :
         {variants.hippoFull.get(), variants.hippoIntra.get()}) {
        pmem::PmPool pool(16u << 20);
        KvDriver driver(m, &pool);
        driver.init();
        driver.vm().run("kv_handle_set", {5, 80});
        auto got = driver.vm().run("kv_handle_get", {5});
        EXPECT_EQ(got.returnValue, 80u) << m->name();
    }
}

TEST(Pmkv, CrashRecoveryLosesDataOnlyWhenUnfixed)
{
    // Crash right at the durability point of the 4th set. The
    // repaired store must recover all 4 committed entries; the
    // flush-free store loses (at least some of) them.
    auto count_after_crash = [](ir::Module *m) {
        pmem::PmPool pool(16u << 20);
        {
            vm::VmConfig vc;
            KvDriver driver(m, &pool, vc);
            driver.init();
            for (uint64_t k = 0; k < 3; k++)
                driver.vm().run("kv_handle_set", {k, 64});
        }
        {
            vm::VmConfig vc;
            vc.crashAtDurPoint = 0;
            KvDriver driver(m, &pool, vc);
            auto run = driver.vm().run("kv_handle_set",
                                       {uint64_t(3), 64});
            EXPECT_TRUE(run.crashed);
        }
        pool.crash();
        vm::Vm recovery(m, &pool, {});
        return recovery.run("kv_recover").returnValue;
    };

    auto variants = buildRedisVariants(smallConfig());
    EXPECT_EQ(count_after_crash(variants.hippoFull.get()), 4u);
    EXPECT_EQ(count_after_crash(variants.manual.get()), 4u);
    auto buggy = buildPmkv(smallConfig());
    EXPECT_LT(count_after_crash(buggy.get()), 4u);
}

TEST(Pmkv, AllYcsbWorkloadsRunOnEveryVariant)
{
    auto variants = buildRedisVariants(smallConfig());
    for (ir::Module *m :
         {variants.manual.get(), variants.hippoFull.get(),
          variants.hippoIntra.get()}) {
        pmem::PmPool pool(32u << 20);
        KvDriver driver(m, &pool);
        driver.init();
        auto load =
            driver.run(ycsb::Workload::Load, 200, 200, 5);
        EXPECT_EQ(load.ops, 200u) << m->name();
        for (auto w : {ycsb::Workload::A, ycsb::Workload::B,
                       ycsb::Workload::C, ycsb::Workload::D,
                       ycsb::Workload::E, ycsb::Workload::F}) {
            auto res = driver.run(w, 200, 100, 9);
            EXPECT_EQ(res.ops, 100u)
                << m->name() << " workload " << workloadName(w);
            EXPECT_GT(res.simSeconds, 0) << m->name();
        }
    }
}

TEST(Pmkv, VariantsAgreeOnGetResultsAfterMixedWorkload)
{
    // After identical deterministic workloads, all three variants
    // must return identical values for every key: durability
    // strategy must not change semantics.
    auto variants = buildRedisVariants(smallConfig());
    auto probe = [](ir::Module *m) {
        pmem::PmPool pool(32u << 20);
        KvDriver driver(m, &pool);
        driver.init();
        driver.run(ycsb::Workload::Load, 64, 64, 3);
        driver.run(ycsb::Workload::A, 64, 64, 5);
        driver.run(ycsb::Workload::F, 64, 32, 7);
        std::vector<uint64_t> values;
        for (uint64_t k = 0; k < 64; k++) {
            values.push_back(
                driver.vm().run("kv_handle_get", {k}).returnValue);
        }
        return values;
    };
    auto manual = probe(variants.manual.get());
    EXPECT_EQ(probe(variants.hippoFull.get()), manual);
    EXPECT_EQ(probe(variants.hippoIntra.get()), manual);
}

TEST(Pmkv, RecoverCountsMatchWritesAfterCleanShutdown)
{
    auto m = buildPmkv(smallConfig(PmkvVariant::Manual));
    pmem::PmPool pool(16u << 20);
    {
        KvDriver driver(m.get(), &pool);
        driver.init();
        for (uint64_t k = 0; k < 10; k++)
            driver.vm().run("kv_handle_set", {k, 64});
        driver.vm().run("kv_handle_update", {3, 48});
    }
    pool.crash(); // clean shutdown: everything was persisted
    vm::Vm recovery(m.get(), &pool, {});
    // 10 inserts + 1 update version = 11 log entries.
    EXPECT_EQ(recovery.run("kv_recover").returnValue, 11u);
}

TEST(Pmkv, PoolStatsReflectDurabilityStrategy)
{
    // The manual build must flush and fence; the flush-free build
    // must fence but never flush.
    auto run_stats = [](PmkvVariant v) {
        auto m = buildPmkv(smallConfig(v));
        pmem::PmPool pool(16u << 20);
        KvDriver driver(m.get(), &pool);
        driver.init();
        for (uint64_t k = 0; k < 8; k++)
            driver.vm().run("kv_handle_set", {k, 64});
        return pool.stats();
    };
    auto manual = run_stats(PmkvVariant::Manual);
    EXPECT_GT(manual.flushes, 0u);
    EXPECT_GT(manual.fences, 0u);
    auto flushfree = run_stats(PmkvVariant::FlushFree);
    EXPECT_EQ(flushfree.flushes, 0u);
    EXPECT_GT(flushfree.fences, 0u);
    EXPECT_EQ(flushfree.stores, manual.stores);
}

TEST(Pmkv, PerformanceOrderingMatchesFig4)
{
    // RedisH-full must be at least as fast as Redis-pm, and several
    // times faster than RedisH-intra (paper: 2.4-11.7x).
    auto variants = buildRedisVariants(smallConfig());

    auto throughput = [](ir::Module *m, ycsb::Workload w) {
        pmem::PmPool pool(32u << 20);
        KvDriver driver(m, &pool);
        driver.init();
        driver.run(ycsb::Workload::Load, 400, 400, 21);
        auto res = driver.run(w, 400, 400, 33);
        return res.throughput();
    };

    for (auto w : {ycsb::Workload::A, ycsb::Workload::C}) {
        double full = throughput(variants.hippoFull.get(), w);
        double manual = throughput(variants.manual.get(), w);
        double intra = throughput(variants.hippoIntra.get(), w);
        EXPECT_GE(full, manual * 0.95)
            << "workload " << ycsb::workloadName(w);
        EXPECT_GT(full, intra * 2.0)
            << "workload " << ycsb::workloadName(w);
    }
}

} // namespace hippo::test
