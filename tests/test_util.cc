#include "test_util.hh"

#include "support/logging.hh"

namespace hippo::test
{

using namespace hippo::ir;

std::unique_ptr<Module>
buildListing5(bool with_fence, uint64_t vol_iters)
{
    auto m = std::make_unique<Module>("listing5");
    IRBuilder b(m.get());

    // update(addr, idx, val): addr[idx] = val
    Function *update = m->addFunction("update", Type::Void);
    {
        Argument *addr = update->addParam(Type::Ptr, "addr");
        Argument *idx = update->addParam(Type::Int, "idx");
        Argument *val = update->addParam(Type::Int, "val");
        b.setInsertPoint(update->addBlock("entry"));
        b.setLoc("listing5.c", 2);
        Instruction *p = b.createGep(addr, idx);
        b.createStore(val, p, 1);
        b.createRet();
    }

    // modify(addr): update(addr, 0, 42)
    Function *modify = m->addFunction("modify", Type::Void);
    {
        Argument *addr = modify->addParam(Type::Ptr, "addr");
        b.setInsertPoint(modify->addBlock("entry"));
        b.setLoc("listing5.c", 5);
        b.createCall(update, {addr, b.getInt(0), b.getInt(42)});
        b.createRet();
    }

    // foo()
    Function *foo = m->addFunction("foo", Type::Void);
    {
        BasicBlock *entry = foo->addBlock("entry");
        BasicBlock *loop = foo->addBlock("loop");
        BasicBlock *body = foo->addBlock("body");
        BasicBlock *done = foo->addBlock("done");

        b.setInsertPoint(entry);
        b.setLoc("listing5.c", 17);
        Instruction *vol = b.createAlloca(64);
        Instruction *pm = b.createPmMap("pool", 64);
        Instruction *iv = b.createAlloca(8);
        b.createStore(b.getInt(0), iv, 8);
        b.createBr(loop);

        b.setInsertPoint(loop);
        Instruction *i = b.createLoad(iv, 8);
        Instruction *more =
            b.createCmp(CmpPred::Ult, i, b.getInt(vol_iters));
        b.createCondBr(more, body, done);

        b.setInsertPoint(body);
        b.setLoc("listing5.c", 18);
        b.createCall(modify, {vol});
        b.createStore(b.createAdd(i, b.getInt(1)), iv, 8);
        b.createBr(loop);

        b.setInsertPoint(done);
        b.setLoc("listing5.c", 19);
        b.createCall(modify, {pm});
        if (with_fence) {
            b.setLoc("listing5.c", 22);
            b.createFence(FenceKind::Sfence);
        }
        b.setLoc("listing5.c", 23);
        b.createDurPoint("crash");
        // Make the persisted value observable for equivalence checks.
        Instruction *check = b.createLoad(pm, 1);
        b.createPrint("pm_byte", check);
        b.createRet();
    }

    verifyOrDie(*m);
    return m;
}

namespace
{

PipelineResult
runPipelineImpl(ir::Module *m, const std::string &entry,
                const std::vector<uint64_t> &args,
                core::FixerConfig cfg)
{
    PipelineResult res;

    // Bug-finding run (tracing on).
    {
        pmem::PmPool pool(16u << 20);
        vm::VmConfig vc;
        vc.traceEnabled = true;
        vm::Vm machine(m, &pool, vc);
        machine.run(entry, args);
        res.before = pmcheck::analyze(machine.trace());
        res.outputsBefore = machine.outputs();

        core::Fixer fixer(m, cfg);
        res.summary =
            fixer.fix(res.before, machine.trace(),
                      &machine.dynPointsTo());
    }

    // Validation run on the fixed module.
    {
        pmem::PmPool pool(16u << 20);
        vm::VmConfig vc;
        vc.traceEnabled = true;
        vm::Vm machine(m, &pool, vc);
        machine.run(entry, args);
        res.after = pmcheck::analyze(machine.trace());
        res.outputsAfter = machine.outputs();
    }
    return res;
}

} // namespace

PipelineResult
runPipeline(ir::Module *m, const std::string &entry,
            core::FixerConfig cfg)
{
    return runPipelineImpl(m, entry, {}, cfg);
}

PipelineResult
runPipelineWithArg(ir::Module *m, const std::string &entry,
                   uint64_t arg, core::FixerConfig cfg)
{
    return runPipelineImpl(m, entry, {arg}, cfg);
}

} // namespace hippo::test
