/**
 * @file
 * Differential suite for the bytecode fast path (DESIGN.md "Bytecode
 * fast path"): the compiled direct-threaded interpreter must be
 * observably byte-identical to the tree-walking oracle — RunResult
 * (including bit-exact simulated time), trace, outputs, probe firing
 * points, watchdog verdicts, and whole-exploration recovery digests —
 * across the application corpus, both replay engines, and multiple
 * jobs settings. Also pins the bytecode encoding with a golden
 * disassembly (HIPPO_REGEN_GOLDEN=1 rewrites it).
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/bugsuite.hh"
#include "apps/pclht.hh"
#include "apps/pmkv.hh"
#include "apps/pmlog.hh"
#include "ir/builder.hh"
#include "pmcheck/crash_explorer.hh"
#include "pmem/pm_pool.hh"
#include "vm/bytecode.hh"
#include "vm/vm.hh"

namespace hippo::test
{
namespace
{

using namespace hippo;

/** Countdown loop exercising the cmp+condbr superinstruction. */
std::unique_ptr<ir::Module>
buildSpinModule()
{
    using namespace hippo::ir;
    auto m = std::make_unique<Module>("spin");
    Function *f = m->addFunction("spin", Type::Int);
    Argument *n = f->addParam(Type::Int, "n");
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *loop = f->addBlock("loop");
    BasicBlock *body = f->addBlock("body");
    BasicBlock *done = f->addBlock("done");
    IRBuilder b(m.get());
    b.setInsertPoint(entry);
    Instruction *iv = b.createAlloca(8);
    b.createStore(n, iv, 8);
    b.createBr(loop);
    b.setInsertPoint(loop);
    Instruction *i = b.createLoad(iv, 8);
    b.createCondBr(b.createCmp(CmpPred::Ugt, i, b.getInt(0)), body,
                   done);
    b.setInsertPoint(body);
    b.createStore(b.createSub(i, b.getInt(1)), iv, 8);
    b.createBr(loop);
    b.setInsertPoint(done);
    b.createRet(b.createLoad(iv, 8));
    return m;
}

/** PM loop exercising the store->flush->fence superinstruction. */
std::unique_ptr<ir::Module>
buildAppendModule()
{
    using namespace hippo::ir;
    auto m = std::make_unique<Module>("append");
    Function *f = m->addFunction("append", Type::Int);
    Argument *n = f->addParam(Type::Int, "n");
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *loop = f->addBlock("loop");
    BasicBlock *body = f->addBlock("body");
    BasicBlock *done = f->addBlock("done");
    IRBuilder b(m.get());
    b.setInsertPoint(entry);
    Instruction *iv = b.createAlloca(8);
    b.createStore(b.getInt(0), iv, 8);
    Instruction *pm = b.createPmMap("r", 1u << 16);
    b.createBr(loop);
    b.setInsertPoint(loop);
    Instruction *i = b.createLoad(iv, 8);
    b.createCondBr(b.createCmp(CmpPred::Ult, i, n), body, done);
    b.setInsertPoint(body);
    Instruction *p = b.createGep(pm, b.createMul(i, b.getInt(8)));
    b.createStore(i, p, 8);
    b.createFlush(p, ir::FlushKind::Clwb);
    b.createFence(ir::FenceKind::Sfence);
    b.createDurPoint("append");
    b.createStore(b.createAdd(i, b.getInt(1)), iv, 8);
    b.createBr(loop);
    b.setInsertPoint(done);
    b.createRet(b.createLoad(iv, 8));
    return m;
}

/** Run @p entry on a fresh pool under @p engine. */
struct RunCapture
{
    vm::RunResult res;
    std::string trace;
    std::vector<vm::ProgramOutput> outputs;
    uint64_t steps = 0;
    double simNanos = 0;
    std::vector<uint64_t> probeSteps;
};

RunCapture
capture(ir::Module *m, const std::string &entry,
        std::vector<uint64_t> args, vm::VmEngine engine,
        vm::VmConfig vc = {})
{
    pmem::PmPool pool(16u << 20);
    vc.engine = engine;
    RunCapture c;
    vc.stepProbeStride = vc.stepProbeStride ? vc.stepProbeStride : 7;
    vc.stepProbe = [&](uint64_t s) { c.probeSteps.push_back(s); };
    vm::Vm machine(m, &pool, vc);
    c.res = machine.run(entry, std::move(args));
    c.trace = machine.trace().writeText();
    c.outputs = machine.outputs();
    c.steps = machine.steps();
    c.simNanos = machine.simNanos();
    return c;
}

void
expectSameRun(const RunCapture &tree, const RunCapture &fast)
{
    EXPECT_EQ(tree.res.crashed, fast.res.crashed);
    EXPECT_EQ(tree.res.returnValue, fast.res.returnValue);
    EXPECT_EQ(tree.res.steps, fast.res.steps);
    EXPECT_EQ(tree.res.simNanos, fast.res.simNanos); // bit-exact
    EXPECT_EQ(tree.res.outcome, fast.res.outcome);
    EXPECT_EQ(tree.res.diag, fast.res.diag);
    EXPECT_EQ(tree.trace, fast.trace);
    EXPECT_EQ(tree.outputs, fast.outputs);
    EXPECT_EQ(tree.steps, fast.steps);
    EXPECT_EQ(tree.simNanos, fast.simNanos);
    EXPECT_EQ(tree.probeSteps, fast.probeSteps);
}

void
expectRunParity(ir::Module *m, const std::string &entry,
                std::vector<uint64_t> args, vm::VmConfig vc = {})
{
    auto tree = capture(m, entry, args, vm::VmEngine::Tree, vc);
    auto fast = capture(m, entry, args, vm::VmEngine::Bytecode, vc);
    expectSameRun(tree, fast);
}

} // namespace

TEST(FastInterp, EngineSelection)
{
    auto m = buildSpinModule();
    pmem::PmPool pool(1u << 16);
    vm::VmConfig vc;
    vc.engine = vm::VmEngine::Tree;
    vm::Vm tree(m.get(), &pool, vc);
    EXPECT_EQ(tree.engineResolved(), vm::VmEngine::Tree);
    vc.engine = vm::VmEngine::Bytecode;
    vm::Vm fast(m.get(), &pool, vc);
    EXPECT_EQ(fast.engineResolved(), vm::VmEngine::Bytecode);
    EXPECT_EQ(fast.run("spin", {25}).returnValue, 0u);
    EXPECT_GT(fast.fastDispatches(), 0u);
    EXPECT_GT(fast.fastSuperExecuted(), 0u);
    EXPECT_EQ(tree.fastDispatches(), 0u);
}

TEST(FastInterp, RunParitySyntheticLoops)
{
    auto spin = buildSpinModule();
    expectRunParity(spin.get(), "spin", {300});
    auto append = buildAppendModule();
    expectRunParity(append.get(), "append", {64});
}

TEST(FastInterp, RunParityTraced)
{
    // traceEnabled disables superinstruction fusion; the traces must
    // still match event for event.
    vm::VmConfig vc;
    vc.traceEnabled = true;
    auto append = buildAppendModule();
    expectRunParity(append.get(), "append", {32}, vc);
    auto log = apps::buildPmlog({});
    expectRunParity(log.get(), "log_example", {8}, vc);
}

TEST(FastInterp, RunParityApps)
{
    auto log = apps::buildPmlog({});
    expectRunParity(log.get(), "log_example", {12});
    auto clht = apps::buildPclht({});
    expectRunParity(clht.get(), "clht_example", {10});
    auto kv = apps::buildPmkv({});
    expectRunParity(kv.get(), "kv_init", {});
}

TEST(FastInterp, CrashAtStepParity)
{
    auto append = buildAppendModule();
    for (uint64_t at : {5u, 23u, 117u}) {
        vm::VmConfig vc;
        vc.crashAtStep = at;
        auto tree = capture(append.get(), "append", {64},
                            vm::VmEngine::Tree, vc);
        auto fast = capture(append.get(), "append", {64},
                            vm::VmEngine::Bytecode, vc);
        EXPECT_TRUE(tree.res.crashed);
        expectSameRun(tree, fast);
    }
}

TEST(FastInterp, CrashAtDurPointParity)
{
    auto log = apps::buildPmlog({});
    vm::VmConfig vc;
    vc.crashAtDurPoint = 3;
    auto tree =
        capture(log.get(), "log_example", {8}, vm::VmEngine::Tree, vc);
    auto fast = capture(log.get(), "log_example", {8},
                        vm::VmEngine::Bytecode, vc);
    EXPECT_TRUE(tree.res.crashed);
    expectSameRun(tree, fast);
}

TEST(FastInterp, WatchdogTimeoutParity)
{
    auto spin = buildSpinModule();
    vm::VmConfig vc;
    vc.sandbox = true;
    vc.stepBudget = 100; // far less than the loop needs
    auto tree = capture(spin.get(), "spin", {100000},
                        vm::VmEngine::Tree, vc);
    auto fast = capture(spin.get(), "spin", {100000},
                        vm::VmEngine::Bytecode, vc);
    EXPECT_EQ(tree.res.outcome, vm::ExecOutcome::Timeout);
    expectSameRun(tree, fast);
}

TEST(FastInterp, GlobalStepLimitParity)
{
    auto spin = buildSpinModule();
    vm::VmConfig vc;
    vc.sandbox = true;
    vc.maxSteps = 64;
    auto tree = capture(spin.get(), "spin", {100000},
                        vm::VmEngine::Tree, vc);
    auto fast = capture(spin.get(), "spin", {100000},
                        vm::VmEngine::Bytecode, vc);
    EXPECT_EQ(tree.res.outcome, vm::ExecOutcome::Timeout);
    EXPECT_EQ(tree.res.diag, "global step limit exceeded");
    expectSameRun(tree, fast);
}

TEST(FastInterp, HeapBudgetParity)
{
    // Each spin() activation allocas 8 bytes; recursion is not needed
    // — a tiny budget trips on the very first frame.
    auto spin = buildSpinModule();
    vm::VmConfig vc;
    vc.sandbox = true;
    vc.heapBudget = 4;
    auto tree =
        capture(spin.get(), "spin", {4}, vm::VmEngine::Tree, vc);
    auto fast =
        capture(spin.get(), "spin", {4}, vm::VmEngine::Bytecode, vc);
    EXPECT_EQ(tree.res.outcome, vm::ExecOutcome::BudgetExceeded);
    expectSameRun(tree, fast);
}

TEST(FastInterp, ExplorationParityMatrix)
{
    // One workload per app; each explored with both replay engines
    // and jobs in {1, 4}: the bytecode interpreter must reproduce the
    // tree walker's ExplorationResult exactly everywhere.
    struct Case
    {
        std::unique_ptr<ir::Module> m;
        const char *entry;
        std::vector<uint64_t> args;
        const char *recovery;
    };
    std::vector<Case> cases;
    cases.push_back({apps::buildPmlog({}), "log_example", {8},
                     "log_walk"});
    cases.push_back({apps::buildPclht({}), "clht_example", {8},
                     "clht_recover"});
    cases.push_back(
        {apps::buildPmkv({}), "kv_init", {}, "kv_recover"});

    for (auto &c : cases) {
        for (auto replay : {pmcheck::ExploreEngine::Legacy,
                            pmcheck::ExploreEngine::Snapshot}) {
            for (unsigned jobs : {1u, 4u}) {
                pmcheck::CrashExplorerConfig xc;
                xc.entry = c.entry;
                xc.entryArgs = c.args;
                xc.recovery = c.recovery;
                xc.stepStride = 16;
                xc.engine = replay;
                xc.jobs = jobs;
                xc.vmEngine = vm::VmEngine::Tree;
                auto tree = pmcheck::exploreCrashes(c.m.get(), xc);
                xc.vmEngine = vm::VmEngine::Bytecode;
                auto fast = pmcheck::exploreCrashes(c.m.get(), xc);
                EXPECT_TRUE(tree == fast)
                    << c.entry << " replay="
                    << (replay == pmcheck::ExploreEngine::Legacy
                            ? "legacy"
                            : "snapshot")
                    << " jobs=" << jobs;
                EXPECT_EQ(pmcheck::recoveryDigest(tree),
                          pmcheck::recoveryDigest(fast));
            }
        }
    }
}

TEST(FastInterp, ExplorationParityBugsuite)
{
    // First few PMDK reproducers, buggy builds: crash exploration
    // digests must match across interpreter engines.
    const auto &cases = apps::pmdkBugCases();
    size_t n = std::min<size_t>(cases.size(), 3);
    for (size_t i = 0; i < n; i++) {
        auto m = cases[i].build(false);
        pmcheck::CrashExplorerConfig xc;
        xc.entry = cases[i].entry;
        xc.recovery = cases[i].entry;
        xc.stepStride = 8;
        xc.vmEngine = vm::VmEngine::Tree;
        auto tree = pmcheck::exploreCrashes(m.get(), xc);
        xc.vmEngine = vm::VmEngine::Bytecode;
        auto fast = pmcheck::exploreCrashes(m.get(), xc);
        EXPECT_TRUE(tree == fast) << cases[i].id;
    }
}

TEST(FastInterp, SuperinstructionsFuseAndDisableUnderTrace)
{
    auto append = buildAppendModule();
    pmem::PmPool pool(1u << 20);
    vm::VmConfig vc;
    vc.engine = vm::VmEngine::Bytecode;
    vm::Vm machine(append.get(), &pool, vc);
    const vm::BcProgram &prog = machine.bytecode();
    EXPECT_TRUE(prog.options.enableSuper);
    EXPECT_GT(prog.totalFused, 0u);

    pmem::PmPool tpool(1u << 20);
    vc.traceEnabled = true;
    vm::Vm traced(append.get(), &tpool, vc);
    const vm::BcProgram &tprog = traced.bytecode();
    EXPECT_FALSE(tprog.options.enableSuper);
    EXPECT_EQ(tprog.totalFused, 0u);
    traced.run("append", {16});
    EXPECT_EQ(traced.fastSuperExecuted(), 0u);
}

TEST(FastInterp, GoldenDisassembly)
{
    // Pins the bytecode encoding, superinstruction selection, and
    // constant-pool layout; HIPPO_REGEN_GOLDEN=1 rewrites.
    auto spin = buildSpinModule();
    auto append = buildAppendModule();
    std::string text =
        vm::disassemble(vm::compileModule(*spin)) + "\n" +
        vm::disassemble(vm::compileModule(*append));
    const char *path =
        HIPPO_SOURCE_DIR "/tests/golden/fast_interp_bytecode.txt";
    if (std::getenv("HIPPO_REGEN_GOLDEN")) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << text;
        return;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(text, ss.str());
}

} // namespace hippo::test
