/**
 * @file
 * Tests for the static durability checker: per-kind unit modules,
 * interprocedural escape chains, the synthetic exit durability
 * point, determinism, byte-exact golden reports, the zero-false-
 * negative cross-validation against the dynamic detector on every
 * bundled application, and the static pre-filter's effect on crash
 * exploration.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "analysis/durability_checker.hh"
#include "apps/bugsuite.hh"
#include "apps/pclht.hh"
#include "apps/pmcache.hh"
#include "apps/pmkv.hh"
#include "apps/pmlog.hh"
#include "ir/parser.hh"
#include "pmcheck/crash_explorer.hh"
#include "support/metrics.hh"
#include "test_util.hh"

namespace hippo::test
{

using analysis::StaticCheckerConfig;
using analysis::StaticReport;
using analysis::checkDurability;
using ir::FenceKind;
using ir::FlushKind;
using ir::IRBuilder;
using ir::Type;
using pmcheck::BugKind;

namespace
{

/** Trace @p entry (with args) and run the dynamic detector. */
pmcheck::Report
dynReport(ir::Module *m, const std::string &entry,
          const std::vector<uint64_t> &args = {})
{
    pmem::PmPool pool(16u << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(m, &pool, vc);
    machine.run(entry, args);
    return pmcheck::analyze(machine.trace());
}

/** Every dynamic bug's store site must appear in the static report:
 *  the zero-false-negative contract. */
void
expectZeroFalseNegatives(const pmcheck::Report &dyn,
                         const StaticReport &st,
                         const std::string &what)
{
    for (const auto &bug : dyn.bugs)
        EXPECT_TRUE(st.coversStoreSite(bug.storeSiteKey()))
            << what << ": dynamic bug at " << bug.storeSiteKey()
            << " (" << pmcheck::bugKindName(bug.kind)
            << ") missed by the static checker";
}

/**
 * One-block module: pmmap, one 8-byte store, then the caller-chosen
 * durability suffix before a durpoint.
 */
std::unique_ptr<ir::Module>
buildStoreModule(bool flush, FlushKind fk, bool fence)
{
    auto m = std::make_unique<ir::Module>("unit");
    IRBuilder b(m.get());
    ir::Function *main = m->addFunction("main", Type::Void);
    b.setInsertPoint(main->addBlock("entry"));
    ir::Instruction *pm = b.createPmMap("unit.pool", 64);
    b.createStore(b.getInt(7), pm, 8);
    if (flush)
        b.createFlush(pm, fk);
    if (fence)
        b.createFence(FenceKind::Sfence);
    b.createDurPoint("commit");
    b.createRet();
    ir::verifyOrDie(*m);
    return m;
}

std::string
readFileOrDie(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Byte-exact golden comparison; HIPPO_REGEN_GOLDEN=1 rewrites the
 *  golden instead (see docs/FORMATS.md §6). */
void
compareGolden(const std::string &text, const std::string &path)
{
    if (std::getenv("HIPPO_REGEN_GOLDEN")) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << text;
        return;
    }
    EXPECT_EQ(text, readFileOrDie(path));
}

} // namespace

TEST(DurabilityChecker, CleanClflushIsClean)
{
    auto m = buildStoreModule(true, FlushKind::Clflush, false);
    auto rep = checkDurability(*m);
    EXPECT_TRUE(rep.clean()) << rep.writeText();
    EXPECT_EQ(rep.storesTracked, 1u);
    EXPECT_EQ(rep.flushesSeen, 1u);
    EXPECT_EQ(rep.durPointsSeen, 1u);
}

TEST(DurabilityChecker, CleanClwbFenceIsClean)
{
    auto m = buildStoreModule(true, FlushKind::Clwb, true);
    auto rep = checkDurability(*m);
    EXPECT_TRUE(rep.clean()) << rep.writeText();
}

TEST(DurabilityChecker, ClwbWithoutFenceIsMissingFence)
{
    auto m = buildStoreModule(true, FlushKind::Clwb, false);
    auto rep = checkDurability(*m);
    ASSERT_EQ(rep.candidates.size(), 1u) << rep.writeText();
    EXPECT_EQ(rep.candidates[0].kind, BugKind::MissingFence);
    EXPECT_EQ(rep.candidates[0].durLabel, "commit");
}

TEST(DurabilityChecker, FenceWithoutFlushIsMissingFlush)
{
    auto m = buildStoreModule(false, FlushKind::Clwb, true);
    auto rep = checkDurability(*m);
    ASSERT_EQ(rep.candidates.size(), 1u) << rep.writeText();
    EXPECT_EQ(rep.candidates[0].kind, BugKind::MissingFlush);
}

TEST(DurabilityChecker, BareStoreIsMissingFlushFence)
{
    auto m = buildStoreModule(false, FlushKind::Clwb, false);
    auto rep = checkDurability(*m);
    ASSERT_EQ(rep.candidates.size(), 1u) << rep.writeText();
    EXPECT_EQ(rep.candidates[0].kind, BugKind::MissingFlushFence);
    EXPECT_EQ(rep.candidates[0].storeSize, 8u);
}

TEST(DurabilityChecker, VolatileStoreIgnored)
{
    auto m = std::make_unique<ir::Module>("vol");
    IRBuilder b(m.get());
    ir::Function *main = m->addFunction("main", Type::Void);
    b.setInsertPoint(main->addBlock("entry"));
    ir::Instruction *buf = b.createAlloca(64);
    b.createStore(b.getInt(7), buf, 8);
    b.createDurPoint("commit");
    b.createRet();
    ir::verifyOrDie(*m);

    auto rep = checkDurability(*m);
    EXPECT_TRUE(rep.clean()) << rep.writeText();
    EXPECT_EQ(rep.storesTracked, 0u);
}

TEST(DurabilityChecker, LoopStoreFlushedInSameBlockIsClean)
{
    // for (i = 0; i < 8; i++) { pm[i*8] = i; clflush(&pm[i*8]); }
    // The flush targets the same GEP value in the same block
    // execution, so it must-covers the store even though the offset
    // is a loop-carried unknown.
    auto m = std::make_unique<ir::Module>("loop");
    IRBuilder b(m.get());
    ir::Function *main = m->addFunction("main", Type::Void);
    ir::BasicBlock *entry = main->addBlock("entry");
    ir::BasicBlock *loop = main->addBlock("loop");
    ir::BasicBlock *body = main->addBlock("body");
    ir::BasicBlock *done = main->addBlock("done");

    b.setInsertPoint(entry);
    ir::Instruction *pm = b.createPmMap("loop.pool", 256);
    ir::Instruction *iv = b.createAlloca(8);
    b.createStore(b.getInt(0), iv, 8);
    b.createBr(loop);

    b.setInsertPoint(loop);
    ir::Instruction *i = b.createLoad(iv, 8);
    ir::Instruction *more =
        b.createCmp(ir::CmpPred::Ult, i, b.getInt(8));
    b.createCondBr(more, body, done);

    b.setInsertPoint(body);
    ir::Instruction *off = b.createMul(i, b.getInt(8));
    ir::Instruction *p = b.createGep(pm, off);
    b.createStore(i, p, 8);
    b.createFlush(p, FlushKind::Clflush);
    b.createStore(b.createAdd(i, b.getInt(1)), iv, 8);
    b.createBr(loop);

    b.setInsertPoint(done);
    b.createDurPoint("commit");
    b.createRet();
    ir::verifyOrDie(*m);

    auto rep = checkDurability(*m);
    EXPECT_TRUE(rep.clean()) << rep.writeText();
}

TEST(DurabilityChecker, ExitDurPointCatchesEscapingStore)
{
    // A store that never meets a durpoint still escapes to the
    // synthetic "exit" durability point, as the VM's
    // durPointAtExit does dynamically.
    auto m = std::make_unique<ir::Module>("exitcase");
    IRBuilder b(m.get());
    ir::Function *main = m->addFunction("main", Type::Void);
    b.setInsertPoint(main->addBlock("entry"));
    ir::Instruction *pm = b.createPmMap("exit.pool", 64);
    b.createStore(b.getInt(7), pm, 8);
    b.createRet();
    ir::verifyOrDie(*m);

    auto rep = checkDurability(*m);
    ASSERT_EQ(rep.candidates.size(), 1u) << rep.writeText();
    EXPECT_EQ(rep.candidates[0].durLabel, "exit");
    EXPECT_EQ(rep.candidates[0].kind, BugKind::MissingFlushFence);

    StaticCheckerConfig no_exit;
    no_exit.checkExitDurPoint = false;
    EXPECT_TRUE(checkDurability(*m, no_exit).clean());
}

TEST(DurabilityChecker, Listing5InterproceduralEscape)
{
    for (bool with_fence : {false, true}) {
        auto m = buildListing5(with_fence);
        StaticCheckerConfig cfg;
        cfg.entry = "foo";
        auto st = checkDurability(*m, cfg);

        // The PM store lives in @update, two calls below the
        // durpoint in @foo: the record must escape the whole chain.
        ASSERT_FALSE(st.candidates.empty()) << st.writeText();
        const auto &c = st.candidates.front();
        EXPECT_EQ(c.storeStack.front().function, "update");
        EXPECT_GE(c.storeStack.size(), 2u);

        auto dyn = dynReport(m.get(), "foo");
        ASSERT_FALSE(dyn.bugs.empty());
        expectZeroFalseNegatives(
            dyn, st, with_fence ? "listing5+fence" : "listing5");
    }
}

TEST(DurabilityChecker, CrossValidatePmlog)
{
    auto m = apps::buildPmlog({});
    StaticCheckerConfig cfg;
    cfg.entry = "log_example";
    auto st = checkDurability(*m, cfg);
    auto dyn = dynReport(m.get(), "log_example", {8});
    ASSERT_FALSE(dyn.bugs.empty());
    expectZeroFalseNegatives(dyn, st, "pmlog");
}

TEST(DurabilityChecker, CrossValidatePclht)
{
    auto m = apps::buildPclht({});
    StaticCheckerConfig cfg;
    cfg.entry = "clht_example";
    auto st = checkDurability(*m, cfg);
    auto dyn = dynReport(m.get(), "clht_example", {24});
    ASSERT_FALSE(dyn.bugs.empty());
    expectZeroFalseNegatives(dyn, st, "pclht");
}

TEST(DurabilityChecker, CrossValidatePmcache)
{
    auto m = apps::buildPmcache({});
    StaticCheckerConfig cfg;
    cfg.entry = "mc_example";
    auto st = checkDurability(*m, cfg);
    auto dyn = dynReport(m.get(), "mc_example", {24});
    ASSERT_FALSE(dyn.bugs.empty());
    expectZeroFalseNegatives(dyn, st, "pmcache");
}

TEST(DurabilityChecker, CrossValidatePmkv)
{
    // pmkv has per-request entry points; the dynamic trace spans a
    // short mixed workload while the static side checks each entry
    // the workload used and the union of sites must cover every
    // dynamic bug.
    auto m = apps::buildPmkv({});
    pmem::PmPool pool(32u << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(m.get(), &pool, vc);
    machine.run("kv_init");
    machine.run("kv_handle_set", {1, 32});
    machine.run("kv_handle_set", {2, 32});
    machine.run("kv_handle_update", {1, 16});
    machine.run("kv_handle_rmw", {2, 16});
    machine.run("kv_handle_get", {1});
    machine.run("kv_handle_scan", {1, 4});
    auto dyn = pmcheck::analyze(machine.trace());
    ASSERT_FALSE(dyn.bugs.empty());

    const char *entries[] = {"kv_init",       "kv_handle_set",
                             "kv_handle_update", "kv_handle_rmw",
                             "kv_handle_get", "kv_handle_scan"};
    std::vector<StaticReport> reports;
    for (const char *e : entries) {
        StaticCheckerConfig cfg;
        cfg.entry = e;
        reports.push_back(checkDurability(*m, cfg));
    }
    for (const auto &bug : dyn.bugs) {
        bool covered = false;
        for (const auto &st : reports)
            covered |= st.coversStoreSite(bug.storeSiteKey());
        EXPECT_TRUE(covered)
            << "pmkv: dynamic bug at " << bug.storeSiteKey()
            << " missed by every static entry";
    }
}

TEST(DurabilityChecker, CrossValidateBugsuite)
{
    for (const auto &c : apps::pmdkBugCases()) {
        auto m = c.build(false);
        StaticCheckerConfig cfg;
        cfg.entry = c.entry;
        auto st = checkDurability(*m, cfg);
        auto dyn = dynReport(m.get(), c.entry);
        ASSERT_FALSE(dyn.bugs.empty()) << c.id;
        expectZeroFalseNegatives(dyn, st, c.id);
    }
}

TEST(DurabilityChecker, DeterministicAcrossRuns)
{
    auto m = apps::buildPclht({});
    StaticCheckerConfig cfg;
    cfg.entry = "clht_example";
    std::string first = checkDurability(*m, cfg).writeText();
    for (int i = 0; i < 3; i++)
        EXPECT_EQ(checkDurability(*m, cfg).writeText(), first);
}

TEST(DurabilityChecker, GoldenCounterExample)
{
    std::string src =
        readFileOrDie(HIPPO_SOURCE_DIR "/examples/counter.pmir");
    std::string error;
    auto m = ir::parseModule(src, &error);
    ASSERT_TRUE(m) << error;

    auto st = checkDurability(*m);
    compareGolden(st.writeText(),
                  HIPPO_SOURCE_DIR
                  "/tests/golden/counter_static.txt");
}

TEST(DurabilityChecker, GoldenBugsuiteModule)
{
    const auto &c = apps::pmdkBugCases().front();
    auto m = c.build(false);
    StaticCheckerConfig cfg;
    cfg.entry = c.entry;
    auto st = checkDurability(*m, cfg);
    compareGolden(st.writeText(),
                  HIPPO_SOURCE_DIR
                  "/tests/golden/bugsuite0_static.txt");
}

TEST(DurabilityChecker, ToReportProjection)
{
    auto m = buildStoreModule(false, FlushKind::Clwb, true);
    auto st = checkDurability(*m);
    auto r = st.toReport();
    ASSERT_EQ(r.bugs.size(), st.candidates.size());
    EXPECT_EQ(r.bugs[0].kind, st.candidates[0].kind);
    EXPECT_EQ(r.bugs[0].storeSiteKey(),
              st.candidates[0].storeSiteKey());
    EXPECT_EQ(r.pmStoresSeen, st.storesTracked);
    EXPECT_EQ(r.fencesSeen, st.fencesSeen);
}

TEST(DurabilityChecker, ExportMetricsCounters)
{
    auto m = buildStoreModule(false, FlushKind::Clwb, false);
    auto st = checkDurability(*m);
    support::MetricsRegistry reg;
    st.exportMetrics(reg);
    EXPECT_EQ(reg.counter("static.runs").value(), 1u);
    EXPECT_EQ(reg.counter("static.stores_tracked").value(), 1u);
    EXPECT_EQ(reg.counter("static.candidates.total").value(), 1u);
    EXPECT_EQ(
        reg.counter("static.candidates.missing-flush&fence").value(),
        1u);
}

namespace
{

/**
 * Three labeled durpoints; the only PM store sits between "b" and
 * "c", so the static checker names exactly label "c" suspicious.
 * A recovery entry reads the counter back.
 */
std::unique_ptr<ir::Module>
buildThreeDurpoints()
{
    auto m = std::make_unique<ir::Module>("prio");
    IRBuilder b(m.get());
    ir::Function *main = m->addFunction("main", Type::Void);
    b.setInsertPoint(main->addBlock("entry"));
    ir::Instruction *pm = b.createPmMap("prio.pool", 64);
    b.createDurPoint("a");
    b.createDurPoint("b");
    b.createStore(b.getInt(41), pm, 8);
    b.createDurPoint("c");
    b.createRet();

    ir::Function *rec = m->addFunction("recover", Type::Int);
    b.setInsertPoint(rec->addBlock("entry"));
    ir::Instruction *pm2 = b.createPmMap("prio.pool", 64);
    b.createRet(b.createLoad(pm2, 8));
    ir::verifyOrDie(*m);
    return m;
}

} // namespace

TEST(DurabilityChecker, PrefilterPrioritizesFlaggedDurpoints)
{
    auto m = buildThreeDurpoints();
    auto st = checkDurability(*m);
    ASSERT_EQ(st.durLabels(), std::vector<std::string>{"c"});

    pmcheck::CrashExplorerConfig xc;
    xc.entry = "main";
    xc.recovery = "recover";
    xc.maxCrashes = 1;

    // Without the pre-filter a one-crash budget lands on the first
    // durpoint; with it, on the statically-flagged one.
    auto plain = exploreCrashes(m.get(), xc);
    ASSERT_EQ(plain.outcomes.size(), 1u);
    EXPECT_EQ(plain.outcomes[0].crashPoint, 0u);

    xc.priorityDurLabels = st.durLabels();
    auto prio = exploreCrashes(m.get(), xc);
    ASSERT_EQ(prio.outcomes.size(), 1u);
    EXPECT_EQ(prio.outcomes[0].crashPoint, 2u);
}

TEST(DurabilityChecker, PrefilterPreservesCoverageUnderFullBudget)
{
    auto m = buildThreeDurpoints();
    auto st = checkDurability(*m);

    pmcheck::CrashExplorerConfig xc;
    xc.entry = "main";
    xc.recovery = "recover";

    auto plain = exploreCrashes(m.get(), xc);
    xc.priorityDurLabels = st.durLabels();
    auto prio = exploreCrashes(m.get(), xc);

    // Same crash points, only reordered; same recovered values per
    // point.
    auto key = [](const pmcheck::CrashOutcome &o) {
        return std::make_pair(o.crashPoint, o.recovered);
    };
    std::set<std::pair<uint64_t, uint64_t>> a, b;
    for (const auto &o : plain.outcomes)
        a.insert(key(o));
    for (const auto &o : prio.outcomes)
        b.insert(key(o));
    EXPECT_EQ(a, b);
    EXPECT_EQ(plain.durPointsInRun, prio.durPointsInRun);
    EXPECT_EQ(plain.cleanRunRecovered, prio.cleanRunRecovered);
}

TEST(DurabilityChecker, FixerVerifySeedsPriorityFromStaticReport)
{
    auto m = apps::buildPmlog({});
    StaticCheckerConfig scfg;
    scfg.entry = "log_example";
    auto st = checkDurability(*m, scfg);
    ASSERT_FALSE(st.durLabels().empty());

    pmcheck::CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {8};
    xc.recovery = "log_walk";
    xc.maxCrashes = 4;
    xc.jobs = 1;

    core::FixerConfig fcfg;
    fcfg.staticReport = &st;
    fcfg.jobs = 1;
    core::Fixer fixer(m.get(), fcfg);
    auto via_fixer = fixer.verifyFixed(xc);

    auto expect = xc;
    expect.priorityDurLabels = st.durLabels();
    EXPECT_EQ(via_fixer, exploreCrashes(m.get(), expect));
}

} // namespace hippo::test
