/**
 * @file
 * Unit tests for the global flush/fence optimizer
 * (core/flush_optimizer.hh): one positive and one negative case per
 * transformation, byte-exact optimizer-report goldens
 * (HIPPO_REGEN_GOLDEN=1 rewrites them), the checked
 * optimize-and-verify stage, and backfilled coverage for the older
 * same-block flush cleaner (core/flush_cleaner.hh).
 */

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/flush_cleaner.hh"
#include "core/flush_optimizer.hh"
#include "ir/instruction.hh"
#include "ir/parser.hh"
#include "support/metrics.hh"
#include "test_util.hh"

namespace
{

using namespace hippo;

std::unique_ptr<ir::Module>
parse(const std::string &text)
{
    std::string err;
    auto m = ir::parseModule(text, &err);
    EXPECT_NE(m, nullptr) << err;
    return m;
}

size_t
countOp(const ir::Module &m, ir::Opcode op)
{
    size_t n = 0;
    for (const auto &f : m.functions())
        for (const auto &bb : f->blocks())
            for (const auto &in : *bb)
                n += in->op() == op;
    return n;
}

/** Config with exactly one transformation enabled. */
core::FlushOptConfig
only(bool core::FlushOptConfig::*field)
{
    core::FlushOptConfig cfg;
    cfg.dedupSameLine = false;
    cfg.elideDominated = false;
    cfg.hoistPartial = false;
    cfg.coalesceFences = false;
    cfg.sinkAndMerge = false;
    cfg.loopRange = false;
    cfg.*field = true;
    return cfg;
}

std::string
readFileOrDie(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Byte-exact golden comparison; HIPPO_REGEN_GOLDEN=1 rewrites the
 *  expectation files in the source tree. */
void
compareGolden(const std::string &text, const std::string &path)
{
    if (std::getenv("HIPPO_REGEN_GOLDEN")) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << text;
        return;
    }
    EXPECT_EQ(text, readFileOrDie(path));
}

/** The fixer's range-flush helper (shape as core/fixer.cc emits
 *  it) — pass E only fires when the module already carries it. */
constexpr const char *kRangeHelper = R"(
func @__hippo_flush_range(%base: ptr, %len: i64) -> void {
entry:
    %iv = alloca 8
    store 0, %iv, 8
    br %h
h:
    %i = load %iv, 8
    %more = cmp ult %i, %len
    condbr %more, %body, %exit
body:
    %p = gep %base, %i
    flush clwb %p
    %ni = add %i, 64
    store %ni, %iv, 8
    br %h
exit:
    ret
}
)";

} // namespace

// ---------------------------------------------------------------
// Pass B: forward same-line dedup.

TEST(FlushOptimizer, DedupRemovesEarlierSameLineFlush)
{
    auto m = parse(R"(
module "t"
func @main() -> i64 {
entry:
    %p = pmmap "r", 64
    store 1, %p, 8
    flush clwb %p
    flush clwb %p
    fence sfence
    durpoint "d"
    ret 0
}
)");
    auto st = core::optimizeFlushes(
        m.get(), only(&core::FlushOptConfig::dedupSameLine));
    EXPECT_EQ(st.flushesDeduped, 1u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), 1u);
}

TEST(FlushOptimizer, DedupBlockedByFenceAndDurPoint)
{
    auto m = parse(R"(
module "t"
func @main() -> i64 {
entry:
    %p = pmmap "r", 64
    store 1, %p, 8
    flush clwb %p
    fence sfence
    durpoint "d1"
    store 2, %p, 8
    flush clwb %p
    fence sfence
    durpoint "d2"
    ret 0
}
)");
    auto st = core::optimizeFlushes(
        m.get(), only(&core::FlushOptConfig::dedupSameLine));
    EXPECT_EQ(st.flushesDeduped, 0u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), 2u);
}

TEST(FlushOptimizer, ClflushIsNeverDeduped)
{
    // clflush persists immediately; removing the earlier one would
    // leave the line unpersisted until the later flush retires.
    auto m = parse(R"(
module "t"
func @main() -> i64 {
entry:
    %p = pmmap "r", 64
    store 1, %p, 8
    flush clflush %p
    flush clwb %p
    fence sfence
    durpoint "d"
    ret 0
}
)");
    auto st = core::optimizeFlushes(
        m.get(), only(&core::FlushOptConfig::dedupSameLine));
    EXPECT_EQ(st.flushesDeduped, 0u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), 2u);
}

// ---------------------------------------------------------------
// Pass A: clean-line elision.

TEST(FlushOptimizer, ElideRemovesCleanLineFlushAcrossBlocks)
{
    auto m = parse(R"(
module "t"
func @main() -> i64 {
entry:
    %p = pmmap "r", 64
    store 1, %p, 8
    flush clwb %p
    br %tail
tail:
    flush clwb %p
    fence sfence
    durpoint "d"
    ret 0
}
)");
    auto st = core::optimizeFlushes(
        m.get(), only(&core::FlushOptConfig::elideDominated));
    EXPECT_EQ(st.flushesElided, 1u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), 1u);
}

TEST(FlushOptimizer, ElideBlockedByInterveningStore)
{
    auto m = parse(R"(
module "t"
func @main() -> i64 {
entry:
    %p = pmmap "r", 64
    store 1, %p, 8
    flush clwb %p
    store 2, %p, 8
    flush clwb %p
    fence sfence
    durpoint "d"
    ret 0
}
)");
    auto st = core::optimizeFlushes(
        m.get(), only(&core::FlushOptConfig::elideDominated));
    EXPECT_EQ(st.flushesElided, 0u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), 2u);
}

TEST(FlushOptimizer, ElideBlockedByMemcpyBarrier)
{
    auto m = parse(R"(
module "t"
func @main() -> i64 {
entry:
    %p = pmmap "r", 128
    %q = gep %p, 64
    store 1, %p, 8
    flush clwb %p
    memcpy %p, %q, 8
    flush clwb %p
    fence sfence
    durpoint "d"
    ret 0
}
)");
    auto st = core::optimizeFlushes(
        m.get(), only(&core::FlushOptConfig::elideDominated));
    EXPECT_EQ(st.flushesElided, 0u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), 2u);
}

TEST(FlushOptimizer, MayAliasOnlyFlushIsKept)
{
    // Two dynamic geps off the same region may alias but are never
    // must-same-line: neither elision nor dedup may fire.
    auto m = parse(R"(
module "t"
func @f(%i: i64, %j: i64) -> void {
entry:
    %p = pmmap "r", 4096
    %a = gep %p, %i
    %b = gep %p, %j
    store 1, %a, 8
    store 2, %b, 8
    flush clwb %a
    flush clwb %b
    fence sfence
    durpoint "d"
    ret
}
func @main() -> i64 {
entry:
    call @f(8, 8)
    ret 0
}
)");
    core::FlushOptConfig cfg;
    cfg.hoistPartial = false;
    cfg.coalesceFences = false;
    cfg.sinkAndMerge = false;
    cfg.loopRange = false;
    auto st = core::optimizeFlushes(m.get(), cfg);
    EXPECT_EQ(st.flushesRemoved(), 0u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), 2u);
}

// ---------------------------------------------------------------
// Pass C: partial-redundancy hoisting.

TEST(FlushOptimizer, HoistMergesDiamondSiblings)
{
    auto m = parse(R"(
module "t"
func @f(%c: i64) -> void {
entry:
    %p = pmmap "r", 64
    store 1, %p, 8
    condbr %c, %t, %e
t:
    flush clwb %p
    br %j
e:
    flush clwb %p
    br %j
j:
    fence sfence
    durpoint "d"
    ret
}
func @main() -> i64 {
entry:
    call @f(1)
    ret 0
}
)");
    auto st = core::optimizeFlushes(
        m.get(), only(&core::FlushOptConfig::hoistPartial));
    EXPECT_EQ(st.flushesHoisted, 1u);
    EXPECT_EQ(st.hoistSitesRemoved, 2u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), 1u);
}

TEST(FlushOptimizer, HoistRejectsLoopBackEdge)
{
    // NCD of {body, exit} is the loop header: hoisting there would
    // re-execute the flush every iteration.
    auto m = parse(R"(
module "t"
func @f(%n: i64) -> void {
entry:
    %p = pmmap "r", 64
    store 1, %p, 8
    br %h
h:
    %z = cmp ult 0, %n
    condbr %z, %body, %exit
body:
    flush clwb %p
    br %h
exit:
    flush clwb %p
    fence sfence
    durpoint "d"
    ret
}
func @main() -> i64 {
entry:
    call @f(1)
    ret 0
}
)");
    auto st = core::optimizeFlushes(
        m.get(), only(&core::FlushOptConfig::hoistPartial));
    EXPECT_EQ(st.flushesHoisted, 0u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), 2u);
}

TEST(FlushOptimizer, HoistRejectsEscapingCallInWindow)
{
    auto m = parse(R"(
module "t"
func @leak() -> void {
entry:
    ret
}
func @f(%c: i64) -> void {
entry:
    %p = pmmap "r", 64
    store 1, %p, 8
    condbr %c, %t, %e
t:
    call @leak()
    flush clwb %p
    br %j
e:
    flush clwb %p
    br %j
j:
    fence sfence
    durpoint "d"
    ret
}
func @main() -> i64 {
entry:
    call @f(1)
    ret 0
}
)");
    auto st = core::optimizeFlushes(
        m.get(), only(&core::FlushOptConfig::hoistPartial));
    EXPECT_EQ(st.flushesHoisted, 0u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), 2u);
}

TEST(FlushOptimizer, HoistRejectsMixedFlushKinds)
{
    auto m = parse(R"(
module "t"
func @f(%c: i64) -> void {
entry:
    %p = pmmap "r", 64
    store 1, %p, 8
    condbr %c, %t, %e
t:
    flush clwb %p
    br %j
e:
    flush clflushopt %p
    br %j
j:
    fence sfence
    durpoint "d"
    ret
}
func @main() -> i64 {
entry:
    call @f(1)
    ret 0
}
)");
    auto st = core::optimizeFlushes(
        m.get(), only(&core::FlushOptConfig::hoistPartial));
    EXPECT_EQ(st.flushesHoisted, 0u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), 2u);
}

// ---------------------------------------------------------------
// Fence coalescing.

TEST(FlushOptimizer, FenceForwardRemovesNoOpFence)
{
    auto m = parse(R"(
module "t"
func @main() -> i64 {
entry:
    %p = pmmap "r", 64
    store 1, %p, 8
    flush clwb %p
    fence sfence
    fence sfence
    durpoint "d"
    ret 0
}
)");
    auto st = core::optimizeFlushes(
        m.get(), only(&core::FlushOptConfig::coalesceFences));
    EXPECT_EQ(st.fencesForward, 1u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Fence), 1u);
}

TEST(FlushOptimizer, FenceForwardBlockedByEnqueuingFlush)
{
    auto m = parse(R"(
module "t"
func @main() -> i64 {
entry:
    %p = pmmap "r", 64
    store 1, %p, 8
    flush clwb %p
    fence sfence
    store 2, %p, 8
    flush clwb %p
    fence sfence
    durpoint "d"
    ret 0
}
)");
    auto st = core::optimizeFlushes(
        m.get(), only(&core::FlushOptConfig::coalesceFences));
    // The flush between the fences re-fills the write-back queue,
    // so the *no-op* (forward) rule must not touch the second
    // fence. The first fence does fold into the second via the
    // backward rule: nothing observes persistence between them, so
    // delaying its drain to the later fence is durpoint-exact.
    EXPECT_EQ(st.fencesForward, 0u);
    EXPECT_EQ(st.fencesBackward, 1u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Fence), 1u);
    ASSERT_EQ(st.records.size(), 1u);
    EXPECT_EQ(st.records[0].kind,
              core::FlushOptRecord::Kind::FenceBackward);
}

TEST(FlushOptimizer, FenceBackwardBlockedByDurPoint)
{
    // A durability point between the fences observes the first
    // fence's drain: neither fence may move or fold.
    auto m = parse(R"(
module "t"
func @main() -> i64 {
entry:
    %p = pmmap "r", 64
    store 1, %p, 8
    flush clwb %p
    fence sfence
    durpoint "mid"
    store 2, %p, 8
    flush clwb %p
    fence sfence
    durpoint "d"
    ret 0
}
)");
    auto st = core::optimizeFlushes(
        m.get(), only(&core::FlushOptConfig::coalesceFences));
    EXPECT_EQ(st.fencesForward, 0u);
    EXPECT_EQ(st.fencesBackward, 0u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Fence), 2u);
}

// ---------------------------------------------------------------
// Pass D: sink-and-merge.

TEST(FlushOptimizer, SinkMergeDropsInteriorFlush)
{
    // Paired (store; flush) chain at +0/+8/+16: the interior +8
    // flush's line must coincide with a neighbor's line for every
    // base alignment (span < 64), so it is dropped.
    auto m = parse(R"(
module "t"
func @f(%i: i64) -> void {
entry:
    %r = pmmap "r", 4096
    %e = gep %r, %i
    %e8 = gep %e, 8
    %e16 = gep %e, 16
    store 1, %e, 8
    flush clwb %e
    store 2, %e8, 8
    flush clwb %e8
    store 3, %e16, 8
    flush clwb %e16
    fence sfence
    durpoint "d"
    ret
}
func @main() -> i64 {
entry:
    call @f(40)
    ret 0
}
)");
    auto st = core::optimizeFlushes(
        m.get(), only(&core::FlushOptConfig::sinkAndMerge));
    EXPECT_EQ(st.flushesMerged, 1u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), 2u);
}

TEST(FlushOptimizer, SinkMergeBlockedByUnpairedStore)
{
    // The window between +0 and +16 writes a *different* slot: the
    // last-write-before-cover discipline fails and nothing merges.
    auto m = parse(R"(
module "t"
func @f(%i: i64) -> void {
entry:
    %r = pmmap "r", 4096
    %e = gep %r, %i
    %e8 = gep %e, 8
    %e16 = gep %e, 16
    %o = gep %r, 2048
    store 1, %e, 8
    flush clwb %e
    store 9, %o, 8
    store 3, %e16, 8
    flush clwb %e16
    fence sfence
    durpoint "d"
    ret
}
func @main() -> i64 {
entry:
    call @f(40)
    ret 0
}
)");
    auto st = core::optimizeFlushes(
        m.get(), only(&core::FlushOptConfig::sinkAndMerge));
    EXPECT_EQ(st.flushesMerged, 0u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), 2u);
}

// ---------------------------------------------------------------
// Pass E: loop-range promotion.

namespace
{

/** The canonical fixer-emitted per-word flush loop over a dynamic
 *  buffer, plus a trailing fence + durpoint in the caller. */
std::string
loopModule(bool with_helper, bool call_in_body)
{
    std::string s = "module \"t\"\n";
    if (with_helper)
        s += kRangeHelper;
    s += R"(
func @noise() -> void {
entry:
    ret
}
func @copy(%dst: ptr, %len: i64) -> void {
entry:
    %iv = alloca 8
    store 0, %iv, 8
    br %h
h:
    %i = load %iv, 8
    %more = cmp ult %i, %len
    condbr %more, %body, %exit
body:
    %p = gep %dst, %i
    store 7, %p, 8
    flush clwb %p
)";
    if (call_in_body)
        s += "    call @noise()\n";
    s += R"(    %ni = add %i, 8
    store %ni, %iv, 8
    br %h
exit:
    fence sfence
    durpoint "copied"
    ret
}
func @main() -> i64 {
entry:
    %r = pmmap "r", 4096
    call @copy(%r, 128)
    ret 0
}
)";
    return s;
}

} // namespace

TEST(FlushOptimizer, LoopRangePromotesPerWordLoop)
{
    auto m = parse(loopModule(true, false));
    size_t flushes_before = countOp(*m, ir::Opcode::Flush);
    auto st = core::optimizeFlushes(
        m.get(), only(&core::FlushOptConfig::loopRange));
    EXPECT_EQ(st.loopRanges, 1u);
    // One flush leaves @copy; the helper's own loop flush stays (the
    // pass never rewrites the helper itself), so the static count
    // strictly drops.
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), flushes_before - 1);
}

TEST(FlushOptimizer, LoopRangeRequiresExistingHelper)
{
    auto m = parse(loopModule(false, false));
    auto st = core::optimizeFlushes(
        m.get(), only(&core::FlushOptConfig::loopRange));
    EXPECT_EQ(st.loopRanges, 0u);
}

TEST(FlushOptimizer, LoopRangeBlockedByCallInBody)
{
    auto m = parse(loopModule(true, true));
    auto st = core::optimizeFlushes(
        m.get(), only(&core::FlushOptConfig::loopRange));
    EXPECT_EQ(st.loopRanges, 0u);
}

// ---------------------------------------------------------------
// Deterministic report goldens.

TEST(FlushOptimizer, GoldenCompositeReport)
{
    auto m = parse(R"(
module "composite"
func @f(%c: i64) -> void {
entry:
    %p = pmmap "r", 64
    store 1, %p, 8
    flush clwb %p
    flush clwb %p
    condbr %c, %t, %e
t:
    flush clwb %p
    br %j
e:
    flush clwb %p
    br %j
j:
    fence sfence
    fence sfence
    durpoint "d"
    ret
}
func @main() -> i64 {
entry:
    call @f(1)
    ret 0
}
)");
    auto st = core::optimizeFlushes(m.get());
    compareGolden(st.writeText(),
                  HIPPO_SOURCE_DIR
                  "/tests/golden/flush_opt_composite.txt");
}

TEST(FlushOptimizer, GoldenLoopRangeReport)
{
    auto m = parse(loopModule(true, false));
    auto st = core::optimizeFlushes(m.get());
    compareGolden(st.writeText(),
                  HIPPO_SOURCE_DIR
                  "/tests/golden/flush_opt_loop.txt");
}

// ---------------------------------------------------------------
// The checked optimize-and-verify stage.

TEST(FlushOptimizer, OptimizeAndVerifyKeepsEquivalentModule)
{
    auto m = parse(R"(
module "t"
func @main() -> i64 {
entry:
    %p = pmmap "r", 64
    store 1, %p, 8
    flush clwb %p
    flush clwb %p
    fence sfence
    durpoint "d"
    ret 0
}
)");
    core::FlushOptVerifyConfig cfg;
    auto out = core::optimizeAndVerify(m, cfg);
    EXPECT_TRUE(out.changed);
    EXPECT_TRUE(out.verified);
    EXPECT_FALSE(out.reverted) << out.failReason;
    EXPECT_EQ(out.digestBefore, out.digestAfter);
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), 1u);
}

TEST(FlushOptimizer, OptimizeAndVerifyNoChangeIsVerified)
{
    auto m = parse(R"(
module "t"
func @main() -> i64 {
entry:
    %p = pmmap "r", 64
    store 1, %p, 8
    flush clwb %p
    fence sfence
    durpoint "d"
    ret 0
}
)");
    core::FlushOptVerifyConfig cfg;
    auto out = core::optimizeAndVerify(m, cfg);
    EXPECT_FALSE(out.changed);
    EXPECT_TRUE(out.verified);
    EXPECT_FALSE(out.reverted);
}

// ---------------------------------------------------------------
// Backfill: the fixer's same-block flush cleaner.

namespace
{

std::unique_ptr<ir::Module>
cleanerModule(const char *middle)
{
    std::string s = R"(
module "t"
func @callee() -> void {
entry:
    ret
}
func @main() -> i64 {
entry:
    %p = pmmap "r", 128
    %q = gep %p, 64
    store 1, %p, 8
    flush clwb %p
)";
    s += middle;
    s += R"(    flush clwb %p
    fence sfence
    durpoint "d"
    ret 0
}
)";
    return parse(s);
}

} // namespace

TEST(FlushCleaner, DuplicateFlushInBlockRemoved)
{
    auto m = cleanerModule("");
    auto st = core::cleanRedundantFlushes(m.get());
    EXPECT_EQ(st.flushesRemoved, 1u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), 1u);
}

TEST(FlushCleaner, MemcpyBarrierKeepsBothFlushes)
{
    auto m = cleanerModule("    memcpy %p, %q, 8\n");
    auto st = core::cleanRedundantFlushes(m.get());
    EXPECT_EQ(st.flushesRemoved, 0u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), 2u);
}

TEST(FlushCleaner, MemsetBarrierKeepsBothFlushes)
{
    auto m = cleanerModule("    memset %p, 0, 8\n");
    auto st = core::cleanRedundantFlushes(m.get());
    EXPECT_EQ(st.flushesRemoved, 0u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), 2u);
}

TEST(FlushCleaner, CallBarrierKeepsBothFlushes)
{
    auto m = cleanerModule("    call @callee()\n");
    auto st = core::cleanRedundantFlushes(m.get());
    EXPECT_EQ(st.flushesRemoved, 0u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), 2u);
}

TEST(FlushCleaner, CrossBlockDuplicateKept)
{
    auto m = parse(R"(
module "t"
func @main() -> i64 {
entry:
    %p = pmmap "r", 64
    store 1, %p, 8
    flush clwb %p
    br %tail
tail:
    flush clwb %p
    fence sfence
    durpoint "d"
    ret 0
}
)");
    auto st = core::cleanRedundantFlushes(m.get());
    EXPECT_EQ(st.flushesRemoved, 0u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), 2u);
}

TEST(FlushCleaner, DifferentOffsetSameBaseKept)
{
    auto m = parse(R"(
module "t"
func @main() -> i64 {
entry:
    %p = pmmap "r", 128
    %q = gep %p, 8
    store 1, %p, 8
    store 2, %q, 8
    flush clwb %p
    flush clwb %q
    fence sfence
    durpoint "d"
    ret 0
}
)");
    auto st = core::cleanRedundantFlushes(m.get());
    // Same line in fact, but the cleaner only trusts exact pointer
    // identity — the global optimizer owns the line-level reasoning.
    EXPECT_EQ(st.flushesRemoved, 0u);
    EXPECT_EQ(countOp(*m, ir::Opcode::Flush), 2u);
}

TEST(FlushCleaner, StatsExportThroughMetricsRegistry)
{
    auto m = cleanerModule("");
    auto st = core::cleanRedundantFlushes(m.get());
    support::MetricsRegistry reg;
    st.exportMetrics(reg);
    EXPECT_EQ(reg.counter("fixer.clean.runs").value(), 1u);
    EXPECT_EQ(reg.counter("fixer.clean.removed").value(),
              st.flushesRemoved);
    EXPECT_EQ(reg.counter("fixer.clean.kept").value(),
              st.flushesKept);
}
