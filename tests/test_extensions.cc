/**
 * @file
 * Tests for the extension features beyond the paper's core pipeline:
 * the §7 redundant-flush cleaner (the one safe performance-bug fix),
 * the source-level patch writer (§5.2), the PMTest input adapter
 * (§5.1), and torn-state crash injection in the VM.
 */

#include <gtest/gtest.h>

#include "apps/pmkv.hh"
#include "core/flush_cleaner.hh"
#include "core/patch_writer.hh"
#include "pmcheck/pmtest_adapter.hh"
#include "test_util.hh"

namespace hippo::test
{

using namespace hippo::ir;

namespace
{

size_t
countFlushes(const Function *f)
{
    size_t n = 0;
    for (const auto &bb : f->blocks()) {
        for (const auto &instr : *bb)
            n += instr->op() == Opcode::Flush;
    }
    return n;
}

} // namespace

TEST(FlushCleaner, RemovesBackToBackDuplicates)
{
    Module m;
    IRBuilder b(&m);
    Function *f = m.addFunction("f", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *pm = b.createPmMap("pool", 64);
    b.createStore(b.getInt(1), pm, 8);
    b.createFlush(pm, FlushKind::Clwb);
    b.createFlush(pm, FlushKind::Clwb); // redundant
    b.createFlush(pm, FlushKind::Clwb); // redundant
    b.createFence(FenceKind::Sfence);
    b.createFlush(pm, FlushKind::Clwb); // still redundant (no store)
    b.createRet();

    auto stats = core::cleanRedundantFlushes(f);
    EXPECT_EQ(stats.flushesRemoved, 3u);
    EXPECT_EQ(stats.flushesKept, 1u);
    EXPECT_EQ(countFlushes(f), 1u);
    EXPECT_TRUE(verifyFunction(*f).empty());
}

TEST(FlushCleaner, KeepsFlushAfterInterveningWrite)
{
    Module m;
    IRBuilder b(&m);
    Function *f = m.addFunction("f", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *pm = b.createPmMap("pool", 64);
    b.createStore(b.getInt(1), pm, 8);
    b.createFlush(pm, FlushKind::Clwb);
    b.createStore(b.getInt(2), pm, 8); // re-dirties
    b.createFlush(pm, FlushKind::Clwb); // required!
    b.createFence(FenceKind::Sfence);
    b.createRet();

    auto stats = core::cleanRedundantFlushes(f);
    EXPECT_EQ(stats.flushesRemoved, 0u);
    EXPECT_EQ(countFlushes(f), 2u);
}

TEST(FlushCleaner, CallsAreWriteBarriers)
{
    Module m;
    IRBuilder b(&m);
    Function *g = m.addFunction("g", Type::Void);
    b.setInsertPoint(g->addBlock("entry"));
    b.createRet();

    Function *f = m.addFunction("f", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *pm = b.createPmMap("pool", 64);
    b.createFlush(pm, FlushKind::Clwb);
    b.createCall(g, {});
    b.createFlush(pm, FlushKind::Clwb); // callee may have stored
    b.createRet();

    EXPECT_EQ(core::cleanRedundantFlushes(f).flushesRemoved, 0u);
}

TEST(FlushCleaner, DistinctPointersAreKept)
{
    Module m;
    IRBuilder b(&m);
    Function *f = m.addFunction("f", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *pm = b.createPmMap("pool", 256);
    Instruction *p2 = b.createGep(pm, b.getInt(64));
    b.createFlush(pm, FlushKind::Clwb);
    b.createFlush(p2, FlushKind::Clwb); // different value: keep
    b.createRet();

    EXPECT_EQ(core::cleanRedundantFlushes(f).flushesRemoved, 0u);
}

TEST(FlushCleaner, DoesNoHarmOnWholePrograms)
{
    // Cleaning a repaired program must not change behavior or
    // durability. The interprocedural pmkv repair produces per-store
    // flushes in clones (some coalescing on one line).
    auto m = buildListing5(true);
    runPipeline(m.get(), "foo");

    auto outputs = [](ir::Module *mod) {
        pmem::PmPool pool(1 << 20);
        vm::Vm machine(mod, &pool, {});
        machine.run("foo");
        return machine.outputs();
    };
    auto before = outputs(m.get());
    core::cleanRedundantFlushes(m.get());
    EXPECT_EQ(outputs(m.get()), before);

    pmem::PmPool pool(1 << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(m.get(), &pool, vc);
    machine.run("foo");
    EXPECT_TRUE(pmcheck::analyze(machine.trace()).clean())
        << "cleaning must not reintroduce durability bugs";
}

TEST(PatchWriter, RendersAnchorsAndClones)
{
    auto m = buildListing5(true);
    auto res = runPipeline(m.get(), "foo");
    std::string plan = core::renderPatchPlan(*m, res.summary);

    EXPECT_NE(plan.find("interprocedural"), std::string::npos);
    EXPECT_NE(plan.find("modify_PM"), std::string::npos);
    EXPECT_NE(plan.find("listing5.c:19"), std::string::npos)
        << "the call-site anchor location must be shown:\n" << plan;
    EXPECT_NE(plan.find("2 frame(s) above"), std::string::npos);
    EXPECT_NE(plan.find("CLWB after the PM store at listing5.c:2 (in @update_PM)"),
              std::string::npos)
        << plan;
}

TEST(PatchWriter, RendersIntraFixes)
{
    auto m = buildListing5(false);
    core::FixerConfig cfg;
    cfg.enableHoisting = false;
    auto res = runPipeline(m.get(), "foo", cfg);
    std::string plan = core::renderPatchPlan(*m, res.summary);
    EXPECT_NE(plan.find("intra-flush+fence"), std::string::npos);
    EXPECT_NE(plan.find("insert CLWB"), std::string::npos);
    EXPECT_NE(plan.find("SFENCE"), std::string::npos);
    EXPECT_NE(plan.find("listing5.c:2"), std::string::npos);
}

TEST(PmtestAdapter, ParsesAndDetectorFindsBugs)
{
    const char *log = R"(
PMTest_START
PMTest_STORE writer#3@w.c:10 0x20000000 8
PMTest_FLUSH writer#4@w.c:11 0x20000000 clwb
PMTest_STORE writer#5@w.c:12 0x20000040 8
PMTest_FENCE writer#6@w.c:13
PMTest_ASSERT writer#7@w.c:14 commit
PMTest_END
)";
    trace::Trace tr;
    std::string error;
    ASSERT_TRUE(pmcheck::readPmtestLog(log, tr, &error)) << error;
    EXPECT_EQ(tr.size(), 6u);

    auto report = pmcheck::analyze(tr);
    ASSERT_EQ(report.bugs.size(), 1u);
    EXPECT_EQ(report.bugs[0].kind, pmcheck::BugKind::MissingFlush);
    EXPECT_EQ(report.bugs[0].storeStack[0].function, "writer");
    EXPECT_EQ(report.bugs[0].storeStack[0].instrId, 5u);
}

TEST(PmtestAdapter, FixerConsumesPmtestInput)
{
    // End to end from a PMTest log: build a matching module, detect
    // from the foreign trace, repair intraprocedurally.
    auto m = std::make_unique<Module>("pmtest-target");
    IRBuilder b(m.get());
    Function *f = m->addFunction("writer", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    b.setLoc("w.c", 10);
    Instruction *pm = b.createPmMap("pool", 128);
    // Reserve ids so the log's instr ids line up.
    Instruction *store1 = b.createStore(b.getInt(1), pm, 8);
    Instruction *g =
        b.createGep(pm, b.getInt(64));
    b.setLoc("w.c", 12);
    Instruction *store2 = b.createStore(b.getInt(2), g, 8);
    b.createFence(FenceKind::Sfence);
    b.createDurPoint("commit");
    b.createRet();
    (void)store1;

    std::string log =
        "PMTest_START\n"
        "PMTest_STORE writer#" + std::to_string(store2->id()) +
        "@w.c:12 0x20000040 8\n"
        "PMTest_FENCE writer#9@w.c:13\n"
        "PMTest_ASSERT writer#10@w.c:14 commit\n"
        "PMTest_END\n";
    trace::Trace tr;
    ASSERT_TRUE(pmcheck::readPmtestLog(log, tr));
    auto report = pmcheck::analyze(tr);
    ASSERT_EQ(report.bugs.size(), 1u);

    core::Fixer fixer(m.get());
    auto summary = fixer.fix(report, tr);
    EXPECT_EQ(summary.fixes.size(), 1u);
    EXPECT_TRUE(summary.verifierProblems.empty());
}

TEST(PmtestAdapter, RejectsMalformedLogs)
{
    trace::Trace tr;
    std::string error;
    EXPECT_FALSE(pmcheck::readPmtestLog("PMTest_STORE x 1 2", tr,
                                        &error));
    EXPECT_NE(error.find("before PMTest_START"), std::string::npos);
    EXPECT_FALSE(pmcheck::readPmtestLog(
        "PMTest_START\nPMTest_STORE nosite 1 2\n", tr, &error));
    EXPECT_FALSE(pmcheck::readPmtestLog(
        "PMTest_START\nPMTest_BOGUS a#1@b:2\n", tr, &error));
    EXPECT_FALSE(pmcheck::readPmtestLog("", tr, &error));
}

TEST(VmCrashAtStep, ProducesTornStatesRecoveryFilters)
{
    // Crash pmkv at arbitrary instruction boundaries; kv_recover's
    // checksum validation must never count an entry whose header
    // was torn.
    auto m = apps::buildPmkv(
        [] {
            apps::PmkvConfig c;
            c.variant = apps::PmkvVariant::Manual;
            c.buckets = 256;
            c.logCapacity = 1u << 20;
            return c;
        }());

    for (uint64_t crash_step : {200ull, 900ull, 2500ull, 6000ull}) {
        pmem::PmPool pool(16u << 20);
        uint64_t committed = 0;
        {
            vm::Vm init(m.get(), &pool, {});
            init.run("kv_init");
        }
        {
            vm::VmConfig vc;
            vc.crashAtStep = crash_step;
            vm::Vm machine(m.get(), &pool, vc);
            for (uint64_t k = 0; k < 8; k++) {
                auto r = machine.run("kv_handle_set", {k, 64});
                if (r.crashed)
                    break;
                committed++;
            }
        }
        pool.crash();
        vm::Vm recovery(m.get(), &pool, {});
        uint64_t recovered =
            recovery.run("kv_recover").returnValue;
        // Everything acknowledged must survive; at most one
        // in-flight entry may additionally be recovered if its
        // header happened to be complete.
        EXPECT_GE(recovered, committed) << "crash @" << crash_step;
        EXPECT_LE(recovered, committed + 1)
            << "crash @" << crash_step;
    }
}

} // namespace hippo::test
