/**
 * @file
 * Adversarial fault-injection tests: the torn-store crash model
 * (sub-line persistence the whole-line model cannot produce), its
 * composition with the crash explorer at every jobs/engine setting,
 * the VM watchdog (step / heap / wall-clock budgets, sandboxed
 * traps), and the explorer's graceful-degradation ladder.
 */

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/bugsuite.hh"
#include "apps/pclht.hh"
#include "apps/pmlog.hh"
#include "ir/parser.hh"
#include "pmcheck/crash_explorer.hh"
#include "pmem/pm_pool.hh"
#include "vm/vm.hh"

namespace hippo::test
{

using pmcheck::CrashExplorerConfig;
using pmcheck::ExploreEngine;
using pmcheck::exploreCrashes;
using pmem::FaultPlan;
using pmem::PmPool;
using vm::ExecOutcome;
using vm::Vm;
using vm::VmConfig;

namespace
{

/**
 * Fill one cache line with 8 distinct nonzero 8-byte chunks, leave
 * it unflushed, crash under @p plan, and return the persisted line.
 */
std::vector<uint8_t>
crashOneDirtyLine(const FaultPlan &plan, PmPool &pool)
{
    uint64_t base = pool.mapRegion("line", pmem::cacheLineSize);
    for (uint64_t i = 0; i < 8; i++) {
        uint64_t v = 0x1111111111111111ULL * (i + 1);
        pool.store(base + i * 8, (const uint8_t *)&v, 8);
    }
    pool.setFaultPlan(plan);
    pool.crash();
    std::vector<uint8_t> line(pmem::cacheLineSize);
    pool.loadPersisted(base, line.data(), line.size());
    return line;
}

/** Count 8-byte chunks of @p line holding the expected new value. */
unsigned
newChunks(const std::vector<uint8_t> &line)
{
    unsigned n = 0;
    for (uint64_t i = 0; i < 8; i++) {
        uint64_t v = 0x1111111111111111ULL * (i + 1);
        if (std::memcmp(line.data() + i * 8, &v, 8) == 0)
            n++;
    }
    return n;
}

} // namespace

TEST(FaultInjection, WholeLineModelIsAllOrNothing)
{
    // Baseline: without a fault plan, a crash drops the dirty line
    // entirely — the persisted line stays all-zero.
    PmPool pool(1 << 16);
    auto line = crashOneDirtyLine(FaultPlan{}, pool);
    EXPECT_EQ(newChunks(line), 0u);
    EXPECT_EQ(pool.stats().tornLines, 0u);
    EXPECT_EQ(pool.stats().faultedCrashes, 0u);
}

TEST(FaultInjection, TornStoreProducesSubLineState)
{
    // The acceptance bar: a state the whole-line model cannot
    // produce — a line where SOME chunks persisted and some did
    // not. With tornChance=1 and 8 chunks at p=0.5 each, almost
    // every seed gives a mixed line; scan a few so the test does
    // not encode one RNG stream.
    bool mixed_found = false;
    for (uint64_t seed = 1; seed <= 16 && !mixed_found; seed++) {
        FaultPlan plan;
        plan.seed = seed;
        plan.tornChance = 1.0;
        PmPool pool(1 << 16);
        auto line = crashOneDirtyLine(plan, pool);
        unsigned n = newChunks(line);
        EXPECT_EQ(pool.stats().faultedCrashes, 1u);
        if (n > 0 && n < 8) {
            mixed_found = true;
            EXPECT_GE(pool.stats().tornLines, 1u);
            EXPECT_EQ(pool.stats().tornChunks, n);
        }
    }
    EXPECT_TRUE(mixed_found)
        << "no seed in [1,16] tore a line partially";
}

TEST(FaultInjection, TornCrashIsDeterministicPerSeed)
{
    FaultPlan plan;
    plan.seed = 7;
    plan.tornChance = 0.8;
    plan.bitRotChance = 0.2;
    PmPool a(1 << 16), b(1 << 16);
    EXPECT_EQ(crashOneDirtyLine(plan, a), crashOneDirtyLine(plan, b));
    EXPECT_EQ(a.stats().tornChunks, b.stats().tornChunks);
    EXPECT_EQ(a.stats().bitRotFlips, b.stats().bitRotFlips);
}

TEST(FaultInjection, PersistedLinesAreNeverTorn)
{
    // A flushed + fenced line is durable; the fault pass must not
    // touch it, whatever the tornChance.
    PmPool pool(1 << 16);
    uint64_t base = pool.mapRegion("r", 2 * pmem::cacheLineSize);
    uint64_t v = 0xdeadbeefcafef00dULL;
    pool.store(base, (const uint8_t *)&v, 8);
    pool.flush(base, pmem::FlushOp::Clwb);
    pool.fence();
    // Second line stays dirty so the fault pass has work to do.
    pool.store(base + pmem::cacheLineSize, (const uint8_t *)&v, 8);

    FaultPlan plan;
    plan.tornChance = 1.0;
    plan.bitRotChance = 1.0;
    pool.setFaultPlan(plan);
    pool.crash();

    uint64_t got = 0;
    pool.loadPersisted(base, (uint8_t *)&got, 8);
    EXPECT_EQ(got, v);
}

TEST(FaultInjection, BitRotHitsOnlyUnflushedLines)
{
    // CLWB'd-but-unfenced lines sit in the write-back queue: they
    // may tear, but the bit-rot model (decaying cells that never
    // reached the DIMM) applies only to lines still dirty in cache.
    PmPool pool(1 << 16);
    uint64_t base = pool.mapRegion("r", pmem::cacheLineSize);
    uint64_t v = ~0ULL;
    pool.store(base, (const uint8_t *)&v, 8);
    pool.flush(base, pmem::FlushOp::Clwb); // queued, not fenced

    FaultPlan plan;
    plan.tornChance = 1.0;
    plan.bitRotChance = 1.0;
    pool.setFaultPlan(plan);
    pool.crash();
    EXPECT_EQ(pool.stats().bitRotFlips, 0u);

    uint64_t got = 0;
    pool.loadPersisted(base, (uint8_t *)&got, 8);
    EXPECT_TRUE(got == 0 || got == ~0ULL) << got;
}

TEST(FaultInjection, ExplorationByteIdenticalAcrossJobs)
{
    // Torn-store exploration on pmlog, pclht and a bugsuite case
    // must be byte-identical at any --jobs for a fixed seed.
    struct Case
    {
        const char *name;
        std::unique_ptr<ir::Module> m;
        CrashExplorerConfig xc;
    };
    std::vector<Case> cases;

    {
        apps::PmlogConfig cfg;
        cfg.seedBugs = false;
        cfg.capacity = 64 << 10;
        Case c{"pmlog", apps::buildPmlog(cfg), {}};
        c.xc.entry = "log_example";
        c.xc.entryArgs = {6};
        c.xc.recovery = "log_walk";
        c.xc.stepStride = 97;
        cases.push_back(std::move(c));
    }
    {
        Case c{"pclht", apps::buildPclht({}), {}};
        c.xc.entry = "clht_example";
        c.xc.entryArgs = {8};
        c.xc.recovery = "clht_recover";
        cases.push_back(std::move(c));
    }
    {
        const auto &bug = apps::pmdkBugCases().front();
        Case c{bug.id.c_str(), bug.build(false), {}};
        c.xc.entry = bug.entry;
        c.xc.recovery = bug.entry;
        cases.push_back(std::move(c));
    }

    for (auto &c : cases) {
        SCOPED_TRACE(c.name);
        c.xc.faults.seed = 42;
        c.xc.faults.tornChance = 0.4;
        c.xc.faults.bitRotChance = 0.01;
        c.xc.stepBudget = 2'000'000;
        c.xc.maxCrashes = 64;

        c.xc.jobs = 1;
        auto serial = exploreCrashes(c.m.get(), c.xc);
        c.xc.jobs = 4;
        auto parallel = exploreCrashes(c.m.get(), c.xc);
        EXPECT_EQ(serial, parallel);
    }
}

TEST(FaultInjection, ExplorationByteIdenticalAcrossEngines)
{
    apps::PmlogConfig cfg;
    cfg.seedBugs = false;
    cfg.capacity = 64 << 10;
    auto m = apps::buildPmlog(cfg);

    CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {5};
    xc.recovery = "log_walk";
    xc.stepStride = 113;
    xc.faults.seed = 9;
    xc.faults.tornChance = 0.5;
    xc.stepBudget = 2'000'000;

    xc.engine = ExploreEngine::Legacy;
    auto legacy = exploreCrashes(m.get(), xc);
    xc.engine = ExploreEngine::Snapshot;
    auto snap = exploreCrashes(m.get(), xc);
    EXPECT_EQ(legacy, snap);
}

TEST(FaultInjection, TornExplorationSurfacesNewStates)
{
    // On the buggy log (no flushes at all) the whole-line model
    // recovers nothing from any crash. The torn model persists
    // random sub-line fragments, so at least one crash point must
    // observe a different recovery — a state whole-line exploration
    // can never produce.
    auto m = apps::buildPmlog({});
    CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {8};
    xc.recovery = "log_walk";
    xc.stepStride = 61;
    xc.maxCrashes = 128;
    xc.stepBudget = 2'000'000;

    auto base = exploreCrashes(m.get(), xc);
    EXPECT_EQ(base.maxRecovered(), 0u);
    EXPECT_EQ(base.unverifiedCount(), 0u);

    xc.faults.seed = 3;
    xc.faults.tornChance = 1.0;
    auto torn = exploreCrashes(m.get(), xc);
    ASSERT_EQ(torn.outcomes.size(), base.outcomes.size());
    bool diverged = false;
    for (size_t i = 0; i < torn.outcomes.size(); i++)
        diverged |= !(torn.outcomes[i] == base.outcomes[i]);
    EXPECT_TRUE(diverged)
        << "torn exploration indistinguishable from whole-line";
}

TEST(FaultInjection, WatchdogConvertsDivergentLoopToTimeout)
{
    std::string error;
    auto m = ir::parseModule("module \"spin\"\n"
                             "func @spin() -> i64 {\n"
                             "entry:\n"
                             "    br %loop\n"
                             "loop:\n"
                             "    br %loop\n"
                             "}\n",
                             &error);
    ASSERT_TRUE(m) << error;

    pmem::PmPool pool(1 << 16);
    VmConfig vc;
    vc.sandbox = true;
    vc.stepBudget = 50'000;
    Vm machine(m.get(), &pool, vc);
    auto res = machine.run("spin", {});
    EXPECT_EQ(res.outcome, ExecOutcome::Timeout);
    EXPECT_FALSE(res.ok());
    EXPECT_FALSE(res.diag.empty());
}

TEST(FaultInjection, WatchdogHeapBudgetIsStructured)
{
    std::string error;
    auto m = ir::parseModule("module \"hog\"\n"
                             "func @hog() -> i64 {\n"
                             "entry:\n"
                             "    br %more\n"
                             "more:\n"
                             "    %v0 = alloca 4096\n"
                             "    br %more\n"
                             "}\n",
                             &error);
    ASSERT_TRUE(m) << error;

    pmem::PmPool pool(1 << 16);
    VmConfig vc;
    vc.sandbox = true;
    vc.heapBudget = 1 << 20;
    vc.stepBudget = 10'000'000; // heap pops first
    Vm machine(m.get(), &pool, vc);
    auto res = machine.run("hog", {});
    EXPECT_EQ(res.outcome, ExecOutcome::BudgetExceeded);
}

TEST(FaultInjection, SandboxConvertsFatalTrapToOutcome)
{
    std::string error;
    auto m = ir::parseModule("module \"crash\"\n"
                             "func @crash() -> i64 {\n"
                             "entry:\n"
                             "    %v0 = udiv 1, 0\n"
                             "    ret %v0\n"
                             "}\n",
                             &error);
    ASSERT_TRUE(m) << error;

    pmem::PmPool pool(1 << 16);
    VmConfig vc;
    vc.sandbox = true;
    Vm machine(m.get(), &pool, vc);
    auto res = machine.run("crash", {});
    EXPECT_EQ(res.outcome, ExecOutcome::Trap);
    EXPECT_NE(res.diag.find("division"), std::string::npos)
        << res.diag;
}

TEST(FaultInjection, SandboxedMissingFunctionTraps)
{
    std::string error;
    auto m = ir::parseModule("module \"empty\"\n", &error);
    ASSERT_TRUE(m) << error;
    pmem::PmPool pool(1 << 16);
    VmConfig vc;
    vc.sandbox = true;
    Vm machine(m.get(), &pool, vc);
    auto res = machine.run("nope", {});
    EXPECT_EQ(res.outcome, ExecOutcome::Trap);
}

TEST(FaultInjection, DegradationLadderRecordsUnverified)
{
    // A recovery entry that never terminates exhausts the sandbox
    // budget, the legacy retry (budgets halved) times out too, and
    // the crash point lands as unverified — exploration completes
    // instead of hanging.
    std::string error;
    auto m = ir::parseModule("module \"stuckrec\"\n"
                             "func @work() -> i64 {\n"
                             "entry:\n"
                             "    %p = pmmap \"r\", 64\n"
                             "    store 1, %p, 8\n"
                             "    fence sfence\n"
                             "    durpoint \"one\"\n"
                             "    ret 1\n"
                             "}\n"
                             "func @stuck() -> i64 {\n"
                             "entry:\n"
                             "    br %loop\n"
                             "loop:\n"
                             "    br %loop\n"
                             "}\n",
                             &error);
    ASSERT_TRUE(m) << error;

    CrashExplorerConfig xc;
    xc.entry = "work";
    xc.recovery = "stuck";
    xc.stepBudget = 20'000;

    auto res = exploreCrashes(m.get(), xc);
    ASSERT_EQ(res.outcomes.size(), 1u);
    EXPECT_TRUE(res.outcomes[0].unverified);
    EXPECT_EQ(res.outcomes[0].recovered, 0u);
    EXPECT_EQ(res.unverifiedCount(), 1u);
    // Unverified points are excluded from the recovery invariants.
    EXPECT_TRUE(res.durPointRecoveryNonDecreasing());
    EXPECT_EQ(res.minRecovered(), 0u);
}

TEST(FaultInjection, UnverifiedOutcomesStayJobsInvariant)
{
    std::string error;
    auto m = ir::parseModule("module \"stuckrec\"\n"
                             "func @work() -> i64 {\n"
                             "entry:\n"
                             "    %p = pmmap \"r\", 64\n"
                             "    store 1, %p, 8\n"
                             "    fence sfence\n"
                             "    durpoint \"one\"\n"
                             "    store 2, %p, 8\n"
                             "    fence sfence\n"
                             "    durpoint \"two\"\n"
                             "    ret 2\n"
                             "}\n"
                             "func @stuck() -> i64 {\n"
                             "entry:\n"
                             "    br %loop\n"
                             "loop:\n"
                             "    br %loop\n"
                             "}\n",
                             &error);
    ASSERT_TRUE(m) << error;

    CrashExplorerConfig xc;
    xc.entry = "work";
    xc.recovery = "stuck";
    xc.stepBudget = 20'000;

    xc.jobs = 1;
    auto serial = exploreCrashes(m.get(), xc);
    xc.jobs = 4;
    auto parallel = exploreCrashes(m.get(), xc);
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(serial.unverifiedCount(), 2u);
}

} // namespace hippo::test
