/**
 * @file
 * End-to-end pipeline tests on the paper's running example
 * (Listings 5 and 6): trace -> detect -> fix -> re-check.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace hippo::test
{

using core::FixKind;
using pmcheck::BugKind;

TEST(EndToEnd, Listing5MissingFlushDetected)
{
    auto m = buildListing5(/*with_fence=*/true);
    pmem::PmPool pool(1 << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(m.get(), &pool, vc);
    machine.run("foo");

    auto report = pmcheck::analyze(machine.trace());
    ASSERT_EQ(report.bugs.size(), 1u);
    EXPECT_EQ(report.bugs[0].kind, BugKind::MissingFlush);
    // The buggy store is in @update, reached via modify and foo.
    ASSERT_EQ(report.bugs[0].storeStack.size(), 3u);
    EXPECT_EQ(report.bugs[0].storeStack[0].function, "update");
    EXPECT_EQ(report.bugs[0].storeStack[1].function, "modify");
    EXPECT_EQ(report.bugs[0].storeStack[2].function, "foo");
    EXPECT_EQ(report.bugs[0].durStack[0].function, "foo");
}

TEST(EndToEnd, Listing5MissingFlushFenceWithoutFence)
{
    auto m = buildListing5(/*with_fence=*/false);
    pmem::PmPool pool(1 << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(m.get(), &pool, vc);
    machine.run("foo");

    auto report = pmcheck::analyze(machine.trace());
    ASSERT_EQ(report.bugs.size(), 1u);
    EXPECT_EQ(report.bugs[0].kind, BugKind::MissingFlushFence);
}

TEST(EndToEnd, Listing5HoistedToFooCallSite)
{
    // The heuristic calculation of Listing 6: the call site
    // modify(pm_addr) in foo scores +1, beating the tied 0 scores of
    // the store and the inner call site, so the fix is the
    // persistent subprogram transformation two frames above the
    // store.
    auto m = buildListing5(/*with_fence=*/true);
    auto res = runPipeline(m.get(), "foo");

    ASSERT_EQ(res.before.bugs.size(), 1u);
    ASSERT_EQ(res.summary.fixes.size(), 1u);
    const auto &fix = res.summary.fixes[0];
    EXPECT_EQ(fix.kind, FixKind::Interprocedural);
    EXPECT_EQ(fix.function, "foo");
    EXPECT_EQ(fix.hoistLevels, 2);
    EXPECT_EQ(fix.clonedSubprogram, "modify_PM");
    EXPECT_NE(m->findFunction("modify_PM"), nullptr);
    EXPECT_NE(m->findFunction("update_PM"), nullptr);

    // Do no harm: the fixed program is clean and produces the same
    // output.
    EXPECT_TRUE(res.after.clean()) << res.after.writeText();
    EXPECT_EQ(res.outputsBefore, res.outputsAfter);
    EXPECT_TRUE(res.summary.verifierProblems.empty());
}

TEST(EndToEnd, Listing5IntraWhenHoistingDisabled)
{
    auto m = buildListing5(/*with_fence=*/true);
    core::FixerConfig cfg;
    cfg.enableHoisting = false;
    auto res = runPipeline(m.get(), "foo", cfg);

    ASSERT_EQ(res.summary.fixes.size(), 1u);
    // The pre-existing fence lives in foo, which the strictly
    // intraprocedural fix in update cannot see, so the conservative
    // flush+fence pair is inserted (this is the cost source behind
    // the paper's RedisH-intra slowdown, §6.3).
    EXPECT_EQ(res.summary.fixes[0].kind, FixKind::IntraFlushFence);
    EXPECT_EQ(res.summary.fixes[0].function, "update");
    EXPECT_TRUE(res.after.clean()) << res.after.writeText();
    EXPECT_EQ(m->findFunction("modify_PM"), nullptr);
}

TEST(EndToEnd, Listing5FlushFenceVariantGetsCallSiteFence)
{
    // Without the pre-existing SFENCE the bug is missing-flush&fence;
    // the interprocedural fix must also place a fence after the call
    // site (Theorem 4).
    auto m = buildListing5(/*with_fence=*/false);
    auto res = runPipeline(m.get(), "foo");

    ASSERT_EQ(res.summary.fixes.size(), 1u);
    EXPECT_EQ(res.summary.fixes[0].kind, FixKind::Interprocedural);
    EXPECT_EQ(res.summary.fixes[0].fencesInserted, 1u);
    EXPECT_TRUE(res.after.clean()) << res.after.writeText();
}

TEST(EndToEnd, TraceAaProducesSameFixAsFullAa)
{
    // §6.1: the Full-AA and Trace-AA heuristics produce the same set
    // of fixes.
    auto m1 = buildListing5(true);
    auto m2 = buildListing5(true);
    core::FixerConfig full;
    full.aaMode = analysis::AaMode::FullAA;
    core::FixerConfig tr;
    tr.aaMode = analysis::AaMode::TraceAA;

    auto r1 = runPipeline(m1.get(), "foo", full);
    auto r2 = runPipeline(m2.get(), "foo", tr);

    ASSERT_EQ(r1.summary.fixes.size(), r2.summary.fixes.size());
    for (size_t i = 0; i < r1.summary.fixes.size(); i++) {
        EXPECT_EQ(r1.summary.fixes[i].kind,
                  r2.summary.fixes[i].kind);
        EXPECT_EQ(r1.summary.fixes[i].function,
                  r2.summary.fixes[i].function);
        EXPECT_EQ(r1.summary.fixes[i].hoistLevels,
                  r2.summary.fixes[i].hoistLevels);
    }
    EXPECT_TRUE(r2.after.clean());
}

TEST(EndToEnd, FixedProgramSurvivesCrash)
{
    // Actually crash the fixed program at the durability point and
    // confirm the PM byte survives; on the buggy program it is lost.
    auto lose = [](ir::Module *m) {
        pmem::PmPool pool(1 << 20);
        vm::VmConfig vc;
        vc.crashAtDurPoint = 0;
        vm::Vm machine(m, &pool, vc);
        auto run = machine.run("foo");
        EXPECT_TRUE(run.crashed);
        pool.crash();
        uint8_t byte = 0;
        const pmem::PmRegion *r = pool.findRegion("pool");
        pool.load(r->base, &byte, 1);
        return byte;
    };

    auto buggy = buildListing5(true);
    EXPECT_EQ(lose(buggy.get()), 0) << "unflushed store must be lost";

    auto fixed = buildListing5(true);
    runPipeline(fixed.get(), "foo");
    EXPECT_EQ(lose(fixed.get()), 42)
        << "fixed store must survive the crash";
}

} // namespace hippo::test
