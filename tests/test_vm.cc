/**
 * @file
 * Unit tests for the PMIR interpreter: every arithmetic/compare
 * operator (parameterized), control flow, memory, calls, costs,
 * crash injection, trace capture, and the dynamic points-to table.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "pmem/pm_pool.hh"
#include "vm/vm.hh"

namespace hippo::test
{

using namespace hippo::ir;
using vm::Vm;
using vm::VmConfig;

namespace
{

/** Build @f(a, b) -> op(a, b) for a given binary operator. */
std::unique_ptr<Module>
makeBinModule(BinOp op)
{
    auto m = std::make_unique<Module>("bin");
    IRBuilder b(m.get());
    Function *f = m->addFunction("f", Type::Int);
    Argument *a = f->addParam(Type::Int, "a");
    Argument *c = f->addParam(Type::Int, "b");
    b.setInsertPoint(f->addBlock("entry"));
    b.createRet(b.createBin(op, a, c));
    return m;
}

std::unique_ptr<Module>
makeCmpModule(CmpPred pred)
{
    auto m = std::make_unique<Module>("cmp");
    IRBuilder b(m.get());
    Function *f = m->addFunction("f", Type::Int);
    Argument *a = f->addParam(Type::Int, "a");
    Argument *c = f->addParam(Type::Int, "b");
    b.setInsertPoint(f->addBlock("entry"));
    b.createRet(b.createCmp(pred, a, c));
    return m;
}

uint64_t
runBin(BinOp op, uint64_t a, uint64_t b)
{
    auto m = makeBinModule(op);
    pmem::PmPool pool(1 << 16);
    Vm machine(m.get(), &pool, {});
    return machine.run("f", {a, b}).returnValue;
}

uint64_t
runCmp(CmpPred pred, uint64_t a, uint64_t b)
{
    auto m = makeCmpModule(pred);
    pmem::PmPool pool(1 << 16);
    Vm machine(m.get(), &pool, {});
    return machine.run("f", {a, b}).returnValue;
}

} // namespace

/** One expected (op, lhs, rhs, result) quadruple. */
struct BinCase
{
    BinOp op;
    uint64_t lhs, rhs, expect;
};

class VmBinOp : public ::testing::TestWithParam<BinCase>
{};

TEST_P(VmBinOp, ComputesExpectedValue)
{
    const BinCase &c = GetParam();
    EXPECT_EQ(runBin(c.op, c.lhs, c.rhs), c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, VmBinOp,
    ::testing::Values(
        BinCase{BinOp::Add, 2, 3, 5},
        BinCase{BinOp::Add, ~0ULL, 1, 0}, // wraparound
        BinCase{BinOp::Sub, 3, 5, (uint64_t)-2},
        BinCase{BinOp::Mul, 7, 6, 42},
        BinCase{BinOp::UDiv, 42, 5, 8},
        BinCase{BinOp::URem, 42, 5, 2},
        BinCase{BinOp::And, 0b1100, 0b1010, 0b1000},
        BinCase{BinOp::Or, 0b1100, 0b1010, 0b1110},
        BinCase{BinOp::Xor, 0b1100, 0b1010, 0b0110},
        BinCase{BinOp::Shl, 1, 63, 1ULL << 63},
        BinCase{BinOp::Shl, 3, 2, 12},
        BinCase{BinOp::LShr, 1ULL << 63, 63, 1},
        BinCase{BinOp::LShr, 12, 2, 3}));

struct CmpCase
{
    CmpPred pred;
    uint64_t lhs, rhs, expect;
};

class VmCmp : public ::testing::TestWithParam<CmpCase>
{};

TEST_P(VmCmp, ComputesExpectedValue)
{
    const CmpCase &c = GetParam();
    EXPECT_EQ(runCmp(c.pred, c.lhs, c.rhs), c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    AllPredicates, VmCmp,
    ::testing::Values(
        CmpCase{CmpPred::Eq, 4, 4, 1}, CmpCase{CmpPred::Eq, 4, 5, 0},
        CmpCase{CmpPred::Ne, 4, 5, 1}, CmpCase{CmpPred::Ne, 4, 4, 0},
        CmpCase{CmpPred::Ult, 3, 4, 1},
        CmpCase{CmpPred::Ult, (uint64_t)-1, 4, 0}, // unsigned!
        CmpCase{CmpPred::Ule, 4, 4, 1},
        CmpCase{CmpPred::Ugt, 5, 4, 1},
        CmpCase{CmpPred::Uge, 4, 4, 1},
        CmpCase{CmpPred::Slt, (uint64_t)-1, 4, 1}, // signed!
        CmpCase{CmpPred::Sle, (uint64_t)-3, (uint64_t)-3, 1},
        CmpCase{CmpPred::Sgt, 4, (uint64_t)-1, 1},
        CmpCase{CmpPred::Sge, (uint64_t)-5, (uint64_t)-4, 0}));

TEST(Vm, DivisionByZeroIsFatal)
{
    auto m = makeBinModule(BinOp::UDiv);
    pmem::PmPool pool(1 << 16);
    Vm machine(m.get(), &pool, {});
    EXPECT_EXIT(machine.run("f", {1, 0}),
                ::testing::ExitedWithCode(1), "division by zero");
}

TEST(Vm, LoopComputesSum)
{
    // sum 1..n via alloca-based loop counter
    auto m = std::make_unique<Module>("loop");
    IRBuilder b(m.get());
    Function *f = m->addFunction("sum", Type::Int);
    Argument *n = f->addParam(Type::Int, "n");
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *loop = f->addBlock("loop");
    BasicBlock *body = f->addBlock("body");
    BasicBlock *done = f->addBlock("done");
    b.setInsertPoint(entry);
    Instruction *iv = b.createAlloca(8);
    Instruction *acc = b.createAlloca(8);
    b.createStore(b.getInt(1), iv, 8);
    b.createStore(b.getInt(0), acc, 8);
    b.createBr(loop);
    b.setInsertPoint(loop);
    Instruction *i = b.createLoad(iv, 8);
    b.createCondBr(b.createCmp(CmpPred::Ule, i, n), body, done);
    b.setInsertPoint(body);
    b.createStore(b.createAdd(b.createLoad(acc, 8), i), acc, 8);
    b.createStore(b.createAdd(i, b.getInt(1)), iv, 8);
    b.createBr(loop);
    b.setInsertPoint(done);
    b.createRet(b.createLoad(acc, 8));

    pmem::PmPool pool(1 << 16);
    Vm machine(m.get(), &pool, {});
    EXPECT_EQ(machine.run("sum", {100}).returnValue, 5050u);
    EXPECT_EQ(machine.run("sum", {0}).returnValue, 0u);
}

TEST(Vm, SubByteStoresAndLoads)
{
    auto m = std::make_unique<Module>("bytes");
    IRBuilder b(m.get());
    Function *f = m->addFunction("f", Type::Int);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *buf = b.createAlloca(16);
    b.createStore(b.getInt(0x1122334455667788ULL), buf, 8);
    // Overwrite byte 0 with 0xFF via a 1-byte store.
    b.createStore(b.getInt(0x1FF), buf, 1); // low byte only
    Instruction *w = b.createLoad(buf, 8);
    Instruction *b2 = b.createLoad(b.createGep(buf, b.getInt(1)), 2);
    b.createPrint("word", w);
    b.createPrint("half", b2);
    b.createRet(w);

    pmem::PmPool pool(1 << 16);
    Vm machine(m.get(), &pool, {});
    EXPECT_EQ(machine.run("f").returnValue, 0x11223344556677FFULL);
    ASSERT_EQ(machine.outputs().size(), 2u);
    EXPECT_EQ(machine.outputs()[1].value, 0x6677u);
}

TEST(Vm, MemcpyAndMemsetAcrossSpaces)
{
    auto m = std::make_unique<Module>("mem");
    IRBuilder b(m.get());
    Function *f = m->addFunction("f", Type::Int);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *vol = b.createAlloca(64);
    Instruction *pm = b.createPmMap("r", 64);
    b.createMemset(vol, b.getInt(0xAB), b.getInt(32));
    b.createMemcpy(pm, vol, b.getInt(32));       // vol -> PM
    Instruction *back = b.createAlloca(64);
    b.createMemcpy(back, pm, b.getInt(32));      // PM -> vol
    b.createRet(b.createLoad(back, 8));

    pmem::PmPool pool(1 << 16);
    Vm machine(m.get(), &pool, {});
    EXPECT_EQ(machine.run("f").returnValue, 0xABABABABABABABABULL);
}

TEST(Vm, AllocasAreZeroedAndFreedOnReturn)
{
    auto m = std::make_unique<Module>("alloca");
    IRBuilder b(m.get());
    Function *leaf = m->addFunction("leaf", Type::Int);
    b.setInsertPoint(leaf->addBlock("entry"));
    Instruction *buf = b.createAlloca(32);
    Instruction *v = b.createLoad(buf, 8); // must be zero
    b.createStore(b.getInt(0xDEAD), buf, 8);
    b.createRet(v);

    Function *f = m->addFunction("f", Type::Int);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *first = b.createCall(leaf, {});
    Instruction *second = b.createCall(leaf, {});
    b.createRet(b.createAdd(first, second));

    pmem::PmPool pool(1 << 16);
    Vm machine(m.get(), &pool, {});
    // Both calls see zeroed memory even though the frame is reused.
    EXPECT_EQ(machine.run("f").returnValue, 0u);
}

TEST(Vm, SimulatedTimeAccumulatesAndFencesCost)
{
    auto m = std::make_unique<Module>("cost");
    IRBuilder b(m.get());
    Function *f = m->addFunction("f", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *pm = b.createPmMap("r", 64);
    b.createStore(b.getInt(1), pm, 8);
    b.createFlush(pm, FlushKind::Clwb);
    b.createFence(FenceKind::Sfence);
    b.createRet();

    pmem::PmPool pool(1 << 16);
    Vm machine(m.get(), &pool, {});
    auto r1 = machine.run("f");
    EXPECT_GT(r1.simNanos, 0);
    // The second run's fence has pending write-backs again (same
    // cost), so total time roughly doubles.
    auto r2 = machine.run("f");
    EXPECT_NEAR(r2.simNanos, r1.simNanos, r1.simNanos * 0.5);
    EXPECT_GT(machine.simNanos(), r1.simNanos);

    // A fence with pending write-backs costs more than an empty one.
    VmConfig vc;
    pmem::PmPool p2(1 << 16);
    Vm m2(m.get(), &p2, vc);
    double with_pending = m2.run("f").simNanos;
    EXPECT_GT(with_pending, vc.costs.fenceBaseNs);
}

TEST(Vm, CrashInjectionStopsAtNthDurPoint)
{
    auto m = std::make_unique<Module>("crash");
    IRBuilder b(m.get());
    Function *f = m->addFunction("f", Type::Int);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *pm = b.createPmMap("r", 64);
    b.createStore(b.getInt(1), pm, 8);
    b.createDurPoint("p0");
    b.createStore(b.getInt(2), pm, 8);
    b.createDurPoint("p1");
    b.createPrint("done", b.getInt(1));
    b.createRet(b.getInt(7));

    {
        pmem::PmPool pool(1 << 16);
        VmConfig vc;
        vc.crashAtDurPoint = 1;
        Vm machine(m.get(), &pool, vc);
        auto r = machine.run("f");
        EXPECT_TRUE(r.crashed);
        EXPECT_TRUE(machine.outputs().empty())
            << "execution must stop at the crash point";
        uint64_t v = 0;
        pool.load(pool.findRegion("r")->base,
                  reinterpret_cast<uint8_t *>(&v), 8);
        EXPECT_EQ(v, 2u) << "stores before the crash executed";
    }
    {
        pmem::PmPool pool(1 << 16);
        VmConfig vc; // no crash
        Vm machine(m.get(), &pool, vc);
        auto r = machine.run("f");
        EXPECT_FALSE(r.crashed);
        EXPECT_EQ(r.returnValue, 7u);
        EXPECT_EQ(machine.outputs().size(), 1u);
    }
}

TEST(Vm, TraceCapturesStacksAndObjects)
{
    auto m = std::make_unique<Module>("trace");
    IRBuilder b(m.get());
    Function *leaf = m->addFunction("leaf", Type::Void);
    Argument *p = leaf->addParam(Type::Ptr, "p");
    b.setInsertPoint(leaf->addBlock("entry"));
    b.setLoc("t.c", 3);
    b.createStore(b.getInt(9), p, 8);
    b.createRet();

    Function *f = m->addFunction("main", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    b.setLoc("t.c", 9);
    Instruction *pm = b.createPmMap("r", 64);
    b.createCall(leaf, {pm});
    b.createRet();

    pmem::PmPool pool(1 << 16);
    VmConfig vc;
    vc.traceEnabled = true;
    Vm machine(m.get(), &pool, vc);
    machine.run("main");

    const trace::Trace &tr = machine.trace();
    const trace::Event *store_ev = nullptr;
    for (const auto &ev : tr.events()) {
        if (ev.kind == trace::EventKind::Store)
            store_ev = &ev;
    }
    ASSERT_NE(store_ev, nullptr);
    EXPECT_TRUE(store_ev->isPm);
    ASSERT_EQ(store_ev->stack.size(), 2u);
    EXPECT_EQ(store_ev->stack[0].function, "leaf");
    EXPECT_EQ(store_ev->stack[0].file, "t.c");
    EXPECT_EQ(store_ev->stack[0].line, 3);
    EXPECT_EQ(store_ev->stack[1].function, "main");
    ASSERT_NE(store_ev->objectId, ~0u);
    EXPECT_EQ(tr.objects()[store_ev->objectId].site, "pm:r");
    EXPECT_TRUE(tr.objects()[store_ev->objectId].isPm);

    // The dynamic points-to table saw the call argument binding.
    const auto &objs = machine.dynPointsTo().lookup(
        "leaf", vm::DynPointsTo::argKey(0));
    EXPECT_EQ(objs.size(), 1u);
}

TEST(Vm, TracingDisabledRecordsNothing)
{
    auto m = std::make_unique<Module>("quiet");
    IRBuilder b(m.get());
    Function *f = m->addFunction("f", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *pm = b.createPmMap("r", 64);
    b.createStore(b.getInt(1), pm, 8);
    b.createRet();

    pmem::PmPool pool(1 << 16);
    Vm machine(m.get(), &pool, {});
    machine.run("f");
    EXPECT_TRUE(machine.trace().empty());
}

TEST(Vm, StepLimitGuardsInfiniteLoops)
{
    auto m = std::make_unique<Module>("spin");
    IRBuilder b(m.get());
    Function *f = m->addFunction("f", Type::Void);
    BasicBlock *entry = f->addBlock("entry");
    b.setInsertPoint(entry);
    b.createBr(entry);

    pmem::PmPool pool(1 << 16);
    VmConfig vc;
    vc.maxSteps = 1000;
    Vm machine(m.get(), &pool, vc);
    EXPECT_EXIT(machine.run("f"), ::testing::ExitedWithCode(1),
                "step limit");
}

TEST(Vm, OpcodeStatsCountExecutions)
{
    auto m = std::make_unique<Module>("stats");
    IRBuilder b(m.get());
    Function *f = m->addFunction("f", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *pm = b.createPmMap("r", 64);
    b.createStore(b.getInt(1), pm, 8);
    b.createStore(b.getInt(2), pm, 8);
    b.createFlush(pm, FlushKind::Clwb);
    b.createFence(FenceKind::Sfence);
    b.createRet();

    pmem::PmPool pool(1 << 16);
    Vm machine(m.get(), &pool, {});
    machine.run("f");
    machine.run("f");
    const auto &counts = machine.opcodeCounts();
    EXPECT_EQ(counts.at(Opcode::Store), 4u);
    EXPECT_EQ(counts.at(Opcode::Flush), 2u);
    EXPECT_EQ(counts.at(Opcode::Fence), 2u);
    EXPECT_EQ(counts.at(Opcode::Ret), 2u);
    std::string stats = machine.statsString();
    EXPECT_NE(stats.find("store"), std::string::npos);
    EXPECT_NE(stats.find("PM:"), std::string::npos);
}

TEST(Vm, RecursionComputesFactorial)
{
    auto m = std::make_unique<Module>("fact");
    IRBuilder b(m.get());
    Function *f = m->addFunction("fact", Type::Int);
    Argument *n = f->addParam(Type::Int, "n");
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *base = f->addBlock("base");
    BasicBlock *rec = f->addBlock("rec");
    b.setInsertPoint(entry);
    b.createCondBr(b.createCmp(CmpPred::Ule, n, b.getInt(1)), base,
                   rec);
    b.setInsertPoint(base);
    b.createRet(b.getInt(1));
    b.setInsertPoint(rec);
    Instruction *sub =
        b.createCall(f, {b.createSub(n, b.getInt(1))});
    b.createRet(b.createMul(n, sub));

    pmem::PmPool pool(1 << 16);
    Vm machine(m.get(), &pool, {});
    EXPECT_EQ(machine.run("fact", {10}).returnValue, 3628800u);
}

TEST(Vm, VolatileOutOfBoundsIsFatal)
{
    auto m = std::make_unique<Module>("oob");
    IRBuilder b(m.get());
    Function *f = m->addFunction("f", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *buf = b.createAlloca(8);
    // Past the volatile arena but below the PM window.
    Instruction *bad =
        b.createGep(buf, b.getInt(0x08000000ULL));
    b.createStore(b.getInt(1), bad, 8);
    b.createRet();

    pmem::PmPool pool(1 << 16);
    Vm machine(m.get(), &pool, {});
    EXPECT_EXIT(machine.run("f"), ::testing::ExitedWithCode(1),
                "out of bounds");
}

} // namespace hippo::test
