/**
 * @file
 * The determinism harness for the parallel exploration and
 * fix-verification engine, plus the ThreadPool itself and the
 * "independent VMs are thread-safe" contract. This binary is the one
 * CI also builds under ThreadSanitizer: every test doubles as a race
 * reproducer, so prefer real concurrency (jobs > 1, raw threads)
 * over mocks here.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

#include "apps/bugsuite.hh"
#include "apps/pclht.hh"
#include "apps/pmlog.hh"
#include "pmcheck/crash_explorer.hh"
#include "pmem/pm_pool.hh"
#include "support/errors.hh"
#include "support/thread_pool.hh"
#include "test_util.hh"

namespace hippo::test
{

using pmcheck::CrashExplorerConfig;
using pmcheck::ExplorationResult;
using pmcheck::exploreCrashes;
using support::CancelToken;
using support::ThreadPool;

// --------------------------------------------------------------
// ThreadPool unit behavior.
// --------------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelForEach(0, hits.size(), [&](uint64_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < hits.size(); i++)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(4);
    std::atomic<uint64_t> sum{0};
    for (int batch = 0; batch < 10; batch++)
        pool.parallelForEach(0, 100, [&](uint64_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
    EXPECT_EQ(sum.load(), 10u * (99 * 100 / 2));
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelForEach(0, 64,
                                      [&](uint64_t i) {
                                          if (i == 13)
                                              throw std::runtime_error(
                                                  "boom");
                                      }),
                 std::runtime_error);
    // The pool survives a throwing batch.
    std::atomic<int> ran{0};
    pool.parallelForEach(0, 8, [&](uint64_t) { ran++; });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, CancellationSkipsUndispatchedItems)
{
    ThreadPool pool(2);
    CancelToken cancel;
    std::atomic<int> ran{0};
    pool.parallelForEach(0, 100000, [&](uint64_t i) {
        ran++;
        if (i == 0)
            cancel.cancel();
    }, &cancel);
    EXPECT_TRUE(cancel.cancelled());
    EXPECT_LT(ran.load(), 100000);
}

TEST(ThreadPool, FaultingChaosBatchCancelsCleanly)
{
    // The adversarial-workers contract: replay workers fork pools
    // from one shared snapshot and tear them down mid-batch when a
    // sibling throws. The first exception must surface typed, the
    // cancel token must stop undispatched replays, the snapshot's
    // COW pages must survive the wreckage (no leak, no corruption —
    // this binary runs under sanitizers in CI), and the pool must
    // be reusable for a clean batch.
    pmem::PmPool master(1 << 16);
    uint64_t base = master.mapRegion("r", 4096);
    uint64_t v = 0xabcdef0123456789ULL;
    master.store(base, (const uint8_t *)&v, 8);
    master.flush(base, pmem::FlushOp::Clflush);
    master.fence();
    auto snap = master.snapshot();

    ThreadPool pool(4);
    CancelToken cancel;
    std::atomic<int> ran{0};
    try {
        pool.parallelForEach(0, 256, [&](uint64_t i) {
            ran++;
            pmem::PmPool replica(snap);
            pmem::FaultPlan plan;
            plan.seed = i + 1;
            plan.tornChance = 1.0;
            replica.setFaultPlan(plan);
            uint64_t junk = i;
            replica.store(base + 64, (const uint8_t *)&junk, 8);
            replica.crash();
            if (i == 7) {
                cancel.cancel();
                support::throwResourceError("replica %llu died",
                                            (unsigned long long)i);
            }
        }, &cancel);
        FAIL() << "exception not propagated";
    } catch (const support::HippoError &e) {
        EXPECT_EQ(e.kind(), support::ErrorKind::Resource);
    }
    EXPECT_LT(ran.load(), 256);

    // Shared pages are intact: a fresh fork still reads the
    // fenced value, and the master pool itself is untouched.
    pmem::PmPool after(snap);
    uint64_t got = 0;
    after.loadPersisted(base, (uint8_t *)&got, 8);
    EXPECT_EQ(got, v);
    got = 0;
    master.loadPersisted(base, (uint8_t *)&got, 8);
    EXPECT_EQ(got, v);

    // The pool survives the faulted batch.
    std::atomic<int> clean{0};
    pool.parallelForEach(0, 16, [&](uint64_t) { clean++; });
    EXPECT_EQ(clean.load(), 16);
}

TEST(ThreadPool, SubmitAllRunsEveryTaskExactlyOnce)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(500);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(hits.size());
    for (size_t i = 0; i < hits.size(); i++)
        tasks.push_back([&hits, i] {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
    pool.submitAll(tasks);
    for (size_t i = 0; i < hits.size(); i++)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(ThreadPool, SubmitAllFaultingBatchRethrowsAfterDrain)
{
    // submitAll shares parallelForEach's exception contract: the
    // first error is rethrown in the caller only after every
    // dispatched task returned, sibling tasks running faulted pool
    // replicas included — no task may still be in flight when the
    // caller sees the exception.
    pmem::PmPool master(1 << 16);
    uint64_t base = master.mapRegion("r", 4096);
    uint64_t v = 0x1122334455667788ULL;
    master.store(base, (const uint8_t *)&v, 8);
    master.flush(base, pmem::FlushOp::Clflush);
    master.fence();
    auto snap = master.snapshot();

    ThreadPool pool(4);
    std::atomic<int> ran{0};
    std::atomic<int> inFlight{0};
    std::vector<std::function<void()>> tasks;
    for (uint64_t i = 0; i < 128; i++)
        tasks.push_back([&, i] {
            inFlight.fetch_add(1, std::memory_order_relaxed);
            ran.fetch_add(1, std::memory_order_relaxed);
            pmem::PmPool replica(snap);
            pmem::FaultPlan plan;
            plan.seed = i + 1;
            plan.tornChance = 1.0;
            replica.setFaultPlan(plan);
            uint64_t junk = i;
            replica.store(base + 64, (const uint8_t *)&junk, 8);
            replica.crash();
            inFlight.fetch_sub(1, std::memory_order_relaxed);
            if (i == 5)
                support::throwResourceError("task %llu died",
                                            (unsigned long long)i);
        });
    try {
        pool.submitAll(tasks);
        FAIL() << "exception not propagated";
    } catch (const support::HippoError &e) {
        EXPECT_EQ(e.kind(), support::ErrorKind::Resource);
    }
    // Drained: nothing still running, undispatched tasks abandoned.
    EXPECT_EQ(inFlight.load(), 0);
    EXPECT_LT(ran.load(), 128);

    // Snapshot pages survived; the pool accepts the next batch.
    pmem::PmPool after(snap);
    uint64_t got = 0;
    after.loadPersisted(base, (uint8_t *)&got, 8);
    EXPECT_EQ(got, v);
    std::atomic<int> clean{0};
    std::vector<std::function<void()>> again(
        16, std::function<void()>([&clean] { clean++; }));
    pool.submitAll(again);
    EXPECT_EQ(clean.load(), 16);
}

TEST(ThreadPool, SubmitAllCancelBetweenPublishAndDrain)
{
    // Cancellation arriving from outside the batch, after publish
    // but before drain: a single-worker pool makes the schedule
    // deterministic — task 0 parks until the driver thread cancels,
    // every later task was undispatched at that point and must never
    // start. The call returns without error (cancel is not failure).
    ThreadPool pool(1);
    CancelToken cancel;
    std::atomic<bool> started{false};
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> tasks;
    tasks.push_back([&] {
        ran++;
        started.store(true, std::memory_order_release);
        while (!cancel.cancelled())
            std::this_thread::yield();
    });
    for (int i = 0; i < 64; i++)
        tasks.push_back([&ran] { ran++; });

    std::thread driver([&] {
        while (!started.load(std::memory_order_acquire))
            std::this_thread::yield();
        cancel.cancel();
    });
    pool.submitAll(tasks, &cancel);
    driver.join();
    EXPECT_EQ(ran.load(), 1);

    // A token cancelled before publish skips the whole batch.
    std::atomic<int> skipped{0};
    std::vector<std::function<void()>> never(
        8, std::function<void()>([&skipped] { skipped++; }));
    pool.submitAll(never, &cancel);
    EXPECT_EQ(skipped.load(), 0);

    // Re-armed, the same pool and token run a full batch again.
    cancel.reset();
    std::atomic<int> full{0};
    std::vector<std::function<void()>> all(
        8, std::function<void()>([&full] { full++; }));
    pool.submitAll(all, &cancel);
    EXPECT_EQ(full.load(), 8);
}

TEST(ThreadPool, ResolveJobs)
{
    EXPECT_EQ(support::resolveJobs(3), 3u);
    EXPECT_EQ(support::resolveJobs(0),
              support::hardwareConcurrency());
    EXPECT_GE(support::hardwareConcurrency(), 1u);
}

// --------------------------------------------------------------
// Crash-exploration determinism: the parallel engine must be
// byte-identical to the serial one for any jobs setting.
// --------------------------------------------------------------

namespace
{

/** Run the same exploration at jobs=1 and assert every other jobs
 *  setting reproduces it exactly. */
void
expectJobInvariant(ir::Module *m, CrashExplorerConfig cfg)
{
    cfg.jobs = 1;
    ExplorationResult serial = exploreCrashes(m, cfg);
    for (unsigned jobs : {2u, 8u}) {
        cfg.jobs = jobs;
        ExplorationResult parallel = exploreCrashes(m, cfg);
        EXPECT_EQ(serial, parallel) << "jobs=" << jobs;
    }
}

} // namespace

TEST(ParallelExplore, FixedLogDurPointsDeterministic)
{
    apps::PmlogConfig lc;
    lc.seedBugs = false;
    lc.capacity = 64 << 10;
    auto m = apps::buildPmlog(lc);

    CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {10};
    xc.recovery = "log_walk";
    expectJobInvariant(m.get(), xc);
}

TEST(ParallelExplore, BuggyLogStepStrideDeterministic)
{
    auto m = apps::buildPmlog({});
    CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {6};
    xc.recovery = "log_walk";
    xc.stepStride = 97;
    expectJobInvariant(m.get(), xc);
}

TEST(ParallelExplore, RepairedPclhtDeterministic)
{
    auto m = apps::buildPclht({});
    runPipelineWithArg(m.get(), "clht_example", 10);

    CrashExplorerConfig xc;
    xc.entry = "clht_example";
    xc.entryArgs = {10};
    xc.recovery = "clht_recover";
    expectJobInvariant(m.get(), xc);
}

TEST(ParallelExplore, EvictionSeedingIsJobInvariant)
{
    // Random line eviction draws from the replay pool's RNG; the
    // seed is a function of the crash-plan position, never of the
    // worker that happens to run it.
    apps::PmlogConfig lc;
    lc.seedBugs = false;
    auto m = apps::buildPmlog(lc);

    CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {8};
    xc.recovery = "log_walk";
    xc.stepStride = 61;
    xc.evictChance = 0.25;
    xc.seed = 42;
    expectJobInvariant(m.get(), xc);
}

TEST(ParallelExplore, BudgetTruncationMatchesSerial)
{
    // maxCrashes smaller than the crash-point count: the plan is cut
    // before any replay is dispatched, so the budget lands on the
    // same crash points at every jobs setting.
    apps::PmlogConfig lc;
    lc.seedBugs = false;
    auto m = apps::buildPmlog(lc);

    CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {20};
    xc.recovery = "log_walk";
    xc.stepStride = 50;
    xc.maxCrashes = 7;

    xc.jobs = 1;
    ExplorationResult serial = exploreCrashes(m.get(), xc);
    ASSERT_EQ(serial.outcomes.size(), 7u);
    // Durpoint crashes are prioritized under budget pressure: with
    // 21 durpoints and a budget of 7, no step crash makes the cut.
    for (const auto &o : serial.outcomes)
        EXPECT_FALSE(o.atStep);

    for (unsigned jobs : {2u, 8u}) {
        xc.jobs = jobs;
        EXPECT_EQ(serial, exploreCrashes(m.get(), xc))
            << "jobs=" << jobs;
    }
}

// --------------------------------------------------------------
// Suite-wide fix -> re-verify pipeline determinism.
// --------------------------------------------------------------

TEST(ParallelFixer, SuiteResultsMatchSerial)
{
    core::FixerConfig serial_cfg;
    serial_cfg.jobs = 1;
    auto serial =
        apps::evaluateCases(apps::pmdkBugCases(), serial_cfg);

    core::FixerConfig par_cfg;
    par_cfg.jobs = 8;
    auto parallel =
        apps::evaluateCases(apps::pmdkBugCases(), par_cfg);

    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); i++) {
        const auto &a = serial[i];
        const auto &b = parallel[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.detected, b.detected) << a.id;
        EXPECT_EQ(a.foundKind, b.foundKind) << a.id;
        EXPECT_EQ(a.fixedClean, b.fixedClean) << a.id;
        EXPECT_EQ(a.hippoKind, b.hippoKind) << a.id;
        EXPECT_EQ(a.devClean, b.devClean) << a.id;
        EXPECT_EQ(a.persistedStateMatches, b.persistedStateMatches)
            << a.id;
        EXPECT_EQ(a.summary.bugsFixed, b.summary.bugsFixed) << a.id;
        EXPECT_EQ(a.summary.flushesInserted,
                  b.summary.flushesInserted)
            << a.id;
        EXPECT_EQ(a.summary.fencesInserted, b.summary.fencesInserted)
            << a.id;
        ASSERT_EQ(a.summary.fixes.size(), b.summary.fixes.size())
            << a.id;
        for (size_t f = 0; f < a.summary.fixes.size(); f++) {
            const auto &fa = a.summary.fixes[f];
            const auto &fb = b.summary.fixes[f];
            EXPECT_EQ(fa.kind, fb.kind) << a.id;
            EXPECT_EQ(fa.function, fb.function) << a.id;
            EXPECT_EQ(fa.anchorInstrId, fb.anchorInstrId) << a.id;
            EXPECT_EQ(fa.hoistLevels, fb.hoistLevels) << a.id;
        }
    }
}

// --------------------------------------------------------------
// The "independent VMs are thread-safe" contract: two Vm instances
// over distinct pools, sharing one read-only module, driven from raw
// std::threads, must produce exactly their serial traces.
// --------------------------------------------------------------

namespace
{

struct VmRunCapture
{
    uint64_t returnValue = 0;
    uint64_t steps = 0;
    std::string traceText;
    std::vector<vm::ProgramOutput> outputs;

    bool operator==(const VmRunCapture &o) const = default;
};

VmRunCapture
runOnce(ir::Module *m, uint64_t arg)
{
    pmem::PmPool pool(4u << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(m, &pool, vc);
    auto r = machine.run("log_example", {arg});
    VmRunCapture cap;
    cap.returnValue = r.returnValue;
    cap.steps = r.steps;
    cap.traceText = machine.trace().writeText();
    cap.outputs = machine.outputs();
    return cap;
}

} // namespace

TEST(VmThreadSafety, IndependentVmsOnRawThreads)
{
    apps::PmlogConfig lc;
    lc.seedBugs = false;
    auto m = apps::buildPmlog(lc);

    const VmRunCapture serialA = runOnce(m.get(), 6);
    const VmRunCapture serialB = runOnce(m.get(), 11);

    for (int round = 0; round < 4; round++) {
        VmRunCapture a, b;
        std::thread ta([&] { a = runOnce(m.get(), 6); });
        std::thread tb([&] { b = runOnce(m.get(), 11); });
        ta.join();
        tb.join();
        EXPECT_EQ(a, serialA) << "round " << round;
        EXPECT_EQ(b, serialB) << "round " << round;
    }
}

} // namespace hippo::test
