/**
 * @file
 * Shared helpers for the test suite: canned PMIR programs (including
 * the paper's Listing 5/6 running example) and a one-call
 * trace/detect/fix/re-check pipeline driver.
 */

#ifndef HIPPO_TESTS_TEST_UTIL_HH
#define HIPPO_TESTS_TEST_UTIL_HH

#include <memory>
#include <string>

#include "core/fixer.hh"
#include "ir/builder.hh"
#include "ir/module.hh"
#include "ir/verifier.hh"
#include "pmcheck/detector.hh"
#include "pmem/pm_pool.hh"
#include "vm/vm.hh"

namespace hippo::test
{

/**
 * Build the paper's Listing 5/6 running example:
 *
 *   void update(char *addr, int idx, char val) { addr[idx] = val; }
 *   void modify(char *addr) { update(addr, 0, 42); }
 *   void foo() {
 *       for (i < volIters) modify(vol_addr);
 *       modify(pm_addr);
 *       SFENCE;            // only when withFence
 *       ***CRASH***        // durpoint
 *   }
 *
 * The PM store in update is never flushed: a missing-flush bug when
 * @p with_fence, a missing-flush&fence bug otherwise.
 */
std::unique_ptr<ir::Module> buildListing5(bool with_fence,
                                          uint64_t vol_iters = 100);

/** Result of running the full pipeline once. */
struct PipelineResult
{
    pmcheck::Report before;     ///< report on the buggy program
    core::FixSummary summary;   ///< what Hippocrates did
    pmcheck::Report after;      ///< report on the fixed program
    std::vector<vm::ProgramOutput> outputsBefore;
    std::vector<vm::ProgramOutput> outputsAfter;
};

/**
 * Trace @p entry, detect bugs, fix them with @p cfg, re-run and
 * re-detect. The module is mutated in place.
 */
PipelineResult runPipeline(ir::Module *m, const std::string &entry,
                           core::FixerConfig cfg = {});

/** Same, for entry points taking one integer argument. */
PipelineResult runPipelineWithArg(ir::Module *m,
                                  const std::string &entry,
                                  uint64_t arg,
                                  core::FixerConfig cfg = {});

} // namespace hippo::test

#endif // HIPPO_TESTS_TEST_UTIL_HH
