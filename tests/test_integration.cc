/**
 * @file
 * Integration tests across module boundaries and serialization
 * boundaries: the paper's pipeline runs bug finder and fixer in
 * separate processes connected by text artifacts, so these tests
 * push the module, the trace, and the bug report through their text
 * formats before repairing, and check the result is identical to the
 * in-memory pipeline.
 */

#include <gtest/gtest.h>

#include "apps/pclht.hh"
#include "apps/pmcache.hh"
#include "ir/parser.hh"
#include "ir/printer.hh"
#include "test_util.hh"

namespace hippo::test
{

using namespace hippo::ir;

TEST(Integration, PipelineSurvivesFullSerialization)
{
    // In-memory pipeline.
    auto mem = buildListing5(true);
    auto mem_res = runPipeline(mem.get(), "foo");

    // Serialized pipeline: module -> text -> parse; trace -> text ->
    // parse; report -> text -> parse; then fix the parsed module
    // with the parsed artifacts.
    auto m = buildListing5(true);
    std::string module_text = moduleToString(*m);

    std::string trace_text, report_text;
    {
        pmem::PmPool pool(1 << 20);
        vm::VmConfig vc;
        vc.traceEnabled = true;
        vm::Vm machine(m.get(), &pool, vc);
        machine.run("foo");
        trace_text = machine.trace().writeText();
        report_text =
            pmcheck::analyze(machine.trace()).writeText();
    }

    std::string error;
    auto parsed = parseModule(module_text, &error);
    ASSERT_NE(parsed, nullptr) << error;
    trace::Trace tr;
    ASSERT_TRUE(trace::Trace::readText(trace_text, tr, &error))
        << error;
    pmcheck::Report report;
    ASSERT_TRUE(pmcheck::Report::readText(report_text, report,
                                          &error))
        << error;
    ASSERT_EQ(report.bugs.size(), mem_res.before.bugs.size());

    core::Fixer fixer(parsed.get());
    auto summary = fixer.fix(report, tr); // Full-AA: no dyn table
    ASSERT_EQ(summary.fixes.size(), mem_res.summary.fixes.size());
    for (size_t i = 0; i < summary.fixes.size(); i++) {
        EXPECT_EQ(summary.fixes[i].kind,
                  mem_res.summary.fixes[i].kind);
        EXPECT_EQ(summary.fixes[i].function,
                  mem_res.summary.fixes[i].function);
        EXPECT_EQ(summary.fixes[i].anchorInstrId,
                  mem_res.summary.fixes[i].anchorInstrId);
    }

    // Both repaired modules print identically.
    EXPECT_EQ(moduleToString(*parsed), moduleToString(*mem));

    // And the parsed+repaired module is clean.
    pmem::PmPool pool(1 << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(parsed.get(), &pool, vc);
    machine.run("foo");
    EXPECT_TRUE(pmcheck::analyze(machine.trace()).clean());
}

TEST(Integration, RepairedModuleRoundTripsThroughText)
{
    // Repair, print, parse, re-run: the textual form of a repaired
    // module is a complete artifact.
    auto m = buildListing5(false);
    runPipeline(m.get(), "foo");
    std::string text = moduleToString(*m);

    std::string error;
    auto parsed = parseModule(text, &error);
    ASSERT_NE(parsed, nullptr) << error;
    EXPECT_TRUE(verifyModule(*parsed).empty());

    pmem::PmPool pool(1 << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(parsed.get(), &pool, vc);
    machine.run("foo");
    EXPECT_TRUE(pmcheck::analyze(machine.trace()).clean());
}

TEST(Integration, FixerIsIdempotent)
{
    auto m = buildListing5(true);
    runPipeline(m.get(), "foo");
    size_t instrs = m->instrCount();
    size_t funcs = m->functions().size();

    // Second pass over the repaired module: nothing to do.
    auto res2 = runPipeline(m.get(), "foo");
    EXPECT_TRUE(res2.before.clean());
    EXPECT_TRUE(res2.summary.fixes.empty());
    EXPECT_EQ(m->instrCount(), instrs);
    EXPECT_EQ(m->functions().size(), funcs);
}

TEST(Integration, AllVariantsOfPclhtAgreeOnOutputs)
{
    // Buggy, developer-fixed, and Hippocrates-repaired builds must
    // compute identical results on non-crashing runs.
    auto digest = [](ir::Module *m) {
        pmem::PmPool pool(8u << 20);
        vm::Vm machine(m, &pool, {});
        return machine.run("clht_example", {40}).returnValue;
    };

    auto buggy = apps::buildPclht({});
    apps::PclhtConfig fixed_cfg;
    fixed_cfg.seedBugs = false;
    auto dev = apps::buildPclht(fixed_cfg);
    auto repaired = apps::buildPclht({});
    runPipelineWithArg(repaired.get(), "clht_example", 40);

    uint64_t d = digest(buggy.get());
    EXPECT_EQ(digest(dev.get()), d);
    EXPECT_EQ(digest(repaired.get()), d);
}

TEST(Integration, AllVariantsOfPmcacheAgreeOnOutputs)
{
    auto digest = [](ir::Module *m) {
        pmem::PmPool pool(16u << 20);
        vm::Vm machine(m, &pool, {});
        return machine.run("mc_example", {30}).returnValue;
    };

    auto buggy = apps::buildPmcache({});
    apps::PmcacheConfig fixed_cfg;
    fixed_cfg.seedBugs = false;
    auto dev = apps::buildPmcache(fixed_cfg);
    auto repaired = apps::buildPmcache({});
    runPipelineWithArg(repaired.get(), "mc_example", 30);

    uint64_t d = digest(buggy.get());
    EXPECT_EQ(digest(dev.get()), d);
    EXPECT_EQ(digest(repaired.get()), d);
}

TEST(Integration, EvictionInjectionDoesNotMaskBugsFromDetector)
{
    // With aggressive eviction, unflushed data frequently *does*
    // survive — but the detector works on required orderings, not on
    // lucky persistence, so it must still report the same bugs.
    auto with_eviction = [](double chance) {
        auto m = buildListing5(true);
        pmem::PmPool pool(1 << 20, chance, /*seed=*/9);
        vm::VmConfig vc;
        vc.traceEnabled = true;
        vm::Vm machine(m.get(), &pool, vc);
        machine.run("foo");
        return pmcheck::analyze(machine.trace()).bugs.size();
    };
    EXPECT_EQ(with_eviction(0.0), with_eviction(1.0));
}

TEST(Integration, TraceSizesScaleWithWork)
{
    // Paper §5.1: pmemcheck traces are large (350 MB for Redis). Our
    // traces grow linearly with executed PM work; sanity-check the
    // proportionality so trace-volume regressions get caught.
    auto trace_events = [](uint64_t n) {
        auto m = apps::buildPclht({});
        pmem::PmPool pool(8u << 20);
        vm::VmConfig vc;
        vc.traceEnabled = true;
        vm::Vm machine(m.get(), &pool, vc);
        machine.run("clht_example", {n});
        return machine.trace().size();
    };
    size_t small = trace_events(10);
    size_t large = trace_events(40);
    EXPECT_GT(large, small * 2);
    EXPECT_LT(large, small * 16);
}

} // namespace hippo::test
