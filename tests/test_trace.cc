/**
 * @file
 * Unit tests for the trace substrate: event/object interning, stack
 * string formats, and text round-tripping (the cross-process
 * interface of the paper's pipeline), including a randomized
 * round-trip property sweep.
 */

#include <gtest/gtest.h>

#include "support/random.hh"
#include "trace/trace.hh"

namespace hippo::test
{

using namespace hippo::trace;

TEST(Trace, ObjectsInternBySite)
{
    Trace tr;
    uint32_t a = tr.internObject("pm:pool", true);
    uint32_t b = tr.internObject("f#3", false);
    EXPECT_EQ(tr.internObject("pm:pool", true), a);
    EXPECT_NE(a, b);
    ASSERT_EQ(tr.objects().size(), 2u);
    EXPECT_TRUE(tr.objects()[a].isPm);
    EXPECT_FALSE(tr.objects()[b].isPm);
}

TEST(Trace, AppendAssignsSequenceNumbers)
{
    Trace tr;
    Event e;
    e.kind = EventKind::Fence;
    e.stack = {{"f", 1, "a.c", 2}};
    EXPECT_EQ(tr.append(e).seq, 0u);
    EXPECT_EQ(tr.append(e).seq, 1u);
    EXPECT_EQ(tr.size(), 2u);
}

TEST(Trace, StackStringRoundTrip)
{
    std::vector<StackFrame> stack = {
        {"update", 3, "kv.c", 12},
        {"modify", 7, "kv.c", 40},
        {"main", 0xFFFFFFFEu, "", 0},
    };
    std::string s = stackToString(stack);
    EXPECT_NE(s.find("update@3(kv.c:12)"), std::string::npos);
    EXPECT_NE(s.find(" < "), std::string::npos);

    std::vector<StackFrame> parsed;
    ASSERT_TRUE(stackFromString(s, parsed));
    EXPECT_EQ(parsed, stack);
}

TEST(Trace, StackStringRejectsGarbage)
{
    std::vector<StackFrame> parsed;
    EXPECT_FALSE(stackFromString("not a stack", parsed));
    EXPECT_FALSE(stackFromString("f@x(a.c:1)", parsed));
    EXPECT_FALSE(stackFromString("f@1(noline)", parsed));
    EXPECT_TRUE(stackFromString("", parsed));
    EXPECT_TRUE(parsed.empty());
}

TEST(Trace, TextRoundTripPreservesEverything)
{
    Trace tr;
    uint32_t obj = tr.internObject("pm:pool", true);

    Event map;
    map.kind = EventKind::PmMap;
    map.addr = 0x20000000;
    map.size = 4096;
    map.isPm = true;
    map.objectId = obj;
    map.symbol = "pool";
    map.stack = {{"main", 0, "m.c", 1}};
    tr.append(map);

    Event store;
    store.kind = EventKind::Store;
    store.addr = 0x20000040;
    store.size = 8;
    store.isPm = true;
    store.nonTemporal = true;
    store.objectId = obj;
    store.stack = {{"leaf", 5, "l.c", 9}, {"main", 2, "m.c", 3}};
    tr.append(store);

    Event flush;
    flush.kind = EventKind::Flush;
    flush.addr = 0x20000040;
    flush.size = 64;
    flush.isPm = true;
    flush.sub = 1;
    flush.stack = {{"main", 3, "m.c", 4}};
    tr.append(flush);

    Event out;
    out.kind = EventKind::Output;
    out.symbol = "count";
    out.value = 1234;
    out.stack = {{"main", 4, "m.c", 5}};
    tr.append(out);

    std::string text = tr.writeText();
    Trace parsed;
    std::string error;
    ASSERT_TRUE(Trace::readText(text, parsed, &error)) << error;
    ASSERT_EQ(parsed.size(), tr.size());
    ASSERT_EQ(parsed.objects().size(), tr.objects().size());

    for (size_t i = 0; i < tr.size(); i++) {
        const Event &a = tr.at(i);
        const Event &b = parsed.at(i);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.size, b.size);
        EXPECT_EQ(a.isPm, b.isPm);
        EXPECT_EQ(a.nonTemporal, b.nonTemporal);
        EXPECT_EQ(a.sub, b.sub);
        EXPECT_EQ(a.objectId, b.objectId);
        EXPECT_EQ(a.symbol, b.symbol);
        EXPECT_EQ(a.value, b.value);
        EXPECT_EQ(a.stack, b.stack);
    }
}

TEST(Trace, ReadTextRejectsMalformedInput)
{
    Trace out;
    std::string error;
    EXPECT_FALSE(Trace::readText("#0 BOGUS | f@0(a:1)", out, &error));
    EXPECT_FALSE(Trace::readText("#0 STORE addr=zz | f@0(a:1)", out,
                                 &error));
    EXPECT_FALSE(Trace::readText("#0 STORE addr=1", out, &error))
        << "missing stack separator";
    EXPECT_FALSE(Trace::readText("#5 FENCE | f@0(a:1)", out, &error))
        << "non-contiguous sequence numbers";
    EXPECT_TRUE(Trace::readText("", out, &error));
    EXPECT_TRUE(out.empty());
}

/** Property sweep: random traces survive the text round-trip. */
class TraceRoundTrip : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(TraceRoundTrip, RandomTraceSurvives)
{
    Rng rng(GetParam());
    Trace tr;
    uint32_t objs[3] = {
        tr.internObject("pm:a", true),
        tr.internObject("f#1", false),
        tr.internObject("pm:b", true),
    };
    const char *functions[] = {"alpha", "beta_2", "gamma_x"};

    uint64_t n = 20 + rng.nextBelow(60);
    for (uint64_t i = 0; i < n; i++) {
        Event e;
        e.kind = (EventKind)rng.nextBelow(6);
        e.addr = 0x20000000 + rng.nextBelow(1 << 16) * 8;
        e.size = 1ULL << rng.nextBelow(4);
        e.isPm = rng.chance(0.7);
        e.nonTemporal = rng.chance(0.1);
        e.sub = (uint8_t)rng.nextBelow(3);
        e.objectId = objs[rng.nextBelow(3)];
        if (e.kind == EventKind::PmMap ||
            e.kind == EventKind::DurPoint ||
            e.kind == EventKind::Output)
            e.symbol = "sym" + std::to_string(rng.nextBelow(10));
        if (e.kind == EventKind::Output)
            e.value = rng.next();
        uint64_t depth = 1 + rng.nextBelow(4);
        for (uint64_t d = 0; d < depth; d++) {
            e.stack.push_back({functions[rng.nextBelow(3)],
                               (uint32_t)rng.nextBelow(100),
                               rng.chance(0.8) ? "file.c" : "",
                               (int)rng.nextBelow(500)});
        }
        tr.append(std::move(e));
    }

    std::string text = tr.writeText();
    Trace parsed;
    std::string error;
    ASSERT_TRUE(Trace::readText(text, parsed, &error)) << error;
    ASSERT_EQ(parsed.size(), tr.size());
    EXPECT_EQ(parsed.writeText(), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceRoundTrip,
                         ::testing::Range<uint64_t>(1, 13));

} // namespace hippo::test
