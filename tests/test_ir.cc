/**
 * @file
 * Unit tests for PMIR: module/function/block structure, the builder,
 * printer/parser round-tripping, the verifier's checks, and the
 * function cloner that powers the persistent subprogram
 * transformation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "ir/builder.hh"
#include "support/random.hh"
#include "ir/cloner.hh"
#include "ir/module.hh"
#include "ir/parser.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"

namespace hippo::test
{

using namespace hippo::ir;

namespace
{

/** A small module exercising every opcode. */
std::unique_ptr<Module>
makeKitchenSink()
{
    auto m = std::make_unique<Module>("sink");
    IRBuilder b(m.get());

    Function *helper = m->addFunction("helper", Type::Int);
    Argument *hp = helper->addParam(Type::Ptr, "p");
    Argument *hv = helper->addParam(Type::Int, "v");
    b.setInsertPoint(helper->addBlock("entry"));
    b.setLoc("sink.c", 5);
    b.createStore(hv, hp, 8);
    b.createFlush(hp, FlushKind::ClflushOpt);
    b.createFence(FenceKind::Mfence);
    b.createRet(b.createLoad(hp, 8));

    Function *f = m->addFunction("main", Type::Int);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *then = f->addBlock("then");
    BasicBlock *join = f->addBlock("join");
    b.setInsertPoint(entry);
    b.setLoc("sink.c", 12);
    Instruction *buf = b.createAlloca(64);
    Instruction *pm = b.createPmMap("sink.pool", 128);
    Instruction *g = b.createGep(pm, b.getInt(8));
    Instruction *sum = b.createAdd(b.getInt(40), b.getInt(2));
    Instruction *cmp = b.createCmp(CmpPred::Eq, sum, b.getInt(42));
    Instruction *sel = b.createSelect(cmp, sum, b.getInt(0));
    b.createStore(sel, g, 4, /*non_temporal=*/true);
    b.createMemset(buf, b.getInt(7), b.getInt(16));
    b.createMemcpy(pm, buf, b.getInt(16));
    b.createCondBr(cmp, then, join);
    b.setInsertPoint(then);
    Instruction *rv = b.createCall(helper, {pm, sel});
    b.createPrint("rv", rv);
    b.createBr(join);
    b.setInsertPoint(join);
    b.createFlush(pm, FlushKind::Clflush);
    b.createFence(FenceKind::Sfence);
    b.createDurPoint("end");
    b.createRet(sum);
    return m;
}

} // namespace

TEST(Ir, ModuleBasics)
{
    Module m("test");
    EXPECT_EQ(m.name(), "test");
    Function *f = m.addFunction("f", Type::Void);
    EXPECT_EQ(m.findFunction("f"), f);
    EXPECT_EQ(m.findFunction("g"), nullptr);
    EXPECT_EQ(m.instrCount(), 0u);
}

TEST(Ir, ConstantsAreUniqued)
{
    Module m;
    EXPECT_EQ(m.getInt(42), m.getInt(42));
    EXPECT_NE(m.getInt(42), m.getInt(43));
    EXPECT_EQ(m.getNullPtr(), m.getNullPtr());
    EXPECT_EQ(m.getNullPtr()->type(), Type::Ptr);
    EXPECT_EQ(m.getInt(42)->displayName(), "42");
    EXPECT_EQ(m.getNullPtr()->displayName(), "null");
}

TEST(Ir, InstructionIdsAreNeverReused)
{
    Module m;
    IRBuilder b(&m);
    Function *f = m.addFunction("f", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *a = b.createAlloca(8);
    Instruction *s = b.createStore(b.getInt(1), a, 8);
    EXPECT_EQ(a->id(), 0u);
    EXPECT_EQ(s->id(), 1u);
    f->entry()->erase(s);
    Instruction *r = b.createRet();
    EXPECT_EQ(r->id(), 2u) << "erased ids must not be reused";
    EXPECT_EQ(f->findInstr(1), nullptr);
    EXPECT_EQ(f->findInstr(0), a);
}

TEST(Ir, InsertionPointsPlaceInstructionsCorrectly)
{
    Module m;
    IRBuilder b(&m);
    Function *f = m.addFunction("f", Type::Void);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    Instruction *first = b.createAlloca(8);
    Instruction *last = b.createRet();

    b.setInsertPointAfter(first);
    Instruction *mid = b.createFence(FenceKind::Sfence);
    b.setInsertPointBefore(last);
    Instruction *mid2 = b.createFence(FenceKind::Mfence);

    std::vector<Instruction *> order;
    for (auto &i : *bb)
        order.push_back(i.get());
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], first);
    EXPECT_EQ(order[1], mid);
    EXPECT_EQ(order[2], mid2);
    EXPECT_EQ(order[3], last);
}

TEST(Ir, BuilderAttachesSourceLocations)
{
    Module m;
    IRBuilder b(&m);
    Function *f = m.addFunction("f", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    b.setLoc("a.c", 10);
    Instruction *i1 = b.createAlloca(8);
    b.setLoc("b.c", 20);
    Instruction *i2 = b.createRet();
    EXPECT_EQ(i1->loc().file, "a.c");
    EXPECT_EQ(i1->loc().line, 10);
    EXPECT_EQ(i2->loc().file, "b.c");
    EXPECT_EQ(i2->loc().str(), "b.c:20");
}

TEST(Ir, KitchenSinkVerifies)
{
    auto m = makeKitchenSink();
    EXPECT_TRUE(verifyModule(*m).empty());
}

TEST(Ir, PrintParseRoundTripPreservesStructure)
{
    auto m = makeKitchenSink();
    std::string text1 = moduleToString(*m);

    std::string error;
    auto m2 = parseModule(text1, &error);
    ASSERT_NE(m2, nullptr) << error;
    EXPECT_TRUE(verifyModule(*m2).empty());

    // Idempotence: print(parse(print(m))) == print(m).
    std::string text2 = moduleToString(*m2);
    EXPECT_EQ(text1, text2);
}

TEST(Ir, RoundTripPreservesIdsAndLocs)
{
    auto m = makeKitchenSink();
    std::string error;
    auto m2 = parseModule(moduleToString(*m), &error);
    ASSERT_NE(m2, nullptr) << error;

    for (const auto &f : m->functions()) {
        Function *f2 = m2->findFunction(f->name());
        ASSERT_NE(f2, nullptr);
        ASSERT_EQ(f2->instrCount(), f->instrCount());
        for (const auto &bb : f->blocks()) {
            for (const auto &instr : *bb) {
                Instruction *i2 = f2->findInstr(instr->id());
                ASSERT_NE(i2, nullptr)
                    << "missing id " << instr->id();
                EXPECT_EQ(i2->op(), instr->op());
                EXPECT_EQ(i2->loc(), instr->loc());
            }
        }
    }
}

TEST(Ir, ParserReportsErrors)
{
    std::string error;
    EXPECT_EQ(parseModule("garbage", &error), nullptr);
    EXPECT_FALSE(error.empty());

    EXPECT_EQ(parseModule("func @f() -> void {\nentry:\n  bogus\n}",
                          &error),
              nullptr);
    EXPECT_NE(error.find("unknown mnemonic"), std::string::npos);

    EXPECT_EQ(parseModule("func @f() -> void {\nentry:\n"
                          "  call @missing()\n  ret\n}",
                          &error),
              nullptr);
    EXPECT_NE(error.find("unknown callee"), std::string::npos);

    EXPECT_EQ(parseModule("func @f() -> void {\nentry:\n  ret\n",
                          &error),
              nullptr)
        << "unterminated function must fail";
}

TEST(Ir, ParserResolvesForwardBranches)
{
    const char *text = R"(
func @f(%n: i64) -> i64 {
entry:
    condbr %n, %later, %now
now:
    ret 1
later:
    ret 2
}
)";
    std::string error;
    auto m = parseModule(text, &error);
    ASSERT_NE(m, nullptr) << error;
    EXPECT_TRUE(verifyModule(*m).empty());
}

TEST(Ir, VerifierCatchesMissingTerminator)
{
    Module m;
    IRBuilder b(&m);
    Function *f = m.addFunction("f", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    b.createAlloca(8);
    auto problems = verifyFunction(*f);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("terminator"), std::string::npos);
}

TEST(Ir, VerifierCatchesMidBlockTerminator)
{
    Module m;
    IRBuilder b(&m);
    Function *f = m.addFunction("f", Type::Void);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    Instruction *r = b.createRet();
    b.setInsertPointAfter(r);
    b.createRet();
    EXPECT_FALSE(verifyFunction(*f).empty());
}

TEST(Ir, VerifierCatchesTypeErrors)
{
    Module m;
    IRBuilder b(&m);
    Function *f = m.addFunction("f", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *a = b.createAlloca(8);
    // Hand-build a store with swapped operands (value in ptr slot).
    auto bad = std::make_unique<Instruction>(
        Opcode::Store, Type::Void, f->nextInstrId());
    bad->addOperand(a);           // "value" is a pointer: allowed
    bad->addOperand(m.getInt(1)); // "ptr" is an int: error
    bad->setAccessSize(8);
    f->entry()->append(std::move(bad));
    b.setInsertPoint(f->entry());
    b.createRet();
    auto problems = verifyFunction(*f);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("operand 1"), std::string::npos);
}

TEST(Ir, VerifierCatchesBadAccessSize)
{
    Module m;
    IRBuilder b(&m);
    Function *f = m.addFunction("f", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *a = b.createAlloca(8);
    Instruction *s = b.createStore(b.getInt(0), a, 8);
    s->setAccessSize(3);
    b.createRet();
    EXPECT_FALSE(verifyFunction(*f).empty());
}

TEST(Ir, VerifierCatchesCrossFunctionOperand)
{
    Module m;
    IRBuilder b(&m);
    Function *g = m.addFunction("g", Type::Void);
    b.setInsertPoint(g->addBlock("entry"));
    Instruction *ga = b.createAlloca(8);
    b.createRet();

    Function *f = m.addFunction("f", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    b.createLoad(ga, 8); // operand from @g
    b.createRet();
    auto problems = verifyFunction(*f);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("another function"),
              std::string::npos);
}

TEST(Ir, VerifierCatchesCallArityMismatch)
{
    Module m;
    IRBuilder b(&m);
    Function *g = m.addFunction("g", Type::Void);
    g->addParam(Type::Int, "x");
    b.setInsertPoint(g->addBlock("entry"));
    b.createRet();

    Function *f = m.addFunction("f", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    auto call = std::make_unique<Instruction>(
        Opcode::Call, Type::Void, f->nextInstrId());
    call->setCallee(g); // zero args for a 1-param callee
    f->entry()->append(std::move(call));
    b.setInsertPoint(f->entry());
    b.createRet();
    EXPECT_FALSE(verifyFunction(*f).empty());
}

TEST(Ir, ClonerRemapsValuesAndTargets)
{
    auto m = makeKitchenSink();
    Function *src = m->findFunction("main");
    CloneResult res = cloneFunction(src, "main_PM");

    ASSERT_NE(res.clone, nullptr);
    EXPECT_EQ(m->findFunction("main_PM"), res.clone);
    EXPECT_TRUE(verifyFunction(*res.clone).empty());
    EXPECT_EQ(res.clone->instrCount(), src->instrCount());
    EXPECT_EQ(res.clone->numParams(), src->numParams());
    EXPECT_EQ(res.clone->idBound(), src->idBound());

    // Every cloned instruction mirrors its source: same op, same id,
    // operands remapped into the clone.
    for (const auto &bb : src->blocks()) {
        for (const auto &instr : *bb) {
            Instruction *copy = res.instrMap.at(instr.get());
            EXPECT_EQ(copy->op(), instr->op());
            EXPECT_EQ(copy->id(), instr->id());
            EXPECT_EQ(copy->loc(), instr->loc());
            for (size_t i = 0; i < instr->numOperands(); i++) {
                const Value *orig = instr->operand(i);
                const Value *cl = copy->operand(i);
                if (orig->kind() == ValueKind::Constant) {
                    EXPECT_EQ(cl, orig);
                } else {
                    EXPECT_EQ(cl, res.valueMap.at(orig));
                    EXPECT_NE(cl, orig);
                }
            }
        }
    }
}

TEST(Ir, ClonerCalleeRemapHook)
{
    auto m = makeKitchenSink();
    Function *helper = m->findFunction("helper");
    CloneResult helper_clone = cloneFunction(helper, "helper_PM");

    Function *main_fn = m->findFunction("main");
    CloneResult res = cloneFunction(
        main_fn, "main_PM", [&](Function *callee) -> Function * {
            return callee == helper ? helper_clone.clone : nullptr;
        });

    bool found = false;
    for (const auto &bb : res.clone->blocks()) {
        for (const auto &instr : *bb) {
            if (instr->op() == Opcode::Call) {
                EXPECT_EQ(instr->callee(), helper_clone.clone);
                found = true;
            }
        }
    }
    EXPECT_TRUE(found);
}

/** Fuzz sweep: mutated module text must parse-or-error, not crash. */
class ParserFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ParserFuzz, MutatedTextNeverCrashesParser)
{
    auto m = makeKitchenSink();
    std::string text = moduleToString(*m);
    hippo::Rng rng(GetParam());

    for (int round = 0; round < 40; round++) {
        std::string mutated = text;
        uint64_t edits = 1 + rng.nextBelow(4);
        for (uint64_t e = 0; e < edits; e++) {
            size_t pos = rng.nextBelow(mutated.size());
            switch (rng.nextBelow(3)) {
              case 0: // flip a character
                mutated[pos] =
                    (char)(32 + rng.nextBelow(95));
                break;
              case 1: // delete a span
                mutated.erase(pos, 1 + rng.nextBelow(8));
                break;
              default: // duplicate a span
                mutated.insert(pos,
                               mutated.substr(pos,
                                              1 + rng.nextBelow(8)));
                break;
            }
            if (mutated.empty())
                mutated = " ";
        }
        std::string error;
        auto parsed = parseModule(mutated, &error);
        if (parsed) {
            // Whatever parses must at least be printable again.
            EXPECT_FALSE(moduleToString(*parsed).empty());
        } else {
            EXPECT_FALSE(error.empty());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Range<uint64_t>(1, 9));

TEST(Ir, PrinterEmitsStableOpcodeSyntax)
{
    auto m = makeKitchenSink();
    std::string text = moduleToString(*m);
    for (const char *needle :
         {"store.nt", "flush clflushopt", "flush clflush ",
          "fence mfence", "fence sfence", "pmmap \"sink.pool\", 128",
          "memcpy", "memset", "durpoint \"end\"", "print \"rv\"",
          "select", "cmp eq", "gep", "!loc(sink.c:12)"}) {
        EXPECT_NE(text.find(needle), std::string::npos)
            << "missing: " << needle << "\n" << text;
    }
}

} // namespace hippo::test
