/**
 * @file
 * Tests pinning the §3 study dataset to the aggregates Fig. 1
 * reports: group membership, per-group means/maxima, and the
 * Average row. These guard the bench_fig1_bug_study output against
 * dataset drift.
 */

#include <gtest/gtest.h>

#include "apps/bugstudy.hh"

namespace hippo::test
{

using apps::bugStudyTable;
using apps::studiedBugs;
using apps::StudyKind;

TEST(BugStudy, TwentySixBugsSeventeenCoreNineMisuse)
{
    size_t core = 0, misuse = 0;
    for (const auto &b : studiedBugs()) {
        if (b.kind == StudyKind::CoreLibraryOrTool)
            core++;
        else
            misuse++;
    }
    EXPECT_EQ(core, 17u);
    EXPECT_EQ(misuse, 9u);
    EXPECT_EQ(studiedBugs().size(), 26u);
}

TEST(BugStudy, IssueNumbersMatchThePaper)
{
    std::set<int> issues;
    for (const auto &b : studiedBugs())
        EXPECT_TRUE(issues.insert(b.issue).second)
            << "duplicate issue " << b.issue;
    for (int expect : {440, 441, 442, 444, 446, 447, 448, 449, 450,
                       452, 458, 459, 460, 461, 463, 465, 466, 535,
                       585, 940, 942, 943, 945, 949, 1103, 1118}) {
        EXPECT_TRUE(issues.count(expect)) << "missing " << expect;
    }
}

TEST(BugStudy, GroupAggregatesMatchFig1)
{
    auto rows = bugStudyTable();
    ASSERT_EQ(rows.size(), 5u);

    // Row 1: undocumented core bugs — no effort data.
    EXPECT_FALSE(rows[0].hasData);
    // Row 2: documented core bugs — 17 commits / 33 days / max 66.
    ASSERT_TRUE(rows[1].hasData);
    EXPECT_NEAR(rows[1].avgCommits, 17.0, 0.01);
    EXPECT_NEAR(rows[1].avgDays, 33.0, 0.01);
    EXPECT_EQ(rows[1].maxDays, 66);
    // Row 3: undocumented API misuse.
    EXPECT_FALSE(rows[2].hasData);
    // Row 4: documented API misuse — 2 / 15 / 38.
    ASSERT_TRUE(rows[3].hasData);
    EXPECT_NEAR(rows[3].avgCommits, 2.0, 0.01);
    EXPECT_NEAR(rows[3].avgDays, 15.0, 0.01);
    EXPECT_EQ(rows[3].maxDays, 38);
    // Average row — 13 commits / 28 days / 66 max.
    ASSERT_TRUE(rows[4].hasData);
    EXPECT_NEAR(rows[4].avgCommits, 13.0, 0.1);
    EXPECT_NEAR(rows[4].avgDays, 28.0, 0.5);
    EXPECT_EQ(rows[4].maxDays, 66);
    EXPECT_EQ(rows[4].issues, "Average");
}

TEST(BugStudy, FixEffortMotivatesAutomation)
{
    // The motivating observation of §3.1: documented PM bug fixes
    // took weeks on average and many attempts.
    for (const auto &b : studiedBugs()) {
        if (!b.hasEffortData())
            continue;
        EXPECT_GE(b.commits, 1);
        EXPECT_GE(b.daysOpenToClose, 1);
        EXPECT_LE(b.daysOpenToClose, 66);
    }
}

} // namespace hippo::test
