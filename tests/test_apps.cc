/**
 * @file
 * Tests for the evaluation targets: P-CLHT (2 seeded bugs),
 * memcached-pm (10 seeded bugs), and the 11-case PMDK corpus —
 * together the paper's 23 reproduced-and-fixed bugs (§6.1), plus the
 * Fig. 3 accuracy comparison inputs (§6.2).
 */

#include <gtest/gtest.h>

#include "apps/bugsuite.hh"
#include "apps/pclht.hh"
#include "apps/pmcache.hh"
#include "test_util.hh"

namespace hippo::test
{

using apps::buildPclht;
using apps::buildPmcache;
using apps::evaluateCase;
using apps::pmdkBugCases;
using pmcheck::BugKind;

namespace
{

pmcheck::Report
traceAndAnalyze(ir::Module *m, const std::string &entry,
                uint64_t arg)
{
    pmem::PmPool pool(8u << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(m, &pool, vc);
    machine.run(entry, {arg});
    return pmcheck::analyze(machine.trace());
}

} // namespace

TEST(Pclht, FunctionalPutGetDelete)
{
    apps::PclhtConfig cfg;
    cfg.seedBugs = false;
    auto m = buildPclht(cfg);
    pmem::PmPool pool(8u << 20);
    vm::Vm machine(m.get(), &pool, {});
    machine.run("clht_init");
    EXPECT_EQ(machine.run("clht_put", {10, 300}).returnValue, 1u);
    EXPECT_EQ(machine.run("clht_put", {11, 400}).returnValue, 1u);
    EXPECT_EQ(machine.run("clht_get", {10}).returnValue, 300u);
    EXPECT_EQ(machine.run("clht_get", {11}).returnValue, 400u);
    EXPECT_EQ(machine.run("clht_get", {12}).returnValue, 0u);
    // Overwrite path.
    EXPECT_EQ(machine.run("clht_put", {10, 301}).returnValue, 1u);
    EXPECT_EQ(machine.run("clht_get", {10}).returnValue, 301u);
    // Delete.
    EXPECT_EQ(machine.run("clht_del", {10}).returnValue, 1u);
    EXPECT_EQ(machine.run("clht_get", {10}).returnValue, 0u);
    EXPECT_EQ(machine.run("clht_recover").returnValue, 1u);
}

TEST(Pclht, BucketOverflowProbesToNextBucket)
{
    apps::PclhtConfig cfg;
    cfg.seedBugs = false;
    cfg.buckets = 4; // force collisions: 4+ keys per bucket
    auto m = buildPclht(cfg);
    pmem::PmPool pool(8u << 20);
    vm::Vm machine(m.get(), &pool, {});
    machine.run("clht_init");
    for (uint64_t k = 1; k <= 10; k++)
        ASSERT_EQ(machine.run("clht_put", {k, k * 7}).returnValue,
                  1u)
            << "key " << k;
    for (uint64_t k = 1; k <= 10; k++)
        EXPECT_EQ(machine.run("clht_get", {k}).returnValue, k * 7);
}

TEST(Pclht, SeededBugsDetectedWithExpectedKinds)
{
    auto m = buildPclht({});
    auto report = traceAndAnalyze(m.get(), "clht_example", 20);
    ASSERT_EQ(report.bugs.size(), 2u) << report.writeText();

    std::multiset<BugKind> kinds;
    for (const auto &b : report.bugs)
        kinds.insert(b.kind);
    EXPECT_EQ(kinds.count(BugKind::MissingFlush), 1u);
    EXPECT_EQ(kinds.count(BugKind::MissingFlushFence), 1u);
}

TEST(Pclht, FixedBuildIsCleanAndHippocratesMatchesIt)
{
    apps::PclhtConfig fixed_cfg;
    fixed_cfg.seedBugs = false;
    auto fixed = buildPclht(fixed_cfg);
    EXPECT_TRUE(
        traceAndAnalyze(fixed.get(), "clht_example", 20).clean());

    auto buggy = buildPclht({});
    auto res = runPipelineWithArg(buggy.get(), "clht_example", 20);
    EXPECT_EQ(res.before.bugs.size(), 2u);
    EXPECT_TRUE(res.after.clean()) << res.after.writeText();
    EXPECT_EQ(res.outputsBefore, res.outputsAfter);
}

TEST(Pclht, CrashAtPutPublishLosesSlotOnlyWhenBuggy)
{
    auto run_and_crash = [](ir::Module *m) {
        pmem::PmPool pool(8u << 20);
        {
            vm::Vm machine(m, &pool, {});
            machine.run("clht_init");
            machine.run("clht_put", {1, 100});
            machine.run("clht_put", {2, 200});
        }
        {
            vm::VmConfig vc;
            vc.crashAtDurPoint = 0;
            vm::Vm machine(m, &pool, vc);
            auto r = machine.run("clht_put", {3, 300});
            EXPECT_TRUE(r.crashed);
        }
        pool.crash();
        vm::Vm rec(m, &pool, {});
        return rec.run("clht_recover").returnValue;
    };

    auto buggy = buildPclht({});
    EXPECT_LT(run_and_crash(buggy.get()), 3u);

    auto repaired = buildPclht({});
    runPipelineWithArg(repaired.get(), "clht_example", 20);
    EXPECT_EQ(run_and_crash(repaired.get()), 3u);
}

TEST(Pmcache, FunctionalSetGetDelete)
{
    apps::PmcacheConfig cfg;
    cfg.seedBugs = false;
    auto m = buildPmcache(cfg);
    pmem::PmPool pool(16u << 20);
    vm::Vm machine(m.get(), &pool, {});
    machine.run("mc_init");
    machine.run("mc_handle_set", {100, 48});
    machine.run("mc_handle_set", {200, 64});
    EXPECT_EQ(machine.run("mc_handle_get", {100}).returnValue, 48u);
    EXPECT_EQ(machine.run("mc_handle_get", {200}).returnValue, 64u);
    EXPECT_EQ(machine.run("mc_handle_get", {300}).returnValue, 0u);
    EXPECT_EQ(machine.run("mc_handle_del", {100}).returnValue, 1u);
    EXPECT_EQ(machine.run("mc_handle_get", {100}).returnValue, 0u);
    EXPECT_EQ(machine.run("mc_recover").returnValue, 1u);
}

TEST(Pmcache, TenSeededBugsDetected)
{
    auto m = buildPmcache({});
    auto report = traceAndAnalyze(m.get(), "mc_example", 24);
    EXPECT_EQ(report.bugs.size(), 10u) << report.writeText();

    std::multiset<BugKind> kinds;
    for (const auto &b : report.bugs)
        kinds.insert(b.kind);
    // 7 missing-flush, 1 missing-fence, 2 missing-flush&fence.
    EXPECT_EQ(kinds.count(BugKind::MissingFlush), 7u);
    EXPECT_EQ(kinds.count(BugKind::MissingFence), 1u);
    EXPECT_EQ(kinds.count(BugKind::MissingFlushFence), 2u);
}

TEST(Pmcache, HippocratesFixesAllTenAndSlabWriteHoists)
{
    auto m = buildPmcache({});
    auto res = runPipelineWithArg(m.get(), "mc_example", 24);
    EXPECT_EQ(res.before.bugs.size(), 10u);
    EXPECT_TRUE(res.after.clean()) << res.after.writeText();
    EXPECT_EQ(res.outputsBefore, res.outputsAfter);
    // The payload fix hoists out of the shared slab writer.
    EXPECT_NE(m->findFunction("slab_write_PM"), nullptr);
    EXPECT_GT(res.summary.interproceduralCount(), 0u);
}

TEST(Pmcache, FixedBuildIsClean)
{
    apps::PmcacheConfig cfg;
    cfg.seedBugs = false;
    auto m = buildPmcache(cfg);
    EXPECT_TRUE(traceAndAnalyze(m.get(), "mc_example", 24).clean());
}

TEST(Pclht, OverwriteIsDurableEvenInBuggyBuild)
{
    // The overwrite path flushes+fences correctly in both builds —
    // a crash right after an overwrite's durability point keeps the
    // new value.
    auto m = buildPclht({});
    pmem::PmPool pool(8u << 20);
    {
        vm::Vm machine(m.get(), &pool, {});
        machine.run("clht_init");
        machine.run("clht_put", {5, 100});
    }
    {
        vm::VmConfig vc;
        vc.crashAtDurPoint = 0;
        vm::Vm machine(m.get(), &pool, vc);
        auto r = machine.run("clht_put", {5, 200}); // overwrite
        EXPECT_TRUE(r.crashed);
    }
    pool.crash();
    vm::Vm rec(m.get(), &pool, {});
    EXPECT_EQ(rec.run("clht_get", {5}).returnValue, 200u);
}

TEST(Pclht, DeleteThenReinsertReusesSlot)
{
    apps::PclhtConfig cfg;
    cfg.seedBugs = false;
    auto m = buildPclht(cfg);
    pmem::PmPool pool(8u << 20);
    vm::Vm machine(m.get(), &pool, {});
    machine.run("clht_init");
    for (uint64_t k = 1; k <= 3; k++)
        machine.run("clht_put", {k, k});
    EXPECT_EQ(machine.run("clht_recover").returnValue, 3u);
    machine.run("clht_del", {2});
    machine.run("clht_put", {9, 90});
    EXPECT_EQ(machine.run("clht_recover").returnValue, 3u)
        << "the freed slot must be reused";
    EXPECT_EQ(machine.run("clht_get", {9}).returnValue, 90u);
    EXPECT_EQ(machine.run("clht_get", {2}).returnValue, 0u);
}

TEST(Pmcache, RingReuseOverwritesOldestSlot)
{
    apps::PmcacheConfig cfg;
    cfg.seedBugs = false;
    cfg.items = 4; // tiny slab to force reuse
    cfg.buckets = 8;
    auto m = buildPmcache(cfg);
    pmem::PmPool pool(16u << 20);
    vm::Vm machine(m.get(), &pool, {});
    machine.run("mc_init");
    for (uint64_t k = 1; k <= 6; k++)
        machine.run("mc_handle_set", {k, 32});
    // Keys 5 and 6 overwrote the slots of keys 1 and 2.
    EXPECT_EQ(machine.run("mc_handle_get", {6}).returnValue, 32u);
    EXPECT_EQ(machine.run("mc_handle_get", {5}).returnValue, 32u);
    EXPECT_EQ(machine.run("mc_handle_get", {1}).returnValue, 0u);
}

TEST(Pmcache, DeleteOnlyUnlinksChainHead)
{
    apps::PmcacheConfig cfg;
    cfg.seedBugs = false;
    cfg.buckets = 1; // everything chains in one bucket
    auto m = buildPmcache(cfg);
    pmem::PmPool pool(16u << 20);
    vm::Vm machine(m.get(), &pool, {});
    machine.run("mc_init");
    machine.run("mc_handle_set", {1, 32});
    machine.run("mc_handle_set", {2, 32});
    // 2 is the chain head; deleting 1 (not head) is a miss, deleting
    // 2 succeeds and exposes 1 again.
    EXPECT_EQ(machine.run("mc_handle_del", {1}).returnValue, 0u);
    EXPECT_EQ(machine.run("mc_handle_del", {2}).returnValue, 1u);
    EXPECT_EQ(machine.run("mc_handle_get", {1}).returnValue, 32u);
}

TEST(Pmcache, TouchStampsLruOnGet)
{
    apps::PmcacheConfig cfg;
    cfg.seedBugs = false;
    auto m = buildPmcache(cfg);
    pmem::PmPool pool(16u << 20);
    vm::Vm machine(m.get(), &pool, {});
    machine.run("mc_init");
    machine.run("mc_handle_set", {1, 32});
    machine.run("mc_handle_set", {2, 32});
    machine.run("mc_handle_get", {1});
    // lru field of item 0 (key 1) holds the count stamp (2 sets).
    const pmem::PmRegion *items = pool.findRegion("mc.items");
    uint64_t lru = 0;
    pool.load(items->base + 32, reinterpret_cast<uint8_t *>(&lru),
              8);
    EXPECT_EQ(lru, 2u);
}

TEST(BugSuite, AllElevenCasesDetectFixAndMatchDevelopers)
{
    for (const auto &c : pmdkBugCases()) {
        auto res = evaluateCase(c);
        EXPECT_TRUE(res.detected) << c.id;
        EXPECT_EQ(res.foundKind, c.expectedKind) << c.id;
        EXPECT_TRUE(res.fixedClean) << c.id;
        EXPECT_EQ(res.hippoKind, c.expectedHippoKind) << c.id;
        EXPECT_TRUE(res.devClean) << c.id;
        EXPECT_TRUE(res.persistedStateMatches) << c.id;
    }
}

TEST(BugSuite, TwentyThreeBugsTotalAcrossTargets)
{
    // §6.1: 11 PMDK + 2 P-CLHT + 10 memcached-pm = 23.
    size_t total = pmdkBugCases().size();
    auto pclht = buildPclht({});
    total += traceAndAnalyze(pclht.get(), "clht_example", 20)
                 .bugs.size();
    auto mc = buildPmcache({});
    total += traceAndAnalyze(mc.get(), "mc_example", 24).bugs.size();
    EXPECT_EQ(total, 23u);
}

TEST(BugSuite, Fig3Distribution)
{
    // 8/11 functionally identical (interprocedural flush+fence on
    // both sides), 3/11 equivalent with a more portable dev fix.
    size_t identical = 0, equivalent = 0;
    for (const auto &c : pmdkBugCases()) {
        if (c.devStyle ==
            apps::DevFixStyle::InterproceduralFlushFence)
            identical++;
        else
            equivalent++;
    }
    EXPECT_EQ(identical, 8u);
    EXPECT_EQ(equivalent, 3u);
}

} // namespace hippo::test
