/**
 * @file
 * Hostile-input hardening tests. Every file in tests/corpus/bad/ is a
 * malformed PMIR module (truncated function, bogus opcode, oversized
 * constants/ids, verifier violations); the front end must reject each
 * one with a diagnostic instead of aborting. The trace reader gets the
 * same treatment with inline hostile inputs.
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ir/module.hh"
#include "ir/parser.hh"
#include "ir/verifier.hh"
#include "support/strings.hh"
#include "trace/trace.hh"

namespace fs = std::filesystem;
using namespace hippo;

namespace
{

std::string
readFileOrDie(const fs::path &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::vector<fs::path>
badCorpus()
{
    std::vector<fs::path> files;
    for (const auto &e :
         fs::directory_iterator(HIPPO_SOURCE_DIR "/tests/corpus/bad")) {
        if (e.path().extension() == ".pmir")
            files.push_back(e.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

} // namespace

TEST(BadInput, CorpusIsNonTrivial)
{
    EXPECT_GE(badCorpus().size(), 10u);
}

TEST(BadInput, EveryCorpusFileIsRejectedWithDiagnostic)
{
    for (const auto &path : badCorpus()) {
        SCOPED_TRACE(path.filename().string());
        std::string src = readFileOrDie(path);
        std::string error;
        auto m = ir::parseModule(src, &error);
        if (!m) {
            // Parse diagnostics carry a line number.
            EXPECT_NE(error.find("line "), std::string::npos) << error;
            continue;
        }
        // Parsed but semantically broken: the verifier must object.
        auto errs = ir::verifyModule(*m);
        EXPECT_FALSE(errs.empty())
            << "corpus file parsed and verified clean";
        for (const auto &e : errs)
            EXPECT_FALSE(e.empty());
    }
}

TEST(BadInput, ParserRejectionsAreDeterministic)
{
    for (const auto &path : badCorpus()) {
        SCOPED_TRACE(path.filename().string());
        std::string src = readFileOrDie(path);
        std::string e1, e2;
        auto m1 = ir::parseModule(src, &e1);
        auto m2 = ir::parseModule(src, &e2);
        EXPECT_EQ(m1 == nullptr, m2 == nullptr);
        EXPECT_EQ(e1, e2);
    }
}

TEST(BadInput, ParseUintRejectsOverflow)
{
    uint64_t v = 0;
    EXPECT_FALSE(parseUint("18446744073709551616", v)); // 2^64
    EXPECT_FALSE(parseUint("99999999999999999999", v));
    EXPECT_TRUE(parseUint("18446744073709551615", v)); // 2^64 - 1
    EXPECT_EQ(v, ~0ULL);
}

TEST(BadInput, ParserCapsRegisterIds)
{
    std::string error;
    auto m = ir::parseModule("module \"m\"\n"
                             "func @f() -> i64 {\n"
                             "entry:\n"
                             "    %v1048576 = add 1, 1\n"
                             "    ret %v1048576\n"
                             "}\n",
                             &error);
    EXPECT_EQ(m, nullptr);
    EXPECT_NE(error.find("oversized register id"), std::string::npos)
        << error;
}

TEST(BadInput, TraceReaderRejectsEventWithoutStack)
{
    trace::Trace t;
    std::string error;
    EXPECT_FALSE(
        trace::Trace::readText("#0 STORE addr=0 size=8 | \n", t,
                               &error));
    EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(BadInput, TraceReaderRejectsDanglingObjectId)
{
    trace::Trace t;
    std::string error;
    // obj=7 references an object table with zero entries.
    EXPECT_FALSE(trace::Trace::readText(
        "#0 STORE addr=0 size=8 obj=7 | f@0(?:0)\n", t, &error));
    EXPECT_NE(error.find("out of range"), std::string::npos) << error;
}

TEST(BadInput, TraceReaderRejectsGarbage)
{
    const char *cases[] = {
        "not a trace\n",
        "#x STORE addr=0 | f@0(?:0)\n",
        "#0 WOBBLE addr=0 | f@0(?:0)\n",
        "#0 STORE addr=zzz | f@0(?:0)\n",
        "OBJ 0 pm=1\n",
        "#0 STORE addr=0 size=8 f@0(?:0)\n", // no " | " separator
    };
    for (const char *src : cases) {
        SCOPED_TRACE(src);
        trace::Trace t;
        std::string error;
        EXPECT_FALSE(trace::Trace::readText(src, t, &error));
        EXPECT_FALSE(error.empty());
    }
}

TEST(BadInput, TraceReaderRoundTripsAfterRejection)
{
    // A failed read must leave the trace usable for a fresh parse.
    trace::Trace t;
    std::string error;
    EXPECT_FALSE(trace::Trace::readText("garbage\n", t, &error));
    EXPECT_TRUE(trace::Trace::readText(
        "#0 FENCE sub=0 | f@0(?:0)\n", t, &error))
        << error;
    EXPECT_EQ(t.events().size(), 1u);
}
