/**
 * @file
 * Unit tests for the PM/cache persistency model — the substrate the
 * paper's definitions (§4.2) are executed against. Each test checks
 * one clause of the x86 semantics: weakly-ordered CLWB/CLFLUSHOPT,
 * store-ordered CLFLUSH, non-temporal stores, fence draining,
 * eviction injection, and crash imaging.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "pmem/pm_pool.hh"
#include "support/errors.hh"

namespace hippo::test
{

using namespace hippo::pmem;

namespace
{

void
store64(PmPool &pool, uint64_t addr, uint64_t v)
{
    pool.store(addr, reinterpret_cast<uint8_t *>(&v), 8);
}

uint64_t
loadPersisted64(const PmPool &pool, uint64_t addr)
{
    uint64_t v = 0;
    pool.loadPersisted(addr, reinterpret_cast<uint8_t *>(&v), 8);
    return v;
}

uint64_t
load64(const PmPool &pool, uint64_t addr)
{
    uint64_t v = 0;
    pool.load(addr, reinterpret_cast<uint8_t *>(&v), 8);
    return v;
}

} // namespace

TEST(PmPool, RegionMappingIsIdempotent)
{
    PmPool pool(1 << 20);
    uint64_t a = pool.mapRegion("r1", 100);
    uint64_t b = pool.mapRegion("r2", 100);
    EXPECT_NE(a, b);
    EXPECT_EQ(pool.mapRegion("r1", 100), a);
    EXPECT_GE(a, pmBaseAddr);
    // Regions are line-aligned so flushes never straddle regions.
    EXPECT_EQ(a % cacheLineSize, 0u);
    EXPECT_EQ(b % cacheLineSize, 0u);
    EXPECT_TRUE(pool.contains(a, 100));
    EXPECT_FALSE(pool.contains(pmBaseAddr - 1));
    ASSERT_NE(pool.findRegion("r1"), nullptr);
    EXPECT_EQ(pool.findRegion("r1")->base, a);
    EXPECT_EQ(pool.findRegion("nope"), nullptr);
}

TEST(PmPool, StoreIsVisibleButNotDurable)
{
    PmPool pool(1 << 16);
    uint64_t a = pool.mapRegion("r", 64);
    store64(pool, a, 42);
    EXPECT_EQ(load64(pool, a), 42u); // visible to loads
    EXPECT_EQ(loadPersisted64(pool, a), 0u); // not durable
    EXPECT_FALSE(pool.isPersisted(a, 8));
    EXPECT_EQ(pool.dirtyLineCount(), 1u);
}

TEST(PmPool, ClwbAloneIsNotDurable)
{
    // CLWB is weakly ordered: without a fence the write-back has not
    // necessarily completed (§2.1).
    PmPool pool(1 << 16);
    uint64_t a = pool.mapRegion("r", 64);
    store64(pool, a, 42);
    pool.flush(a, FlushOp::Clwb);
    EXPECT_EQ(loadPersisted64(pool, a), 0u);
    EXPECT_EQ(pool.pendingWritebacks(), 1u);
}

TEST(PmPool, ClwbPlusFenceIsDurable)
{
    PmPool pool(1 << 16);
    uint64_t a = pool.mapRegion("r", 64);
    store64(pool, a, 42);
    pool.flush(a, FlushOp::Clwb);
    pool.fence();
    EXPECT_EQ(loadPersisted64(pool, a), 42u);
    EXPECT_TRUE(pool.isPersisted(a, 8));
    EXPECT_EQ(pool.pendingWritebacks(), 0u);
}

TEST(PmPool, FenceWithoutFlushDoesNothing)
{
    PmPool pool(1 << 16);
    uint64_t a = pool.mapRegion("r", 64);
    store64(pool, a, 42);
    pool.fence();
    EXPECT_EQ(loadPersisted64(pool, a), 0u)
        << "a fence orders flushes; it does not flush";
}

TEST(PmPool, ClflushIsImmediatelyDurable)
{
    // CLFLUSH is ordered with respect to stores (Intel SDM), so no
    // fence is required for durability.
    PmPool pool(1 << 16);
    uint64_t a = pool.mapRegion("r", 64);
    store64(pool, a, 7);
    pool.flush(a, FlushOp::Clflush);
    EXPECT_EQ(loadPersisted64(pool, a), 7u);
}

TEST(PmPool, NonTemporalStoreNeedsOnlyFence)
{
    PmPool pool(1 << 16);
    uint64_t a = pool.mapRegion("r", 64);
    uint64_t v = 99;
    pool.store(a, reinterpret_cast<uint8_t *>(&v), 8,
               /*non_temporal=*/true);
    EXPECT_EQ(load64(pool, a), 99u);
    EXPECT_EQ(loadPersisted64(pool, a), 0u);
    EXPECT_EQ(pool.dirtyLineCount(), 0u)
        << "NT stores bypass the cache";
    pool.fence();
    EXPECT_EQ(loadPersisted64(pool, a), 99u);
}

TEST(PmPool, StoreAfterFlushNeedsAnotherFlush)
{
    PmPool pool(1 << 16);
    uint64_t a = pool.mapRegion("r", 64);
    store64(pool, a, 1);
    pool.flush(a, FlushOp::Clwb);
    store64(pool, a, 2); // re-dirties the line after the snapshot
    pool.fence();
    // Only the snapshot taken at flush time is guaranteed durable.
    EXPECT_EQ(loadPersisted64(pool, a), 1u);
    EXPECT_EQ(pool.dirtyLineCount(), 1u);
    pool.flush(a, FlushOp::Clwb);
    pool.fence();
    EXPECT_EQ(loadPersisted64(pool, a), 2u);
}

TEST(PmPool, RepeatedFlushesCoalescePerLine)
{
    PmPool pool(1 << 16);
    uint64_t a = pool.mapRegion("r", 256);
    for (int i = 0; i < 4; i++) {
        store64(pool, a + i * 8, i);
        pool.flush(a, FlushOp::Clwb);
    }
    EXPECT_EQ(pool.pendingWritebacks(), 1u)
        << "same-line write-backs coalesce";
    pool.fence();
    for (int i = 0; i < 4; i++)
        EXPECT_EQ(loadPersisted64(pool, a + i * 8), (uint64_t)i);
}

TEST(PmPool, FlushOfCleanLineIsRedundant)
{
    PmPool pool(1 << 16);
    uint64_t a = pool.mapRegion("r", 64);
    pool.flush(a, FlushOp::Clwb);
    EXPECT_EQ(pool.stats().redundantFlushes, 1u);
    store64(pool, a, 1);
    pool.flush(a, FlushOp::Clwb);
    EXPECT_EQ(pool.stats().redundantFlushes, 1u);
    pool.flush(a, FlushOp::Clwb); // second flush of a now-clean line
    EXPECT_EQ(pool.stats().redundantFlushes, 2u);
}

TEST(PmPool, MultiLineStoreDirtiesEveryTouchedLine)
{
    PmPool pool(1 << 16);
    uint64_t a = pool.mapRegion("r", 512);
    std::vector<uint8_t> buf(200, 0xAB);
    pool.store(a + 32, buf.data(), buf.size()); // spans 4 lines
    EXPECT_EQ(pool.dirtyLineCount(), 4u);
    for (uint64_t off = 32; off < 232; off += 64)
        pool.flush(a + off, FlushOp::Clwb);
    pool.flush(a + 231, FlushOp::Clwb);
    pool.fence();
    EXPECT_TRUE(pool.isPersisted(a + 32, 200));
}

TEST(PmPool, CrashDiscardsCacheOnlyState)
{
    PmPool pool(1 << 16);
    uint64_t a = pool.mapRegion("r", 128);
    store64(pool, a, 1);
    pool.flush(a, FlushOp::Clwb);
    pool.fence();
    store64(pool, a + 64, 2); // never flushed
    store64(pool, a, 3);      // durable value is still 1
    pool.crash();
    EXPECT_EQ(load64(pool, a), 1u);
    EXPECT_EQ(load64(pool, a + 64), 0u);
    EXPECT_EQ(pool.dirtyLineCount(), 0u);
    EXPECT_EQ(pool.pendingWritebacks(), 0u);
}

TEST(PmPool, CrashDropsPendingWritebacks)
{
    PmPool pool(1 << 16);
    uint64_t a = pool.mapRegion("r", 64);
    store64(pool, a, 5);
    pool.flush(a, FlushOp::Clwb); // flushed but never fenced
    pool.crash();
    EXPECT_EQ(load64(pool, a), 0u)
        << "unfenced CLWB may not reach PM before a crash";
}

TEST(PmPool, EvictionInjectionCanPersistUnflushedData)
{
    // Lemma 2's premise: an unflushed store may still reach PM due
    // to cache pressure. With eviction injection at p=1 every dirty
    // line is written back eagerly.
    PmPool pool(1 << 16, /*evict_chance=*/1.0, /*seed=*/42);
    uint64_t a = pool.mapRegion("r", 64);
    store64(pool, a, 77);
    EXPECT_EQ(loadPersisted64(pool, a), 77u);
    EXPECT_GT(pool.stats().evictions, 0u);
    EXPECT_EQ(pool.dirtyLineCount(), 0u);
}

TEST(PmPool, StatsCountOperations)
{
    PmPool pool(1 << 16);
    uint64_t a = pool.mapRegion("r", 128);
    store64(pool, a, 1);
    store64(pool, a + 64, 2);
    pool.flush(a, FlushOp::Clwb);
    pool.fence();
    const PmPoolStats &s = pool.stats();
    EXPECT_EQ(s.stores, 2u);
    EXPECT_EQ(s.storedBytes, 16u);
    EXPECT_EQ(s.flushes, 1u);
    EXPECT_EQ(s.fences, 1u);
    pool.resetStats();
    EXPECT_EQ(pool.stats().stores, 0u);
}

TEST(PmPool, CapacityIsRoundedAndEnforced)
{
    PmPool pool(100); // rounds up to 128
    EXPECT_EQ(pool.capacity(), 128u);
    pool.mapRegion("a", 64);
    pool.mapRegion("b", 64);
    // The pool is now full; another mapping throws a recoverable,
    // classified resource error (exit code 4 at the CLI boundary).
    try {
        pool.mapRegion("c", 1);
        FAIL() << "mapRegion beyond capacity did not throw";
    } catch (const support::HippoError &e) {
        EXPECT_EQ(e.kind(), support::ErrorKind::Resource);
        EXPECT_EQ(e.exitCode(), 4);
        EXPECT_NE(std::string(e.what()).find("exhausted"),
                  std::string::npos);
    }
    // The failed mapping must not have corrupted the region table.
    EXPECT_NE(pool.findRegion("a"), nullptr);
    EXPECT_EQ(pool.findRegion("c"), nullptr);
}

} // namespace hippo::test
