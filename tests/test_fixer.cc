/**
 * @file
 * Unit tests for the Hippocrates fixer's individual mechanisms:
 * fence-after-flush anchoring, fix reduction, the flush-range helper,
 * clone reuse, the parameterless-call-site −∞ rule, the hoist bound
 * (candidates stop at the function called by I's function), and
 * post-fix verification.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace hippo::test
{

using namespace hippo::ir;
using core::FixKind;
using core::FixerConfig;
using pmcheck::BugKind;

namespace
{

/** Count instructions of a given opcode in a function. */
size_t
countOps(const Function *f, Opcode op)
{
    size_t n = 0;
    for (const auto &bb : f->blocks()) {
        for (const auto &instr : *bb)
            n += instr->op() == op;
    }
    return n;
}

} // namespace

TEST(Fixer, MissingFenceAnchorsAfterExistingFlush)
{
    // Listing 3: store + CLWB, no SFENCE. The fix must be a single
    // fence right after the existing flush.
    auto m = std::make_unique<Module>("listing3");
    IRBuilder b(m.get());
    Function *f = m->addFunction("foo", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    b.setLoc("l3.c", 2);
    Instruction *pm = b.createPmMap("pool", 64);
    b.createStore(b.getInt(1), pm, 8);
    b.setLoc("l3.c", 3);
    Instruction *flush = b.createFlush(pm, FlushKind::Clwb);
    b.setLoc("l3.c", 7);
    b.createDurPoint("crash");
    b.createRet();

    auto res = runPipeline(m.get(), "foo");
    ASSERT_EQ(res.before.bugs.size(), 1u);
    EXPECT_EQ(res.before.bugs[0].kind, BugKind::MissingFence);
    ASSERT_EQ(res.summary.fixes.size(), 1u);
    EXPECT_EQ(res.summary.fixes[0].kind, FixKind::IntraFence);
    EXPECT_EQ(res.summary.fixes[0].anchorInstrId, flush->id());
    EXPECT_EQ(res.summary.flushesInserted, 0u);
    EXPECT_EQ(res.summary.fencesInserted, 1u);
    EXPECT_TRUE(res.after.clean());

    // The fence must sit directly after the flush.
    auto it = f->entry()->iteratorTo(flush);
    ++it;
    EXPECT_EQ((*it)->op(), Opcode::Fence);
}

TEST(Fixer, ReductionMergesSameAnchorBugs)
{
    // The same unflushed store observed at two durability points on
    // the same call path: one fix, not two.
    auto m = std::make_unique<Module>("merge");
    IRBuilder b(m.get());
    Function *f = m->addFunction("foo", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *pm = b.createPmMap("pool", 64);
    b.createStore(b.getInt(1), pm, 8);
    b.createFence(FenceKind::Sfence);
    b.createDurPoint("p0");
    b.createDurPoint("p1");
    b.createRet();

    auto res = runPipeline(m.get(), "foo");
    ASSERT_EQ(res.before.bugs.size(), 1u); // detector dedups too
    EXPECT_EQ(res.summary.fixes.size(), 1u);
    EXPECT_TRUE(res.after.clean());
}

TEST(Fixer, ReductionDisabledStillFixesEverything)
{
    auto m = buildListing5(true);
    FixerConfig cfg;
    cfg.enableReduction = false;
    auto res = runPipeline(m.get(), "foo", cfg);
    EXPECT_TRUE(res.after.clean());
}

TEST(Fixer, MemcpyBugGetsFlushRangeHelper)
{
    // A memcpy of a dynamic length cannot be fixed with a single
    // CLWB; Hippocrates synthesizes @__hippo_flush_range.
    auto m = std::make_unique<Module>("range");
    IRBuilder b(m.get());
    Function *f = m->addFunction("foo", Type::Void);
    Argument *len = f->addParam(Type::Int, "len");
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *pm = b.createPmMap("pool", 4096);
    Instruction *src = b.createAlloca(1024);
    b.createMemcpy(pm, src, len);
    b.createFence(FenceKind::Sfence);
    b.createDurPoint("commit");
    b.createRet();

    pmem::PmPool pool(1 << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(m.get(), &pool, vc);
    machine.run("foo", {900}); // spans 15 cache lines

    auto report = pmcheck::analyze(machine.trace());
    ASSERT_EQ(report.bugs.size(), 1u);
    core::Fixer fixer(m.get());
    fixer.fix(report, machine.trace(), &machine.dynPointsTo());

    Function *helper =
        m->findFunction(core::flushRangeHelperName);
    ASSERT_NE(helper, nullptr);
    EXPECT_GT(countOps(helper, Opcode::Flush), 0u);

    // Verify the repaired program persists the whole range across
    // several lengths, including unaligned ones.
    for (uint64_t n : {1ull, 63ull, 64ull, 65ull, 900ull, 1024ull}) {
        pmem::PmPool p(1 << 20);
        vm::Vm v(m.get(), &p, {});
        v.run("foo", {n});
        EXPECT_TRUE(p.isPersisted(p.findRegion("pool")->base, n))
            << "len " << n;
    }
}

TEST(Fixer, ParameterlessCallSiteGetsMinusInfinity)
{
    // The PM pointer is obtained *inside* the helper (global-style
    // region mapping), and the helper takes no pointer arguments:
    // hoisting must not happen (§4.3's −∞ rule), even though a call
    // site exists on the stack.
    auto m = std::make_unique<Module>("noargs");
    IRBuilder b(m.get());
    Function *writer = m->addFunction("writer", Type::Void);
    b.setInsertPoint(writer->addBlock("entry"));
    Instruction *pm = b.createPmMap("pool", 64);
    b.createStore(b.getInt(1), pm, 8);
    b.createRet();

    Function *f = m->addFunction("foo", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    b.createCall(writer, {});
    b.createFence(FenceKind::Sfence);
    b.createDurPoint("commit");
    b.createRet();

    auto res = runPipeline(m.get(), "foo");
    ASSERT_EQ(res.summary.fixes.size(), 1u);
    EXPECT_NE(res.summary.fixes[0].kind, FixKind::Interprocedural);
    EXPECT_EQ(res.summary.fixes[0].function, "writer");
    EXPECT_TRUE(res.after.clean());
    EXPECT_EQ(m->findFunction("writer_PM"), nullptr);
}

TEST(Fixer, CloneReuseAcrossFixes)
{
    // Two call sites hoisting into the same helper share one clone
    // (the code-bloat mitigation of §6.4).
    auto m = std::make_unique<Module>("reuse");
    IRBuilder b(m.get());
    Function *helper = m->addFunction("helper", Type::Void);
    Argument *hp = helper->addParam(Type::Ptr, "p");
    b.setInsertPoint(helper->addBlock("entry"));
    b.createStore(b.getInt(5), hp, 8);
    b.createRet();

    Function *f = m->addFunction("foo", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    // Two volatile callers and two PM callers: the helper's
    // parameter scores 0 (2 PM − 2 non-PM), each PM call site
    // scores +1, so both PM sites hoist.
    Instruction *vol = b.createAlloca(64);
    Instruction *vol2 = b.createAlloca(64);
    Instruction *pm1 = b.createPmMap("pool1", 64);
    Instruction *pm2 = b.createPmMap("pool2", 64);
    b.createCall(helper, {vol});
    b.createCall(helper, {vol2});
    b.createCall(helper, {pm1});
    b.createCall(helper, {pm2});
    b.createFence(FenceKind::Sfence);
    b.createDurPoint("commit");
    b.createRet();

    auto res = runPipeline(m.get(), "foo");
    EXPECT_EQ(res.summary.interproceduralCount(), 2u);
    EXPECT_EQ(res.summary.functionsCloned, 1u)
        << "one clone shared by both fixes";
    EXPECT_NE(m->findFunction("helper_PM"), nullptr);
    EXPECT_EQ(m->findFunction("helper_PM_2"), nullptr);
    EXPECT_TRUE(res.after.clean());

    // The volatile calls still target the original helper.
    size_t orig_calls = 0, pm_calls = 0;
    for (const auto &bb : f->blocks()) {
        for (const auto &instr : *bb) {
            if (instr->op() != Opcode::Call)
                continue;
            if (instr->callee()->name() == "helper")
                orig_calls++;
            if (instr->callee()->name() == "helper_PM")
                pm_calls++;
        }
    }
    EXPECT_EQ(orig_calls, 2u);
    EXPECT_EQ(pm_calls, 2u);
}

TEST(Fixer, HoistBoundStopsAtFunctionCalledByI)
{
    // I lives in mid(); candidates may not include mid's call site
    // in outer() (which would need an extra fence before I, §4.2.4).
    auto m = std::make_unique<Module>("bound");
    IRBuilder b(m.get());

    Function *leaf = m->addFunction("leaf", Type::Void);
    Argument *lp = leaf->addParam(Type::Ptr, "p");
    b.setInsertPoint(leaf->addBlock("entry"));
    b.createStore(b.getInt(1), lp, 8);
    b.createRet();

    Function *mid = m->addFunction("mid", Type::Void);
    Argument *mp = mid->addParam(Type::Ptr, "p");
    b.setInsertPoint(mid->addBlock("entry"));
    b.createCall(leaf, {mp});
    b.createFence(FenceKind::Sfence);
    b.createDurPoint("in-mid"); // I is here
    b.createRet();

    Function *outer = m->addFunction("outer", Type::Void);
    b.setInsertPoint(outer->addBlock("entry"));
    Instruction *vol = b.createAlloca(64);
    Instruction *pm = b.createPmMap("pool", 64);
    b.createCall(mid, {vol});
    b.createCall(mid, {pm});
    b.createRet();

    auto res = runPipeline(m.get(), "outer");
    for (const auto &fix : res.summary.fixes) {
        if (fix.kind == FixKind::Interprocedural) {
            EXPECT_EQ(fix.function, "mid")
                << "candidates stop at the call site inside I's "
                   "function";
            EXPECT_EQ(fix.hoistLevels, 1);
        }
    }
    EXPECT_TRUE(res.after.clean());
}

TEST(Fixer, NoBugsMeansNoChanges)
{
    auto m = buildListing5(true);
    // Make the program correct first.
    runPipeline(m.get(), "foo");
    size_t instrs = m->instrCount();

    pmem::PmPool pool(1 << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(m.get(), &pool, vc);
    machine.run("foo");
    auto report = pmcheck::analyze(machine.trace());
    ASSERT_TRUE(report.clean());

    core::Fixer fixer(m.get());
    auto summary =
        fixer.fix(report, machine.trace(), &machine.dynPointsTo());
    EXPECT_TRUE(summary.fixes.empty());
    EXPECT_EQ(m->instrCount(), instrs);
}

TEST(Fixer, ModuleVerifiesAfterEveryFixShape)
{
    for (bool with_fence : {true, false}) {
        for (bool hoist : {true, false}) {
            auto m = buildListing5(with_fence);
            FixerConfig cfg;
            cfg.enableHoisting = hoist;
            auto res = runPipeline(m.get(), "foo", cfg);
            EXPECT_TRUE(res.summary.verifierProblems.empty())
                << "fence=" << with_fence << " hoist=" << hoist;
            EXPECT_TRUE(res.after.clean());
        }
    }
}

TEST(Fixer, SummaryCountsAreConsistent)
{
    auto m = buildListing5(false);
    auto res = runPipeline(m.get(), "foo");
    const auto &s = res.summary;
    EXPECT_EQ(s.bugsFixed, res.before.bugs.size());
    EXPECT_EQ(s.intraproceduralCount() + s.interproceduralCount(),
              s.fixes.size());
    uint32_t flushes = 0, fences = 0;
    for (const auto &f : s.fixes) {
        flushes += f.flushesInserted;
        fences += f.fencesInserted;
    }
    EXPECT_EQ(flushes, s.flushesInserted);
    EXPECT_EQ(fences, s.fencesInserted);
    EXPECT_GT(s.irInstrsAfter, s.irInstrsBefore);
}

} // namespace hippo::test
