/**
 * @file
 * Unit tests for the support library: strings, statistics, RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/random.hh"
#include "support/stats.hh"
#include "support/stopwatch.hh"
#include "support/strings.hh"

namespace hippo::test
{

TEST(Strings, SplitKeepsEmptyFields)
{
    auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWhitespaceDropsRuns)
{
    auto parts = splitWhitespace("  foo \t bar\nbaz  ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "foo");
    EXPECT_EQ(parts[1], "bar");
    EXPECT_EQ(parts[2], "baz");
    EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(Strings, TrimBothEnds)
{
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t\n "), "");
    EXPECT_EQ(trim("no-ws"), "no-ws");
}

TEST(Strings, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("hello", "he"));
    EXPECT_FALSE(startsWith("he", "hello"));
    EXPECT_TRUE(endsWith("hello", "lo"));
    EXPECT_FALSE(endsWith("lo", "hello"));
    EXPECT_TRUE(startsWith("x", ""));
    EXPECT_TRUE(endsWith("x", ""));
}

TEST(Strings, FormatProducesPrintfOutput)
{
    EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(format("%05u", 7u), "00007");
    // Long outputs exceed any small-string optimization.
    std::string big = format("%0200d", 1);
    EXPECT_EQ(big.size(), 200u);
}

TEST(Strings, ParseUintDecimalAndHex)
{
    uint64_t v = 0;
    EXPECT_TRUE(parseUint("12345", v));
    EXPECT_EQ(v, 12345u);
    EXPECT_TRUE(parseUint("0xff", v));
    EXPECT_EQ(v, 255u);
    EXPECT_TRUE(parseUint("  8 ", v));
    EXPECT_EQ(v, 8u);
    EXPECT_FALSE(parseUint("", v));
    EXPECT_FALSE(parseUint("0x", v));
    EXPECT_FALSE(parseUint("12a", v));
    EXPECT_FALSE(parseUint("-3", v));
}

TEST(Strings, ParseIntSigns)
{
    int64_t v = 0;
    EXPECT_TRUE(parseInt("-42", v));
    EXPECT_EQ(v, -42);
    EXPECT_TRUE(parseInt("+7", v));
    EXPECT_EQ(v, 7);
    EXPECT_FALSE(parseInt("--1", v));
}

TEST(Strings, FormatBytesUnits)
{
    EXPECT_EQ(formatBytes(512), "512.0 B");
    EXPECT_EQ(formatBytes(2048), "2.0 KB");
    EXPECT_EQ(formatBytes(3u << 20), "3.0 MB");
}

TEST(Stats, MeanAndStddev)
{
    SampleStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, Ci95UsesStudentT)
{
    SampleStats s;
    s.add(10);
    s.add(12);
    // n=2, dof=1: t = 12.706, sd = sqrt(2), ci = t*sd/sqrt(2) = t.
    EXPECT_NEAR(s.ci95(), 12.706, 1e-3);

    SampleStats empty;
    EXPECT_EQ(empty.ci95(), 0);
    empty.add(1);
    EXPECT_EQ(empty.ci95(), 0); // single sample: undefined -> 0
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(123), b(123), c(124);
    bool all_equal = true, any_diff = false;
    for (int i = 0; i < 100; i++) {
        uint64_t va = a.next(), vb = b.next(), vc = c.next();
        all_equal &= va == vb;
        any_diff |= va != vc;
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowStaysInBounds)
{
    Rng r(7);
    for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; i++)
            EXPECT_LT(r.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowRoughlyUniform)
{
    Rng r(99);
    int counts[10] = {};
    const int n = 100000;
    for (int i = 0; i < n; i++)
        counts[r.nextBelow(10)]++;
    for (int c : counts) {
        EXPECT_GT(c, n / 10 - n / 50);
        EXPECT_LT(c, n / 10 + n / 50);
    }
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r(5);
    double sum = 0;
    for (int i = 0; i < 10000; i++) {
        double v = r.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NextRangeInclusive)
{
    Rng r(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 200; i++)
        seen.insert(r.nextRange(5, 7));
    EXPECT_EQ(seen, (std::set<uint64_t>{5, 6, 7}));
}

TEST(Stopwatch, MonotonicNonNegative)
{
    Stopwatch w;
    double a = w.elapsedSeconds();
    double b = w.elapsedSeconds();
    EXPECT_GE(a, 0);
    EXPECT_GE(b, a);
    w.reset();
    EXPECT_LT(w.elapsedSeconds(), 1.0);
}

TEST(Stopwatch, RssProbesReturnPlausibleValues)
{
    EXPECT_GT(peakRssBytes(), 1u << 20); // at least a megabyte
    EXPECT_GT(currentRssBytes(), 1u << 20);
}

} // namespace hippo::test
