/**
 * @file
 * Property-based tests: the executable analogue of the paper's
 * safety theorems. A generator produces random PM programs (random
 * mixes of direct stores, helper calls with PM/volatile pointers,
 * memcpys, flushes, fences, durability points, and prints); for
 * every program we check that Hippocrates
 *
 *   (1) leaves the module structurally valid,
 *   (2) eliminates every detected durability bug,
 *   (3) does no harm: the repaired program produces exactly the
 *       same outputs (also under random cache-eviction injection),
 *   (4) only *adds* instructions: every original instruction
 *       survives with its opcode, and call sites only ever get
 *       redirected to persistent clones of their original callees.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/flush_optimizer.hh"
#include "ir/parser.hh"
#include "ir/printer.hh"
#include "pmcheck/crash_explorer.hh"
#include "support/random.hh"
#include "test_util.hh"

namespace hippo::test
{

using namespace hippo::ir;

namespace
{

/** Snapshot of (function -> id -> opcode/callee) for property (4). */
struct Snapshot
{
    std::map<std::string, std::map<uint32_t, Opcode>> ops;
    std::map<std::string, std::map<uint32_t, std::string>> callees;
};

Snapshot
takeSnapshot(const Module &m)
{
    Snapshot s;
    for (const auto &f : m.functions()) {
        for (const auto &bb : f->blocks()) {
            for (const auto &instr : *bb) {
                s.ops[f->name()][instr->id()] = instr->op();
                if (instr->callee())
                    s.callees[f->name()][instr->id()] =
                        instr->callee()->name();
            }
        }
    }
    return s;
}

/** Build a random PM program. Deterministic per seed. */
std::unique_ptr<Module>
generateProgram(uint64_t seed)
{
    Rng rng(seed);
    auto m = std::make_unique<Module>("random-" +
                                      std::to_string(seed));
    IRBuilder b(m.get());

    // A few leaf helpers writing through their pointer parameter,
    // plus wrapper helpers one frame above them (so interprocedural
    // fixes at hoist level 2 arise in random programs too).
    std::vector<Function *> helpers;
    uint64_t nhelpers = 1 + rng.nextBelow(3);
    for (uint64_t h = 0; h < nhelpers; h++) {
        Function *f = m->addFunction(
            "helper" + std::to_string(h), Type::Void);
        Argument *p = f->addParam(Type::Ptr, "p");
        Argument *v = f->addParam(Type::Int, "v");
        b.setInsertPoint(f->addBlock("entry"));
        b.setLoc("rand.c", (int)(100 + h));
        uint64_t writes = 1 + rng.nextBelow(2);
        for (uint64_t w = 0; w < writes; w++) {
            Instruction *gp =
                b.createGep(p, b.getInt(rng.nextBelow(4) * 8));
            b.createStore(v, gp, 8);
            if (rng.chance(0.3))
                b.createFlush(gp, FlushKind::Clwb);
        }
        b.createRet();
        helpers.push_back(f);
    }
    uint64_t nleaves = helpers.size();
    for (uint64_t h = 0; h < nleaves; h++) {
        if (!rng.chance(0.5))
            continue;
        Function *f = m->addFunction(
            "wrapper" + std::to_string(h), Type::Void);
        Argument *p = f->addParam(Type::Ptr, "p");
        Argument *v = f->addParam(Type::Int, "v");
        b.setInsertPoint(f->addBlock("entry"));
        b.setLoc("rand.c", (int)(150 + h));
        b.createCall(helpers[h],
                     {b.createGep(p, b.getInt(rng.nextBelow(3) * 8)),
                      b.createAdd(v, b.getInt(1))});
        b.createRet();
        helpers.push_back(f);
    }

    Function *main_fn = m->addFunction("main", Type::Void);
    b.setInsertPoint(main_fn->addBlock("entry"));
    b.setLoc("rand.c", 1);
    Instruction *pm1 = b.createPmMap("rp1", 512);
    Instruction *pm2 = b.createPmMap("rp2", 512);
    Instruction *vol = b.createAlloca(256);

    auto random_ptr = [&]() -> Instruction * {
        uint64_t off = rng.nextBelow(16) * 8;
        switch (rng.nextBelow(3)) {
          case 0:
            return b.createGep(pm1, b.getInt(off));
          case 1:
            return b.createGep(pm2, b.getInt(off));
          default:
            return b.createGep(vol, b.getInt(off % 256));
        }
    };

    uint64_t actions = 8 + rng.nextBelow(20);
    int loop_count = 0;
    for (uint64_t i = 0; i < actions; i++) {
        b.setLoc("rand.c", (int)(10 + i));
        switch (rng.nextBelow(9)) {
          case 0:
          case 1: { // direct store, sometimes flushed/fenced
            Instruction *p = random_ptr();
            b.createStore(b.getInt(rng.nextBelow(1000)), p, 8);
            if (rng.chance(0.5))
                b.createFlush(p, rng.chance(0.2)
                                     ? FlushKind::Clflush
                                     : FlushKind::Clwb);
            if (rng.chance(0.4))
                b.createFence(FenceKind::Sfence);
            break;
          }
          case 2: { // helper call
            Function *h = helpers[rng.nextBelow(helpers.size())];
            b.createCall(
                h, {random_ptr(), b.getInt(rng.nextBelow(100))});
            break;
          }
          case 3: { // memcpy volatile -> PM or PM -> volatile
            uint64_t len = 8 * (1 + rng.nextBelow(12));
            if (rng.chance(0.6)) {
                b.createMemcpy(b.createGep(pm1, b.getInt(0)), vol,
                               b.getInt(len));
            } else {
                b.createMemcpy(vol, b.createGep(pm1, b.getInt(0)),
                               b.getInt(len));
            }
            break;
          }
          case 4: // stray flush
            b.createFlush(random_ptr(), FlushKind::Clwb);
            break;
          case 5: // fence
            b.createFence(rng.chance(0.2) ? FenceKind::Mfence
                                          : FenceKind::Sfence);
            break;
          case 6: // durability point
            b.createDurPoint("dp" + std::to_string(i));
            break;
          case 7: { // bounded store loop (multi-block control flow)
            int n = ++loop_count;
            BasicBlock *loop = main_fn->addBlock(
                "loop" + std::to_string(n));
            BasicBlock *body = main_fn->addBlock(
                "body" + std::to_string(n));
            BasicBlock *cont = main_fn->addBlock(
                "cont" + std::to_string(n));
            Instruction *iv = b.createAlloca(8);
            Instruction *base = b.createGep(
                rng.chance(0.5) ? pm1 : pm2,
                b.getInt(rng.nextBelow(56) * 8));
            uint64_t trips = 2 + rng.nextBelow(4);
            b.createStore(b.getInt(0), iv, 8);
            b.createBr(loop);
            b.setInsertPoint(loop);
            Instruction *iv_val = b.createLoad(iv, 8);
            b.createCondBr(b.createCmp(CmpPred::Ult, iv_val,
                                       b.getInt(trips)),
                           body, cont);
            b.setInsertPoint(body);
            b.createStore(
                b.createAdd(iv_val, b.getInt(7)),
                b.createGep(base, b.createMul(iv_val, b.getInt(8))),
                8);
            b.createStore(b.createAdd(iv_val, b.getInt(1)), iv, 8);
            b.createBr(loop);
            b.setInsertPoint(cont);
            break;
          }
          default: { // observable output
            Instruction *p = random_ptr();
            b.createPrint("o" + std::to_string(i),
                          b.createLoad(p, 8));
            break;
          }
        }
    }
    // Deterministic tail: make everything observable.
    b.setLoc("rand.c", 99);
    b.createFence(FenceKind::Sfence);
    b.createDurPoint("final");
    for (int i = 0; i < 4; i++) {
        b.createPrint("tail" + std::to_string(i),
                      b.createLoad(b.createGep(pm1, b.getInt(i * 8)),
                                   8));
    }
    b.createRet();
    verifyOrDie(*m);
    return m;
}

std::vector<vm::ProgramOutput>
runWithEviction(ir::Module *m, double evict_chance, uint64_t seed)
{
    pmem::PmPool pool(1 << 20, evict_chance, seed);
    vm::Vm machine(m, &pool, {});
    machine.run("main");
    return machine.outputs();
}

} // namespace

class DoNoHarm : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(DoNoHarm, RandomProgramRepairIsSafeAndComplete)
{
    uint64_t seed = GetParam();
    auto m = generateProgram(seed);
    Snapshot before = takeSnapshot(*m);
    auto baseline_outputs = runWithEviction(m.get(), 0, 1);

    auto res = runPipeline(m.get(), "main");

    // (1) structurally valid
    EXPECT_TRUE(res.summary.verifierProblems.empty())
        << res.summary.verifierProblems.front();

    // (2) complete: re-check is clean
    EXPECT_TRUE(res.after.clean())
        << "seed " << seed << "\n" << res.after.writeText();

    // (3) do no harm: identical outputs, with and without eviction
    EXPECT_EQ(res.outputsBefore, res.outputsAfter) << "seed " << seed;
    EXPECT_EQ(runWithEviction(m.get(), 0, 1), baseline_outputs);
    EXPECT_EQ(runWithEviction(m.get(), 0.5, seed),
              baseline_outputs)
        << "eviction injection must not change repaired behavior";

    // (4) additive only: every original instruction survives with
    // its opcode; callees only move to persistent clones.
    Snapshot after = takeSnapshot(*m);
    for (const auto &[fn, ids] : before.ops) {
        for (const auto &[id, op] : ids) {
            auto fit = after.ops.find(fn);
            ASSERT_NE(fit, after.ops.end()) << fn;
            auto iit = fit->second.find(id);
            ASSERT_NE(iit, fit->second.end())
                << fn << "#" << id << " was removed";
            EXPECT_EQ(iit->second, op)
                << fn << "#" << id << " changed opcode";
        }
    }
    for (const auto &[fn, ids] : before.callees) {
        for (const auto &[id, callee] : ids) {
            const std::string &now = after.callees[fn][id];
            if (now != callee) {
                EXPECT_EQ(now.rfind(callee + "_PM", 0), 0u)
                    << fn << "#" << id << ": " << callee << " -> "
                    << now;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DoNoHarm,
                         ::testing::Range<uint64_t>(1, 33));

class DoNoHarmIntra : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(DoNoHarmIntra, HoldsWithHoistingDisabled)
{
    uint64_t seed = GetParam();
    auto m = generateProgram(seed);
    core::FixerConfig cfg;
    cfg.enableHoisting = false;
    auto res = runPipeline(m.get(), "main", cfg);
    EXPECT_TRUE(res.after.clean()) << "seed " << seed;
    EXPECT_EQ(res.outputsBefore, res.outputsAfter);
    EXPECT_EQ(res.summary.interproceduralCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DoNoHarmIntra,
                         ::testing::Range<uint64_t>(1, 17));

class DoNoHarmTraceAa : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(DoNoHarmTraceAa, HoldsUnderTraceAa)
{
    uint64_t seed = GetParam();
    auto m = generateProgram(seed);
    core::FixerConfig cfg;
    cfg.aaMode = analysis::AaMode::TraceAA;
    auto res = runPipeline(m.get(), "main", cfg);
    EXPECT_TRUE(res.after.clean()) << "seed " << seed;
    EXPECT_EQ(res.outputsBefore, res.outputsAfter);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DoNoHarmTraceAa,
                         ::testing::Range<uint64_t>(1, 17));

TEST(DoNoHarm, RepairsPersistMoreAndChangeNoMemory)
{
    // For several random programs: the repaired program must leave
    // exactly the same *contents* in PM (do no harm on program
    // state) while having strictly no fewer bytes durable at exit
    // (fixes only add durability). Both facts follow from fixes
    // being pure flush/fence/clone additions (Lemmas 1-2).
    for (uint64_t seed = 1; seed <= 12; seed++) {
        auto original = generateProgram(seed);
        auto repaired = generateProgram(seed);
        runPipeline(repaired.get(), "main");

        struct EndState
        {
            std::vector<uint8_t> cache;
            size_t persistedBytes = 0;
        };
        auto run_to_end = [](ir::Module *m) {
            pmem::PmPool pool(1 << 20);
            vm::Vm machine(m, &pool, {});
            machine.run("main");
            EndState s;
            s.cache.resize(1024);
            pool.load(pool.findRegion("rp1")->base, s.cache.data(),
                      512);
            pool.load(pool.findRegion("rp2")->base,
                      s.cache.data() + 512, 512);
            for (uint64_t a = 0; a < 1024; a++) {
                uint64_t addr =
                    (a < 512 ? pool.findRegion("rp1")->base
                             : pool.findRegion("rp2")->base - 512) +
                    a;
                s.persistedBytes += pool.isPersisted(addr, 1);
            }
            return s;
        };

        EndState orig = run_to_end(original.get());
        EndState rep = run_to_end(repaired.get());
        EXPECT_EQ(rep.cache, orig.cache)
            << "seed " << seed
            << ": repairs must not change memory contents";
        EXPECT_GE(rep.persistedBytes, orig.persistedBytes)
            << "seed " << seed
            << ": repairs may only add durability";
    }
}

namespace
{

/** Static flush count over a whole module. */
uint64_t staticFlushes(const Module &m)
{
    uint64_t n = 0;
    for (const auto &f : m.functions())
        for (const auto &bb : f->blocks())
            for (const auto &in : *bb)
                n += in->op() == Opcode::Flush;
    return n;
}

} // namespace

/**
 * Differential do-no-harm for the flush/fence optimizer: for random
 * repaired programs, the optimized module must (a) never contain
 * more flushes than the unoptimized one, and (b) be crash-for-crash
 * recovery-equivalent under exhaustive exploration, across both
 * exploration engines and serial/parallel scheduling.
 */
class OptimizerDoNoHarm : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(OptimizerDoNoHarm, OptimizedModuleExploresIdentically)
{
    const uint64_t seed = GetParam();
    std::unique_ptr<Module> m = generateProgram(seed);
    runPipeline(m.get(), "main");

    // Clone the repaired module through the textual round-trip so
    // the optimizer cannot share state with the baseline.
    std::string err;
    std::unique_ptr<Module> opt = ir::parseModule(ir::moduleToString(*m), &err);
    ASSERT_NE(opt, nullptr) << "seed " << seed << ": " << err;

    core::optimizeFlushes(opt.get());
    EXPECT_LE(staticFlushes(*opt), staticFlushes(*m))
        << "seed " << seed << ": optimizer may only remove flushes";

    const struct
    {
        const char *name;
        pmcheck::ExploreEngine engine;
        int jobs;
    } legs[] = {
        {"legacy/1", pmcheck::ExploreEngine::Legacy, 1},
        {"legacy/4", pmcheck::ExploreEngine::Legacy, 4},
        {"snapshot/1", pmcheck::ExploreEngine::Snapshot, 1},
        {"snapshot/4", pmcheck::ExploreEngine::Snapshot, 4},
    };
    for (const auto &leg : legs) {
        pmcheck::CrashExplorerConfig cc;
        cc.entry = "main";
        cc.recovery = "main";
        cc.engine = leg.engine;
        cc.jobs = leg.jobs;
        auto naive = pmcheck::exploreCrashes(m.get(), cc);
        auto tuned = pmcheck::exploreCrashes(opt.get(), cc);
        EXPECT_EQ(pmcheck::recoveryDigest(naive), pmcheck::recoveryDigest(tuned))
            << "seed " << seed << " leg " << leg.name
            << ": optimization changed recovery behaviour";
        EXPECT_EQ(naive.cleanRunRecovered, tuned.cleanRunRecovered)
            << "seed " << seed << " leg " << leg.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds,
                         OptimizerDoNoHarm,
                         ::testing::Range<uint64_t>(1, 14));

} // namespace hippo::test
