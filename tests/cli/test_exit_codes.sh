#!/bin/sh
# CLI contract test: hippoc's exit codes are part of its interface
# (documented in README.md) and scripts key off them:
#   0 success (no bugs / all fixed)   2 usage error
#   1 bugs found or left unfixed      3 input error
#   4 resource error                  5 internal error
# Usage: test_exit_codes.sh <hippoc> <source-dir>
set -u

HIPPOC=$1
SRC=$2
TMP=${TMPDIR:-/tmp}/hippoc_exit_codes.$$
mkdir -p "$TMP"
trap 'rm -rf "$TMP"' EXIT

fails=0
expect() {
    want=$1
    desc=$2
    shift 2
    "$@" >"$TMP/out" 2>"$TMP/err"
    got=$?
    if [ "$got" -ne "$want" ]; then
        echo "FAIL: $desc: expected exit $want, got $got" >&2
        sed 's/^/  | /' "$TMP/err" >&2
        fails=$((fails + 1))
    else
        echo "ok: $desc (exit $got)"
    fi
}

# 0 — fixing the counter example succeeds.
expect 0 "fix succeeds" \
    "$HIPPOC" "$SRC/examples/counter.pmir" -o "$TMP/fixed.pmir"

# 0 — chaos verification of the repaired module still succeeds.
expect 0 "chaos pipeline succeeds" \
    "$HIPPOC" --chaos 1 --torn-chance 0.5 --step-budget 2000000 \
    "$SRC/examples/counter.pmir" -o "$TMP/fixed_chaos.pmir"

# 1 — check-only mode reports the counter example's bugs.
expect 1 "check-only finds bugs" \
    "$HIPPOC" --check-only "$SRC/examples/counter.pmir"

# 2 — usage errors.
expect 2 "no inputs" "$HIPPOC"
expect 2 "unknown flag" "$HIPPOC" --frobnicate x.pmir

# 3 — input errors: missing file, then every bad-corpus file.
expect 3 "missing file" "$HIPPOC" "$TMP/does_not_exist.pmir"
for f in "$SRC"/tests/corpus/bad/*.pmir; do
    expect 3 "bad corpus: $(basename "$f")" "$HIPPOC" "$f"
done

# 4 — resource error: output path in a nonexistent directory.
expect 4 "unwritable output" \
    "$HIPPOC" "$SRC/examples/counter.pmir" \
    -o "$TMP/no/such/dir/out.pmir"

if [ "$fails" -ne 0 ]; then
    echo "$fails exit-code check(s) failed" >&2
    exit 1
fi
echo "all exit-code checks passed"
