/**
 * @file
 * Tests for the snapshot replay engine (DESIGN.md "Snapshot replay
 * engine"): PmPool snapshot/restore round-trips, copy-on-write
 * isolation between concurrently running forks, byte-identical
 * ExplorationResults between the legacy per-replay engine and the
 * snapshot engine in both eviction modes and at several jobs
 * settings, and the deterministic steps-saved accounting the
 * bench gate relies on. Runs under TSAN in CI alongside
 * test_parallel.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "apps/bugsuite.hh"
#include "apps/pclht.hh"
#include "apps/pmlog.hh"
#include "core/fixer.hh"
#include "pmcheck/crash_explorer.hh"
#include "pmem/pm_pool.hh"
#include "support/metrics.hh"
#include "support/thread_pool.hh"
#include "test_util.hh"

namespace hippo::test
{

using pmcheck::CrashExplorerConfig;
using pmcheck::ExplorationResult;
using pmcheck::ExploreEngine;
using pmcheck::exploreCrashes;
using pmem::PmPool;

namespace
{

/** Store @p value at @p addr, CLWB it, and fence. */
void
putU64(PmPool &pool, uint64_t addr, uint64_t value)
{
    pool.store(addr, reinterpret_cast<uint8_t *>(&value), 8);
    pool.flush(addr, pmem::FlushOp::Clwb);
    pool.fence();
}

uint64_t
getU64(const PmPool &pool, uint64_t addr)
{
    uint64_t v = 0;
    pool.load(addr, reinterpret_cast<uint8_t *>(&v), 8);
    return v;
}

uint64_t
getPersistedU64(const PmPool &pool, uint64_t addr)
{
    uint64_t v = 0;
    pool.loadPersisted(addr, reinterpret_cast<uint8_t *>(&v), 8);
    return v;
}

/** The deterministic (comparable) metric leaves as a flat map. */
std::map<std::string, double>
metricSnapshot()
{
    std::map<std::string, double> out;
    for (const auto &[k, v] :
         support::MetricsRegistry::global().deterministicSnapshot())
        out[k] = v;
    return out;
}

/** True for histogram percentile leaves (`.p50`/`.p95`/`.p99`):
 *  order statistics, not additive — a repeated identical workload
 *  leaves them unchanged, so deltas are meaningless. */
bool
isPercentileLeaf(const std::string &k)
{
    auto ends = [&](const char *suffix) {
        size_t n = std::strlen(suffix);
        return k.size() >= n && k.compare(k.size() - n, n, suffix) == 0;
    };
    return ends(".p50") || ends(".p95") || ends(".p99");
}

/** Leafwise delta of two metric snapshots (missing key = 0),
 *  restricted to the additive leaves. */
std::map<std::string, double>
metricDelta(const std::map<std::string, double> &before,
            const std::map<std::string, double> &after)
{
    std::map<std::string, double> out;
    for (const auto &[k, v] : after) {
        if (isPercentileLeaf(k))
            continue;
        auto it = before.find(k);
        double d = v - (it == before.end() ? 0.0 : it->second);
        if (d != 0)
            out[k] = d;
    }
    return out;
}

} // namespace

TEST(PoolSnapshot, RestoreRoundTripsFullState)
{
    PmPool pool(1 << 20);
    uint64_t base = pool.mapRegion("r", 4 << 10);
    putU64(pool, base, 111);            // persisted
    uint64_t two = 222;
    pool.store(base + 64, reinterpret_cast<uint8_t *>(&two), 8);
    pool.flush(base + 64, pmem::FlushOp::Clwb); // pending, unfenced
    uint64_t three = 333;
    pool.store(base + 128, reinterpret_cast<uint8_t *>(&three), 8);
    // line base+128 left dirty

    PmPool::Snapshot snap = pool.snapshot();
    uint64_t dirty_at_snap = pool.dirtyLineCount();
    uint64_t pending_at_snap = pool.pendingWritebacks();

    // Diverge: overwrite everything and fence.
    for (uint64_t off = 0; off < 256; off += 64)
        putU64(pool, base + off, 999);
    pool.mapRegion("r2", 4 << 10);
    ASSERT_EQ(getU64(pool, base), 999u);

    pool.restoreFrom(snap);
    EXPECT_EQ(getU64(pool, base), 111u);
    EXPECT_EQ(getU64(pool, base + 64), 222u);
    EXPECT_EQ(getU64(pool, base + 128), 333u);
    EXPECT_EQ(getPersistedU64(pool, base), 111u);
    EXPECT_EQ(getPersistedU64(pool, base + 64), 0u);
    EXPECT_EQ(getPersistedU64(pool, base + 128), 0u);
    EXPECT_EQ(pool.dirtyLineCount(), dirty_at_snap);
    EXPECT_EQ(pool.pendingWritebacks(), pending_at_snap);
    EXPECT_EQ(pool.findRegion("r2"), nullptr);

    // The restored line states behave: the pending write-back drains
    // at the next fence, the dirty line still needs a flush.
    pool.fence();
    EXPECT_EQ(getPersistedU64(pool, base + 64), 222u);
    EXPECT_EQ(getPersistedU64(pool, base + 128), 0u);
    EXPECT_FALSE(pool.isPersisted(base + 128, 8));

    // Crash on the restored pool: only persisted data survives.
    pool.crash();
    EXPECT_EQ(getU64(pool, base), 111u);
    EXPECT_EQ(getU64(pool, base + 64), 222u);
    EXPECT_EQ(getU64(pool, base + 128), 0u);
    EXPECT_EQ(pool.dirtyLineCount(), 0u);
}

TEST(PoolSnapshot, RestorePreservesEvictionRngSequence)
{
    // Two pools fed identical op streams from the same seed must
    // evict identically — including when one of them detours
    // through snapshot()/restoreFrom() in the middle.
    auto run_ops = [](PmPool &pool, uint64_t base, int n) {
        for (int i = 0; i < n; i++) {
            uint64_t v = 1000 + i;
            pool.store(base + (i % 64) * 64,
                       reinterpret_cast<uint8_t *>(&v), 8);
        }
    };
    PmPool a(1 << 20, 0.5, 7);
    PmPool b(1 << 20, 0.5, 7);
    uint64_t ba = a.mapRegion("r", 8 << 10);
    uint64_t bb = b.mapRegion("r", 8 << 10);
    run_ops(a, ba, 100);
    run_ops(b, bb, 100);

    PmPool::Snapshot snap = b.snapshot();
    run_ops(b, bb, 50);     // divergent detour
    b.restoreFrom(snap);

    run_ops(a, ba, 200);
    run_ops(b, bb, 200);
    EXPECT_EQ(a.stats().evictions, b.stats().evictions);
    EXPECT_GT(a.stats().evictions, 0u);
    for (uint64_t off = 0; off < (8u << 10); off += 8) {
        ASSERT_EQ(getPersistedU64(a, ba + off),
                  getPersistedU64(b, bb + off))
            << "offset " << off;
    }
}

TEST(PoolSnapshot, ConcurrentForksAreIsolated)
{
    PmPool master(1 << 20);
    uint64_t base = master.mapRegion("shared", 64 << 10);
    for (uint64_t i = 0; i < 16; i++)
        putU64(master, base + i * 64, 0xABC0 + i);
    PmPool::Snapshot snap = master.snapshot();

    // Every fork mutates the same lines with its own pattern while
    // the others run; COW pages keep them (and the master) isolated.
    constexpr unsigned forks = 8;
    std::vector<uint8_t> ok(forks, 0);
    support::ThreadPool tp(4);
    tp.parallelForEach(0, forks, [&](uint64_t f) {
        PmPool pool(snap);
        for (uint64_t i = 0; i < 16; i++)
            putU64(pool, base + i * 64, f * 1000 + i);
        pool.crash();
        bool good = true;
        for (uint64_t i = 0; i < 16; i++)
            good &= getU64(pool, base + i * 64) == f * 1000 + i;
        ok[f] = good;
    });
    for (unsigned f = 0; f < forks; f++)
        EXPECT_TRUE(ok[f]) << "fork " << f;
    for (uint64_t i = 0; i < 16; i++)
        EXPECT_EQ(getU64(master, base + i * 64), 0xABC0 + i);
    EXPECT_GE(master.stats().snapshots, 1u);
}

namespace
{

/** Legacy-vs-snapshot equivalence over jobs and eviction modes. */
void
expectEngineEquivalence(ir::Module *m, CrashExplorerConfig cfg)
{
    for (double evict : {0.0, 0.01}) {
        cfg.evictChance = evict;
        cfg.engine = ExploreEngine::Legacy;
        cfg.jobs = 1;
        ExplorationResult legacy = exploreCrashes(m, cfg);
        cfg.engine = ExploreEngine::Snapshot;
        for (unsigned jobs : {1u, 4u}) {
            cfg.jobs = jobs;
            EXPECT_EQ(legacy, exploreCrashes(m, cfg))
                << "evict=" << evict << " jobs=" << jobs;
        }
    }
}

} // namespace

TEST(SnapshotEngine, MatchesLegacyOnFixedLog)
{
    apps::PmlogConfig lc;
    lc.seedBugs = false;
    lc.capacity = 64 << 10;
    auto m = apps::buildPmlog(lc);

    CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {8};
    xc.recovery = "log_walk";
    xc.stepStride = 23;
    expectEngineEquivalence(m.get(), xc);
}

TEST(SnapshotEngine, MatchesLegacyOnBuggyLog)
{
    auto m = apps::buildPmlog({});
    CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {8};
    xc.recovery = "log_walk";
    xc.stepStride = 17;
    expectEngineEquivalence(m.get(), xc);
}

TEST(SnapshotEngine, MatchesLegacyOnRepairedPclht)
{
    auto repaired = apps::buildPclht({});
    runPipelineWithArg(repaired.get(), "clht_example", 12);

    CrashExplorerConfig xc;
    xc.entry = "clht_example";
    xc.entryArgs = {12};
    xc.recovery = "clht_recover";
    expectEngineEquivalence(repaired.get(), xc);
}

TEST(SnapshotEngine, MatchesLegacyAcrossBugsuiteCases)
{
    // The PMDK reproducers have no dedicated recovery entry; re-run
    // the reproducer itself against the surviving pool. That is a
    // legitimate recovery program for equivalence purposes and walks
    // the engines through the suite's full op-mix (NT stores,
    // CLFLUSH variants, memcpy/memset, region remaps).
    for (const apps::BugCase &c : apps::pmdkBugCases()) {
        for (bool dev_fixed : {false, true}) {
            auto m = c.build(dev_fixed);
            CrashExplorerConfig xc;
            xc.entry = c.entry;
            xc.recovery = c.entry;
            xc.stepStride = 13;
            xc.maxCrashes = 64;
            for (double evict : {0.0, 0.01}) {
                xc.evictChance = evict;
                xc.jobs = 1;
                xc.engine = ExploreEngine::Legacy;
                ExplorationResult legacy = exploreCrashes(m.get(), xc);
                xc.engine = ExploreEngine::Snapshot;
                xc.jobs = 4;
                EXPECT_EQ(legacy, exploreCrashes(m.get(), xc))
                    << c.id << " dev_fixed=" << dev_fixed
                    << " evict=" << evict;
            }
        }
    }
}

TEST(SnapshotEngine, OpLogOverflowFallsBackToLegacyResult)
{
    apps::PmlogConfig lc;
    lc.seedBugs = false;
    auto m = apps::buildPmlog(lc);

    CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {8};
    xc.recovery = "log_walk";
    xc.evictChance = 0.05;
    xc.engine = ExploreEngine::Legacy;
    ExplorationResult legacy = exploreCrashes(m.get(), xc);

    xc.engine = ExploreEngine::Snapshot;
    xc.opLogMaxBytes = 64; // force overflow
    auto before = metricSnapshot();
    EXPECT_EQ(legacy, exploreCrashes(m.get(), xc));
    auto delta = metricDelta(before, metricSnapshot());
    EXPECT_EQ(delta["explorer.oplog.overflows"], 1.0);
    EXPECT_EQ(delta["explorer.engine.legacy"], 1.0);
}

TEST(SnapshotEngine, StepsSavedMatchesLegacyStepsExecuted)
{
    // The bench gate's accounting identity: the snapshot engine's
    // steps_saved counter equals the entry steps the legacy engine
    // actually executes for the same plan, and the snapshot engine
    // executes none.
    apps::PmlogConfig lc;
    lc.seedBugs = false;
    auto m = apps::buildPmlog(lc);

    CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {12};
    xc.recovery = "log_walk";
    xc.stepStride = 31;
    xc.jobs = 1;

    xc.engine = ExploreEngine::Legacy;
    auto s0 = metricSnapshot();
    exploreCrashes(m.get(), xc);
    auto legacy = metricDelta(s0, metricSnapshot());

    xc.engine = ExploreEngine::Snapshot;
    auto s1 = metricSnapshot();
    exploreCrashes(m.get(), xc);
    auto snap = metricDelta(s1, metricSnapshot());

    EXPECT_GT(legacy["explorer.replay.steps_executed"], 0.0);
    EXPECT_EQ(snap["explorer.replay.steps_saved"],
              legacy["explorer.replay.steps_executed"]);
    EXPECT_EQ(snap["explorer.replay.steps_executed"], 0.0);
    EXPECT_EQ(snap["explorer.recovery.steps"],
              legacy["explorer.recovery.steps"]);
    EXPECT_GT(snap["explorer.snapshot.count"], 0.0);
}

TEST(SnapshotEngine, MetricsDeterministicAcrossJobs)
{
    apps::PmlogConfig lc;
    lc.seedBugs = false;
    auto m = apps::buildPmlog(lc);

    CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {10};
    xc.recovery = "log_walk";
    xc.stepStride = 19;

    xc.jobs = 1;
    auto s0 = metricSnapshot();
    ExplorationResult serial = exploreCrashes(m.get(), xc);
    auto d1 = metricDelta(s0, metricSnapshot());

    xc.jobs = 4;
    auto s1 = metricSnapshot();
    ExplorationResult parallel = exploreCrashes(m.get(), xc);
    auto d4 = metricDelta(s1, metricSnapshot());

    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(d1, d4);
}

TEST(SnapshotEngine, FixerVerifyFixedUsesFastPath)
{
    auto m = apps::buildPmlog({});
    trace::Trace tr;
    pmcheck::Report report;
    vm::DynPointsTo dyn;
    {
        pmem::PmPool pool(16u << 20);
        vm::VmConfig vc;
        vc.traceEnabled = true;
        vm::Vm machine(m.get(), &pool, vc);
        machine.run("log_example", {8});
        tr = machine.trace();
        report = pmcheck::analyze(tr);
        dyn = machine.dynPointsTo();
    }
    core::Fixer fixer(m.get(), {});
    fixer.fix(report, tr, &dyn);

    CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {8};
    xc.recovery = "log_walk";
    xc.jobs = 1;

    auto before = metricSnapshot();
    ExplorationResult res = fixer.verifyFixed(xc);
    auto delta = metricDelta(before, metricSnapshot());

    // The repaired log recovers every committed entry, and the
    // verification rode the snapshot engine (saved steps, executed
    // no entry replays).
    EXPECT_TRUE(res.durPointRecoveryNonDecreasing());
    for (uint64_t i = 0; i < res.outcomes.size(); i++)
        EXPECT_EQ(res.outcomes[i].recovered, i);
    EXPECT_EQ(delta["fixer.verify.runs"], 1.0);
    EXPECT_EQ(delta["fixer.verify.crash_points"],
              (double)res.outcomes.size());
    EXPECT_GT(delta["explorer.replay.steps_saved"], 0.0);
    EXPECT_EQ(delta["explorer.replay.steps_executed"], 0.0);
}

} // namespace hippo::test
