/**
 * @file
 * Thread model & interleaving-bounded exploration tests (DESIGN.md
 * "Thread model & interleaving-bounded exploration"): the racekv
 * publisher/consumer app seeds cross-thread durability bugs; the
 * explorer must find them at preemption bound 2, the fixer must
 * repair them with a CrossPublish fix, re-verification over the same
 * bounded schedule set must come back clean, and the whole
 * exploration must digest byte-identically across jobs settings, VM
 * engines, and shard counts. Schedule plans the watchdog cuts short
 * degrade to unverified outcomes — never a crash. Also the
 * wall-clock determinism contract: a `timeBudgetMs` verdict is
 * always replayed under the deterministic step cap, so recovery
 * digests and comparable explorer aggregates never depend on host
 * speed.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/racekv.hh"
#include "ir/parser.hh"
#include "pmcheck/crash_explorer.hh"
#include "pmcheck/detector.hh"
#include "shard/shard.hh"
#include "support/metrics.hh"
#include "test_util.hh"

namespace hippo::test
{

using apps::buildRaceKv;
using apps::RaceKvBuild;
using pmcheck::CrashExplorerConfig;
using pmcheck::exploreCrashes;
using pmcheck::ExplorationResult;
using pmcheck::moduleIsThreaded;
using pmcheck::recoveryDigest;

namespace
{

/** Explorer config the racekv tests share: adversarial faults on,
 *  modest schedule budget, defaults otherwise. */
CrashExplorerConfig
raceKvConfig()
{
    CrashExplorerConfig cc;
    cc.entry = apps::raceKvEntry;
    cc.recovery = apps::raceKvRecovery;
    cc.seed = 11;
    cc.faults.tornChance = 0.5;
    cc.faults.seed = 11;
    cc.schedules = 24;
    cc.preemptBound = 2;
    return cc;
}

/**
 * A module whose baseline schedule is clean but where a forced
 * preemption before main's acquire load makes the producer's
 * publication visible early, steering main into a division by zero:
 * those plans must degrade to unverified outcomes, never crash the
 * exploration.
 */
constexpr const char *kSchedTrap = R"(
module "sched_trap"

func @worker(%flag: ptr) -> i64 {
entry:
    atomic_store release 1, %flag, 8
    ret 0
}

func @main() -> i64 {
entry:
    %p = pmmap "st", 128
    %flag = gep %p, 64
    %t = thread_spawn @worker(%flag)
    %v = atomic_load acquire %flag, 8
    %one = sub 1, %v
    %q = udiv 7, %one
    %r = thread_join %t
    store %q, %p, 8
    flush clwb %p
    fence sfence
    durpoint "end"
    ret %r
}
)";

/** Single-thread module with a deliberately slow recovery loop, for
 *  the wall-clock determinism regression. */
constexpr const char *kSlowRecovery = R"(
module "slow_recovery"

func @main() -> i64 {
entry:
    %p = pmmap "sr", 128
    store 7, %p, 8
    flush clwb %p
    fence sfence
    durpoint "one"
    store 9, %p, 8
    flush clwb %p
    fence sfence
    durpoint "two"
    ret 0
}

func @recover() -> i64 {
entry:
    %p = pmmap "sr", 128
    %iv = alloca 8
    store 0, %iv, 8
    br %h
h:
    %i = load %iv, 8
    %more = cmp ult %i, 300000
    condbr %more, %body, %exit
body:
    %ni = add %i, 1
    store %ni, %iv, 8
    br %h
exit:
    %v = load %p, 8
    ret %v
}
)";

std::unique_ptr<ir::Module>
parse(const char *src)
{
    std::string error;
    auto m = ir::parseModule(src, &error);
    EXPECT_NE(m, nullptr) << error;
    return m;
}

bool
hasBugKind(const pmcheck::Report &r, pmcheck::BugKind k)
{
    for (const auto &b : r.bugs)
        if (b.kind == k)
            return true;
    return false;
}

bool
hasFixKind(const core::FixSummary &s, core::FixKind k)
{
    for (const auto &f : s.fixes)
        if (f.kind == k)
            return true;
    return false;
}

} // namespace

TEST(Threads, ModuleIsThreadedDetection)
{
    auto threaded = buildRaceKv();
    EXPECT_TRUE(moduleIsThreaded(*threaded));
    auto plain = parse(kSlowRecovery);
    ASSERT_NE(plain, nullptr);
    EXPECT_FALSE(moduleIsThreaded(*plain));
}

TEST(Threads, BuggyRaceKvSeedsCrossBugAndCrossPublishFixes)
{
    auto m = buildRaceKv();
    auto res = runPipeline(m.get(), apps::raceKvEntry);

    // The seeded bugs: one cross-thread publication race (one static
    // site — the producer loop) plus the unflushed count bump.
    EXPECT_TRUE(hasBugKind(res.before, pmcheck::BugKind::CrossThread))
        << res.before.writeText();
    EXPECT_TRUE(
        hasBugKind(res.before, pmcheck::BugKind::MissingFlushFence))
        << res.before.writeText();

    // The repair includes a CrossPublish fix, the re-check is clean,
    // and the fix changed neither the program's output.
    EXPECT_TRUE(hasFixKind(res.summary, core::FixKind::CrossPublish));
    EXPECT_TRUE(res.after.clean()) << res.after.writeText();
    EXPECT_EQ(res.outputsBefore, res.outputsAfter);
}

TEST(Threads, ExplorerForksRacesOnBuggyBuildOnly)
{
    auto buggy = buildRaceKv();
    auto buggy_res = exploreCrashes(buggy.get(), raceKvConfig());
    EXPECT_GT(buggy_res.racesObserved, 0u);
    EXPECT_GT(buggy_res.raceCrashCount(), 0u);
    EXPECT_GE(buggy_res.schedulesExecuted, 1u);
    EXPECT_GT(buggy_res.visibleOpsInRun, 0u);

    RaceKvBuild fixed_build;
    fixed_build.flushSlots = true;
    fixed_build.flushCount = true;
    auto fixed = buildRaceKv(fixed_build);
    auto fixed_res = exploreCrashes(fixed.get(), raceKvConfig());
    EXPECT_EQ(fixed_res.racesObserved, 0u);
    EXPECT_EQ(fixed_res.raceCrashCount(), 0u);
    EXPECT_EQ(fixed_res.unverifiedCount(), 0u);
    EXPECT_TRUE(fixed_res.durPointRecoveryNonDecreasing());
}

TEST(Threads, FixThenReVerifyOverSameScheduleSetIsClean)
{
    auto m = buildRaceKv();
    auto res = runPipeline(m.get(), apps::raceKvEntry);
    ASSERT_TRUE(res.after.clean()) << res.after.writeText();

    // Re-verification over the same bounded schedule set: zero
    // surviving cross-thread races, zero unverified, and the
    // single-thread durpoint invariant intact.
    auto explored = exploreCrashes(m.get(), raceKvConfig());
    EXPECT_EQ(explored.racesObserved, 0u);
    EXPECT_EQ(explored.raceCrashCount(), 0u);
    EXPECT_EQ(explored.unverifiedCount(), 0u);
    EXPECT_TRUE(explored.durPointRecoveryNonDecreasing());
}

TEST(Threads, DigestInvariantAcrossJobsEnginesAndShards)
{
    // The acceptance gate: schedule set, CROSS forks, and recovery
    // digests byte-identical across jobs {1,4} x engine
    // {Tree,Bytecode}, and shard-count invariant via exploreShards.
    ExplorationResult ref;
    bool have_ref = false;
    for (unsigned jobs : {1u, 4u}) {
        for (auto engine : {vm::VmEngine::Tree,
                            vm::VmEngine::Bytecode}) {
            auto m = buildRaceKv();
            CrashExplorerConfig cc = raceKvConfig();
            cc.jobs = jobs;
            cc.vmEngine = engine;
            auto res = exploreCrashes(m.get(), cc);
            if (!have_ref) {
                ref = res;
                have_ref = true;
                EXPECT_FALSE(ref.outcomes.empty());
            } else {
                EXPECT_EQ(res, ref)
                    << "jobs=" << jobs << " engine="
                    << vm::vmEngineName(engine);
            }
        }
    }

    uint64_t merged_ref = 0;
    for (unsigned shards : {1u, 4u}) {
        auto m = buildRaceKv();
        auto merged =
            shard::exploreShards(m.get(), raceKvConfig(), shards);
        EXPECT_TRUE(merged.consistent) << "shards=" << shards;
        if (shards == 1)
            merged_ref = merged.digest;
        else
            EXPECT_EQ(merged.digest, merged_ref);
    }
}

TEST(Threads, PreemptionExposedTrapDegradesToUnverified)
{
    auto m = parse(kSchedTrap);
    ASSERT_NE(m, nullptr);
    CrashExplorerConfig cc;
    cc.entry = "main";
    cc.recovery = "main";
    cc.schedules = 16;
    cc.preemptBound = 2;
    auto res = exploreCrashes(m.get(), cc);

    // Some plan forces the early publication and traps; those plans
    // must degrade to unverified outcomes, not abort.
    EXPECT_GT(res.schedulesDegraded, 0u);
    EXPECT_GT(res.unverifiedCount(), 0u);
    EXPECT_LT(res.schedulesDegraded, res.schedulesExecuted);

    // Degradation is part of the deterministic result: same census
    // and digest at every jobs setting and on both engines.
    for (unsigned jobs : {1u, 4u}) {
        for (auto engine : {vm::VmEngine::Tree,
                            vm::VmEngine::Bytecode}) {
            auto m2 = parse(kSchedTrap);
            CrashExplorerConfig c2 = cc;
            c2.jobs = jobs;
            c2.vmEngine = engine;
            auto r2 = exploreCrashes(m2.get(), c2);
            EXPECT_EQ(r2, res)
                << "jobs=" << jobs << " engine="
                << vm::vmEngineName(engine);
        }
    }
}

TEST(Threads, WallClockVerdictsNeverReachComparableAggregates)
{
    // Satellite regression: with timeBudgetMs=1 the wall clock fires
    // on a slow recovery, but every timeout is replayed under the
    // deterministic step cap, so the digest and the comparable
    // explorer aggregates match a run with an effectively unlimited
    // clock budget exactly.
    auto &reg = support::MetricsRegistry::global();
    auto explore = [&](uint64_t time_budget_ms, uint64_t &steps) {
        auto m = parse(kSlowRecovery);
        CrashExplorerConfig cc;
        cc.entry = "main";
        cc.recovery = "recover";
        cc.timeBudgetMs = time_budget_ms;
        uint64_t before = reg.counter("explorer.recovery.steps").value();
        auto res = exploreCrashes(m.get(), cc);
        steps = reg.counter("explorer.recovery.steps").value() - before;
        return res;
    };

    uint64_t steps_tight = 0, steps_loose = 0;
    auto tight = explore(1, steps_tight);
    auto loose = explore(1000000, steps_loose);

    EXPECT_EQ(tight, loose);
    EXPECT_EQ(recoveryDigest(tight), recoveryDigest(loose));
    EXPECT_EQ(tight.unverifiedCount(), 0u);
    EXPECT_EQ(steps_tight, steps_loose);
}

TEST(Threads, WallClockBudgetKeepsThreadedDigestInvariant)
{
    // Same contract on the interleaving path.
    auto explore = [&](uint64_t time_budget_ms) {
        auto m = buildRaceKv();
        CrashExplorerConfig cc = raceKvConfig();
        cc.timeBudgetMs = time_budget_ms;
        return exploreCrashes(m.get(), cc);
    };
    auto tight = explore(1);
    auto loose = explore(1000000);
    EXPECT_EQ(tight, loose);
    EXPECT_EQ(recoveryDigest(tight), recoveryDigest(loose));
}

} // namespace hippo::test
