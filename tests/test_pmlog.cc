/**
 * @file
 * Tests for pmlog (the libpmemlog-analog substrate): functional
 * append/walk/rewind behavior, the seeded bugs, repair with a hoist
 * into the shared copy helper, torn-append recovery, and capacity
 * handling.
 */

#include <gtest/gtest.h>

#include "apps/pmlog.hh"
#include "test_util.hh"

namespace hippo::test
{

using apps::buildPmlog;
using apps::PmlogConfig;

namespace
{

PmlogConfig
fixedConfig()
{
    PmlogConfig cfg;
    cfg.seedBugs = false;
    cfg.capacity = 64 << 10;
    return cfg;
}

} // namespace

TEST(Pmlog, AppendWalkRoundTrip)
{
    auto m = buildPmlog(fixedConfig());
    pmem::PmPool pool(8u << 20);
    vm::Vm machine(m.get(), &pool, {});
    machine.run("log_init");
    for (uint64_t i = 1; i <= 5; i++) {
        EXPECT_EQ(machine.run("log_handle_append", {i, 40})
                      .returnValue,
                  1u);
    }
    EXPECT_EQ(machine.run("log_walk").returnValue, 5u);
    // The tail holds the last seed byte replicated.
    auto tail = machine.run("log_tail_read", {40});
    EXPECT_EQ(tail.returnValue, 0x0505050505050505ULL);
}

TEST(Pmlog, RewindEmptiesTheLog)
{
    auto m = buildPmlog(fixedConfig());
    pmem::PmPool pool(8u << 20);
    vm::Vm machine(m.get(), &pool, {});
    machine.run("log_init");
    machine.run("log_handle_append", {1, 40});
    machine.run("log_rewind");
    EXPECT_EQ(machine.run("log_walk").returnValue, 0u);
    machine.run("log_handle_append", {2, 40});
    EXPECT_EQ(machine.run("log_walk").returnValue, 1u);
}

TEST(Pmlog, AppendFailsWhenFull)
{
    PmlogConfig cfg = fixedConfig();
    cfg.capacity = 4096;
    auto m = buildPmlog(cfg);
    pmem::PmPool pool(8u << 20);
    vm::Vm machine(m.get(), &pool, {});
    machine.run("log_init");
    uint64_t appended = 0;
    for (int i = 0; i < 200; i++) {
        if (machine.run("log_handle_append", {7, 200})
                .returnValue == 0)
            break;
        appended++;
    }
    // 4096 / (8 + 200) = 19 entries fit.
    EXPECT_EQ(appended, 19u);
    EXPECT_EQ(machine.run("log_walk").returnValue, appended);
}

TEST(Pmlog, BuggyBuildHasThreeBugsAndRepairHoists)
{
    auto m = buildPmlog({});
    auto res = runPipelineWithArg(m.get(), "log_example", 12);
    EXPECT_EQ(res.before.bugs.size(), 3u)
        << res.before.writeText();
    EXPECT_TRUE(res.after.clean()) << res.after.writeText();
    EXPECT_EQ(res.outputsBefore, res.outputsAfter);
    // The payload copy hoists out of the shared helper; the volatile
    // tail-read path keeps calling the original.
    EXPECT_NE(m->findFunction("log_copy_PM"), nullptr);
    EXPECT_GT(res.summary.interproceduralCount(), 0u);
}

TEST(Pmlog, FixedBuildIsClean)
{
    auto m = buildPmlog(fixedConfig());
    pmem::PmPool pool(8u << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(m.get(), &pool, vc);
    machine.run("log_example", {12});
    EXPECT_TRUE(pmcheck::analyze(machine.trace()).clean());
}

TEST(Pmlog, TornAppendIsInvisibleAfterCrash)
{
    // Crash at arbitrary steps inside an append; the walk must see
    // exactly the acknowledged entries (the offset publish is the
    // commit point).
    auto m = buildPmlog(fixedConfig());
    for (uint64_t crash_step : {50ull, 150ull, 400ull, 800ull}) {
        pmem::PmPool pool(8u << 20);
        uint64_t committed = 0;
        {
            vm::Vm machine(m.get(), &pool, {});
            machine.run("log_init");
        }
        {
            vm::VmConfig vc;
            vc.crashAtStep = crash_step;
            vm::Vm machine(m.get(), &pool, vc);
            for (uint64_t i = 1; i <= 6; i++) {
                auto r =
                    machine.run("log_handle_append", {i, 40});
                if (r.crashed)
                    break;
                committed++;
            }
        }
        pool.crash();
        vm::Vm recovery(m.get(), &pool, {});
        EXPECT_EQ(recovery.run("log_walk").returnValue, committed)
            << "crash @" << crash_step;
    }
}

TEST(Pmlog, BuggyBuildLosesEntriesAcrossCrash)
{
    auto count_after_crash = [](ir::Module *m) {
        pmem::PmPool pool(8u << 20);
        {
            vm::Vm machine(m, &pool, {});
            machine.run("log_init");
            for (uint64_t i = 1; i <= 4; i++)
                machine.run("log_handle_append", {i, 40});
        }
        pool.crash();
        vm::Vm recovery(m, &pool, {});
        return recovery.run("log_walk").returnValue;
    };

    auto buggy = buildPmlog({});
    EXPECT_LT(count_after_crash(buggy.get()), 4u);

    auto repaired = buildPmlog({});
    runPipelineWithArg(repaired.get(), "log_example", 12);
    EXPECT_EQ(count_after_crash(repaired.get()), 4u);
}

} // namespace hippo::test
