/**
 * @file
 * Unit tests for the YCSB workload generator: the standard mixes of
 * Load and A-F (parameterized proportion checks), Zipfian skew,
 * latest-distribution recency, determinism, and scan lengths.
 */

#include <gtest/gtest.h>

#include <map>

#include "ycsb/ycsb.hh"

namespace hippo::test
{

using namespace hippo::ycsb;

namespace
{

std::map<OpType, uint64_t>
opMix(Workload w, uint64_t records, uint64_t ops, uint64_t seed)
{
    Generator gen(w, records, ops, seed);
    std::map<OpType, uint64_t> mix;
    while (gen.hasNext())
        mix[gen.next().type]++;
    return mix;
}

} // namespace

struct MixCase
{
    Workload workload;
    OpType type;
    double expected; ///< proportion
};

class YcsbMix : public ::testing::TestWithParam<MixCase>
{};

TEST_P(YcsbMix, ProportionWithinTolerance)
{
    const MixCase &c = GetParam();
    const uint64_t ops = 20000;
    auto mix = opMix(c.workload, 1000, ops, 42);
    double got = (double)mix[c.type] / ops;
    EXPECT_NEAR(got, c.expected, 0.02)
        << workloadName(c.workload) << " " << opTypeName(c.type);
}

INSTANTIATE_TEST_SUITE_P(
    CoreWorkloads, YcsbMix,
    ::testing::Values(
        MixCase{Workload::Load, OpType::Insert, 1.0},
        MixCase{Workload::A, OpType::Read, 0.5},
        MixCase{Workload::A, OpType::Update, 0.5},
        MixCase{Workload::B, OpType::Read, 0.95},
        MixCase{Workload::B, OpType::Update, 0.05},
        MixCase{Workload::C, OpType::Read, 1.0},
        MixCase{Workload::D, OpType::Read, 0.95},
        MixCase{Workload::D, OpType::Insert, 0.05},
        MixCase{Workload::E, OpType::Scan, 0.95},
        MixCase{Workload::E, OpType::Insert, 0.05},
        MixCase{Workload::F, OpType::Read, 0.5},
        MixCase{Workload::F, OpType::ReadModifyWrite, 0.5}));

TEST(Ycsb, LoadInsertsDenseSequentialKeys)
{
    Generator gen(Workload::Load, 100, 100, 7);
    uint64_t expect = 0;
    while (gen.hasNext()) {
        Op op = gen.next();
        EXPECT_EQ(op.type, OpType::Insert);
        EXPECT_EQ(op.key, expect++);
    }
    EXPECT_EQ(expect, 100u);
}

TEST(Ycsb, DeterministicPerSeed)
{
    Generator a(Workload::A, 1000, 500, 9);
    Generator b(Workload::A, 1000, 500, 9);
    Generator c(Workload::A, 1000, 500, 10);
    bool same = true, diff = false;
    while (a.hasNext()) {
        Op oa = a.next(), ob = b.next(), oc = c.next();
        same &= oa.type == ob.type && oa.key == ob.key;
        diff |= oa.type != oc.type || oa.key != oc.key;
    }
    EXPECT_TRUE(same);
    EXPECT_TRUE(diff);
}

TEST(Ycsb, KeysStayInRange)
{
    for (Workload w : {Workload::A, Workload::B, Workload::C,
                       Workload::D, Workload::E, Workload::F}) {
        Generator gen(w, 500, 2000, 13);
        uint64_t max_key = 500;
        while (gen.hasNext()) {
            Op op = gen.next();
            if (op.type == OpType::Insert) {
                EXPECT_EQ(op.key, max_key) << workloadName(w);
                max_key++;
            } else {
                EXPECT_LT(op.key, max_key) << workloadName(w);
            }
        }
        EXPECT_EQ(gen.finalRecordCount(), max_key);
    }
}

TEST(Ycsb, ZipfianIsSkewed)
{
    ZipfianGenerator zipf(1000);
    Rng rng(5);
    std::map<uint64_t, uint64_t> counts;
    const int n = 50000;
    for (int i = 0; i < n; i++)
        counts[zipf.next(rng)]++;
    // Rank 0 under theta=0.99 over 1000 items draws ~13% of
    // requests; the tail is long.
    EXPECT_GT(counts[0], n / 12);
    EXPECT_GT(counts[0], counts[10] * 2);
    EXPECT_GT(counts.size(), 200u) << "long tail present";
    for (auto &[rank, cnt] : counts)
        EXPECT_LT(rank, 1000u);
}

TEST(Ycsb, ScrambledZipfianSpreadsHotKeys)
{
    // The hottest keys must not be the numerically-first keys.
    auto mixless = [](uint64_t records) {
        Generator gen(Workload::C, records, 20000, 3);
        std::map<uint64_t, uint64_t> counts;
        while (gen.hasNext())
            counts[gen.next().key]++;
        uint64_t hottest = 0, hottest_count = 0;
        for (auto &[k, c] : counts) {
            if (c > hottest_count) {
                hottest = k;
                hottest_count = c;
            }
        }
        return hottest;
    };
    EXPECT_NE(mixless(10000), 0u)
        << "scrambling must move the hot rank away from key 0";
}

TEST(Ycsb, LatestDistributionFavorsRecentInserts)
{
    Generator gen(Workload::D, 1000, 20000, 21);
    uint64_t recent_reads = 0, total_reads = 0;
    uint64_t inserted = 1000;
    while (gen.hasNext()) {
        Op op = gen.next();
        if (op.type == OpType::Insert) {
            inserted++;
        } else if (op.type == OpType::Read) {
            total_reads++;
            if (op.key + 100 >= inserted)
                recent_reads++;
        }
    }
    EXPECT_GT((double)recent_reads / total_reads, 0.5)
        << "the latest distribution reads the newest keys";
}

TEST(Ycsb, ScanLengthsBounded)
{
    Generator gen(Workload::E, 1000, 5000, 17);
    bool saw_scan = false;
    while (gen.hasNext()) {
        Op op = gen.next();
        if (op.type != OpType::Scan)
            continue;
        saw_scan = true;
        EXPECT_GE(op.scanLength, 1u);
        EXPECT_LE(op.scanLength, specFor(Workload::E).maxScanLength);
    }
    EXPECT_TRUE(saw_scan);
}

TEST(Ycsb, GeneratorExhaustsExactly)
{
    Generator gen(Workload::A, 10, 25, 1);
    uint64_t n = 0;
    while (gen.hasNext()) {
        gen.next();
        n++;
    }
    EXPECT_EQ(n, 25u);
    EXPECT_EQ(gen.opCount(), 25u);
}

} // namespace hippo::test
