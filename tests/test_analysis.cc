/**
 * @file
 * Unit tests for the analysis library: call graph, Andersen
 * points-to (seeds, copies, call/return flow, mayAlias, flowsTo),
 * and the PM-alias scorer in both Full-AA and Trace-AA modes,
 * including the exact score calculation of the paper's Listing 6.
 */

#include <gtest/gtest.h>

#include "analysis/alias_scorer.hh"
#include "analysis/call_graph.hh"
#include "analysis/points_to.hh"
#include "test_util.hh"

namespace hippo::test
{

using namespace hippo::ir;
using analysis::AaMode;
using analysis::AliasScorer;
using analysis::CallGraph;
using analysis::PointsTo;

namespace
{

/** a -> b -> c, a -> c, d isolated; d recursive. */
std::unique_ptr<Module>
makeCallChain()
{
    auto m = std::make_unique<Module>("calls");
    IRBuilder b(m.get());
    Function *c = m->addFunction("c", Type::Void);
    b.setInsertPoint(c->addBlock("entry"));
    b.createRet();

    Function *bf = m->addFunction("b", Type::Void);
    b.setInsertPoint(bf->addBlock("entry"));
    b.createCall(c, {});
    b.createRet();

    Function *a = m->addFunction("a", Type::Void);
    b.setInsertPoint(a->addBlock("entry"));
    b.createCall(bf, {});
    b.createCall(c, {});
    b.createRet();

    Function *d = m->addFunction("d", Type::Int);
    Argument *n = d->addParam(Type::Int, "n");
    BasicBlock *entry = d->addBlock("entry");
    BasicBlock *rec = d->addBlock("rec");
    BasicBlock *base = d->addBlock("base");
    b.setInsertPoint(entry);
    b.createCondBr(b.createCmp(CmpPred::Ugt, n, b.getInt(0)), rec,
                   base);
    b.setInsertPoint(rec);
    b.createRet(b.createCall(d, {b.createSub(n, b.getInt(1))}));
    b.setInsertPoint(base);
    b.createRet(b.getInt(0));
    return m;
}

} // namespace

TEST(CallGraph, EdgesAndCallSites)
{
    auto m = makeCallChain();
    CallGraph cg(*m);
    Function *a = m->findFunction("a");
    Function *bf = m->findFunction("b");
    Function *c = m->findFunction("c");

    EXPECT_EQ(cg.callees(a).size(), 2u);
    EXPECT_EQ(cg.callees(bf).size(), 1u);
    EXPECT_TRUE(cg.callees(c).empty());
    EXPECT_EQ(cg.callSitesOf(c).size(), 2u);
    EXPECT_EQ(cg.callSitesOf(bf).size(), 1u);
    EXPECT_TRUE(cg.callSitesOf(a).empty());
}

TEST(CallGraph, TransitiveReachability)
{
    auto m = makeCallChain();
    CallGraph cg(*m);
    Function *a = m->findFunction("a");
    Function *bf = m->findFunction("b");
    Function *c = m->findFunction("c");
    Function *d = m->findFunction("d");

    EXPECT_TRUE(cg.reaches(a, c));
    EXPECT_TRUE(cg.reaches(a, bf));
    EXPECT_TRUE(cg.reaches(bf, c));
    EXPECT_FALSE(cg.reaches(c, a));
    EXPECT_FALSE(cg.reaches(a, d));
    EXPECT_TRUE(cg.reaches(d, d)) << "recursion reaches itself";

    auto callers = cg.transitiveCallers(c);
    EXPECT_EQ(callers.size(), 3u); // c itself, b, a
    EXPECT_TRUE(callers.count(a));
}

TEST(CallGraph, DotExportContainsEveryEdge)
{
    auto m = makeCallChain();
    CallGraph cg(*m);
    std::string dot = cg.toDot("g");
    EXPECT_NE(dot.find("digraph g {"), std::string::npos);
    EXPECT_NE(dot.find("\"a\" -> \"b\""), std::string::npos);
    EXPECT_NE(dot.find("\"a\" -> \"c\""), std::string::npos);
    EXPECT_NE(dot.find("\"b\" -> \"c\""), std::string::npos);
    EXPECT_NE(dot.find("\"d\" -> \"d\""), std::string::npos);
    EXPECT_EQ(dot.find("\"c\" -> "), std::string::npos);
}

TEST(PointsTo, SeedsAndCopies)
{
    auto m = std::make_unique<Module>("pts");
    IRBuilder b(m.get());
    Function *f = m->addFunction("f", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *vol = b.createAlloca(64);
    Instruction *pm = b.createPmMap("pool", 64);
    Instruction *g1 = b.createGep(pm, b.getInt(8));
    Instruction *g2 = b.createGep(g1, b.getInt(8));
    Instruction *sel = b.createSelect(b.getInt(1), vol, g2);
    b.createRet();

    PointsTo pts(*m);
    EXPECT_EQ(pts.pointsTo(vol).size(), 1u);
    EXPECT_EQ(pts.pointsTo(pm).size(), 1u);
    EXPECT_EQ(pts.pointsTo(g2), pts.pointsTo(pm))
        << "gep chains keep the base object";
    EXPECT_EQ(pts.pointsTo(sel).size(), 2u)
        << "select unions both arms";

    EXPECT_TRUE(pts.mayAlias(g1, g2));
    EXPECT_TRUE(pts.mayAlias(sel, vol));
    EXPECT_TRUE(pts.mayAlias(sel, pm));
    EXPECT_FALSE(pts.mayAlias(vol, pm));

    EXPECT_TRUE(pts.flowsTo(pm, g2));
    EXPECT_TRUE(pts.flowsTo(vol, sel));
    EXPECT_FALSE(pts.flowsTo(g2, pm));
    EXPECT_FALSE(pts.flowsTo(vol, g1));
}

TEST(PointsTo, FlowsThroughCallsAndReturns)
{
    auto m = std::make_unique<Module>("flow");
    IRBuilder b(m.get());

    // id(p) { return p; }
    Function *id = m->addFunction("id", Type::Ptr);
    Argument *p = id->addParam(Type::Ptr, "p");
    b.setInsertPoint(id->addBlock("entry"));
    b.createRet(p);

    Function *f = m->addFunction("f", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *pm = b.createPmMap("pool", 64);
    Instruction *vol = b.createAlloca(64);
    Instruction *r1 = b.createCall(id, {pm});
    Instruction *r2 = b.createCall(id, {vol});
    b.createRet();

    PointsTo pts(*m);
    // Context-insensitive: both call results see both objects.
    EXPECT_EQ(pts.pointsTo(r1).size(), 2u);
    EXPECT_EQ(pts.pointsTo(r2).size(), 2u);
    EXPECT_EQ(pts.pointsTo(p).size(), 2u);
    EXPECT_TRUE(pts.flowsTo(pm, r1));
    EXPECT_TRUE(pts.flowsTo(vol, r1));
}

TEST(PointsTo, PmMapRegionsUnifyByName)
{
    auto m = std::make_unique<Module>("regions");
    IRBuilder b(m.get());
    Function *f = m->addFunction("f", Type::Void);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *a = b.createPmMap("same", 64);
    b.createRet();
    Function *g = m->addFunction("g", Type::Void);
    b.setInsertPoint(g->addBlock("entry"));
    Instruction *c = b.createPmMap("same", 64);
    Instruction *d = b.createPmMap("other", 64);
    b.createRet();

    PointsTo pts(*m);
    EXPECT_TRUE(pts.mayAlias(a, c))
        << "the same region mapped twice aliases itself";
    EXPECT_FALSE(pts.mayAlias(a, d));
    EXPECT_NE(pts.objectByKey("pm:same"), ~0u);
    EXPECT_EQ(pts.objectByKey("pm:nope"), ~0u);
}

TEST(AliasScorer, Listing6Scores)
{
    // The paper's Listing 6: line 3 scores 0 (1 PM, 1 non-PM),
    // the call site in modify scores 0, modify(pm_addr) in foo
    // scores +1.
    auto m = buildListing5(true);
    pmem::PmPool pool(1 << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(m.get(), &pool, vc);
    machine.run("foo");

    PointsTo pts(*m);
    AliasScorer full(pts, AaMode::FullAA, machine.trace());

    Function *update = m->findFunction("update");
    // The store's pointer (the gep result) in update.
    const Instruction *store_ptr = nullptr;
    for (const auto &bb : update->blocks()) {
        for (const auto &instr : *bb) {
            if (instr->op() == Opcode::Gep)
                store_ptr = instr.get();
        }
    }
    ASSERT_NE(store_ptr, nullptr);
    EXPECT_EQ(full.score("update", store_ptr), 0);

    // The two call sites in foo: modify(vol) and modify(pm).
    Function *foo = m->findFunction("foo");
    std::vector<const Instruction *> calls;
    for (const auto &bb : foo->blocks()) {
        for (const auto &instr : *bb) {
            if (instr->op() == Opcode::Call)
                calls.push_back(instr.get());
        }
    }
    ASSERT_EQ(calls.size(), 2u);
    EXPECT_EQ(full.score("foo", calls[0]->operand(0)), -1)
        << "modify(vol_addr)";
    EXPECT_EQ(full.score("foo", calls[1]->operand(0)), 1)
        << "modify(pm_addr) — the winning +1 of Listing 6";

    EXPECT_TRUE(full.mayPointToPm("update", store_ptr));
    EXPECT_FALSE(full.mayPointToPm("foo", calls[0]->operand(0)));
}

TEST(AliasScorer, TraceAaAgreesOnListing6)
{
    auto m = buildListing5(true);
    pmem::PmPool pool(1 << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(m.get(), &pool, vc);
    machine.run("foo");

    PointsTo pts(*m);
    AliasScorer tr(pts, AaMode::TraceAA, machine.trace(),
                   &machine.dynPointsTo());

    Function *foo = m->findFunction("foo");
    std::vector<const Instruction *> calls;
    for (const auto &bb : foo->blocks()) {
        for (const auto &instr : *bb) {
            if (instr->op() == Opcode::Call)
                calls.push_back(instr.get());
        }
    }
    ASSERT_EQ(calls.size(), 2u);
    EXPECT_EQ(tr.score("foo", calls[0]->operand(0)), -1);
    EXPECT_EQ(tr.score("foo", calls[1]->operand(0)), 1);
}

TEST(AliasScorer, UnexecutedPmPathsDifferAcrossModes)
{
    // A PM region only written on a never-executed path: Full-AA
    // marks it PM statically; Trace-AA has no modification event for
    // it, so the object is unmarked (the one semantic difference
    // between the modes).
    auto m = std::make_unique<Module>("coldpath");
    IRBuilder b(m.get());
    Function *f = m->addFunction("f", Type::Void);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *cold = f->addBlock("cold");
    BasicBlock *done = f->addBlock("done");
    b.setInsertPoint(entry);
    Instruction *pm = b.createPmMap("cold.pool", 64);
    b.createCondBr(b.getInt(0), cold, done);
    b.setInsertPoint(cold);
    b.createStore(b.getInt(1), pm, 8);
    b.createBr(done);
    b.setInsertPoint(done);
    b.createRet();

    pmem::PmPool pool(1 << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(m.get(), &pool, vc);
    machine.run("f");

    PointsTo pts(*m);
    AliasScorer full(pts, AaMode::FullAA, machine.trace());
    AliasScorer tr(pts, AaMode::TraceAA, machine.trace(),
                   &machine.dynPointsTo());
    EXPECT_EQ(full.score("f", pm), 1);
    EXPECT_EQ(tr.score("f", pm), 0)
        << "no dynamic observation -> empty set";
}

} // namespace hippo::test
