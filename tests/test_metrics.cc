/**
 * @file
 * The hippo_metrics facility: instrument correctness, registry
 * behavior, JSON serialization/round-trip, thread-safety of the
 * shared instruments under the ThreadPool, and the determinism
 * contract — comparable metrics recorded by the parallel pipeline
 * are identical at every `jobs` setting.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/pmlog.hh"
#include "pmcheck/crash_explorer.hh"
#include "support/json.hh"
#include "support/metrics.hh"
#include "support/thread_pool.hh"

namespace hippo::test
{

using support::MetricsRegistry;

TEST(Metrics, CounterBasics)
{
    MetricsRegistry reg;
    auto &c = reg.counter("a.b.c");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    EXPECT_EQ(&reg.counter("a.b.c"), &c) << "same path, same object";
    EXPECT_EQ(reg.size(), 1u);

    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, DoubleSumAndGauge)
{
    MetricsRegistry reg;
    auto &s = reg.doubleSum("sim_ns");
    s.add(1.5);
    s.add(2.25);
    EXPECT_DOUBLE_EQ(s.value(), 3.75);

    auto &g = reg.gauge("peak");
    g.set(10);
    g.setMax(5);
    EXPECT_DOUBLE_EQ(g.value(), 10);
    g.setMax(20);
    EXPECT_DOUBLE_EQ(g.value(), 20);
}

TEST(Metrics, TimerAccumulatesSpans)
{
    MetricsRegistry reg;
    auto &t = reg.timer("phase_ns");
    t.addNanos(100);
    t.addNanos(250);
    EXPECT_EQ(t.count(), 2u);
    EXPECT_EQ(t.totalNs(), 350u);

    {
        support::ScopedTimer span(t);
    }
    EXPECT_EQ(t.count(), 3u);
    EXPECT_GE(t.totalNs(), 350u);
}

TEST(Metrics, HistogramBucketsAndStats)
{
    MetricsRegistry reg;
    auto &h = reg.histogram("sizes");
    for (double v : {1.0, 2.0, 3.0, 100.0})
        h.observe(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 106.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Metrics, PercentilesOnLogBucketBounds)
{
    MetricsRegistry reg;
    auto &h = reg.histogram("lat");
    // Empty histogram: every percentile is 0 by definition.
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);

    // A single observation lands every percentile on its bucket's
    // upper bound (bucket i covers (2^(i-1), 2^i], bound 2^i).
    h.observe(1.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 1.0);

    // {1, 2, 3, 4}: buckets 0, 1, 2, 2. The median rank (2 of 4)
    // falls in bucket 1 (bound 2), the tail in bucket 2 (bound 4).
    h.observe(2.0);
    h.observe(3.0);
    h.observe(4.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 2.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.95), 4.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 4.0);

    // Out-of-range quantiles clamp instead of misbehaving.
    EXPECT_DOUBLE_EQ(h.percentile(-1.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(2.0), 4.0);

    // A far observation: 100 lands in bucket 7 (bound 128) and
    // shifts the median rank (3rd of 5) into bucket 2 (bound 4).
    h.observe(100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 4.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 128.0);
}

TEST(Metrics, PercentilesExportedAsComparableLeaves)
{
    MetricsRegistry reg;
    auto &h = reg.histogram("lat");
    for (double v : {1.0, 2.0, 3.0, 4.0})
        h.observe(v);

    json::Value v = reg.toJson();
    const json::Value *lat = v.find("lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_DOUBLE_EQ(lat->find("p50")->number(), 2.0);
    EXPECT_DOUBLE_EQ(lat->find("p95")->number(), 4.0);
    EXPECT_DOUBLE_EQ(lat->find("p99")->number(), 4.0);

    auto snap = reg.deterministicSnapshot();
    EXPECT_DOUBLE_EQ(snap["lat.p50"], 2.0);
    EXPECT_DOUBLE_EQ(snap["lat.p95"], 4.0);
    EXPECT_DOUBLE_EQ(snap["lat.p99"], 4.0);
}

TEST(Metrics, KindMismatchIsFatal)
{
    MetricsRegistry reg;
    reg.counter("x");
    EXPECT_DEATH(reg.timer("x"), "kind");
}

TEST(Metrics, ResetKeepsReferencesValid)
{
    MetricsRegistry reg;
    auto &c = reg.counter("n");
    c.inc(7);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    EXPECT_EQ(reg.counter("n").value(), 1u);
}

TEST(Metrics, ToJsonNestsPaths)
{
    MetricsRegistry reg;
    reg.counter("vm.flush.clwb").inc(3);
    reg.counter("vm.runs").inc(1);
    reg.doubleSum("vm.sim_ns").add(2.5);

    json::Value root = reg.toJson();
    ASSERT_TRUE(root.isObject());
    const json::Value *vm = root.find("vm");
    ASSERT_NE(vm, nullptr);
    const json::Value *flush = vm->find("flush");
    ASSERT_NE(flush, nullptr);
    const json::Value *clwb = flush->find("clwb");
    ASSERT_NE(clwb, nullptr);
    EXPECT_EQ(clwb->find("kind")->str(), "counter");
    EXPECT_DOUBLE_EQ(clwb->find("value")->number(), 3);
    EXPECT_EQ(vm->find("sim_ns")->find("kind")->str(), "sum");
}

TEST(Metrics, StatsDocumentRoundTripsThroughText)
{
    MetricsRegistry reg;
    reg.counter("a.count").inc(12);
    reg.doubleSum("a.sum").add(3.5);
    reg.timer("a.time_ns").addNanos(1234);
    reg.histogram("a.hist").observe(4);
    reg.gauge("a.gauge").set(-1.25);

    json::Value doc =
        support::statsDocument(reg, {{"bench", "unit-test"}});
    EXPECT_DOUBLE_EQ(doc.find("schema_version")->number(),
                     support::statsSchemaVersion);
    ASSERT_NE(doc.find("env"), nullptr);
    EXPECT_EQ(doc.find("env")->find("bench")->str(), "unit-test");

    std::string text = doc.dump(2);
    json::Value parsed;
    std::string error;
    ASSERT_TRUE(json::parse(text, parsed, &error)) << error;
    EXPECT_EQ(parsed, doc) << "pretty-printed round trip is exact";

    json::Value dense;
    ASSERT_TRUE(json::parse(doc.dump(), dense, &error)) << error;
    EXPECT_EQ(dense, doc) << "compact round trip is exact";
}

TEST(Metrics, InstrumentsAreThreadSafe)
{
    MetricsRegistry reg;
    constexpr uint64_t workers = 8, per_worker = 10000;
    // Creation races too: every worker asks for the same paths.
    support::ThreadPool pool(4);
    pool.parallelForEach(0, workers, [&](uint64_t) {
        for (uint64_t i = 0; i < per_worker; i++) {
            reg.counter("shared.count").inc();
            reg.doubleSum("shared.sum").add(1.0);
            reg.histogram("shared.hist").observe((double)(i % 7));
            reg.timer("shared.time_ns").addNanos(1);
        }
    });
    EXPECT_EQ(reg.counter("shared.count").value(),
              workers * per_worker);
    EXPECT_DOUBLE_EQ(reg.doubleSum("shared.sum").value(),
                     (double)(workers * per_worker));
    EXPECT_EQ(reg.histogram("shared.hist").count(),
              workers * per_worker);
    EXPECT_EQ(reg.timer("shared.time_ns").count(),
              workers * per_worker);
    EXPECT_EQ(reg.timer("shared.time_ns").totalNs(),
              workers * per_worker);
}

/** Crash-explore the pmlog workload at one jobs setting and return
 *  the deterministic view of everything the pipeline recorded. */
static std::map<std::string, double>
exploreSnapshot(unsigned jobs)
{
    auto &reg = support::MetricsRegistry::global();
    reg.reset();

    apps::PmlogConfig lc;
    lc.seedBugs = false;
    lc.capacity = 1u << 20;
    auto m = apps::buildPmlog(lc);

    pmcheck::CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {24};
    xc.recovery = "log_walk";
    xc.stepStride = 32;
    xc.maxCrashes = 1u << 20;
    xc.jobs = jobs;
    pmcheck::exploreCrashes(m.get(), xc);

    return reg.deterministicSnapshot();
}

TEST(Metrics, ComparableMetricsIdenticalAcrossJobsSettings)
{
    auto base = exploreSnapshot(1);
    EXPECT_FALSE(base.empty());
    EXPECT_TRUE(base.count("explorer.crash_points.total"));
    // Wall-clock timers must stay out of the deterministic view.
    for (const auto &[path, value] : base)
        EXPECT_EQ(path.find("_ns"), std::string::npos) << path;

    for (unsigned jobs : {2u, 4u}) {
        auto snap = exploreSnapshot(jobs);
        ASSERT_EQ(snap.size(), base.size()) << "jobs=" << jobs;
        for (const auto &[path, value] : base) {
            ASSERT_TRUE(snap.count(path)) << path;
            // Counters are exact; sums may differ by fp association
            // order, so allow a relative epsilon.
            EXPECT_NEAR(snap[path], value,
                        1e-9 * std::max(1.0, std::fabs(value)))
                << path << " at jobs=" << jobs;
        }
    }
    support::MetricsRegistry::global().reset();
}

TEST(Metrics, DeterministicSnapshotSkipsTimersAndGauges)
{
    MetricsRegistry reg;
    reg.counter("c").inc(2);
    reg.doubleSum("s").add(1.5);
    reg.histogram("h").observe(3);
    reg.timer("t").addNanos(99);
    reg.gauge("g").set(7);

    auto snap = reg.deterministicSnapshot();
    // c, s, h.{count,sum,p50,p95,p99}
    EXPECT_EQ(snap.size(), 7u);
    EXPECT_DOUBLE_EQ(snap["c"], 2);
    EXPECT_DOUBLE_EQ(snap["s"], 1.5);
    EXPECT_DOUBLE_EQ(snap["h.count"], 1);
    EXPECT_DOUBLE_EQ(snap["h.sum"], 3);
    EXPECT_DOUBLE_EQ(snap["h.p50"], 4);
    EXPECT_FALSE(snap.count("t"));
    EXPECT_FALSE(snap.count("g"));
}

TEST(Json, ParserHandlesTheUsualShapes)
{
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(
        R"({"a": [1, 2.5, -3e2], "b": {"c": true, "d": null},
            "e": "esc\"\nA"})",
        v, &error))
        << error;
    EXPECT_DOUBLE_EQ(v.find("a")->array()[2].number(), -300);
    EXPECT_TRUE(v.find("b")->find("c")->boolean());
    EXPECT_TRUE(v.find("b")->find("d")->isNull());
    EXPECT_EQ(v.find("e")->str(), "esc\"\nA");

    EXPECT_FALSE(json::parse("{", v, &error));
    EXPECT_FALSE(json::parse("[1,]", v, &error));
    EXPECT_FALSE(json::parse("1 2", v, &error));
}

} // namespace hippo::test
