/**
 * @file
 * Unit tests for the durability-bug detector, driving it with
 * hand-built synthetic traces so each clause of the §2.1/§4.2
 * semantics is pinned down independently of the VM.
 */

#include <gtest/gtest.h>

#include "pmcheck/detector.hh"
#include "pmem/pm_pool.hh"
#include "test_util.hh"

namespace hippo::test
{

using namespace hippo::pmcheck;
using trace::Event;
using trace::EventKind;
using trace::Trace;

namespace
{

/** Fluent builder for synthetic traces. */
class TraceBuilder
{
  public:
    TraceBuilder()
    {
        obj_ = trace_.internObject("pm:r", true);
    }

    TraceBuilder &
    store(uint64_t addr, uint64_t size = 8,
          const std::string &fn = "writer", uint32_t id = 1)
    {
        Event e;
        e.kind = EventKind::Store;
        e.addr = addr;
        e.size = size;
        e.isPm = true;
        e.objectId = obj_;
        e.stack = {{fn, id, "s.c", (int)id}};
        trace_.append(std::move(e));
        return *this;
    }

    TraceBuilder &
    ntStore(uint64_t addr, uint64_t size = 8)
    {
        Event e;
        e.kind = EventKind::Store;
        e.addr = addr;
        e.size = size;
        e.isPm = true;
        e.nonTemporal = true;
        e.objectId = obj_;
        e.stack = {{"writer", 1, "s.c", 1}};
        trace_.append(std::move(e));
        return *this;
    }

    TraceBuilder &
    flush(uint64_t addr,
          pmem::FlushOp op = pmem::FlushOp::Clwb,
          const std::string &fn = "writer", uint32_t id = 2)
    {
        Event e;
        e.kind = EventKind::Flush;
        e.addr = addr;
        e.size = 64;
        e.isPm = true;
        e.sub = (uint8_t)op;
        e.stack = {{fn, id, "s.c", (int)id}};
        trace_.append(std::move(e));
        return *this;
    }

    TraceBuilder &
    fence(const std::string &fn = "writer", uint32_t id = 3)
    {
        Event e;
        e.kind = EventKind::Fence;
        e.stack = {{fn, id, "s.c", (int)id}};
        trace_.append(std::move(e));
        return *this;
    }

    TraceBuilder &
    durpoint(const std::string &label = "commit",
             const std::string &fn = "writer", uint32_t id = 4)
    {
        Event e;
        e.kind = EventKind::DurPoint;
        e.symbol = label;
        e.stack = {{fn, id, "s.c", (int)id}};
        trace_.append(std::move(e));
        return *this;
    }

    const Trace &get() const { return trace_; }

  private:
    Trace trace_;
    uint32_t obj_;
};

constexpr uint64_t A = pmem::pmBaseAddr;

} // namespace

TEST(Detector, CleanSequenceHasNoBugs)
{
    TraceBuilder tb;
    tb.store(A).flush(A).fence().durpoint();
    auto r = analyze(tb.get());
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.pmStoresSeen, 1u);
    EXPECT_EQ(r.flushesSeen, 1u);
    EXPECT_EQ(r.fencesSeen, 1u);
    EXPECT_EQ(r.durPointsSeen, 1u);
}

TEST(Detector, MissingFlushWhenFenceExists)
{
    TraceBuilder tb;
    tb.store(A).fence().durpoint();
    auto r = analyze(tb.get());
    ASSERT_EQ(r.bugs.size(), 1u);
    EXPECT_EQ(r.bugs[0].kind, BugKind::MissingFlush);
    EXPECT_EQ(r.bugs[0].fenceStack[0].function, "writer");
}

TEST(Detector, MissingFenceWhenOnlyFlushed)
{
    TraceBuilder tb;
    tb.store(A).flush(A).durpoint();
    auto r = analyze(tb.get());
    ASSERT_EQ(r.bugs.size(), 1u);
    EXPECT_EQ(r.bugs[0].kind, BugKind::MissingFence);
    // The covering flush is identified for the fence-insertion fix.
    ASSERT_FALSE(r.bugs[0].flushStack.empty());
    EXPECT_EQ(r.bugs[0].flushStack[0].instrId, 2u);
}

TEST(Detector, MissingFlushFenceWhenNeither)
{
    TraceBuilder tb;
    tb.store(A).durpoint();
    auto r = analyze(tb.get());
    ASSERT_EQ(r.bugs.size(), 1u);
    EXPECT_EQ(r.bugs[0].kind, BugKind::MissingFlushFence);
    EXPECT_TRUE(r.bugs[0].fenceStack.empty());
}

TEST(Detector, ClflushNeedsNoFence)
{
    TraceBuilder tb;
    tb.store(A).flush(A, pmem::FlushOp::Clflush).durpoint();
    EXPECT_TRUE(analyze(tb.get()).clean());
}

TEST(Detector, NtStoreNeedsOnlyFence)
{
    {
        TraceBuilder tb;
        tb.ntStore(A).fence().durpoint();
        EXPECT_TRUE(analyze(tb.get()).clean());
    }
    {
        TraceBuilder tb;
        tb.ntStore(A).durpoint();
        auto r = analyze(tb.get());
        ASSERT_EQ(r.bugs.size(), 1u);
        EXPECT_EQ(r.bugs[0].kind, BugKind::MissingFence);
    }
}

TEST(Detector, FenceBeforeFlushDoesNotOrderIt)
{
    // store -> fence -> flush -> durpoint: the flush is not covered
    // by any fence, so the store is missing a fence.
    TraceBuilder tb;
    tb.store(A).fence().flush(A).durpoint();
    auto r = analyze(tb.get());
    ASSERT_EQ(r.bugs.size(), 1u);
    EXPECT_EQ(r.bugs[0].kind, BugKind::MissingFence);
}

TEST(Detector, StoreAfterFlushIsItsOwnBug)
{
    // First store is properly persisted; the second (after the
    // flush) is not.
    TraceBuilder tb;
    tb.store(A, 8, "writer", 1)
        .flush(A)
        .store(A + 8, 8, "writer", 9)
        .fence()
        .durpoint();
    auto r = analyze(tb.get());
    ASSERT_EQ(r.bugs.size(), 1u);
    EXPECT_EQ(r.bugs[0].kind, BugKind::MissingFlush);
    EXPECT_EQ(r.bugs[0].storeStack[0].instrId, 9u);
}

TEST(Detector, MultiLineStoreNeedsEveryLineFlushed)
{
    // A 128-byte store covering two lines with only one flushed.
    TraceBuilder tb;
    tb.store(A, 128).flush(A).fence().durpoint();
    auto r = analyze(tb.get());
    ASSERT_EQ(r.bugs.size(), 1u);
    EXPECT_EQ(r.bugs[0].kind, BugKind::MissingFlush);

    TraceBuilder ok;
    ok.store(A, 128).flush(A).flush(A + 64).fence().durpoint();
    EXPECT_TRUE(analyze(ok.get()).clean());
}

TEST(Detector, RedundantFlushCounted)
{
    TraceBuilder tb;
    tb.flush(A).store(A).flush(A).fence().durpoint();
    auto r = analyze(tb.get());
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.redundantFlushes, 1u);
}

TEST(Detector, StaticDedupAndDynamicCounts)
{
    TraceBuilder tb;
    for (int i = 0; i < 5; i++) {
        tb.store(A + i * 8, 8, "writer", 1);
        tb.durpoint();
    }
    auto r = analyze(tb.get());
    ASSERT_EQ(r.bugs.size(), 1u) << "same site dedups statically";
    // Occurrence 1 at its own durpoint + re-counted at the 4 later
    // ones, plus 4 more first-reports folded in: 5 + 4+3+2+1 = 15.
    EXPECT_EQ(r.bugs[0].dynCount, 15u);
}

TEST(Detector, DistinctCallPathsAreDistinctBugs)
{
    // Same store instruction reached through two different callers
    // must produce two bugs (each call path needs its own fix).
    TraceBuilder tb;
    {
        Event e;
        e.kind = EventKind::Store;
        e.addr = A;
        e.size = 8;
        e.isPm = true;
        e.stack = {{"leaf", 1, "s.c", 1}, {"callerA", 10, "s.c", 10}};
        const_cast<Trace &>(tb.get()).append(std::move(e));
    }
    {
        Event e;
        e.kind = EventKind::Store;
        e.addr = A + 8;
        e.size = 8;
        e.isPm = true;
        e.stack = {{"leaf", 1, "s.c", 1}, {"callerB", 20, "s.c", 20}};
        const_cast<Trace &>(tb.get()).append(std::move(e));
    }
    tb.fence().durpoint();
    auto r = analyze(tb.get());
    EXPECT_EQ(r.bugs.size(), 2u);
}

TEST(Detector, ExitDurPointRespectsConfig)
{
    TraceBuilder tb;
    tb.store(A).durpoint("exit");
    DetectorConfig keep;
    EXPECT_EQ(analyze(tb.get(), keep).bugs.size(), 1u);
    DetectorConfig skip;
    skip.checkExitDurPoint = false;
    EXPECT_TRUE(analyze(tb.get(), skip).clean());
}

TEST(Detector, ReportTextRoundTrip)
{
    TraceBuilder tb;
    tb.store(A).flush(A).durpoint();    // missing fence
    tb.store(A + 64).fence().durpoint(); // missing flush
    auto r = analyze(tb.get());
    ASSERT_EQ(r.bugs.size(), 2u);

    std::string text = r.writeText();
    Report parsed;
    std::string error;
    ASSERT_TRUE(Report::readText(text, parsed, &error)) << error;
    ASSERT_EQ(parsed.bugs.size(), r.bugs.size());
    for (size_t i = 0; i < r.bugs.size(); i++) {
        EXPECT_EQ(parsed.bugs[i].kind, r.bugs[i].kind);
        EXPECT_EQ(parsed.bugs[i].addr, r.bugs[i].addr);
        EXPECT_EQ(parsed.bugs[i].storeStack, r.bugs[i].storeStack);
        EXPECT_EQ(parsed.bugs[i].durStack, r.bugs[i].durStack);
        EXPECT_EQ(parsed.bugs[i].flushStack, r.bugs[i].flushStack);
        EXPECT_EQ(parsed.bugs[i].fenceStack, r.bugs[i].fenceStack);
        EXPECT_EQ(parsed.bugs[i].dynCount, r.bugs[i].dynCount);
    }
    EXPECT_EQ(parsed.pmStoresSeen, r.pmStoresSeen);
    EXPECT_EQ(parsed.redundantFlushes, r.redundantFlushes);
}

TEST(OnlineDetector, MatchesOfflineAnalysis)
{
    TraceBuilder tb;
    tb.store(A).fence().durpoint();             // missing flush
    tb.store(A + 64).flush(A + 64).durpoint();  // missing fence
    tb.store(A + 128).durpoint();               // missing both

    Report offline = analyze(tb.get());
    OnlineDetector online;
    for (const auto &ev : tb.get().events())
        online.onEvent(ev);

    EXPECT_EQ(online.report().writeText(), offline.writeText());
}

TEST(OnlineDetector, StreamsFromTheVmWithoutMaterializingTrace)
{
    // Run the Listing 5 program with the sink attached: the VM's
    // trace stays empty while the online report matches the offline
    // pipeline's.
    auto offline_report = [] {
        auto m = buildListing5(true);
        pmem::PmPool pool(1 << 20);
        vm::VmConfig vc;
        vc.traceEnabled = true;
        vm::Vm machine(m.get(), &pool, vc);
        machine.run("foo");
        return analyze(machine.trace());
    }();

    auto m = buildListing5(true);
    pmem::PmPool pool(1 << 20);
    OnlineDetector online;
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vc.eventSink = &online;
    vm::Vm machine(m.get(), &pool, vc);
    machine.run("foo");

    EXPECT_TRUE(machine.trace().empty())
        << "streaming mode must not materialize events";
    ASSERT_EQ(online.report().bugs.size(),
              offline_report.bugs.size());
    EXPECT_EQ(online.report().writeText(),
              offline_report.writeText());
}

TEST(Detector, VolatileEventsAreIgnored)
{
    TraceBuilder tb;
    Event e;
    e.kind = EventKind::Store;
    e.addr = 0x10000000;
    e.size = 8;
    e.isPm = false;
    e.stack = {{"writer", 1, "s.c", 1}};
    const_cast<Trace &>(tb.get()).append(std::move(e));
    tb.durpoint();
    auto r = analyze(tb.get());
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.pmStoresSeen, 0u);
}

} // namespace hippo::test
