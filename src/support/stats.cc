#include "stats.hh"

#include <algorithm>
#include <cmath>

namespace hippo
{

namespace
{

/**
 * Two-sided 95% Student's t critical values indexed by degrees of
 * freedom (1..30); larger dof falls back to the normal value 1.96.
 */
const double tTable95[31] = {
    0,      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
    2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
    2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
    2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
};

} // namespace

double
SampleStats::mean() const
{
    if (samples_.empty())
        return 0;
    double sum = 0;
    for (double v : samples_)
        sum += v;
    return sum / samples_.size();
}

double
SampleStats::stddev() const
{
    if (samples_.size() < 2)
        return 0;
    double m = mean();
    double acc = 0;
    for (double v : samples_)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / (samples_.size() - 1));
}

double
SampleStats::ci95() const
{
    size_t n = samples_.size();
    if (n < 2)
        return 0;
    size_t dof = n - 1;
    double t = dof <= 30 ? tTable95[dof] : 1.96;
    return t * stddev() / std::sqrt((double)n);
}

double
SampleStats::min() const
{
    if (samples_.empty())
        return 0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
SampleStats::max() const
{
    if (samples_.empty())
        return 0;
    return *std::max_element(samples_.begin(), samples_.end());
}

} // namespace hippo
