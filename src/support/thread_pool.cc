#include "support/thread_pool.hh"

#include <algorithm>

namespace hippo::support
{

unsigned
hardwareConcurrency()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

unsigned
resolveJobs(unsigned jobs)
{
    return jobs ? jobs : hardwareConcurrency();
}

ThreadPool::ThreadPool(unsigned workers)
{
    unsigned n = resolveJobs(workers);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; i++)
        workers_.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> g(mu_);
        shutdown_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::workerMain()
{
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
        workCv_.wait(lock, [&] {
            return shutdown_ || (!batch_.done && generation_ != seen);
        });
        if (shutdown_)
            return;
        seen = generation_;
        runBatchItems(lock);
    }
}

void
ThreadPool::runBatchItems(std::unique_lock<std::mutex> &lock)
{
    Batch &b = batch_;
    b.pending++;
    lock.unlock();
    std::exception_ptr error;
    while (true) {
        if (b.failed.cancelled())
            break;
        if (b.cancel && b.cancel->cancelled())
            break;
        uint64_t i = b.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= b.end)
            break;
        try {
            if (b.tasks)
                (*b.tasks)[i]();
            else
                (*b.fn)(i);
        } catch (...) {
            error = std::current_exception();
            b.failed.cancel();
            break;
        }
    }
    lock.lock();
    if (error && !b.firstError)
        b.firstError = error;
    if (--b.pending == 0)
        doneCv_.notify_all();
}

void
ThreadPool::parallelForEach(uint64_t begin, uint64_t end,
                            const std::function<void(uint64_t)> &fn,
                            CancelToken *cancel)
{
    dispatchBatch(begin, end, &fn, nullptr, cancel);
}

void
ThreadPool::submitAll(const std::vector<std::function<void()>> &tasks,
                      CancelToken *cancel)
{
    dispatchBatch(0, tasks.size(), nullptr, &tasks, cancel);
}

void
ThreadPool::dispatchBatch(uint64_t begin, uint64_t end,
                          const std::function<void(uint64_t)> *fn,
                          const std::vector<std::function<void()>> *tasks,
                          CancelToken *cancel)
{
    if (begin >= end)
        return;
    // One batch at a time. Items must not dispatch onto their own
    // pool (that would deadlock here); nested parallelism uses a
    // separate pool instance.
    std::unique_lock<std::mutex> callers(callersMu_);
    std::unique_lock<std::mutex> lock(mu_);
    batch_.next.store(begin, std::memory_order_relaxed);
    batch_.end = end;
    batch_.fn = fn;
    batch_.tasks = tasks;
    batch_.cancel = cancel;
    batch_.failed.reset();
    batch_.firstError = nullptr;
    batch_.pending = 0;
    batch_.done = false;
    generation_++;
    workCv_.notify_all();

    doneCv_.wait(lock, [&] {
        if (batch_.pending)
            return false;
        return batch_.next.load(std::memory_order_relaxed) >=
                   batch_.end ||
               batch_.failed.cancelled() ||
               (batch_.cancel && batch_.cancel->cancelled());
    });
    // Late-waking workers check done before touching batch state
    // (fn and cancel dangle once this frame returns).
    batch_.done = true;
    batch_.fn = nullptr;
    batch_.tasks = nullptr;
    batch_.cancel = nullptr;
    std::exception_ptr error = batch_.firstError;
    batch_.firstError = nullptr;
    lock.unlock();
    if (error)
        std::rethrow_exception(error);
}

} // namespace hippo::support
