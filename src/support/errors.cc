#include "support/errors.hh"

#include <cstdarg>
#include <cstdio>

namespace hippo::support
{

const char *
errorKindName(ErrorKind k)
{
    switch (k) {
      case ErrorKind::Usage: return "usage error";
      case ErrorKind::Input: return "input error";
      case ErrorKind::Resource: return "resource error";
      case ErrorKind::Internal: return "internal error";
    }
    return "?";
}

int
errorExitCode(ErrorKind k)
{
    switch (k) {
      case ErrorKind::Usage: return 2;
      case ErrorKind::Input: return 3;
      case ErrorKind::Resource: return 4;
      case ErrorKind::Internal: return 5;
    }
    return 5;
}

namespace
{

[[noreturn]] void
throwFormatted(ErrorKind kind, const char *fmt, va_list ap)
{
    char buf[1024];
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    throw HippoError(kind, buf);
}

} // namespace

void
throwUsageError(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    throwFormatted(ErrorKind::Usage, fmt, ap);
}

void
throwInputError(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    throwFormatted(ErrorKind::Input, fmt, ap);
}

void
throwResourceError(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    throwFormatted(ErrorKind::Resource, fmt, ap);
}

void
throwInternalError(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    throwFormatted(ErrorKind::Internal, fmt, ap);
}

} // namespace hippo::support
