/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * All stochastic components in the simulator (cache-eviction injection,
 * workload generators) draw from Rng instances seeded explicitly so
 * that every experiment is reproducible run-to-run.
 */

#ifndef HIPPO_SUPPORT_RANDOM_HH
#define HIPPO_SUPPORT_RANDOM_HH

#include <cstdint>

namespace hippo
{

/**
 * Derive the seed for sub-stream @p stream of a master @p seed with
 * one splitmix64 step: deterministic, platform-independent, and far
 * apart for adjacent streams. This is how every fan-out in the repo
 * (per-client YCSB streams, per-crash-point fault plans, per-shard
 * RNGs) turns one user-facing seed into independent per-worker
 * seeds, so results never depend on which thread runs which stream.
 */
uint64_t deriveSeed(uint64_t seed, uint64_t stream);

/**
 * xoshiro256** 1.0 generator (Blackman & Vigna), seeded via splitmix64.
 * Small, fast, and fully deterministic across platforms.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's method. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t nextRange(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability p. */
    bool chance(double p);

  private:
    uint64_t state_[4];
};

} // namespace hippo

#endif // HIPPO_SUPPORT_RANDOM_HH
