/**
 * @file
 * The HippoError taxonomy: recoverable errors thrown on untrusted
 * input or exhausted resources, in contrast to hippo_panic (internal
 * invariant violations, which still abort).
 *
 * Each kind maps to a distinct process exit code so scripted callers
 * of `hippoc` (and CI) can tell misuse, bad input, resource
 * exhaustion, and tool bugs apart:
 *
 *   0  success
 *   1  durability bugs found / remain (not an error)
 *   2  UsageError     — bad command line
 *   3  InputError     — malformed module / trace / workload input
 *   4  ResourceError  — pool exhausted, watchdog budget exceeded
 *   5  InternalError  — a caught invariant violation (tool bug)
 *
 * Library code throws; binaries catch at their top level and turn the
 * error into a diagnostic plus the matching exit code. Library code
 * that predates the taxonomy still calls hippo_fatal (exit 1) on
 * paths no untrusted input can reach.
 */

#ifndef HIPPO_SUPPORT_ERRORS_HH
#define HIPPO_SUPPORT_ERRORS_HH

#include <stdexcept>
#include <string>

namespace hippo::support
{

/** Error classes, ordered by exit code. */
enum class ErrorKind : uint8_t
{
    Usage,    ///< command-line misuse (exit 2)
    Input,    ///< malformed / hostile input (exit 3)
    Resource, ///< memory, pool, or time budget exhausted (exit 4)
    Internal, ///< caught internal invariant violation (exit 5)
};

const char *errorKindName(ErrorKind k);

/** Process exit code for @p k (see the file comment). */
int errorExitCode(ErrorKind k);

/** A recoverable, classified error. */
class HippoError : public std::runtime_error
{
  public:
    HippoError(ErrorKind kind, const std::string &message)
        : std::runtime_error(message), kind_(kind)
    {}

    ErrorKind kind() const { return kind_; }
    int exitCode() const { return errorExitCode(kind_); }

  private:
    ErrorKind kind_;
};

/// @name Throw helpers (printf-style formatting)
/// @{
[[noreturn]] void throwUsageError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
[[noreturn]] void throwInputError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
[[noreturn]] void throwResourceError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
[[noreturn]] void throwInternalError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
/// @}

} // namespace hippo::support

#endif // HIPPO_SUPPORT_ERRORS_HH
