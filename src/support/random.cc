#include "random.hh"

#include "logging.hh"

namespace hippo
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

uint64_t
deriveSeed(uint64_t seed, uint64_t stream)
{
    uint64_t x = seed ^ (stream * 0x9e3779b97f4a7c15ULL);
    return splitmix64(x);
}

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    hippo_assert(bound > 0, "nextBelow(0)");
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = (__uint128_t)next() * bound;
    uint64_t lo = (uint64_t)m;
    if (lo < bound) {
        uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            m = (__uint128_t)next() * bound;
            lo = (uint64_t)m;
        }
    }
    return (uint64_t)(m >> 64);
}

uint64_t
Rng::nextRange(uint64_t lo, uint64_t hi)
{
    hippo_assert(lo <= hi, "bad range");
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return (next() >> 11) * (1.0 / 9007199254740992.0);
}

bool
Rng::chance(double p)
{
    return nextDouble() < p;
}

} // namespace hippo
