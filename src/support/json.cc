#include "json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/strings.hh"

namespace hippo::json
{

void
Value::append(Value v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    arr_.push_back(std::move(v));
}

Value &
Value::operator[](const std::string &key)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    return obj_[key];
}

const Value *
Value::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
}

namespace
{

void
dumpString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if ((unsigned char)c < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
}

void
dumpNumber(std::string &out, double n)
{
    if (!std::isfinite(n)) {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out += "null";
        return;
    }
    double rounded = std::nearbyint(n);
    if (rounded == n && std::fabs(n) < 9.007199254740992e15) {
        out += format("%lld", (long long)rounded);
        return;
    }
    // %.17g round-trips any double.
    out += format("%.17g", n);
}

} // namespace

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append((size_t)indent * d, ' ');
    };

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        dumpNumber(out, num_);
        break;
      case Kind::String:
        dumpString(out, str_);
        break;
      case Kind::Array: {
        out += '[';
        bool first = true;
        for (const Value &v : arr_) {
            if (!first)
                out += ',';
            first = false;
            newline(depth + 1);
            v.dumpTo(out, indent, depth + 1);
        }
        if (!arr_.empty())
            newline(depth);
        out += ']';
        break;
      }
      case Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[key, v] : obj_) {
            if (!first)
                out += ',';
            first = false;
            newline(depth + 1);
            dumpString(out, key);
            out += indent > 0 ? ": " : ":";
            v.dumpTo(out, indent, depth + 1);
        }
        if (!obj_.empty())
            newline(depth);
        out += '}';
        break;
      }
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace
{

/** Recursive-descent JSON parser over a string view. */
class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {}

    bool
    run(Value &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after value");
        return true;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        if (error_ && error_->empty())
            *error_ = format("offset %zu: %s", pos_, msg.c_str());
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace((unsigned char)text_[pos_]))
            pos_++;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        pos_++;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("bad \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; i++) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= (unsigned)(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= (unsigned)(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= (unsigned)(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode the BMP code point (no surrogate
                // pairing; the metrics layer never emits them).
                if (code < 0x80) {
                    out += (char)code;
                } else if (code < 0x800) {
                    out += (char)(0xC0 | (code >> 6));
                    out += (char)(0x80 | (code & 0x3F));
                } else {
                    out += (char)(0xE0 | (code >> 12));
                    out += (char)(0x80 | ((code >> 6) & 0x3F));
                    out += (char)(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                return fail("bad escape character");
            }
        }
        if (pos_ >= text_.size())
            return fail("unterminated string");
        pos_++; // closing quote
        return true;
    }

    bool
    parseValue(Value &out, int depth)
    {
        if (depth > 200)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == 'n') {
            out = Value();
            return literal("null");
        }
        if (c == 't') {
            out = Value(true);
            return literal("true");
        }
        if (c == 'f') {
            out = Value(false);
            return literal("false");
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value(std::move(s));
            return true;
        }
        if (c == '[') {
            pos_++;
            out = Value::makeArray();
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                pos_++;
                return true;
            }
            while (true) {
                Value elem;
                skipWs();
                if (!parseValue(elem, depth + 1))
                    return false;
                out.array().push_back(std::move(elem));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    pos_++;
                    continue;
                }
                if (text_[pos_] == ']') {
                    pos_++;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '{') {
            pos_++;
            out = Value::makeObject();
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                pos_++;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':'");
                pos_++;
                skipWs();
                Value member;
                if (!parseValue(member, depth + 1))
                    return false;
                out.object()[key] = std::move(member);
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    pos_++;
                    continue;
                }
                if (text_[pos_] == '}') {
                    pos_++;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        // Number.
        size_t start = pos_;
        if (c == '-')
            pos_++;
        while (pos_ < text_.size() &&
               (std::isdigit((unsigned char)text_[pos_]) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            pos_++;
        if (pos_ == start)
            return fail("unexpected character");
        std::string num(text_.substr(start, pos_ - start));
        char *end = nullptr;
        double v = std::strtod(num.c_str(), &end);
        if (!end || *end != '\0')
            return fail("malformed number");
        out = Value(v);
        return true;
    }

    std::string_view text_;
    std::string *error_;
    size_t pos_ = 0;
};

} // namespace

bool
parse(std::string_view text, Value &out, std::string *error)
{
    if (error)
        error->clear();
    Parser p(text, error);
    return p.run(out);
}

} // namespace hippo::json
