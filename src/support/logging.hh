/**
 * @file
 * Error-reporting and status-message helpers in the gem5 tradition:
 * panic() for internal invariant violations, fatal() for user errors,
 * warn()/inform() for non-fatal status messages.
 */

#ifndef HIPPO_SUPPORT_LOGGING_HH
#define HIPPO_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <string>

namespace hippo
{

/** Print a formatted message and abort(); use for internal bugs. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

/** Print a formatted message and exit(1); use for user errors. */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

/** Print a non-fatal warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (useful in tests and benches). */
void setQuiet(bool quiet);

} // namespace hippo

#define hippo_panic(...) \
    ::hippo::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define hippo_fatal(...) \
    ::hippo::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Assert an internal invariant; always enabled (not tied to NDEBUG). */
#define hippo_assert(cond, ...)                                          \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::hippo::panicImpl(__FILE__, __LINE__,                       \
                               "assertion failed: %s", #cond);           \
        }                                                                \
    } while (0)

#endif // HIPPO_SUPPORT_LOGGING_HH
