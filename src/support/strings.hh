/**
 * @file
 * String helpers shared by the IR text parser, trace reader, and the
 * table printers in the benchmark harnesses.
 */

#ifndef HIPPO_SUPPORT_STRINGS_HH
#define HIPPO_SUPPORT_STRINGS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hippo
{

/** Split @p s on @p sep, keeping empty fields. */
std::vector<std::string> split(std::string_view s, char sep);

/** Split @p s on runs of whitespace, dropping empty fields. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view s);

/** True if @p s begins with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** True if @p s ends with @p suffix. */
bool endsWith(std::string_view s, std::string_view suffix);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Parse an unsigned decimal or 0x-prefixed hex integer.
 * @retval true on success (value stored in @p out).
 */
bool parseUint(std::string_view s, uint64_t &out);

/** Parse a signed decimal integer. @retval true on success. */
bool parseInt(std::string_view s, int64_t &out);

/** Human-readable byte count, e.g. "345.2 MB". */
std::string formatBytes(uint64_t bytes);

} // namespace hippo

#endif // HIPPO_SUPPORT_STRINGS_HH
