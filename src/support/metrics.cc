#include "metrics.hh"

#include <cmath>
#include <fstream>

#include "support/logging.hh"
#include "support/strings.hh"
#include "support/thread_pool.hh"

namespace hippo::support
{

const char *
metricKindName(MetricKind k)
{
    switch (k) {
      case MetricKind::Counter: return "counter";
      case MetricKind::DoubleSum: return "sum";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Timer: return "timer";
      case MetricKind::Histogram: return "hist";
    }
    hippo_panic("bad metric kind");
}

json::Value
Counter::toJson() const
{
    json::Value v = json::Value::makeObject();
    v["kind"] = metricKindName(kind());
    v["value"] = value();
    return v;
}

json::Value
DoubleSum::toJson() const
{
    json::Value v = json::Value::makeObject();
    v["kind"] = metricKindName(kind());
    v["value"] = value();
    return v;
}

json::Value
Gauge::toJson() const
{
    json::Value v = json::Value::makeObject();
    v["kind"] = metricKindName(kind());
    v["value"] = value();
    return v;
}

json::Value
Timer::toJson() const
{
    json::Value v = json::Value::makeObject();
    v["kind"] = metricKindName(kind());
    v["count"] = count();
    v["total_ns"] = totalNs();
    return v;
}

void
Histogram::observe(double v)
{
    uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed))
        ;
    // First observation seeds min and max; later ones CAS toward
    // the extremes. The n==0 seed races only against other
    // observations, which drive the same CAS loops, so the final
    // min/max are exact either way.
    if (n == 0) {
        min_.store(v, std::memory_order_relaxed);
        max_.store(v, std::memory_order_relaxed);
    }
    double mn = min_.load(std::memory_order_relaxed);
    while (v < mn && !min_.compare_exchange_weak(
                         mn, v, std::memory_order_relaxed))
        ;
    double mx = max_.load(std::memory_order_relaxed);
    while (v > mx && !max_.compare_exchange_weak(
                         mx, v, std::memory_order_relaxed))
        ;

    int bucket = 0;
    if (v > 1) {
        bucket = 1 + (int)std::floor(std::log2(v - 0.5));
        bucket = std::min(std::max(bucket, 1), numBuckets - 1);
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

double
Histogram::min() const
{
    return min_.load(std::memory_order_relaxed);
}

double
Histogram::max() const
{
    return max_.load(std::memory_order_relaxed);
}

double
Histogram::percentile(double q) const
{
    uint64_t n = count();
    if (!n)
        return 0;
    q = std::min(std::max(q, 0.0), 1.0);
    // Rank of the requested observation, 1-based: p0 is the first
    // observation, p100 the last.
    uint64_t target = (uint64_t)std::ceil(q * (double)n);
    if (target < 1)
        target = 1;
    uint64_t seen = 0;
    for (int i = 0; i < numBuckets; i++) {
        seen += buckets_[i].load(std::memory_order_relaxed);
        if (seen >= target)
            return i == 0 ? 1.0 : std::ldexp(1.0, i);
    }
    return std::ldexp(1.0, numBuckets - 1);
}

json::Value
Histogram::toJson() const
{
    json::Value v = json::Value::makeObject();
    v["kind"] = metricKindName(kind());
    v["count"] = count();
    v["sum"] = sum();
    v["min"] = min();
    v["max"] = max();
    v["p50"] = percentile(0.50);
    v["p95"] = percentile(0.95);
    v["p99"] = percentile(0.99);
    json::Value buckets = json::Value::makeArray();
    for (int i = 0; i < numBuckets; i++) {
        uint64_t n = buckets_[i].load(std::memory_order_relaxed);
        if (!n)
            continue;
        json::Value entry = json::Value::makeArray();
        entry.append(json::Value((uint64_t)i));
        entry.append(json::Value(n));
        buckets.append(std::move(entry));
    }
    v["buckets"] = std::move(buckets);
    return v;
}

void
Histogram::reset()
{
    count_.store(0);
    sum_.store(0);
    min_.store(0);
    max_.store(0);
    for (auto &b : buckets_)
        b.store(0);
}

template <typename T>
T &
MetricsRegistry::instrument(const std::string &path, MetricKind kind)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = metrics_.find(path);
    if (it == metrics_.end())
        it = metrics_.emplace(path, std::make_unique<T>()).first;
    hippo_assert(it->second->kind() == kind,
                 "metric '%s' re-registered as %s (was %s)",
                 path.c_str(), metricKindName(kind),
                 metricKindName(it->second->kind()));
    return static_cast<T &>(*it->second);
}

Counter &
MetricsRegistry::counter(const std::string &path)
{
    return instrument<Counter>(path, MetricKind::Counter);
}

DoubleSum &
MetricsRegistry::doubleSum(const std::string &path)
{
    return instrument<DoubleSum>(path, MetricKind::DoubleSum);
}

Gauge &
MetricsRegistry::gauge(const std::string &path)
{
    return instrument<Gauge>(path, MetricKind::Gauge);
}

Timer &
MetricsRegistry::timer(const std::string &path)
{
    return instrument<Timer>(path, MetricKind::Timer);
}

Histogram &
MetricsRegistry::histogram(const std::string &path)
{
    return instrument<Histogram>(path, MetricKind::Histogram);
}

const Metric *
MetricsRegistry::find(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = metrics_.find(path);
    return it == metrics_.end() ? nullptr : it->second.get();
}

size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return metrics_.size();
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[path, metric] : metrics_)
        metric->reset();
}

json::Value
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    json::Value root = json::Value::makeObject();
    for (const auto &[path, metric] : metrics_) {
        json::Value *node = &root;
        for (const std::string &part : split(path, '.'))
            node = &(*node)[part];
        *node = metric->toJson();
    }
    return root;
}

std::map<std::string, double>
MetricsRegistry::deterministicSnapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, double> out;
    for (const auto &[path, metric] : metrics_) {
        switch (metric->kind()) {
          case MetricKind::Counter:
            out[path] = (double)static_cast<const Counter &>(
                            *metric)
                            .value();
            break;
          case MetricKind::DoubleSum:
            out[path] =
                static_cast<const DoubleSum &>(*metric).value();
            break;
          case MetricKind::Histogram: {
            const auto &h =
                static_cast<const Histogram &>(*metric);
            out[path + ".count"] = (double)h.count();
            out[path + ".sum"] = h.sum();
            out[path + ".p50"] = h.percentile(0.50);
            out[path + ".p95"] = h.percentile(0.95);
            out[path + ".p99"] = h.percentile(0.99);
            break;
          }
          case MetricKind::Gauge:
          case MetricKind::Timer:
            break; // wall-clock / point-in-time: not deterministic
        }
    }
    return out;
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry reg;
    return reg;
}

json::Value
statsDocument(
    const MetricsRegistry &reg,
    const std::vector<std::pair<std::string, std::string>>
        &extraEnv)
{
    json::Value doc = json::Value::makeObject();
    doc["schema_version"] = json::Value((uint64_t)statsSchemaVersion);

    json::Value env = json::Value::makeObject();
#if defined(__clang__) || defined(__GNUC__)
    env["compiler"] = __VERSION__;
#else
    env["compiler"] = "unknown";
#endif
#ifdef NDEBUG
    env["assertions"] = false;
#else
    env["assertions"] = true;
#endif
#ifdef __linux__
    env["os"] = "linux";
#elif defined(__APPLE__)
    env["os"] = "darwin";
#else
    env["os"] = "other";
#endif
#if defined(__SANITIZE_ADDRESS__)
    env["sanitizer"] = "address";
#elif defined(__SANITIZE_THREAD__)
    env["sanitizer"] = "thread";
#else
    env["sanitizer"] = "none";
#endif
    env["pointer_bits"] = json::Value((uint64_t)(sizeof(void *) * 8));
    env["hardware_threads"] =
        json::Value((uint64_t)hardwareConcurrency());
    for (const auto &[key, value] : extraEnv)
        env[key] = value;
    doc["env"] = std::move(env);

    doc["metrics"] = reg.toJson();
    return doc;
}

bool
writeStatsJson(
    const std::string &path, const MetricsRegistry &reg,
    const std::vector<std::pair<std::string, std::string>>
        &extraEnv,
    std::string *error)
{
    std::ofstream out(path);
    if (!out) {
        if (error)
            *error = format("cannot open %s for writing",
                            path.c_str());
        return false;
    }
    out << statsDocument(reg, extraEnv).dump(2) << "\n";
    out.flush();
    if (!out) {
        if (error)
            *error = format("write to %s failed", path.c_str());
        return false;
    }
    return true;
}

} // namespace hippo::support
