/**
 * @file
 * A fixed-size worker pool for the embarrassingly parallel loops in
 * this repo — crash-state exploration replays one workload per crash
 * point, and the suite-wide fix->re-verify pipeline runs one full
 * Hippocrates pipeline per bug program. Both fan out over independent
 * Vm/PmPool instances (the threading contract is documented in
 * DESIGN.md: ir::Module is shared read-only, everything mutable is
 * per-worker), so the pool only needs index-range dispatch:
 *
 *   ThreadPool pool(jobs);
 *   pool.parallelForEach(0, n, [&](uint64_t i) { out[i] = work(i); });
 *
 * Guarantees:
 *  - results are deterministic as long as the callback writes only to
 *    its own index (items are claimed from an atomic counter, so
 *    *completion* order is arbitrary — never append, write by index);
 *  - the first exception thrown by any item is rethrown in the
 *    caller, and remaining undispatched items are abandoned;
 *  - a CancelToken cancels cooperatively: items already running
 *    finish, undispatched items never start.
 */

#ifndef HIPPO_SUPPORT_THREAD_POOL_HH
#define HIPPO_SUPPORT_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hippo::support
{

/** Host hardware concurrency, never less than 1. */
unsigned hardwareConcurrency();

/**
 * Resolve a user-facing `jobs` knob: 0 means "use every core",
 * anything else is taken literally (callers may further clamp to the
 * number of work items).
 */
unsigned resolveJobs(unsigned jobs);

/** Cooperative cancellation flag shared between a driver and a
 *  running parallelForEach. */
class CancelToken
{
  public:
    void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
    bool
    cancelled() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

    /** Re-arm the token (only while no batch is using it). */
    void reset() { cancelled_.store(false, std::memory_order_relaxed); }

  private:
    std::atomic<bool> cancelled_{false};
};

/**
 * Fixed worker pool. Workers are spawned once in the constructor and
 * joined in the destructor; each parallelForEach call dispatches one
 * batch and blocks until the batch drains.
 */
class ThreadPool
{
  public:
    /** @param workers Worker thread count; 0 = hardwareConcurrency(). */
    explicit ThreadPool(unsigned workers = 0);

    /** Joins all workers (any in-flight batch is completed first). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned workerCount() const { return (unsigned)workers_.size(); }

    /**
     * Run @p fn(i) for every i in [begin, end), distributed over the
     * workers, and block until every dispatched item returned. If any
     * item throws, the first exception (in completion order) is
     * rethrown here after the batch drains; remaining undispatched
     * items are skipped. If @p cancel is non-null and becomes
     * cancelled, undispatched items are skipped (no error).
     *
     * One batch runs at a time; concurrent calls serialize.
     */
    void parallelForEach(uint64_t begin, uint64_t end,
                         const std::function<void(uint64_t)> &fn,
                         CancelToken *cancel = nullptr);

    /**
     * Run every task in @p tasks and block until all of them returned.
     * Semantically equivalent to enqueueing each task individually,
     * but the whole vector is published as ONE batch: a single lock
     * acquisition and a single notify_all, instead of one of each per
     * task. This is the hot-path entry point for the shard router,
     * which dispatches one drain closure per shard every round —
     * see BM_ThreadPool_SubmitAll in bench_micro for the delta.
     *
     * Exception and cancellation semantics match parallelForEach.
     */
    void submitAll(const std::vector<std::function<void()>> &tasks,
                   CancelToken *cancel = nullptr);

  private:
    struct Batch
    {
        std::atomic<uint64_t> next{0};
        uint64_t end = 0;
        const std::function<void(uint64_t)> *fn = nullptr;
        /** Task-vector batches (submitAll); exclusive with fn. */
        const std::vector<std::function<void()>> *tasks = nullptr;
        CancelToken *cancel = nullptr;
        /** Internal early-stop on first exception. */
        CancelToken failed;
        std::exception_ptr firstError;
        uint64_t pending = 0; ///< items dispatched but not finished
        bool done = true;
    };

    void workerMain();
    /** Claim and run items of the current batch until it is drained.
     *  Called with @p lock held; drops it while running items. */
    void runBatchItems(std::unique_lock<std::mutex> &lock);
    /** Publish one batch (either fn over [begin,end) or a task
     *  vector), wait for it to drain, rethrow its first error. */
    void dispatchBatch(uint64_t begin, uint64_t end,
                       const std::function<void(uint64_t)> *fn,
                       const std::vector<std::function<void()>> *tasks,
                       CancelToken *cancel);

    std::mutex callersMu_; ///< serializes parallelForEach callers
    std::mutex mu_;
    std::condition_variable workCv_; ///< signals workers: batch ready
    std::condition_variable doneCv_; ///< signals caller: batch drained
    Batch batch_;
    uint64_t generation_ = 0; ///< bumps once per batch
    bool shutdown_ = false;
    std::vector<std::thread> workers_;
};

} // namespace hippo::support

#endif // HIPPO_SUPPORT_THREAD_POOL_HH
