/**
 * @file
 * A minimal JSON value type with a parser and serializer, built for
 * the metrics layer (stats files, committed bench baselines) so the
 * repo needs no external JSON dependency. Supports the full JSON
 * data model except that numbers are stored as doubles (exact for
 * the integer counters this repo emits, which stay below 2^53).
 */

#ifndef HIPPO_SUPPORT_JSON_HH
#define HIPPO_SUPPORT_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hippo::json
{

/** JSON value kinds. */
enum class Kind : uint8_t
{
    Null,
    Bool,
    Number,
    String,
    Array,
    Object,
};

/**
 * One JSON value. Objects preserve key order via std::map (sorted),
 * which keeps serialized output canonical: two structurally equal
 * values always dump to the same text.
 */
class Value
{
  public:
    Value() = default;
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double n) : kind_(Kind::Number), num_(n) {}
    Value(int n) : kind_(Kind::Number), num_(n) {}
    Value(uint64_t n) : kind_(Kind::Number), num_((double)n) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Value(const char *s) : kind_(Kind::String), str_(s) {}

    static Value makeArray() { return withKind(Kind::Array); }
    static Value makeObject() { return withKind(Kind::Object); }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool boolean() const { return bool_; }
    double number() const { return num_; }
    const std::string &str() const { return str_; }

    const std::vector<Value> &array() const { return arr_; }
    std::vector<Value> &array() { return arr_; }

    const std::map<std::string, Value> &object() const
    {
        return obj_;
    }
    std::map<std::string, Value> &object() { return obj_; }

    /** Append to an array value (converts a null to an array). */
    void append(Value v);

    /**
     * Member access on an object value (converts a null to an
     * object); creates the member as null if absent.
     */
    Value &operator[](const std::string &key);

    /** Member lookup; null when absent or not an object. */
    const Value *find(const std::string &key) const;

    /** Serialize. @p indent > 0 pretty-prints with that many
     *  spaces per level; 0 emits compact single-line output. */
    std::string dump(int indent = 0) const;

    bool operator==(const Value &o) const = default;

  private:
    static Value
    withKind(Kind k)
    {
        Value v;
        v.kind_ = k;
        return v;
    }

    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    std::vector<Value> arr_;
    std::map<std::string, Value> obj_;
};

/**
 * Parse JSON text. On failure returns false and, when @p error is
 * non-null, stores a message with the offending position.
 */
bool parse(std::string_view text, Value &out,
           std::string *error = nullptr);

} // namespace hippo::json

#endif // HIPPO_SUPPORT_JSON_HH
