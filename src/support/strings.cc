#include "strings.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace hippo
{

std::vector<std::string>
split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (true) {
        size_t next = s.find(sep, pos);
        if (next == std::string_view::npos) {
            out.emplace_back(s.substr(pos));
            break;
        }
        out.emplace_back(s.substr(pos, next - pos));
        pos = next + 1;
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && std::isspace((unsigned char)s[i]))
            i++;
        size_t start = i;
        while (i < s.size() && !std::isspace((unsigned char)s[i]))
            i++;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

std::string_view
trim(std::string_view s)
{
    size_t b = 0;
    while (b < s.size() && std::isspace((unsigned char)s[b]))
        b++;
    size_t e = s.size();
    while (e > b && std::isspace((unsigned char)s[e - 1]))
        e--;
    return s.substr(b, e - b);
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(n > 0 ? n : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

bool
parseUint(std::string_view s, uint64_t &out)
{
    s = trim(s);
    if (s.empty())
        return false;
    int base = 10;
    if (startsWith(s, "0x") || startsWith(s, "0X")) {
        base = 16;
        s.remove_prefix(2);
        if (s.empty())
            return false;
    }
    uint64_t v = 0;
    for (char c : s) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (base == 16 && c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return false;
        // Reject (rather than silently wrap) values past 2^64-1, so
        // oversized constants in hostile inputs surface as parse
        // errors instead of aliasing small numbers.
        if (v > (~0ULL - (uint64_t)digit) / (uint64_t)base)
            return false;
        v = v * (uint64_t)base + (uint64_t)digit;
    }
    out = v;
    return true;
}

bool
parseInt(std::string_view s, int64_t &out)
{
    s = trim(s);
    bool neg = false;
    if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
        neg = s[0] == '-';
        s.remove_prefix(1);
    }
    uint64_t mag;
    if (!parseUint(s, mag))
        return false;
    out = neg ? -(int64_t)mag : (int64_t)mag;
    return true;
}

std::string
formatBytes(uint64_t bytes)
{
    const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    double v = (double)bytes;
    int u = 0;
    while (v >= 1024 && u < 4) {
        v /= 1024;
        u++;
    }
    return format("%.1f %s", v, units[u]);
}

} // namespace hippo
