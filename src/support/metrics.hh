/**
 * @file
 * hippo_metrics: the pipeline-wide measurement substrate. Every
 * stage of the repro (VM, PM pool, detector, crash explorer,
 * Andersen analysis, fixer, benches) records into a hierarchical
 * registry of cheap thread-safe instruments:
 *
 *  - Counter     monotonically increasing uint64 (deterministic:
 *                byte-identical at every `jobs` setting, because
 *                increments are order-independent sums);
 *  - DoubleSum   accumulating double for deterministic simulated
 *                quantities (sim ns, throughput) — compared by the
 *                CI gate like a counter, modulo fp association;
 *  - Gauge       last-written double (peak RSS and other
 *                point-in-time probes; informational only);
 *  - Timer       wall-clock accumulation (count + total ns) with a
 *                ScopedTimer RAII helper; informational only —
 *                never compared against baselines by default;
 *  - Histogram   count/sum/min/max plus sparse log2 buckets, for
 *                size distributions (points-to set sizes, replay
 *                step counts).
 *
 * Paths are '.'-separated ("vm.flush.clwb"); the JSON serializer
 * nests them into the per-phase tree documented in docs/FORMATS.md
 * §5. Instruments are created on first use and live as long as the
 * registry; references returned by the accessors stay valid until
 * the registry is destroyed (reset() zeroes values in place, so
 * held references survive it).
 */

#ifndef HIPPO_SUPPORT_METRICS_HH
#define HIPPO_SUPPORT_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/json.hh"
#include "support/stopwatch.hh"

namespace hippo::support
{

/** Instrument flavors (the "kind" member of every JSON leaf). */
enum class MetricKind : uint8_t
{
    Counter,
    DoubleSum,
    Gauge,
    Timer,
    Histogram,
};

const char *metricKindName(MetricKind k);

/** Base class: every instrument serializes and resets itself. */
class Metric
{
  public:
    explicit Metric(MetricKind kind) : kind_(kind) {}
    virtual ~Metric() = default;

    MetricKind kind() const { return kind_; }

    /** True when the CI regression gate compares this instrument
     *  against a committed baseline (counters, sums, histograms —
     *  the deterministic ones). */
    bool
    comparable() const
    {
        return kind_ == MetricKind::Counter ||
               kind_ == MetricKind::DoubleSum ||
               kind_ == MetricKind::Histogram;
    }

    virtual json::Value toJson() const = 0;
    virtual void reset() = 0;

  private:
    MetricKind kind_;
};

/** Monotonic uint64 counter. */
class Counter : public Metric
{
  public:
    Counter() : Metric(MetricKind::Counter) {}

    void
    inc(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    json::Value toJson() const override;
    void reset() override { value_.store(0); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Accumulating double (for deterministic simulated quantities). */
class DoubleSum : public Metric
{
  public:
    DoubleSum() : Metric(MetricKind::DoubleSum) {}

    void
    add(double v)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(
            cur, cur + v, std::memory_order_relaxed))
            ;
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    json::Value toJson() const override;
    void reset() override { value_.store(0); }

  private:
    std::atomic<double> value_{0};
};

/** Last-written double (point-in-time probes; informational). */
class Gauge : public Metric
{
  public:
    Gauge() : Metric(MetricKind::Gauge) {}

    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    /** Keep the maximum of the current and @p v (peak trackers). */
    void
    setMax(double v)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (cur < v &&
               !value_.compare_exchange_weak(
                   cur, v, std::memory_order_relaxed))
            ;
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    json::Value toJson() const override;
    void reset() override { value_.store(0); }

  private:
    std::atomic<double> value_{0};
};

/** Wall-clock accumulator: number of timed spans and total ns. */
class Timer : public Metric
{
  public:
    Timer() : Metric(MetricKind::Timer) {}

    void
    addNanos(uint64_t ns)
    {
        count_.fetch_add(1, std::memory_order_relaxed);
        totalNs_.fetch_add(ns, std::memory_order_relaxed);
    }

    uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    uint64_t
    totalNs() const
    {
        return totalNs_.load(std::memory_order_relaxed);
    }

    json::Value toJson() const override;

    void
    reset() override
    {
        count_.store(0);
        totalNs_.store(0);
    }

  private:
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> totalNs_{0};
};

/** RAII span: charges the enclosed wall time to a Timer. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Timer &timer) : timer_(timer) {}

    ~ScopedTimer()
    {
        timer_.addNanos(
            (uint64_t)(watch_.elapsedSeconds() * 1e9));
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Timer &timer_;
    Stopwatch watch_;
};

/**
 * count/sum/min/max plus sparse power-of-two buckets. Bucket i
 * counts observations in (2^(i-1), 2^i] (bucket 0: values <= 1).
 * All fields are order-independent aggregates, so histograms are
 * deterministic across `jobs` settings for deterministic inputs.
 */
class Histogram : public Metric
{
  public:
    static constexpr int numBuckets = 64;

    Histogram() : Metric(MetricKind::Histogram) {}

    void observe(double v);

    uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    double min() const;
    double max() const;

    /**
     * Quantile estimate with fixed log-bucket resolution: the upper
     * bound of the bucket holding the ceil(q*count)-th observation
     * (bucket 0 -> 1.0, bucket i -> 2^i). Because the bounds are
     * fixed and the rank is computed from order-independent bucket
     * counts, the result is a deterministic, baseline-comparable
     * value — not a wall-clock measurement — so p50/p95/p99 of the
     * simulated per-op latency distribution can be gated by
     * bench_check like any counter. Returns 0 on an empty histogram;
     * @p q is clamped to [0, 1].
     */
    double percentile(double q) const;

    json::Value toJson() const override;
    void reset() override;

  private:
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0};
    std::atomic<double> min_{0};
    std::atomic<double> max_{0};
    std::atomic<uint64_t> buckets_[numBuckets] = {};
};

/**
 * The hierarchical instrument registry. Accessors create the
 * instrument on first use (under a mutex) and return a stable
 * reference; the instruments themselves are lock-free. Mixing
 * kinds at one path is a fatal error.
 *
 * `global()` is the process-wide registry the pipeline stages
 * record into; tests build private registries for isolation.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &path);
    DoubleSum &doubleSum(const std::string &path);
    Gauge &gauge(const std::string &path);
    Timer &timer(const std::string &path);
    Histogram &histogram(const std::string &path);

    /** Instrument at @p path, or null when absent. */
    const Metric *find(const std::string &path) const;

    /** Number of registered instruments. */
    size_t size() const;

    /** Zero every instrument in place (references stay valid). */
    void reset();

    /**
     * Serialize to the nested per-phase tree: each '.'-separated
     * path component becomes an object level, each instrument a
     * leaf object carrying a "kind" member.
     */
    json::Value toJson() const;

    /**
     * Flat view of the deterministic (comparable) instruments:
     * counters and sums map path -> value, histograms contribute
     * "<path>.count" and "<path>.sum". This is what the
     * determinism tests compare across `jobs` settings.
     */
    std::map<std::string, double> deterministicSnapshot() const;

    /** The process-wide registry. */
    static MetricsRegistry &global();

  private:
    template <typename T>
    T &instrument(const std::string &path, MetricKind kind);

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Metric>> metrics_;
};

/**
 * The stats-file schema version (docs/FORMATS.md §5). Bump when a
 * serialized field changes meaning; bench_check refuses to compare
 * files with mismatched versions.
 *
 * v2: the fault-injection counter families (pmem .fault.*,
 * explorer.fault.* / explorer.degraded.*, fixer.degraded.*,
 * vm.watchdog.*) joined the tree, and `recovered` values from
 * unverified crash points no longer feed the explorer recovery
 * aggregates — v1 baselines that gated those aggregates are not
 * comparable and must be regenerated.
 *
 * v2 -> v3: the verified flush/fence optimizer landed (fixer.opt.*,
 * fixer.clean.*, fig4.opt.*, flushopt.* families) and the fig4
 * bench grew an optimized-Redis leg, shifting its flush/fence
 * counters — v2 baselines are not comparable and were regenerated.
 *
 * v3 -> v4: histograms now export deterministic log-bucket
 * percentiles (p50/p95/p99 in both the JSON leaf and the
 * deterministic snapshot), the sharded-execution counter families
 * (shard.*, router.*, ycsb.latency.*, shardscale.*) joined the
 * tree, and the fig4 bench grew a sharded leg — v3 baselines lack
 * the new histogram leaves and were regenerated.
 *
 * v4 -> v5: the thread model landed: the scheduler counters
 * (vm.sched.*), the interleaving-bounded exploration families
 * (explorer.sched.*, interleave.*), and the
 * explorer.wallclock.retries gauge joined the tree, and wall-clock-
 * cut recovery attempts no longer feed explorer.recovery.steps (they
 * are retried under a deterministic step cap instead) — v4 baselines
 * predate those leaves and were regenerated.
 */
constexpr int statsSchemaVersion = 5;

/**
 * Assemble the full stats document: schema version, the build/host
 * environment block, optional caller-provided env entries, and the
 * registry's metric tree.
 */
json::Value statsDocument(
    const MetricsRegistry &reg,
    const std::vector<std::pair<std::string, std::string>>
        &extraEnv = {});

/**
 * Write the stats document to @p path (pretty-printed, trailing
 * newline). @retval false (with @p error set) when the file cannot
 * be written.
 */
bool writeStatsJson(
    const std::string &path, const MetricsRegistry &reg,
    const std::vector<std::pair<std::string, std::string>>
        &extraEnv = {},
    std::string *error = nullptr);

} // namespace hippo::support

#endif // HIPPO_SUPPORT_METRICS_HH
