#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace hippo
{

namespace
{
// Atomic so worker threads may warn() while a driver toggles
// quiet mode; this is the library's only mutable global.
std::atomic<bool> quietMode{false};
} // namespace

void
setQuiet(bool quiet)
{
    quietMode.store(quiet, std::memory_order_relaxed);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietMode)
        return;
    std::fprintf(stderr, "warn: ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
}

void
inform(const char *fmt, ...)
{
    if (quietMode)
        return;
    std::fprintf(stderr, "info: ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
}

} // namespace hippo
