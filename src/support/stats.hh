/**
 * @file
 * Small descriptive-statistics helpers used by the benchmark harnesses
 * (Fig. 4 reports means with 95% confidence intervals over 20 trials).
 */

#ifndef HIPPO_SUPPORT_STATS_HH
#define HIPPO_SUPPORT_STATS_HH

#include <cstddef>
#include <vector>

namespace hippo
{

/** Accumulates samples and reports mean / stddev / 95% CI half-width. */
class SampleStats
{
  public:
    /** Add one sample. */
    void add(double v) { samples_.push_back(v); }

    /** Number of samples so far. */
    size_t count() const { return samples_.size(); }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Sample standard deviation (0 when fewer than 2 samples). */
    double stddev() const;

    /**
     * Half-width of the 95% confidence interval of the mean, using
     * Student's t critical values for small n.
     */
    double ci95() const;

    /** Smallest sample (0 when empty). */
    double min() const;

    /** Largest sample (0 when empty). */
    double max() const;

    /** Access raw samples. */
    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
};

} // namespace hippo

#endif // HIPPO_SUPPORT_STATS_HH
