#include "stopwatch.hh"

#include <sys/resource.h>

#include <cstdio>
#include <cstring>

namespace hippo
{

double
Stopwatch::elapsedSeconds() const
{
    auto d = Clock::now() - start_;
    return std::chrono::duration<double>(d).count();
}

uint64_t
peakRssBytes()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // ru_maxrss is in kilobytes on Linux.
    return (uint64_t)ru.ru_maxrss * 1024;
}

uint64_t
currentRssBytes()
{
    FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0;
    long pages_total = 0, pages_rss = 0;
    int n = std::fscanf(f, "%ld %ld", &pages_total, &pages_rss);
    std::fclose(f);
    if (n != 2)
        return 0;
    return (uint64_t)pages_rss * 4096;
}

} // namespace hippo
