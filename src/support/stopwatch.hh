/**
 * @file
 * Wall-clock timing and peak-memory probes for the offline-overhead
 * experiment (Fig. 5 reports per-target time and memory of running
 * Hippocrates).
 */

#ifndef HIPPO_SUPPORT_STOPWATCH_HH
#define HIPPO_SUPPORT_STOPWATCH_HH

#include <chrono>
#include <cstdint>

namespace hippo
{

/** Simple monotonic wall-clock stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or last reset(). */
    double elapsedSeconds() const;

    /** Elapsed milliseconds since construction or last reset(). */
    double elapsedMillis() const { return elapsedSeconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/** Peak resident-set size of this process in bytes (0 if unknown). */
uint64_t peakRssBytes();

/** Current resident-set size of this process in bytes (0 if unknown). */
uint64_t currentRssBytes();

} // namespace hippo

#endif // HIPPO_SUPPORT_STOPWATCH_HH
