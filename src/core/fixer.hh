/**
 * @file
 * Hippocrates: the automated PM durability-bug fixer (paper §4).
 *
 * Pipeline (Fig. 2):
 *   Step 1 — ingest the bug finder's trace + bug report;
 *   Step 2 — locate each buggy store in the PMIR module;
 *   Step 3 — compute fixes in three phases:
 *              (1) simplest intraprocedural flush/fence fixes,
 *              (2) fix reduction (merge redundant flushes/fences),
 *              (3) hoisting: convert intraprocedural fixes into
 *                  interprocedural persistent subprogram
 *                  transformations where the alias-score heuristic
 *                  says the fix would otherwise hit volatile data;
 *   Step 4 — apply the fixes and re-verify the module.
 *
 * Every transformation only *adds* flushes, fences, and function
 * clones, the operations proven safe by Theorems 1–4 ("do no harm").
 */

#ifndef HIPPO_CORE_FIXER_HH
#define HIPPO_CORE_FIXER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/alias_scorer.hh"
#include "analysis/durability_checker.hh"
#include "ir/module.hh"
#include "pmcheck/crash_explorer.hh"
#include "pmcheck/detector.hh"
#include "trace/trace.hh"
#include "vm/vm.hh"

namespace hippo::core
{

/** Name of the synthesized ranged-flush helper (pmem_flush analog). */
constexpr const char *flushRangeHelperName = "__hippo_flush_range";

/** Suffix appended to persistent subprogram clones. */
constexpr const char *persistentCloneSuffix = "_PM";

/** Fixer configuration. */
struct FixerConfig
{
    /** Phase 3 on/off: off yields intraprocedural-only fixes (the
     *  RedisH-intra configuration of §6.3). */
    bool enableHoisting = true;

    /** Phase 2 on/off (ablation only; always safe to disable). */
    bool enableReduction = true;

    /** Which alias information drives the heuristic (§6.1). */
    analysis::AaMode aaMode = analysis::AaMode::FullAA;

    ir::FlushKind flushKind = ir::FlushKind::Clwb;
    ir::FenceKind fenceKind = ir::FenceKind::Sfence;

    /**
     * Suite-level fan-out: how many independent bug programs the
     * batch drivers (apps::evaluateCases, the effectiveness benches,
     * `hippoc --jobs`) detect/fix/re-verify concurrently. The Fixer
     * itself stays single-threaded per module — it mutates it.
     * 0 = one worker per hardware thread.
     */
    unsigned jobs = 0;

    /**
     * Static pre-filter (not owned; may be null): when set,
     * verifyFixed() aims crash exploration at the durability points
     * the static checker flagged, by seeding
     * CrashExplorerConfig::priorityDurLabels from the report's
     * candidate labels when the caller left that list empty.
     */
    const analysis::StaticReport *staticReport = nullptr;

    /**
     * Adversarial verification (hippoc --chaos): a torn-store fault
     * plan and watchdog budgets forwarded into verifyFixed()'s crash
     * exploration whenever the caller's explorer config leaves them
     * unset. Crash points whose recovery the explorer's degradation
     * ladder gives up on surface as `unverified` outcomes and count
     * under "fixer.degraded.*".
     */
    pmem::FaultPlan faults;
    uint64_t stepBudget = 0;   ///< recovery instruction cap (0 = off)
    uint64_t heapBudget = 0;   ///< recovery volatile-heap cap (0 = off)
    uint64_t timeBudgetMs = 0; ///< recovery wall-clock cap (0 = off)

    /**
     * Interpreter engine for verifyFixed()'s crash exploration,
     * forwarded when the caller's explorer config leaves it Auto.
     * Exploration results are byte-identical across engines.
     */
    vm::VmEngine vmEngine = vm::VmEngine::Auto;

    bool verbose = false;
};

/** How a fix was realized. */
enum class FixKind : uint8_t
{
    IntraFlush,
    IntraFence,
    IntraFlushFence,
    Interprocedural,
    /** Cross-thread repair: flush of the published payload plus a
     *  fence inserted immediately *before* the release-ordered
     *  atomic publication (add-only, so still do-no-harm). */
    CrossPublish,
};

const char *fixKindName(FixKind k);

/** One applied fix (after reduction and hoisting). */
struct AppliedFix
{
    FixKind kind = FixKind::IntraFlush;
    std::string function;     ///< function holding the anchor
    uint32_t anchorInstrId = 0;
    int hoistLevels = 0;      ///< 0 = intra; N = call-site N frames up
    std::string clonedSubprogram; ///< top clone name (interprocedural)
    std::vector<size_t> bugIndexes; ///< report bugs covered
    uint32_t flushesInserted = 0;
    uint32_t fencesInserted = 0;

    std::string str() const;
};

/** Aggregate result of a Fixer::fix run. */
struct FixSummary
{
    std::vector<AppliedFix> fixes;
    size_t bugsFixed = 0;
    size_t fixesPlanned = 0;        ///< after phase 1
    size_t fixesAfterReduction = 0; ///< after phase 2
    uint32_t flushesInserted = 0;
    uint32_t fencesInserted = 0;
    uint32_t functionsCloned = 0;
    size_t irInstrsBefore = 0;
    size_t irInstrsAfter = 0;
    double elapsedSeconds = 0;
    uint64_t peakRssBytes = 0;
    std::vector<std::string> verifierProblems;

    /**
     * Accumulate the fix census (bugs, fixes planned / after
     * reduction / applied, intra vs. interprocedural split, inserted
     * flushes and fences, clones, IR growth) into @p reg under
     * "<prefix>.", plus the wall-clock run timer and peak-RSS gauge.
     */
    void exportMetrics(support::MetricsRegistry &reg,
                       const std::string &prefix = "fixer") const;

    size_t
    interproceduralCount() const
    {
        size_t n = 0;
        for (const auto &f : fixes)
            n += f.kind == FixKind::Interprocedural;
        return n;
    }

    size_t
    intraproceduralCount() const
    {
        return fixes.size() - interproceduralCount();
    }

    /** Fixes hoisted exactly @p levels call frames up. */
    size_t hoistedAtLevel(int levels) const;

    std::string str() const;
};

/**
 * The Hippocrates fixer. Mutates the module it is given; run the
 * bug finder again on the result to confirm all bugs are gone (§6.1).
 */
class Fixer
{
  public:
    Fixer(ir::Module *module, FixerConfig cfg = {});

    /**
     * Fix every bug in @p report.
     *
     * @param report Bug report from pmcheck::analyze.
     * @param trace The trace the report was produced from.
     * @param dyn Dynamic points-to table (required for Trace-AA).
     */
    FixSummary fix(const pmcheck::Report &report,
                   const trace::Trace &trace,
                   const vm::DynPointsTo *dyn = nullptr);

    /**
     * Step 4's "re-verify" half (paper §6.1), as crash exploration:
     * run the crash explorer over the (repaired) module — one master
     * execution, recovery per crash point via the snapshot engine.
     * A zero @p vc.jobs inherits the fixer's jobs setting. Counters
     * land under "fixer.verify.*" on top of the explorer's own.
     */
    pmcheck::ExplorationResult
    verifyFixed(pmcheck::CrashExplorerConfig vc) const;

  private:
    struct PlannedFix;
    class Impl;

    ir::Module *module_;
    FixerConfig cfg_;
};

} // namespace hippo::core

#endif // HIPPO_CORE_FIXER_HH
