/**
 * @file
 * Source-level patch rendering. §5.2 of the paper argues that
 * mapping Hippocrates's fixes back to source is easy precisely
 * because the fixes are so simple — inserted flushes, inserted
 * fences, and duplicated functions. This module renders a
 * FixSummary as a human-readable patch plan, each hunk anchored to
 * the `!loc` source position of its anchor instruction, suitable
 * for pasting into a code review.
 */

#ifndef HIPPO_CORE_PATCH_WRITER_HH
#define HIPPO_CORE_PATCH_WRITER_HH

#include <string>

#include "core/fixer.hh"

namespace hippo::core
{

/**
 * Render @p summary (produced by Fixer::fix on @p m) as a
 * source-level patch plan.
 */
std::string renderPatchPlan(const ir::Module &m,
                            const FixSummary &summary);

} // namespace hippo::core

#endif // HIPPO_CORE_PATCH_WRITER_HH
