#include "core/patch_writer.hh"

#include <set>
#include <sstream>

#include "ir/module.hh"
#include "ir/printer.hh"
#include "support/strings.hh"

namespace hippo::core
{

namespace
{

const ir::Instruction *
findAnchor(const ir::Module &m, const AppliedFix &fix)
{
    const ir::Function *f = m.findFunction(fix.function);
    return f ? f->findInstr(fix.anchorInstrId) : nullptr;
}

std::string
locOf(const ir::Instruction *instr)
{
    if (!instr || !instr->loc().valid())
        return "<unknown location>";
    return instr->loc().str();
}

/**
 * Describe the flushes Hippocrates placed across the whole cloned
 * subprogram (the top clone plus nested persistent clones it calls).
 */
void
describeCloneFlushes(const ir::Function *clone, std::ostringstream &os,
                     std::set<const ir::Function *> &visited)
{
    if (!visited.insert(clone).second)
        return;
    for (const auto &bb : clone->blocks()) {
        for (const auto &instr : *bb) {
            if (instr->op() == ir::Opcode::Flush) {
                os << "      + CLWB after the PM store at "
                   << instr->loc().str() << " (in @"
                   << clone->name() << ")\n";
            } else if (instr->op() != ir::Opcode::Call) {
                continue;
            } else if (instr->callee()->name() ==
                       flushRangeHelperName) {
                os << "      + ranged flush after the PM copy at "
                   << instr->loc().str() << " (in @"
                   << clone->name() << ")\n";
            } else if (instr->callee()->name().find(
                           persistentCloneSuffix) !=
                       std::string::npos) {
                describeCloneFlushes(instr->callee(), os, visited);
            }
        }
    }
}

} // namespace

std::string
renderPatchPlan(const ir::Module &m, const FixSummary &summary)
{
    std::ostringstream os;
    os << format("Hippocrates patch plan: %zu fix(es) covering %zu "
                 "bug(s); +%u flush(es), +%u fence(s), %u "
                 "persistent subprogram clone(s)\n\n",
                 summary.fixes.size(), summary.bugsFixed,
                 summary.flushesInserted, summary.fencesInserted,
                 summary.functionsCloned);

    int n = 0;
    for (const AppliedFix &fix : summary.fixes) {
        const ir::Instruction *anchor = findAnchor(m, fix);
        os << format("[%d] %s\n", ++n, fixKindName(fix.kind));
        switch (fix.kind) {
          case FixKind::IntraFlush:
            os << "    " << locOf(anchor) << " in " << fix.function
               << "(): insert CLWB for the stored address right "
                  "after the store\n";
            break;
          case FixKind::IntraFence:
            os << "    " << locOf(anchor) << " in " << fix.function
               << "(): insert SFENCE right after the existing "
                  "cache-line flush\n";
            break;
          case FixKind::IntraFlushFence:
            os << "    " << locOf(anchor) << " in " << fix.function
               << "(): insert CLWB for the stored address, then "
                  "SFENCE\n";
            break;
          case FixKind::Interprocedural: {
            os << "    " << locOf(anchor) << " in " << fix.function
               << "(): redirect the call to the persistent "
                  "subprogram @"
               << fix.clonedSubprogram << " ("
               << fix.hoistLevels
               << " frame(s) above the PM modification)\n";
            if (fix.fencesInserted)
                os << "    and insert SFENCE after the call site\n";
            if (const ir::Function *clone =
                    m.findFunction(fix.clonedSubprogram)) {
                os << "    @" << fix.clonedSubprogram
                   << " duplicates @"
                   << fix.clonedSubprogram.substr(
                          0, fix.clonedSubprogram.rfind(
                                 persistentCloneSuffix))
                   << " with durability added:\n";
                std::set<const ir::Function *> visited;
                describeCloneFlushes(clone, os, visited);
            }
            break;
          }
          case FixKind::CrossPublish:
            os << "    " << locOf(anchor) << " in " << fix.function
               << "(): insert CLWB for the published payload, then "
                  "SFENCE, immediately before the release-ordered "
                  "atomic publication\n";
            break;
        }
        os << format("    (covers %zu reported bug(s))\n\n",
                     fix.bugIndexes.size());
    }
    return os.str();
}

} // namespace hippo::core
