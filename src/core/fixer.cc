#include "core/fixer.hh"

#include <algorithm>
#include <limits>
#include <set>

#include "analysis/call_graph.hh"
#include "analysis/points_to.hh"
#include "ir/builder.hh"
#include "pmem/pm_pool.hh"
#include "ir/cloner.hh"
#include "ir/verifier.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/stopwatch.hh"
#include "support/strings.hh"

namespace hippo::core
{

const char *
fixKindName(FixKind k)
{
    switch (k) {
      case FixKind::IntraFlush: return "intra-flush";
      case FixKind::IntraFence: return "intra-fence";
      case FixKind::IntraFlushFence: return "intra-flush+fence";
      case FixKind::Interprocedural: return "interprocedural";
      case FixKind::CrossPublish: return "cross-publish";
    }
    return "?";
}

std::string
AppliedFix::str() const
{
    std::string s = format("%s in @%s at %%v%u", fixKindName(kind),
                           function.c_str(), anchorInstrId);
    if (kind == FixKind::Interprocedural) {
        s += format(" (subprogram @%s, %d frame(s) above the store)",
                    clonedSubprogram.c_str(), hoistLevels);
    }
    s += format(" [%zu bug(s), +%u flush, +%u fence]",
                bugIndexes.size(), flushesInserted, fencesInserted);
    return s;
}

size_t
FixSummary::hoistedAtLevel(int levels) const
{
    size_t n = 0;
    for (const auto &f : fixes) {
        n += f.kind == FixKind::Interprocedural &&
             f.hoistLevels == levels;
    }
    return n;
}

std::string
FixSummary::str() const
{
    return format(
        "fixed %zu bug(s) with %zu fix(es) (%zu intra, %zu inter); "
        "+%u flush(es), +%u fence(s), %u clone(s); IR %zu -> %zu "
        "instrs; %.3fs",
        bugsFixed, fixes.size(), intraproceduralCount(),
        interproceduralCount(), flushesInserted, fencesInserted,
        functionsCloned, irInstrsBefore, irInstrsAfter,
        elapsedSeconds);
}

void
FixSummary::exportMetrics(support::MetricsRegistry &reg,
                          const std::string &prefix) const
{
    reg.counter(prefix + ".runs").inc();
    reg.counter(prefix + ".bugs").inc(bugsFixed);
    reg.counter(prefix + ".fixes_planned").inc(fixesPlanned);
    reg.counter(prefix + ".fixes_after_reduction")
        .inc(fixesAfterReduction);
    reg.counter(prefix + ".fixes_applied").inc(fixes.size());
    reg.counter(prefix + ".fixes_intra").inc(intraproceduralCount());
    reg.counter(prefix + ".fixes_inter").inc(interproceduralCount());
    reg.counter(prefix + ".flushes_inserted").inc(flushesInserted);
    reg.counter(prefix + ".fences_inserted").inc(fencesInserted);
    reg.counter(prefix + ".functions_cloned").inc(functionsCloned);
    reg.counter(prefix + ".ir_instrs_added")
        .inc(irInstrsAfter - irInstrsBefore);
    reg.counter(prefix + ".verifier_problems")
        .inc(verifierProblems.size());
    reg.timer(prefix + ".run_ns")
        .addNanos((uint64_t)(elapsedSeconds * 1e9));
    reg.gauge(prefix + ".peak_rss_bytes").setMax((double)peakRssBytes);
}

/** One reduced fix plan (possibly covering several bugs). */
struct Fixer::PlannedFix
{
    ir::Instruction *anchor = nullptr; ///< store/memcpy (flush) or
                                       ///< flush instr (fence-only)
    bool addFlush = false;
    /** Unconditional fence (missing-fence plans, anchored at the
     *  existing flush). Flush plans decide fence need per locus. */
    bool addFence = false;
    /** Cross-thread plan anchored at the publishing atomic: insert
     *  *before* the anchor and flush @ref flushPtr (the buggy
     *  store's pointer), not the anchor's own operand. */
    bool beforeAnchor = false;
    ir::Value *flushPtr = nullptr;
    std::vector<size_t> bugs;
    const pmcheck::Bug *rep = nullptr; ///< representative bug

    /// Hoisting decision (phase 3)
    ir::Instruction *interCallSite = nullptr;
    int hoistLevels = 0;
};

/** Internal pipeline state for one fix() run. */
class Fixer::Impl
{
  public:
    Impl(ir::Module *m, const FixerConfig &cfg,
         const pmcheck::Report &report, const trace::Trace &trace,
         const vm::DynPointsTo *dyn)
        : module_(m), cfg_(cfg), report_(report), pts_(*m),
          callGraph_(*m),
          scorer_(pts_, cfg.aaMode, trace, dyn)
    {}

    FixSummary
    run()
    {
        Stopwatch watch;
        FixSummary summary;
        summary.irInstrsBefore = module_->instrCount();

        collectBugStores();
        planIntraFixes();   // Phase 1
        summary.fixesPlanned = plans_.size();
        reduceFixes();      // Phase 2
        summary.fixesAfterReduction = plans_.size();
        if (cfg_.enableHoisting)
            hoistFixes();   // Phase 3
        applyFixes(summary);

        // Deterministic output order regardless of pointer values:
        // interprocedural fixes first, then by (function, anchor).
        std::sort(summary.fixes.begin(), summary.fixes.end(),
                  [](const AppliedFix &a, const AppliedFix &b) {
                      bool ai = a.kind == FixKind::Interprocedural;
                      bool bi = b.kind == FixKind::Interprocedural;
                      if (ai != bi)
                          return ai;
                      if (a.function != b.function)
                          return a.function < b.function;
                      return a.anchorInstrId < b.anchorInstrId;
                  });

        summary.bugsFixed = report_.bugs.size();
        summary.functionsCloned = (uint32_t)cloneOf_.size();
        summary.irInstrsAfter = module_->instrCount();
        summary.verifierProblems = ir::verifyModule(*module_);
        summary.elapsedSeconds = watch.elapsedSeconds();
        summary.peakRssBytes = peakRssBytes();
        return summary;
    }

  private:
    /// @name Step 2: bug localization
    /// @{
    ir::Instruction *
    resolveInstr(const trace::StackFrame &frame) const
    {
        ir::Function *f = module_->findFunction(frame.function);
        if (!f)
            return nullptr;
        return f->findInstr(frame.instrId);
    }

    void
    collectBugStores()
    {
        for (const pmcheck::Bug &bug : report_.bugs) {
            if (bug.storeStack.empty())
                continue;
            if (ir::Instruction *instr =
                    resolveInstr(bug.storeStack[0]))
                bugStores_.insert(instr);
        }
    }
    /// @}

    /// @name Phase 1: intraprocedural fixes
    /// @{
    /** Does @p a execute before @p b within their shared block? */
    static bool
    precedesInBlock(const ir::Instruction *a, const ir::Instruction *b)
    {
        for (const auto &owned : *a->parent()) {
            if (owned.get() == a)
                return true;
            if (owned.get() == b)
                return false;
        }
        return false;
    }

    void
    planIntraFixes()
    {
        for (size_t i = 0; i < report_.bugs.size(); i++) {
            const pmcheck::Bug &bug = report_.bugs[i];
            ir::Instruction *store = bug.storeStack.empty()
                                         ? nullptr
                                         : resolveInstr(
                                               bug.storeStack[0]);
            if (!store) {
                hippo_fatal("cannot locate bug store %s",
                            bug.storeStack.empty()
                                ? "<empty stack>"
                                : bug.storeStack[0].str().c_str());
            }
            if (!modifiedPointer(store)) {
                hippo_fatal(
                    "bug store %s does not resolve to a memory "
                    "write (stale trace or duplicate ids?)",
                    bug.storeStack[0].str().c_str());
            }

            PlannedFix fix;
            fix.bugs = {i};
            fix.rep = &bug;
            switch (bug.kind) {
              case pmcheck::BugKind::MissingFlush:
              case pmcheck::BugKind::MissingFlushFence:
                fix.anchor = store;
                fix.addFlush = true;
                break;
              case pmcheck::BugKind::MissingFence: {
                ir::Instruction *flush =
                    bug.flushStack.empty()
                        ? nullptr
                        : resolveInstr(bug.flushStack[0]);
                if (flush) {
                    // Insert the fence right after the existing
                    // flush (Listing 3 of the paper).
                    fix.anchor = flush;
                    fix.addFence = true;
                } else {
                    // Conservative fallback: flush+fence after the
                    // store, safe by Theorem 3.
                    fix.anchor = store;
                    fix.addFlush = true;
                    fix.addFence = true;
                }
                break;
              }
              case pmcheck::BugKind::CrossThread: {
                // Cross-thread publication race: the payload store's
                // line must be durable before the release-ordered
                // atomic makes it observable. Preferred locus: flush
                // the payload pointer + fence immediately BEFORE the
                // publishing atomic — valid when the publication is
                // in the same block as the store (program order
                // guarantees the pointer value dominates the locus).
                // Fallback: flush+fence right after the store, which
                // precedes the publication on every same-thread
                // path. Both are add-only (do-no-harm).
                ir::Instruction *pub =
                    bug.durStack.empty()
                        ? nullptr
                        : resolveInstr(bug.durStack[0]);
                ir::Value *ptr = modifiedPointer(store);
                bool at_pub =
                    pub &&
                    (pub->op() == ir::Opcode::AtomicStore ||
                     pub->op() == ir::Opcode::AtomicRmw) &&
                    pub->parent() == store->parent() &&
                    precedesInBlock(store, pub);
                if (at_pub) {
                    fix.anchor = pub;
                    fix.beforeAnchor = true;
                    fix.addFlush = true;
                    fix.addFence = true;
                    fix.flushPtr = ptr;
                } else {
                    fix.anchor = store;
                    fix.addFlush = true;
                    fix.addFence = true;
                }
                break;
              }
            }
            plans_.push_back(std::move(fix));
        }
    }
    /// @}

    /// @name Phase 2: fix reduction
    /// @{
    static bool
    sameCallPath(const pmcheck::Bug &a, const pmcheck::Bug &b)
    {
        if (a.storeStack.size() != b.storeStack.size())
            return false;
        for (size_t i = 0; i < a.storeStack.size(); i++) {
            if (a.storeStack[i].function !=
                    b.storeStack[i].function ||
                a.storeStack[i].instrId != b.storeStack[i].instrId)
                return false;
        }
        return a.durStack.empty() == b.durStack.empty() &&
               (a.durStack.empty() ||
                a.durStack[0].function == b.durStack[0].function);
    }

    void
    reduceFixes()
    {
        if (!cfg_.enableReduction)
            return;
        // Merge plans that share both the anchor and the dynamic
        // call path; plans for the same anchor reached via distinct
        // paths stay separate so each path can hoist independently
        // (they re-deduplicate at application time if they land on
        // the same insertion point).
        std::vector<PlannedFix> reduced;
        for (PlannedFix &fix : plans_) {
            PlannedFix *merged = nullptr;
            for (PlannedFix &dst : reduced) {
                if (dst.anchor == fix.anchor &&
                    dst.addFlush == fix.addFlush &&
                    dst.beforeAnchor == fix.beforeAnchor &&
                    dst.flushPtr == fix.flushPtr &&
                    sameCallPath(*dst.rep, *fix.rep)) {
                    merged = &dst;
                    break;
                }
            }
            if (!merged) {
                reduced.push_back(std::move(fix));
                continue;
            }
            merged->addFence |= fix.addFence;
            merged->bugs.insert(merged->bugs.end(), fix.bugs.begin(),
                                fix.bugs.end());
        }
        plans_ = std::move(reduced);
    }

    /**
     * Is the bug's pre-existing fence (the first fence between X and
     * I) visible in the frame of @p locus_function? Only then can an
     * inserted flush rely on it; relying on a fence in a *different*
     * function would be interprocedural reasoning, which the safe
     * intraprocedural fix avoids (§3.3, §4.2).
     */
    static bool
    fenceVisibleIn(const pmcheck::Bug &b,
                   const std::string &locus_function)
    {
        return !b.fenceStack.empty() &&
               b.fenceStack[0].function == locus_function;
    }

    /** Does @p fix need a new fence when its flush lands with locus
     *  function @p locus_function? */
    bool
    flushPlanNeedsFenceAt(const PlannedFix &fix,
                          const std::string &locus_function) const
    {
        for (size_t i : fix.bugs) {
            const pmcheck::Bug &b = report_.bugs[i];
            if (b.kind == pmcheck::BugKind::MissingFence)
                continue;
            if (!fenceVisibleIn(b, locus_function))
                return true;
        }
        return false;
    }
    /// @}

    /// @name Phase 3: hoisting heuristic
    /// @{
    static constexpr int64_t minusInfinity =
        std::numeric_limits<int64_t>::min();

    /** Pointer operand whose target the memory op modifies. */
    static ir::Value *
    modifiedPointer(const ir::Instruction *instr)
    {
        switch (instr->op()) {
          case ir::Opcode::Store:
          case ir::Opcode::AtomicStore:
            return instr->operand(1);
          case ir::Opcode::Memcpy:
          case ir::Opcode::Memset:
          case ir::Opcode::AtomicRmw:
            return instr->operand(0);
          default:
            return nullptr;
        }
    }

    void
    hoistFixes()
    {
        for (PlannedFix &fix : plans_) {
            if (!fix.addFlush)
                continue;
            // Cross-thread fixes never hoist: the persistent-
            // subprogram transformation would put the fence after
            // the hoisted call site, which may fall after the
            // publishing atomic — re-opening the race window.
            if (fix.beforeAnchor ||
                fix.rep->kind == pmcheck::BugKind::CrossThread)
                continue;
            const pmcheck::Bug &bug = *fix.rep;
            if (bug.durStack.empty() || bug.storeStack.empty())
                continue;

            // Intraprocedural baseline score.
            ir::Value *ptr = modifiedPointer(fix.anchor);
            if (!ptr)
                continue;
            int64_t best = scorer_.score(
                bug.storeStack[0].function, ptr);
            ir::Instruction *best_site = nullptr;
            int best_level = 0;

            // Candidates: call sites on the stack between the
            // store's function and the function called by the
            // function containing I (paper §4.2.4).
            const std::string &i_func = bug.durStack[0].function;
            size_t k = 0;
            for (size_t j = 1; j < bug.storeStack.size(); j++) {
                if (bug.storeStack[j].function == i_func)
                    k = j;
            }
            for (size_t c = 1; c <= k; c++) {
                ir::Instruction *site =
                    resolveInstr(bug.storeStack[c]);
                if (!site || site->op() != ir::Opcode::Call ||
                    site->callee()->name() !=
                        bug.storeStack[c - 1].function)
                    break;
                int64_t s = 0;
                bool has_ptr_arg = false;
                ir::Function *callee = site->callee();
                for (size_t ai = 0; ai < site->numOperands(); ai++) {
                    ir::Value *arg = site->operand(ai);
                    if (arg->type() != ir::Type::Ptr)
                        continue;
                    // Only arguments whose pointee can flow into the
                    // buggy store's address are scored: they are the
                    // channel the persistent subprogram will flush
                    // through. A volatile *source* pointer of a copy
                    // does not make the transformation touch
                    // volatile data.
                    if (!pts_.flowsTo(callee->param(ai), ptr))
                        continue;
                    has_ptr_arg = true;
                    s += scorer_.score(bug.storeStack[c].function,
                                       arg);
                }
                if (!has_ptr_arg) {
                    // Score -inf, and all parents of this call site
                    // too: stop scanning outward (§4.3).
                    break;
                }
                if (s > best) {
                    best = s;
                    best_site = site;
                    best_level = (int)c;
                }
            }

            if (best_site) {
                fix.interCallSite = best_site;
                fix.hoistLevels = best_level;
            }
        }
    }
    /// @}

    /// @name Step 4: fix application
    /// @{
    ir::Function *
    flushRangeHelper()
    {
        if (flushRange_)
            return flushRange_;
        if ((flushRange_ =
                 module_->findFunction(flushRangeHelperName)))
            return flushRange_;

        // func @__hippo_flush_range(%p: ptr, %len: i64) flushes every
        // cache line overlapping [p, p+len); the libpmem pmem_flush
        // analog the paper's developers reach for.
        ir::Function *f = module_->addFunction(flushRangeHelperName,
                                               ir::Type::Void);
        ir::Argument *p = f->addParam(ir::Type::Ptr, "p");
        ir::Argument *len = f->addParam(ir::Type::Int, "len");
        ir::BasicBlock *entry = f->addBlock("entry");
        ir::BasicBlock *loop = f->addBlock("loop");
        ir::BasicBlock *body = f->addBlock("body");
        ir::BasicBlock *tail = f->addBlock("tail");
        ir::BasicBlock *exit = f->addBlock("exit");

        ir::IRBuilder b(module_);
        b.setInsertPoint(entry);
        ir::Instruction *iv = b.createAlloca(8);
        b.createStore(b.getInt(0), iv, 8);
        ir::Instruction *empty =
            b.createCmp(ir::CmpPred::Eq, len, b.getInt(0));
        b.createCondBr(empty, exit, loop);

        b.setInsertPoint(loop);
        ir::Instruction *i = b.createLoad(iv, 8);
        ir::Instruction *more = b.createCmp(ir::CmpPred::Ult, i, len);
        b.createCondBr(more, body, tail);

        b.setInsertPoint(body);
        ir::Instruction *q = b.createGep(p, i);
        b.createFlush(q, cfg_.flushKind);
        b.createStore(b.createAdd(i, b.getInt(pmem::cacheLineSize)),
                      iv, 8);
        b.createBr(loop);

        b.setInsertPoint(tail);
        ir::Instruction *last = b.createSub(len, b.getInt(1));
        b.createFlush(b.createGep(p, last), cfg_.flushKind);
        b.createBr(exit);

        b.setInsertPoint(exit);
        b.createRet();
        flushRange_ = f;
        return f;
    }

    /** Does @p f directly contain a PM-modifying memory op? */
    bool
    hasDirectPmStore(ir::Function *f)
    {
        auto it = directPm_.find(f);
        if (it != directPm_.end())
            return it->second;
        bool found = false;
        for (const auto &bb : f->blocks()) {
            for (const auto &instr : *bb) {
                ir::Value *ptr = modifiedPointer(instr.get());
                if (!ptr)
                    continue;
                if (bugStores_.count(instr.get()) ||
                    scorer_.mayPointToPm(f->name(), ptr)) {
                    found = true;
                    break;
                }
            }
            if (found)
                break;
        }
        directPm_[f] = found;
        return found;
    }

    /** Does @p f (transitively) contain a PM-modifying memory op? */
    bool
    needsClone(ir::Function *f)
    {
        if (hasDirectPmStore(f))
            return true;
        for (const auto &fn : module_->functions()) {
            if (fn.get() != f && callGraph_.reaches(f, fn.get()) &&
                hasDirectPmStore(fn.get()))
                return true;
        }
        return false;
    }

    std::string
    uniqueCloneName(const std::string &base)
    {
        std::string name = base + persistentCloneSuffix;
        int n = 2;
        while (module_->findFunction(name))
            name = base + persistentCloneSuffix + format("_%d", n++);
        return name;
    }

    /**
     * The persistent subprogram transformation (§4.2.4): clone @p g
     * and everything it reaches that touches PM, inserting a flush
     * after every PM-modifying memory op. Clones are memoized and
     * reused across fixes to bound code growth (§6.4).
     */
    ir::Function *
    getPersistentClone(ir::Function *g, FixSummary &summary)
    {
        auto memo = cloneOf_.find(g);
        if (memo != cloneOf_.end())
            return memo->second;

        // Collect the subprogram members needing clones.
        std::vector<ir::Function *> members{g};
        for (const auto &fn : module_->functions()) {
            ir::Function *h = fn.get();
            if (h != g && callGraph_.reaches(g, h) && needsClone(h))
                members.push_back(h);
        }

        // Clone pass (no callee rewrite yet; handles recursion).
        std::vector<std::pair<ir::Function *, ir::CloneResult>>
            created;
        for (ir::Function *h : members) {
            if (cloneOf_.count(h))
                continue;
            ir::CloneResult r = ir::cloneFunction(
                h, uniqueCloneName(h->name()));
            cloneOf_[h] = r.clone;
            created.emplace_back(h, std::move(r));
        }

        // Redirect calls inside new clones to persistent versions.
        for (auto &[orig, r] : created) {
            for (const auto &bb : r.clone->blocks()) {
                for (const auto &instr : *bb) {
                    if (instr->op() != ir::Opcode::Call)
                        continue;
                    auto it = cloneOf_.find(instr->callee());
                    if (it != cloneOf_.end())
                        instr->setCallee(it->second);
                }
            }
        }

        // Insert flushes after PM-modifying ops inside new clones.
        for (auto &[orig, r] : created) {
            for (const auto &bb : orig->blocks()) {
                for (const auto &instr : *bb) {
                    ir::Value *ptr = modifiedPointer(instr.get());
                    if (!ptr)
                        continue;
                    if (!bugStores_.count(instr.get()) &&
                        !scorer_.mayPointToPm(orig->name(), ptr))
                        continue;
                    ir::Instruction *clone_instr =
                        r.instrMap.at(instr.get());
                    summary.flushesInserted +=
                        insertFlushAfter(clone_instr);
                }
            }
        }
        return cloneOf_.at(g);
    }

    /** Insert the flush matching @p mem_op right after it. */
    uint32_t
    insertFlushAfter(ir::Instruction *mem_op)
    {
        ir::IRBuilder b(module_);
        b.setInsertPointAfter(mem_op);
        b.setLoc(mem_op->loc());
        if (mem_op->op() == ir::Opcode::Store ||
            mem_op->op() == ir::Opcode::AtomicStore) {
            b.createFlush(mem_op->operand(1), cfg_.flushKind);
        } else if (mem_op->op() == ir::Opcode::AtomicRmw) {
            b.createFlush(mem_op->operand(0), cfg_.flushKind);
        } else {
            b.createCall(flushRangeHelper(),
                         {mem_op->operand(0), mem_op->operand(2)});
        }
        return 1;
    }

    void
    applyFixes(FixSummary &summary)
    {
        // Interprocedural fixes grouped by call site.
        struct SiteGroup
        {
            std::vector<PlannedFix *> plans;
            bool needFence = false;
        };
        std::map<ir::Instruction *, SiteGroup> sites;
        for (PlannedFix &fix : plans_) {
            if (fix.interCallSite) {
                SiteGroup &g = sites[fix.interCallSite];
                g.plans.push_back(&fix);
                g.needFence |= flushPlanNeedsFenceAt(
                    fix,
                    fix.interCallSite->function()->name());
            }
        }

        for (auto &[site, group] : sites) {
            uint32_t flushes_before = summary.flushesInserted;
            ir::Function *clone =
                getPersistentClone(site->callee(), summary);
            site->setCallee(clone);

            AppliedFix applied;
            applied.kind = FixKind::Interprocedural;
            applied.function = site->function()->name();
            applied.anchorInstrId = site->id();
            applied.clonedSubprogram = clone->name();
            for (PlannedFix *p : group.plans) {
                applied.bugIndexes.insert(applied.bugIndexes.end(),
                                          p->bugs.begin(),
                                          p->bugs.end());
                applied.hoistLevels =
                    std::max(applied.hoistLevels, p->hoistLevels);
            }
            if (group.needFence) {
                ir::IRBuilder b(module_);
                b.setInsertPointAfter(site);
                b.setLoc(site->loc());
                b.createFence(cfg_.fenceKind);
                applied.fencesInserted++;
                summary.fencesInserted++;
            }
            applied.flushesInserted =
                summary.flushesInserted - flushes_before;
            summary.fixes.push_back(std::move(applied));
        }

        // Cross-thread fixes anchored at the publishing atomic: one
        // flush per distinct payload pointer plus one fence, all
        // inserted immediately before the publication so the data
        // is durable before it becomes observable.
        struct PublishGroup
        {
            std::vector<PlannedFix *> plans;
        };
        std::map<ir::Instruction *, PublishGroup> publishes;
        for (PlannedFix &fix : plans_) {
            if (fix.beforeAnchor)
                publishes[fix.anchor].plans.push_back(&fix);
        }
        for (auto &[anchor, group] : publishes) {
            AppliedFix applied;
            applied.kind = FixKind::CrossPublish;
            applied.function = anchor->function()->name();
            applied.anchorInstrId = anchor->id();

            ir::IRBuilder b(module_);
            b.setInsertPointBefore(anchor);
            b.setLoc(anchor->loc());
            std::set<ir::Value *> flushed;
            for (PlannedFix *p : group.plans) {
                applied.bugIndexes.insert(applied.bugIndexes.end(),
                                          p->bugs.begin(),
                                          p->bugs.end());
                if (p->flushPtr &&
                    flushed.insert(p->flushPtr).second) {
                    b.createFlush(p->flushPtr, cfg_.flushKind);
                    applied.flushesInserted++;
                    summary.flushesInserted++;
                }
            }
            b.createFence(cfg_.fenceKind);
            applied.fencesInserted++;
            summary.fencesInserted++;
            summary.fixes.push_back(std::move(applied));
        }

        // Remaining intraprocedural fixes, deduplicated per anchor
        // (plans for the same anchor via distinct call paths that
        // all stayed intra collapse to one insertion).
        struct AnchorGroup
        {
            std::vector<PlannedFix *> plans;
            bool addFlush = false;
            bool addFence = false;
        };
        std::map<ir::Instruction *, AnchorGroup> anchors;
        for (PlannedFix &fix : plans_) {
            if (fix.interCallSite || fix.beforeAnchor)
                continue;
            AnchorGroup &g = anchors[fix.anchor];
            g.plans.push_back(&fix);
            g.addFlush |= fix.addFlush;
            g.addFence |= fix.addFence;
            if (fix.addFlush) {
                g.addFence |= flushPlanNeedsFenceAt(
                    fix, fix.anchor->function()->name());
            }
        }

        for (auto &[anchor, group] : anchors) {
            AppliedFix applied;
            applied.function = anchor->function()->name();
            applied.anchorInstrId = anchor->id();
            for (PlannedFix *p : group.plans) {
                applied.bugIndexes.insert(applied.bugIndexes.end(),
                                          p->bugs.begin(),
                                          p->bugs.end());
            }

            ir::IRBuilder b(module_);
            ir::Instruction *after = anchor;
            if (group.addFlush) {
                applied.flushesInserted += insertFlushAfter(after);
                summary.flushesInserted += applied.flushesInserted;
                // The fence must follow the flush: F(X) -> M.
                auto it = after->parent()->iteratorTo(after);
                ++it;
                after = it->get();
            }
            if (group.addFence) {
                b.setInsertPointAfter(after);
                b.setLoc(anchor->loc());
                b.createFence(cfg_.fenceKind);
                applied.fencesInserted++;
                summary.fencesInserted++;
            }
            applied.kind =
                group.addFlush && group.addFence
                    ? FixKind::IntraFlushFence
                    : (group.addFlush ? FixKind::IntraFlush
                                      : FixKind::IntraFence);
            summary.fixes.push_back(std::move(applied));
        }
    }
    /// @}

    ir::Module *module_;
    const FixerConfig &cfg_;
    const pmcheck::Report &report_;

    analysis::PointsTo pts_;
    analysis::CallGraph callGraph_;
    analysis::AliasScorer scorer_;

    std::set<const ir::Instruction *> bugStores_;
    std::vector<PlannedFix> plans_;

    std::map<ir::Function *, bool> directPm_;
    std::map<ir::Function *, ir::Function *> cloneOf_;
    ir::Function *flushRange_ = nullptr;
};

Fixer::Fixer(ir::Module *module, FixerConfig cfg)
    : module_(module), cfg_(cfg)
{}

FixSummary
Fixer::fix(const pmcheck::Report &report, const trace::Trace &trace,
           const vm::DynPointsTo *dyn)
{
    Impl impl(module_, cfg_, report, trace, dyn);
    return impl.run();
}

pmcheck::ExplorationResult
Fixer::verifyFixed(pmcheck::CrashExplorerConfig vc) const
{
    if (vc.jobs == 0)
        vc.jobs = cfg_.jobs;
    if (cfg_.staticReport && vc.priorityDurLabels.empty())
        vc.priorityDurLabels = cfg_.staticReport->durLabels();
    // Chaos mode: forward the fixer's fault plan and watchdog budgets
    // unless the caller configured its own.
    if (!vc.faults.enabled())
        vc.faults = cfg_.faults;
    if (vc.stepBudget == 0)
        vc.stepBudget = cfg_.stepBudget;
    if (vc.heapBudget == 0)
        vc.heapBudget = cfg_.heapBudget;
    if (vc.timeBudgetMs == 0)
        vc.timeBudgetMs = cfg_.timeBudgetMs;
    if (vc.vmEngine == vm::VmEngine::Auto)
        vc.vmEngine = cfg_.vmEngine;
    auto &reg = support::MetricsRegistry::global();
    support::ScopedTimer t(reg.timer("fixer.verify_ns"));
    pmcheck::ExplorationResult res = pmcheck::exploreCrashes(module_, vc);
    reg.counter("fixer.verify.runs").inc();
    reg.counter("fixer.verify.crash_points").inc(res.outcomes.size());
    reg.counter("fixer.verify.durpoint_monotonic")
        .inc(res.durPointRecoveryNonDecreasing());
    // Graceful degradation accounting: crash points the explorer's
    // ladder could not verify are reported, not fatal.
    uint64_t unverified = res.unverifiedCount();
    reg.counter("fixer.degraded.unverified").inc(unverified);
    if (unverified)
        reg.counter("fixer.degraded.runs").inc();
    return res;
}

} // namespace hippo::core
