/**
 * @file
 * Redundant-flush elimination — the one class of PM *performance*
 * bug the paper says can be fixed safely (§7): "it would be
 * impossible to safely fix PM performance bugs except for in the
 * simplest cases (e.g., redundant flush instructions in the same
 * basic block)". This pass implements exactly that simplest case.
 *
 * A flush F2 is removed when an earlier flush F1 in the same basic
 * block flushes the *same pointer value* and no instruction between
 * them can dirty the line again (no store, memcpy/memset, or call).
 * Under these conditions the line is clean when F2 executes, so F2
 * is a semantic no-op and removing it cannot change durability —
 * the removal, like the fixer's insertions, does no harm.
 */

#ifndef HIPPO_CORE_FLUSH_CLEANER_HH
#define HIPPO_CORE_FLUSH_CLEANER_HH

#include <cstddef>
#include <string>

namespace hippo::ir
{
class Function;
class Module;
} // namespace hippo::ir

namespace hippo::support
{
class MetricsRegistry;
} // namespace hippo::support

namespace hippo::core
{

/** Result counters of a cleaning pass. */
struct FlushCleanStats
{
    size_t flushesRemoved = 0;
    size_t flushesKept = 0;

    /** Accumulate counters into @p reg under "<prefix>." (see
     *  docs/FORMATS.md §6). */
    void exportMetrics(support::MetricsRegistry &reg,
                       const std::string &prefix = "fixer.clean") const;
};

/** Remove provably redundant flushes from one function. */
FlushCleanStats cleanRedundantFlushes(ir::Function *f);

/** Remove provably redundant flushes module-wide. */
FlushCleanStats cleanRedundantFlushes(ir::Module *m);

} // namespace hippo::core

#endif // HIPPO_CORE_FLUSH_CLEANER_HH
