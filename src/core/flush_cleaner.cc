#include "core/flush_cleaner.hh"

#include <vector>

#include "ir/module.hh"
#include "support/metrics.hh"

namespace hippo::core
{

namespace
{

/** Can @p instr dirty a cache line (directly or via a callee)? */
bool
mayWriteMemory(const ir::Instruction &instr)
{
    switch (instr.op()) {
      case ir::Opcode::Store:
      case ir::Opcode::Memcpy:
      case ir::Opcode::Memset:
      case ir::Opcode::Call: // conservatively: callees may store
      // Thread/atomic ops are interleaving points: another VM
      // thread may store to the flushed line while this thread is
      // preempted there.
      case ir::Opcode::ThreadSpawn:
      case ir::Opcode::ThreadJoin:
      case ir::Opcode::AtomicLoad:
      case ir::Opcode::AtomicStore:
      case ir::Opcode::AtomicRmw:
        return true;
      default:
        return false;
    }
}

} // namespace

FlushCleanStats
cleanRedundantFlushes(ir::Function *f)
{
    FlushCleanStats stats;
    for (auto &bb : f->blocks()) {
        // Pointer values flushed since the last potential write.
        std::vector<const ir::Value *> flushed;
        std::vector<ir::Instruction *> to_remove;
        for (auto &owned : *bb) {
            ir::Instruction &instr = *owned;
            if (mayWriteMemory(instr)) {
                flushed.clear();
                continue;
            }
            if (instr.op() != ir::Opcode::Flush)
                continue;
            const ir::Value *ptr = instr.operand(0);
            bool seen = false;
            for (const ir::Value *v : flushed) {
                if (v == ptr) {
                    seen = true;
                    break;
                }
            }
            if (seen) {
                to_remove.push_back(&instr);
                stats.flushesRemoved++;
            } else {
                flushed.push_back(ptr);
                stats.flushesKept++;
            }
        }
        for (ir::Instruction *instr : to_remove)
            bb->erase(instr);
    }
    return stats;
}

void
FlushCleanStats::exportMetrics(support::MetricsRegistry &reg,
                               const std::string &prefix) const
{
    reg.counter(prefix + ".runs").inc();
    reg.counter(prefix + ".removed").inc(flushesRemoved);
    reg.counter(prefix + ".kept").inc(flushesKept);
}

FlushCleanStats
cleanRedundantFlushes(ir::Module *m)
{
    FlushCleanStats total;
    for (const auto &f : m->functions()) {
        FlushCleanStats s = cleanRedundantFlushes(f.get());
        total.flushesRemoved += s.flushesRemoved;
        total.flushesKept += s.flushesKept;
    }
    return total;
}

} // namespace hippo::core
