/**
 * @file
 * Global flush/fence optimizer — the inverse transformation of the
 * fixer. Hippocrates (§7) restricts itself to removing redundant
 * flushes "in the same basic block"; Bentō-style dominance reasoning
 * shows the global version is safe too, provided every removal is
 * justified against the machine model and every optimized module is
 * mechanically re-verified (the "do no harm" differential harness in
 * optimizeAndVerify).
 *
 * Four transformations, applied in a deterministic order (see
 * DESIGN.md "Flush/fence optimizer" for the per-pass legality
 * arguments against the PmPool x86 persistency model):
 *
 *  1. same-line dedup (pass B): remove an earlier CLWB/CLFLUSHOPT
 *     flush when a provably-same-cache-line flush is reached on
 *     every forward path before any fence, durability point, call,
 *     other flush, or non-temporal store;
 *  2. dominated-flush elision (pass A): remove a flush when the line
 *     it flushes is provably clean — a same-line flush covers every
 *     backward path with no intervening may-write (a clean-line
 *     flush is a complete no-op in PmPool, so this removal is exact
 *     under every crash point, engine, and fault plan);
 *  3. partial-redundancy hoisting (pass C): replace sibling flushes
 *     of the same pointer on divergent paths with one flush at the
 *     end of their nearest common dominator, when every window from
 *     the hoist point to a sibling is free of pool-visible
 *     operations and every path from the hoist point reaches a
 *     sibling;
 *  4. fence coalescing: remove a fence whose write-back queue is
 *     provably empty (a dominating fence with no enqueuing op in
 *     between — exact, a no-op fence), then remove a fence that is
 *     re-fenced on every forward path before any durability point,
 *     call, or return (queue drains later, same drain order);
 *  5. sink-and-merge (pass D): a same-base chain of paired
 *     (store offset o_i; flush offset o_i) with strictly increasing
 *     offsets and no observer in between is rewritten so all the
 *     flushes sit after the last store, and interior flushes whose
 *     neighbors are less than a cache line apart are dropped — the
 *     line of an interior offset must coincide with the line of one
 *     of its kept neighbors, for every base alignment;
 *  6. loop-range promotion (pass E): the canonical per-word loop
 *     flush the fixer emits (flush of gep(base, iv) in a two-block
 *     while loop guarded by iv <u len) is replaced by one
 *     __hippo_flush_range(base, len) call after the loop, turning
 *     one flush per 8-byte word into one per 64-byte line. Applied
 *     only when the module already carries the fixer's helper.
 *
 * Must-alias line facts come from folding gep chains to
 * (base value, constant offset) — PmPool region bases are 64-byte
 * aligned, so PmMap-based offsets bucket into lines exactly — with
 * the Andersen points-to results (analysis/points_to.hh) as the
 * conservative may-alias fallback.
 */

#ifndef HIPPO_CORE_FLUSH_OPTIMIZER_HH
#define HIPPO_CORE_FLUSH_OPTIMIZER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pmem/pm_pool.hh"
#include "vm/vm.hh"

namespace hippo::ir
{
class Function;
class Module;
} // namespace hippo::ir

namespace hippo::support
{
class MetricsRegistry;
} // namespace hippo::support

namespace hippo::core
{

/** Per-pass enable switches (all on by default). */
struct FlushOptConfig
{
    bool dedupSameLine = true;  ///< pass B: forward same-line dedup
    bool elideDominated = true; ///< pass A: clean-line elision
    bool hoistPartial = true;   ///< pass C: PRE hoist to dominator
    bool coalesceFences = true; ///< fence coalescing (both directions)
    bool sinkAndMerge = true;   ///< pass D: chain sink + interior merge
    bool loopRange = true;      ///< pass E: loop flush -> range call
};

/** One applied transformation, in application order. */
struct FlushOptRecord
{
    enum class Kind : uint8_t
    {
        Dedup,        ///< pass B removed a flush
        Elide,        ///< pass A removed a flush
        Hoist,        ///< pass C inserted one flush, removed siblings
        FenceForward, ///< removed a provably-no-op fence
        FenceBackward,///< removed a fence re-fenced downstream
        Sink,         ///< pass D sank a chain, dropped interior flushes
        LoopRange     ///< pass E promoted a loop flush to a range call
    };

    Kind kind;
    std::string function;
    uint32_t instrId = 0; ///< removed flush/fence (Hoist: inserted)
    uint32_t coverId = 0; ///< covering flush/fence (Hoist: unused)
    std::string block;    ///< Hoist: destination block name
    std::vector<uint32_t> siblingIds; ///< Hoist: removed siblings

    std::string str() const;
};

/** Result counters + records of one optimizeFlushes run. */
struct FlushOptStats
{
    size_t flushesBefore = 0, flushesAfter = 0;
    size_t fencesBefore = 0, fencesAfter = 0;
    size_t flushesDeduped = 0;  ///< pass B removals
    size_t flushesElided = 0;   ///< pass A removals
    size_t flushesHoisted = 0;  ///< pass C inserted flushes
    size_t hoistSitesRemoved = 0; ///< pass C removed siblings
    size_t fencesForward = 0;   ///< no-op fence removals
    size_t fencesBackward = 0;  ///< re-fenced fence removals
    size_t flushesSunk = 0;     ///< pass D chain members re-seated
    size_t flushesMerged = 0;   ///< pass D interior flushes dropped
    size_t loopRanges = 0;      ///< pass E loop flush promotions

    std::vector<FlushOptRecord> records; ///< application order

    size_t flushesRemoved() const
    {
        return flushesAfter < flushesBefore
                   ? flushesBefore - flushesAfter
                   : 0;
    }
    size_t fencesRemoved() const
    {
        return fencesAfter < fencesBefore ? fencesBefore - fencesAfter
                                          : 0;
    }

    /** One-line human summary. */
    std::string str() const;

    /**
     * Line-oriented report (OPT-SUMMARY + one OPT line per applied
     * transformation, application order). Deterministic: the same
     * module and config produce the same bytes on every run — the
     * passes iterate functions, blocks, and instructions in module
     * order only.
     */
    std::string writeText() const;

    /** Accumulate counters into @p reg under "<prefix>." (see
     *  docs/FORMATS.md §5). */
    void exportMetrics(support::MetricsRegistry &reg,
                       const std::string &prefix = "fixer.opt") const;

    void merge(const FlushOptStats &o);
};

/**
 * Run the optimizer over @p m in place. Purely analysis-guided — no
 * execution; use optimizeAndVerify for the checked pipeline stage.
 */
FlushOptStats optimizeFlushes(ir::Module *m,
                              const FlushOptConfig &cfg = {});

/** What optimizeAndVerify must hold equal across the optimization. */
struct FlushOptVerifyConfig
{
    FlushOptConfig opt;

    std::string entry = "main";
    std::vector<uint64_t> entryArgs;
    /** Recovery entry for crash exploration; empty = the entry. */
    std::string recovery;
    std::vector<uint64_t> recoveryArgs;

    unsigned jobs = 1; ///< exploration workers

    /** When tornChance > 0, a second exploration leg runs under this
     *  adversarial fault plan and its digest must match too. */
    pmem::FaultPlan faults;

    /** Watchdog budgets forwarded to every execution (see
     *  vm::VmConfig); 0 = unlimited. */
    uint64_t stepBudget = 0;
    uint64_t heapBudget = 0;
    uint64_t timeBudgetMs = 0;

    /** Interpreter engine for every execution the differential
     *  harness runs (entry runs and crash explorations). */
    vm::VmEngine vmEngine = vm::VmEngine::Auto;

    bool checkDetector = true; ///< pmcheck must find no new bugs
    bool checkStatic = true;   ///< static checker: no new candidates
};

/** Result of the optimize-then-reverify pipeline stage. */
struct FlushOptOutcome
{
    FlushOptStats stats;
    bool changed = false;  ///< the optimizer removed/moved anything
    bool verified = false; ///< differential checks all passed
    bool reverted = false; ///< verification failed; module restored
    std::string failReason; ///< empty unless reverted

    uint64_t digestBefore = 0; ///< recoveryDigest, fault-free leg
    uint64_t digestAfter = 0;
    uint64_t chaosDigestBefore = 0; ///< fault-plan leg (when enabled)
    uint64_t chaosDigestAfter = 0;

    void exportMetrics(support::MetricsRegistry &reg,
                       const std::string &prefix = "fixer.opt") const;
};

/**
 * The checked optimizer stage: snapshot @p m (print/parse round
 * trip), capture its behavior — pmcheck report, static-checker
 * candidates, and crash-exploration recovery digests — optimize,
 * re-capture, and compare. Any new pmcheck bug, new static
 * candidate, changed recovery digest, or execution failure reverts
 * @p m to the snapshot and reports why; the optimized module is kept
 * only when it is observably equivalent ("do no harm",
 * mechanically).
 */
FlushOptOutcome optimizeAndVerify(std::unique_ptr<ir::Module> &m,
                                  const FlushOptVerifyConfig &cfg);

} // namespace hippo::core

#endif // HIPPO_CORE_FLUSH_OPTIMIZER_HH
