#include "core/flush_optimizer.hh"

#include <algorithm>
#include <set>

#include "analysis/durability_checker.hh"
#include "analysis/points_to.hh"
#include "core/fixer.hh"
#include "ir/basic_block.hh"
#include "ir/builder.hh"
#include "ir/dominators.hh"
#include "ir/function.hh"
#include "ir/instruction.hh"
#include "ir/module.hh"
#include "ir/parser.hh"
#include "ir/printer.hh"
#include "pmcheck/crash_explorer.hh"
#include "pmcheck/detector.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/strings.hh"
#include "vm/vm.hh"

namespace hippo::core
{

namespace
{

using namespace hippo::ir;

constexpr int64_t kLine = 64;

/**
 * A pointer folded through its constant-offset gep suffix to
 * (base, byte offset). Folding stops at the first gep with a
 * non-constant offset — that gep itself becomes the base — so the
 * offset is always exact *relative to the base*, and two pointers
 * built from the same dynamic base (e.g. a freshly allocated entry)
 * still compare by their field offsets.
 */
struct FoldedPtr
{
    const Value *base = nullptr;
    int64_t offset = 0;
};

const Instruction *
asInstr(const Value *v)
{
    return v && v->kind() == ValueKind::Instruction
               ? static_cast<const Instruction *>(v)
               : nullptr;
}

FoldedPtr
foldPtr(const Value *v)
{
    FoldedPtr fp;
    while (const Instruction *in = asInstr(v)) {
        if (in->op() != Opcode::Gep)
            break;
        const Value *off = in->operand(1);
        if (off->kind() != ValueKind::Constant)
            break; // dynamic gep: it is the base
        fp.offset +=
            (int64_t)static_cast<const Constant *>(off)->value();
        v = in->operand(0);
    }
    fp.base = v;
    return fp;
}

/** Is @p v the result of a PmMap? Region bases are 64-byte aligned
 *  (PmPool::mapRegion), so constant offsets bucket into cache lines
 *  exactly. */
bool
isPmMapBase(const Value *v)
{
    const Instruction *in = asInstr(v);
    return in && in->op() == Opcode::PmMap;
}

/** The byte interval of the cache line the flush target lies in,
 *  relative to the folded base. Unknown base alignment widens the
 *  interval to every byte the line could cover. */
void
lineInterval(const FoldedPtr &fp, int64_t *lo, int64_t *hi)
{
    if (isPmMapBase(fp.base) && fp.offset >= 0) {
        *lo = fp.offset / kLine * kLine;
        *hi = *lo + kLine;
    } else {
        *lo = fp.offset - (kLine - 1);
        *hi = fp.offset + kLine;
    }
}

/** Must @p a and @p b flush the same cache line? */
bool
mustSameLine(const FoldedPtr &a, const FoldedPtr &b)
{
    if (a.base != b.base)
        return false;
    if (a.offset == b.offset)
        return true;
    if (isPmMapBase(a.base) && a.offset >= 0 && b.offset >= 0)
        return a.offset / kLine == b.offset / kLine;
    return false;
}

/** The written range of a store/memcpy/memset, when extractable. */
struct WriteDesc
{
    const Value *ptr = nullptr;
    int64_t len = 0;
    bool lenKnown = false;
};

WriteDesc
writeDesc(const Instruction &in)
{
    WriteDesc w;
    switch (in.op()) {
      case Opcode::Store:
        w.ptr = in.operand(1);
        w.len = (int64_t)in.accessSize();
        w.lenKnown = true;
        break;
      case Opcode::Memcpy:
      case Opcode::Memset: {
        w.ptr = in.operand(0);
        const Value *len = in.operand(2);
        if (len->kind() == ValueKind::Constant) {
            w.len = (int64_t)static_cast<const Constant *>(len)
                        ->value();
            w.lenKnown = true;
        }
        break;
      }
      default:
        hippo_fatal("writeDesc on non-write opcode");
    }
    return w;
}

/** May executing write @p in dirty the cache line flushed through
 *  (@p fptr, @p ff)? Falls back to the Andersen may-alias answer
 *  when the folded forms do not resolve. */
bool
mayTouchLine(const Instruction &in, const Value *fptr,
             const FoldedPtr &ff, const analysis::PointsTo &pts)
{
    WriteDesc w = writeDesc(in);
    FoldedPtr wp = foldPtr(w.ptr);
    if (wp.base == ff.base) {
        if (w.lenKnown) {
            int64_t lo, hi;
            lineInterval(ff, &lo, &hi);
            return wp.offset < hi && wp.offset + w.len > lo;
        }
        return true;
    }
    return pts.mayAlias(w.ptr, fptr);
}

enum class Ev : uint8_t { Cover, Kill, Thru };

/**
 * Thread and atomic ops are scheduler-visible interleaving points:
 * another VM thread may store, flush, fence, or observe persistence
 * while this thread is preempted there, so every event model treats
 * them as opaque barriers — no flush or fence may be elided, merged,
 * or moved across one.
 */
bool
isSchedBarrier(Opcode op)
{
    switch (op) {
      case Opcode::ThreadSpawn:
      case Opcode::ThreadJoin:
      case Opcode::AtomicLoad:
      case Opcode::AtomicStore:
      case Opcode::AtomicRmw:
        return true;
      default:
        return false;
    }
}

/**
 * Pass A (dominated-flush elision) event model, walking *backward*
 * from a flush F of line L: is L provably clean when F executes?
 *  - a must-same-line flush cleans L (any kind): Cover;
 *  - anything that may dirty L kills: a may-touching store/memcpy/
 *    memset, any call (callees may store), a PmMap (maps fresh
 *    lines);
 *  - non-temporal stores bypass the cache and never dirty a line;
 *    fences, durpoints, loads, and other flushes are transparent.
 * A clean-line flush is a complete no-op in PmPool, so removal is
 * exact under every crash point, engine, eviction plan, and fault
 * plan.
 */
Ev
classifyElide(const Instruction &in, const Value *fptr,
              const FoldedPtr &ff, const analysis::PointsTo &pts)
{
    if (isSchedBarrier(in.op()))
        return Ev::Kill;
    switch (in.op()) {
      case Opcode::Flush:
        return mustSameLine(foldPtr(in.operand(0)), ff) ? Ev::Cover
                                                        : Ev::Thru;
      case Opcode::Store:
        if (in.nonTemporal())
            return Ev::Thru;
        [[fallthrough]];
      case Opcode::Memcpy:
      case Opcode::Memset:
        return mayTouchLine(in, fptr, ff, pts) ? Ev::Kill : Ev::Thru;
      case Opcode::Call:
      case Opcode::PmMap:
        return Ev::Kill;
      default:
        return Ev::Thru;
    }
}

/**
 * Pass B (same-line dedup) event model, walking *forward* from a
 * CLWB/CLFLUSHOPT flush F of line L: is F re-issued before its
 * effect can be observed?
 *  - a must-same-line CLWB/CLFLUSHOPT flush re-covers L: Cover;
 *  - anything that observes persistence or the write-back queue
 *    kills: fences and durpoints (durability observation points),
 *    calls and returns (observation may happen in the callee /
 *    caller), any other flush or non-temporal store (their queue
 *    entries would order differently without F), PmMap;
 *  - plain stores/memcpys/memsets are transparent: dirt they put on
 *    L is re-covered by the covering flush, dirt on other lines is
 *    identical with or without F.
 * Exact for durpoint-based crash exploration with eviction injection
 * off (see DESIGN.md for why eviction timing is the one observer of
 * the dirty-set difference inside the window).
 */
Ev
classifyDedup(const Instruction &in, const FoldedPtr &ff)
{
    if (isSchedBarrier(in.op()))
        return Ev::Kill;
    switch (in.op()) {
      case Opcode::Flush:
        return in.flushKind() != FlushKind::Clflush &&
                       mustSameLine(foldPtr(in.operand(0)), ff)
                   ? Ev::Cover
                   : Ev::Kill;
      case Opcode::Store:
        return in.nonTemporal() ? Ev::Kill : Ev::Thru;
      case Opcode::Fence:
      case Opcode::DurPoint:
      case Opcode::Call:
      case Opcode::PmMap:
      case Opcode::Ret:
        return Ev::Kill;
      default:
        return Ev::Thru;
    }
}

/**
 * Fence-forward event model, walking *backward* from a fence F: is
 * the write-back queue provably empty at F? A fence over an empty
 * queue is a complete no-op, so removal is exact.
 *  - any fence drains the queue: Cover;
 *  - anything that enqueues kills: flushes, non-temporal stores,
 *    calls (callees may flush), PmMap;
 *  - plain stores only dirty lines (they never enqueue), so they,
 *    durpoints, and loads are transparent.
 */
Ev
classifyFenceForward(const Instruction &in)
{
    if (isSchedBarrier(in.op()))
        return Ev::Kill;
    switch (in.op()) {
      case Opcode::Fence:
        return Ev::Cover;
      case Opcode::Flush:
      case Opcode::Call:
      case Opcode::PmMap:
        return Ev::Kill;
      case Opcode::Store:
        return in.nonTemporal() ? Ev::Kill : Ev::Thru;
      case Opcode::Memcpy:
      case Opcode::Memset:
        return Ev::Thru;
      default:
        return Ev::Thru;
    }
}

/**
 * Fence-backward event model, walking *forward* from a fence F: is
 * the queue re-drained before persistence can be observed?
 *  - any fence re-drains: Cover (the queue is FIFO and same-line
 *    puts keep their position, so delaying the drain preserves the
 *    media write order);
 *  - durpoints, calls, and returns observe persistence: Kill;
 *    PmMap conservatively kills;
 *  - flushes, stores (temporal or not), memcpys, and loads are
 *    transparent — they change what drains, not whether anything
 *    observes the delay.
 */
Ev
classifyFenceBackward(const Instruction &in)
{
    if (isSchedBarrier(in.op()))
        return Ev::Kill;
    switch (in.op()) {
      case Opcode::Fence:
        return Ev::Cover;
      case Opcode::DurPoint:
      case Opcode::Call:
      case Opcode::PmMap:
      case Opcode::Ret:
        return Ev::Kill;
      default:
        return Ev::Thru;
    }
}

/** Pass C window model: the hoist window must be free of every
 *  pool-visible operation. */
bool
isPoolVisible(const Instruction &in)
{
    if (isSchedBarrier(in.op()))
        return true;
    switch (in.op()) {
      case Opcode::Store:
      case Opcode::Memcpy:
      case Opcode::Memset:
      case Opcode::Flush:
      case Opcode::Fence:
      case Opcode::DurPoint:
      case Opcode::Call:
      case Opcode::PmMap:
      case Opcode::Ret:
        return true;
      default:
        return false;
    }
}

/** Result of scanning a block (or part of one) for events. */
struct ScanHit
{
    Ev ev = Ev::Thru;
    const Instruction *at = nullptr;
};

template <typename Classify>
ScanHit
scanBackward(BasicBlock *bb, BasicBlock::iterator from, Classify cl)
{
    for (auto it = from; it != bb->begin();) {
        --it;
        Ev e = cl(**it);
        if (e != Ev::Thru)
            return {e, it->get()};
    }
    return {};
}

template <typename Classify>
ScanHit
scanForward(BasicBlock *bb, BasicBlock::iterator from, Classify cl)
{
    for (auto it = from; it != bb->end(); ++it) {
        Ev e = cl(**it);
        if (e != Ev::Thru)
            return {e, it->get()};
    }
    return {};
}

/**
 * Is the event model's Cover hit on *every* backward path from
 * @p instr before any Kill, without reaching the function entry?
 * Blocks are memoized — each is scanned at most once — so cycles
 * terminate; a cyclic backward path only re-traverses blocks whose
 * verdict is already known.
 */
template <typename Classify>
bool
coveredBackward(const Cfg &cfg, Instruction *instr, Classify cl,
                const Instruction **cover)
{
    BasicBlock *home = instr->parent();
    ScanHit hit =
        scanBackward(home, home->iteratorTo(instr), cl);
    if (hit.ev == Ev::Kill)
        return false;
    if (hit.ev == Ev::Cover) {
        *cover = hit.at;
        return true;
    }
    BasicBlock *entry = home->parent()->entry();
    if (home == entry)
        return false;
    std::set<const BasicBlock *> visited;
    std::vector<BasicBlock *> work(cfg.preds(home).begin(),
                                   cfg.preds(home).end());
    while (!work.empty()) {
        BasicBlock *bb = work.back();
        work.pop_back();
        if (!visited.insert(bb).second)
            continue;
        ScanHit h = scanBackward(bb, bb->end(), cl);
        if (h.ev == Ev::Kill)
            return false;
        if (h.ev == Ev::Cover) {
            if (!*cover)
                *cover = h.at;
            continue;
        }
        if (bb == entry)
            return false;
        for (BasicBlock *p : cfg.preds(bb))
            work.push_back(p);
    }
    return true;
}

/** The forward dual: Cover on every forward path from @p instr
 *  before any Kill. The classifier must kill on Ret, so falling off
 *  the function is never silently treated as covered. */
template <typename Classify>
bool
coveredForward(const Cfg &cfg, Instruction *instr, Classify cl,
               const Instruction **cover)
{
    BasicBlock *home = instr->parent();
    auto start = std::next(home->iteratorTo(instr));
    ScanHit hit = scanForward(home, start, cl);
    if (hit.ev == Ev::Kill)
        return false;
    if (hit.ev == Ev::Cover) {
        *cover = hit.at;
        return true;
    }
    if (cfg.succs(home).empty())
        return false; // fell off a malformed block
    std::set<const BasicBlock *> visited;
    std::vector<BasicBlock *> work(cfg.succs(home).begin(),
                                   cfg.succs(home).end());
    while (!work.empty()) {
        BasicBlock *bb = work.back();
        work.pop_back();
        if (!visited.insert(bb).second)
            continue;
        ScanHit h = scanForward(bb, bb->begin(), cl);
        if (h.ev == Ev::Kill)
            return false;
        if (h.ev == Ev::Cover) {
            if (!*cover)
                *cover = h.at;
            continue;
        }
        if (cfg.succs(bb).empty())
            return false;
        for (BasicBlock *s : cfg.succs(bb))
            work.push_back(s);
    }
    return true;
}

/** All flush (or fence) instructions of @p f in module order. */
std::vector<Instruction *>
collectOps(Function *f, Opcode op)
{
    std::vector<Instruction *> out;
    for (auto &bb : f->blocks())
        for (auto &in : *bb)
            if (in->op() == op)
                out.push_back(in.get());
    return out;
}

void
record(FlushOptStats &stats, FlushOptRecord::Kind kind, Function *f,
       uint32_t id, uint32_t cover)
{
    FlushOptRecord r;
    r.kind = kind;
    r.function = f->name();
    r.instrId = id;
    r.coverId = cover;
    stats.records.push_back(std::move(r));
}

/** Pass B: sequential forward same-line dedup. Each removal is
 *  decided against the already-mutated function, so chains
 *  (f1 covered by f2 covered by f3) resolve soundly — a flush whose
 *  only cover was itself removed is re-judged without it. */
void
passDedup(Function *f, const Cfg &cfg, const analysis::PointsTo &pts,
          FlushOptStats &stats)
{
    (void)pts;
    for (Instruction *fl : collectOps(f, Opcode::Flush)) {
        if (fl->flushKind() == FlushKind::Clflush)
            continue; // CLFLUSH persists immediately; keep it
        if (!cfg.reachableFromEntry(fl->parent()))
            continue;
        FoldedPtr ff = foldPtr(fl->operand(0));
        const Instruction *cover = nullptr;
        auto cl = [&](const Instruction &in) {
            return classifyDedup(in, ff);
        };
        if (!coveredForward(cfg, fl, cl, &cover))
            continue;
        record(stats, FlushOptRecord::Kind::Dedup, f, fl->id(),
               cover ? cover->id() : 0);
        stats.flushesDeduped++;
        fl->parent()->erase(fl);
    }
}

/** Pass A: sequential clean-line elision. */
void
passElide(Function *f, const Cfg &cfg, const analysis::PointsTo &pts,
          FlushOptStats &stats)
{
    for (Instruction *fl : collectOps(f, Opcode::Flush)) {
        if (!cfg.reachableFromEntry(fl->parent()))
            continue;
        const Value *fptr = fl->operand(0);
        FoldedPtr ff = foldPtr(fptr);
        const Instruction *cover = nullptr;
        auto cl = [&](const Instruction &in) {
            return &in == fl ? Ev::Thru
                             : classifyElide(in, fptr, ff, pts);
        };
        if (!coveredBackward(cfg, fl, cl, &cover))
            continue;
        record(stats, FlushOptRecord::Kind::Elide, f, fl->id(),
               cover ? cover->id() : 0);
        stats.flushesElided++;
        fl->parent()->erase(fl);
    }
}

/** Pass C: hoist same-pointer sibling flushes to the nearest common
 *  dominator when the windows are pool-invisible and jointly
 *  exhaustive. */
void
passHoist(Function *f, const Cfg &cfg, const DominatorTree &dom,
          FlushOptStats &stats)
{
    // Group flushes by (pointer value, kind) in first-encounter
    // order; keyed linearly, never by pointer address, so the
    // report order is deterministic.
    struct Group
    {
        Value *ptr;
        FlushKind kind;
        std::vector<Instruction *> members;
    };
    std::vector<Group> groups;
    for (Instruction *fl : collectOps(f, Opcode::Flush)) {
        if (!cfg.reachableFromEntry(fl->parent()))
            continue;
        Value *ptr = fl->operand(0);
        auto it = std::find_if(groups.begin(), groups.end(),
                               [&](const Group &g) {
                                   return g.ptr == ptr &&
                                          g.kind == fl->flushKind();
                               });
        if (it == groups.end())
            groups.push_back({ptr, fl->flushKind(), {fl}});
        else
            it->members.push_back(fl);
    }

    for (const Group &g : groups) {
        if (g.members.size() < 2)
            continue;
        // Distinct blocks only; same-block duplicates belong to the
        // elision/dedup passes.
        std::set<const BasicBlock *> blocks;
        bool distinct = true;
        for (Instruction *m : g.members)
            distinct &= blocks.insert(m->parent()).second;
        if (!distinct)
            continue;
        const BasicBlock *ncd = g.members[0]->parent();
        for (size_t i = 1; ncd && i < g.members.size(); i++)
            ncd = dom.nearestCommonDominator(ncd,
                                             g.members[i]->parent());
        if (!ncd || blocks.count(ncd))
            continue;
        BasicBlock *dest = const_cast<BasicBlock *>(ncd);
        if (!dest->terminator())
            continue;
        // The pointer's definition must be available at the hoist
        // point (any non-terminator position in dest or above).
        if (const Instruction *def = asInstr(g.ptr)) {
            if (!dom.dominates(def->parent(), dest))
                continue;
        }
        // Never hoist into a cycle: if a sibling can reach the
        // hoist point again (a loop back edge), the hoisted flush
        // would re-execute every iteration — still correct, but a
        // dynamic pessimization, the opposite of PRE.
        {
            bool in_cycle = false;
            std::set<const BasicBlock *> seen;
            std::vector<BasicBlock *> stack;
            for (Instruction *m : g.members)
                stack.push_back(m->parent());
            while (!in_cycle && !stack.empty()) {
                BasicBlock *bb = stack.back();
                stack.pop_back();
                if (!seen.insert(bb).second)
                    continue;
                for (BasicBlock *s : cfg.succs(bb)) {
                    if (s == dest) {
                        in_cycle = true;
                        break;
                    }
                    stack.push_back(s);
                }
            }
            if (in_cycle)
                continue;
        }
        // Every path leaving dest must reach a sibling through a
        // pool-invisible window.
        std::map<const BasicBlock *, Instruction *> memberIn;
        for (Instruction *m : g.members)
            memberIn[m->parent()] = m;
        bool ok = true;
        std::set<const BasicBlock *> visited;
        std::vector<BasicBlock *> work(cfg.succs(dest).begin(),
                                       cfg.succs(dest).end());
        if (work.empty())
            ok = false;
        while (ok && !work.empty()) {
            BasicBlock *bb = work.back();
            work.pop_back();
            if (!visited.insert(bb).second)
                continue;
            auto mit = memberIn.find(bb);
            Instruction *member =
                mit == memberIn.end() ? nullptr : mit->second;
            bool fell_through = true;
            for (auto &in : *bb) {
                if (in.get() == member) {
                    fell_through = false;
                    break; // window ends at the sibling
                }
                if (isPoolVisible(*in)) {
                    ok = false;
                    fell_through = false;
                    break;
                }
            }
            if (!fell_through)
                continue;
            if (cfg.succs(bb).empty()) {
                ok = false; // fell off without meeting a sibling
                break;
            }
            for (BasicBlock *s : cfg.succs(bb))
                work.push_back(s);
        }
        if (!ok)
            continue;

        IRBuilder b(f->parent());
        b.setInsertPointBefore(dest->terminator());
        b.setLoc(g.members[0]->loc());
        Instruction *hoisted = b.createFlush(g.ptr, g.kind);

        FlushOptRecord r;
        r.kind = FlushOptRecord::Kind::Hoist;
        r.function = f->name();
        r.instrId = hoisted->id();
        r.block = dest->name();
        for (Instruction *m : g.members) {
            r.siblingIds.push_back(m->id());
            m->parent()->erase(m);
        }
        stats.flushesHoisted++;
        stats.hoistSitesRemoved += r.siblingIds.size();
        stats.records.push_back(std::move(r));
    }
}

/** Fence coalescing: exact no-op removal first, then the re-fenced
 *  (delayed-drain) direction. */
void
passFences(Function *f, const Cfg &cfg, FlushOptStats &stats)
{
    for (Instruction *fe : collectOps(f, Opcode::Fence)) {
        if (!cfg.reachableFromEntry(fe->parent()))
            continue;
        const Instruction *cover = nullptr;
        auto cl = [&](const Instruction &in) {
            return &in == fe ? Ev::Thru : classifyFenceForward(in);
        };
        if (!coveredBackward(cfg, fe, cl, &cover))
            continue;
        record(stats, FlushOptRecord::Kind::FenceForward, f,
               fe->id(), cover ? cover->id() : 0);
        stats.fencesForward++;
        fe->parent()->erase(fe);
    }
    for (Instruction *fe : collectOps(f, Opcode::Fence)) {
        if (!cfg.reachableFromEntry(fe->parent()))
            continue;
        const Instruction *cover = nullptr;
        auto cl = [&](const Instruction &in) {
            return classifyFenceBackward(in);
        };
        if (!coveredForward(cfg, fe, cl, &cover))
            continue;
        record(stats, FlushOptRecord::Kind::FenceBackward, f,
               fe->id(), cover ? cover->id() : 0);
        stats.fencesBackward++;
        fe->parent()->erase(fe);
    }
}

/**
 * Pass D: sink-and-merge over paired store/flush chains.
 *
 * A chain is a same-block run of CLWB/CLFLUSHOPT flushes of the same
 * folded base with *strictly increasing* exact offsets, where the
 * only memory writes between members are plain stores to the next
 * member's exact (base, offset) and nothing in the window observes
 * durability (no fence, durpoint, call, PmMap, Ret, NT store,
 * memcpy/memset, or foreign flush). Two facts make the rewrite safe
 * for durpoint-granularity crash exploration:
 *
 *  - sinking: the window contains no crash-explorable point, and for
 *    every line either program flushes, the last write to that line
 *    precedes the program's last covering flush (the increasing-
 *    offset + paired-store discipline guarantees it), so both
 *    programs enqueue identical final data by the window's end;
 *  - merging: after the sink the flushes are adjacent; for offsets
 *    a < m < b with b - a < 64, floor monotonicity gives
 *    line(m) in {line(a), line(b)} for EVERY base alignment, so an
 *    interior flush whose cluster endpoints are kept is a no-op.
 *
 * Members are clustered greedily (a cluster ends when the next
 * offset is >= 64 bytes past the cluster start); each cluster keeps
 * its first and last member, interior members are dropped, and the
 * kept members are re-seated at the chain tail (after every paired
 * store). Chains with nothing to drop are left untouched.
 */
void
passSinkMerge(Function *f, const Cfg &cfg, FlushOptStats &stats)
{
    struct Chain
    {
        const Value *base = nullptr;
        FlushKind kind{};
        std::vector<Instruction *> members;
        std::vector<int64_t> offsets;
        bool pendingStoreMismatch = false;
        std::vector<int64_t> pendingStoreOffsets;
    };

    auto finalize = [&](BasicBlock *bb, Chain &c) {
        if (c.members.size() < 2) {
            c = Chain{};
            return;
        }
        // Greedy clusters over the (sorted) offsets; keep first and
        // last of each, drop the interior.
        std::vector<bool> keep(c.members.size(), false);
        size_t start = 0;
        for (size_t i = 0; i < c.offsets.size(); i++) {
            bool last_in_cluster =
                i + 1 == c.offsets.size() ||
                c.offsets[i + 1] - c.offsets[start] >= kLine;
            if (i == start || last_in_cluster)
                keep[i] = true;
            if (last_in_cluster)
                start = i + 1;
        }
        size_t dropped = 0;
        for (bool k : keep)
            dropped += !k;
        if (dropped == 0) {
            c = Chain{};
            return;
        }

        Instruction *anchor = c.members.back(); // max offset: kept
        FlushOptRecord r;
        r.kind = FlushOptRecord::Kind::Sink;
        r.function = f->name();
        r.instrId = anchor->id();
        r.block = bb->name();
        IRBuilder b(f->parent());
        for (size_t i = 0; i + 1 < c.members.size(); i++) {
            Instruction *m = c.members[i];
            if (keep[i]) {
                // Re-seat at the chain tail, after every window
                // store.
                b.setInsertPointBefore(anchor);
                b.setLoc(m->loc());
                b.createFlush(m->operand(0), c.kind);
                stats.flushesSunk++;
            } else {
                r.siblingIds.push_back(m->id());
                stats.flushesMerged++;
            }
            bb->erase(m);
        }
        stats.records.push_back(std::move(r));
        c = Chain{};
    };

    for (BasicBlock *bb : cfg.blocks()) {
        if (!cfg.reachableFromEntry(bb))
            continue;
        Chain chain;
        // Iterate by id snapshot: finalize edits the block behind
        // the cursor only (members precede the current position).
        std::vector<Instruction *> instrs;
        for (auto &in : *bb)
            instrs.push_back(in.get());
        for (Instruction *in : instrs) {
            switch (in->op()) {
              case Opcode::Flush: {
                FoldedPtr fp = foldPtr(in->operand(0));
                bool extends =
                    chain.base == fp.base &&
                    chain.kind == in->flushKind() &&
                    !chain.offsets.empty() &&
                    fp.offset > chain.offsets.back() &&
                    !chain.pendingStoreMismatch;
                if (extends) {
                    for (int64_t so : chain.pendingStoreOffsets)
                        extends &= so == fp.offset;
                }
                if (extends) {
                    chain.members.push_back(in);
                    chain.offsets.push_back(fp.offset);
                    chain.pendingStoreOffsets.clear();
                } else {
                    finalize(bb, chain);
                    if (in->flushKind() != FlushKind::Clflush) {
                        chain.base = fp.base;
                        chain.kind = in->flushKind();
                        chain.members = {in};
                        chain.offsets = {fp.offset};
                    }
                }
                break;
              }
              case Opcode::Store: {
                if (in->nonTemporal()) {
                    finalize(bb, chain);
                    break;
                }
                if (chain.members.empty())
                    break;
                FoldedPtr sp = foldPtr(in->operand(1));
                if (sp.base == chain.base)
                    chain.pendingStoreOffsets.push_back(sp.offset);
                else
                    chain.pendingStoreMismatch = true;
                break;
              }
              case Opcode::Memcpy:
              case Opcode::Memset:
              case Opcode::Fence:
              case Opcode::DurPoint:
              case Opcode::Call:
              case Opcode::PmMap:
              case Opcode::Ret:
                finalize(bb, chain);
                break;
              default:
                if (isSchedBarrier(in->op()))
                    finalize(bb, chain);
                break;
            }
        }
        finalize(bb, chain);
    }
}

/**
 * Pass E: loop-range promotion. Matches the canonical per-word loop
 * flush the fixer emits —
 *
 *   header:  %i = load %iv ; %c = cmp ult %i, LEN
 *            condbr %c, %body, %exit
 *   body:    ... flush KIND (gep BASE, %i) ... ; br %header
 *
 * with BASE and LEN defined outside the loop, no other durability-
 * relevant operation in either loop block, %exit reached only from
 * the header — and replaces the flush with one
 * __hippo_flush_range(BASE, LEN) call at the top of %exit. Every
 * line the loop dirtied through gep(BASE, %i) has %i <u LEN, so the
 * range call covers it with final data; extra (clean) lines in the
 * range flush as no-ops. Like pass D this holds at durpoint
 * granularity: neither loop block may contain a crash-explorable
 * point. Applied only when the fixer's helper is already in the
 * module, so the optimizer never grows the static flush count.
 */
void
passLoopRange(Function *f, const Cfg &cfg, FlushOptStats &stats)
{
    if (f->name() == flushRangeHelperName)
        return;
    Function *helper =
        f->parent()->findFunction(flushRangeHelperName);
    if (!helper)
        return;

    for (BasicBlock *body : cfg.blocks()) {
        if (!cfg.reachableFromEntry(body))
            continue;
        Instruction *bterm = body->terminator();
        if (!bterm || bterm->op() != Opcode::Br)
            continue;
        BasicBlock *header = bterm->target(0);
        if (header == body)
            continue;
        Instruction *hterm = header->terminator();
        if (!hterm || hterm->op() != Opcode::CondBr)
            continue;
        if (hterm->target(0) != body)
            continue; // loop must be entered on the TRUE edge
        BasicBlock *exitBb = hterm->target(1);
        if (exitBb == body || exitBb == header)
            continue;
        if (cfg.preds(exitBb).size() != 1)
            continue;

        // Guard: cmp ult %i, LEN with LEN defined outside the loop.
        const Instruction *guard = asInstr(hterm->operand(0));
        if (!guard || guard->op() != Opcode::Cmp ||
            guard->cmpPred() != CmpPred::Ult)
            continue;
        Value *iv = guard->operand(0);
        Value *len = guard->operand(1);
        auto outsideLoop = [&](const Value *v) {
            const Instruction *in = asInstr(v);
            return !in ||
                   (in->parent() != header && in->parent() != body);
        };
        if (!outsideLoop(len))
            continue;

        // Exactly one flush in the loop, in the body, of
        // gep(BASE, %i); nothing else durability-relevant.
        Instruction *flush = nullptr;
        bool clean = true;
        for (BasicBlock *bb : {header, body}) {
            for (auto &owned : *bb) {
                Instruction &in = *owned;
                switch (in.op()) {
                  case Opcode::Flush:
                    if (flush || bb != body ||
                        in.flushKind() == FlushKind::Clflush)
                        clean = false;
                    else
                        flush = &in;
                    break;
                  case Opcode::Store:
                    clean &= !in.nonTemporal();
                    break;
                  case Opcode::Memcpy:
                  case Opcode::Memset:
                  case Opcode::Fence:
                  case Opcode::DurPoint:
                  case Opcode::Call:
                  case Opcode::PmMap:
                  case Opcode::Ret:
                    clean = false;
                    break;
                  default:
                    clean &= !isSchedBarrier(in.op());
                    break;
                }
            }
        }
        if (!clean || !flush)
            continue;
        const Instruction *gep = asInstr(flush->operand(0));
        if (!gep || gep->op() != Opcode::Gep ||
            gep->operand(1) != iv)
            continue;
        Value *base = gep->operand(0);
        if (!outsideLoop(base))
            continue;

        IRBuilder b(f->parent());
        b.setInsertPoint(exitBb, exitBb->begin());
        b.setLoc(flush->loc());
        Instruction *call = b.createCall(helper, {base, len});

        FlushOptRecord r;
        r.kind = FlushOptRecord::Kind::LoopRange;
        r.function = f->name();
        r.instrId = flush->id();
        r.coverId = call->id();
        r.block = exitBb->name();
        stats.records.push_back(std::move(r));
        stats.loopRanges++;
        body->erase(flush);
    }
}

size_t
countOps(const Module &m, Opcode op)
{
    size_t n = 0;
    for (const auto &f : m.functions())
        for (const auto &bb : f->blocks())
            for (const auto &in : *bb)
                n += in->op() == op;
    return n;
}

} // namespace

std::string
FlushOptRecord::str() const
{
    switch (kind) {
      case Kind::Dedup:
        return format("OPT dedup @%s#%u covered-by #%u",
                      function.c_str(), instrId, coverId);
      case Kind::Elide:
        return format("OPT elide @%s#%u covered-by #%u",
                      function.c_str(), instrId, coverId);
      case Kind::Hoist: {
        std::string ids;
        for (uint32_t id : siblingIds)
            ids += (ids.empty() ? "#" : ",#") + std::to_string(id);
        return format("OPT hoist @%s block=%s new=#%u removed=[%s]",
                      function.c_str(), block.c_str(), instrId,
                      ids.c_str());
      }
      case Kind::FenceForward:
        return format("OPT fence-fwd @%s#%u covered-by #%u",
                      function.c_str(), instrId, coverId);
      case Kind::FenceBackward:
        return format("OPT fence-bwd @%s#%u covered-by #%u",
                      function.c_str(), instrId, coverId);
      case Kind::Sink: {
        std::string ids;
        for (uint32_t id : siblingIds)
            ids += (ids.empty() ? "#" : ",#") + std::to_string(id);
        return format(
            "OPT sink @%s block=%s anchor=#%u merged=[%s]",
            function.c_str(), block.c_str(), instrId, ids.c_str());
      }
      case Kind::LoopRange:
        return format(
            "OPT loop-range @%s#%u -> call#%u block=%s",
            function.c_str(), instrId, coverId, block.c_str());
    }
    return "OPT ?";
}

std::string
FlushOptStats::str() const
{
    return format("flushes %zu->%zu, fences %zu->%zu "
                  "(dedup %zu, elide %zu, hoist %zu/%zu, "
                  "fence-fwd %zu, fence-bwd %zu, merge %zu, "
                  "loop-range %zu)",
                  flushesBefore, flushesAfter, fencesBefore,
                  fencesAfter, flushesDeduped, flushesElided,
                  flushesHoisted, hoistSitesRemoved, fencesForward,
                  fencesBackward, flushesMerged, loopRanges);
}

std::string
FlushOptStats::writeText() const
{
    std::string out = format(
        "OPT-SUMMARY flushes=%zu->%zu fences=%zu->%zu dedup=%zu "
        "elide=%zu hoist=%zu/%zu fence-fwd=%zu fence-bwd=%zu "
        "sink=%zu merge=%zu loop-range=%zu\n",
        flushesBefore, flushesAfter, fencesBefore, fencesAfter,
        flushesDeduped, flushesElided, flushesHoisted,
        hoistSitesRemoved, fencesForward, fencesBackward,
        flushesSunk, flushesMerged, loopRanges);
    for (const FlushOptRecord &r : records)
        out += r.str() + "\n";
    return out;
}

void
FlushOptStats::exportMetrics(support::MetricsRegistry &reg,
                             const std::string &prefix) const
{
    reg.counter(prefix + ".runs").inc();
    reg.counter(prefix + ".flushes_before").inc(flushesBefore);
    reg.counter(prefix + ".flushes_after").inc(flushesAfter);
    reg.counter(prefix + ".fences_before").inc(fencesBefore);
    reg.counter(prefix + ".fences_after").inc(fencesAfter);
    reg.counter(prefix + ".dedup").inc(flushesDeduped);
    reg.counter(prefix + ".elide").inc(flushesElided);
    reg.counter(prefix + ".hoist_inserted").inc(flushesHoisted);
    reg.counter(prefix + ".hoist_removed").inc(hoistSitesRemoved);
    reg.counter(prefix + ".fence_forward").inc(fencesForward);
    reg.counter(prefix + ".fence_backward").inc(fencesBackward);
    reg.counter(prefix + ".sink").inc(flushesSunk);
    reg.counter(prefix + ".merge").inc(flushesMerged);
    reg.counter(prefix + ".loop_range").inc(loopRanges);
}

void
FlushOptStats::merge(const FlushOptStats &o)
{
    flushesBefore += o.flushesBefore;
    flushesAfter += o.flushesAfter;
    fencesBefore += o.fencesBefore;
    fencesAfter += o.fencesAfter;
    flushesDeduped += o.flushesDeduped;
    flushesElided += o.flushesElided;
    flushesHoisted += o.flushesHoisted;
    hoistSitesRemoved += o.hoistSitesRemoved;
    fencesForward += o.fencesForward;
    fencesBackward += o.fencesBackward;
    flushesSunk += o.flushesSunk;
    flushesMerged += o.flushesMerged;
    loopRanges += o.loopRanges;
    records.insert(records.end(), o.records.begin(),
                   o.records.end());
}

FlushOptStats
optimizeFlushes(ir::Module *m, const FlushOptConfig &cfg)
{
    FlushOptStats stats;
    stats.flushesBefore = countOps(*m, Opcode::Flush);
    stats.fencesBefore = countOps(*m, Opcode::Fence);

    analysis::PointsTo pts(*m);
    for (const auto &f : m->functions()) {
        if (f->blocks().empty())
            continue;
        Cfg cfgv(*f);
        DominatorTree dom(cfgv);
        if (cfg.loopRange)
            passLoopRange(f.get(), cfgv, stats);
        if (cfg.sinkAndMerge)
            passSinkMerge(f.get(), cfgv, stats);
        if (cfg.dedupSameLine)
            passDedup(f.get(), cfgv, pts, stats);
        if (cfg.elideDominated)
            passElide(f.get(), cfgv, pts, stats);
        if (cfg.hoistPartial) {
            passHoist(f.get(), cfgv, dom, stats);
            // Hoisted flushes dominate their old siblings' suffixes;
            // a second elision pass folds now-clean-line leftovers.
            if (cfg.elideDominated)
                passElide(f.get(), cfgv, pts, stats);
        }
        if (cfg.coalesceFences)
            passFences(f.get(), cfgv, stats);
    }

    stats.flushesAfter = countOps(*m, Opcode::Flush);
    stats.fencesAfter = countOps(*m, Opcode::Fence);
    return stats;
}

namespace
{

/** One observable capture of a module for the differential check. */
struct Probe
{
    bool ok = true;
    std::string diag;
    std::set<std::string> bugKeys;
    std::set<std::string> staticKeys;
    uint64_t digest = 0;
    uint64_t chaosDigest = 0;
};

Probe
probeModule(ir::Module *m, const FlushOptVerifyConfig &cfg)
{
    Probe p;
    try {
        vm::VmConfig vc;
        vc.engine = cfg.vmEngine;
        if (cfg.stepBudget || cfg.heapBudget || cfg.timeBudgetMs) {
            vc.sandbox = true;
            vc.stepBudget = cfg.stepBudget;
            vc.heapBudget = cfg.heapBudget;
            vc.timeBudgetMs = cfg.timeBudgetMs;
        }
        if (cfg.checkDetector) {
            pmem::PmPool pool(64u << 20);
            vm::VmConfig tvc = vc;
            tvc.traceEnabled = true;
            vm::Vm machine(m, &pool, tvc);
            auto run = machine.run(cfg.entry, cfg.entryArgs);
            if (!run.ok()) {
                p.ok = false;
                p.diag = "entry run: " + run.diag;
                return p;
            }
            auto report = pmcheck::analyze(machine.trace());
            for (const auto &bug : report.bugs)
                p.bugKeys.insert(bug.storeSiteKey());
        }
        if (cfg.checkStatic) {
            analysis::StaticCheckerConfig sc;
            sc.entry = cfg.entry;
            auto sreport = analysis::checkDurability(*m, sc);
            for (const auto &c : sreport.candidates)
                p.staticKeys.insert(c.storeSiteKey());
        }
        pmcheck::CrashExplorerConfig cc;
        cc.entry = cfg.entry;
        cc.entryArgs = cfg.entryArgs;
        if (cfg.recovery.empty()) {
            cc.recovery = cfg.entry;
            cc.recoveryArgs = cfg.entryArgs;
        } else {
            cc.recovery = cfg.recovery;
            cc.recoveryArgs = cfg.recoveryArgs;
        }
        cc.jobs = cfg.jobs;
        cc.vmEngine = cfg.vmEngine;
        cc.stepBudget = cfg.stepBudget;
        cc.heapBudget = cfg.heapBudget;
        cc.timeBudgetMs = cfg.timeBudgetMs;
        p.digest = pmcheck::recoveryDigest(
            pmcheck::exploreCrashes(m, cc));
        if (cfg.faults.tornChance > 0) {
            cc.faults = cfg.faults;
            cc.seed = cfg.faults.seed;
            p.chaosDigest = pmcheck::recoveryDigest(
                pmcheck::exploreCrashes(m, cc));
        }
    } catch (const std::exception &e) {
        p.ok = false;
        p.diag = e.what();
    }
    return p;
}

/** First key in @p after missing from @p before, if any. */
std::string
firstNewKey(const std::set<std::string> &before,
            const std::set<std::string> &after)
{
    for (const std::string &k : after)
        if (!before.count(k))
            return k;
    return {};
}

} // namespace

void
FlushOptOutcome::exportMetrics(support::MetricsRegistry &reg,
                               const std::string &prefix) const
{
    if (!reverted)
        stats.exportMetrics(reg, prefix);
    reg.counter(prefix + ".verify.kept").inc(verified && changed);
    reg.counter(prefix + ".verify.unchanged").inc(!changed);
    reg.counter(prefix + ".verify.reverts").inc(reverted);
}

FlushOptOutcome
optimizeAndVerify(std::unique_ptr<ir::Module> &m,
                  const FlushOptVerifyConfig &cfg)
{
    FlushOptOutcome out;

    Probe before = probeModule(m.get(), cfg);
    if (!before.ok) {
        // Cannot establish the baseline; do no harm — leave the
        // module untouched.
        out.failReason = "baseline capture failed: " + before.diag;
        return out;
    }
    out.digestBefore = before.digest;
    out.chaosDigestBefore = before.chaosDigest;

    std::string snapshot = ir::moduleToString(*m);
    out.stats = optimizeFlushes(m.get(), cfg.opt);
    out.changed = out.stats.flushesRemoved() +
                      out.stats.fencesRemoved() +
                      out.stats.flushesHoisted +
                      out.stats.flushesSunk + out.stats.loopRanges >
                  0;
    if (!out.changed) {
        out.verified = true;
        out.digestAfter = before.digest;
        out.chaosDigestAfter = before.chaosDigest;
        return out;
    }

    Probe after = probeModule(m.get(), cfg);
    out.digestAfter = after.digest;
    out.chaosDigestAfter = after.chaosDigest;

    std::string reason;
    if (!after.ok) {
        reason = "optimized " + after.diag;
    } else if (std::string k =
                   firstNewKey(before.bugKeys, after.bugKeys);
               !k.empty()) {
        reason = "pmcheck found a new bug at " + k;
    } else if (std::string k = firstNewKey(before.staticKeys,
                                           after.staticKeys);
               !k.empty()) {
        reason = "static checker found a new candidate at " + k;
    } else if (after.digest != before.digest) {
        reason = format("recovery digest changed "
                        "%016llx -> %016llx",
                        (unsigned long long)before.digest,
                        (unsigned long long)after.digest);
    } else if (cfg.faults.tornChance > 0 &&
               after.chaosDigest != before.chaosDigest) {
        reason = format("chaos recovery digest changed "
                        "%016llx -> %016llx",
                        (unsigned long long)before.chaosDigest,
                        (unsigned long long)after.chaosDigest);
    }

    if (!reason.empty()) {
        std::string err;
        auto restored = ir::parseModule(snapshot, &err);
        hippo_assert(restored != nullptr,
                     "optimizer snapshot does not re-parse: %s",
                     err.c_str());
        m = std::move(restored);
        out.reverted = true;
        out.failReason = reason;
        return out;
    }
    out.verified = true;
    return out;
}

} // namespace hippo::core
