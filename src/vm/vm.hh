/**
 * @file
 * The PMIR interpreter. Executes a Module against a PmPool, emitting
 * the PM-operation trace that bug finders consume and charging a
 * deterministic simulated-time cost model so the Redis-style
 * performance experiments (Fig. 4) measure the relative cost of fix
 * strategies rather than host noise.
 */

#ifndef HIPPO_VM_VM_HH
#define HIPPO_VM_VM_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ir/module.hh"
#include "pmem/pm_pool.hh"
#include "trace/trace.hh"

namespace hippo::support
{
class MetricsRegistry;
} // namespace hippo::support

namespace hippo::vm
{

class FastInterp;
struct BcProgram;

/** Base virtual address of the volatile heap/stack arena. */
constexpr uint64_t volatileBaseAddr = 0x10000000ULL;

/**
 * Simulated-time costs in nanoseconds. Defaults approximate published
 * Optane DC measurements: PM load latency 2-3x DRAM, CLWB cheap to
 * issue, fences expensive because they drain pending write-backs.
 */
struct CostModel
{
    double aluNs = 0.3;        ///< arithmetic / compare / branch
    double loadNs = 1.0;       ///< DRAM load
    double storeNs = 1.0;      ///< store into cache
    double pmLoadNs = 2.5;     ///< PM load (2-3x DRAM per paper §1)
    double flushNs = 2.0;      ///< CLWB/CLFLUSHOPT issue cost
    double clflushNs = 60.0;   ///< CLFLUSH: serializing write-back
    double fenceBaseNs = 15.0; ///< fence with nothing pending
    double fenceDrainNs = 30.0;   ///< fence with >=1 pending line
    double fencePerLineNs = 15.0; ///< extra per pending line beyond 1
    double callNs = 1.5;       ///< call/ret overhead
    double perByteCopyNs = 0.12; ///< memcpy/memset per byte
};

/**
 * How a Vm::run ended under the watchdog sandbox. Anything but Ok
 * means the run was cut short without producing a usable final state;
 * callers (the crash explorer's degradation ladder, hippoc) decide
 * whether to retry, degrade, or surface an error.
 */
enum class ExecOutcome : uint8_t
{
    Ok,             ///< ran to completion (or to an injected crash)
    Timeout,        ///< step or wall-clock budget exhausted
    BudgetExceeded, ///< volatile heap budget exhausted
    Trap,           ///< sandboxed error (OOB, div0, depth, bad entry)
};

const char *execOutcomeName(ExecOutcome o);

/**
 * Which interpreter executes runs. Tree is the original
 * tree-walking oracle; Bytecode is the compiled direct-threaded
 * fast path (DESIGN.md "Bytecode fast path") — observably
 * byte-identical by construction and enforced by the differential
 * suite (tests/test_fast_interp.cc). Auto resolves to Bytecode
 * unless the HIPPO_VM_ENGINE environment variable says "tree".
 */
enum class VmEngine : uint8_t
{
    Tree,
    Bytecode,
    Auto,
};

const char *vmEngineName(VmEngine e);

/** Parse "tree" / "bytecode" / "auto"; false on anything else. */
bool parseVmEngine(const std::string &s, VmEngine &out);

/**
 * A deterministic thread schedule for one run (DESIGN.md "Thread
 * model & interleaving-bounded exploration"). The scheduler is
 * cooperative round-robin: a switch happens when a thread blocks on a
 * join or finishes, plus a forced preemption before the visible op
 * (thread_spawn / thread_join / atomic_*) whose global index appears
 * in preemptAt. A plan is pure data, so the same plan replays the
 * same interleaving on either engine at any host parallelism — the
 * schedule is a pure function of the plan, never of wall clock.
 */
struct SchedulePlan
{
    uint64_t id = 0;                 ///< plan index within a bound
    std::vector<uint64_t> preemptAt; ///< sorted visible-op indices
};

/** VM configuration. */
struct VmConfig
{
    bool traceEnabled = false;  ///< record trace events
    /**
     * When set (and traceEnabled), events stream to this sink
     * instead of accumulating in the in-memory trace — e.g. an
     * pmcheck::OnlineDetector. Object interning still happens in the
     * Vm's trace (it stays small).
     */
    trace::EventSink *eventSink = nullptr;
    bool traceOutputs = true;   ///< include Output events in trace
    bool durPointAtExit = true; ///< synthesize a durpoint at exit
    int64_t crashAtDurPoint = -1; ///< stop at the Nth durpoint (0-based)
    /** Crash after executing this many instructions of the run
     *  (0 = disabled). Unlike crashAtDurPoint this can land in the
     *  middle of an update sequence, producing torn states for
     *  recovery testing. */
    uint64_t crashAtStep = 0;

    /**
     * Exploration probes (the crash explorer's snapshot engine).
     * Each fires at exactly the boundary where the corresponding
     * crash knob would raise its CrashSignal, so an observer sees
     * the pool in the same state a crashing replay would leave
     * behind: durPointProbe fires inside the Nth durpoint (after
     * the trace event, before the crash check) with the durpoint
     * index, the in-run step count, and the durpoint's label (used
     * by the static pre-filter to prioritize suspicious durability
     * points); stepProbe fires before executing the instruction
     * whose in-run step is a multiple of stepProbeStride
     * (0 disables). Null = disabled.
     */
    std::function<void(uint64_t dur_index, uint64_t in_run_step,
                       const std::string &label)>
        durPointProbe;
    uint64_t stepProbeStride = 0;
    std::function<void(uint64_t in_run_step)> stepProbe;

    /**
     * Deterministic thread schedule for this run. Null runs without
     * forced preemptions (switches still happen at joins and thread
     * exits). See SchedulePlan.
     */
    const SchedulePlan *schedule = nullptr;

    /** Volatile-stack slice per spawned thread, carved from the top
     *  of the arena (the main thread keeps the rest). */
    uint64_t threadStackBytes = 1ULL << 20;
    uint32_t maxThreads = 8; ///< spawned threads per run (cap)

    /**
     * Fires at each cross-thread durability race: a release-ordered
     * atomic PM store that publishes while the storing thread still
     * has earlier PM stores on unpersisted cache lines. The probe
     * observes the pool at exactly the pre-publication boundary, so
     * the interleaving explorer can fork a crash image in which the
     * publication became durable before its payload. race_index is
     * the 0-based race ordinal within the run.
     */
    std::function<void(uint64_t race_index, uint64_t in_run_step,
                       uint32_t tid, uint64_t addr)>
        racePointProbe;

    uint64_t maxSteps = 1ULL << 33; ///< runaway guard
    uint64_t volatileBytes = 16ULL << 20;
    CostModel costs;

    /** Interpreter selection (see VmEngine). */
    VmEngine engine = VmEngine::Auto;

    /**
     * @name Watchdog sandbox (DESIGN.md "Fault model & graceful
     * degradation")
     *
     * Budgets are per run() call and active whenever nonzero: a run
     * that exhausts its step or wall-clock budget stops with
     * ExecOutcome::Timeout, one that exhausts its volatile-heap
     * budget stops with ExecOutcome::BudgetExceeded. The step budget
     * is deterministic; the wall-clock budget (checked every 4096
     * steps) is a hang-protection backstop only — determinism-
     * sensitive callers gate on steps and keep the time budget as a
     * last resort.
     *
     * `sandbox` additionally converts the interpreter's fatal error
     * traps (volatile OOB access, division by zero, call-depth and
     * arena exhaustion, missing entry function) into
     * ExecOutcome::Trap instead of killing the process, so one
     * hostile replay cannot take down a ThreadPool worker.
     */
    /// @{
    uint64_t stepBudget = 0;   ///< per-run instruction cap (0 = off)
    uint64_t heapBudget = 0;   ///< volatile arena byte cap (0 = off)
    uint64_t timeBudgetMs = 0; ///< per-run wall-clock cap (0 = off)
    bool sandbox = false;      ///< structured traps instead of fatal
    /// @}
};

/** One (label, value) pair produced by a print instruction. */
struct ProgramOutput
{
    std::string label;
    uint64_t value = 0;

    bool operator==(const ProgramOutput &o) const = default;
};

/** Result of one Vm::run call. */
struct RunResult
{
    bool crashed = false;  ///< stopped at an injected crash point
    uint64_t returnValue = 0;
    uint64_t steps = 0;
    double simNanos = 0;

    /** Scheduler-visible ops executed (spawn/join/atomic_*); the
     *  interleaving explorer sizes its preemption space from this. */
    uint64_t visibleOps = 0;

    /** Watchdog verdict; anything but Ok voids returnValue. */
    ExecOutcome outcome = ExecOutcome::Ok;
    std::string diag; ///< human-readable reason when outcome != Ok

    /** The Timeout came from the wall-clock budget. Wall-clock
     *  verdicts are host-dependent; determinism-sensitive callers
     *  (the crash explorer) retry such runs under step budgets so
     *  comparable aggregates never depend on host speed. */
    bool wallClockTimeout = false;

    bool ok() const { return outcome == ExecOutcome::Ok; }
};

/**
 * Dynamic points-to side table (for the Trace-AA heuristic variant):
 * maps (function, value) keys to the set of trace-object ids that the
 * value was observed holding a pointer into.
 */
class DynPointsTo
{
  public:
    /** Key for an Argument (by index) or Instruction (by id). */
    static uint64_t argKey(uint32_t index)
    {
        return 0x8000000000000000ULL | index;
    }
    static uint64_t instrKey(uint32_t id) { return id; }

    void
    record(const std::string &func, uint64_t key, uint32_t object)
    {
        table_[func][key].insert(object);
    }

    /** Observed object set; empty set when never observed. */
    const std::set<uint32_t> &
    lookup(const std::string &func, uint64_t key) const
    {
        static const std::set<uint32_t> empty;
        auto fit = table_.find(func);
        if (fit == table_.end())
            return empty;
        auto vit = fit->second.find(key);
        return vit == fit->second.end() ? empty : vit->second;
    }

  private:
    std::map<std::string, std::map<uint64_t, std::set<uint32_t>>>
        table_;
};

/**
 * The interpreter. The PmPool is owned by the caller so its
 * persistent image can survive across runs (crash-recovery tests
 * construct one pool and run the program, crash it, then run a
 * recovery entry point against the same pool).
 *
 * Threading contract (DESIGN.md "Threading model"): a Vm never
 * mutates the Module it executes, so independent Vm instances over
 * distinct pools may run concurrently against one shared module.
 * The Vm itself (and its pool, trace, and points-to table) is
 * single-threaded — one Vm per worker.
 */
class Vm
{
  public:
    Vm(ir::Module *module, pmem::PmPool *pool, VmConfig cfg = {});
    ~Vm();

    /** Execute @p function (by name) with integer/pointer args. */
    RunResult run(const std::string &function,
                  std::vector<uint64_t> args = {});

    /** The engine runs actually use (Auto resolved). */
    VmEngine engineResolved() const;

    /** Compiled bytecode (compiling now if needed). */
    const BcProgram &bytecode();

    ir::Module *module() const { return module_; }
    pmem::PmPool &pool() { return *pool_; }

    trace::Trace &trace() { return trace_; }
    const trace::Trace &trace() const { return trace_; }

    const std::vector<ProgramOutput> &outputs() const
    {
        return outputs_;
    }

    const DynPointsTo &dynPointsTo() const { return dynPts_; }

    /** Simulated nanoseconds accumulated across all runs. */
    double simNanos() const { return simNanos_; }

    /** Instructions executed across all runs. */
    uint64_t steps() const { return steps_; }

    /** Executions per opcode across all runs (gem5-style stats). */
    const std::map<ir::Opcode, uint64_t> &opcodeCounts() const
    {
        return opcodeCounts_;
    }

    /** Flush instructions executed across all runs (all kinds). The
     *  flush-optimizer benches compare this probe between a naive-fix
     *  and an optimized-fix module on the same workload. */
    uint64_t flushesExecuted() const;

    /** Fence instructions executed across all runs (all kinds). */
    uint64_t fencesExecuted() const;

    /**
     * @name Deterministic dispatch-cost probes
     *
     * The perf gate (bench_vm_dispatch) compares engines through
     * these instead of wall clock: the tree walker pays one operand
     * resolution per eval() call on top of its per-step dispatch,
     * while the fast path pays one handler dispatch per bytecode
     * record (superinstructions count once).
     */
    /// @{
    uint64_t treeOperandEvals() const { return treeEvals_; }
    uint64_t fastDispatches() const { return fastDispatches_; }
    uint64_t fastSuperExecuted() const { return fastSuper_; }
    /// @}

    /** Render the execution statistics as a small table. */
    std::string statsString() const;

    /**
     * Accumulate this Vm's execution census (runs, instructions,
     * simulated ns, per-opcode counts, flushes/fences by kind, NT
     * stores, injected crashes) and its pool's line-state counters
     * into @p reg under "<prefix>." / "<prefix>.pool.". Safe to
     * call concurrently from many workers: every count lands in an
     * order-independent counter, so the totals are deterministic
     * at any `jobs` setting.
     */
    void exportMetrics(support::MetricsRegistry &reg,
                       const std::string &prefix = "vm") const;

  private:
    struct Frame;
    struct ThreadCtx;
    struct SchedState;

    /** The fast interpreter shares all execution state. */
    friend class FastInterp;

    uint64_t eval(const Frame &frame, const ir::Value *v) const;
    uint64_t callFunction(ir::Function *f,
                          const std::vector<uint64_t> &args, int depth);
    void execStore(Frame &frame, const ir::Instruction &instr);
    void execFlush(Frame &frame, const ir::Instruction &instr);
    void execFence(Frame &frame, const ir::Instruction &instr);
    void execMemcpy(Frame &frame, const ir::Instruction &instr);
    void execMemset(Frame &frame, const ir::Instruction &instr);
    uint64_t execPmMap(Frame &frame, const ir::Instruction &instr);

    /// @name Thread/atomic bodies shared by both engines
    ///
    /// Both interpreters funnel the five scheduler-visible opcodes
    /// through these, so visible-op counting, preemption placement,
    /// and race detection are identical by construction (the same
    /// argument as the differential trace suite).
    /// @{
    using StackCapture =
        std::function<std::vector<trace::StackFrame>()>;

    uint64_t threadSpawnBody(const ir::Instruction &instr,
                             std::vector<uint64_t> args);
    uint64_t threadJoinBody(uint64_t tid);
    uint64_t atomicLoadBody(const ir::Instruction &instr,
                            uint64_t addr);
    void atomicStoreBody(const ir::Instruction &instr, uint64_t value,
                         uint64_t addr, const StackCapture &capture);
    uint64_t atomicRmwBody(const ir::Instruction &instr,
                           uint64_t addr, uint64_t operand,
                           const StackCapture &capture);
    /// @}

    /// @name Deterministic scheduler internals (defined in vm.cc)
    /// @{
    /** How a yielding thread parks. */
    enum class Park : uint8_t { Ready, Blocked, Finished };

    /** Thrown into parked threads during teardown to unwind them. */
    struct ThreadAbort {};

    void schedPoint();
    void schedYield(Park park);
    void saveCurrentCtx(ThreadCtx &t);
    void loadCtx(ThreadCtx &t);
    void threadEntry(uint32_t tid);
    void waitThreadFinished(uint32_t target);
    void joinAllSpawned();
    void teardownThreads();
    void checkPublishRace(uint64_t addr);
    void noteStoreLines(uint64_t addr, uint64_t size);
    void noteFlushLine(uint64_t addr);
    void noteFenceDrain();
    /// @}

    bool isPmAddr(uint64_t addr) const;

    /** Deliver a trace event to the sink or the in-memory trace. */
    void emit(trace::Event ev);

    void rawStore(uint64_t addr, const uint8_t *data, uint64_t size,
                  bool non_temporal);
    void rawLoad(uint64_t addr, uint8_t *out, uint64_t size) const;

    /** Trace-object id owning @p addr; ~0u when unknown. */
    uint32_t objectAt(uint64_t addr) const;

    std::vector<trace::StackFrame>
    captureStack(const Frame &frame, const ir::Instruction &instr) const;

    void recordDynPts(const Frame &frame, const ir::Value *ptr_value,
                      uint64_t addr);

    /** recordDynPts keyed by function name (shared with the fast
     *  interpreter, whose frames are not Vm::Frame). */
    void recordDynPtsNamed(const std::string &func,
                           const ir::Value *ptr_value, uint64_t addr);

    /** Compile the module to bytecode if not already done. */
    void ensureProgram();

    /** Raised internally when an injected crash point is reached. */
    struct CrashSignal {};

    /** Raised internally when a watchdog budget trips or a sandboxed
     *  trap fires; caught (only) in run(). */
    struct WatchdogSignal
    {
        ExecOutcome outcome;
        std::string diag;
        bool wallClock = false; ///< wall-clock (not step) timeout
    };

    /** Throw a sandboxed Trap, or hippo_fatal without the sandbox. */
    [[noreturn]] void trapOrFatal(const std::string &diag) const;

    /** Budget checks for the hot loop; @p in_run_step is 1-based. */
    void checkWatchdog(uint64_t in_run_step);

    ir::Module *module_;
    pmem::PmPool *pool_;
    VmConfig cfg_;

    std::vector<uint8_t> volatileMem_;
    uint64_t volatileSp_ = 0; ///< bump allocator offset
    /** Current thread's arena slice [base, limit). The main thread
     *  owns [0, limit) with limit lowered as spawns carve slices
     *  from the top; spawned threads get fixed slices. */
    uint64_t volatileSpBase_ = 0;
    uint64_t volatileLimit_ = 0;

    /** Live allocation ranges (LIFO, for addr -> object lookup). */
    struct LiveAlloc
    {
        uint64_t start;
        uint64_t end;
        uint32_t object;
    };
    std::vector<LiveAlloc> liveAllocs_;

    /** Mapped PM regions' object ids by region base. */
    std::map<uint64_t, std::pair<uint64_t, uint32_t>> pmObjects_;

    trace::Trace trace_;
    std::vector<ProgramOutput> outputs_;
    DynPointsTo dynPts_;

    double simNanos_ = 0;
    uint64_t steps_ = 0;
    uint64_t runs_ = 0;
    uint64_t crashesInjected_ = 0;
    uint64_t watchdogTimeouts_ = 0;
    uint64_t watchdogBudgetExceeded_ = 0;
    uint64_t watchdogTraps_ = 0;
    std::chrono::steady_clock::time_point runStartTime_{};
    uint64_t ntStores_ = 0;
    uint64_t runStartSteps_ = 0;
    uint64_t sinkSeq_ = 0; ///< event numbering in streaming mode
    std::map<ir::Opcode, uint64_t> opcodeCounts_;
    std::map<ir::FlushKind, uint64_t> flushCounts_;
    std::map<ir::FenceKind, uint64_t> fenceCounts_;
    int64_t durPointsSeen_ = 0;

    /** Lazily compiled bytecode (fast engine only). */
    std::unique_ptr<BcProgram> program_;

    /// @name Engine census (vm.tree.* / vm.fast.* counters)
    /// @{
    uint64_t treeRuns_ = 0;
    mutable uint64_t treeEvals_ = 0; ///< Vm::eval calls (tree only)
    uint64_t fastRuns_ = 0;
    uint64_t fastSteps_ = 0;
    uint64_t fastDispatches_ = 0;
    uint64_t fastSuper_ = 0;
    uint64_t fastCompiles_ = 0;
    /// @}

    /** Dynamic call-chain bookkeeping for stack capture. */
    const Frame *curParent_ = nullptr;
    const ir::Instruction *curCallSite_ = nullptr;

    /// @name Scheduler state (vm.sched.* counters)
    /// @{
    std::unique_ptr<SchedState> sched_; ///< null until first spawn
    uint32_t curTid_ = 0;     ///< running VM thread (0 = main)
    int lineTracking_ = -1;   ///< module has threads/atomics (lazy)
    bool lineTrackingEnabled_ = false;
    /** Current thread's PM lines with a store not yet flushed /
     *  flushed but not yet fenced (swapped at context switches). */
    std::set<uint64_t> curDirtyLines_;
    std::set<uint64_t> curFlushedLines_;
    uint64_t runVisibleOps_ = 0; ///< visible ops this run
    size_t planCursor_ = 0;      ///< next preemptAt entry this run
    uint64_t raceSeq_ = 0;       ///< race ordinal this run
    uint64_t schedSpawns_ = 0;
    uint64_t schedJoins_ = 0;
    uint64_t schedSwitches_ = 0;
    uint64_t schedPreemptions_ = 0;
    uint64_t schedVisibleOps_ = 0;
    uint64_t schedRaces_ = 0;
    uint64_t schedDeadlocks_ = 0;
    /// @}
};

} // namespace hippo::vm

#endif // HIPPO_VM_VM_HH
