/**
 * @file
 * Direct-threaded interpreter over the flat bytecode
 * (src/vm/bytecode.hh). One FastInterp is constructed per Vm::run
 * and shares the Vm's entire execution state (pool, volatile arena,
 * trace, outputs, watchdog counters, simulated clock) as a friend,
 * so a bytecode run is observably byte-identical to a tree-walk of
 * the same program: same RunResult, same trace, same probe firing
 * points, same costs accumulated in the same order.
 *
 * Dispatch uses computed goto on GCC/Clang when the build enables
 * HIPPO_COMPUTED_GOTO (the default; see the top-level
 * CMakeLists.txt option) and a portable switch loop otherwise.
 * Hot-path counters (per-opcode, flush/fence kinds) accumulate in
 * flat arrays and merge into the Vm's maps when the FastInterp is
 * destroyed — including during unwinding on crash/watchdog signals,
 * which Vm::run catches after the merge has happened.
 */

#ifndef HIPPO_VM_FAST_INTERP_HH
#define HIPPO_VM_FAST_INTERP_HH

#include <cstdint>
#include <vector>

#include "vm/bytecode.hh"

namespace hippo::trace
{
struct StackFrame;
} // namespace hippo::trace

namespace hippo::vm
{

class Vm;

/** Executes one Vm::run over a compiled BcProgram. */
class FastInterp
{
  public:
    FastInterp(Vm &vm, const BcProgram &prog);
    ~FastInterp();

    FastInterp(const FastInterp &) = delete;
    FastInterp &operator=(const FastInterp &) = delete;

    /** Run @p f (must be in the compiled module) with @p args. */
    uint64_t call(const ir::Function *f,
                  const std::vector<uint64_t> &args);

  private:
    /** Call-chain record for trace stack capture. */
    struct Frame
    {
        const ir::Function *func;
        const Frame *parent;
        const ir::Instruction *callSite;
    };

    uint64_t execFunc(const BcFunction &bf, const uint64_t *args,
                      size_t nargs, const Frame *parent,
                      const ir::Instruction *call_site, int depth);

    /** Per-step prologue: step count, watchdog, crash injection,
     *  probes, opcode census — in exactly the tree walker's order.
     *  Fused handlers call this once per component instruction. */
    void stepPre(ir::Opcode op);
    void slowStepChecks();
    [[noreturn]] void stepLimitExceeded();

    void storeBody(const Frame &frame, const ir::Instruction &in,
                   uint64_t value, uint64_t addr, uint64_t size,
                   bool non_temporal);
    void flushBody(const Frame &frame, const ir::Instruction &in,
                   uint64_t addr, ir::FlushKind kind);
    void fenceBody(const Frame &frame, const ir::Instruction &in,
                   ir::FenceKind kind);
    uint64_t pmMapBody(const Frame &frame,
                       const ir::Instruction &in);

    std::vector<trace::StackFrame>
    captureStack(const Frame &frame,
                 const ir::Instruction &instr) const;

    Vm &vm_;
    const BcProgram &prog_;
    bool slowStep_ = false; ///< any per-step slow knob is active

    /** Frame register file: one contiguous arena, bump-allocated per
     *  activation. Handlers re-fetch their base pointer after calls
     *  (growth may reallocate). */
    std::vector<uint64_t> regArena_;
    std::vector<uint64_t> argScratch_;

    uint64_t stepsAtCtor_ = 0;
    uint64_t dispatches_ = 0;
    uint64_t superExec_ = 0;
    uint64_t opCounts_[numIrOpcodes] = {};
    uint64_t flushCounts_[3] = {};
    uint64_t fenceCounts_[2] = {};
};

} // namespace hippo::vm

#endif // HIPPO_VM_FAST_INTERP_HH
