#include "vm/bytecode.hh"

#include "ir/basic_block.hh"
#include "ir/function.hh"
#include "ir/module.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace hippo::vm
{

using ir::Opcode;

const char *
bcOpName(BcOp op)
{
    switch (op) {
      case BcOp::Alloca: return "alloca";
      case BcOp::Load: return "load";
      case BcOp::Store: return "store";
      case BcOp::Flush: return "flush";
      case BcOp::Fence: return "fence";
      case BcOp::Gep: return "gep";
      case BcOp::Bin: return "bin";
      case BcOp::Cmp: return "cmp";
      case BcOp::Select: return "select";
      case BcOp::Br: return "br";
      case BcOp::CondBr: return "condbr";
      case BcOp::Call: return "call";
      case BcOp::Ret: return "ret";
      case BcOp::PmMap: return "pmmap";
      case BcOp::Memcpy: return "memcpy";
      case BcOp::Memset: return "memset";
      case BcOp::DurPoint: return "durpoint";
      case BcOp::Print: return "print";
      case BcOp::ThreadSpawn: return "thread.spawn";
      case BcOp::ThreadJoin: return "thread.join";
      case BcOp::AtomicLoad: return "atomic.load";
      case BcOp::AtomicStore: return "atomic.store";
      case BcOp::AtomicRmw: return "atomic.rmw";
      case BcOp::StoreFlush: return "store.flush";
      case BcOp::StoreFlushFence: return "store.flush.fence";
      case BcOp::GepLoad: return "gep.load";
      case BcOp::GepStore: return "gep.store";
      case BcOp::CmpBr: return "cmp.br";
      case BcOp::FallOff: return "falloff";
    }
    return "?";
}

namespace
{

/** Per-function compiler state. */
class FunctionCompiler
{
  public:
    FunctionCompiler(const ir::Function &f, const BcProgram &prog,
                     const BcOptions &opts)
        : func_(f), prog_(prog), opts_(opts)
    {}

    BcFunction compile();

  private:
    /** Pending branch-target patch: which field of which record. */
    enum class Field : uint8_t { A, B, C, Imm };
    struct Fixup
    {
        size_t index;
        Field field;
        const ir::BasicBlock *target;
    };

    uint32_t slotOf(const ir::Value *v);
    void emitBlock(const ir::BasicBlock &bb);
    BcInstr lower(const ir::Instruction &instr);

    /** Would @p store fuse with its successor flush (same address
     *  value)? Used both to fuse and to keep a preceding gep from
     *  stealing the store into a GepStore. */
    bool storeStartsFlushChain(ir::BasicBlock::const_iterator it,
                               const ir::BasicBlock &bb) const;

    const ir::Function &func_;
    const BcProgram &prog_;
    const BcOptions &opts_;
    BcFunction out_;
    std::map<const ir::Value *, uint32_t> constSlot_;
    std::map<const ir::BasicBlock *, uint32_t> blockPc_;
    std::vector<Fixup> fixups_;
};

uint32_t
FunctionCompiler::slotOf(const ir::Value *v)
{
    switch (v->kind()) {
      case ir::ValueKind::Instruction:
        return static_cast<const ir::Instruction *>(v)->id();
      case ir::ValueKind::Argument:
        return out_.argBase +
               static_cast<const ir::Argument *>(v)->index();
      case ir::ValueKind::Constant: {
        auto it = constSlot_.find(v);
        if (it != constSlot_.end())
            return it->second;
        uint32_t slot =
            out_.constBase + (uint32_t)out_.constPool.size();
        out_.constPool.push_back(
            static_cast<const ir::Constant *>(v)->value());
        constSlot_.emplace(v, slot);
        return slot;
      }
    }
    hippo_panic("bad value kind");
}

BcInstr
FunctionCompiler::lower(const ir::Instruction &instr)
{
    BcInstr bc;
    bc.op = (BcOp)instr.op();
    bc.src = &instr;
    switch (instr.op()) {
      case Opcode::Alloca:
        bc.dst = instr.id();
        bc.imm = instr.accessSize();
        break;
      case Opcode::Load:
        bc.a = slotOf(instr.operand(0));
        bc.dst = instr.id();
        bc.imm = instr.accessSize();
        break;
      case Opcode::Store:
        bc.a = slotOf(instr.operand(0));
        bc.b = slotOf(instr.operand(1));
        bc.imm = instr.accessSize();
        bc.flags = instr.nonTemporal() ? 1 : 0;
        break;
      case Opcode::Flush:
        bc.a = slotOf(instr.operand(0));
        bc.sub = (uint8_t)instr.flushKind();
        break;
      case Opcode::Fence:
        bc.sub = (uint8_t)instr.fenceKind();
        break;
      case Opcode::Gep:
        bc.a = slotOf(instr.operand(0));
        bc.b = slotOf(instr.operand(1));
        bc.dst = instr.id();
        break;
      case Opcode::Bin:
        bc.a = slotOf(instr.operand(0));
        bc.b = slotOf(instr.operand(1));
        bc.dst = instr.id();
        bc.sub = (uint8_t)instr.binOp();
        break;
      case Opcode::Cmp:
        bc.a = slotOf(instr.operand(0));
        bc.b = slotOf(instr.operand(1));
        bc.dst = instr.id();
        bc.sub = (uint8_t)instr.cmpPred();
        break;
      case Opcode::Select:
        bc.a = slotOf(instr.operand(0));
        bc.b = slotOf(instr.operand(1));
        bc.c = slotOf(instr.operand(2));
        bc.dst = instr.id();
        break;
      case Opcode::Br:
        fixups_.push_back({0, Field::A, instr.target(0)});
        break;
      case Opcode::CondBr:
        bc.a = slotOf(instr.operand(0));
        fixups_.push_back({0, Field::B, instr.target(0)});
        fixups_.push_back({0, Field::C, instr.target(1)});
        break;
      case Opcode::Call: {
        auto cit = prog_.indexOf.find(instr.callee());
        hippo_assert(cit != prog_.indexOf.end(),
                     "call to a function outside the module");
        bc.a = cit->second;
        bc.b = (uint32_t)out_.callArgs.size();
        bc.imm = instr.numOperands();
        for (size_t i = 0; i < instr.numOperands(); i++)
            out_.callArgs.push_back(slotOf(instr.operand(i)));
        if (instr.hasResult())
            bc.dst = instr.id();
        break;
      }
      case Opcode::Ret:
        if (instr.numOperands())
            bc.a = slotOf(instr.operand(0));
        break;
      case Opcode::PmMap:
        bc.dst = instr.id();
        bc.imm = instr.regionSize();
        break;
      case Opcode::Memcpy:
      case Opcode::Memset:
        bc.a = slotOf(instr.operand(0));
        bc.b = slotOf(instr.operand(1));
        bc.c = slotOf(instr.operand(2));
        break;
      case Opcode::DurPoint:
        break;
      case Opcode::Print:
        bc.a = slotOf(instr.operand(0));
        break;
      case Opcode::ThreadSpawn: {
        auto cit = prog_.indexOf.find(instr.callee());
        hippo_assert(cit != prog_.indexOf.end(),
                     "spawn of a function outside the module");
        bc.a = cit->second;
        bc.b = (uint32_t)out_.callArgs.size();
        bc.imm = instr.numOperands();
        for (size_t i = 0; i < instr.numOperands(); i++)
            out_.callArgs.push_back(slotOf(instr.operand(i)));
        bc.dst = instr.id();
        break;
      }
      case Opcode::ThreadJoin:
        bc.a = slotOf(instr.operand(0));
        bc.dst = instr.id();
        break;
      case Opcode::AtomicLoad:
        bc.a = slotOf(instr.operand(0));
        bc.dst = instr.id();
        bc.imm = instr.accessSize();
        bc.sub = (uint8_t)instr.memOrder();
        break;
      case Opcode::AtomicStore:
        bc.a = slotOf(instr.operand(0));
        bc.b = slotOf(instr.operand(1));
        bc.imm = instr.accessSize();
        bc.sub = (uint8_t)instr.memOrder();
        break;
      case Opcode::AtomicRmw:
        bc.a = slotOf(instr.operand(0));
        bc.b = slotOf(instr.operand(1));
        bc.dst = instr.id();
        bc.imm = instr.accessSize();
        bc.sub = (uint8_t)instr.binOp();
        bc.sub2 = (uint8_t)instr.memOrder();
        break;
    }
    return bc;
}

bool
FunctionCompiler::storeStartsFlushChain(
    ir::BasicBlock::const_iterator it, const ir::BasicBlock &bb) const
{
    const ir::Instruction &store = **it;
    if (store.op() != Opcode::Store)
        return false;
    auto next = std::next(it);
    if (next == bb.end())
        return false;
    const ir::Instruction &flush = **next;
    return flush.op() == Opcode::Flush &&
           flush.operand(0) == store.operand(1);
}

void
FunctionCompiler::emitBlock(const ir::BasicBlock &bb)
{
    blockPc_[&bb] = (uint32_t)out_.code.size();

    for (auto it = bb.begin(); it != bb.end();) {
        const ir::Instruction &instr = **it;
        auto next = std::next(it);

        if (opts_.enableSuper) {
            // store → flush (same address value) [→ fence]. The
            // flush chain has priority over a preceding GepStore so
            // the full durability idiom always fuses.
            if (storeStartsFlushChain(it, bb)) {
                const ir::Instruction &flush = **next;
                auto after = std::next(next);
                BcInstr bc = lower(instr);
                bc.sub = (uint8_t)flush.flushKind();
                bc.src2 = &flush;
                if (after != bb.end() &&
                    (*after)->op() == Opcode::Fence) {
                    bc.op = BcOp::StoreFlushFence;
                    bc.sub2 = (uint8_t)(*after)->fenceKind();
                    bc.src3 = after->get();
                    out_.irInstrs += 3;
                    it = std::next(after);
                } else {
                    bc.op = BcOp::StoreFlush;
                    out_.irInstrs += 2;
                    it = after;
                }
                out_.fused++;
                out_.code.push_back(bc);
                continue;
            }
            if (instr.op() == Opcode::Gep && next != bb.end()) {
                const ir::Instruction &succ = **next;
                if (succ.op() == Opcode::Load &&
                    succ.operand(0) == &instr) {
                    BcInstr bc = lower(instr);
                    bc.op = BcOp::GepLoad;
                    bc.dst2 = succ.id();
                    bc.imm = succ.accessSize();
                    bc.src2 = &succ;
                    out_.irInstrs += 2;
                    out_.fused++;
                    out_.code.push_back(bc);
                    it = std::next(next);
                    continue;
                }
                if (succ.op() == Opcode::Store &&
                    succ.operand(1) == &instr &&
                    !storeStartsFlushChain(next, bb)) {
                    BcInstr bc = lower(instr);
                    bc.op = BcOp::GepStore;
                    bc.c = slotOf(succ.operand(0));
                    bc.imm = succ.accessSize();
                    bc.flags = succ.nonTemporal() ? 1 : 0;
                    bc.src2 = &succ;
                    out_.irInstrs += 2;
                    out_.fused++;
                    out_.code.push_back(bc);
                    it = std::next(next);
                    continue;
                }
            }
            if (instr.op() == Opcode::Cmp && next != bb.end()) {
                const ir::Instruction &succ = **next;
                if (succ.op() == Opcode::CondBr &&
                    succ.operand(0) == &instr) {
                    BcInstr bc = lower(instr);
                    bc.op = BcOp::CmpBr;
                    bc.src2 = &succ;
                    fixups_.push_back({out_.code.size(), Field::C,
                                       succ.target(0)});
                    fixups_.push_back({out_.code.size(), Field::Imm,
                                       succ.target(1)});
                    out_.irInstrs += 2;
                    out_.fused++;
                    out_.code.push_back(bc);
                    it = std::next(next);
                    continue;
                }
            }
        }

        // Plain lowering. lower() queues fixups with a placeholder
        // index; stamp them with the record's final position.
        size_t queued = fixups_.size();
        BcInstr bc = lower(instr);
        for (size_t i = queued; i < fixups_.size(); i++)
            fixups_[i].index = out_.code.size();
        out_.irInstrs += 1;
        out_.code.push_back(bc);
        it = next;
    }

    // A block that does not end in a terminator (or an empty block)
    // falls into the guard, which reproduces the tree walker's
    // fell-off-block panic.
    if (bb.empty() || !bb.terminator()->isTerminator()) {
        BcInstr guard;
        guard.op = BcOp::FallOff;
        guard.imm = out_.fallOffBlocks.size();
        out_.fallOffBlocks.push_back(bb.name());
        out_.code.push_back(guard);
    }
}

BcFunction
FunctionCompiler::compile()
{
    out_.irFunc = &func_;
    out_.numRegs = func_.idBound();
    out_.argBase = out_.numRegs;
    out_.constBase = out_.argBase + (uint32_t)func_.numParams();

    for (const auto &bb : func_.blocks())
        emitBlock(*bb);

    for (const Fixup &fx : fixups_) {
        auto it = blockPc_.find(fx.target);
        hippo_assert(it != blockPc_.end(),
                     "branch to a block outside the function");
        BcInstr &bc = out_.code[fx.index];
        switch (fx.field) {
          case Field::A: bc.a = it->second; break;
          case Field::B: bc.b = it->second; break;
          case Field::C: bc.c = it->second; break;
          case Field::Imm: bc.imm = it->second; break;
        }
    }

    out_.frameSlots = out_.constBase + (uint32_t)out_.constPool.size();
    return out_;
}

} // namespace

BcProgram
compileModule(const ir::Module &m, const BcOptions &opts)
{
    BcProgram prog;
    prog.options = opts;
    // Index every function first so Call lowering can resolve
    // callees in any order.
    for (const auto &f : m.functions())
        prog.indexOf.emplace(f.get(), (uint32_t)prog.indexOf.size());
    for (const auto &f : m.functions()) {
        FunctionCompiler fc(*f, prog, opts);
        prog.funcs.push_back(fc.compile());
        const BcFunction &bf = prog.funcs.back();
        prog.totalInstrs += bf.irInstrs;
        prog.totalCode += bf.code.size();
        prog.totalFused += bf.fused;
    }
    return prog;
}

namespace
{

std::string
slotStr(const BcFunction &bf, uint32_t slot)
{
    if (slot == bcNoSlot)
        return "-";
    if (slot < bf.numRegs)
        return format("r%u", slot);
    if (slot < bf.constBase)
        return format("a%u", slot - bf.argBase);
    return format("k%u", slot - bf.constBase);
}

} // namespace

std::string
disassemble(const BcProgram &prog)
{
    std::string out;
    for (const BcFunction &bf : prog.funcs) {
        out += format("@%s: code=%zu regs=%u args=%u consts=%zu "
                      "fused=%u\n",
                      bf.irFunc->name().c_str(), bf.code.size(),
                      bf.numRegs,
                      (unsigned)bf.irFunc->numParams(),
                      bf.constPool.size(), bf.fused);
        for (size_t i = 0; i < bf.constPool.size(); i++)
            out += format("  k%zu = %llu\n", i,
                          (unsigned long long)bf.constPool[i]);
        for (size_t pc = 0; pc < bf.code.size(); pc++) {
            const BcInstr &bc = bf.code[pc];
            out += format("  %4zu: %-18s", pc, bcOpName(bc.op));
            auto slot = [&](uint32_t s) { return slotStr(bf, s); };
            switch (bc.op) {
              case BcOp::Alloca:
                out += format(" %s, %llu", slot(bc.dst).c_str(),
                              (unsigned long long)bc.imm);
                break;
              case BcOp::Load:
                out += format(" %s, [%s], %llu",
                              slot(bc.dst).c_str(),
                              slot(bc.a).c_str(),
                              (unsigned long long)bc.imm);
                break;
              case BcOp::Store:
              case BcOp::StoreFlush:
              case BcOp::StoreFlushFence:
                out += format(" [%s], %s, %llu%s",
                              slot(bc.b).c_str(),
                              slot(bc.a).c_str(),
                              (unsigned long long)bc.imm,
                              (bc.flags & 1) ? " nt" : "");
                if (bc.op != BcOp::Store)
                    out += format(" %s",
                                  ir::flushKindName(
                                      (ir::FlushKind)bc.sub));
                if (bc.op == BcOp::StoreFlushFence)
                    out += format(" %s",
                                  ir::fenceKindName(
                                      (ir::FenceKind)bc.sub2));
                break;
              case BcOp::Flush:
                out += format(" [%s] %s", slot(bc.a).c_str(),
                              ir::flushKindName(
                                  (ir::FlushKind)bc.sub));
                break;
              case BcOp::Fence:
                out += format(" %s", ir::fenceKindName(
                                         (ir::FenceKind)bc.sub));
                break;
              case BcOp::Gep:
                out += format(" %s, %s + %s", slot(bc.dst).c_str(),
                              slot(bc.a).c_str(),
                              slot(bc.b).c_str());
                break;
              case BcOp::GepLoad:
                out += format(" %s, %s, %s + %s, %llu",
                              slot(bc.dst).c_str(),
                              slot(bc.dst2).c_str(),
                              slot(bc.a).c_str(),
                              slot(bc.b).c_str(),
                              (unsigned long long)bc.imm);
                break;
              case BcOp::GepStore:
                out += format(" %s, [%s + %s], %s, %llu%s",
                              slot(bc.dst).c_str(),
                              slot(bc.a).c_str(),
                              slot(bc.b).c_str(),
                              slot(bc.c).c_str(),
                              (unsigned long long)bc.imm,
                              (bc.flags & 1) ? " nt" : "");
                break;
              case BcOp::Bin:
                out += format(" %s, %s %s %s", slot(bc.dst).c_str(),
                              slot(bc.a).c_str(),
                              ir::binOpName((ir::BinOp)bc.sub),
                              slot(bc.b).c_str());
                break;
              case BcOp::Cmp:
                out += format(" %s, %s %s %s", slot(bc.dst).c_str(),
                              slot(bc.a).c_str(),
                              ir::cmpPredName((ir::CmpPred)bc.sub),
                              slot(bc.b).c_str());
                break;
              case BcOp::CmpBr:
                out += format(" %s, %s %s %s -> %u, %llu",
                              slot(bc.dst).c_str(),
                              slot(bc.a).c_str(),
                              ir::cmpPredName((ir::CmpPred)bc.sub),
                              slot(bc.b).c_str(), bc.c,
                              (unsigned long long)bc.imm);
                break;
              case BcOp::Select:
                out += format(" %s, %s ? %s : %s",
                              slot(bc.dst).c_str(),
                              slot(bc.a).c_str(),
                              slot(bc.b).c_str(),
                              slot(bc.c).c_str());
                break;
              case BcOp::Br:
                out += format(" -> %u", bc.a);
                break;
              case BcOp::CondBr:
                out += format(" %s -> %u, %u", slot(bc.a).c_str(),
                              bc.b, bc.c);
                break;
              case BcOp::Call: {
                const BcFunction &callee = prog.funcs[bc.a];
                out += format(" %s, @%s(", slot(bc.dst).c_str(),
                              callee.irFunc->name().c_str());
                for (uint64_t i = 0; i < bc.imm; i++)
                    out += format("%s%s", i ? ", " : "",
                                  slot(bf.callArgs[bc.b + i])
                                      .c_str());
                out += ")";
                break;
              }
              case BcOp::Ret:
                if (bc.a != bcNoSlot)
                    out += format(" %s", slot(bc.a).c_str());
                break;
              case BcOp::PmMap:
                out += format(" %s, \"%s\", %llu",
                              slot(bc.dst).c_str(),
                              bc.src->symbol().c_str(),
                              (unsigned long long)bc.imm);
                break;
              case BcOp::Memcpy:
              case BcOp::Memset:
                out += format(" [%s], %s, %s", slot(bc.a).c_str(),
                              slot(bc.b).c_str(),
                              slot(bc.c).c_str());
                break;
              case BcOp::DurPoint:
                out += format(" \"%s\"", bc.src->symbol().c_str());
                break;
              case BcOp::Print:
                out += format(" \"%s\", %s",
                              bc.src->symbol().c_str(),
                              slot(bc.a).c_str());
                break;
              case BcOp::ThreadSpawn: {
                const BcFunction &callee = prog.funcs[bc.a];
                out += format(" %s, @%s(", slot(bc.dst).c_str(),
                              callee.irFunc->name().c_str());
                for (uint64_t i = 0; i < bc.imm; i++)
                    out += format("%s%s", i ? ", " : "",
                                  slot(bf.callArgs[bc.b + i])
                                      .c_str());
                out += ")";
                break;
              }
              case BcOp::ThreadJoin:
                out += format(" %s, %s", slot(bc.dst).c_str(),
                              slot(bc.a).c_str());
                break;
              case BcOp::AtomicLoad:
                out += format(" %s, %s [%s], %llu",
                              slot(bc.dst).c_str(),
                              ir::memOrderName((ir::MemOrder)bc.sub),
                              slot(bc.a).c_str(),
                              (unsigned long long)bc.imm);
                break;
              case BcOp::AtomicStore:
                out += format(" %s [%s], %s, %llu",
                              ir::memOrderName((ir::MemOrder)bc.sub),
                              slot(bc.b).c_str(),
                              slot(bc.a).c_str(),
                              (unsigned long long)bc.imm);
                break;
              case BcOp::AtomicRmw:
                out += format(" %s, %s %s [%s], %s, %llu",
                              slot(bc.dst).c_str(),
                              ir::binOpName((ir::BinOp)bc.sub),
                              ir::memOrderName((ir::MemOrder)bc.sub2),
                              slot(bc.a).c_str(),
                              slot(bc.b).c_str(),
                              (unsigned long long)bc.imm);
                break;
              case BcOp::FallOff:
                out += format(" \"%s\"",
                              bf.fallOffBlocks[bc.imm].c_str());
                break;
            }
            out += "\n";
        }
    }
    return out;
}

} // namespace hippo::vm
