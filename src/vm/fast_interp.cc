#include "vm/fast_interp.hh"

#include <algorithm>
#include <cstring>

#include "ir/basic_block.hh"
#include "ir/function.hh"
#include "ir/module.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "vm/vm.hh"

/**
 * Computed-goto dispatch needs the GNU labels-as-values extension;
 * the build opts in via HIPPO_COMPUTED_GOTO (top-level CMake option,
 * default ON). Anything else falls back to the portable switch loop
 * — same handlers, same semantics, measurably slower dispatch.
 */
#if defined(HIPPO_COMPUTED_GOTO) && \
    (defined(__GNUC__) || defined(__clang__))
#define HIPPO_DIRECT_THREADED 1
#else
#define HIPPO_DIRECT_THREADED 0
#endif

namespace hippo::vm
{

using ir::Opcode;

FastInterp::FastInterp(Vm &vm, const BcProgram &prog)
    : vm_(vm), prog_(prog), stepsAtCtor_(vm.steps_)
{
    const VmConfig &cfg = vm_.cfg_;
    slowStep_ = cfg.stepBudget || cfg.timeBudgetMs ||
                cfg.crashAtStep || cfg.stepProbeStride;
    regArena_.reserve(4096);
}

FastInterp::~FastInterp()
{
    // Merge the flat hot-path counters into the Vm's maps. Runs
    // during unwinding too, so crash/watchdog runs keep an exact
    // census — Vm::run catches the signals after this.
    for (unsigned i = 0; i < numIrOpcodes; i++)
        if (opCounts_[i])
            vm_.opcodeCounts_[(Opcode)i] += opCounts_[i];
    for (unsigned i = 0; i < 3; i++)
        if (flushCounts_[i])
            vm_.flushCounts_[(ir::FlushKind)i] += flushCounts_[i];
    for (unsigned i = 0; i < 2; i++)
        if (fenceCounts_[i])
            vm_.fenceCounts_[(ir::FenceKind)i] += fenceCounts_[i];
    vm_.fastDispatches_ += dispatches_;
    vm_.fastSuper_ += superExec_;
    vm_.fastSteps_ += vm_.steps_ - stepsAtCtor_;
}

uint64_t
FastInterp::call(const ir::Function *f,
                 const std::vector<uint64_t> &args)
{
    auto it = prog_.indexOf.find(f);
    hippo_assert(it != prog_.indexOf.end(),
                 "function not in the compiled module");
    return execFunc(prog_.funcs[it->second], args.data(),
                    args.size(), nullptr, nullptr, 0);
}

[[noreturn]] void
FastInterp::stepLimitExceeded()
{
    if (vm_.cfg_.sandbox)
        throw Vm::WatchdogSignal{ExecOutcome::Timeout,
                                 "global step limit exceeded"};
    hippo_fatal("step limit exceeded (infinite loop?)");
}

void
FastInterp::slowStepChecks()
{
    const VmConfig &cfg = vm_.cfg_;
    uint64_t in_run = vm_.steps_ - vm_.runStartSteps_;
    if (cfg.stepBudget || cfg.timeBudgetMs)
        vm_.checkWatchdog(in_run);
    if (cfg.crashAtStep && in_run >= cfg.crashAtStep)
        throw Vm::CrashSignal{};
    if (cfg.stepProbeStride && in_run % cfg.stepProbeStride == 0)
        cfg.stepProbe(in_run);
}

inline void
FastInterp::stepPre(Opcode op)
{
    if (++vm_.steps_ > vm_.cfg_.maxSteps)
        stepLimitExceeded();
    if (slowStep_)
        slowStepChecks();
    opCounts_[(unsigned)op]++;
}

std::vector<trace::StackFrame>
FastInterp::captureStack(const Frame &frame,
                         const ir::Instruction &instr) const
{
    std::vector<trace::StackFrame> stack;
    stack.push_back({frame.func->name(), instr.id(),
                     instr.loc().file, instr.loc().line});
    for (const Frame *fr = &frame; fr->parent; fr = fr->parent) {
        const ir::Instruction *cs = fr->callSite;
        stack.push_back({fr->parent->func->name(), cs->id(),
                         cs->loc().file, cs->loc().line});
    }
    return stack;
}

void
FastInterp::storeBody(const Frame &frame, const ir::Instruction &in,
                      uint64_t value, uint64_t addr, uint64_t size,
                      bool non_temporal)
{
    Vm &vm = vm_;
    uint8_t bytes[8];
    std::memcpy(bytes, &value, 8);
    bool pm = vm.isPmAddr(addr);
    vm.rawStore(addr, bytes, size, non_temporal);
    vm.simNanos_ += vm.cfg_.costs.storeNs;
    vm.ntStores_ += pm && non_temporal;

    if (vm.cfg_.traceEnabled) {
        vm.recordDynPtsNamed(frame.func->name(), in.operand(1),
                             addr);
        if (pm) {
            trace::Event ev;
            ev.kind = trace::EventKind::Store;
            ev.addr = addr;
            ev.size = size;
            ev.isPm = true;
            ev.nonTemporal = non_temporal;
            ev.objectId = vm.objectAt(addr);
            ev.stack = captureStack(frame, in);
            vm.emit(std::move(ev));
        }
    }
}

void
FastInterp::flushBody(const Frame &frame, const ir::Instruction &in,
                      uint64_t addr, ir::FlushKind kind)
{
    Vm &vm = vm_;
    bool pm = vm.isPmAddr(addr);
    flushCounts_[(unsigned)kind]++;
    vm.simNanos_ += kind == ir::FlushKind::Clflush
                        ? vm.cfg_.costs.clflushNs
                        : vm.cfg_.costs.flushNs;
    if (pm) {
        vm.pool_->flush(addr, (pmem::FlushOp)kind);
        vm.noteFlushLine(addr);
    }
    if (vm.cfg_.traceEnabled) {
        trace::Event ev;
        ev.kind = trace::EventKind::Flush;
        ev.addr = addr;
        ev.size = pmem::cacheLineSize;
        ev.isPm = pm;
        ev.sub = (uint8_t)kind;
        ev.objectId = vm.objectAt(addr);
        ev.stack = captureStack(frame, in);
        vm.emit(std::move(ev));
    }
}

void
FastInterp::fenceBody(const Frame &frame, const ir::Instruction &in,
                      ir::FenceKind kind)
{
    Vm &vm = vm_;
    uint64_t pending = vm.pool_->pendingWritebacks();
    fenceCounts_[(unsigned)kind]++;
    vm.simNanos_ += vm.cfg_.costs.fenceBaseNs;
    if (pending > 0) {
        vm.simNanos_ += vm.cfg_.costs.fenceDrainNs +
                        vm.cfg_.costs.fencePerLineNs * (pending - 1);
    }
    vm.pool_->fence();
    vm.noteFenceDrain();
    if (vm.cfg_.traceEnabled) {
        trace::Event ev;
        ev.kind = trace::EventKind::Fence;
        ev.sub = (uint8_t)kind;
        ev.stack = captureStack(frame, in);
        vm.emit(std::move(ev));
    }
}

uint64_t
FastInterp::pmMapBody(const Frame &frame, const ir::Instruction &in)
{
    Vm &vm = vm_;
    uint64_t base = vm.pool_->mapRegion(in.symbol(), in.regionSize());
    if (vm.cfg_.traceEnabled) {
        uint32_t obj =
            vm.trace_.internObject("pm:" + in.symbol(), true);
        vm.pmObjects_[base] = {in.regionSize(), obj};
        trace::Event ev;
        ev.kind = trace::EventKind::PmMap;
        ev.addr = base;
        ev.size = in.regionSize();
        ev.isPm = true;
        ev.objectId = obj;
        ev.symbol = in.symbol();
        ev.stack = captureStack(frame, in);
        vm.emit(std::move(ev));
    }
    return base;
}

namespace
{

inline bool
cmpCompute(ir::CmpPred pred, uint64_t l, uint64_t r)
{
    int64_t sl = (int64_t)l, sr = (int64_t)r;
    switch (pred) {
      case ir::CmpPred::Eq: return l == r;
      case ir::CmpPred::Ne: return l != r;
      case ir::CmpPred::Ult: return l < r;
      case ir::CmpPred::Ule: return l <= r;
      case ir::CmpPred::Ugt: return l > r;
      case ir::CmpPred::Uge: return l >= r;
      case ir::CmpPred::Slt: return sl < sr;
      case ir::CmpPred::Sle: return sl <= sr;
      case ir::CmpPred::Sgt: return sl > sr;
      case ir::CmpPred::Sge: return sl >= sr;
    }
    return false;
}

} // namespace

uint64_t
FastInterp::execFunc(const BcFunction &bf, const uint64_t *args,
                     size_t nargs, const Frame *parent,
                     const ir::Instruction *call_site, int depth)
{
    Vm &vm = vm_;
    const VmConfig &cfg = vm.cfg_;
    const CostModel &costs = cfg.costs;
    const ir::Function *f = bf.irFunc;

    hippo_assert(f->entry(), "calling empty function");
    if (depth > 512)
        vm.trapOrFatal(format("call depth limit exceeded in @%s",
                              f->name().c_str()));

    Frame frame{f, parent, call_site};

    // Bump-allocate this activation's register file. resize() both
    // zero-fills the fresh slots (matching the tree walker's
    // regs.assign(idBound, 0)) and reuses capacity across calls.
    const size_t base = regArena_.size();
    regArena_.resize(base + bf.frameSlots, 0);
    uint64_t *regs = regArena_.data() + base;
    std::copy(args, args + nargs, regs + bf.argBase);
    std::copy(bf.constPool.begin(), bf.constPool.end(),
              regs + bf.constBase);

    uint64_t saved_sp = vm.volatileSp_;
    size_t saved_allocs = vm.liveAllocs_.size();

    const BcInstr *code = bf.code.data();
    const BcInstr *pc = code;

#if HIPPO_DIRECT_THREADED
    static const void *labels[] = {
        &&lbl_Alloca, &&lbl_Load, &&lbl_Store, &&lbl_Flush,
        &&lbl_Fence, &&lbl_Gep, &&lbl_Bin, &&lbl_Cmp, &&lbl_Select,
        &&lbl_Br, &&lbl_CondBr, &&lbl_Call, &&lbl_Ret, &&lbl_PmMap,
        &&lbl_Memcpy, &&lbl_Memset, &&lbl_DurPoint, &&lbl_Print,
        &&lbl_ThreadSpawn, &&lbl_ThreadJoin, &&lbl_AtomicLoad,
        &&lbl_AtomicStore, &&lbl_AtomicRmw,
        &&lbl_StoreFlush, &&lbl_StoreFlushFence, &&lbl_GepLoad,
        &&lbl_GepStore, &&lbl_CmpBr, &&lbl_FallOff,
    };
    static_assert(sizeof(labels) / sizeof(labels[0]) == numBcOps,
                  "label table out of sync with BcOp");
#define CASE(name) lbl_##name:
#define DISPATCH()                                                   \
    do {                                                             \
        dispatches_++;                                               \
        goto *labels[(unsigned)pc->op];                              \
    } while (0)
#else
#define CASE(name) case BcOp::name:
#define DISPATCH() goto dispatch_loop
#endif
#define NEXT()                                                       \
    do {                                                             \
        ++pc;                                                        \
        DISPATCH();                                                  \
    } while (0)

#if HIPPO_DIRECT_THREADED
    DISPATCH();
#else
  dispatch_loop:
    dispatches_++;
    switch (pc->op) {
#endif

    CASE(Alloca)
    {
        stepPre(Opcode::Alloca);
        uint64_t bytes = (pc->imm + 15) & ~15ULL;
        if (cfg.heapBudget &&
            vm.volatileSp_ - vm.volatileSpBase_ + bytes >
                cfg.heapBudget) {
            throw Vm::WatchdogSignal{
                ExecOutcome::BudgetExceeded,
                format("volatile heap budget exceeded (%llu bytes)",
                       (unsigned long long)cfg.heapBudget)};
        }
        if (vm.volatileSp_ + bytes > vm.volatileLimit_)
            vm.trapOrFatal("volatile arena exhausted");
        uint64_t addr = volatileBaseAddr + vm.volatileSp_;
        vm.volatileSp_ += bytes;
        std::memset(&vm.volatileMem_[addr - volatileBaseAddr], 0,
                    bytes);
        if (cfg.traceEnabled) {
            uint32_t obj = vm.trace_.internObject(
                format("%s#%u", f->name().c_str(), pc->src->id()),
                false);
            vm.liveAllocs_.push_back({addr, addr + pc->imm, obj});
        }
        regs[pc->dst] = addr;
        vm.simNanos_ += costs.aluNs;
        NEXT();
    }

    CASE(Load)
    {
        stepPre(Opcode::Load);
        uint64_t addr = regs[pc->a];
        uint64_t v = 0;
        vm.rawLoad(addr, reinterpret_cast<uint8_t *>(&v), pc->imm);
        regs[pc->dst] = v;
        vm.simNanos_ +=
            vm.isPmAddr(addr) ? costs.pmLoadNs : costs.loadNs;
        NEXT();
    }

    CASE(Store)
    {
        stepPre(Opcode::Store);
        storeBody(frame, *pc->src, regs[pc->a], regs[pc->b],
                  pc->imm, pc->flags & 1);
        NEXT();
    }

    CASE(Flush)
    {
        stepPre(Opcode::Flush);
        flushBody(frame, *pc->src, regs[pc->a],
                  (ir::FlushKind)pc->sub);
        NEXT();
    }

    CASE(Fence)
    {
        stepPre(Opcode::Fence);
        fenceBody(frame, *pc->src, (ir::FenceKind)pc->sub);
        NEXT();
    }

    CASE(Gep)
    {
        stepPre(Opcode::Gep);
        regs[pc->dst] = regs[pc->a] + regs[pc->b];
        vm.simNanos_ += costs.aluNs;
        NEXT();
    }

    CASE(Bin)
    {
        stepPre(Opcode::Bin);
        uint64_t l = regs[pc->a];
        uint64_t r = regs[pc->b];
        uint64_t v = 0;
        switch ((ir::BinOp)pc->sub) {
          case ir::BinOp::Add: v = l + r; break;
          case ir::BinOp::Sub: v = l - r; break;
          case ir::BinOp::Mul: v = l * r; break;
          case ir::BinOp::UDiv:
            if (!r)
                vm.trapOrFatal("division by zero");
            v = l / r;
            break;
          case ir::BinOp::URem:
            if (!r)
                vm.trapOrFatal("remainder by zero");
            v = l % r;
            break;
          case ir::BinOp::And: v = l & r; break;
          case ir::BinOp::Or: v = l | r; break;
          case ir::BinOp::Xor: v = l ^ r; break;
          case ir::BinOp::Shl: v = l << (r & 63); break;
          case ir::BinOp::LShr: v = l >> (r & 63); break;
        }
        regs[pc->dst] = v;
        vm.simNanos_ += costs.aluNs;
        NEXT();
    }

    CASE(Cmp)
    {
        stepPre(Opcode::Cmp);
        regs[pc->dst] =
            cmpCompute((ir::CmpPred)pc->sub, regs[pc->a],
                       regs[pc->b])
                ? 1
                : 0;
        vm.simNanos_ += costs.aluNs;
        NEXT();
    }

    CASE(Select)
    {
        stepPre(Opcode::Select);
        regs[pc->dst] = regs[regs[pc->a] ? pc->b : pc->c];
        vm.simNanos_ += costs.aluNs;
        NEXT();
    }

    CASE(Br)
    {
        stepPre(Opcode::Br);
        vm.simNanos_ += costs.aluNs;
        pc = code + pc->a;
        DISPATCH();
    }

    CASE(CondBr)
    {
        stepPre(Opcode::CondBr);
        uint64_t c = regs[pc->a];
        vm.simNanos_ += costs.aluNs;
        pc = code + (c ? pc->b : pc->c);
        DISPATCH();
    }

    CASE(Call)
    {
        stepPre(Opcode::Call);
        const ir::Instruction &in = *pc->src;
        size_t n = (size_t)pc->imm;
        argScratch_.resize(n);
        for (size_t i = 0; i < n; i++) {
            argScratch_[i] = regs[bf.callArgs[pc->b + i]];
            if (cfg.traceEnabled &&
                in.operand(i)->type() == ir::Type::Ptr)
                vm.recordDynPtsNamed(f->name(), in.operand(i),
                                     argScratch_[i]);
        }
        vm.simNanos_ += costs.callNs;
        uint64_t rv = execFunc(prog_.funcs[pc->a],
                               argScratch_.data(), n, &frame, &in,
                               depth + 1);
        // The callee may have grown (and reallocated) the arena.
        regs = regArena_.data() + base;
        if (pc->dst != bcNoSlot)
            regs[pc->dst] = rv;
        NEXT();
    }

    CASE(Ret)
    {
        stepPre(Opcode::Ret);
        uint64_t rv = pc->a == bcNoSlot ? 0 : regs[pc->a];
        vm.volatileSp_ = saved_sp;
        vm.liveAllocs_.resize(saved_allocs);
        vm.simNanos_ += costs.callNs;
        regArena_.resize(base);
        return rv;
    }

    CASE(PmMap)
    {
        stepPre(Opcode::PmMap);
        regs[pc->dst] = pmMapBody(frame, *pc->src);
        vm.simNanos_ += costs.aluNs;
        NEXT();
    }

    CASE(Memcpy)
    {
        stepPre(Opcode::Memcpy);
        const ir::Instruction &in = *pc->src;
        uint64_t dst = regs[pc->a];
        uint64_t src = regs[pc->b];
        uint64_t len = regs[pc->c];
        if (len != 0) {
            std::vector<uint8_t> buf(len);
            vm.rawLoad(src, buf.data(), len);
            vm.rawStore(dst, buf.data(), len, false);
            vm.simNanos_ += costs.perByteCopyNs * len;
            if (cfg.traceEnabled) {
                vm.recordDynPtsNamed(f->name(), in.operand(0), dst);
                vm.recordDynPtsNamed(f->name(), in.operand(1), src);
                if (vm.isPmAddr(dst)) {
                    trace::Event ev;
                    ev.kind = trace::EventKind::Store;
                    ev.addr = dst;
                    ev.size = len;
                    ev.isPm = true;
                    ev.objectId = vm.objectAt(dst);
                    ev.stack = captureStack(frame, in);
                    vm.emit(std::move(ev));
                }
            }
        }
        NEXT();
    }

    CASE(Memset)
    {
        stepPre(Opcode::Memset);
        const ir::Instruction &in = *pc->src;
        uint64_t dst = regs[pc->a];
        uint64_t byte = regs[pc->b];
        uint64_t len = regs[pc->c];
        if (len != 0) {
            std::vector<uint8_t> buf(len, (uint8_t)byte);
            vm.rawStore(dst, buf.data(), len, false);
            vm.simNanos_ += costs.perByteCopyNs * len;
            if (cfg.traceEnabled) {
                vm.recordDynPtsNamed(f->name(), in.operand(0), dst);
                if (vm.isPmAddr(dst)) {
                    trace::Event ev;
                    ev.kind = trace::EventKind::Store;
                    ev.addr = dst;
                    ev.size = len;
                    ev.isPm = true;
                    ev.objectId = vm.objectAt(dst);
                    ev.stack = captureStack(frame, in);
                    vm.emit(std::move(ev));
                }
            }
        }
        NEXT();
    }

    CASE(DurPoint)
    {
        stepPre(Opcode::DurPoint);
        const ir::Instruction &in = *pc->src;
        if (cfg.traceEnabled) {
            trace::Event ev;
            ev.kind = trace::EventKind::DurPoint;
            ev.symbol = in.symbol();
            ev.stack = captureStack(frame, in);
            vm.emit(std::move(ev));
        }
        int64_t n = vm.durPointsSeen_++;
        if (cfg.durPointProbe)
            cfg.durPointProbe((uint64_t)n,
                              vm.steps_ - vm.runStartSteps_,
                              in.symbol());
        if (cfg.crashAtDurPoint >= 0 && n == cfg.crashAtDurPoint) {
            vm.volatileSp_ = saved_sp;
            vm.liveAllocs_.resize(saved_allocs);
            throw Vm::CrashSignal{};
        }
        NEXT();
    }

    CASE(Print)
    {
        stepPre(Opcode::Print);
        const ir::Instruction &in = *pc->src;
        uint64_t v = regs[pc->a];
        vm.outputs_.push_back({in.symbol(), v});
        if (cfg.traceEnabled && cfg.traceOutputs) {
            trace::Event ev;
            ev.kind = trace::EventKind::Output;
            ev.symbol = in.symbol();
            ev.value = v;
            ev.stack = captureStack(frame, in);
            vm.emit(std::move(ev));
        }
        NEXT();
    }

    CASE(ThreadSpawn)
    {
        stepPre(Opcode::ThreadSpawn);
        size_t n = (size_t)pc->imm;
        std::vector<uint64_t> spawn_args(n);
        for (size_t i = 0; i < n; i++)
            spawn_args[i] = regs[bf.callArgs[pc->b + i]];
        vm.simNanos_ += costs.callNs;
        // The spawned thread runs its own FastInterp; this one's
        // register arena stays private, so `regs` remains valid
        // across the context switches inside the body.
        regs[pc->dst] =
            vm.threadSpawnBody(*pc->src, std::move(spawn_args));
        NEXT();
    }

    CASE(ThreadJoin)
    {
        stepPre(Opcode::ThreadJoin);
        uint64_t tid = regs[pc->a];
        vm.simNanos_ += costs.callNs;
        regs[pc->dst] = vm.threadJoinBody(tid);
        NEXT();
    }

    CASE(AtomicLoad)
    {
        stepPre(Opcode::AtomicLoad);
        regs[pc->dst] = vm.atomicLoadBody(*pc->src, regs[pc->a]);
        NEXT();
    }

    CASE(AtomicStore)
    {
        stepPre(Opcode::AtomicStore);
        vm.atomicStoreBody(*pc->src, regs[pc->a], regs[pc->b], [&] {
            return captureStack(frame, *pc->src);
        });
        NEXT();
    }

    CASE(AtomicRmw)
    {
        stepPre(Opcode::AtomicRmw);
        regs[pc->dst] =
            vm.atomicRmwBody(*pc->src, regs[pc->a], regs[pc->b], [&] {
                return captureStack(frame, *pc->src);
            });
        NEXT();
    }

    CASE(StoreFlush)
    {
        superExec_++;
        stepPre(Opcode::Store);
        storeBody(frame, *pc->src, regs[pc->a], regs[pc->b],
                  pc->imm, pc->flags & 1);
        stepPre(Opcode::Flush);
        flushBody(frame, *pc->src2, regs[pc->b],
                  (ir::FlushKind)pc->sub);
        NEXT();
    }

    CASE(StoreFlushFence)
    {
        superExec_++;
        stepPre(Opcode::Store);
        storeBody(frame, *pc->src, regs[pc->a], regs[pc->b],
                  pc->imm, pc->flags & 1);
        stepPre(Opcode::Flush);
        flushBody(frame, *pc->src2, regs[pc->b],
                  (ir::FlushKind)pc->sub);
        stepPre(Opcode::Fence);
        fenceBody(frame, *pc->src3, (ir::FenceKind)pc->sub2);
        NEXT();
    }

    CASE(GepLoad)
    {
        superExec_++;
        stepPre(Opcode::Gep);
        uint64_t addr = regs[pc->a] + regs[pc->b];
        regs[pc->dst] = addr;
        vm.simNanos_ += costs.aluNs;
        stepPre(Opcode::Load);
        uint64_t v = 0;
        vm.rawLoad(addr, reinterpret_cast<uint8_t *>(&v), pc->imm);
        regs[pc->dst2] = v;
        vm.simNanos_ +=
            vm.isPmAddr(addr) ? costs.pmLoadNs : costs.loadNs;
        NEXT();
    }

    CASE(GepStore)
    {
        superExec_++;
        stepPre(Opcode::Gep);
        uint64_t addr = regs[pc->a] + regs[pc->b];
        regs[pc->dst] = addr;
        vm.simNanos_ += costs.aluNs;
        stepPre(Opcode::Store);
        storeBody(frame, *pc->src2, regs[pc->c], addr, pc->imm,
                  pc->flags & 1);
        NEXT();
    }

    CASE(CmpBr)
    {
        superExec_++;
        stepPre(Opcode::Cmp);
        bool v = cmpCompute((ir::CmpPred)pc->sub, regs[pc->a],
                            regs[pc->b]);
        regs[pc->dst] = v ? 1 : 0;
        vm.simNanos_ += costs.aluNs;
        stepPre(Opcode::CondBr);
        vm.simNanos_ += costs.aluNs;
        pc = code + (v ? pc->c : (uint32_t)pc->imm);
        DISPATCH();
    }

    CASE(FallOff)
    {
        hippo_panic("fell off block %s in @%s",
                    bf.fallOffBlocks[pc->imm].c_str(),
                    f->name().c_str());
    }

#if !HIPPO_DIRECT_THREADED
    }
    hippo_panic("fast-interp: bad opcode");
#endif

#undef CASE
#undef DISPATCH
#undef NEXT
}

} // namespace hippo::vm
