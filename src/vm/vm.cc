#include "vm/vm.hh"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/strings.hh"
#include "vm/bytecode.hh"
#include "vm/fast_interp.hh"

namespace hippo::vm
{

using ir::Opcode;
using ir::Type;

const char *
execOutcomeName(ExecOutcome o)
{
    switch (o) {
      case ExecOutcome::Ok: return "ok";
      case ExecOutcome::Timeout: return "timeout";
      case ExecOutcome::BudgetExceeded: return "budget-exceeded";
      case ExecOutcome::Trap: return "trap";
    }
    return "?";
}

const char *
vmEngineName(VmEngine e)
{
    switch (e) {
      case VmEngine::Tree: return "tree";
      case VmEngine::Bytecode: return "bytecode";
      case VmEngine::Auto: return "auto";
    }
    return "?";
}

bool
parseVmEngine(const std::string &s, VmEngine &out)
{
    if (s == "tree")
        out = VmEngine::Tree;
    else if (s == "bytecode")
        out = VmEngine::Bytecode;
    else if (s == "auto")
        out = VmEngine::Auto;
    else
        return false;
    return true;
}

/** One activation record. */
struct Vm::Frame
{
    ir::Function *func = nullptr;
    const Frame *parent = nullptr;
    const ir::Instruction *callSite = nullptr; ///< call instr in parent
    std::vector<uint64_t> args;
    std::vector<uint64_t> regs;
    const ir::Instruction *current = nullptr;
};

/**
 * One VM thread. Execution is strictly serialized: exactly one VM
 * thread holds the scheduler token at any time, so every field here
 * (and all of the Vm) is only ever touched under that token or under
 * SchedState::mu. Each VM thread runs on its own host thread purely
 * so that its interpreter recursion has somewhere to park; the host
 * threads never run concurrently.
 */
struct Vm::ThreadCtx
{
    enum class State : uint8_t
    {
        Ready,    ///< runnable, waiting for the token
        Running,  ///< holds the token
        Blocked,  ///< waiting on joinedOn
        Finished, ///< returned (or unwound during teardown)
    };

    uint32_t tid = 0;
    ir::Function *func = nullptr; ///< spawn entry (null for main)
    std::vector<uint64_t> args;
    std::thread host;             ///< unset for main
    State state = State::Ready;
    uint32_t joinedOn = ~0u; ///< tid this thread blocks on
    uint64_t retVal = 0;

    /// @name Parked interpreter state
    /// Swapped with the Vm's current-thread fields at switches.
    /// @{
    uint64_t sp = 0;
    uint64_t spBase = 0;
    uint64_t spLimit = 0;
    std::vector<LiveAlloc> liveAllocs;
    const Frame *curParent = nullptr;
    const ir::Instruction *curCallSite = nullptr;
    std::set<uint64_t> dirtyLines;
    std::set<uint64_t> flushedLines;
    /// @}
};

/**
 * The token passer. `running` names the one thread allowed to
 * execute; everyone else waits on `cv`. A crash or watchdog signal
 * raised on a spawned thread is recorded here and re-thrown by the
 * main thread, which is the only one run() can catch from.
 */
struct Vm::SchedState
{
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::unique_ptr<ThreadCtx>> threads; ///< [0] = main
    uint32_t running = 0;
    bool aborting = false; ///< teardown: parked threads must unwind
    bool pendingCrash = false;
    bool pendingWatchdog = false;
    ExecOutcome pendingOutcome = ExecOutcome::Ok;
    std::string pendingDiag;
    bool pendingWallClock = false;
};

Vm::Vm(ir::Module *module, pmem::PmPool *pool, VmConfig cfg)
    : module_(module), pool_(pool), cfg_(cfg),
      volatileMem_(cfg.volatileBytes, 0),
      volatileLimit_(cfg.volatileBytes)
{}

Vm::~Vm()
{
    // Normally a no-op: run() tears the scheduler down on every exit
    // path. Kept as a backstop so a Vm abandoned mid-run cannot leak
    // parked host threads.
    teardownThreads();
}

VmEngine
Vm::engineResolved() const
{
    if (cfg_.engine != VmEngine::Auto)
        return cfg_.engine;
    // Auto resolves to the fast path; HIPPO_VM_ENGINE=tree is the
    // escape hatch for A/B debugging without recompiling callers.
    static const VmEngine auto_engine = [] {
        const char *v = std::getenv("HIPPO_VM_ENGINE");
        VmEngine e = VmEngine::Bytecode;
        if (v && parseVmEngine(v, e) && e == VmEngine::Auto)
            e = VmEngine::Bytecode;
        return e;
    }();
    return auto_engine;
}

void
Vm::ensureProgram()
{
    bool want_super = !cfg_.traceEnabled;
    if (program_ && program_->options.enableSuper == want_super)
        return;
    BcOptions opts;
    opts.enableSuper = want_super;
    program_ = std::make_unique<BcProgram>(
        compileModule(*module_, opts));
    fastCompiles_++;
}

const BcProgram &
Vm::bytecode()
{
    ensureProgram();
    return *program_;
}

uint64_t
Vm::eval(const Frame &frame, const ir::Value *v) const
{
    treeEvals_++;
    switch (v->kind()) {
      case ir::ValueKind::Constant:
        return static_cast<const ir::Constant *>(v)->value();
      case ir::ValueKind::Argument:
        return frame.args[static_cast<const ir::Argument *>(v)
                              ->index()];
      case ir::ValueKind::Instruction:
        return frame
            .regs[static_cast<const ir::Instruction *>(v)->id()];
    }
    hippo_panic("bad value kind");
}

bool
Vm::isPmAddr(uint64_t addr) const
{
    return addr >= pmem::pmBaseAddr;
}

void
Vm::trapOrFatal(const std::string &diag) const
{
    if (cfg_.sandbox)
        throw WatchdogSignal{ExecOutcome::Trap, diag};
    hippo_fatal("%s", diag.c_str());
}

void
Vm::checkWatchdog(uint64_t in_run_step)
{
    if (cfg_.stepBudget && in_run_step > cfg_.stepBudget) {
        throw WatchdogSignal{
            ExecOutcome::Timeout,
            format("step budget exceeded (%llu instructions)",
                   (unsigned long long)cfg_.stepBudget)};
    }
    // The wall-clock backstop is checked only every 4096 steps: a
    // steady_clock read per instruction would dominate the
    // interpreter, and hang protection does not need the precision.
    if (cfg_.timeBudgetMs && (in_run_step & 4095) == 0) {
        auto elapsed = std::chrono::steady_clock::now() - runStartTime_;
        auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      elapsed)
                      .count();
        if ((uint64_t)ms > cfg_.timeBudgetMs) {
            throw WatchdogSignal{
                ExecOutcome::Timeout,
                format("wall-clock budget exceeded (%llu ms)",
                       (unsigned long long)cfg_.timeBudgetMs),
                true};
        }
    }
}

void
Vm::emit(trace::Event ev)
{
    ev.tid = curTid_;
    if (cfg_.eventSink) {
        ev.seq = sinkSeq_++;
        cfg_.eventSink->onEvent(ev);
        return;
    }
    trace_.append(std::move(ev));
}

void
Vm::rawStore(uint64_t addr, const uint8_t *data, uint64_t size,
             bool non_temporal)
{
    if (isPmAddr(addr)) {
        pool_->store(addr, data, size, non_temporal);
        noteStoreLines(addr, size);
        return;
    }
    uint64_t off = addr - volatileBaseAddr;
    if (addr < volatileBaseAddr || off + size > volatileMem_.size())
        trapOrFatal(format("volatile store out of bounds: 0x%llx",
                           (unsigned long long)addr));
    std::memcpy(&volatileMem_[off], data, size);
}

void
Vm::rawLoad(uint64_t addr, uint8_t *out, uint64_t size) const
{
    if (isPmAddr(addr)) {
        pool_->load(addr, out, size);
        return;
    }
    uint64_t off = addr - volatileBaseAddr;
    if (addr < volatileBaseAddr || off + size > volatileMem_.size())
        trapOrFatal(format("volatile load out of bounds: 0x%llx",
                           (unsigned long long)addr));
    std::memcpy(out, &volatileMem_[off], size);
}

uint32_t
Vm::objectAt(uint64_t addr) const
{
    if (isPmAddr(addr)) {
        auto it = pmObjects_.upper_bound(addr);
        if (it == pmObjects_.begin())
            return ~0u;
        --it;
        auto [size, obj] = it->second;
        return addr < it->first + size ? obj : ~0u;
    }
    for (auto it = liveAllocs_.rbegin(); it != liveAllocs_.rend();
         ++it) {
        if (addr >= it->start && addr < it->end)
            return it->object;
    }
    return ~0u;
}

std::vector<trace::StackFrame>
Vm::captureStack(const Frame &frame, const ir::Instruction &instr) const
{
    std::vector<trace::StackFrame> stack;
    stack.push_back({frame.func->name(), instr.id(), instr.loc().file,
                     instr.loc().line});
    for (const Frame *f = &frame; f->parent; f = f->parent) {
        const ir::Instruction *cs = f->callSite;
        stack.push_back({f->parent->func->name(), cs->id(),
                         cs->loc().file, cs->loc().line});
    }
    return stack;
}

void
Vm::recordDynPts(const Frame &frame, const ir::Value *ptr_value,
                 uint64_t addr)
{
    recordDynPtsNamed(frame.func->name(), ptr_value, addr);
}

void
Vm::recordDynPtsNamed(const std::string &func,
                      const ir::Value *ptr_value, uint64_t addr)
{
    if (!cfg_.traceEnabled)
        return;
    uint32_t obj = objectAt(addr);
    if (obj == ~0u)
        return;
    uint64_t key;
    switch (ptr_value->kind()) {
      case ir::ValueKind::Argument:
        key = DynPointsTo::argKey(
            static_cast<const ir::Argument *>(ptr_value)->index());
        break;
      case ir::ValueKind::Instruction:
        key = DynPointsTo::instrKey(
            static_cast<const ir::Instruction *>(ptr_value)->id());
        break;
      default:
        return;
    }
    dynPts_.record(func, key, obj);
}

void
Vm::execStore(Frame &frame, const ir::Instruction &instr)
{
    uint64_t value = eval(frame, instr.operand(0));
    uint64_t addr = eval(frame, instr.operand(1));
    uint64_t size = instr.accessSize();
    uint8_t bytes[8];
    std::memcpy(bytes, &value, 8);
    bool pm = isPmAddr(addr);
    rawStore(addr, bytes, size, instr.nonTemporal());
    simNanos_ += cfg_.costs.storeNs;
    ntStores_ += pm && instr.nonTemporal();

    recordDynPts(frame, instr.operand(1), addr);
    if (cfg_.traceEnabled && pm) {
        trace::Event ev;
        ev.kind = trace::EventKind::Store;
        ev.addr = addr;
        ev.size = size;
        ev.isPm = true;
        ev.nonTemporal = instr.nonTemporal();
        ev.objectId = objectAt(addr);
        ev.stack = captureStack(frame, instr);
        emit(std::move(ev));
    }
}

void
Vm::execFlush(Frame &frame, const ir::Instruction &instr)
{
    uint64_t addr = eval(frame, instr.operand(0));
    bool pm = isPmAddr(addr);
    auto kind = instr.flushKind();
    flushCounts_[kind]++;
    simNanos_ += kind == ir::FlushKind::Clflush ? cfg_.costs.clflushNs
                                                : cfg_.costs.flushNs;
    if (pm) {
        pool_->flush(addr, (pmem::FlushOp)kind);
        noteFlushLine(addr);
    }
    if (cfg_.traceEnabled) {
        trace::Event ev;
        ev.kind = trace::EventKind::Flush;
        ev.addr = addr;
        ev.size = pmem::cacheLineSize;
        ev.isPm = pm;
        ev.sub = (uint8_t)kind;
        ev.objectId = objectAt(addr);
        ev.stack = captureStack(frame, instr);
        emit(std::move(ev));
    }
}

void
Vm::execFence(Frame &frame, const ir::Instruction &instr)
{
    uint64_t pending = pool_->pendingWritebacks();
    fenceCounts_[instr.fenceKind()]++;
    simNanos_ += cfg_.costs.fenceBaseNs;
    if (pending > 0) {
        simNanos_ += cfg_.costs.fenceDrainNs +
                     cfg_.costs.fencePerLineNs * (pending - 1);
    }
    pool_->fence();
    noteFenceDrain();
    if (cfg_.traceEnabled) {
        trace::Event ev;
        ev.kind = trace::EventKind::Fence;
        ev.sub = (uint8_t)instr.fenceKind();
        ev.stack = captureStack(frame, instr);
        emit(std::move(ev));
    }
}

void
Vm::execMemcpy(Frame &frame, const ir::Instruction &instr)
{
    uint64_t dst = eval(frame, instr.operand(0));
    uint64_t src = eval(frame, instr.operand(1));
    uint64_t len = eval(frame, instr.operand(2));
    if (len == 0)
        return;
    std::vector<uint8_t> buf(len);
    rawLoad(src, buf.data(), len);
    rawStore(dst, buf.data(), len, false);
    simNanos_ += cfg_.costs.perByteCopyNs * len;

    recordDynPts(frame, instr.operand(0), dst);
    recordDynPts(frame, instr.operand(1), src);
    if (cfg_.traceEnabled && isPmAddr(dst)) {
        trace::Event ev;
        ev.kind = trace::EventKind::Store;
        ev.addr = dst;
        ev.size = len;
        ev.isPm = true;
        ev.objectId = objectAt(dst);
        ev.stack = captureStack(frame, instr);
        emit(std::move(ev));
    }
}

void
Vm::execMemset(Frame &frame, const ir::Instruction &instr)
{
    uint64_t dst = eval(frame, instr.operand(0));
    uint64_t byte = eval(frame, instr.operand(1));
    uint64_t len = eval(frame, instr.operand(2));
    if (len == 0)
        return;
    std::vector<uint8_t> buf(len, (uint8_t)byte);
    rawStore(dst, buf.data(), len, false);
    simNanos_ += cfg_.costs.perByteCopyNs * len;

    recordDynPts(frame, instr.operand(0), dst);
    if (cfg_.traceEnabled && isPmAddr(dst)) {
        trace::Event ev;
        ev.kind = trace::EventKind::Store;
        ev.addr = dst;
        ev.size = len;
        ev.isPm = true;
        ev.objectId = objectAt(dst);
        ev.stack = captureStack(frame, instr);
        emit(std::move(ev));
    }
}

uint64_t
Vm::execPmMap(Frame &frame, const ir::Instruction &instr)
{
    uint64_t base =
        pool_->mapRegion(instr.symbol(), instr.regionSize());
    if (cfg_.traceEnabled) {
        uint32_t obj =
            trace_.internObject("pm:" + instr.symbol(), true);
        pmObjects_[base] = {instr.regionSize(), obj};
        trace::Event ev;
        ev.kind = trace::EventKind::PmMap;
        ev.addr = base;
        ev.size = instr.regionSize();
        ev.isPm = true;
        ev.objectId = obj;
        ev.symbol = instr.symbol();
        ev.stack = captureStack(frame, instr);
        emit(std::move(ev));
    }
    return base;
}

/// @name Deterministic scheduler
///
/// Exactly one VM thread executes at any time; the rest park on the
/// SchedState condvar. Every schedule decision is a pure function of
/// the SchedulePlan and the (deterministic) visible-op stream, so a
/// plan replays byte-identically on either engine and at any host
/// parallelism — which is also what makes the whole construction
/// TSAN-clean: Vm state is only touched by the token holder.
/// @{

void
Vm::noteStoreLines(uint64_t addr, uint64_t size)
{
    if (!lineTrackingEnabled_)
        return;
    uint64_t first = addr / pmem::cacheLineSize;
    uint64_t last = (addr + (size ? size - 1 : 0)) / pmem::cacheLineSize;
    for (uint64_t line = first; line <= last; line++) {
        curDirtyLines_.insert(line);
        curFlushedLines_.erase(line);
    }
}

void
Vm::noteFlushLine(uint64_t addr)
{
    if (!lineTrackingEnabled_)
        return;
    uint64_t line = addr / pmem::cacheLineSize;
    // The line moves from "dirty" to "flushed, awaiting a fence" in
    // whichever thread stored it; any thread may issue the flush.
    if (curDirtyLines_.erase(line)) {
        curFlushedLines_.insert(line);
        return;
    }
    if (!sched_)
        return;
    for (auto &t : sched_->threads) {
        if (t->dirtyLines.erase(line)) {
            t->flushedLines.insert(line);
            return;
        }
    }
}

void
Vm::noteFenceDrain()
{
    if (!lineTrackingEnabled_)
        return;
    // The pool's write-back queue drains globally, so a fence by any
    // thread makes every flushed line durable.
    curFlushedLines_.clear();
    if (sched_) {
        for (auto &t : sched_->threads)
            t->flushedLines.clear();
    }
}

void
Vm::checkPublishRace(uint64_t addr)
{
    if (!lineTrackingEnabled_)
        return;
    // A release-ordered publication races iff the publishing thread
    // still has an unpersisted earlier store on some OTHER line: a
    // crash may persist the publication (line eviction) before its
    // payload. The publication's own line is exempt — a line
    // persists atomically, payload included.
    uint64_t own = addr / pmem::cacheLineSize;
    bool pending = false;
    for (uint64_t line : curDirtyLines_) {
        if (line != own) {
            pending = true;
            break;
        }
    }
    if (!pending) {
        for (uint64_t line : curFlushedLines_) {
            if (line != own) {
                pending = true;
                break;
            }
        }
    }
    if (!pending)
        return;
    schedRaces_++;
    uint64_t index = raceSeq_++;
    if (cfg_.racePointProbe)
        cfg_.racePointProbe(index, steps_ - runStartSteps_, curTid_,
                            addr);
}

void
Vm::saveCurrentCtx(ThreadCtx &t)
{
    t.sp = volatileSp_;
    t.spBase = volatileSpBase_;
    t.spLimit = volatileLimit_;
    t.liveAllocs = std::move(liveAllocs_);
    liveAllocs_.clear();
    t.curParent = curParent_;
    t.curCallSite = curCallSite_;
    t.dirtyLines = std::move(curDirtyLines_);
    curDirtyLines_.clear();
    t.flushedLines = std::move(curFlushedLines_);
    curFlushedLines_.clear();
}

void
Vm::loadCtx(ThreadCtx &t)
{
    volatileSp_ = t.sp;
    volatileSpBase_ = t.spBase;
    volatileLimit_ = t.spLimit;
    liveAllocs_ = std::move(t.liveAllocs);
    t.liveAllocs.clear();
    curParent_ = t.curParent;
    curCallSite_ = t.curCallSite;
    curDirtyLines_ = std::move(t.dirtyLines);
    t.dirtyLines.clear();
    curFlushedLines_ = std::move(t.flushedLines);
    t.flushedLines.clear();
    curTid_ = t.tid;
}

void
Vm::schedPoint()
{
    uint64_t index = runVisibleOps_++;
    schedVisibleOps_++;
    const SchedulePlan *plan = cfg_.schedule;
    if (!plan)
        return;
    const auto &at = plan->preemptAt;
    if (planCursor_ < at.size() && at[planCursor_] == index) {
        planCursor_++;
        schedPreemptions_++;
        if (sched_ && sched_->threads.size() > 1)
            schedYield(Park::Ready);
    }
}

/**
 * Hand the token to the next Ready thread (round-robin after the
 * yielder) and park as @p park. Called by the token holder, without
 * SchedState::mu held. A Finished yielder does not wait; a Blocked
 * yielder with no runnable successor raises the deadlock trap.
 */
void
Vm::schedYield(Park park)
{
    SchedState &S = *sched_;
    std::unique_lock<std::mutex> lk(S.mu);
    ThreadCtx &me = *S.threads[S.running];
    me.state = park == Park::Ready      ? ThreadCtx::State::Ready
               : park == Park::Blocked  ? ThreadCtx::State::Blocked
                                        : ThreadCtx::State::Finished;

    if (park == Park::Finished) {
        for (auto &t : S.threads) {
            if (t->state == ThreadCtx::State::Blocked &&
                t->joinedOn == me.tid) {
                t->state = ThreadCtx::State::Ready;
                t->joinedOn = ~0u;
            }
        }
    }

    uint32_t n = (uint32_t)S.threads.size();
    uint32_t next = ~0u;
    for (uint32_t i = 1; i <= n; i++) {
        uint32_t c = (me.tid + i) % n;
        if (S.threads[c]->state == ThreadCtx::State::Ready) {
            next = c;
            break;
        }
    }

    if (next == me.tid) {
        // Preempted with nobody else runnable: keep running.
        me.state = ThreadCtx::State::Running;
        return;
    }

    if (next == ~0u) {
        // Nobody is runnable. A blocked yielder means a join cycle;
        // a finishing one means everyone left is blocked on a cycle
        // that excludes it. Either way: deterministic deadlock.
        schedDeadlocks_++;
        if (park == Park::Finished) {
            // Surface the trap through the main thread, the only one
            // run() can catch from.
            S.pendingWatchdog = true;
            S.pendingOutcome = ExecOutcome::Trap;
            S.pendingDiag = "thread join deadlock";
            S.running = 0;
            S.cv.notify_all();
            return;
        }
        me.state = ThreadCtx::State::Running;
        lk.unlock();
        trapOrFatal("thread join deadlock");
    }

    saveCurrentCtx(me);
    S.running = next;
    schedSwitches_++;
    S.cv.notify_all();
    if (park == Park::Finished)
        return; // host thread exits via threadEntry

    S.cv.wait(lk, [&] {
        return S.running == me.tid ||
               (me.tid == 0 &&
                (S.pendingCrash || S.pendingWatchdog));
    });

    if (me.tid == 0 && (S.pendingCrash || S.pendingWatchdog)) {
        // A spawned thread crashed or tripped the watchdog and has
        // already unwound; re-raise on main so run() catches it.
        loadCtx(me);
        me.state = ThreadCtx::State::Running;
        S.running = 0;
        if (S.pendingCrash) {
            S.pendingCrash = false;
            lk.unlock();
            throw CrashSignal{};
        }
        S.pendingWatchdog = false;
        WatchdogSignal w{S.pendingOutcome, std::move(S.pendingDiag),
                         S.pendingWallClock};
        lk.unlock();
        throw w;
    }

    if (S.aborting && me.tid != 0)
        throw ThreadAbort{};

    loadCtx(me);
    me.state = ThreadCtx::State::Running;
}

/** Host-thread body for a spawned VM thread. */
void
Vm::threadEntry(uint32_t tid)
{
    SchedState &S = *sched_;
    ThreadCtx &me = *S.threads[tid];
    {
        std::unique_lock<std::mutex> lk(S.mu);
        S.cv.wait(lk, [&] { return S.running == tid; });
        if (S.aborting) {
            me.state = ThreadCtx::State::Finished;
            S.cv.notify_all();
            return;
        }
        loadCtx(me);
        me.state = ThreadCtx::State::Running;
    }
    try {
        uint64_t rv = 0;
        if (engineResolved() == VmEngine::Bytecode) {
            // Per-thread interpreter: its register arena is private,
            // and its counter merge in ~FastInterp happens while this
            // thread still holds the token (or, on teardown, while
            // the token passes strictly sequentially).
            FastInterp fi(*this, *program_);
            rv = fi.call(me.func, me.args);
        } else {
            rv = callFunction(me.func, me.args, 0);
        }
        me.retVal = rv;
        schedYield(Park::Finished);
    } catch (ThreadAbort &) {
        std::lock_guard<std::mutex> lk(S.mu);
        me.state = ThreadCtx::State::Finished;
        S.cv.notify_all();
    } catch (CrashSignal &) {
        std::lock_guard<std::mutex> lk(S.mu);
        me.state = ThreadCtx::State::Finished;
        S.pendingCrash = true;
        S.running = 0;
        S.cv.notify_all();
    } catch (WatchdogSignal &w) {
        std::lock_guard<std::mutex> lk(S.mu);
        me.state = ThreadCtx::State::Finished;
        S.pendingWatchdog = true;
        S.pendingOutcome = w.outcome;
        S.pendingDiag = std::move(w.diag);
        S.pendingWallClock = w.wallClock;
        S.running = 0;
        S.cv.notify_all();
    }
}

/** Block the running thread until @p target finishes. */
void
Vm::waitThreadFinished(uint32_t target)
{
    SchedState &S = *sched_;
    {
        std::lock_guard<std::mutex> lk(S.mu);
        if (S.threads[target]->state == ThreadCtx::State::Finished)
            return;
        S.threads[S.running]->joinedOn = target;
    }
    schedYield(Park::Blocked);
}

/** Implicit join-all at the end of a run: a run only completes when
 *  every spawned thread has. */
void
Vm::joinAllSpawned()
{
    if (!sched_)
        return;
    SchedState &S = *sched_;
    while (true) {
        uint32_t target = ~0u;
        {
            std::lock_guard<std::mutex> lk(S.mu);
            for (auto &t : S.threads) {
                if (t->tid != 0 &&
                    t->state != ThreadCtx::State::Finished) {
                    target = t->tid;
                    break;
                }
            }
        }
        if (target == ~0u)
            return;
        waitThreadFinished(target);
    }
}

/**
 * Unwind and join every host thread. Token passing stays strictly
 * sequential even here, so parked interpreters (and their FastInterp
 * counter merges) never unwind concurrently.
 */
void
Vm::teardownThreads()
{
    if (!sched_)
        return;
    SchedState &S = *sched_;
    {
        std::unique_lock<std::mutex> lk(S.mu);
        S.aborting = true;
        for (auto &t : S.threads) {
            if (t->tid == 0)
                continue;
            if (t->state != ThreadCtx::State::Finished) {
                S.running = t->tid;
                S.cv.notify_all();
                ThreadCtx *tc = t.get();
                S.cv.wait(lk, [&] {
                    return tc->state == ThreadCtx::State::Finished;
                });
            }
        }
        S.running = 0;
    }
    for (auto &t : S.threads) {
        if (t->host.joinable())
            t->host.join();
    }
    sched_.reset();
    curTid_ = 0;
}

uint64_t
Vm::threadSpawnBody(const ir::Instruction &instr,
                    std::vector<uint64_t> args)
{
    schedPoint();
    schedSpawns_++;
    if (!sched_) {
        sched_ = std::make_unique<SchedState>();
        auto main_ctx = std::make_unique<ThreadCtx>();
        main_ctx->tid = 0;
        main_ctx->state = ThreadCtx::State::Running;
        sched_->threads.push_back(std::move(main_ctx));
    }
    SchedState &S = *sched_;
    uint32_t tid = (uint32_t)S.threads.size();
    if (tid > cfg_.maxThreads)
        trapOrFatal(format("thread limit exceeded (%u threads)",
                           cfg_.maxThreads));

    // Carve the new thread's stack slice from the top of the arena;
    // the main thread's slice shrinks to make room.
    uint64_t sb = cfg_.threadStackBytes;
    uint64_t top = volatileMem_.size();
    if ((uint64_t)tid * sb > top)
        trapOrFatal("volatile arena exhausted by thread stacks");
    uint64_t new_main_limit = top - (uint64_t)tid * sb;
    uint64_t main_sp =
        S.running == 0 ? volatileSp_ : S.threads[0]->sp;
    if (main_sp > new_main_limit)
        trapOrFatal("volatile arena exhausted by thread stacks");
    if (S.running == 0)
        volatileLimit_ = new_main_limit;
    else
        S.threads[0]->spLimit = new_main_limit;

    auto ctx = std::make_unique<ThreadCtx>();
    ctx->tid = tid;
    ctx->func = instr.callee();
    ctx->args = std::move(args);
    ctx->state = ThreadCtx::State::Ready;
    // Offsets into the arena, same convention as volatileSp_.
    ctx->sp = new_main_limit;
    ctx->spBase = new_main_limit;
    ctx->spLimit = top - (uint64_t)(tid - 1) * sb;
    ThreadCtx *raw = ctx.get();
    {
        std::lock_guard<std::mutex> lk(S.mu);
        S.threads.push_back(std::move(ctx));
    }
    raw->host = std::thread(&Vm::threadEntry, this, tid);
    return tid;
}

uint64_t
Vm::threadJoinBody(uint64_t tid)
{
    schedPoint();
    schedJoins_++;
    uint32_t self = sched_ ? sched_->running : 0;
    if (!sched_ || tid == 0 || tid >= sched_->threads.size() ||
        tid == self) {
        trapOrFatal(format("thread_join of invalid thread id %llu",
                           (unsigned long long)tid));
    }
    waitThreadFinished((uint32_t)tid);
    return sched_->threads[tid]->retVal;
}

namespace
{

uint64_t
rmwCompute(ir::BinOp op, uint64_t old_value, uint64_t operand)
{
    switch (op) {
      case ir::BinOp::Add: return old_value + operand;
      case ir::BinOp::Sub: return old_value - operand;
      case ir::BinOp::And: return old_value & operand;
      case ir::BinOp::Or: return old_value | operand;
      case ir::BinOp::Xor: return old_value ^ operand;
      default: break;
    }
    hippo_panic("atomic_rmw with non-rmw operation");
}

} // namespace

uint64_t
Vm::atomicLoadBody(const ir::Instruction &instr, uint64_t addr)
{
    schedPoint();
    uint64_t v = 0;
    rawLoad(addr, reinterpret_cast<uint8_t *>(&v),
            instr.accessSize());
    simNanos_ +=
        isPmAddr(addr) ? cfg_.costs.pmLoadNs : cfg_.costs.loadNs;
    return v;
}

void
Vm::atomicStoreBody(const ir::Instruction &instr, uint64_t value,
                    uint64_t addr, const StackCapture &capture)
{
    schedPoint();
    uint64_t size = instr.accessSize();
    bool pm = isPmAddr(addr);
    if (pm && ir::isReleaseOrder(instr.memOrder()))
        checkPublishRace(addr);
    uint8_t bytes[8];
    std::memcpy(bytes, &value, 8);
    rawStore(addr, bytes, size, false);
    simNanos_ += cfg_.costs.storeNs;
    if (cfg_.traceEnabled && pm) {
        trace::Event ev;
        ev.kind = trace::EventKind::Store;
        ev.addr = addr;
        ev.size = size;
        ev.isPm = true;
        ev.atomic = true;
        ev.sub = (uint8_t)instr.memOrder();
        ev.objectId = objectAt(addr);
        ev.stack = capture();
        emit(std::move(ev));
    }
}

uint64_t
Vm::atomicRmwBody(const ir::Instruction &instr, uint64_t addr,
                  uint64_t operand, const StackCapture &capture)
{
    schedPoint();
    uint64_t size = instr.accessSize();
    bool pm = isPmAddr(addr);
    if (pm && ir::isReleaseOrder(instr.memOrder()))
        checkPublishRace(addr);
    uint64_t old_value = 0;
    rawLoad(addr, reinterpret_cast<uint8_t *>(&old_value), size);
    uint64_t new_value = rmwCompute(instr.binOp(), old_value, operand);
    uint8_t bytes[8];
    std::memcpy(bytes, &new_value, 8);
    rawStore(addr, bytes, size, false);
    simNanos_ += (pm ? cfg_.costs.pmLoadNs : cfg_.costs.loadNs) +
                 cfg_.costs.storeNs;
    if (cfg_.traceEnabled && pm) {
        trace::Event ev;
        ev.kind = trace::EventKind::Store;
        ev.addr = addr;
        ev.size = size;
        ev.isPm = true;
        ev.atomic = true;
        ev.sub = (uint8_t)instr.memOrder();
        ev.objectId = objectAt(addr);
        ev.stack = capture();
        emit(std::move(ev));
    }
    return old_value;
}

/// @}

uint64_t
Vm::callFunction(ir::Function *f, const std::vector<uint64_t> &args,
                 int depth)
{
    hippo_assert(f->entry(), "calling empty function");
    if (depth > 512)
        trapOrFatal(format("call depth limit exceeded in @%s",
                           f->name().c_str()));

    Frame frame;
    frame.func = f;
    frame.parent = curParent_;
    frame.callSite = curCallSite_;
    frame.args = args;
    frame.regs.assign(f->idBound(), 0);

    uint64_t saved_sp = volatileSp_;
    size_t saved_allocs = liveAllocs_.size();

    const auto &costs = cfg_.costs;
    ir::BasicBlock *bb = f->entry();
    auto it = bb->begin();

    uint64_t ret_value = 0;
    while (true) {
        hippo_assert(it != bb->end(), "fell off block %s in @%s",
                     bb->name().c_str(), f->name().c_str());
        ir::Instruction &instr = **it;
        frame.current = &instr;
        if (++steps_ > cfg_.maxSteps) {
            if (cfg_.sandbox)
                throw WatchdogSignal{ExecOutcome::Timeout,
                                     "global step limit exceeded"};
            hippo_fatal("step limit exceeded (infinite loop?)");
        }
        if (cfg_.stepBudget || cfg_.timeBudgetMs)
            checkWatchdog(steps_ - runStartSteps_);
        if (cfg_.crashAtStep &&
            steps_ - runStartSteps_ >= cfg_.crashAtStep)
            throw CrashSignal{};
        if (cfg_.stepProbeStride &&
            (steps_ - runStartSteps_) % cfg_.stepProbeStride == 0)
            cfg_.stepProbe(steps_ - runStartSteps_);
        opcodeCounts_[instr.op()]++;

        switch (instr.op()) {
          case Opcode::Alloca: {
            uint64_t bytes = (instr.accessSize() + 15) & ~15ULL;
            if (cfg_.heapBudget &&
                volatileSp_ - volatileSpBase_ + bytes >
                    cfg_.heapBudget) {
                throw WatchdogSignal{
                    ExecOutcome::BudgetExceeded,
                    format("volatile heap budget exceeded (%llu bytes)",
                           (unsigned long long)cfg_.heapBudget)};
            }
            if (volatileSp_ + bytes > volatileLimit_)
                trapOrFatal("volatile arena exhausted");
            uint64_t addr = volatileBaseAddr + volatileSp_;
            volatileSp_ += bytes;
            std::memset(&volatileMem_[addr - volatileBaseAddr], 0,
                        bytes);
            if (cfg_.traceEnabled) {
                uint32_t obj = trace_.internObject(
                    format("%s#%u", f->name().c_str(), instr.id()),
                    false);
                liveAllocs_.push_back(
                    {addr, addr + instr.accessSize(), obj});
            }
            frame.regs[instr.id()] = addr;
            simNanos_ += costs.aluNs;
            break;
          }
          case Opcode::Load: {
            uint64_t addr = eval(frame, instr.operand(0));
            uint64_t v = 0;
            rawLoad(addr, reinterpret_cast<uint8_t *>(&v),
                    instr.accessSize());
            frame.regs[instr.id()] = v;
            simNanos_ +=
                isPmAddr(addr) ? costs.pmLoadNs : costs.loadNs;
            break;
          }
          case Opcode::Store:
            execStore(frame, instr);
            break;
          case Opcode::Flush:
            execFlush(frame, instr);
            break;
          case Opcode::Fence:
            execFence(frame, instr);
            break;
          case Opcode::Gep: {
            uint64_t base = eval(frame, instr.operand(0));
            uint64_t off = eval(frame, instr.operand(1));
            frame.regs[instr.id()] = base + off;
            simNanos_ += costs.aluNs;
            break;
          }
          case Opcode::Bin: {
            uint64_t l = eval(frame, instr.operand(0));
            uint64_t r = eval(frame, instr.operand(1));
            uint64_t v = 0;
            switch (instr.binOp()) {
              case ir::BinOp::Add: v = l + r; break;
              case ir::BinOp::Sub: v = l - r; break;
              case ir::BinOp::Mul: v = l * r; break;
              case ir::BinOp::UDiv:
                if (!r)
                    trapOrFatal("division by zero");
                v = l / r;
                break;
              case ir::BinOp::URem:
                if (!r)
                    trapOrFatal("remainder by zero");
                v = l % r;
                break;
              case ir::BinOp::And: v = l & r; break;
              case ir::BinOp::Or: v = l | r; break;
              case ir::BinOp::Xor: v = l ^ r; break;
              case ir::BinOp::Shl: v = l << (r & 63); break;
              case ir::BinOp::LShr: v = l >> (r & 63); break;
            }
            frame.regs[instr.id()] = v;
            simNanos_ += costs.aluNs;
            break;
          }
          case Opcode::Cmp: {
            uint64_t l = eval(frame, instr.operand(0));
            uint64_t r = eval(frame, instr.operand(1));
            int64_t sl = (int64_t)l, sr = (int64_t)r;
            bool v = false;
            switch (instr.cmpPred()) {
              case ir::CmpPred::Eq: v = l == r; break;
              case ir::CmpPred::Ne: v = l != r; break;
              case ir::CmpPred::Ult: v = l < r; break;
              case ir::CmpPred::Ule: v = l <= r; break;
              case ir::CmpPred::Ugt: v = l > r; break;
              case ir::CmpPred::Uge: v = l >= r; break;
              case ir::CmpPred::Slt: v = sl < sr; break;
              case ir::CmpPred::Sle: v = sl <= sr; break;
              case ir::CmpPred::Sgt: v = sl > sr; break;
              case ir::CmpPred::Sge: v = sl >= sr; break;
            }
            frame.regs[instr.id()] = v ? 1 : 0;
            simNanos_ += costs.aluNs;
            break;
          }
          case Opcode::Select: {
            uint64_t c = eval(frame, instr.operand(0));
            frame.regs[instr.id()] =
                eval(frame, instr.operand(c ? 1 : 2));
            simNanos_ += costs.aluNs;
            break;
          }
          case Opcode::Br:
            bb = instr.target(0);
            it = bb->begin();
            simNanos_ += costs.aluNs;
            continue;
          case Opcode::CondBr: {
            uint64_t c = eval(frame, instr.operand(0));
            bb = instr.target(c ? 0 : 1);
            it = bb->begin();
            simNanos_ += costs.aluNs;
            continue;
          }
          case Opcode::Call: {
            std::vector<uint64_t> call_args(instr.numOperands());
            for (size_t i = 0; i < instr.numOperands(); i++) {
                call_args[i] = eval(frame, instr.operand(i));
                if (instr.operand(i)->type() == Type::Ptr)
                    recordDynPts(frame, instr.operand(i),
                                 call_args[i]);
            }
            simNanos_ += costs.callNs;
            const Frame *saved_parent = curParent_;
            const ir::Instruction *saved_cs = curCallSite_;
            curParent_ = &frame;
            curCallSite_ = &instr;
            uint64_t rv =
                callFunction(instr.callee(), call_args, depth + 1);
            curParent_ = saved_parent;
            curCallSite_ = saved_cs;
            if (instr.hasResult())
                frame.regs[instr.id()] = rv;
            break;
          }
          case Opcode::Ret:
            ret_value = instr.numOperands()
                            ? eval(frame, instr.operand(0))
                            : 0;
            volatileSp_ = saved_sp;
            liveAllocs_.resize(saved_allocs);
            simNanos_ += costs.callNs;
            return ret_value;
          case Opcode::PmMap:
            frame.regs[instr.id()] = execPmMap(frame, instr);
            simNanos_ += costs.aluNs;
            break;
          case Opcode::Memcpy:
            execMemcpy(frame, instr);
            break;
          case Opcode::Memset:
            execMemset(frame, instr);
            break;
          case Opcode::DurPoint: {
            if (cfg_.traceEnabled) {
                trace::Event ev;
                ev.kind = trace::EventKind::DurPoint;
                ev.symbol = instr.symbol();
                ev.stack = captureStack(frame, instr);
                emit(std::move(ev));
            }
            int64_t n = durPointsSeen_++;
            if (cfg_.durPointProbe)
                cfg_.durPointProbe((uint64_t)n,
                                   steps_ - runStartSteps_,
                                   instr.symbol());
            if (cfg_.crashAtDurPoint >= 0 &&
                n == cfg_.crashAtDurPoint) {
                volatileSp_ = saved_sp;
                liveAllocs_.resize(saved_allocs);
                throw CrashSignal{};
            }
            break;
          }
          case Opcode::Print: {
            uint64_t v = eval(frame, instr.operand(0));
            outputs_.push_back({instr.symbol(), v});
            if (cfg_.traceEnabled && cfg_.traceOutputs) {
                trace::Event ev;
                ev.kind = trace::EventKind::Output;
                ev.symbol = instr.symbol();
                ev.value = v;
                ev.stack = captureStack(frame, instr);
                emit(std::move(ev));
            }
            break;
          }
          case Opcode::ThreadSpawn: {
            std::vector<uint64_t> spawn_args(instr.numOperands());
            for (size_t i = 0; i < instr.numOperands(); i++)
                spawn_args[i] = eval(frame, instr.operand(i));
            simNanos_ += costs.callNs;
            frame.regs[instr.id()] =
                threadSpawnBody(instr, std::move(spawn_args));
            break;
          }
          case Opcode::ThreadJoin: {
            uint64_t tid = eval(frame, instr.operand(0));
            simNanos_ += costs.callNs;
            frame.regs[instr.id()] = threadJoinBody(tid);
            break;
          }
          case Opcode::AtomicLoad: {
            uint64_t addr = eval(frame, instr.operand(0));
            frame.regs[instr.id()] = atomicLoadBody(instr, addr);
            break;
          }
          case Opcode::AtomicStore: {
            uint64_t value = eval(frame, instr.operand(0));
            uint64_t addr = eval(frame, instr.operand(1));
            atomicStoreBody(instr, value, addr, [&] {
                return captureStack(frame, instr);
            });
            break;
          }
          case Opcode::AtomicRmw: {
            uint64_t addr = eval(frame, instr.operand(0));
            uint64_t operand = eval(frame, instr.operand(1));
            frame.regs[instr.id()] =
                atomicRmwBody(instr, addr, operand, [&] {
                    return captureStack(frame, instr);
                });
            break;
          }
        }
        ++it;
    }
}

std::string
Vm::statsString() const
{
    std::string out =
        format("executed %llu instruction(s), %.0f simulated ns\n",
               (unsigned long long)steps_, simNanos_);
    for (const auto &[op, count] : opcodeCounts_) {
        out += format("  %-10s %12llu\n", ir::opcodeName(op),
                      (unsigned long long)count);
    }
    const pmem::PmPoolStats &ps = pool_->stats();
    out += format("  PM: %llu store(s), %llu flush(es) "
                  "(%llu redundant), %llu fence(s), "
                  "%llu eviction(s)\n",
                  (unsigned long long)ps.stores,
                  (unsigned long long)ps.flushes,
                  (unsigned long long)ps.redundantFlushes,
                  (unsigned long long)ps.fences,
                  (unsigned long long)ps.evictions);
    return out;
}

uint64_t
Vm::flushesExecuted() const
{
    uint64_t n = 0;
    for (const auto &[kind, count] : flushCounts_)
        n += count;
    return n;
}

uint64_t
Vm::fencesExecuted() const
{
    uint64_t n = 0;
    for (const auto &[kind, count] : fenceCounts_)
        n += count;
    return n;
}

void
Vm::exportMetrics(support::MetricsRegistry &reg,
                  const std::string &prefix) const
{
    reg.counter(prefix + ".runs").inc(runs_);
    reg.counter(prefix + ".instructions").inc(steps_);
    reg.doubleSum(prefix + ".sim_ns").add(simNanos_);
    reg.counter(prefix + ".crashes_injected").inc(crashesInjected_);
    reg.counter(prefix + ".nt_stores").inc(ntStores_);
    reg.counter(prefix + ".watchdog.timeouts").inc(watchdogTimeouts_);
    reg.counter(prefix + ".watchdog.budget_exceeded")
        .inc(watchdogBudgetExceeded_);
    reg.counter(prefix + ".watchdog.traps").inc(watchdogTraps_);
    for (const auto &[op, count] : opcodeCounts_)
        reg.counter(prefix + ".opcode." + ir::opcodeName(op))
            .inc(count);
    for (const auto &[kind, count] : flushCounts_)
        reg.counter(prefix + ".flush." + ir::flushKindName(kind))
            .inc(count);
    for (const auto &[kind, count] : fenceCounts_)
        reg.counter(prefix + ".fence." + ir::fenceKindName(kind))
            .inc(count);
    if (schedVisibleOps_ || schedSpawns_) {
        reg.counter(prefix + ".sched.spawns").inc(schedSpawns_);
        reg.counter(prefix + ".sched.joins").inc(schedJoins_);
        reg.counter(prefix + ".sched.switches").inc(schedSwitches_);
        reg.counter(prefix + ".sched.preemptions")
            .inc(schedPreemptions_);
        reg.counter(prefix + ".sched.visible_ops")
            .inc(schedVisibleOps_);
        reg.counter(prefix + ".sched.races").inc(schedRaces_);
        reg.counter(prefix + ".sched.deadlocks")
            .inc(schedDeadlocks_);
    }
    reg.counter(prefix + ".tree.runs").inc(treeRuns_);
    reg.counter(prefix + ".tree.operand_evals").inc(treeEvals_);
    reg.counter(prefix + ".fast.runs").inc(fastRuns_);
    reg.counter(prefix + ".fast.steps").inc(fastSteps_);
    reg.counter(prefix + ".fast.dispatches").inc(fastDispatches_);
    reg.counter(prefix + ".fast.superinstructions").inc(fastSuper_);
    reg.counter(prefix + ".fast.compiles").inc(fastCompiles_);
    if (program_) {
        reg.counter(prefix + ".fast.compiled.instrs")
            .inc(program_->totalInstrs);
        reg.counter(prefix + ".fast.compiled.bytecode")
            .inc(program_->totalCode);
        reg.counter(prefix + ".fast.compiled.superinstructions")
            .inc(program_->totalFused);
    }
    pool_->exportMetrics(reg, prefix + ".pool");
}

RunResult
Vm::run(const std::string &function, std::vector<uint64_t> args)
{
    durPointsSeen_ = 0;
    curParent_ = nullptr;
    curCallSite_ = nullptr;
    curTid_ = 0;
    volatileSpBase_ = 0;
    volatileLimit_ = volatileMem_.size();
    runVisibleOps_ = 0;
    planCursor_ = 0;
    raceSeq_ = 0;
    curDirtyLines_.clear();
    curFlushedLines_.clear();
    if (lineTracking_ < 0) {
        // Line tracking costs a set insert per PM store, so it is
        // only armed for modules that can exhibit cross-thread
        // durability races at all.
        lineTracking_ = 0;
        for (const auto &f : module_->functions()) {
            for (const auto &bb : f->blocks()) {
                for (const auto &in : *bb) {
                    switch (in->op()) {
                      case Opcode::ThreadSpawn:
                      case Opcode::AtomicLoad:
                      case Opcode::AtomicStore:
                      case Opcode::AtomicRmw:
                        lineTracking_ = 1;
                        break;
                      default:
                        break;
                    }
                }
            }
        }
    }
    lineTrackingEnabled_ = lineTracking_ == 1;
    double nanos_before = simNanos_;
    uint64_t steps_before = steps_;
    runStartSteps_ = steps_;
    runStartTime_ = std::chrono::steady_clock::now();

    runs_++;
    RunResult res;
    try {
        ir::Function *f = module_->findFunction(function);
        if (!f)
            trapOrFatal(format("no such function: @%s",
                               function.c_str()));
        hippo_assert(args.size() == f->numParams(),
                     "run() arity mismatch");
        if (engineResolved() == VmEngine::Bytecode) {
            ensureProgram();
            fastRuns_++;
            // Destroyed (merging its flat counters into the maps)
            // during unwinding, before the handlers below run.
            FastInterp fi(*this, *program_);
            res.returnValue = fi.call(f, args);
        } else {
            treeRuns_++;
            res.returnValue = callFunction(f, args, 0);
        }
        joinAllSpawned();
    } catch (CrashSignal &) {
        res.crashed = true;
        crashesInjected_++;
        volatileSp_ = 0;
        liveAllocs_.clear();
    } catch (WatchdogSignal &w) {
        res.outcome = w.outcome;
        res.diag = std::move(w.diag);
        res.wallClockTimeout = w.wallClock;
        volatileSp_ = 0;
        liveAllocs_.clear();
        switch (res.outcome) {
          case ExecOutcome::Timeout: watchdogTimeouts_++; break;
          case ExecOutcome::BudgetExceeded:
            watchdogBudgetExceeded_++;
            break;
          default: watchdogTraps_++; break;
        }
    }
    teardownThreads();
    volatileSpBase_ = 0;
    volatileLimit_ = volatileMem_.size();
    res.steps = steps_ - steps_before;
    res.visibleOps = runVisibleOps_;
    res.simNanos = simNanos_ - nanos_before;

    if (!res.crashed && res.ok() && cfg_.traceEnabled &&
        cfg_.durPointAtExit) {
        trace::Event ev;
        ev.kind = trace::EventKind::DurPoint;
        ev.symbol = "exit";
        ev.stack = {{function, 0xFFFFFFFEu, "", 0}};
        emit(std::move(ev));
    }
    return res;
}

} // namespace hippo::vm
