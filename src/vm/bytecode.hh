/**
 * @file
 * Flat linear bytecode for the PMIR fast interpreter.
 *
 * The tree-walking Vm re-resolves every operand (constant? argument?
 * instruction id?) through a virtual-ish switch on every execution
 * and walks std::list iterators between instructions. The bytecode
 * compiler performs that resolution exactly once: each ir::Function
 * is lowered to a dense vector of fixed-size BcInstr records whose
 * operands are frame-slot indices into one flat register file
 * (instruction results, then arguments, then a deduplicated constant
 * pool), and whose branch targets are pre-patched instruction
 * indices. Adjacent instructions forming hot idioms are fused into
 * superinstructions (store+flush[+fence], gep+load, gep+store,
 * cmp+condbr); fused handlers still execute the full per-component
 * step prologue, so probes, watchdog budgets, crash injection, and
 * every counter behave byte-identically to the tree walker
 * (DESIGN.md "Bytecode fast path").
 *
 * The compiler is a pure function of the Module: it never mutates
 * the IR, and the emitted program holds const pointers back into it
 * (for trace capture and symbols). Mutating the Module after
 * compilation invalidates the program — the Vm compiles lazily on
 * the first bytecode run and callers that rewrite IR (the fixer, the
 * flush optimizer) always verify through fresh Vm instances.
 */

#ifndef HIPPO_VM_BYTECODE_HH
#define HIPPO_VM_BYTECODE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/instruction.hh"

namespace hippo::ir
{
class Function;
class Module;
} // namespace hippo::ir

namespace hippo::vm
{

/** Number of PMIR opcodes (flat-array sizing for hot-path counters). */
constexpr unsigned numIrOpcodes = (unsigned)ir::Opcode::AtomicRmw + 1;

/**
 * Bytecode opcodes: the PMIR set one-to-one, then the
 * superinstructions, then the fell-off-block guard.
 */
enum class BcOp : uint8_t
{
    Alloca, Load, Store, Flush, Fence, Gep, Bin, Cmp, Select,
    Br, CondBr, Call, Ret, PmMap, Memcpy, Memset, DurPoint, Print,
    ThreadSpawn, ThreadJoin, AtomicLoad, AtomicStore, AtomicRmw,

    StoreFlush,      ///< store + flush of the same address value
    StoreFlushFence, ///< store + flush + fence (the durability idiom)
    GepLoad,         ///< gep + load through the fresh pointer
    GepStore,        ///< gep + store through the fresh pointer
    CmpBr,           ///< cmp + condbr on the fresh flag

    FallOff, ///< block ended without a terminator (verifier escape)
};

constexpr unsigned numBcOps = (unsigned)BcOp::FallOff + 1;

/** Printable mnemonic of a bytecode opcode. */
const char *bcOpName(BcOp op);

/** Slot value meaning "no operand / no result". */
constexpr uint32_t bcNoSlot = ~0u;

/**
 * One fixed-size bytecode instruction. Operand fields a/b/c hold
 * frame-slot indices except where noted; dst/dst2 hold result slots
 * (bcNoSlot for none). src/src2/src3 point at the originating IR
 * instructions (fused components in program order) for trace
 * capture, symbols, and dynamic points-to keys.
 *
 * Per-opcode layout:
 *   Alloca   dst=result            imm=accessSize
 *   Load     a=ptr dst=result      imm=accessSize
 *   Store    a=value b=ptr         imm=accessSize flags&1=nonTemporal
 *   Flush    a=ptr                 sub=FlushKind
 *   Fence                          sub=FenceKind
 *   Gep      a=base b=off dst=result
 *   Bin      a=l b=r dst=result    sub=BinOp
 *   Cmp      a=l b=r dst=result    sub=CmpPred
 *   Select   a=cond b=tval c=fval dst=result
 *   Br       a=target pc
 *   CondBr   a=cond b=true pc c=false pc
 *   Call     a=callee index b=callArgs offset imm=#args dst=result?
 *   Ret      a=value slot or bcNoSlot
 *   PmMap    dst=result            imm=regionSize (symbol via src)
 *   Memcpy   a=dst b=src c=len
 *   Memset   a=dst b=byte c=len
 *   DurPoint                       (symbol via src)
 *   Print    a=value               (label via src)
 *   ThreadSpawn a=callee index b=callArgs offset imm=#args dst=tid
 *   ThreadJoin  a=tid dst=result
 *   AtomicLoad  a=ptr dst=result   imm=accessSize sub=MemOrder
 *   AtomicStore a=value b=ptr      imm=accessSize sub=MemOrder
 *   AtomicRmw   a=ptr b=value dst=old imm=size sub=BinOp sub2=MemOrder
 *   StoreFlush       a=value b=ptr imm=size flags&1=nt sub=FlushKind
 *   StoreFlushFence  as StoreFlush + sub2=FenceKind
 *   GepLoad  a=base b=off dst=gep dst2=load imm=accessSize
 *   GepStore a=base b=off c=value dst=gep imm=size flags&1=nt
 *   CmpBr    a=l b=r dst=cmp sub=pred c=true pc imm=false pc
 *   FallOff  imm=index into BcFunction::fallOffBlocks
 */
struct BcInstr
{
    BcOp op = BcOp::FallOff;
    uint8_t sub = 0;   ///< BinOp / CmpPred / FlushKind / FenceKind
    uint8_t sub2 = 0;  ///< StoreFlushFence: FenceKind
    uint8_t flags = 0; ///< bit 0: non-temporal store
    uint32_t a = bcNoSlot;
    uint32_t b = bcNoSlot;
    uint32_t c = bcNoSlot;
    uint32_t dst = bcNoSlot;
    uint32_t dst2 = bcNoSlot;
    uint64_t imm = 0;
    const ir::Instruction *src = nullptr;
    const ir::Instruction *src2 = nullptr;
    const ir::Instruction *src3 = nullptr;
};

/** One compiled function. */
struct BcFunction
{
    const ir::Function *irFunc = nullptr;
    std::vector<BcInstr> code;

    /**
     * Frame-slot layout: [0, numRegs) instruction results (slot ==
     * instruction id), [argBase, argBase+numParams) arguments,
     * [constBase, constBase+constPool.size()) the constant pool,
     * copied in at frame entry so every operand is one indexed read.
     */
    uint32_t numRegs = 0;
    uint32_t argBase = 0;
    uint32_t constBase = 0;
    uint32_t frameSlots = 0;
    std::vector<uint64_t> constPool;

    /** Flattened argument-slot lists for Call instructions. */
    std::vector<uint32_t> callArgs;

    /** Block names for FallOff diagnostics. */
    std::vector<std::string> fallOffBlocks;

    uint32_t irInstrs = 0; ///< IR instructions covered
    uint32_t fused = 0;    ///< superinstructions emitted
};

/** Compiler options. */
struct BcOptions
{
    /**
     * Fuse superinstructions. The Vm disables fusion when tracing:
     * trace events interleave with probe callbacks per component
     * instruction, and the un-fused encoding keeps that path
     * trivially identical to the oracle.
     */
    bool enableSuper = true;
};

/** A compiled module. */
struct BcProgram
{
    std::vector<BcFunction> funcs;
    std::map<const ir::Function *, uint32_t> indexOf;
    BcOptions options;

    uint64_t totalInstrs = 0; ///< IR instructions compiled
    uint64_t totalCode = 0;   ///< bytecode records emitted
    uint64_t totalFused = 0;  ///< superinstructions emitted
};

/**
 * One-pass compiler: resolve operands to frame slots, lay blocks out
 * in function order, patch branch targets, and fuse
 * superinstructions (when enabled) under the adjacency rules
 * documented in DESIGN.md. Deterministic: same module and options,
 * same program.
 */
BcProgram compileModule(const ir::Module &m, const BcOptions &opts = {});

/** Stable textual listing (golden-tested; see tests/golden/). */
std::string disassemble(const BcProgram &prog);

} // namespace hippo::vm

#endif // HIPPO_VM_BYTECODE_HH
