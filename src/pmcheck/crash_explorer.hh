/**
 * @file
 * Systematic crash-state exploration, in the spirit of the
 * validation tools the paper builds on (Yat's systematic crash
 * enumeration, Agamotto's thorough exploration; §2.2/§8): execute a
 * workload, then re-execute it once per crash point — every
 * durability point, and optionally every Nth instruction — simulate
 * the power failure, run the application's recovery entry point
 * against the surviving pool, and collect the recovered state.
 *
 * This is how the repo validates that repaired applications are
 * actually crash consistent, beyond the detector's trace-order
 * checking: the detector proves orderings exist, the explorer
 * demonstrates recovery works from real torn states.
 *
 * Two engines produce byte-identical ExplorationResults (DESIGN.md
 * "Snapshot replay engine"):
 *  - the *snapshot* engine (default) runs the entry program once,
 *    forking a copy-on-write pool snapshot at every planned crash
 *    point (or, under eviction injection, replaying a recorded
 *    pool-op log prefix per point), so only recovery executes per
 *    crash — O(S + C·R) VM steps instead of O(C·S);
 *  - the *legacy* engine re-executes the entry run once per crash
 *    point, kept for differential testing.
 */

#ifndef HIPPO_PMCHECK_CRASH_EXPLORER_HH
#define HIPPO_PMCHECK_CRASH_EXPLORER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pmem/pm_pool.hh"
#include "vm/vm.hh"

namespace hippo::ir
{
class Module;
} // namespace hippo::ir

namespace hippo::pmcheck
{

/** How exploreCrashes replays the planned crash points. */
enum class ExploreEngine : uint8_t
{
    /** Pick automatically (currently always Snapshot). */
    Auto,
    /** One full entry re-execution per crash point. */
    Legacy,
    /**
     * One master entry execution; per crash point, fork a pool
     * snapshot (evictChance == 0) or replay the recorded pool-op
     * log prefix against a per-point-seeded pool (evictChance > 0,
     * falling back to Legacy replays if the log overflows its byte
     * budget). Results are byte-identical to Legacy in both modes.
     */
    Snapshot,
};

/** What to run and where to crash. */
struct CrashExplorerConfig
{
    std::string entry;                ///< workload entry point
    std::vector<uint64_t> entryArgs;
    std::string recovery;             ///< recovery entry point
    std::vector<uint64_t> recoveryArgs;

    bool exploreDurPoints = true; ///< crash at every durpoint

    uint64_t stepStride = 0;      ///< also crash every N instrs

    /**
     * Exploration budget. The crash plan enumerates every durpoint
     * crash first, then every step-stride crash, and is truncated to
     * this many entries *before* any replay runs: under budget
     * pressure durpoint crashes are prioritized over step-stride
     * crashes, and the surviving plan — hence the result — is
     * identical at every `jobs` setting.
     */
    uint64_t maxCrashes = 512;

    /**
     * Static pre-filter: durpoint labels to explore *first*. Crashes
     * at durpoints whose label is listed here (typically
     * analysis::StaticReport::durLabels() — the durability points the
     * static checker flagged as suspicious) move to the front of the
     * crash plan, ahead of the remaining durpoint crashes, so a tight
     * maxCrashes budget is spent where bugs statically can be. Within
     * each class the original durpoint order is kept; when empty, the
     * plan — and so the whole ExplorationResult — is unchanged.
     */
    std::vector<std::string> priorityDurLabels;

    uint64_t poolBytes = 16u << 20;

    /**
     * Replay workers. 0 = one per hardware thread; 1 = fully serial
     * (no pool). Each crash point replays on its own Vm + PmPool and
     * outcomes merge back in crash-plan order, so every value of
     * `jobs` yields a byte-identical ExplorationResult.
     */
    unsigned jobs = 0;

    /**
     * Random-eviction injection for replay pools (see PmPool). The
     * RNG for crash point k is seeded from (seed, k) — by plan
     * position, not by worker — so eviction timing is reproducible
     * and independent of `jobs`.
     */
    double evictChance = 0.0;
    uint64_t seed = 1;

    /** Replay engine (see ExploreEngine). */
    ExploreEngine engine = ExploreEngine::Auto;

    /**
     * Interpreter engine for every VM the exploration runs (master,
     * entry replays, recoveries). Orthogonal to `engine`, which
     * picks the *replay strategy*; this picks how each individual
     * run executes. Results are byte-identical either way
     * (tests/test_fast_interp.cc).
     */
    vm::VmEngine vmEngine = vm::VmEngine::Auto;

    /**
     * Byte budget for the checkpointed-replay op log (the
     * evictChance > 0 snapshot mode). Overflow falls back to
     * per-point legacy replays; the result is unchanged either way.
     */
    uint64_t opLogMaxBytes = 64u << 20;

    /**
     * Adversarial torn-store fault model applied to every *replay*
     * pool at its crash boundary (the master/clean run stays
     * fault-free, so cleanRunRecovered remains the fault-free
     * reference). The effective plan for crash point k reseeds
     * faults.seed by plan position — like the eviction RNG, never by
     * worker — so exploration stays byte-identical at every `jobs`
     * setting and in every replay mode.
     */
    pmem::FaultPlan faults;

    /**
     * Watchdog budgets for recovery replays (see vm::VmConfig).
     * Recovery from an adversarial (torn) state may diverge or trap;
     * when faults are enabled or any budget is nonzero, recovery
     * runs sandboxed and a non-Ok outcome enters the degradation
     * ladder: one legacy-engine retry with budgets tightened to
     * half, then the crash point is recorded as unverified instead
     * of aborting the exploration.
     *
     * Wall-clock timeouts never decide an outcome: a run cut short
     * by `timeBudgetMs` is retried under a deterministic step cap
     * (with only a generous hang backstop on the clock), so every
     * comparable `explorer.*` aggregate — and the recovery digest —
     * is a pure function of the module and this config, identical
     * on any host. Only the uncomparable
     * `explorer.wallclock.retries` gauge records how often the
     * clock fired.
     */
    uint64_t stepBudget = 0;   ///< recovery instruction cap (0 = off)
    uint64_t heapBudget = 0;   ///< recovery volatile-heap cap (0 = off)
    uint64_t timeBudgetMs = 0; ///< recovery wall-clock cap (0 = off)

    /**
     * @name Interleaving-bounded exploration (threaded modules)
     *
     * When the module contains thread/atomic instructions
     * (moduleIsThreaded) the explorer explores the schedule space
     * instead of the single-schedule crash plan: enumerate
     * vm::SchedulePlans with up to `preemptBound` forced
     * preemptions (Chess-style), in lexicographic order over the
     * baseline run's visible-op indices, truncated to the
     * `schedules` budget; execute each plan on a private pool; fork
     * a COW pool snapshot at every cross-thread durability race the
     * scheduler reports (a release-ordered atomic PM publication
     * with unpersisted payload lines — capped at `maxRaceCrashes`
     * per schedule) and run recovery against the forked pre-
     * publication image. Durpoint crashes are explored under the
     * baseline (empty) plan only. The plan set, the race forks, and
     * the outcome order are pure functions of this config, so the
     * result is byte-identical across `jobs`, both VM engines, and
     * shard counts. A plan whose entry run the watchdog cuts short
     * degrades to a single unverified outcome (never a crash),
     * counted in `explorer.sched.degraded`.
     */
    /// @{
    uint64_t schedules = 64;      ///< schedule-plan budget (>= 1)
    uint32_t preemptBound = 2;    ///< max forced preemptions per plan
    uint64_t maxRaceCrashes = 16; ///< race forks per schedule
    /// @}
};

/** One explored crash. */
struct CrashOutcome
{
    bool atStep = false;      ///< step-based (vs durpoint-based)
    uint64_t crashPoint = 0;  ///< durpoint index or step count

    /** Interleaving exploration: the crash image was forked at a
     *  cross-thread race point (crashPoint is then the race ordinal
     *  within the schedule's run). */
    bool atRace = false;
    uint64_t scheduleId = 0;  ///< plan index (0 = baseline schedule)

    uint64_t recovered = 0;   ///< recovery entry's return value

    /** Recovery exhausted its watchdog budgets (or trapped) on both
     *  rungs of the degradation ladder; `recovered` is 0 and means
     *  "unknown", not "recovered nothing". */
    bool unverified = false;

    bool operator==(const CrashOutcome &o) const = default;
};

/** Aggregate exploration result. */
struct ExplorationResult
{
    std::vector<CrashOutcome> outcomes;
    uint64_t durPointsInRun = 0;
    uint64_t stepsInRun = 0;
    uint64_t cleanRunRecovered = 0; ///< recovery after no crash

    /** @name Interleaving exploration census (threaded modules) */
    /// @{
    uint64_t visibleOpsInRun = 0;   ///< baseline scheduler-visible ops
    uint64_t schedulesPlanned = 0;  ///< bounded-enumeration size
    uint64_t schedulesExecuted = 0; ///< plans run (post-budget)
    uint64_t schedulesDegraded = 0; ///< plans the watchdog cut short
    uint64_t racesObserved = 0;     ///< race points across all plans
    /// @}

    bool operator==(const ExplorationResult &o) const = default;

    /** Outcomes forked at cross-thread race points. */
    uint64_t raceCrashCount() const;

    /** Recovered values at successive durpoints never decrease
     *  (the natural invariant of append/insert workloads). */
    bool durPointRecoveryNonDecreasing() const;

    /** Smallest / largest recovered value over all crashes. */
    uint64_t minRecovered() const;
    uint64_t maxRecovered() const;

    /** Crash points the degradation ladder gave up on. */
    uint64_t unverifiedCount() const;
};

/** True when @p m contains thread or atomic instructions — the
 *  explorer then runs interleaving-bounded exploration. */
bool moduleIsThreaded(const ir::Module &m);

/**
 * Run the exploration. The module is not modified; with `jobs > 1`
 * it is shared read-only across the replay workers (see the
 * "Threading model" section of DESIGN.md). Threaded modules take
 * the interleaving-bounded path (see the schedules knobs above);
 * everything else runs the single-schedule crash plan.
 */
ExplorationResult exploreCrashes(ir::Module *m,
                                 const CrashExplorerConfig &cfg);

/**
 * FNV-1a over the exploration outcomes: a compact digest callers can
 * compare across `jobs` settings, engines, and (for the flush
 * optimizer's differential harness) across semantics-preserving
 * module transformations. Mixes cleanRunRecovered and every
 * outcome's (atStep, crashPoint, atRace, scheduleId, recovered,
 * unverified); does NOT mix durPointsInRun or stepsInRun, so two
 * modules that differ only in instruction count but reach the same
 * durability points with the same recovery behavior digest
 * identically.
 */
uint64_t recoveryDigest(const ExplorationResult &res);

} // namespace hippo::pmcheck

#endif // HIPPO_PMCHECK_CRASH_EXPLORER_HH
