/**
 * @file
 * PMTest-style input adapter. §5.1 of the paper: "In principle,
 * Hippocrates can accept input from any PM bug finding tool; it
 * currently supports pmemcheck and PMTest." PMTest (Liu et al.,
 * ASPLOS'19) is a trace-validation framework whose instrumentation
 * emits one line per PM operation; this adapter parses that style of
 * log into the common trace::Trace representation the detector and
 * fixer consume.
 *
 * Accepted line format (one operation per line):
 *
 *   PMTest_START
 *   PMTest_STORE <func>#<instrId>@<file>:<line> <addr> <size>
 *   PMTest_NTSTORE <site> <addr> <size>
 *   PMTest_FLUSH <site> <addr> [clwb|clflushopt|clflush]
 *   PMTest_FENCE <site>
 *   PMTest_ASSERT <site> <label>        ; isPersistent checkpoint
 *   PMTest_END
 *
 * PMTest's lightweight instrumentation records the operation site
 * but not full call stacks, so the adapter synthesizes single-frame
 * stacks; Hippocrates then repairs intraprocedurally (the paper
 * notes it was "easy to port PMTest to provide the same
 * information" — full stacks — which our native tracer does).
 */

#ifndef HIPPO_PMCHECK_PMTEST_ADAPTER_HH
#define HIPPO_PMCHECK_PMTEST_ADAPTER_HH

#include <string>

#include "trace/trace.hh"

namespace hippo::pmcheck
{

/**
 * Parse a PMTest-style log into a Trace.
 *
 * @param text The log.
 * @param out Receives the converted trace.
 * @param error Receives "line N: message" on failure.
 * @retval true on success.
 */
bool readPmtestLog(const std::string &text, trace::Trace &out,
                   std::string *error = nullptr);

} // namespace hippo::pmcheck

#endif // HIPPO_PMCHECK_PMTEST_ADAPTER_HH
