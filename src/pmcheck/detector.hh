/**
 * @file
 * pmcheck: a pmemcheck-like durability-bug detector over PM-operation
 * traces. It tracks every PM store through the flush/fence state
 * machine of §2.1 and reports, at each durability point I, the three
 * bug classes of the paper:
 *
 *  - missing-flush        (store never flushed, but a fence existed)
 *  - missing-fence        (store flushed, flush never fenced)
 *  - missing-flush&fence  (store neither flushed nor fenced)
 *
 * Each bug carries the full stack trace of the buggy store (X) and of
 * the durability point (I), which is exactly the input Hippocrates
 * needs (paper §4.1).
 */

#ifndef HIPPO_PMCHECK_DETECTOR_HH
#define HIPPO_PMCHECK_DETECTOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace hippo::support
{
class MetricsRegistry;
} // namespace hippo::support

namespace hippo::pmcheck
{

/**
 * The paper's three durability-bug classes, plus the cross-thread
 * class added by the interleaving-bounded explorer: a PM store whose
 * line is still unflushed (or unfenced) when a release-ordered atomic
 * PM store publishes it to other threads. A crash after a consumer
 * observes the publication but before the line persists loses data
 * the consumer already acted on.
 */
enum class BugKind : uint8_t
{
    MissingFlush,
    MissingFence,
    MissingFlushFence,
    CrossThread,
};

const char *bugKindName(BugKind k);

/** One (statically deduplicated) durability bug. */
struct Bug
{
    BugKind kind = BugKind::MissingFlushFence;

    /// @name The unpersisted update X
    /// @{
    uint64_t storeEventSeq = 0;
    std::vector<trace::StackFrame> storeStack;
    uint64_t addr = 0;
    uint64_t size = 0;
    uint32_t objectId = ~0u;
    /// @}

    /// @name The durability point I. For CrossThread bugs this is
    /// the publishing release-ordered atomic store, and durLabel is
    /// "release-publish".
    /// @{
    uint64_t durEventSeq = 0;
    std::vector<trace::StackFrame> durStack;
    std::string durLabel;
    /// @}

    /// @name The last flush F(X) covering the store (missing-fence
    /// bugs only; empty stack otherwise)
    /// @{
    uint64_t flushEventSeq = 0;
    std::vector<trace::StackFrame> flushStack;
    /// @}

    /// @name The first fence after the store and before I (empty for
    /// missing-flush&fence bugs). The fixer uses this to decide
    /// whether an inserted flush can rely on an existing fence: it
    /// can only when that fence is visible in the frame of the fix
    /// locus — intraprocedural reasoning, per the paper's safety
    /// argument.
    /// @{
    uint64_t fenceEventSeq = 0;
    std::vector<trace::StackFrame> fenceStack;
    /// @}

    /** Dynamic occurrences folded into this static bug. */
    uint64_t dynCount = 0;

    /** Store site (function + instruction id) as a string key. */
    std::string storeSiteKey() const;

    std::string str() const;
};

/** Full detector output. */
struct Report
{
    std::vector<Bug> bugs;
    uint64_t eventsScanned = 0; ///< every trace event fed in
    uint64_t pmStoresSeen = 0;
    uint64_t flushesSeen = 0;
    uint64_t fencesSeen = 0;
    uint64_t durPointsSeen = 0;
    uint64_t redundantFlushes = 0; ///< flushes of clean PM lines

    bool clean() const { return bugs.empty(); }

    /**
     * Accumulate the detector census (events scanned, stores/flushes/
     * fences/durpoints, redundant flushes, bugs total and per kind)
     * into @p reg under "<prefix>.".
     */
    void exportMetrics(support::MetricsRegistry &reg,
                       const std::string &prefix = "pmcheck") const;

    /** Serialize in a line-oriented text format. */
    std::string writeText() const;

    /** Parse the output of writeText. @retval true on success. */
    static bool readText(const std::string &text, Report &out,
                         std::string *error = nullptr);
};

/** Detector options. */
struct DetectorConfig
{
    /**
     * Treat the synthetic "exit" durability point emitted at the end
     * of a run like any other (pmemcheck reports unpersisted stores
     * at program exit).
     */
    bool checkExitDurPoint = true;
};

/** Run the detector over @p trace. */
Report analyze(const trace::Trace &trace, DetectorConfig cfg = {});

/**
 * Streaming detector: an EventSink that runs the same state machine
 * incrementally, so the VM can detect bugs online without
 * materializing the trace (pmemcheck traces reach 350 MB for Redis,
 * §5.1). Feed it via vm::VmConfig::eventSink, then call report().
 * Note: Trace-AA needs the materialized trace; use Full-AA when
 * repairing from an online report.
 */
class OnlineDetector : public trace::EventSink
{
  public:
    explicit OnlineDetector(DetectorConfig cfg = {});
    ~OnlineDetector() override;

    void onEvent(const trace::Event &event) override;

    /** The report over everything fed so far. */
    const Report &report() const;

    /** The shared state machine (used by analyze() too). */
    class Engine;

  private:
    std::unique_ptr<Engine> engine_;
};

} // namespace hippo::pmcheck

#endif // HIPPO_PMCHECK_DETECTOR_HH
