#include "pmcheck/pmtest_adapter.hh"

#include <sstream>

#include "pmem/pm_pool.hh"
#include "support/strings.hh"

namespace hippo::pmcheck
{

namespace
{

/** Parse "<func>#<instrId>@<file>:<line>" into a single frame. */
bool
parseSite(const std::string &s, trace::StackFrame &out)
{
    size_t hash = s.find('#');
    size_t at = s.find('@', hash);
    if (hash == std::string::npos || at == std::string::npos)
        return false;
    out.function = s.substr(0, hash);
    uint64_t id;
    if (!parseUint(s.substr(hash + 1, at - hash - 1), id))
        return false;
    out.instrId = (uint32_t)id;
    std::string loc = s.substr(at + 1);
    size_t colon = loc.rfind(':');
    if (colon == std::string::npos)
        return false;
    out.file = loc.substr(0, colon);
    int64_t line;
    if (!parseInt(loc.substr(colon + 1), line))
        return false;
    out.line = (int)line;
    return !out.function.empty();
}

} // namespace

bool
readPmtestLog(const std::string &text, trace::Trace &out,
              std::string *error)
{
    out.clear();
    std::istringstream is(text);
    std::string line;
    int line_no = 0;
    bool started = false;

    auto fail = [&](const std::string &msg) {
        if (error)
            *error = format("pmtest line %d: %s", line_no,
                            msg.c_str());
        return false;
    };

    uint32_t pm_obj = out.internObject("pm:pmtest", true);

    while (std::getline(is, line)) {
        line_no++;
        std::string t(trim(line));
        if (t.empty() || startsWith(t, ";"))
            continue;
        auto words = splitWhitespace(t);
        const std::string &op = words[0];

        if (op == "PMTest_START") {
            started = true;
            continue;
        }
        if (op == "PMTest_END") {
            // PMTest validates outstanding updates when the checker
            // drains at the end: treat as a final durability point.
            trace::Event e;
            e.kind = trace::EventKind::DurPoint;
            e.symbol = "pmtest-end";
            e.stack = {{"pmtest", 0xFFFFFFFEu, "", 0}};
            out.append(std::move(e));
            continue;
        }
        if (!started)
            return fail("operation before PMTest_START");
        if (words.size() < 2)
            return fail("missing site: " + t);

        trace::StackFrame frame;
        if (!parseSite(words[1], frame))
            return fail("bad site: " + words[1]);

        trace::Event e;
        e.stack = {frame};
        e.objectId = pm_obj;
        e.isPm = true;

        if (op == "PMTest_STORE" || op == "PMTest_NTSTORE") {
            if (words.size() != 4)
                return fail(op + " wants site, addr, size");
            e.kind = trace::EventKind::Store;
            e.nonTemporal = op == "PMTest_NTSTORE";
            if (!parseUint(words[2], e.addr) ||
                !parseUint(words[3], e.size))
                return fail("bad addr/size");
        } else if (op == "PMTest_FLUSH") {
            if (words.size() < 3)
                return fail("PMTest_FLUSH wants site, addr");
            e.kind = trace::EventKind::Flush;
            if (!parseUint(words[2], e.addr))
                return fail("bad addr");
            e.size = pmem::cacheLineSize;
            e.sub = (uint8_t)pmem::FlushOp::Clwb;
            if (words.size() >= 4) {
                if (words[3] == "clflush")
                    e.sub = (uint8_t)pmem::FlushOp::Clflush;
                else if (words[3] == "clflushopt")
                    e.sub = (uint8_t)pmem::FlushOp::ClflushOpt;
                else if (words[3] != "clwb")
                    return fail("bad flush kind: " + words[3]);
            }
        } else if (op == "PMTest_FENCE") {
            e.kind = trace::EventKind::Fence;
        } else if (op == "PMTest_ASSERT") {
            e.kind = trace::EventKind::DurPoint;
            e.symbol = words.size() >= 3 ? words[2] : "assert";
        } else {
            return fail("unknown operation: " + op);
        }
        out.append(std::move(e));
    }
    if (!started)
        return fail("no PMTest_START marker");
    return true;
}

} // namespace hippo::pmcheck
