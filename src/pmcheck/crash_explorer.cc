#include "pmcheck/crash_explorer.hh"

#include <algorithm>

#include "pmem/pm_pool.hh"
#include "support/logging.hh"
#include "vm/vm.hh"

namespace hippo::pmcheck
{

namespace
{

/** Count durpoints executed by one clean run (via the trace). */
void
profileRun(ir::Module *m, const CrashExplorerConfig &cfg,
           ExplorationResult &out)
{
    pmem::PmPool pool(cfg.poolBytes);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vc.durPointAtExit = false;
    vm::Vm machine(m, &pool, vc);
    auto run = machine.run(cfg.entry, cfg.entryArgs);
    out.stepsInRun = run.steps;
    for (const auto &ev : machine.trace().events())
        out.durPointsInRun += ev.kind == trace::EventKind::DurPoint;

    pool.crash();
    vm::Vm recovery(m, &pool, {});
    out.cleanRunRecovered =
        recovery.run(cfg.recovery, cfg.recoveryArgs).returnValue;
}

uint64_t
crashAndRecover(ir::Module *m, const CrashExplorerConfig &cfg,
                int64_t dur_point, uint64_t step)
{
    pmem::PmPool pool(cfg.poolBytes);
    {
        vm::VmConfig vc;
        vc.crashAtDurPoint = dur_point;
        vc.crashAtStep = step;
        vm::Vm machine(m, &pool, vc);
        machine.run(cfg.entry, cfg.entryArgs);
    }
    pool.crash();
    vm::Vm recovery(m, &pool, {});
    return recovery.run(cfg.recovery, cfg.recoveryArgs).returnValue;
}

} // namespace

bool
ExplorationResult::durPointRecoveryNonDecreasing() const
{
    uint64_t prev = 0;
    for (const CrashOutcome &o : outcomes) {
        if (o.atStep)
            continue;
        if (o.recovered < prev)
            return false;
        prev = o.recovered;
    }
    return true;
}

uint64_t
ExplorationResult::minRecovered() const
{
    uint64_t v = ~0ULL;
    for (const CrashOutcome &o : outcomes)
        v = std::min(v, o.recovered);
    return outcomes.empty() ? 0 : v;
}

uint64_t
ExplorationResult::maxRecovered() const
{
    uint64_t v = 0;
    for (const CrashOutcome &o : outcomes)
        v = std::max(v, o.recovered);
    return v;
}

ExplorationResult
exploreCrashes(ir::Module *m, const CrashExplorerConfig &cfg)
{
    hippo_assert(!cfg.entry.empty() && !cfg.recovery.empty(),
                 "explorer needs entry and recovery");
    ExplorationResult out;
    profileRun(m, cfg, out);

    uint64_t budget = cfg.maxCrashes;
    if (cfg.exploreDurPoints) {
        for (uint64_t i = 0; i < out.durPointsInRun && budget;
             i++, budget--) {
            CrashOutcome o;
            o.atStep = false;
            o.crashPoint = i;
            o.recovered =
                crashAndRecover(m, cfg, (int64_t)i, 0);
            out.outcomes.push_back(o);
        }
    }
    if (cfg.stepStride) {
        for (uint64_t s = cfg.stepStride;
             s < out.stepsInRun && budget;
             s += cfg.stepStride, budget--) {
            CrashOutcome o;
            o.atStep = true;
            o.crashPoint = s;
            o.recovered = crashAndRecover(m, cfg, -1, s);
            out.outcomes.push_back(o);
        }
    }
    return out;
}

} // namespace hippo::pmcheck
