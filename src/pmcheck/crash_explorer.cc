#include "pmcheck/crash_explorer.hh"

#include <algorithm>
#include <map>
#include <set>

#include "pmem/pm_pool.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/thread_pool.hh"
#include "vm/vm.hh"

namespace hippo::pmcheck
{

namespace
{

/** How one planned crash point is materialized into a pool state. */
enum class ReplayMode
{
    Legacy, ///< full entry re-execution with crashAt* knobs
    Fork,   ///< fork the master-run snapshot (evictChance == 0)
    Log,    ///< replay the recorded pool-op log prefix (evict > 0)
};

/** One planned crash: where to pull the plug on the replay. */
struct PlannedCrash
{
    bool atStep = false;
    uint64_t crashPoint = 0;
};

/** splitmix64 finalizer. */
uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Pool RNG seed for the crash point at plan position @p k: a
 *  function of the plan, never of the worker. */
uint64_t
replaySeed(const CrashExplorerConfig &cfg, uint64_t k)
{
    return mix64(cfg.seed + (k + 1) * 0x9e3779b97f4a7c15ULL);
}

/** FaultPlan seed for plan position @p k — a different stream than
 *  the eviction seed so the two injections stay independent. */
uint64_t
faultSeed(const CrashExplorerConfig &cfg, uint64_t k)
{
    return mix64(cfg.faults.seed + (k + 1) * 0xda942042e4dd58b5ULL);
}

/** Everything the master execution captures for the replay phase. */
struct MasterState
{
    /** Pool snapshot per captured durpoint / per step-stride
     *  boundary (Fork mode). Durpoint captures are indexed through
     *  durSlot: within the crash budget every durpoint gets a slot,
     *  and priority-labeled durpoints are captured even beyond it
     *  (the plan moves them ahead of the truncation line). */
    std::vector<pmem::PmPool::Snapshot> durSnaps;
    std::vector<pmem::PmPool::Snapshot> stepSnaps;

    /** Op-log cursors at the same boundaries (Log mode). */
    std::vector<size_t> durLogPos;
    std::vector<size_t> stepLogPos;

    /** In-run step count at captured durpoint slots — what a legacy
     *  replay of that crash would have executed (steps_saved
     *  accounting). */
    std::vector<uint64_t> durSteps;

    /** Durpoint index -> capture slot in the three vectors above.
     *  The identity map when no priority labels are configured. */
    std::map<uint64_t, size_t> durSlot;

    /** Label of every durpoint in the run (no cap; plan input). */
    std::vector<std::string> durLabels;

    uint64_t snapshots = 0;   ///< snapshot() calls on the master pool
    uint64_t pagesCopied = 0; ///< COW clones charged to the master
};

/**
 * The single master execution: runs the entry program while counting
 * durpoints/steps (the profile the crash plan is built from) and
 * capturing per-crash-point pool snapshots or op-log cursors, then
 * crashes the pool and runs recovery once for cleanRunRecovered.
 * With @p mode == Legacy nothing is captured — this is exactly the
 * legacy engine's profile run. Returns the recovery run's steps.
 */
uint64_t
masterRun(ir::Module *m, const CrashExplorerConfig &cfg,
          ReplayMode mode, pmem::PmOpLog *log, ExplorationResult &out,
          MasterState &ms)
{
    pmem::PmPool pool(cfg.poolBytes, cfg.evictChance, cfg.seed);
    if (log)
        pool.setOpLog(log);

    vm::VmConfig vc;
    vc.engine = cfg.vmEngine;
    vc.durPointAtExit = false;
    uint64_t durpoints = 0;
    auto isPriority = [&](const std::string &label) {
        return std::find(cfg.priorityDurLabels.begin(),
                         cfg.priorityDurLabels.end(),
                         label) != cfg.priorityDurLabels.end();
    };
    vc.durPointProbe = [&](uint64_t n, uint64_t in_run,
                           const std::string &label) {
        durpoints++;
        ms.durLabels.push_back(label);
        if (mode == ReplayMode::Legacy || !cfg.exploreDurPoints)
            return;
        // Capture within the budget, plus every priority-labeled
        // durpoint beyond it: the plan pulls those ahead of the
        // truncation line, so their slots must exist (and any
        // non-priority entry surviving truncation provably has
        // index < maxCrashes).
        if (n >= cfg.maxCrashes && !isPriority(label))
            return;
        ms.durSlot[n] = ms.durSteps.size();
        ms.durSteps.push_back(in_run);
        if (mode == ReplayMode::Fork)
            ms.durSnaps.push_back(pool.snapshot());
        else
            ms.durLogPos.push_back(log->position());
    };
    if (cfg.stepStride && mode != ReplayMode::Legacy) {
        vc.stepProbeStride = cfg.stepStride;
        vc.stepProbe = [&](uint64_t) {
            if (mode == ReplayMode::Fork) {
                if (ms.stepSnaps.size() < cfg.maxCrashes)
                    ms.stepSnaps.push_back(pool.snapshot());
            } else {
                if (ms.stepLogPos.size() < cfg.maxCrashes)
                    ms.stepLogPos.push_back(log->position());
            }
        };
    }

    vm::Vm machine(m, &pool, vc);
    auto run = machine.run(cfg.entry, cfg.entryArgs);
    out.stepsInRun = run.steps;
    out.durPointsInRun = durpoints;

    // Recovery ops must not enter the log: replay cursors reference
    // the entry run only.
    pool.setOpLog(nullptr);
    pool.crash();
    // The clean run stays fault-free (it is the reference the torn
    // replays are compared against) but the watchdog still applies:
    // a recovery entry that diverges even on a clean crash must not
    // hang the exploration before the first replay.
    vm::VmConfig rvc;
    rvc.engine = cfg.vmEngine;
    if (cfg.stepBudget || cfg.heapBudget || cfg.timeBudgetMs) {
        rvc.sandbox = true;
        rvc.stepBudget = cfg.stepBudget;
        rvc.heapBudget = cfg.heapBudget;
        rvc.timeBudgetMs = cfg.timeBudgetMs;
    }
    vm::Vm recovery(m, &pool, rvc);
    auto rec = recovery.run(cfg.recovery, cfg.recoveryArgs);
    out.cleanRunRecovered = rec.ok() ? rec.returnValue : 0;

    ms.snapshots = pool.stats().snapshots;
    ms.pagesCopied = pool.stats().pagesCopied;
    return rec.steps;
}

/**
 * Enumerate the crash plan: durpoint crashes first — those at
 * priority-labeled durpoints (the static pre-filter) ahead of the
 * rest, each class in durpoint order — then every step-stride crash,
 * truncated to the budget. Serial and parallel execution both run
 * exactly this plan, in this order; with no priority labels the plan
 * is identical to the historical one.
 */
std::vector<PlannedCrash>
planCrashes(const CrashExplorerConfig &cfg,
            const ExplorationResult &profile, const MasterState &ms)
{
    std::vector<PlannedCrash> plan;
    if (cfg.exploreDurPoints) {
        std::set<uint64_t> priority;
        for (uint64_t i = 0;
             !cfg.priorityDurLabels.empty() &&
             i < profile.durPointsInRun && i < ms.durLabels.size();
             i++) {
            if (std::find(cfg.priorityDurLabels.begin(),
                          cfg.priorityDurLabels.end(),
                          ms.durLabels[i]) !=
                cfg.priorityDurLabels.end()) {
                priority.insert(i);
                plan.push_back({false, i});
            }
        }
        for (uint64_t i = 0; i < profile.durPointsInRun; i++)
            if (!priority.count(i))
                plan.push_back({false, i});
    }
    if (cfg.stepStride)
        for (uint64_t s = cfg.stepStride; s < profile.stepsInRun;
             s += cfg.stepStride)
            plan.push_back({true, s});
    if (plan.size() > cfg.maxCrashes)
        plan.resize(cfg.maxCrashes);
    return plan;
}

} // namespace

bool
ExplorationResult::durPointRecoveryNonDecreasing() const
{
    uint64_t prev = 0;
    for (const CrashOutcome &o : outcomes) {
        if (o.atStep || o.unverified)
            continue;
        if (o.recovered < prev)
            return false;
        prev = o.recovered;
    }
    return true;
}

uint64_t
ExplorationResult::minRecovered() const
{
    uint64_t v = ~0ULL;
    bool any = false;
    for (const CrashOutcome &o : outcomes) {
        if (o.unverified)
            continue;
        v = std::min(v, o.recovered);
        any = true;
    }
    return any ? v : 0;
}

uint64_t
ExplorationResult::maxRecovered() const
{
    uint64_t v = 0;
    for (const CrashOutcome &o : outcomes)
        if (!o.unverified)
            v = std::max(v, o.recovered);
    return v;
}

uint64_t
ExplorationResult::unverifiedCount() const
{
    uint64_t n = 0;
    for (const CrashOutcome &o : outcomes)
        n += o.unverified;
    return n;
}

ExplorationResult
exploreCrashes(ir::Module *m, const CrashExplorerConfig &cfg)
{
    hippo_assert(!cfg.entry.empty() && !cfg.recovery.empty(),
                 "explorer needs entry and recovery");
    ExplorationResult out;
    auto &reg = support::MetricsRegistry::global();
    reg.counter("explorer.runs").inc();

    ReplayMode mode = ReplayMode::Fork;
    if (cfg.engine == ExploreEngine::Legacy)
        mode = ReplayMode::Legacy;
    else if (cfg.evictChance > 0)
        mode = ReplayMode::Log;

    pmem::PmOpLog log(cfg.opLogMaxBytes);
    MasterState ms;
    uint64_t master_recovery_steps = 0;
    {
        support::ScopedTimer t(reg.timer("explorer.profile_ns"));
        master_recovery_steps =
            masterRun(m, cfg, mode,
                      mode == ReplayMode::Log ? &log : nullptr, out,
                      ms);
    }
    reg.counter("explorer.profile.durpoints").inc(out.durPointsInRun);
    reg.counter("explorer.profile.steps").inc(out.stepsInRun);
    reg.counter("explorer.recovery.steps").inc(master_recovery_steps);

    if (mode == ReplayMode::Log && log.overflowed()) {
        // The op log blew its byte budget: the recorded cursors are
        // unusable, so every crash point replays the legacy way.
        // Same result, just slower.
        reg.counter("explorer.oplog.overflows").inc();
        mode = ReplayMode::Legacy;
    }
    switch (mode) {
      case ReplayMode::Fork:
        reg.counter("explorer.engine.snapshot_fork").inc();
        break;
      case ReplayMode::Log:
        reg.counter("explorer.engine.oplog").inc();
        reg.counter("explorer.oplog.ops").inc(log.position());
        break;
      case ReplayMode::Legacy:
        reg.counter("explorer.engine.legacy").inc();
        break;
    }
    reg.counter("explorer.snapshot.count").inc(ms.snapshots);
    reg.counter("explorer.snapshot.pages_copied").inc(ms.pagesCopied);

    const std::vector<PlannedCrash> plan = planCrashes(cfg, out, ms);
    out.outcomes.resize(plan.size());

    uint64_t step_crashes = 0;
    for (const PlannedCrash &p : plan)
        step_crashes += p.atStep;
    reg.counter("explorer.crash_points.total").inc(plan.size());
    reg.counter("explorer.crash_points.durpoint")
        .inc(plan.size() - step_crashes);
    reg.counter("explorer.crash_points.step").inc(step_crashes);

    // Each plan entry recovers on a private Vm + PmPool and writes
    // only outcomes[k], so the merge is the plan order itself and
    // the result is byte-identical at every jobs setting and in
    // every replay mode. The metric instruments are shared but
    // order-independent, so the exported counts are deterministic
    // too; only the wall-clock timers vary run to run.
    auto replay = [&](uint64_t k) {
        support::ScopedTimer t(reg.timer("explorer.replay_ns"));
        const PlannedCrash &p = plan[k];
        CrashOutcome o;
        o.atStep = p.atStep;
        o.crashPoint = p.crashPoint;

        // The entry-run steps a legacy replay of this point executes
        // (a step crash stops at exactly crashPoint steps; a durpoint
        // crash stops inside the durpoint instruction, whose in-run
        // step the master recorded — in the fast modes only).
        uint64_t legacy_steps = 0;
        if (mode != ReplayMode::Legacy)
            legacy_steps = p.atStep
                               ? p.crashPoint
                               : ms.durSteps[ms.durSlot.at(
                                     p.crashPoint)];

        const bool faulting = cfg.faults.enabled();
        const bool guarded = faulting || cfg.stepBudget ||
                             cfg.heapBudget || cfg.timeBudgetMs;

        // The effective fault plan for this crash point: the
        // configured odds, reseeded by plan position (never by
        // worker), so torn states reproduce at every jobs setting.
        pmem::FaultPlan fp = cfg.faults;
        fp.seed = faultSeed(cfg, k);

        // Crash the materialized pool (tearing in-flight lines when
        // a fault plan is active) and run recovery, sandboxed under
        // the configured budgets divided by @p tighten.
        auto crashAndRecover = [&](pmem::PmPool &pool,
                                   uint64_t tighten) {
            if (faulting)
                pool.setFaultPlan(fp);
            pool.crash();
            if (faulting) {
                const pmem::PmPoolStats &ps = pool.stats();
                reg.counter("explorer.fault.crashes")
                    .inc(ps.faultedCrashes);
                reg.counter("explorer.fault.torn_lines")
                    .inc(ps.tornLines);
                reg.counter("explorer.fault.torn_chunks")
                    .inc(ps.tornChunks);
                reg.counter("explorer.fault.bitrot_flips")
                    .inc(ps.bitRotFlips);
            }
            vm::VmConfig vc;
            vc.engine = cfg.vmEngine;
            if (guarded) {
                vc.sandbox = true;
                vc.stepBudget = cfg.stepBudget / tighten;
                vc.heapBudget = cfg.heapBudget / tighten;
                vc.timeBudgetMs = cfg.timeBudgetMs / tighten;
            }
            vm::Vm recovery(m, &pool, vc);
            return recovery.run(cfg.recovery, cfg.recoveryArgs);
        };

        /** Legacy materialization: full entry re-execution with the
         *  crash knobs — rung two of the degradation ladder, and the
         *  Legacy engine's only rung. */
        auto legacyAttempt = [&](uint64_t tighten) {
            pmem::PmPool pool(cfg.poolBytes, cfg.evictChance,
                              replaySeed(cfg, k));
            {
                vm::VmConfig vc;
                vc.engine = cfg.vmEngine;
                vc.crashAtDurPoint =
                    p.atStep ? -1 : (int64_t)p.crashPoint;
                vc.crashAtStep = p.atStep ? p.crashPoint : 0;
                vm::Vm machine(m, &pool, vc);
                uint64_t steps =
                    machine.run(cfg.entry, cfg.entryArgs).steps;
                reg.counter("explorer.replay.steps_executed")
                    .inc(steps);
            }
            return crashAndRecover(pool, tighten);
        };

        vm::RunResult rec;
        switch (mode) {
          case ReplayMode::Legacy:
            rec = legacyAttempt(1);
            break;
          case ReplayMode::Fork: {
            const pmem::PmPool::Snapshot &snap =
                p.atStep
                    ? ms.stepSnaps[p.crashPoint / cfg.stepStride - 1]
                    : ms.durSnaps[ms.durSlot.at(p.crashPoint)];
            pmem::PmPool pool(snap);
            pool.resetStats();
            rec = crashAndRecover(pool, 1);
            reg.counter("explorer.snapshot.pages_copied")
                .inc(pool.stats().pagesCopied);
            reg.counter("explorer.replay.steps_saved")
                .inc(legacy_steps);
            break;
          }
          case ReplayMode::Log: {
            pmem::PmPool pool(cfg.poolBytes, cfg.evictChance,
                              replaySeed(cfg, k));
            size_t pos =
                p.atStep
                    ? ms.stepLogPos[p.crashPoint / cfg.stepStride - 1]
                    : ms.durLogPos[ms.durSlot.at(p.crashPoint)];
            log.replayTo(pool, pos);
            rec = crashAndRecover(pool, 1);
            reg.counter("explorer.replay.steps_saved")
                .inc(legacy_steps);
            break;
          }
        }

        // Degradation ladder: a recovery the watchdog cut short gets
        // one retry on the legacy engine with budgets tightened to
        // half (a genuinely diverging recovery fails it faster);
        // still no verdict -> the crash point is recorded as
        // unverified rather than aborting the exploration.
        if (!rec.ok()) {
            reg.counter("explorer.degraded.retries").inc();
            rec = legacyAttempt(2);
        }
        if (!rec.ok()) {
            o.unverified = true;
            rec.returnValue = 0;
            reg.counter("explorer.degraded.unverified").inc();
            reg.counter(std::string("explorer.degraded.") +
                        vm::execOutcomeName(rec.outcome))
                .inc();
        }

        o.recovered = rec.returnValue;
        reg.counter("explorer.recovery.steps").inc(rec.steps);
        reg.histogram("explorer.recovered").observe((double)o.recovered);
        out.outcomes[k] = o;
    };

    unsigned jobs = support::resolveJobs(cfg.jobs);
    jobs = (unsigned)std::min<uint64_t>(jobs, plan.size());
    if (jobs <= 1) {
        for (uint64_t k = 0; k < plan.size(); k++)
            replay(k);
    } else {
        support::ThreadPool pool(jobs);
        pool.parallelForEach(0, plan.size(), replay);
    }
    return out;
}

uint64_t
recoveryDigest(const ExplorationResult &res)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&](uint64_t v) {
        for (int i = 0; i < 8; i++) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    mix(res.cleanRunRecovered);
    for (const auto &o : res.outcomes) {
        mix(o.atStep);
        mix(o.crashPoint);
        mix(o.recovered);
        mix(o.unverified);
    }
    return h;
}

} // namespace hippo::pmcheck
