#include "pmcheck/crash_explorer.hh"

#include <algorithm>
#include <atomic>
#include <map>
#include <set>

#include "ir/basic_block.hh"
#include "ir/function.hh"
#include "ir/instruction.hh"
#include "ir/module.hh"
#include "pmem/pm_pool.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/thread_pool.hh"
#include "vm/vm.hh"

namespace hippo::pmcheck
{

namespace
{

/**
 * Deterministic substitute for a wall-clock recovery budget: when
 * the caller configured only `timeBudgetMs`, every recovery attempt
 * additionally runs under this step cap so the timeout verdict is a
 * pure function of the module, never of host speed (the wall clock
 * is demoted to a hang backstop). Far above any recovery in the
 * suite; a genuinely diverging recovery hits it deterministically.
 */
constexpr uint64_t wallClockRetryStepCap = 1ULL << 26;

/** Generous hang backstop for deterministic (re)tries: hit only by
 *  a pathological host or a genuine hang, never by a healthy run. */
uint64_t
backstopMs(const CrashExplorerConfig &cfg)
{
    return std::max<uint64_t>(cfg.timeBudgetMs * 64, 10000);
}

/** The recovery step cap (see wallClockRetryStepCap). */
uint64_t
effectiveStepBudget(const CrashExplorerConfig &cfg)
{
    if (cfg.stepBudget)
        return cfg.stepBudget;
    return cfg.timeBudgetMs ? wallClockRetryStepCap : 0;
}

/** Fold this run's wall-clock-retry count into the (uncomparable)
 *  explorer.wallclock.retries gauge. */
void
noteWallClockRetries(uint64_t n)
{
    if (!n)
        return;
    auto &g = support::MetricsRegistry::global().gauge(
        "explorer.wallclock.retries");
    g.set(g.value() + (double)n);
}

/** How one planned crash point is materialized into a pool state. */
enum class ReplayMode
{
    Legacy, ///< full entry re-execution with crashAt* knobs
    Fork,   ///< fork the master-run snapshot (evictChance == 0)
    Log,    ///< replay the recorded pool-op log prefix (evict > 0)
};

/** One planned crash: where to pull the plug on the replay. */
struct PlannedCrash
{
    bool atStep = false;
    uint64_t crashPoint = 0;
};

/** splitmix64 finalizer. */
uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Pool RNG seed for the crash point at plan position @p k: a
 *  function of the plan, never of the worker. */
uint64_t
replaySeed(const CrashExplorerConfig &cfg, uint64_t k)
{
    return mix64(cfg.seed + (k + 1) * 0x9e3779b97f4a7c15ULL);
}

/** FaultPlan seed for plan position @p k — a different stream than
 *  the eviction seed so the two injections stay independent. */
uint64_t
faultSeed(const CrashExplorerConfig &cfg, uint64_t k)
{
    return mix64(cfg.faults.seed + (k + 1) * 0xda942042e4dd58b5ULL);
}

/** Everything the master execution captures for the replay phase. */
struct MasterState
{
    /** Pool snapshot per captured durpoint / per step-stride
     *  boundary (Fork mode). Durpoint captures are indexed through
     *  durSlot: within the crash budget every durpoint gets a slot,
     *  and priority-labeled durpoints are captured even beyond it
     *  (the plan moves them ahead of the truncation line). */
    std::vector<pmem::PmPool::Snapshot> durSnaps;
    std::vector<pmem::PmPool::Snapshot> stepSnaps;

    /** Op-log cursors at the same boundaries (Log mode). */
    std::vector<size_t> durLogPos;
    std::vector<size_t> stepLogPos;

    /** In-run step count at captured durpoint slots — what a legacy
     *  replay of that crash would have executed (steps_saved
     *  accounting). */
    std::vector<uint64_t> durSteps;

    /** Durpoint index -> capture slot in the three vectors above.
     *  The identity map when no priority labels are configured. */
    std::map<uint64_t, size_t> durSlot;

    /** Label of every durpoint in the run (no cap; plan input). */
    std::vector<std::string> durLabels;

    uint64_t snapshots = 0;   ///< snapshot() calls on the master pool
    uint64_t pagesCopied = 0; ///< COW clones charged to the master
};

/**
 * The single master execution: runs the entry program while counting
 * durpoints/steps (the profile the crash plan is built from) and
 * capturing per-crash-point pool snapshots or op-log cursors, then
 * crashes the pool and runs recovery once for cleanRunRecovered.
 * With @p mode == Legacy nothing is captured — this is exactly the
 * legacy engine's profile run. Returns the recovery run's steps.
 */
uint64_t
masterRun(ir::Module *m, const CrashExplorerConfig &cfg,
          ReplayMode mode, pmem::PmOpLog *log, ExplorationResult &out,
          MasterState &ms)
{
    pmem::PmPool pool(cfg.poolBytes, cfg.evictChance, cfg.seed);
    if (log)
        pool.setOpLog(log);

    vm::VmConfig vc;
    vc.engine = cfg.vmEngine;
    vc.durPointAtExit = false;
    uint64_t durpoints = 0;
    auto isPriority = [&](const std::string &label) {
        return std::find(cfg.priorityDurLabels.begin(),
                         cfg.priorityDurLabels.end(),
                         label) != cfg.priorityDurLabels.end();
    };
    vc.durPointProbe = [&](uint64_t n, uint64_t in_run,
                           const std::string &label) {
        durpoints++;
        ms.durLabels.push_back(label);
        if (mode == ReplayMode::Legacy || !cfg.exploreDurPoints)
            return;
        // Capture within the budget, plus every priority-labeled
        // durpoint beyond it: the plan pulls those ahead of the
        // truncation line, so their slots must exist (and any
        // non-priority entry surviving truncation provably has
        // index < maxCrashes).
        if (n >= cfg.maxCrashes && !isPriority(label))
            return;
        ms.durSlot[n] = ms.durSteps.size();
        ms.durSteps.push_back(in_run);
        if (mode == ReplayMode::Fork)
            ms.durSnaps.push_back(pool.snapshot());
        else
            ms.durLogPos.push_back(log->position());
    };
    if (cfg.stepStride && mode != ReplayMode::Legacy) {
        vc.stepProbeStride = cfg.stepStride;
        vc.stepProbe = [&](uint64_t) {
            if (mode == ReplayMode::Fork) {
                if (ms.stepSnaps.size() < cfg.maxCrashes)
                    ms.stepSnaps.push_back(pool.snapshot());
            } else {
                if (ms.stepLogPos.size() < cfg.maxCrashes)
                    ms.stepLogPos.push_back(log->position());
            }
        };
    }

    vm::Vm machine(m, &pool, vc);
    auto run = machine.run(cfg.entry, cfg.entryArgs);
    out.stepsInRun = run.steps;
    out.durPointsInRun = durpoints;

    // Recovery ops must not enter the log: replay cursors reference
    // the entry run only.
    pool.setOpLog(nullptr);
    pool.crash();
    // A wall-clock verdict must not leak into cleanRunRecovered, so
    // keep a crash image around for the deterministic retry (only
    // when a clock budget exists; the snapshot itself is config-
    // deterministic).
    pmem::PmPool::Snapshot crash_image;
    if (cfg.timeBudgetMs)
        crash_image = pool.snapshot();
    // The clean run stays fault-free (it is the reference the torn
    // replays are compared against) but the watchdog still applies:
    // a recovery entry that diverges even on a clean crash must not
    // hang the exploration before the first replay.
    auto recover = [&](pmem::PmPool &rpool, bool deterministic) {
        vm::VmConfig rvc;
        rvc.engine = cfg.vmEngine;
        if (cfg.stepBudget || cfg.heapBudget || cfg.timeBudgetMs) {
            rvc.sandbox = true;
            rvc.stepBudget = effectiveStepBudget(cfg);
            rvc.heapBudget = cfg.heapBudget;
            rvc.timeBudgetMs =
                deterministic ? backstopMs(cfg) : cfg.timeBudgetMs;
        }
        vm::Vm recovery(m, &rpool, rvc);
        return recovery.run(cfg.recovery, cfg.recoveryArgs);
    };
    auto rec = recover(pool, false);
    if (!rec.ok() && rec.wallClockTimeout) {
        noteWallClockRetries(1);
        pmem::PmPool rpool(crash_image);
        rec = recover(rpool, true);
    }
    out.cleanRunRecovered = rec.ok() ? rec.returnValue : 0;

    ms.snapshots = pool.stats().snapshots;
    ms.pagesCopied = pool.stats().pagesCopied;
    return rec.steps;
}

/**
 * Enumerate the crash plan: durpoint crashes first — those at
 * priority-labeled durpoints (the static pre-filter) ahead of the
 * rest, each class in durpoint order — then every step-stride crash,
 * truncated to the budget. Serial and parallel execution both run
 * exactly this plan, in this order; with no priority labels the plan
 * is identical to the historical one.
 */
std::vector<PlannedCrash>
planCrashes(const CrashExplorerConfig &cfg,
            const ExplorationResult &profile, const MasterState &ms)
{
    std::vector<PlannedCrash> plan;
    if (cfg.exploreDurPoints) {
        std::set<uint64_t> priority;
        for (uint64_t i = 0;
             !cfg.priorityDurLabels.empty() &&
             i < profile.durPointsInRun && i < ms.durLabels.size();
             i++) {
            if (std::find(cfg.priorityDurLabels.begin(),
                          cfg.priorityDurLabels.end(),
                          ms.durLabels[i]) !=
                cfg.priorityDurLabels.end()) {
                priority.insert(i);
                plan.push_back({false, i});
            }
        }
        for (uint64_t i = 0; i < profile.durPointsInRun; i++)
            if (!priority.count(i))
                plan.push_back({false, i});
    }
    if (cfg.stepStride)
        for (uint64_t s = cfg.stepStride; s < profile.stepsInRun;
             s += cfg.stepStride)
            plan.push_back({true, s});
    if (plan.size() > cfg.maxCrashes)
        plan.resize(cfg.maxCrashes);
    return plan;
}

/** CrashOutcome::crashPoint sentinel for a degraded schedule plan
 *  (the watchdog cut the plan's entry run short; no pool image
 *  exists, so the single outcome is unverified by construction). */
constexpr uint64_t degradedPlanPoint = ~0ULL;

/** Saturating n-choose-k (0 when k > n, ~0 on overflow). */
uint64_t
chooseSat(uint64_t n, uint64_t k)
{
    if (k > n)
        return 0;
    uint64_t r = 1;
    for (uint64_t i = 0; i < k; i++) {
        uint64_t num = n - i;
        if (num && r > ~0ULL / num)
            return ~0ULL;
        r = r * num / (i + 1);
    }
    return r;
}

/** Saturating a + b. */
uint64_t
addSat(uint64_t a, uint64_t b)
{
    return a > ~0ULL - b ? ~0ULL : a + b;
}

/**
 * Bounded schedule enumeration: every preemption set of size 0 ..
 * @p bound over the baseline run's @p visible_ops scheduler-visible
 * ops, ordered by size then lexicographically ({}, {0}, {1}, ...,
 * {0,1}, {0,2}, ...), truncated to @p budget plans. Plan 0 is always
 * the empty (baseline) schedule. @p planned gets the untruncated
 * census (saturating) so callers can report coverage.
 */
std::vector<vm::SchedulePlan>
enumeratePlans(uint64_t visible_ops, uint32_t bound, uint64_t budget,
               uint64_t &planned)
{
    planned = 0;
    for (uint64_t sz = 0; sz <= bound; sz++)
        planned = addSat(planned, chooseSat(visible_ops, sz));

    std::vector<vm::SchedulePlan> plans;
    plans.push_back({0, {}});
    for (uint64_t sz = 1;
         sz <= bound && sz <= visible_ops && plans.size() < budget;
         sz++) {
        std::vector<uint64_t> c(sz);
        for (uint64_t i = 0; i < sz; i++)
            c[i] = i;
        while (plans.size() < budget) {
            plans.push_back({plans.size(), c});
            // Next lexicographic combination of [0, visible_ops).
            int64_t i = (int64_t)sz - 1;
            while (i >= 0 && c[i] == visible_ops - sz + i)
                i--;
            if (i < 0)
                break;
            c[i]++;
            for (uint64_t j = i + 1; j < sz; j++)
                c[j] = c[j - 1] + 1;
        }
    }
    return plans;
}

/** Entry-pool RNG seed for schedule plan @p k (plan 0 = cfg.seed,
 *  matching the single-schedule master run). */
uint64_t
planSeed(const CrashExplorerConfig &cfg, uint64_t k)
{
    return k ? mix64(cfg.seed + k * 0xd1342543de82ef95ULL) : cfg.seed;
}

/** FaultPlan seed for race fork @p r of plan @p k — per (plan, race)
 *  position, never per worker, so torn race states reproduce at
 *  every jobs setting. */
uint64_t
raceFaultSeed(const CrashExplorerConfig &cfg, uint64_t k, uint64_t r)
{
    return mix64(cfg.faults.seed +
                 mix64((k + 1) * 0xda942042e4dd58b5ULL +
                       (r + 1) * 0x9e3779b97f4a7c15ULL));
}

/**
 * Interleaving-bounded exploration for threaded modules (the
 * crash_explorer.hh "Interleaving-bounded exploration" contract):
 * run the baseline schedule once (profiling durpoints and
 * scheduler-visible ops, forking durpoint and race-point snapshots),
 * enumerate preemption plans up to the bound, execute each plan on a
 * private pool forking a snapshot at every cross-thread durability
 * race, and recover every fork through the same deterministic
 * degradation ladder as the single-schedule path. Outcomes merge
 * plan-major (plan 0 durpoints, plan 0 races, plan 1 races, ...), so
 * the result is byte-identical at every jobs setting, on both VM
 * engines, and per shard.
 */
ExplorationResult
exploreInterleavings(ir::Module *m, const CrashExplorerConfig &cfg)
{
    ExplorationResult out;
    auto &reg = support::MetricsRegistry::global();
    reg.counter("explorer.runs").inc();
    reg.counter("explorer.sched.runs").inc();
    reg.counter("explorer.engine.snapshot_fork").inc();

    const bool faulting = cfg.faults.enabled();
    const bool guarded = faulting || cfg.stepBudget ||
                         cfg.heapBudget || cfg.timeBudgetMs;

    std::atomic<uint64_t> wc_retries{0};

    // Recover one forked crash image into the prefilled outcome
    // @p o, with fault injection seeded by @p fseed and the same
    // wall-clock-immune degradation ladder as the single-schedule
    // replay path (rung two re-forks the snapshot — the fork IS the
    // exact pool state, so no legacy re-execution is needed).
    auto recoverSnap = [&](const pmem::PmPool::Snapshot &snap,
                           CrashOutcome o,
                           uint64_t fseed) -> CrashOutcome {
        support::ScopedTimer t(reg.timer("explorer.replay_ns"));
        pmem::FaultPlan fp = cfg.faults;
        fp.seed = fseed;
        auto attempt = [&](uint64_t tighten, bool deterministic,
                           bool count) {
            pmem::PmPool pool(snap);
            pool.resetStats();
            if (faulting)
                pool.setFaultPlan(fp);
            pool.crash();
            if (faulting && count) {
                const pmem::PmPoolStats &ps = pool.stats();
                reg.counter("explorer.fault.crashes")
                    .inc(ps.faultedCrashes);
                reg.counter("explorer.fault.torn_lines")
                    .inc(ps.tornLines);
                reg.counter("explorer.fault.torn_chunks")
                    .inc(ps.tornChunks);
                reg.counter("explorer.fault.bitrot_flips")
                    .inc(ps.bitRotFlips);
            }
            vm::VmConfig vc;
            vc.engine = cfg.vmEngine;
            if (guarded) {
                vc.sandbox = true;
                vc.stepBudget = effectiveStepBudget(cfg) / tighten;
                vc.heapBudget = cfg.heapBudget / tighten;
                vc.timeBudgetMs = deterministic
                                      ? backstopMs(cfg)
                                      : cfg.timeBudgetMs / tighten;
            }
            vm::Vm recovery(m, &pool, vc);
            auto rec = recovery.run(cfg.recovery, cfg.recoveryArgs);
            if (count)
                reg.counter("explorer.snapshot.pages_copied")
                    .inc(pool.stats().pagesCopied);
            return rec;
        };
        vm::RunResult rec = attempt(1, false, true);
        if (!rec.ok() && rec.wallClockTimeout) {
            wc_retries.fetch_add(1, std::memory_order_relaxed);
            rec = attempt(1, true, false);
        }
        if (!rec.ok()) {
            reg.counter("explorer.degraded.retries").inc();
            rec = attempt(2, true, true);
        }
        if (!rec.ok()) {
            o.unverified = true;
            rec.returnValue = 0;
            reg.counter("explorer.degraded.unverified").inc();
            reg.counter(std::string("explorer.degraded.") +
                        vm::execOutcomeName(rec.outcome))
                .inc();
        }
        o.recovered = rec.returnValue;
        if (rec.ok() || !rec.wallClockTimeout)
            reg.counter("explorer.recovery.steps").inc(rec.steps);
        reg.histogram("explorer.recovered").observe((double)o.recovered);
        return o;
    };

    // ---- Plan 0: the baseline schedule, run like the master run of
    // the single-schedule path — profile durpoints/steps/visible
    // ops, fork a snapshot at every budgeted durpoint and race
    // point, then crash and recover cleanly for cleanRunRecovered.
    std::vector<pmem::PmPool::Snapshot> durSnaps;
    std::vector<pmem::PmPool::Snapshot> raceSnaps0;
    uint64_t races0 = 0;
    vm::RunResult run0;
    uint64_t baseline_snapshots = 0;
    {
        support::ScopedTimer t(reg.timer("explorer.profile_ns"));
        pmem::PmPool pool(cfg.poolBytes, cfg.evictChance,
                          planSeed(cfg, 0));
        vm::SchedulePlan plan0;
        vm::VmConfig vc;
        vc.engine = cfg.vmEngine;
        vc.durPointAtExit = false;
        vc.schedule = &plan0;
        uint64_t durpoints = 0;
        vc.durPointProbe = [&](uint64_t n, uint64_t,
                               const std::string &) {
            durpoints++;
            if (cfg.exploreDurPoints && n < cfg.maxCrashes)
                durSnaps.push_back(pool.snapshot());
        };
        vc.racePointProbe = [&](uint64_t r, uint64_t, uint32_t,
                                uint64_t) {
            races0++;
            if (r < cfg.maxRaceCrashes)
                raceSnaps0.push_back(pool.snapshot());
        };
        vm::Vm machine(m, &pool, vc);
        run0 = machine.run(cfg.entry, cfg.entryArgs);
        out.stepsInRun = run0.steps;
        out.durPointsInRun = durpoints;
        out.visibleOpsInRun = run0.visibleOps;

        pool.crash();
        pmem::PmPool::Snapshot crash_image;
        if (cfg.timeBudgetMs)
            crash_image = pool.snapshot();
        auto recover = [&](pmem::PmPool &rpool, bool deterministic) {
            vm::VmConfig rvc;
            rvc.engine = cfg.vmEngine;
            if (cfg.stepBudget || cfg.heapBudget ||
                cfg.timeBudgetMs) {
                rvc.sandbox = true;
                rvc.stepBudget = effectiveStepBudget(cfg);
                rvc.heapBudget = cfg.heapBudget;
                rvc.timeBudgetMs = deterministic ? backstopMs(cfg)
                                                 : cfg.timeBudgetMs;
            }
            vm::Vm recovery(m, &rpool, rvc);
            return recovery.run(cfg.recovery, cfg.recoveryArgs);
        };
        auto rec = recover(pool, false);
        if (!rec.ok() && rec.wallClockTimeout) {
            wc_retries.fetch_add(1, std::memory_order_relaxed);
            pmem::PmPool rpool(crash_image);
            rec = recover(rpool, true);
        }
        out.cleanRunRecovered = rec.ok() ? rec.returnValue : 0;
        reg.counter("explorer.recovery.steps").inc(rec.steps);
        baseline_snapshots = pool.stats().snapshots;
    }
    reg.counter("explorer.profile.durpoints").inc(out.durPointsInRun);
    reg.counter("explorer.profile.steps").inc(out.stepsInRun);
    reg.counter("explorer.snapshot.count").inc(baseline_snapshots);

    // ---- Enumerate the bounded schedule space from the baseline
    // run's visible-op census; the budget always keeps plan 0.
    uint64_t planned = 0;
    const std::vector<vm::SchedulePlan> plans = enumeratePlans(
        out.visibleOpsInRun, cfg.preemptBound,
        std::max<uint64_t>(cfg.schedules, 1), planned);
    out.schedulesPlanned = planned;
    out.schedulesExecuted = plans.size();
    reg.counter("explorer.sched.planned")
        .inc(std::min<uint64_t>(planned, 1ULL << 32));
    reg.counter("explorer.sched.executed").inc(plans.size());

    // A plan's entry run is sandboxed under a step budget derived
    // from the baseline run (a forced preemption can turn a benign
    // acquire-spin into livelock): generous enough for any fair
    // schedule of the same work, deterministic on every host. The
    // wall clock is backstop-only here for the same reason as in
    // recovery.
    const uint64_t plan_step_budget = run0.steps * 4 + 65536;

    // ---- Execute plans. Each plan runs on a private pool and
    // writes only per_plan[k]; the merge below is plan-major, so
    // order — hence the digest — is independent of jobs.
    std::vector<std::vector<CrashOutcome>> per_plan(plans.size());
    std::atomic<uint64_t> races_total{races0};
    std::atomic<uint64_t> race_crashes{0};
    std::atomic<uint64_t> visible_total{run0.visibleOps};
    std::atomic<uint64_t> degraded{0};

    // Plan 0's outcomes come from the baseline captures.
    {
        std::vector<CrashOutcome> &v = per_plan[0];
        for (uint64_t i = 0; i < durSnaps.size(); i++) {
            CrashOutcome o;
            o.crashPoint = i;
            v.push_back(recoverSnap(durSnaps[i], o,
                                    faultSeed(cfg, i)));
        }
        for (uint64_t r = 0; r < raceSnaps0.size(); r++) {
            CrashOutcome o;
            o.atRace = true;
            o.scheduleId = 0;
            o.crashPoint = r;
            v.push_back(recoverSnap(raceSnaps0[r], o,
                                    raceFaultSeed(cfg, 0, r)));
        }
        race_crashes.fetch_add(raceSnaps0.size(),
                               std::memory_order_relaxed);
    }

    auto runPlan = [&](uint64_t k) {
        pmem::PmPool pool(cfg.poolBytes, cfg.evictChance,
                          planSeed(cfg, k));
        std::vector<pmem::PmPool::Snapshot> raceSnaps;
        uint64_t races = 0;
        vm::VmConfig vc;
        vc.engine = cfg.vmEngine;
        vc.durPointAtExit = false;
        vc.schedule = &plans[k];
        vc.racePointProbe = [&](uint64_t r, uint64_t, uint32_t,
                                uint64_t) {
            races++;
            if (r < cfg.maxRaceCrashes)
                raceSnaps.push_back(pool.snapshot());
        };
        vc.sandbox = true;
        vc.stepBudget = plan_step_budget;
        vc.timeBudgetMs = cfg.timeBudgetMs ? backstopMs(cfg) : 0;
        vm::Vm machine(m, &pool, vc);
        auto run = machine.run(cfg.entry, cfg.entryArgs);
        if (!run.ok()) {
            // Schedule-budget exhaustion (livelock under forced
            // preemption, deadlock the plan provoked, ...) degrades
            // to one unverified outcome — never a crash.
            degraded.fetch_add(1, std::memory_order_relaxed);
            CrashOutcome o;
            o.atRace = true;
            o.scheduleId = k;
            o.crashPoint = degradedPlanPoint;
            o.unverified = true;
            per_plan[k] = {o};
            return;
        }
        races_total.fetch_add(races, std::memory_order_relaxed);
        visible_total.fetch_add(run.visibleOps,
                                std::memory_order_relaxed);
        race_crashes.fetch_add(raceSnaps.size(),
                               std::memory_order_relaxed);
        std::vector<CrashOutcome> v;
        for (uint64_t r = 0; r < raceSnaps.size(); r++) {
            CrashOutcome o;
            o.atRace = true;
            o.scheduleId = k;
            o.crashPoint = r;
            v.push_back(recoverSnap(raceSnaps[r], o,
                                    raceFaultSeed(cfg, k, r)));
        }
        per_plan[k] = std::move(v);
    };

    unsigned jobs = support::resolveJobs(cfg.jobs);
    jobs = (unsigned)std::min<uint64_t>(jobs, plans.size());
    if (jobs <= 1 || plans.size() <= 1) {
        for (uint64_t k = 1; k < plans.size(); k++)
            runPlan(k);
    } else {
        support::ThreadPool pool(jobs);
        pool.parallelForEach(1, plans.size(), runPlan);
    }

    out.schedulesDegraded = degraded.load(std::memory_order_relaxed);
    out.racesObserved = races_total.load(std::memory_order_relaxed);
    reg.counter("explorer.sched.degraded").inc(out.schedulesDegraded);
    reg.counter("explorer.sched.races").inc(out.racesObserved);
    reg.counter("explorer.sched.race_crashes")
        .inc(race_crashes.load(std::memory_order_relaxed));
    reg.counter("explorer.sched.visible_ops")
        .inc(visible_total.load(std::memory_order_relaxed));

    for (auto &v : per_plan)
        for (CrashOutcome &o : v)
            out.outcomes.push_back(o);
    reg.counter("explorer.crash_points.total").inc(out.outcomes.size());
    reg.counter("explorer.crash_points.durpoint").inc(durSnaps.size());

    noteWallClockRetries(wc_retries.load(std::memory_order_relaxed));
    return out;
}

} // namespace

bool
moduleIsThreaded(const ir::Module &m)
{
    for (const auto &f : m.functions())
        for (const auto &bb : f->blocks())
            for (const auto &in : *bb)
                switch (in->op()) {
                  case ir::Opcode::ThreadSpawn:
                  case ir::Opcode::ThreadJoin:
                  case ir::Opcode::AtomicLoad:
                  case ir::Opcode::AtomicStore:
                  case ir::Opcode::AtomicRmw:
                    return true;
                  default:
                    break;
                }
    return false;
}

uint64_t
ExplorationResult::raceCrashCount() const
{
    uint64_t n = 0;
    for (const CrashOutcome &o : outcomes)
        n += o.atRace && o.crashPoint != degradedPlanPoint;
    return n;
}

bool
ExplorationResult::durPointRecoveryNonDecreasing() const
{
    uint64_t prev = 0;
    for (const CrashOutcome &o : outcomes) {
        if (o.atStep || o.atRace || o.unverified)
            continue;
        if (o.recovered < prev)
            return false;
        prev = o.recovered;
    }
    return true;
}

uint64_t
ExplorationResult::minRecovered() const
{
    uint64_t v = ~0ULL;
    bool any = false;
    for (const CrashOutcome &o : outcomes) {
        if (o.unverified)
            continue;
        v = std::min(v, o.recovered);
        any = true;
    }
    return any ? v : 0;
}

uint64_t
ExplorationResult::maxRecovered() const
{
    uint64_t v = 0;
    for (const CrashOutcome &o : outcomes)
        if (!o.unverified)
            v = std::max(v, o.recovered);
    return v;
}

uint64_t
ExplorationResult::unverifiedCount() const
{
    uint64_t n = 0;
    for (const CrashOutcome &o : outcomes)
        n += o.unverified;
    return n;
}

ExplorationResult
exploreCrashes(ir::Module *m, const CrashExplorerConfig &cfg)
{
    hippo_assert(!cfg.entry.empty() && !cfg.recovery.empty(),
                 "explorer needs entry and recovery");
    if (moduleIsThreaded(*m))
        return exploreInterleavings(m, cfg);
    ExplorationResult out;
    auto &reg = support::MetricsRegistry::global();
    reg.counter("explorer.runs").inc();

    ReplayMode mode = ReplayMode::Fork;
    if (cfg.engine == ExploreEngine::Legacy)
        mode = ReplayMode::Legacy;
    else if (cfg.evictChance > 0)
        mode = ReplayMode::Log;

    pmem::PmOpLog log(cfg.opLogMaxBytes);
    MasterState ms;
    uint64_t master_recovery_steps = 0;
    {
        support::ScopedTimer t(reg.timer("explorer.profile_ns"));
        master_recovery_steps =
            masterRun(m, cfg, mode,
                      mode == ReplayMode::Log ? &log : nullptr, out,
                      ms);
    }
    reg.counter("explorer.profile.durpoints").inc(out.durPointsInRun);
    reg.counter("explorer.profile.steps").inc(out.stepsInRun);
    reg.counter("explorer.recovery.steps").inc(master_recovery_steps);

    if (mode == ReplayMode::Log && log.overflowed()) {
        // The op log blew its byte budget: the recorded cursors are
        // unusable, so every crash point replays the legacy way.
        // Same result, just slower.
        reg.counter("explorer.oplog.overflows").inc();
        mode = ReplayMode::Legacy;
    }
    switch (mode) {
      case ReplayMode::Fork:
        reg.counter("explorer.engine.snapshot_fork").inc();
        break;
      case ReplayMode::Log:
        reg.counter("explorer.engine.oplog").inc();
        reg.counter("explorer.oplog.ops").inc(log.position());
        break;
      case ReplayMode::Legacy:
        reg.counter("explorer.engine.legacy").inc();
        break;
    }
    reg.counter("explorer.snapshot.count").inc(ms.snapshots);
    reg.counter("explorer.snapshot.pages_copied").inc(ms.pagesCopied);

    const std::vector<PlannedCrash> plan = planCrashes(cfg, out, ms);
    out.outcomes.resize(plan.size());

    uint64_t step_crashes = 0;
    for (const PlannedCrash &p : plan)
        step_crashes += p.atStep;
    reg.counter("explorer.crash_points.total").inc(plan.size());
    reg.counter("explorer.crash_points.durpoint")
        .inc(plan.size() - step_crashes);
    reg.counter("explorer.crash_points.step").inc(step_crashes);

    // Each plan entry recovers on a private Vm + PmPool and writes
    // only outcomes[k], so the merge is the plan order itself and
    // the result is byte-identical at every jobs setting and in
    // every replay mode. The metric instruments are shared but
    // order-independent, so the exported counts are deterministic
    // too; only the wall-clock timers (and the wallclock.retries
    // gauge) vary run to run: attempts triggered by the wall clock
    // never touch a comparable counter.
    std::atomic<uint64_t> wc_retries{0};
    auto replay = [&](uint64_t k) {
        support::ScopedTimer t(reg.timer("explorer.replay_ns"));
        const PlannedCrash &p = plan[k];
        CrashOutcome o;
        o.atStep = p.atStep;
        o.crashPoint = p.crashPoint;

        // The entry-run steps a legacy replay of this point executes
        // (a step crash stops at exactly crashPoint steps; a durpoint
        // crash stops inside the durpoint instruction, whose in-run
        // step the master recorded — in the fast modes only).
        uint64_t legacy_steps = 0;
        if (mode != ReplayMode::Legacy)
            legacy_steps = p.atStep
                               ? p.crashPoint
                               : ms.durSteps[ms.durSlot.at(
                                     p.crashPoint)];

        const bool faulting = cfg.faults.enabled();
        const bool guarded = faulting || cfg.stepBudget ||
                             cfg.heapBudget || cfg.timeBudgetMs;

        // The effective fault plan for this crash point: the
        // configured odds, reseeded by plan position (never by
        // worker), so torn states reproduce at every jobs setting.
        pmem::FaultPlan fp = cfg.faults;
        fp.seed = faultSeed(cfg, k);

        // Crash the materialized pool (tearing in-flight lines when
        // a fault plan is active) and run recovery, sandboxed under
        // the configured budgets divided by @p tighten. With
        // @p deterministic the wall-clock budget is swapped for the
        // hang backstop (the step cap decides); with !count no
        // comparable counter is touched (wall-clock retries).
        auto crashAndRecover = [&](pmem::PmPool &pool,
                                   uint64_t tighten,
                                   bool deterministic, bool count) {
            if (faulting)
                pool.setFaultPlan(fp);
            pool.crash();
            if (faulting && count) {
                const pmem::PmPoolStats &ps = pool.stats();
                reg.counter("explorer.fault.crashes")
                    .inc(ps.faultedCrashes);
                reg.counter("explorer.fault.torn_lines")
                    .inc(ps.tornLines);
                reg.counter("explorer.fault.torn_chunks")
                    .inc(ps.tornChunks);
                reg.counter("explorer.fault.bitrot_flips")
                    .inc(ps.bitRotFlips);
            }
            vm::VmConfig vc;
            vc.engine = cfg.vmEngine;
            if (guarded) {
                vc.sandbox = true;
                vc.stepBudget = effectiveStepBudget(cfg) / tighten;
                vc.heapBudget = cfg.heapBudget / tighten;
                vc.timeBudgetMs = deterministic
                                      ? backstopMs(cfg)
                                      : cfg.timeBudgetMs / tighten;
            }
            vm::Vm recovery(m, &pool, vc);
            return recovery.run(cfg.recovery, cfg.recoveryArgs);
        };

        /** Legacy materialization: full entry re-execution with the
         *  crash knobs — rung two of the degradation ladder, and the
         *  Legacy engine's only rung. */
        auto legacyAttempt = [&](uint64_t tighten,
                                 bool deterministic, bool count) {
            pmem::PmPool pool(cfg.poolBytes, cfg.evictChance,
                              replaySeed(cfg, k));
            {
                vm::VmConfig vc;
                vc.engine = cfg.vmEngine;
                vc.crashAtDurPoint =
                    p.atStep ? -1 : (int64_t)p.crashPoint;
                vc.crashAtStep = p.atStep ? p.crashPoint : 0;
                vm::Vm machine(m, &pool, vc);
                uint64_t steps =
                    machine.run(cfg.entry, cfg.entryArgs).steps;
                if (count)
                    reg.counter("explorer.replay.steps_executed")
                        .inc(steps);
            }
            return crashAndRecover(pool, tighten, deterministic,
                                   count);
        };

        /** Materialize this crash point's pool the mode's way and
         *  run one recovery attempt. */
        auto attempt = [&](uint64_t tighten, bool deterministic,
                           bool count) -> vm::RunResult {
            switch (mode) {
              case ReplayMode::Legacy:
                return legacyAttempt(tighten, deterministic, count);
              case ReplayMode::Fork: {
                const pmem::PmPool::Snapshot &snap =
                    p.atStep ? ms.stepSnaps[p.crashPoint /
                                                cfg.stepStride -
                                            1]
                             : ms.durSnaps[ms.durSlot.at(
                                   p.crashPoint)];
                pmem::PmPool pool(snap);
                pool.resetStats();
                auto rec = crashAndRecover(pool, tighten,
                                           deterministic, count);
                if (count) {
                    reg.counter("explorer.snapshot.pages_copied")
                        .inc(pool.stats().pagesCopied);
                    reg.counter("explorer.replay.steps_saved")
                        .inc(legacy_steps);
                }
                return rec;
              }
              case ReplayMode::Log: {
                pmem::PmPool pool(cfg.poolBytes, cfg.evictChance,
                                  replaySeed(cfg, k));
                size_t pos =
                    p.atStep ? ms.stepLogPos[p.crashPoint /
                                                 cfg.stepStride -
                                             1]
                             : ms.durLogPos[ms.durSlot.at(
                                   p.crashPoint)];
                log.replayTo(pool, pos);
                auto rec = crashAndRecover(pool, tighten,
                                           deterministic, count);
                if (count)
                    reg.counter("explorer.replay.steps_saved")
                        .inc(legacy_steps);
                return rec;
              }
            }
            __builtin_unreachable();
        };

        vm::RunResult rec = attempt(1, false, true);

        // A wall-clock timeout is a host verdict, not a module
        // verdict: replay the same crash point under the
        // deterministic step cap before letting the ladder see it.
        if (!rec.ok() && rec.wallClockTimeout) {
            wc_retries.fetch_add(1, std::memory_order_relaxed);
            rec = attempt(1, true, false);
        }

        // Degradation ladder: a recovery the watchdog cut short gets
        // one retry on the legacy engine with budgets tightened to
        // half (a genuinely diverging recovery fails it faster);
        // still no verdict -> the crash point is recorded as
        // unverified rather than aborting the exploration. Both
        // rungs are now deterministic, so the comparable degraded
        // counters are too.
        if (!rec.ok()) {
            reg.counter("explorer.degraded.retries").inc();
            rec = legacyAttempt(2, true, true);
        }
        if (!rec.ok()) {
            o.unverified = true;
            rec.returnValue = 0;
            reg.counter("explorer.degraded.unverified").inc();
            reg.counter(std::string("explorer.degraded.") +
                        vm::execOutcomeName(rec.outcome))
                .inc();
        }

        o.recovered = rec.returnValue;
        // Steps from a backstop-cut run (pathological host) stay out
        // of the comparable aggregate.
        if (rec.ok() || !rec.wallClockTimeout)
            reg.counter("explorer.recovery.steps").inc(rec.steps);
        reg.histogram("explorer.recovered").observe((double)o.recovered);
        out.outcomes[k] = o;
    };

    unsigned jobs = support::resolveJobs(cfg.jobs);
    jobs = (unsigned)std::min<uint64_t>(jobs, plan.size());
    if (jobs <= 1) {
        for (uint64_t k = 0; k < plan.size(); k++)
            replay(k);
    } else {
        support::ThreadPool pool(jobs);
        pool.parallelForEach(0, plan.size(), replay);
    }
    noteWallClockRetries(
        wc_retries.load(std::memory_order_relaxed));
    return out;
}

uint64_t
recoveryDigest(const ExplorationResult &res)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&](uint64_t v) {
        for (int i = 0; i < 8; i++) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    mix(res.cleanRunRecovered);
    for (const auto &o : res.outcomes) {
        mix(o.atStep);
        mix(o.crashPoint);
        mix(o.atRace);
        mix(o.scheduleId);
        mix(o.recovered);
        mix(o.unverified);
    }
    return h;
}

} // namespace hippo::pmcheck
