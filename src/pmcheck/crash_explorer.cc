#include "pmcheck/crash_explorer.hh"

#include <algorithm>

#include "pmem/pm_pool.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/thread_pool.hh"
#include "vm/vm.hh"

namespace hippo::pmcheck
{

namespace
{

/** Count durpoints executed by one clean run (via the trace). */
void
profileRun(ir::Module *m, const CrashExplorerConfig &cfg,
           ExplorationResult &out)
{
    pmem::PmPool pool(cfg.poolBytes, cfg.evictChance, cfg.seed);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vc.durPointAtExit = false;
    vm::Vm machine(m, &pool, vc);
    auto run = machine.run(cfg.entry, cfg.entryArgs);
    out.stepsInRun = run.steps;
    for (const auto &ev : machine.trace().events())
        out.durPointsInRun += ev.kind == trace::EventKind::DurPoint;

    pool.crash();
    vm::Vm recovery(m, &pool, {});
    out.cleanRunRecovered =
        recovery.run(cfg.recovery, cfg.recoveryArgs).returnValue;
}

/** Pool RNG seed for the crash point at plan position @p k: a
 *  function of the plan, never of the worker (splitmix64 step). */
uint64_t
replaySeed(const CrashExplorerConfig &cfg, uint64_t k)
{
    uint64_t z = cfg.seed + (k + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
crashAndRecover(ir::Module *m, const CrashExplorerConfig &cfg,
                int64_t dur_point, uint64_t step, uint64_t pool_seed)
{
    pmem::PmPool pool(cfg.poolBytes, cfg.evictChance, pool_seed);
    {
        vm::VmConfig vc;
        vc.crashAtDurPoint = dur_point;
        vc.crashAtStep = step;
        vm::Vm machine(m, &pool, vc);
        machine.run(cfg.entry, cfg.entryArgs);
    }
    pool.crash();
    vm::Vm recovery(m, &pool, {});
    return recovery.run(cfg.recovery, cfg.recoveryArgs).returnValue;
}

/** One planned crash: where to pull the plug on the replay. */
struct PlannedCrash
{
    bool atStep = false;
    uint64_t crashPoint = 0;
};

/**
 * Enumerate the crash plan: every durpoint crash first, then every
 * step-stride crash, truncated to the budget. Serial and parallel
 * execution both run exactly this plan, in this order.
 */
std::vector<PlannedCrash>
planCrashes(const CrashExplorerConfig &cfg,
            const ExplorationResult &profile)
{
    std::vector<PlannedCrash> plan;
    if (cfg.exploreDurPoints)
        for (uint64_t i = 0; i < profile.durPointsInRun; i++)
            plan.push_back({false, i});
    if (cfg.stepStride)
        for (uint64_t s = cfg.stepStride; s < profile.stepsInRun;
             s += cfg.stepStride)
            plan.push_back({true, s});
    if (plan.size() > cfg.maxCrashes)
        plan.resize(cfg.maxCrashes);
    return plan;
}

} // namespace

bool
ExplorationResult::durPointRecoveryNonDecreasing() const
{
    uint64_t prev = 0;
    for (const CrashOutcome &o : outcomes) {
        if (o.atStep)
            continue;
        if (o.recovered < prev)
            return false;
        prev = o.recovered;
    }
    return true;
}

uint64_t
ExplorationResult::minRecovered() const
{
    uint64_t v = ~0ULL;
    for (const CrashOutcome &o : outcomes)
        v = std::min(v, o.recovered);
    return outcomes.empty() ? 0 : v;
}

uint64_t
ExplorationResult::maxRecovered() const
{
    uint64_t v = 0;
    for (const CrashOutcome &o : outcomes)
        v = std::max(v, o.recovered);
    return v;
}

ExplorationResult
exploreCrashes(ir::Module *m, const CrashExplorerConfig &cfg)
{
    hippo_assert(!cfg.entry.empty() && !cfg.recovery.empty(),
                 "explorer needs entry and recovery");
    ExplorationResult out;
    auto &reg = support::MetricsRegistry::global();
    reg.counter("explorer.runs").inc();
    {
        support::ScopedTimer t(reg.timer("explorer.profile_ns"));
        profileRun(m, cfg, out);
    }
    reg.counter("explorer.profile.durpoints")
        .inc(out.durPointsInRun);
    reg.counter("explorer.profile.steps").inc(out.stepsInRun);

    const std::vector<PlannedCrash> plan = planCrashes(cfg, out);
    out.outcomes.resize(plan.size());

    uint64_t step_crashes = 0;
    for (const PlannedCrash &p : plan)
        step_crashes += p.atStep;
    reg.counter("explorer.crash_points.total").inc(plan.size());
    reg.counter("explorer.crash_points.durpoint")
        .inc(plan.size() - step_crashes);
    reg.counter("explorer.crash_points.step").inc(step_crashes);

    // Each plan entry replays on a private Vm + PmPool and writes
    // only outcomes[k], so the merge is the plan order itself and
    // the result is byte-identical at every jobs setting. The
    // metric instruments are shared but order-independent, so the
    // exported counts are deterministic too; only the wall-clock
    // replay_ns timer varies run to run.
    auto replay = [&](uint64_t k) {
        support::ScopedTimer t(reg.timer("explorer.replay_ns"));
        const PlannedCrash &p = plan[k];
        CrashOutcome o;
        o.atStep = p.atStep;
        o.crashPoint = p.crashPoint;
        o.recovered = crashAndRecover(
            m, cfg, p.atStep ? -1 : (int64_t)p.crashPoint,
            p.atStep ? p.crashPoint : 0, replaySeed(cfg, k));
        reg.histogram("explorer.recovered").observe((double)o.recovered);
        out.outcomes[k] = o;
    };

    unsigned jobs = support::resolveJobs(cfg.jobs);
    jobs = (unsigned)std::min<uint64_t>(jobs, plan.size());
    if (jobs <= 1) {
        for (uint64_t k = 0; k < plan.size(); k++)
            replay(k);
    } else {
        support::ThreadPool pool(jobs);
        pool.parallelForEach(0, plan.size(), replay);
    }
    return out;
}

} // namespace hippo::pmcheck
