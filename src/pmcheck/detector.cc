#include "pmcheck/detector.hh"

#include <map>
#include <sstream>

#include "ir/instruction.hh"
#include "pmem/pm_pool.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/strings.hh"

namespace hippo::pmcheck
{

const char *
bugKindName(BugKind k)
{
    switch (k) {
      case BugKind::MissingFlush: return "missing-flush";
      case BugKind::MissingFence: return "missing-fence";
      case BugKind::MissingFlushFence: return "missing-flush&fence";
      case BugKind::CrossThread: return "cross-thread";
    }
    return "?";
}

namespace
{

BugKind
bugKindFromName(const std::string &s, bool &ok)
{
    ok = true;
    if (s == "missing-flush") return BugKind::MissingFlush;
    if (s == "missing-fence") return BugKind::MissingFence;
    if (s == "missing-flush&fence") return BugKind::MissingFlushFence;
    if (s == "cross-thread") return BugKind::CrossThread;
    ok = false;
    return BugKind::MissingFlushFence;
}

uint64_t
lineOf(uint64_t addr)
{
    return addr / pmem::cacheLineSize;
}

} // namespace

std::string
Bug::storeSiteKey() const
{
    if (storeStack.empty())
        return "?";
    return format("%s#%u", storeStack[0].function.c_str(),
                  storeStack[0].instrId);
}

std::string
Bug::str() const
{
    return format(
        "%s at %s (addr=0x%llx size=%llu) required durable by %s "
        "[%s], %llu dynamic occurrence(s)",
        bugKindName(kind),
        storeStack.empty() ? "?" : storeStack[0].str().c_str(),
        (unsigned long long)addr, (unsigned long long)size,
        durLabel.c_str(),
        durStack.empty() ? "?" : durStack[0].str().c_str(),
        (unsigned long long)dynCount);
}

/**
 * The detector state machine, usable in one shot (analyze) or
 * incrementally (OnlineDetector). All state it keeps about past
 * events is owned (copied stacks), so transient streamed events are
 * fine.
 */
class OnlineDetector::Engine
{
  public:
    explicit Engine(DetectorConfig cfg) : cfg_(cfg) {}

    void
    feed(const trace::Event &ev)
    {
        report_.eventsScanned++;
        switch (ev.kind) {
          case trace::EventKind::Store:
            onStore(ev);
            break;
          case trace::EventKind::Flush:
            onFlush(ev);
            break;
          case trace::EventKind::Fence:
            onFence(ev);
            break;
          case trace::EventKind::DurPoint:
            onDurPoint(ev);
            break;
          case trace::EventKind::PmMap:
          case trace::EventKind::Output:
            break;
        }
    }

    const Report &report() const { return report_; }

  private:
    /** Per-line durability state of an outstanding store. */
    enum class LineState : uint8_t
    {
        NeedFlush, ///< dirty in cache
        Pending,   ///< flushed (CLWB/CLFLUSHOPT), awaiting a fence
        Done,      ///< persisted
    };

    /** An outstanding (not yet fully persisted) PM store. */
    struct OutstandingStore
    {
        uint64_t eventSeq;
        uint64_t addr;
        uint64_t size;
        uint32_t objectId;
        std::vector<trace::StackFrame> stack;
        uint64_t firstLine;
        std::vector<LineState> lines;
        uint64_t lastFenceBefore;
        /** Last covering flush (for fence-insertion anchoring). */
        uint64_t lastFlushSeq = 0;
        std::vector<trace::StackFrame> lastFlushStack;
        /** First fence after this store (locus-visibility info). */
        uint64_t firstFenceSeq = 0;
        std::vector<trace::StackFrame> firstFenceStack;
        /** Bug this store was folded into; reported once. */
        size_t reportedBug = SIZE_MAX;
        /** CrossThread bug this store was folded into. Separate
         *  slot: the same store can be both published-while-dirty
         *  (cross-thread) and unpersisted at a later durpoint. */
        size_t reportedCross = SIZE_MAX;
        uint32_t tid = 0;

        bool
        allDone() const
        {
            for (LineState s : lines) {
                if (s != LineState::Done)
                    return false;
            }
            return true;
        }

        bool
        anyNeedFlush() const
        {
            for (LineState s : lines) {
                if (s == LineState::NeedFlush)
                    return true;
            }
            return false;
        }
    };

    /**
     * A release-ordered atomic PM store publishes prior writes to
     * other threads. Any outstanding store whose line is not yet
     * persisted — except a store to the publication's own line,
     * which the pool persists atomically with the publication —
     * becomes observable-before-durable: a CrossThread bug.
     */
    void
    onPublish(const trace::Event &ev)
    {
        uint64_t pubLine = lineOf(ev.addr);
        for (OutstandingStore &os : outstanding_) {
            if (os.allDone())
                continue;
            bool racy = false;
            for (size_t i = 0; i < os.lines.size(); i++) {
                if (os.lines[i] != LineState::Done &&
                    os.firstLine + i != pubLine) {
                    racy = true;
                    break;
                }
            }
            if (!racy)
                continue;
            if (os.reportedCross != SIZE_MAX) {
                report_.bugs[os.reportedCross].dynCount++;
                continue;
            }
            std::pair<std::string, int> key{
                stackSignature(os.stack),
                (int)BugKind::CrossThread};
            auto it = dedup_.find(key);
            if (it != dedup_.end()) {
                report_.bugs[it->second].dynCount++;
                os.reportedCross = it->second;
                continue;
            }
            Bug bug;
            bug.kind = BugKind::CrossThread;
            bug.storeEventSeq = os.eventSeq;
            bug.storeStack = os.stack;
            bug.addr = os.addr;
            bug.size = os.size;
            bug.objectId = os.objectId;
            bug.durEventSeq = ev.seq;
            bug.durStack = ev.stack;
            bug.durLabel = "release-publish";
            bug.dynCount = 1;
            os.reportedCross = report_.bugs.size();
            dedup_[key] = report_.bugs.size();
            report_.bugs.push_back(std::move(bug));
        }
    }

    void
    onStore(const trace::Event &ev)
    {
        if (!ev.isPm)
            return;
        report_.pmStoresSeen++;
        if (ev.atomic &&
            ir::isReleaseOrder((ir::MemOrder)ev.sub))
            onPublish(ev);
        OutstandingStore os;
        os.eventSeq = ev.seq;
        os.addr = ev.addr;
        os.size = ev.size;
        os.objectId = ev.objectId;
        os.stack = ev.stack;
        os.tid = ev.tid;
        os.firstLine = lineOf(ev.addr);
        uint64_t nlines =
            lineOf(ev.addr + ev.size - 1) - os.firstLine + 1;
        os.lines.assign(nlines, ev.nonTemporal ? LineState::Pending
                                               : LineState::NeedFlush);
        os.lastFenceBefore = fenceCount_;
        outstanding_.push_back(std::move(os));
    }

    void
    onFlush(const trace::Event &ev)
    {
        if (!ev.isPm)
            return;
        report_.flushesSeen++;
        uint64_t line = lineOf(ev.addr);
        bool hit = false;
        bool immediate =
            (pmem::FlushOp)ev.sub == pmem::FlushOp::Clflush;
        for (OutstandingStore &os : outstanding_) {
            if (line < os.firstLine ||
                line >= os.firstLine + os.lines.size())
                continue;
            LineState &st = os.lines[line - os.firstLine];
            if (st == LineState::NeedFlush) {
                st = immediate ? LineState::Done : LineState::Pending;
                os.lastFlushSeq = ev.seq;
                os.lastFlushStack = ev.stack;
                hit = true;
            } else if (st == LineState::Pending && immediate) {
                st = LineState::Done;
                os.lastFlushSeq = ev.seq;
                os.lastFlushStack = ev.stack;
            }
        }
        if (!hit)
            report_.redundantFlushes++;
    }

    void
    onFence(const trace::Event &ev)
    {
        report_.fencesSeen++;
        fenceCount_++;
        for (OutstandingStore &os : outstanding_) {
            if (os.firstFenceStack.empty()) {
                os.firstFenceSeq = ev.seq;
                os.firstFenceStack = ev.stack;
            }
            for (LineState &st : os.lines) {
                if (st == LineState::Pending)
                    st = LineState::Done;
            }
        }
        std::erase_if(outstanding_, [](const OutstandingStore &os) {
            return os.allDone();
        });
    }

    static std::string
    stackSignature(const std::vector<trace::StackFrame> &stack)
    {
        std::string sig;
        for (const auto &f : stack)
            sig += format("%s#%u;", f.function.c_str(), f.instrId);
        return sig;
    }

    void
    onDurPoint(const trace::Event &ev)
    {
        if (ev.symbol == "exit" && !cfg_.checkExitDurPoint)
            return;
        report_.durPointsSeen++;
        for (OutstandingStore &os : outstanding_) {
            if (os.allDone())
                continue;
            if (os.reportedBug != SIZE_MAX) {
                report_.bugs[os.reportedBug].dynCount++;
                continue;
            }
            BugKind kind;
            if (os.anyNeedFlush()) {
                // Never (fully) flushed. If a fence followed the
                // store, only the flush is missing; otherwise both.
                kind = fenceCount_ > os.lastFenceBefore
                           ? BugKind::MissingFlush
                           : BugKind::MissingFlushFence;
            } else {
                kind = BugKind::MissingFence;
            }
            // Static dedup by (full store call path, kind): the same
            // store via distinct paths needs distinct fixes, exactly
            // as pmemcheck reports one bug per unique stack.
            std::pair<std::string, int> key{
                stackSignature(os.stack), (int)kind};
            auto it = dedup_.find(key);
            if (it != dedup_.end()) {
                report_.bugs[it->second].dynCount++;
                os.reportedBug = it->second;
                continue;
            }
            Bug bug;
            bug.kind = kind;
            bug.storeEventSeq = os.eventSeq;
            bug.storeStack = os.stack;
            bug.addr = os.addr;
            bug.size = os.size;
            bug.objectId = os.objectId;
            bug.durEventSeq = ev.seq;
            bug.durStack = ev.stack;
            bug.durLabel = ev.symbol;
            if (kind == BugKind::MissingFence &&
                !os.lastFlushStack.empty()) {
                bug.flushEventSeq = os.lastFlushSeq;
                bug.flushStack = os.lastFlushStack;
            }
            if (!os.firstFenceStack.empty()) {
                bug.fenceEventSeq = os.firstFenceSeq;
                bug.fenceStack = os.firstFenceStack;
            }
            bug.dynCount = 1;
            os.reportedBug = report_.bugs.size();
            dedup_[key] = report_.bugs.size();
            report_.bugs.push_back(std::move(bug));
        }
    }

    DetectorConfig cfg_;
    Report report_;
    std::vector<OutstandingStore> outstanding_;
    uint64_t fenceCount_ = 0;
    std::map<std::pair<std::string, int>, size_t> dedup_;
};

OnlineDetector::OnlineDetector(DetectorConfig cfg)
    : engine_(std::make_unique<Engine>(cfg))
{}

OnlineDetector::~OnlineDetector() = default;

void
OnlineDetector::onEvent(const trace::Event &event)
{
    engine_->feed(event);
}

const Report &
OnlineDetector::report() const
{
    return engine_->report();
}

Report
analyze(const trace::Trace &trace, DetectorConfig cfg)
{
    OnlineDetector::Engine engine(cfg);
    for (const trace::Event &ev : trace.events())
        engine.feed(ev);
    return engine.report();
}

void
Report::exportMetrics(support::MetricsRegistry &reg,
                      const std::string &prefix) const
{
    reg.counter(prefix + ".events_scanned").inc(eventsScanned);
    reg.counter(prefix + ".pm_stores").inc(pmStoresSeen);
    reg.counter(prefix + ".flushes").inc(flushesSeen);
    reg.counter(prefix + ".fences").inc(fencesSeen);
    reg.counter(prefix + ".durpoints").inc(durPointsSeen);
    reg.counter(prefix + ".redundant_flushes").inc(redundantFlushes);
    reg.counter(prefix + ".bugs.total").inc(bugs.size());
    uint64_t dyn = 0;
    std::map<BugKind, uint64_t> byKind;
    for (const Bug &b : bugs) {
        byKind[b.kind]++;
        dyn += b.dynCount;
    }
    reg.counter(prefix + ".bugs.dynamic").inc(dyn);
    for (const auto &[kind, count] : byKind)
        reg.counter(prefix + ".bugs." + bugKindName(kind)).inc(count);
}

std::string
Report::writeText() const
{
    std::ostringstream os;
    os << format("SUMMARY bugs=%zu events=%llu stores=%llu "
                 "flushes=%llu fences=%llu durpoints=%llu "
                 "redundant=%llu\n",
                 bugs.size(), (unsigned long long)eventsScanned,
                 (unsigned long long)pmStoresSeen,
                 (unsigned long long)flushesSeen,
                 (unsigned long long)fencesSeen,
                 (unsigned long long)durPointsSeen,
                 (unsigned long long)redundantFlushes);
    for (const Bug &b : bugs) {
        os << format("BUG kind=%s store=%llu addr=0x%llx size=%llu "
                     "obj=%u dur=%llu count=%llu label=\"%s\"\n",
                     bugKindName(b.kind),
                     (unsigned long long)b.storeEventSeq,
                     (unsigned long long)b.addr,
                     (unsigned long long)b.size, b.objectId,
                     (unsigned long long)b.durEventSeq,
                     (unsigned long long)b.dynCount,
                     b.durLabel.c_str());
        os << "  XSTACK " << trace::stackToString(b.storeStack)
           << "\n";
        os << "  ISTACK " << trace::stackToString(b.durStack) << "\n";
        if (!b.flushStack.empty()) {
            os << format("  FSEQ %llu\n",
                         (unsigned long long)b.flushEventSeq);
            os << "  FSTACK " << trace::stackToString(b.flushStack)
               << "\n";
        }
        if (!b.fenceStack.empty()) {
            os << format("  MSEQ %llu\n",
                         (unsigned long long)b.fenceEventSeq);
            os << "  MSTACK " << trace::stackToString(b.fenceStack)
               << "\n";
        }
    }
    return os.str();
}

bool
Report::readText(const std::string &text, Report &out,
                 std::string *error)
{
    out = Report();
    std::istringstream is(text);
    std::string line;
    int line_no = 0;
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = format("report line %d: %s", line_no,
                            msg.c_str());
        return false;
    };

    while (std::getline(is, line)) {
        line_no++;
        std::string t(trim(line));
        if (t.empty())
            continue;
        auto words = splitWhitespace(t);
        if (words[0] == "SUMMARY") {
            for (size_t i = 1; i < words.size(); i++) {
                auto kv = split(words[i], '=');
                if (kv.size() != 2)
                    return fail("bad summary field");
                uint64_t v;
                if (!parseUint(kv[1], v))
                    return fail("bad summary value");
                if (kv[0] == "events")
                    out.eventsScanned = v;
                else if (kv[0] == "stores")
                    out.pmStoresSeen = v;
                else if (kv[0] == "flushes")
                    out.flushesSeen = v;
                else if (kv[0] == "fences")
                    out.fencesSeen = v;
                else if (kv[0] == "durpoints")
                    out.durPointsSeen = v;
                else if (kv[0] == "redundant")
                    out.redundantFlushes = v;
            }
        } else if (words[0] == "BUG") {
            Bug b;
            for (size_t i = 1; i < words.size(); i++) {
                auto eq = words[i].find('=');
                if (eq == std::string::npos)
                    return fail("bad bug field");
                std::string k = words[i].substr(0, eq);
                std::string v = words[i].substr(eq + 1);
                if (k == "kind") {
                    bool ok;
                    b.kind = bugKindFromName(v, ok);
                    if (!ok)
                        return fail("bad bug kind");
                    continue;
                }
                if (k == "label") {
                    if (v.size() >= 2 && v.front() == '"' &&
                        v.back() == '"')
                        v = v.substr(1, v.size() - 2);
                    b.durLabel = v;
                    continue;
                }
                uint64_t num;
                if (!parseUint(v, num))
                    return fail("bad bug value: " + words[i]);
                if (k == "store")
                    b.storeEventSeq = num;
                else if (k == "addr")
                    b.addr = num;
                else if (k == "size")
                    b.size = num;
                else if (k == "obj")
                    b.objectId = (uint32_t)num;
                else if (k == "dur")
                    b.durEventSeq = num;
                else if (k == "count")
                    b.dynCount = num;
            }
            out.bugs.push_back(std::move(b));
        } else if (words[0] == "XSTACK") {
            if (out.bugs.empty())
                return fail("XSTACK before BUG");
            std::string s(trim(t.substr(6)));
            if (!trace::stackFromString(s, out.bugs.back().storeStack))
                return fail("bad XSTACK");
        } else if (words[0] == "ISTACK") {
            if (out.bugs.empty())
                return fail("ISTACK before BUG");
            std::string s(trim(t.substr(6)));
            if (!trace::stackFromString(s, out.bugs.back().durStack))
                return fail("bad ISTACK");
        } else if (words[0] == "FSEQ") {
            if (out.bugs.empty())
                return fail("FSEQ before BUG");
            uint64_t v;
            if (words.size() != 2 || !parseUint(words[1], v))
                return fail("bad FSEQ");
            out.bugs.back().flushEventSeq = v;
        } else if (words[0] == "FSTACK") {
            if (out.bugs.empty())
                return fail("FSTACK before BUG");
            std::string s(trim(t.substr(6)));
            if (!trace::stackFromString(s,
                                        out.bugs.back().flushStack))
                return fail("bad FSTACK");
        } else if (words[0] == "MSEQ") {
            if (out.bugs.empty())
                return fail("MSEQ before BUG");
            uint64_t v;
            if (words.size() != 2 || !parseUint(words[1], v))
                return fail("bad MSEQ");
            out.bugs.back().fenceEventSeq = v;
        } else if (words[0] == "MSTACK") {
            if (out.bugs.empty())
                return fail("MSTACK before BUG");
            std::string s(trim(t.substr(6)));
            if (!trace::stackFromString(s,
                                        out.bugs.back().fenceStack))
                return fail("bad MSTACK");
        } else {
            return fail("unknown line: " + t);
        }
    }
    return true;
}

} // namespace hippo::pmcheck
