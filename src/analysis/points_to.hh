/**
 * @file
 * Andersen-style inclusion-based whole-program points-to analysis over
 * PMIR (the paper uses grievejia/andersen over LLVM IR; §5).
 *
 * Abstract memory objects are allocation sites: Alloca instructions
 * (volatile) and PmMap instructions (persistent regions). Pointer
 * flow in PMIR happens through gep/select copies, call argument
 * binding, and returns; idiomatic PM code addresses pools via region
 * base + integer offsets (as PMDK does with OIDs), so pointers do not
 * round-trip through memory in well-typed PMIR, which keeps the
 * constraint system to inclusion edges plus address-of seeds.
 */

#ifndef HIPPO_ANALYSIS_POINTS_TO_HH
#define HIPPO_ANALYSIS_POINTS_TO_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hippo::ir
{
class Instruction;
class Module;
class Value;
} // namespace hippo::ir

namespace hippo::analysis
{

/** An abstract memory object (allocation site). */
struct MemObject
{
    const ir::Instruction *site = nullptr;
    bool isPm = false;  ///< site is a PmMap
    std::string key;    ///< "pm:<region>" or "<func>#<instrId>"
};

/** Solved points-to sets for every pointer-typed value in a module. */
class PointsTo
{
  public:
    explicit PointsTo(const ir::Module &m);

    const std::vector<MemObject> &objects() const { return objects_; }

    /** Points-to set of @p v: sorted unique object indices; empty
     *  when unknown. */
    const std::vector<uint32_t> &pointsTo(const ir::Value *v) const;

    /** True when the points-to sets of @p a and @p b intersect
     *  (linear merge walk over the sorted sets). */
    bool mayAlias(const ir::Value *a, const ir::Value *b) const;

    /** Object index by key; ~0u when absent. */
    uint32_t objectByKey(const std::string &key) const;

    /**
     * True when pointer value @p src can flow into pointer value
     * @p dst through copy/gep/select/call/return edges — i.e., the
     * address @p dst dereferences may be derived from @p src.
     */
    bool flowsTo(const ir::Value *src, const ir::Value *dst) const;

    /** Number of inclusion edges in the constraint graph. */
    size_t edgeCount() const { return edgeCount_; }

    /**
     * Worklist iterations the solver ran (nodes popped). The solver
     * uses difference propagation — each pop pushes only the objects
     * added since the node's previous pop — but a node requeues
     * exactly when a successor set grows, the same growth events the
     * full-set propagation saw, so the count (and the exported
     * analysis.andersen.solve_iterations metric) is unchanged.
     */
    uint64_t solveIterations() const { return solveIterations_; }

  private:
    uint32_t nodeOf(const ir::Value *v);
    void addEdge(const ir::Value *from, const ir::Value *to);
    void seed(const ir::Value *v, uint32_t object);
    void solve();
    void recordMetrics() const;

    std::vector<MemObject> objects_;
    std::map<std::string, uint32_t> objectByKey_;

    std::map<const ir::Value *, uint32_t> nodeIndex_;
    std::vector<std::vector<uint32_t>> pts_; ///< sorted unique
    std::vector<std::vector<uint32_t>> succ_; ///< inclusion edges
    size_t edgeCount_ = 0;
    uint64_t solveIterations_ = 0;
};

} // namespace hippo::analysis

#endif // HIPPO_ANALYSIS_POINTS_TO_HH
