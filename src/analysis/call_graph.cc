#include "analysis/call_graph.hh"

#include <deque>

#include "ir/module.hh"

namespace hippo::analysis
{

CallGraph::CallGraph(const ir::Module &m)
{
    for (const auto &f : m.functions()) {
        callees_[f.get()]; // ensure the entry exists
        for (const auto &bb : f->blocks()) {
            for (const auto &instr : *bb) {
                if (instr->op() != ir::Opcode::Call &&
                    instr->op() != ir::Opcode::ThreadSpawn)
                    continue;
                callSites_[instr->callee()].push_back(instr.get());
                callees_[f.get()].insert(instr->callee());
            }
        }
    }

    // Transitive closure by BFS from each function. Module sizes in
    // this project are small (hundreds of functions), so the simple
    // quadratic approach is fine.
    for (const auto &f : m.functions()) {
        std::set<const ir::Function *> &seen = reachable_[f.get()];
        std::deque<const ir::Function *> work{f.get()};
        while (!work.empty()) {
            const ir::Function *cur = work.front();
            work.pop_front();
            auto it = callees_.find(cur);
            if (it == callees_.end())
                continue;
            for (ir::Function *callee : it->second) {
                if (seen.insert(callee).second)
                    work.push_back(callee);
            }
        }
    }
}

const std::vector<ir::Instruction *> &
CallGraph::callSitesOf(const ir::Function *f) const
{
    static const std::vector<ir::Instruction *> empty;
    auto it = callSites_.find(f);
    return it == callSites_.end() ? empty : it->second;
}

const std::set<ir::Function *> &
CallGraph::callees(const ir::Function *f) const
{
    static const std::set<ir::Function *> empty;
    auto it = callees_.find(f);
    return it == callees_.end() ? empty : it->second;
}

bool
CallGraph::reaches(const ir::Function *from,
                   const ir::Function *to) const
{
    auto it = reachable_.find(from);
    return it != reachable_.end() && it->second.count(to) > 0;
}

std::string
CallGraph::toDot(const std::string &graph_name) const
{
    std::string out = "digraph " + graph_name + " {\n";
    for (const auto &[caller, callees] : callees_) {
        out += "  \"" + caller->name() + "\";\n";
        for (const ir::Function *callee : callees) {
            out += "  \"" + caller->name() + "\" -> \"" +
                   callee->name() + "\";\n";
        }
    }
    out += "}\n";
    return out;
}

std::set<const ir::Function *>
CallGraph::transitiveCallers(const ir::Function *f) const
{
    std::set<const ir::Function *> out{f};
    for (const auto &[caller, reached] : reachable_) {
        if (reached.count(f))
            out.insert(caller);
    }
    return out;
}

} // namespace hippo::analysis
