/**
 * @file
 * The hoisting heuristic's scoring function (paper §4.3): every
 * abstract memory object is marked "PM" or "not PM", and a candidate
 * fix location's pointer is scored as
 *
 *     score(p) = |pts(p) ∩ PM objects| − |pts(p) ∖ PM objects|.
 *
 * Two marking/aliasing variants are provided, matching the paper's
 * Full-AA vs Trace-AA comparison (§6.1):
 *
 *  - Full-AA: pts() from the whole-program Andersen analysis; objects
 *    marked PM statically (PmMap allocation sites).
 *  - Trace-AA: pts() from the dynamic points-to side table recorded
 *    during the bug-finding run; objects marked PM when the trace
 *    contains a PM modification event against them.
 */

#ifndef HIPPO_ANALYSIS_ALIAS_SCORER_HH
#define HIPPO_ANALYSIS_ALIAS_SCORER_HH

#include <cstdint>
#include <set>
#include <string>

#include "analysis/points_to.hh"
#include "trace/trace.hh"
#include "vm/vm.hh"

namespace hippo::analysis
{

/** Which alias information drives the heuristic. */
enum class AaMode { FullAA, TraceAA };

const char *aaModeName(AaMode m);

/** Computes PM-alias scores for candidate fix locations. */
class AliasScorer
{
  public:
    /**
     * @param pts Whole-program Andersen results.
     * @param mode Full-AA or Trace-AA.
     * @param trace The bug-finding trace (for PM marking, and for
     *        Trace-AA points-to via @p dyn).
     * @param dyn Dynamic points-to table (required for Trace-AA).
     */
    AliasScorer(const PointsTo &pts, AaMode mode,
                const trace::Trace &trace,
                const vm::DynPointsTo *dyn = nullptr);

    /**
     * Score a pointer value in @p function. Larger is more
     * PM-biased; see file comment for the formula.
     */
    int64_t score(const std::string &function,
                  const ir::Value *v) const;

    /** True when @p v may point to a PM object at all. */
    bool mayPointToPm(const std::string &function,
                      const ir::Value *v) const;

    AaMode mode() const { return mode_; }

  private:
    /** Sorted unique analysis-object indices @p v may point to. */
    std::vector<uint32_t>
    objectSet(const std::string &function, const ir::Value *v) const;

    const PointsTo &pts_;
    AaMode mode_;
    const vm::DynPointsTo *dyn_;

    /** Analysis-object indices marked PM. */
    std::set<uint32_t> pmObjects_;
    /** Trace-object id -> analysis-object index. */
    std::map<uint32_t, uint32_t> traceToAnalysis_;
};

} // namespace hippo::analysis

#endif // HIPPO_ANALYSIS_ALIAS_SCORER_HH
