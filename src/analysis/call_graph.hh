/**
 * @file
 * Direct call graph over a PMIR module: per-callee call-site lists,
 * per-caller callee sets, and transitive reachability. Used by the
 * persistent subprogram transformation to find the calls that must be
 * redirected to _PM clones.
 */

#ifndef HIPPO_ANALYSIS_CALL_GRAPH_HH
#define HIPPO_ANALYSIS_CALL_GRAPH_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace hippo::ir
{
class Function;
class Instruction;
class Module;
} // namespace hippo::ir

namespace hippo::analysis
{

/** Immutable call graph snapshot of a module. */
class CallGraph
{
  public:
    explicit CallGraph(const ir::Module &m);

    /** All call instructions whose callee is @p f. */
    const std::vector<ir::Instruction *> &
    callSitesOf(const ir::Function *f) const;

    /** Functions directly called by @p f. */
    const std::set<ir::Function *> &
    callees(const ir::Function *f) const;

    /** True when @p from can (transitively) reach @p to. */
    bool reaches(const ir::Function *from,
                 const ir::Function *to) const;

    /**
     * Functions from which @p f is transitively reachable,
     * including @p f itself.
     */
    std::set<const ir::Function *>
    transitiveCallers(const ir::Function *f) const;

    /** Render as Graphviz DOT (one edge per caller->callee pair). */
    std::string toDot(const std::string &graph_name = "callgraph")
        const;

  private:
    std::map<const ir::Function *, std::vector<ir::Instruction *>>
        callSites_;
    std::map<const ir::Function *, std::set<ir::Function *>> callees_;
    std::map<const ir::Function *, std::set<const ir::Function *>>
        reachable_; ///< transitive closure per function
};

} // namespace hippo::analysis

#endif // HIPPO_ANALYSIS_CALL_GRAPH_HH
