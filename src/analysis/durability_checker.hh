/**
 * @file
 * Static durability checker: a flow-sensitive forward dataflow
 * analysis over PMIR that finds missing-flush / missing-fence
 * candidates without running the program ("Automated Insertion of
 * Flushes and Fences for Persistency", Guo et al., decides the same
 * bug class statically; Hippocrates §4 only sees dynamically-exposed
 * bugs).
 *
 * Per PM store site the analysis tracks an abstract persistence
 * lattice — the powerset of {dirty, flush-pending, persisted} crossed
 * with {fence-seen-since-store} — so one fact soundly covers every
 * path reaching a program point (⊥ is the empty set: store not yet
 * seen). Facts are seeded from the Andersen points-to results
 * (points_to.hh) and flow interprocedurally through bottom-up
 * summaries over call-graph SCCs: each function exports must-fence /
 * must-flush effects, durpoint visibility, and the records that
 * escape to its callers (rebased through call-site arguments).
 *
 * Soundness direction: the checker is tuned for *zero false
 * negatives* against the dynamic detector on any path the VM can
 * execute — a flush only retires a record's dirty state when it
 * must-cover the store (identical address expression evaluated in the
 * same basic-block execution, or provably the same cache line: PM
 * region bases are 64-byte aligned by PmPool, and naturally-aligned
 * stores of ≤ 8 bytes never straddle a line). May-aliasing flushes
 * only *add* flushed-state possibilities, so path-insensitive merges
 * over-report (false positives, counted and gated in
 * bench_static_check) rather than under-report.
 */

#ifndef HIPPO_ANALYSIS_DURABILITY_CHECKER_HH
#define HIPPO_ANALYSIS_DURABILITY_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pmcheck/detector.hh"
#include "trace/trace.hh"

namespace hippo::ir
{
class Module;
} // namespace hippo::ir

namespace hippo::support
{
class MetricsRegistry;
} // namespace hippo::support

namespace hippo::analysis
{

/** Static-checker options. */
struct StaticCheckerConfig
{
    /** Root of the reachable-call analysis; candidates are reported
     *  only for functions this entry can reach (matching what a
     *  dynamic run from the same entry could execute). */
    std::string entry = "main";

    /** Report records still unpersisted when the entry returns, as
     *  the VM's synthetic "exit" durability point does
     *  (vm::VmConfig::durPointAtExit). */
    bool checkExitDurPoint = true;

    /** Innermost frames kept per candidate stack; escape chains
     *  through deep call stacks are truncated to this many. */
    unsigned maxStackDepth = 8;
};

/**
 * One statically-suspicious (store X, durability point I) pair, the
 * static analogue of pmcheck::Bug. Stacks are the call chain the
 * record escaped through, innermost frame first, rooted at the
 * function where the durability point was observed (a dynamic stack
 * would extend further toward the entry).
 */
struct StaticCandidate
{
    pmcheck::BugKind kind = pmcheck::BugKind::MissingFlushFence;

    std::vector<trace::StackFrame> storeStack; ///< the store X
    uint64_t storeSize = 0; ///< bytes; 0 = statically unknown

    std::vector<trace::StackFrame> durStack; ///< the durpoint I
    std::string durLabel;

    /** Store site "function#instrId" (innermost frame), comparable
     *  with pmcheck::Bug::storeSiteKey(). */
    std::string storeSiteKey() const;

    std::string str() const;
};

/** Full static-checker output for one module. */
struct StaticReport
{
    /** Deduplicated by (store site, kind), sorted; see writeText. */
    std::vector<StaticCandidate> candidates;

    /// @name Census over the module / the entry-reachable slice
    /// @{
    uint64_t functionsTotal = 0;
    uint64_t functionsReachable = 0;
    uint64_t sccCount = 0;
    uint64_t summariesComputed = 0; ///< per-function analysis runs
    uint64_t storesTracked = 0;     ///< PM store records created
    uint64_t flushesSeen = 0;       ///< flush instrs, reachable fns
    uint64_t fencesSeen = 0;        ///< fence instrs, reachable fns
    uint64_t durPointsSeen = 0;     ///< durpoint instrs, reachable fns
    /// @}

    bool clean() const { return candidates.empty(); }

    /** True when some candidate's store site equals @p key
     *  ("function#instrId"). */
    bool coversStoreSite(const std::string &key) const;

    /** Sorted unique durpoint labels named by candidates (minus the
     *  synthetic "exit") — feed to
     *  pmcheck::CrashExplorerConfig::priorityDurLabels to aim crash
     *  exploration at statically-suspicious durability points. */
    std::vector<std::string> durLabels() const;

    /**
     * Project into the dynamic detector's report shape (event
     * sequence numbers and addresses are 0 — a static analysis has
     * neither) so downstream tooling can consume either source.
     */
    pmcheck::Report toReport() const;

    /**
     * Accumulate the census and per-kind candidate counts into
     * @p reg under "<prefix>." (static.runs, static.candidates.*,
     * ...; see docs/FORMATS.md §6).
     */
    void exportMetrics(support::MetricsRegistry &reg,
                       const std::string &prefix = "static") const;

    /**
     * Line-oriented text report (STATIC-SUMMARY + SBUG records).
     * Deterministic: the same module and config produce the same
     * bytes on every run, at any --jobs setting — the analysis is
     * single-threaded over ordered containers.
     */
    std::string writeText() const;
};

/** Run the static durability checker over @p m. */
StaticReport checkDurability(const ir::Module &m,
                             const StaticCheckerConfig &cfg = {});

} // namespace hippo::analysis

#endif // HIPPO_ANALYSIS_DURABILITY_CHECKER_HH
