#include "analysis/points_to.hh"

#include <algorithm>
#include <deque>
#include <iterator>

#include "ir/module.hh"
#include "support/metrics.hh"
#include "support/strings.hh"

namespace hippo::analysis
{

uint32_t
PointsTo::nodeOf(const ir::Value *v)
{
    auto it = nodeIndex_.find(v);
    if (it != nodeIndex_.end())
        return it->second;
    uint32_t idx = (uint32_t)pts_.size();
    nodeIndex_[v] = idx;
    pts_.emplace_back();
    succ_.emplace_back();
    return idx;
}

void
PointsTo::addEdge(const ir::Value *from, const ir::Value *to)
{
    // Resolve both nodes before indexing: nodeOf may grow succ_.
    uint32_t f = nodeOf(from);
    uint32_t t = nodeOf(to);
    succ_[f].push_back(t);
    edgeCount_++;
}

void
PointsTo::seed(const ir::Value *v, uint32_t object)
{
    std::vector<uint32_t> &set = pts_[nodeOf(v)];
    auto it = std::lower_bound(set.begin(), set.end(), object);
    if (it == set.end() || *it != object)
        set.insert(it, object);
}

PointsTo::PointsTo(const ir::Module &m)
{
    // Pass 1: collect allocation sites and inclusion constraints.
    for (const auto &f : m.functions()) {
        for (const auto &bb : f->blocks()) {
            for (const auto &owned : *bb) {
                const ir::Instruction *instr = owned.get();
                switch (instr->op()) {
                  case ir::Opcode::Alloca:
                  case ir::Opcode::PmMap: {
                    MemObject obj;
                    obj.site = instr;
                    obj.isPm = instr->op() == ir::Opcode::PmMap;
                    obj.key =
                        obj.isPm
                            ? "pm:" + instr->symbol()
                            : format("%s#%u", f->name().c_str(),
                                     instr->id());
                    uint32_t id = (uint32_t)objects_.size();
                    // PmMaps of the same region alias each other:
                    // share the object keyed by region name.
                    auto it = objectByKey_.find(obj.key);
                    if (it != objectByKey_.end()) {
                        id = it->second;
                    } else {
                        objects_.push_back(obj);
                        objectByKey_[obj.key] = id;
                    }
                    seed(instr, id);
                    break;
                  }
                  case ir::Opcode::Gep:
                    addEdge(instr->operand(0), instr);
                    break;
                  case ir::Opcode::Select:
                    if (instr->type() == ir::Type::Ptr) {
                        addEdge(instr->operand(1), instr);
                        addEdge(instr->operand(2), instr);
                    }
                    break;
                  case ir::Opcode::Call:
                  case ir::Opcode::ThreadSpawn: {
                    // thread_spawn passes arguments exactly like a
                    // call; the pointee flow into the spawned
                    // function's parameters is identical.
                    const ir::Function *callee = instr->callee();
                    for (size_t i = 0; i < instr->numOperands();
                         i++) {
                        if (callee->param(i)->type() ==
                            ir::Type::Ptr) {
                            addEdge(instr->operand(i),
                                    callee->param(i));
                        }
                    }
                    break;
                  }
                  case ir::Opcode::Ret:
                    // Handled in pass 2 (needs the call sites).
                    break;
                  default:
                    break;
                }
            }
        }
    }

    // Pass 2: return-value flow (callee ret operand -> call result).
    for (const auto &f : m.functions()) {
        if (f->returnType() != ir::Type::Ptr)
            continue;
        std::vector<const ir::Value *> ret_operands;
        for (const auto &bb : f->blocks()) {
            for (const auto &owned : *bb) {
                if (owned->op() == ir::Opcode::Ret &&
                    owned->numOperands() == 1)
                    ret_operands.push_back(owned->operand(0));
            }
        }
        if (ret_operands.empty())
            continue;
        for (const auto &g : m.functions()) {
            for (const auto &bb : g->blocks()) {
                for (const auto &owned : *bb) {
                    if (owned->op() == ir::Opcode::Call &&
                        owned->callee() == f.get()) {
                        for (const ir::Value *r : ret_operands)
                            addEdge(r, owned.get());
                    }
                }
            }
        }
    }

    solve();
    recordMetrics();
}

void
PointsTo::solve()
{
    // Worklist propagation of inclusion constraints with difference
    // propagation: popping n pushes only delta[n] — the objects
    // added to pts_[n] since its previous pop. Everything older was
    // already pushed to every successor back then, so the growth
    // (and requeue) events — hence solveIterations_ — match the
    // full-set propagation exactly; only the per-pop work shrinks
    // from O(|pts|) to O(|new|).
    std::deque<uint32_t> work;
    std::vector<uint8_t> queued(pts_.size(), 0);
    std::vector<std::vector<uint32_t>> delta(pts_.size());
    for (uint32_t i = 0; i < pts_.size(); i++) {
        if (!pts_[i].empty()) {
            delta[i] = pts_[i];
            work.push_back(i);
            queued[i] = 1;
        }
    }
    std::vector<uint32_t> d, added, merged;
    while (!work.empty()) {
        uint32_t n = work.front();
        work.pop_front();
        queued[n] = 0;
        solveIterations_++;
        d.clear();
        d.swap(delta[n]);
        for (uint32_t s : succ_[n]) {
            added.clear();
            std::set_difference(d.begin(), d.end(), pts_[s].begin(),
                                pts_[s].end(),
                                std::back_inserter(added));
            if (added.empty())
                continue;
            merged.clear();
            merged.reserve(pts_[s].size() + added.size());
            std::merge(pts_[s].begin(), pts_[s].end(), added.begin(),
                       added.end(), std::back_inserter(merged));
            pts_[s].swap(merged);
            if (delta[s].empty()) {
                delta[s] = added;
            } else {
                merged.clear();
                merged.reserve(delta[s].size() + added.size());
                std::set_union(delta[s].begin(), delta[s].end(),
                               added.begin(), added.end(),
                               std::back_inserter(merged));
                delta[s].swap(merged);
            }
            if (!queued[s]) {
                work.push_back(s);
                queued[s] = 1;
            }
        }
    }
}

void
PointsTo::recordMetrics() const
{
    auto &reg = support::MetricsRegistry::global();
    const std::string p = "analysis.andersen";
    reg.counter(p + ".runs").inc();
    reg.counter(p + ".nodes").inc(pts_.size());
    reg.counter(p + ".edges").inc(edgeCount_);
    reg.counter(p + ".objects").inc(objects_.size());
    reg.counter(p + ".solve_iterations").inc(solveIterations_);
    auto &sizes = reg.histogram(p + ".pts_size");
    for (const auto &s : pts_)
        sizes.observe((double)s.size());
}

const std::vector<uint32_t> &
PointsTo::pointsTo(const ir::Value *v) const
{
    static const std::vector<uint32_t> empty;
    auto it = nodeIndex_.find(v);
    return it == nodeIndex_.end() ? empty : pts_[it->second];
}

bool
PointsTo::mayAlias(const ir::Value *a, const ir::Value *b) const
{
    const auto &pa = pointsTo(a);
    const auto &pb = pointsTo(b);
    auto ia = pa.begin();
    auto ib = pb.begin();
    while (ia != pa.end() && ib != pb.end()) {
        if (*ia == *ib)
            return true;
        if (*ia < *ib)
            ++ia;
        else
            ++ib;
    }
    return false;
}

bool
PointsTo::flowsTo(const ir::Value *src, const ir::Value *dst) const
{
    if (src == dst)
        return true;
    auto sit = nodeIndex_.find(src);
    auto dit = nodeIndex_.find(dst);
    if (sit == nodeIndex_.end() || dit == nodeIndex_.end())
        return false;
    std::deque<uint32_t> work{sit->second};
    std::vector<uint8_t> seen(succ_.size(), 0);
    seen[sit->second] = 1;
    while (!work.empty()) {
        uint32_t n = work.front();
        work.pop_front();
        if (n == dit->second)
            return true;
        for (uint32_t s : succ_[n]) {
            if (!seen[s]) {
                seen[s] = 1;
                work.push_back(s);
            }
        }
    }
    return false;
}

uint32_t
PointsTo::objectByKey(const std::string &key) const
{
    auto it = objectByKey_.find(key);
    return it == objectByKey_.end() ? ~0u : it->second;
}

} // namespace hippo::analysis
