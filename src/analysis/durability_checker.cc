/**
 * @file
 * Static durability checker implementation. See durability_checker.hh
 * for the analysis design and the soundness argument; the structure
 * here is:
 *
 *   Addr / AddrSet     abstract addresses (root + byte offset)
 *   Record             one tracked PM store site with its lattice bits
 *   Fact               per-basic-block dataflow fact
 *   Summary            per-function bottom-up interprocedural summary
 *   Checker            SCC-ordered driver producing the StaticReport
 */

#include "analysis/durability_checker.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "analysis/call_graph.hh"
#include "analysis/points_to.hh"
#include "ir/basic_block.hh"
#include "ir/function.hh"
#include "ir/instruction.hh"
#include "ir/module.hh"
#include "support/metrics.hh"
#include "support/strings.hh"

namespace hippo::analysis
{

namespace
{

using hippo::format;

/// Cache-line geometry shared with pmem::PmPool (region bases are
/// 64-byte aligned, which the Object-root same-line rule relies on).
constexpr int64_t kLineShift = 6;

/// Caps keeping the abstract domains finite under recursion.
constexpr size_t kMaxAddrsPerSet = 8;
constexpr size_t kMaxEscapedRecords = 256;
constexpr size_t kMaxMustFlushes = 64;
constexpr int kMaxSccIterations = 10;
constexpr int64_t kMaxOffsetMagnitude = int64_t(1) << 30;

/**
 * The fixer's range-flush helper (core/fixer.hh
 * flushRangeHelperName, duplicated here to keep analysis/ below
 * core/ in the layering): trusted by contract to CLWB every cache
 * line of [arg0, arg0 + arg1). Both emitters — the fixer's memcpy
 * repair and the flush optimizer's loop-range promotion — only emit
 * the call to cover exactly the range dirtied before it, so when the
 * extent is dynamic the checker credits same-object records rather
 * than inventing candidates the paired flush loop would not have
 * produced.
 */
constexpr const char *kFlushRangeHelper = "__hippo_flush_range";

/** Persistence-lattice bits: the set of states the store may be in. */
constexpr uint8_t kDirty = 1;   ///< unflushed modified line
constexpr uint8_t kPending = 2; ///< flushed, flush not yet fenced
constexpr uint8_t kDone = 4;    ///< persisted
/** Fence-since-store bits. */
constexpr uint8_t kFenceNo = 1;
constexpr uint8_t kFenceYes = 2;

/** An abstract address: a root plus a byte offset when known. */
struct Addr
{
    enum class Root : uint8_t { Param, Object, Unknown };

    Root root = Root::Unknown;
    uint32_t index = 0; ///< param index or PointsTo object index
    bool knownOff = false;
    int64_t off = 0;

    static Addr unknown() { return Addr{}; }

    bool operator==(const Addr &o) const = default;
    bool operator<(const Addr &o) const
    {
        return std::tie(root, index, knownOff, off) <
               std::tie(o.root, o.index, o.knownOff, o.off);
    }

    std::string
    key() const
    {
        switch (root) {
          case Root::Param:
          case Root::Object: {
            const char *tag = root == Root::Param ? "P" : "O";
            if (!knownOff)
                return format("%s%u+?", tag, index);
            return format("%s%u+%lld", tag, index, (long long)off);
          }
          default:
            return "U";
        }
    }
};

/** Sorted unique address set; collapses to {Unknown} past the cap. */
using AddrSet = std::vector<Addr>;

void
normalizeAddrs(AddrSet &s)
{
    for (Addr &a : s) {
        if (a.knownOff &&
            (a.off > kMaxOffsetMagnitude || a.off < -kMaxOffsetMagnitude))
            a.knownOff = false;
        if (!a.knownOff)
            a.off = 0;
    }
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    if (s.empty() || s.size() > kMaxAddrsPerSet)
        s = {Addr::unknown()};
}

std::string
addrSetKey(const AddrSet &s)
{
    std::string k;
    for (const Addr &a : s) {
        if (!k.empty())
            k += ",";
        k += a.key();
    }
    return k;
}

/**
 * Does a kFlushRangeHelper(base=fl, len) call certainly persist a
 * store of @p size bytes at @p st? Exact range containment when both
 * offsets and the length are known (alignment-free: the helper
 * flushes every line the range touches); same-object trust under a
 * dynamic extent (see the kFlushRangeHelper contract note).
 */
bool
rangeCovers(const Addr &fl, const Addr &st, uint64_t size,
            const ir::Constant *len)
{
    if (fl.root == Addr::Root::Unknown || fl.root != st.root ||
        fl.index != st.index)
        return false;
    if (len && fl.knownOff && st.knownOff) {
        if (size == 0)
            return false;
        return st.off >= fl.off &&
               st.off + (int64_t)size <=
                   fl.off + (int64_t)len->value();
    }
    return true;
}

/**
 * Fold a constant-offset gep chain to (base value, byte offset) —
 * the flush optimizer's folding, duplicated for the block-local
 * cover rules. A dynamic gep terminates the walk and becomes the
 * base, so the offset is always exact relative to it.
 */
std::pair<const ir::Value *, int64_t>
foldGeps(const ir::Value *v)
{
    int64_t off = 0;
    while (auto *in = dynamic_cast<const ir::Instruction *>(v)) {
        if (in->op() != ir::Opcode::Gep)
            break;
        auto *c = dynamic_cast<const ir::Constant *>(in->operand(1));
        if (!c)
            break;
        off += (int64_t)c->value();
        v = in->operand(0);
    }
    return {v, off};
}

/**
 * Per-basic-block transfer scratch, reset at each block scan. Exact
 * pointer identity and block positions are only meaningful within
 * one straight-line execution of a block — a loop-carried pointer is
 * a different dynamic address each iteration — so everything here
 * dies at the block boundary.
 */
struct BlockLocal
{
    /** Store pointer value -> record id ("same dynamic address"). */
    std::map<const ir::Value *, std::string> stores;
    /** Record id -> block position of the store. */
    std::map<std::string, int> storeTime;
    /** Folded position of every flush seen, in block order. */
    struct FlushAt
    {
        const ir::Value *base;
        int64_t off;
        bool clflush;
        int time;
    };
    std::vector<FlushAt> flushes;
    int time = 0;

    void
    clear()
    {
        stores.clear();
        storeTime.clear();
        flushes.clear();
        time = 0;
    }
};

/** One tracked PM store site flowing through the analysis. */
struct Record
{
    std::string siteKey; ///< "origFunction#instrId"
    std::vector<trace::StackFrame> stack; ///< [0] = the store frame
    AddrSet addrs;                 ///< in the current frame's terms
    std::vector<uint32_t> objects; ///< Andersen objects; empty=unknown
    uint64_t size = 0;             ///< store bytes; 0 = unknown
    const ir::Value *ptr = nullptr; ///< origin function only
    uint8_t state = kDirty;
    uint8_t fenced = kFenceNo;

    std::string id() const { return siteKey + "|" + addrSetKey(addrs); }

    /** Small naturally-aligned stores stay within one cache line, so
     *  a single flush can retire them (see header soundness note). */
    bool mustCoverableSize() const { return size > 0 && size <= 8; }
};

/** Dataflow state: live records keyed by Record::id (ordered map so
 *  every iteration that can affect output is deterministic). */
using State = std::map<std::string, Record>;

bool
mergeRecord(State &into, const Record &r)
{
    auto [it, inserted] = into.emplace(r.id(), r);
    if (inserted)
        return true;
    uint8_t st = it->second.state | r.state;
    uint8_t fz = it->second.fenced | r.fenced;
    bool changed = st != it->second.state || fz != it->second.fenced;
    it->second.state = st;
    it->second.fenced = fz;
    return changed;
}

/** A must-flushed address (for function summaries). */
struct MustFlush
{
    Addr addr;
    bool clflush = false;
};

/** Per-basic-block dataflow fact. */
struct Fact
{
    bool reachable = false;
    State recs;
    bool fenceMust = false; ///< a fence on every path from entry
    std::map<std::string, MustFlush> mustFlushed; ///< on every path

    /** Join @p o into this; returns true when anything changed.
     *  Records union, fenceMust intersects, mustFlushed intersects —
     *  all monotone, so the fixpoint terminates. */
    bool
    mergeFrom(const Fact &o)
    {
        if (!o.reachable)
            return false;
        if (!reachable) {
            *this = o;
            return true;
        }
        bool changed = false;
        for (const auto &[id, r] : o.recs)
            changed |= mergeRecord(recs, r);
        if (fenceMust && !o.fenceMust) {
            fenceMust = false;
            changed = true;
        }
        for (auto it = mustFlushed.begin(); it != mustFlushed.end();) {
            if (o.mustFlushed.count(it->first)) {
                ++it;
            } else {
                it = mustFlushed.erase(it);
                changed = true;
            }
        }
        return changed;
    }
};

/** Bottom-up interprocedural summary of one function. */
struct Summary
{
    bool computed = false;
    bool mustFence = false; ///< every entry->ret path fences
    bool mayFence = false;
    bool mayDurPoint = false;
    /** Every path from this function's entry to any (transitive)
     *  durability point passes a fence first; vacuously true without
     *  durpoints. Lets callers retire pending flushes before
     *  reporting at a call that durpoints internally. */
    bool preDurMustFence = true;
    std::string repDurLabel; ///< representative durpoint for reports
    std::vector<trace::StackFrame> repDurStack; ///< rooted here
    std::map<std::string, MustFlush> mustFlushes; ///< all-paths, local terms
    State escaped; ///< records live at return, in this fn's terms

    /** Convergence signature for SCC iteration. */
    std::string
    signature() const
    {
        std::ostringstream os;
        os << computed << mustFence << mayFence << mayDurPoint
           << preDurMustFence << '|' << repDurLabel << '|';
        for (const trace::StackFrame &fr : repDurStack)
            os << fr.function << '@' << fr.instrId << ';';
        os << '|';
        for (const auto &[k, mf] : mustFlushes)
            os << k << ':' << mf.clflush << ';';
        os << '|';
        for (const auto &[id, r] : escaped)
            os << id << ':' << int(r.state) << '/' << int(r.fenced)
               << ';';
        return os.str();
    }
};

/** A not-yet-deduplicated candidate. */
struct RawCand
{
    pmcheck::BugKind kind;
    std::vector<trace::StackFrame> storeStack;
    uint64_t size = 0;
    std::vector<trace::StackFrame> durStack;
    std::string durLabel;
};

trace::StackFrame
frameOf(const ir::Function *f, const ir::Instruction &in)
{
    return {f->name(), in.id(), in.loc().file, in.loc().line};
}

/** The analysis driver for one module. */
class Checker
{
  public:
    Checker(const ir::Module &m, const StaticCheckerConfig &cfg)
        : m_(m), cfg_(cfg), pt_(m), cg_(m)
    {}

    StaticReport run();

  private:
    using BlockOrder = std::vector<const ir::BasicBlock *>;

    BlockOrder rpo(const ir::Function *f) const;
    const AddrSet &resolveAddrs(const ir::Function *f,
                                const ir::Value *v);
    bool isPmRelevant(const std::vector<uint32_t> &pts) const;
    bool mayTouch(const std::vector<uint32_t> &a,
                  const std::vector<uint32_t> &b) const;
    bool mustCoverPair(const Addr &fl, const Addr &st,
                       uint64_t size) const;
    bool mustCovers(const AddrSet &flush, const Record &r) const;
    static void applyMustFlush(Record &r, bool clflush);
    static void applyFence(State &recs);
    static void applyMayFence(State &recs);
    void truncateStack(std::vector<trace::StackFrame> &stack) const;
    Record rebase(const Record &er, const ir::Function *caller,
                  const ir::Instruction &call);
    Addr rebaseAddr(const Addr &a, const ir::Function *caller,
                    const ir::Instruction &call, bool &unique);
    void emitAt(const State &recs,
                const std::vector<trace::StackFrame> &durStack,
                const std::string &durLabel, bool fenceGuaranteed,
                std::vector<RawCand> &out) const;
    void transfer(const ir::Function *f, const ir::Instruction &in,
                  Fact &fact, BlockLocal &bl, Summary *sum,
                  std::vector<RawCand> *out);
    Summary analyzeFunction(const ir::Function *f,
                            std::vector<RawCand> *out);
    void computeSummaries(StaticReport &rep);

    const ir::Module &m_;
    const StaticCheckerConfig &cfg_;
    PointsTo pt_;
    CallGraph cg_;
    std::map<const ir::Function *, Summary> summaries_;
    std::map<const ir::Function *,
             std::map<const ir::Value *, AddrSet>> addrCache_;
    std::set<const ir::Value *> resolving_;
    uint64_t summariesComputed_ = 0;
};

Checker::BlockOrder
Checker::rpo(const ir::Function *f) const
{
    // Iterative DFS postorder over branch targets, then reverse.
    BlockOrder post;
    std::set<const ir::BasicBlock *> seen;
    if (!f->entry())
        return post;
    std::vector<std::pair<const ir::BasicBlock *, unsigned>> stack;
    stack.push_back({f->entry(), 0});
    seen.insert(f->entry());
    while (!stack.empty()) {
        auto &[bb, next] = stack.back();
        const ir::Instruction *term = bb->terminator();
        unsigned ntargets = 0;
        if (term && term->op() == ir::Opcode::Br)
            ntargets = 1;
        else if (term && term->op() == ir::Opcode::CondBr)
            ntargets = 2;
        if (next < ntargets) {
            const ir::BasicBlock *succ = term->target(next++);
            if (seen.insert(succ).second)
                stack.push_back({succ, 0});
        } else {
            post.push_back(bb);
            stack.pop_back();
        }
    }
    std::reverse(post.begin(), post.end());
    return post;
}

const AddrSet &
Checker::resolveAddrs(const ir::Function *f, const ir::Value *v)
{
    auto &cache = addrCache_[f];
    auto it = cache.find(v);
    if (it != cache.end())
        return it->second;
    // Guard against malformed operand cycles.
    if (!resolving_.insert(v).second)
        return cache[v] = {Addr::unknown()};

    AddrSet out;
    if (auto *arg = dynamic_cast<const ir::Argument *>(v)) {
        Addr a;
        a.root = Addr::Root::Param;
        a.index = arg->index();
        a.knownOff = true;
        out.push_back(a);
    } else if (auto *in = dynamic_cast<const ir::Instruction *>(v)) {
        switch (in->op()) {
          case ir::Opcode::PmMap: {
            uint32_t obj = pt_.objectByKey("pm:" + in->symbol());
            Addr a;
            if (obj != ~0u) {
                a.root = Addr::Root::Object;
                a.index = obj;
                a.knownOff = true;
            }
            out.push_back(a);
            break;
          }
          case ir::Opcode::Alloca: {
            uint32_t obj = pt_.objectByKey(
                format("%s#%u", f->name().c_str(), in->id()));
            Addr a;
            if (obj != ~0u) {
                a.root = Addr::Root::Object;
                a.index = obj;
                a.knownOff = true;
            }
            out.push_back(a);
            break;
          }
          case ir::Opcode::Gep: {
            AddrSet base = resolveAddrs(f, in->operand(0));
            const ir::Value *offv = in->operand(1);
            auto *c = dynamic_cast<const ir::Constant *>(offv);
            for (Addr a : base) {
                if (a.root == Addr::Root::Unknown) {
                    out.push_back(a);
                    continue;
                }
                if (c && a.knownOff)
                    a.off += (int64_t)c->value();
                else
                    a.knownOff = false;
                out.push_back(a);
            }
            break;
          }
          case ir::Opcode::Select: {
            AddrSet l = resolveAddrs(f, in->operand(1));
            AddrSet r = resolveAddrs(f, in->operand(2));
            out = l;
            out.insert(out.end(), r.begin(), r.end());
            break;
          }
          default:
            out.push_back(Addr::unknown());
            break;
        }
    }
    normalizeAddrs(out);
    resolving_.erase(v);
    return cache[v] = out;
}

bool
Checker::isPmRelevant(const std::vector<uint32_t> &pts) const
{
    if (pts.empty())
        return true; // unknown target: keep (no-false-negative bias)
    for (uint32_t o : pts)
        if (pt_.objects()[o].isPm)
            return true;
    return false;
}

bool
Checker::mayTouch(const std::vector<uint32_t> &a,
                  const std::vector<uint32_t> &b) const
{
    if (a.empty() || b.empty())
        return true;
    size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] == b[j])
            return true;
        if (a[i] < b[j])
            i++;
        else
            j++;
    }
    return false;
}

bool
Checker::mustCoverPair(const Addr &fl, const Addr &st,
                       uint64_t size) const
{
    if (size == 0 || size > 8)
        return false;
    if (fl.root == Addr::Root::Unknown ||
        fl.root != st.root || fl.index != st.index)
        return false;
    if (!fl.knownOff || !st.knownOff)
        return false;
    if (fl.root == Addr::Root::Object &&
        pt_.objects()[fl.index].isPm) {
        // PM region bases are 64-byte aligned (pmem::PmPool), so
        // offsets decide the line; the store must fit the flush line.
        int64_t fline = fl.off >> kLineShift;
        return (st.off >> kLineShift) == fline &&
               ((st.off + (int64_t)size - 1) >> kLineShift) == fline;
    }
    // Unknown base alignment (params, volatile objects): only an
    // exact-offset match is certainly the same line.
    return fl.off == st.off;
}

bool
Checker::mustCovers(const AddrSet &flush, const Record &r) const
{
    if (!r.mustCoverableSize())
        return false;
    for (const Addr &st : r.addrs)
        for (const Addr &fl : flush)
            if (!mustCoverPair(fl, st, r.size))
                return false;
    return !r.addrs.empty() && !flush.empty();
}

void
Checker::applyMustFlush(Record &r, bool clflush)
{
    if (clflush) {
        r.state = kDone; // clflush persists the line immediately
        return;
    }
    uint8_t ns = r.state & kDone;
    if (r.state & (kDirty | kPending))
        ns |= kPending;
    r.state = ns;
}

void
Checker::applyFence(State &recs)
{
    for (auto &[id, r] : recs) {
        if (r.state & kPending)
            r.state = (r.state & ~kPending) | kDone;
        r.fenced = kFenceYes;
    }
}

void
Checker::applyMayFence(State &recs)
{
    for (auto &[id, r] : recs) {
        if (r.state & kPending)
            r.state |= kDone;
        r.fenced |= kFenceYes;
    }
}

void
Checker::truncateStack(std::vector<trace::StackFrame> &stack) const
{
    if (stack.size() > cfg_.maxStackDepth)
        stack.resize(cfg_.maxStackDepth); // keep innermost frames
}

Addr
Checker::rebaseAddr(const Addr &a, const ir::Function *caller,
                    const ir::Instruction &call, bool &unique)
{
    unique = true;
    if (a.root != Addr::Root::Param)
        return a;
    if (a.index >= call.numOperands())
        return Addr::unknown();
    const AddrSet &bases = resolveAddrs(caller, call.operand(a.index));
    if (bases.size() != 1)
        unique = false;
    Addr c = bases[0];
    if (c.root == Addr::Root::Unknown)
        return c;
    if (c.knownOff && a.knownOff)
        c.off += a.off;
    else
        c.knownOff = false;
    return c;
}

Record
Checker::rebase(const Record &er, const ir::Function *caller,
                const ir::Instruction &call)
{
    Record r = er;
    r.ptr = nullptr;
    AddrSet na;
    for (const Addr &a : er.addrs) {
        if (a.root != Addr::Root::Param) {
            na.push_back(a);
            continue;
        }
        if (a.index >= call.numOperands()) {
            na.push_back(Addr::unknown());
            continue;
        }
        for (Addr base : resolveAddrs(caller, call.operand(a.index))) {
            if (base.root == Addr::Root::Unknown) {
                na.push_back(base);
                continue;
            }
            if (base.knownOff && a.knownOff)
                base.off += a.off;
            else
                base.knownOff = false;
            na.push_back(base);
        }
    }
    normalizeAddrs(na);
    r.addrs = na;
    r.stack.push_back(frameOf(caller, call));
    truncateStack(r.stack);
    return r;
}

void
Checker::emitAt(const State &recs,
                const std::vector<trace::StackFrame> &durStack,
                const std::string &durLabel, bool fenceGuaranteed,
                std::vector<RawCand> &out) const
{
    for (const auto &[id, r] : recs) {
        uint8_t st = r.state;
        uint8_t fz = r.fenced;
        if (fenceGuaranteed) {
            if (st & kPending)
                st = (st & ~kPending) | kDone;
            fz = kFenceYes;
        }
        if (st & kDirty) {
            if (fz & kFenceYes)
                out.push_back({pmcheck::BugKind::MissingFlush,
                               r.stack, r.size, durStack, durLabel});
            if (fz & kFenceNo)
                out.push_back({pmcheck::BugKind::MissingFlushFence,
                               r.stack, r.size, durStack, durLabel});
        }
        if (st & kPending)
            out.push_back({pmcheck::BugKind::MissingFence, r.stack,
                           r.size, durStack, durLabel});
    }
}

void
Checker::transfer(const ir::Function *f, const ir::Instruction &in,
                  Fact &fact, BlockLocal &bl, Summary *sum,
                  std::vector<RawCand> *out)
{
    bl.time++;
    switch (in.op()) {
      case ir::Opcode::Store:
      case ir::Opcode::Memcpy:
      case ir::Opcode::Memset:
      case ir::Opcode::AtomicStore:
      case ir::Opcode::AtomicRmw: {
        // Atomic PM writes dirty their line exactly like plain
        // stores; ordering only affects scheduler visibility.
        bool is_store = in.op() == ir::Opcode::Store;
        bool sized = is_store ||
                     in.op() == ir::Opcode::AtomicStore ||
                     in.op() == ir::Opcode::AtomicRmw;
        const ir::Value *ptr = in.operand(
            is_store || in.op() == ir::Opcode::AtomicStore ? 1 : 0);
        const std::vector<uint32_t> &pts = pt_.pointsTo(ptr);
        if (!isPmRelevant(pts))
            break;
        Record r;
        r.siteKey = format("%s#%u", f->name().c_str(), in.id());
        r.stack = {frameOf(f, in)};
        r.addrs = resolveAddrs(f, ptr);
        r.objects = pts;
        if (sized) {
            r.size = in.accessSize();
        } else if (auto *len = dynamic_cast<const ir::Constant *>(
                       in.operand(2))) {
            r.size = len->value();
        }
        if (is_store && in.nonTemporal())
            r.state = kPending; // streaming stores bypass the cache
        r.ptr = ptr;
        std::string id = r.id();
        fact.recs[id] = r; // strong update: a re-store re-dirties
        bl.stores[ptr] = id;
        bl.storeTime[id] = bl.time;
        break;
      }
      case ir::Opcode::Flush: {
        const ir::Value *ptr = in.operand(0);
        const AddrSet &fa = resolveAddrs(f, ptr);
        const std::vector<uint32_t> &fpts = pt_.pointsTo(ptr);
        bool clflush = in.flushKind() == ir::FlushKind::Clflush;
        for (auto &[id, r] : fact.recs) {
            bool must = false;
            // Same pointer value, stored earlier in this very block
            // execution: certainly the same dynamic address.
            auto ls = bl.stores.find(ptr);
            if (ls != bl.stores.end() && ls->second == id &&
                r.mustCoverableSize())
                must = true;
            if (!must && mustCovers(fa, r))
                must = true;
            if (must)
                applyMustFlush(r, clflush);
            else if (mayTouch(fpts, r.objects))
                r.state |= clflush ? kDone : kPending;
        }
        // Block-local folded-pointer cover — the rules the flush
        // optimizer's sink-and-merge pass is justified by. For a
        // store at folded (base, s) seen earlier in this block run:
        // a later flush at the exact folded address retires it, and
        // so does a *pair* of later flushes at offsets a <= s <= b
        // with b - a < 64 — line(s) then coincides with line(a) or
        // line(b) for every base alignment.
        {
            auto [fb, foff] = foldGeps(ptr);
            for (auto &[id, r] : fact.recs) {
                if (!r.ptr || !r.mustCoverableSize())
                    continue;
                auto ts = bl.storeTime.find(id);
                if (ts == bl.storeTime.end())
                    continue;
                auto [sb, soff] = foldGeps(r.ptr);
                if (sb != fb)
                    continue;
                if (soff == foff) {
                    applyMustFlush(r, clflush);
                    continue;
                }
                for (const auto &pf : bl.flushes) {
                    if (pf.base != fb || pf.time <= ts->second)
                        continue;
                    int64_t lo = std::min(pf.off, foff);
                    int64_t hi = std::max(pf.off, foff);
                    if (lo <= soff && soff <= hi && hi - lo < 64) {
                        applyMustFlush(r, clflush && pf.clflush);
                        break;
                    }
                }
            }
            bl.flushes.push_back({fb, foff, clflush, bl.time});
        }
        if (fa.size() == 1 && fa[0].root != Addr::Root::Unknown &&
            fa[0].knownOff &&
            fact.mustFlushed.size() < kMaxMustFlushes)
            fact.mustFlushed[fa[0].key()] = {fa[0], clflush};
        break;
      }
      case ir::Opcode::Fence:
        applyFence(fact.recs);
        fact.fenceMust = true;
        if (sum)
            sum->mayFence = true;
        break;
      case ir::Opcode::DurPoint:
        if (sum) {
            sum->mayDurPoint = true;
            if (sum->repDurStack.empty()) {
                sum->repDurLabel = in.symbol();
                sum->repDurStack = {frameOf(f, in)};
            }
            sum->preDurMustFence &= fact.fenceMust;
        }
        if (out)
            emitAt(fact.recs, {frameOf(f, in)}, in.symbol(), false,
                   *out);
        break;
      case ir::Opcode::Call: {
        const ir::Function *callee = in.callee();
        if (callee && callee->name() == kFlushRangeHelper) {
            const ir::Value *base = in.operand(0);
            const AddrSet &fa = resolveAddrs(f, base);
            const std::vector<uint32_t> &fpts = pt_.pointsTo(base);
            auto *len =
                dynamic_cast<const ir::Constant *>(in.operand(1));
            for (auto &[id, r] : fact.recs) {
                bool must = !fa.empty() && !r.addrs.empty();
                for (const Addr &st : r.addrs)
                    for (const Addr &fl : fa)
                        must &= rangeCovers(fl, st, r.size, len);
                if (must)
                    applyMustFlush(r, false);
                else if (mayTouch(fpts, r.objects))
                    r.state |= kPending;
            }
            break;
        }
        auto cs_it = summaries_.find(callee);
        if (cs_it == summaries_.end() || !cs_it->second.computed)
            break; // unanalyzed (first SCC iteration): no effect yet
        const Summary &cs = cs_it->second;
        if (cs.mayDurPoint) {
            if (sum) {
                sum->mayDurPoint = true;
                if (sum->repDurStack.empty()) {
                    sum->repDurLabel = cs.repDurLabel;
                    sum->repDurStack = cs.repDurStack;
                    sum->repDurStack.push_back(frameOf(f, in));
                    truncateStack(sum->repDurStack);
                }
                sum->preDurMustFence &=
                    fact.fenceMust || cs.preDurMustFence;
            }
            if (out) {
                std::vector<trace::StackFrame> ds = cs.repDurStack;
                ds.push_back(frameOf(f, in));
                truncateStack(ds);
                emitAt(fact.recs, ds, cs.repDurLabel,
                       cs.preDurMustFence, *out);
            }
        }
        if (sum && cs.mayFence)
            sum->mayFence = true;
        // Apply the callee's guaranteed effects to existing records.
        // Fence first, then flushes as pending-only: the flush/fence
        // order inside the callee is unknown, and this order never
        // over-promises persistence.
        if (cs.mustFence) {
            applyFence(fact.recs);
            fact.fenceMust = true;
        } else if (cs.mayFence) {
            applyMayFence(fact.recs);
        }
        for (const auto &[key, mf] : cs.mustFlushes) {
            bool unique = true;
            Addr fl = rebaseAddr(mf.addr, f, in, unique);
            if (!unique || fl.root == Addr::Root::Unknown ||
                !fl.knownOff)
                continue;
            for (auto &[id, r] : fact.recs)
                if (mustCovers({fl}, r))
                    applyMustFlush(r, false);
            if (fact.mustFlushed.size() < kMaxMustFlushes)
                fact.mustFlushed[fl.key()] = {fl, false};
        }
        // Merge the records that escape from the callee, rebased
        // through this call site's arguments.
        for (const auto &[id, er] : cs.escaped)
            mergeRecord(fact.recs, rebase(er, f, in));
        break;
      }
      case ir::Opcode::ThreadSpawn: {
        // The spawned function runs under an unknown interleaving
        // relative to this thread, so none of its guaranteed
        // flush/fence effects can be credited at the spawn point.
        // Its escaped (unpersisted) records are merged here — the
        // over-approximation keeps the no-false-negative bias —
        // and its durability points surface candidates against the
        // spawner's live records, never fence-guaranteed.
        auto ts_it = summaries_.find(in.callee());
        if (ts_it == summaries_.end() || !ts_it->second.computed)
            break;
        const Summary &cs = ts_it->second;
        if (cs.mayDurPoint) {
            if (sum)
                sum->mayDurPoint = true;
            if (out) {
                std::vector<trace::StackFrame> ds = cs.repDurStack;
                ds.push_back(frameOf(f, in));
                truncateStack(ds);
                emitAt(fact.recs, ds, cs.repDurLabel, false, *out);
            }
        }
        for (const auto &[id, er] : cs.escaped)
            mergeRecord(fact.recs, rebase(er, f, in));
        break;
      }
      case ir::Opcode::Ret:
        if (sum) {
            sum->mustFence &= fact.fenceMust;
            for (auto it = sum->mustFlushes.begin();
                 it != sum->mustFlushes.end();) {
                if (fact.mustFlushed.count(it->first))
                    ++it;
                else
                    it = sum->mustFlushes.erase(it);
            }
            for (const auto &[id, r] : fact.recs) {
                if (r.state == kDone)
                    continue; // fully persisted: nothing to report
                if (!isPmRelevant(r.objects))
                    continue;
                if (sum->escaped.size() < kMaxEscapedRecords) {
                    Record er = r;
                    er.ptr = nullptr;
                    mergeRecord(sum->escaped, er);
                }
            }
        }
        break;
      default:
        break;
    }
}

Summary
Checker::analyzeFunction(const ir::Function *f,
                         std::vector<RawCand> *out)
{
    summariesComputed_++;
    BlockOrder order = rpo(f);
    std::map<const ir::BasicBlock *, size_t> index;
    for (size_t i = 0; i < order.size(); i++)
        index[order[i]] = i;

    std::vector<Fact> facts(order.size());
    if (!order.empty())
        facts[0].reachable = true;

    // Fixpoint over the record lattice.
    std::set<size_t> worklist;
    if (!order.empty())
        worklist.insert(0);
    BlockLocal bl;
    while (!worklist.empty()) {
        size_t bi = *worklist.begin();
        worklist.erase(worklist.begin());
        Fact fact = facts[bi];
        bl.clear();
        for (const auto &instr : *order[bi])
            transfer(f, *instr, fact, bl, nullptr, nullptr);
        const ir::Instruction *term = order[bi]->terminator();
        unsigned ntargets = 0;
        if (term && term->op() == ir::Opcode::Br)
            ntargets = 1;
        else if (term && term->op() == ir::Opcode::CondBr)
            ntargets = 2;
        for (unsigned t = 0; t < ntargets; t++) {
            auto target = index.find(term->target(t));
            if (target == index.end())
                continue;
            if (facts[target->second].mergeFrom(fact))
                worklist.insert(target->second);
        }
    }

    // Summary (and optionally candidate) pass over converged facts.
    // The first reachable Ret seeds mustFence/mustFlushes; later Rets
    // intersect into them (via the Ret case in transfer()).
    bool first_ret = true;
    Summary collected;
    collected.computed = true;
    for (size_t bi = 0; bi < order.size(); bi++) {
        if (!facts[bi].reachable)
            continue;
        Fact fact = facts[bi];
        bl.clear();
        for (const auto &instr : *order[bi]) {
            if (instr->op() == ir::Opcode::Ret) {
                if (first_ret) {
                    collected.mustFlushes = fact.mustFlushed;
                    collected.mustFence = fact.fenceMust;
                    first_ret = false;
                    // Record escapes via the shared transfer below.
                }
            }
            transfer(f, *instr, fact, bl, &collected, out);
        }
    }
    collected.mustFence &= !first_ret; // no reachable ret: no promise
    if (first_ret)
        collected.mustFlushes.clear();
    return collected;
}

void
Checker::computeSummaries(StaticReport &rep)
{
    // Tarjan SCCs over the call graph, functions visited in module
    // order and callees in name order so the result is deterministic.
    const auto &fns = m_.functions();
    std::map<const ir::Function *, int> idx, low;
    std::set<const ir::Function *> onStack;
    std::vector<const ir::Function *> stack;
    std::vector<std::vector<const ir::Function *>> sccs;
    int counter = 0;

    auto sortedCallees = [&](const ir::Function *f) {
        std::vector<ir::Function *> cs(cg_.callees(f).begin(),
                                       cg_.callees(f).end());
        std::sort(cs.begin(), cs.end(),
                  [](const ir::Function *a, const ir::Function *b) {
                      return a->name() < b->name();
                  });
        return cs;
    };

    // Iterative Tarjan (explicit frames to survive deep call chains).
    struct DfsFrame
    {
        const ir::Function *f;
        std::vector<ir::Function *> callees;
        size_t next = 0;
    };
    for (const auto &root : fns) {
        if (idx.count(root.get()))
            continue;
        std::vector<DfsFrame> dfs;
        dfs.push_back({root.get(), sortedCallees(root.get())});
        idx[root.get()] = low[root.get()] = counter++;
        stack.push_back(root.get());
        onStack.insert(root.get());
        while (!dfs.empty()) {
            DfsFrame &fr = dfs.back();
            if (fr.next < fr.callees.size()) {
                const ir::Function *c = fr.callees[fr.next++];
                if (!idx.count(c)) {
                    idx[c] = low[c] = counter++;
                    stack.push_back(c);
                    onStack.insert(c);
                    dfs.push_back({c, sortedCallees(c)});
                } else if (onStack.count(c)) {
                    low[fr.f] = std::min(low[fr.f], idx[c]);
                }
            } else {
                if (low[fr.f] == idx[fr.f]) {
                    std::vector<const ir::Function *> scc;
                    for (;;) {
                        const ir::Function *t = stack.back();
                        stack.pop_back();
                        onStack.erase(t);
                        scc.push_back(t);
                        if (t == fr.f)
                            break;
                    }
                    sccs.push_back(std::move(scc));
                }
                const ir::Function *done = fr.f;
                dfs.pop_back();
                if (!dfs.empty())
                    low[dfs.back().f] =
                        std::min(low[dfs.back().f], low[done]);
            }
        }
    }
    rep.sccCount = sccs.size();

    // Tarjan emits SCCs callees-first: exactly bottom-up order.
    for (auto &scc : sccs) {
        std::sort(scc.begin(), scc.end(),
                  [&](const ir::Function *a, const ir::Function *b) {
                      return idx[a] < idx[b];
                  });
        bool cyclic = scc.size() > 1 ||
                      cg_.callees(scc[0]).count(
                          const_cast<ir::Function *>(scc[0]));
        if (!cyclic) {
            summaries_[scc[0]] = analyzeFunction(scc[0], nullptr);
            continue;
        }
        for (int it = 0; it < kMaxSccIterations; it++) {
            bool changed = false;
            for (const ir::Function *f : scc) {
                Summary s = analyzeFunction(f, nullptr);
                if (s.signature() != summaries_[f].signature())
                    changed = true;
                summaries_[f] = std::move(s);
            }
            if (!changed)
                break;
        }
    }
    rep.summariesComputed = summariesComputed_;
}

StaticReport
Checker::run()
{
    StaticReport rep;
    rep.functionsTotal = m_.functions().size();
    computeSummaries(rep);

    const ir::Function *entry = m_.findFunction(cfg_.entry);
    std::vector<const ir::Function *> reachable;
    for (const auto &f : m_.functions())
        if (entry &&
            (f.get() == entry || cg_.reaches(entry, f.get())))
            reachable.push_back(f.get());
    rep.functionsReachable = reachable.size();

    // Census over the reachable slice.
    for (const ir::Function *f : reachable) {
        for (const auto &bb : f->blocks()) {
            for (const auto &in : *bb) {
                switch (in->op()) {
                  case ir::Opcode::Flush:
                    rep.flushesSeen++;
                    break;
                  case ir::Opcode::Fence:
                    rep.fencesSeen++;
                    break;
                  case ir::Opcode::DurPoint:
                    rep.durPointsSeen++;
                    break;
                  case ir::Opcode::Store:
                  case ir::Opcode::Memcpy:
                  case ir::Opcode::Memset:
                  case ir::Opcode::AtomicStore:
                  case ir::Opcode::AtomicRmw: {
                    bool ptr_at_1 =
                        in->op() == ir::Opcode::Store ||
                        in->op() == ir::Opcode::AtomicStore;
                    const ir::Value *ptr =
                        in->operand(ptr_at_1 ? 1 : 0);
                    if (isPmRelevant(pt_.pointsTo(ptr)))
                        rep.storesTracked++;
                    break;
                  }
                  default:
                    break;
                }
            }
        }
    }

    // Candidate collection: re-run each reachable function's analysis
    // with the converged summaries and harvest at durability points.
    std::vector<RawCand> raw;
    for (const ir::Function *f : reachable)
        analyzeFunction(f, &raw);
    rep.summariesComputed = summariesComputed_;

    // Records still unpersisted when the entry returns surface at the
    // VM's synthetic exit durability point.
    if (cfg_.checkExitDurPoint && entry) {
        auto it = summaries_.find(entry);
        if (it != summaries_.end())
            emitAt(it->second.escaped,
                   {{entry->name(), 0xFFFFFFFEu, "", 0}}, "exit",
                   false, raw);
    }

    // Deduplicate by (store site, kind), keeping the candidate with
    // the smallest presentation key, then sort for stable output.
    auto presentationKey = [](const RawCand &c) {
        return trace::stackToString(c.storeStack) + "\x01" +
               c.durLabel + "\x01" + trace::stackToString(c.durStack);
    };
    std::map<std::pair<std::string, int>, RawCand> best;
    for (const RawCand &c : raw) {
        std::string site = c.storeStack.empty()
                               ? std::string()
                               : format("%s#%u",
                                        c.storeStack[0].function.c_str(),
                                        c.storeStack[0].instrId);
        auto key = std::make_pair(site, (int)c.kind);
        auto [it, inserted] = best.emplace(key, c);
        if (!inserted &&
            presentationKey(c) < presentationKey(it->second))
            it->second = c;
    }
    for (auto &[key, c] : best) {
        StaticCandidate sc;
        sc.kind = c.kind;
        sc.storeStack = std::move(c.storeStack);
        sc.storeSize = c.size;
        sc.durStack = std::move(c.durStack);
        sc.durLabel = std::move(c.durLabel);
        rep.candidates.push_back(std::move(sc));
    }
    std::sort(rep.candidates.begin(), rep.candidates.end(),
              [](const StaticCandidate &a, const StaticCandidate &b) {
                  return std::make_tuple(a.storeStack[0].function,
                                         a.storeStack[0].instrId,
                                         (int)a.kind, a.durLabel) <
                         std::make_tuple(b.storeStack[0].function,
                                         b.storeStack[0].instrId,
                                         (int)b.kind, b.durLabel);
              });
    return rep;
}

} // namespace

std::string
StaticCandidate::storeSiteKey() const
{
    if (storeStack.empty())
        return "";
    return format("%s#%u", storeStack[0].function.c_str(),
                  storeStack[0].instrId);
}

std::string
StaticCandidate::str() const
{
    return format("%s at %s (dur \"%s\")",
                  pmcheck::bugKindName(kind),
                  storeSiteKey().c_str(), durLabel.c_str());
}

bool
StaticReport::coversStoreSite(const std::string &key) const
{
    for (const StaticCandidate &c : candidates)
        if (c.storeSiteKey() == key)
            return true;
    return false;
}

std::vector<std::string>
StaticReport::durLabels() const
{
    std::set<std::string> labels;
    for (const StaticCandidate &c : candidates)
        if (c.durLabel != "exit")
            labels.insert(c.durLabel);
    return {labels.begin(), labels.end()};
}

pmcheck::Report
StaticReport::toReport() const
{
    pmcheck::Report r;
    r.pmStoresSeen = storesTracked;
    r.flushesSeen = flushesSeen;
    r.fencesSeen = fencesSeen;
    r.durPointsSeen = durPointsSeen;
    for (const StaticCandidate &c : candidates) {
        pmcheck::Bug b;
        b.kind = c.kind;
        b.storeStack = c.storeStack;
        b.size = c.storeSize;
        b.durStack = c.durStack;
        b.durLabel = c.durLabel;
        r.bugs.push_back(std::move(b));
    }
    return r;
}

void
StaticReport::exportMetrics(support::MetricsRegistry &reg,
                            const std::string &prefix) const
{
    reg.counter(prefix + ".runs").inc(1);
    reg.counter(prefix + ".functions").inc(functionsTotal);
    reg.counter(prefix + ".functions_reachable")
        .inc(functionsReachable);
    reg.counter(prefix + ".sccs").inc(sccCount);
    reg.counter(prefix + ".summaries").inc(summariesComputed);
    reg.counter(prefix + ".stores_tracked").inc(storesTracked);
    reg.counter(prefix + ".flushes").inc(flushesSeen);
    reg.counter(prefix + ".fences").inc(fencesSeen);
    reg.counter(prefix + ".durpoints").inc(durPointsSeen);
    reg.counter(prefix + ".candidates.total").inc(candidates.size());
    std::map<pmcheck::BugKind, uint64_t> byKind;
    for (const StaticCandidate &c : candidates)
        byKind[c.kind]++;
    for (const auto &[kind, count] : byKind)
        reg.counter(prefix + ".candidates." +
                    pmcheck::bugKindName(kind))
            .inc(count);
}

std::string
StaticReport::writeText() const
{
    std::ostringstream os;
    os << format("STATIC-SUMMARY candidates=%zu functions=%llu "
                 "reachable=%llu sccs=%llu stores=%llu flushes=%llu "
                 "fences=%llu durpoints=%llu\n",
                 candidates.size(),
                 (unsigned long long)functionsTotal,
                 (unsigned long long)functionsReachable,
                 (unsigned long long)sccCount,
                 (unsigned long long)storesTracked,
                 (unsigned long long)flushesSeen,
                 (unsigned long long)fencesSeen,
                 (unsigned long long)durPointsSeen);
    for (const StaticCandidate &c : candidates) {
        os << format("SBUG kind=%s size=%llu label=\"%s\"\n",
                     pmcheck::bugKindName(c.kind),
                     (unsigned long long)c.storeSize,
                     c.durLabel.c_str());
        os << "  XSTACK " << trace::stackToString(c.storeStack)
           << "\n";
        os << "  ISTACK " << trace::stackToString(c.durStack) << "\n";
    }
    return os.str();
}

StaticReport
checkDurability(const ir::Module &m, const StaticCheckerConfig &cfg)
{
    return Checker(m, cfg).run();
}

} // namespace hippo::analysis
