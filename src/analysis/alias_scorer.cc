#include "analysis/alias_scorer.hh"

#include <algorithm>

#include "ir/module.hh"
#include "support/logging.hh"

namespace hippo::analysis
{

const char *
aaModeName(AaMode m)
{
    return m == AaMode::FullAA ? "Full-AA" : "Trace-AA";
}

AliasScorer::AliasScorer(const PointsTo &pts, AaMode mode,
                         const trace::Trace &trace,
                         const vm::DynPointsTo *dyn)
    : pts_(pts), mode_(mode), dyn_(dyn)
{
    hippo_assert(mode != AaMode::TraceAA || dyn,
                 "Trace-AA needs the dynamic points-to table");

    // Bridge trace-object ids to analysis objects via site keys.
    const auto &tobjs = trace.objects();
    for (uint32_t t = 0; t < tobjs.size(); t++) {
        uint32_t a = pts_.objectByKey(tobjs[t].site);
        if (a != ~0u)
            traceToAnalysis_[t] = a;
    }

    if (mode_ == AaMode::FullAA) {
        // Static marking: PmMap allocation sites are PM.
        for (uint32_t i = 0; i < pts_.objects().size(); i++) {
            if (pts_.objects()[i].isPm)
                pmObjects_.insert(i);
        }
    } else {
        // Trace marking: objects with a PM modification event.
        for (const trace::Event &ev : trace.events()) {
            if (ev.kind == trace::EventKind::Store && ev.isPm &&
                ev.objectId != ~0u) {
                auto it = traceToAnalysis_.find(ev.objectId);
                if (it != traceToAnalysis_.end())
                    pmObjects_.insert(it->second);
            }
        }
    }
}

std::vector<uint32_t>
AliasScorer::objectSet(const std::string &function,
                       const ir::Value *v) const
{
    if (mode_ == AaMode::FullAA) {
        (void)function;
        return pts_.pointsTo(v);
    }

    uint64_t key;
    switch (v->kind()) {
      case ir::ValueKind::Argument:
        key = vm::DynPointsTo::argKey(
            static_cast<const ir::Argument *>(v)->index());
        break;
      case ir::ValueKind::Instruction:
        key = vm::DynPointsTo::instrKey(
            static_cast<const ir::Instruction *>(v)->id());
        break;
      default:
        return {};
    }
    std::vector<uint32_t> out;
    for (uint32_t t : dyn_->lookup(function, key)) {
        auto it = traceToAnalysis_.find(t);
        if (it != traceToAnalysis_.end())
            out.push_back(it->second);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

int64_t
AliasScorer::score(const std::string &function,
                   const ir::Value *v) const
{
    int64_t pm = 0, non_pm = 0;
    for (uint32_t o : objectSet(function, v)) {
        if (pmObjects_.count(o))
            pm++;
        else
            non_pm++;
    }
    return pm - non_pm;
}

bool
AliasScorer::mayPointToPm(const std::string &function,
                          const ir::Value *v) const
{
    for (uint32_t o : objectSet(function, v)) {
        if (pmObjects_.count(o))
            return true;
    }
    return false;
}

} // namespace hippo::analysis
