#include "ycsb/concurrent.hh"

#include <algorithm>

#include "support/logging.hh"

namespace hippo::ycsb
{

namespace
{

/**
 * Stripe one insert-range key of client @p c into the merged
 * keyspace. Keys below recordCount (the loaded records) are shared
 * by all clients and pass through unchanged.
 */
uint64_t
stripeKey(uint64_t key, uint64_t record_count, unsigned clients,
          unsigned c)
{
    if (key < record_count)
        return key;
    return record_count + (key - record_count) * clients + c;
}

} // namespace

ConcurrentOps
buildLoadOps(uint64_t record_count, unsigned clients)
{
    clients = std::max(clients, 1u);
    ConcurrentOps out;
    out.ops.reserve(record_count);
    out.keySpace = record_count;
    // Client c owns keys {k : k % clients == c} ascending; the
    // op-index-major round-robin merge of those streams is the
    // serial sequence 0, 1, 2, ... at every client count, so we
    // emit it directly.
    for (uint64_t k = 0; k < record_count; k++)
        out.ops.push_back(Op{OpType::Insert, k, 0});
    return out;
}

ConcurrentOps
buildConcurrentOps(const ConcurrentSpec &spec)
{
    unsigned clients = std::max(spec.clients, 1u);
    hippo_assert(spec.workload != Workload::Load,
                 "use buildLoadOps for the load phase");

    // Per-client op budgets: opCount split as evenly as possible,
    // low client indices take the remainder.
    std::vector<uint64_t> budget(clients, spec.opCount / clients);
    for (unsigned c = 0; c < spec.opCount % clients; c++)
        budget[c]++;

    // Generate each client's private stream from its derived seed.
    // This loop is deliberately serial: generation is cheap, and
    // the merged stream must not depend on scheduling.
    std::vector<std::vector<Op>> streams(clients);
    uint64_t key_space = spec.recordCount;
    for (unsigned c = 0; c < clients; c++) {
        Generator gen(spec.workload, spec.recordCount, budget[c],
                      deriveSeed(spec.seed, c));
        streams[c].reserve(budget[c]);
        while (gen.hasNext()) {
            Op op = gen.next();
            op.key = stripeKey(op.key, spec.recordCount, clients, c);
            uint64_t top = op.key + 1;
            if (op.type == OpType::Scan)
                top = op.key + std::max<uint64_t>(op.scanLength, 1);
            key_space = std::max(key_space, top);
            streams[c].push_back(op);
        }
    }

    // Deterministic closed-loop merge: round r takes one op from
    // every client that still has one, client index minor.
    ConcurrentOps out;
    out.ops.reserve(spec.opCount);
    out.keySpace = key_space;
    uint64_t rounds = clients ? budget[0] : 0;
    for (uint64_t r = 0; r < rounds; r++)
        for (unsigned c = 0; c < clients; c++)
            if (r < streams[c].size())
                out.ops.push_back(streams[c][r]);
    hippo_assert(out.ops.size() == spec.opCount,
                 "merge dropped ops: %zu != %llu", out.ops.size(),
                 (unsigned long long)spec.opCount);
    return out;
}

} // namespace hippo::ycsb
