/**
 * @file
 * YCSB core-workload generator (Cooper et al., SoCC'10), used to
 * drive the Redis-style key-value store for the Fig. 4 experiment.
 * Implements the standard Load + A–F workload mixes with the
 * scrambled-Zipfian, latest, and uniform request distributions of the
 * reference YCSB implementation.
 */

#ifndef HIPPO_YCSB_YCSB_HH
#define HIPPO_YCSB_YCSB_HH

#include <cstdint>
#include <string>

#include "support/random.hh"

namespace hippo::ycsb
{

/** Operation types issued by the generator. */
enum class OpType : uint8_t
{
    Insert,
    Read,
    Update,
    Scan,
    ReadModifyWrite,
};

const char *opTypeName(OpType t);

/** One generated operation. */
struct Op
{
    OpType type = OpType::Read;
    uint64_t key = 0;
    uint64_t scanLength = 0; ///< Scan only
};

/** The standard workloads. */
enum class Workload : uint8_t { Load, A, B, C, D, E, F };

const char *workloadName(Workload w);

/** Proportions and distribution of one workload. */
struct WorkloadSpec
{
    double readProportion = 0;
    double updateProportion = 0;
    double insertProportion = 0;
    double scanProportion = 0;
    double rmwProportion = 0;
    enum class Dist : uint8_t { Uniform, Zipfian, Latest } dist =
        Dist::Zipfian;
    uint64_t maxScanLength = 100;
};

/** The reference mix for @p w (YCSB core workload properties). */
WorkloadSpec specFor(Workload w);

/**
 * Zipfian long-tail generator over [0, n) with the YCSB constant
 * theta = 0.99, using the Gray et al. rejection-free method.
 */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(uint64_t n, double theta = 0.99);

    uint64_t next(Rng &rng);

    /** Grow the item range (used by the latest distribution). */
    void setItemCount(uint64_t n);

  private:
    void computeConstants();

    uint64_t items_;
    double theta_;
    double zetan_ = 0;
    double alpha_ = 0;
    double eta_ = 0;
    double zeta2theta_ = 0;
};

/**
 * Generates the operation stream for one workload run. Keys are
 * dense integers [0, recordCount + inserts); hot keys under Zipfian
 * are scattered with a hash as in YCSB's scrambled-Zipfian.
 */
class Generator
{
  public:
    /**
     * @param w Workload.
     * @param record_count Records loaded before the run.
     * @param op_count Operations to generate.
     * @param seed RNG seed (deterministic streams per seed).
     */
    Generator(Workload w, uint64_t record_count, uint64_t op_count,
              uint64_t seed);

    /** True until op_count operations have been produced. */
    bool hasNext() const { return produced_ < opCount_; }

    /** Produce the next operation. */
    Op next();

    uint64_t opCount() const { return opCount_; }

    /** Records present after all inserts complete. */
    uint64_t finalRecordCount() const;

  private:
    uint64_t chooseKey();

    Workload workload_;
    WorkloadSpec spec_;
    uint64_t recordCount_;
    uint64_t opCount_;
    uint64_t produced_ = 0;
    uint64_t insertCursor_; ///< next key for inserts
    Rng rng_;
    ZipfianGenerator zipf_;
    ZipfianGenerator scanLen_;
};

} // namespace hippo::ycsb

#endif // HIPPO_YCSB_YCSB_HH
