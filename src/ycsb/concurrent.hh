/**
 * @file
 * Closed-loop concurrent YCSB driver front end: builds the merged
 * operation stream that C independent clients would issue against
 * the sharded store.
 *
 * Determinism contract (the whole point of this file): the merged
 * stream depends ONLY on (workload, recordCount, opCount, clients,
 * seed) — never on thread scheduling — so the per-shard op sequence
 * downstream of the router is byte-identical at any `--jobs`
 * setting and shard count. Three ingredients make that true:
 *
 *  1. per-client RNG streams: client c draws from a Generator
 *     seeded with deriveSeed(seed, c) (one splitmix64 step), so its
 *     op sequence is a pure function of the spec;
 *  2. deterministic merge: ops are interleaved round-robin, op
 *     index major / client index minor, which models C closed-loop
 *     clients advancing in lockstep;
 *  3. insert-key striping: client c remaps every generated
 *     insert-range key k >= recordCount to
 *     recordCount + (k - recordCount) * clients + c, so concurrent
 *     inserters never collide and the merged keyspace stays dense.
 *
 * The load phase stripes the same way records are striped in the
 * reference YCSB client: client c loads keys {k : k % clients == c}
 * in ascending order, so the round-robin merge is exactly the
 * serial load order 0, 1, 2, ... at every client count.
 */

#ifndef HIPPO_YCSB_CONCURRENT_HH
#define HIPPO_YCSB_CONCURRENT_HH

#include <cstdint>
#include <vector>

#include "ycsb/ycsb.hh"

namespace hippo::ycsb
{

/** Spec of one concurrent closed-loop run. */
struct ConcurrentSpec
{
    Workload workload = Workload::A;
    uint64_t recordCount = 0;
    uint64_t opCount = 0; ///< total across all clients
    unsigned clients = 1;
    uint64_t seed = 1;
};

/** The merged stream plus the keyspace it touches. */
struct ConcurrentOps
{
    std::vector<Op> ops;
    /** Exclusive upper bound on every key in @c ops (load keys,
     *  request keys, and striped insert keys). */
    uint64_t keySpace = 0;
};

/**
 * The load phase for @p recordCount records over @p clients
 * closed-loop loaders, merged deterministically. The merged order
 * is the serial order 0..recordCount-1 at every client count.
 */
ConcurrentOps buildLoadOps(uint64_t recordCount, unsigned clients);

/**
 * The merged request stream for @p spec (see file comment for the
 * determinism contract). Total op count is exactly spec.opCount;
 * client c issues opCount/clients ops, the first opCount%clients
 * clients one more.
 */
ConcurrentOps buildConcurrentOps(const ConcurrentSpec &spec);

} // namespace hippo::ycsb

#endif // HIPPO_YCSB_CONCURRENT_HH
