#include "ycsb/ycsb.hh"

#include <cmath>

#include "support/logging.hh"

namespace hippo::ycsb
{

const char *
opTypeName(OpType t)
{
    switch (t) {
      case OpType::Insert: return "INSERT";
      case OpType::Read: return "READ";
      case OpType::Update: return "UPDATE";
      case OpType::Scan: return "SCAN";
      case OpType::ReadModifyWrite: return "RMW";
    }
    return "?";
}

const char *
workloadName(Workload w)
{
    switch (w) {
      case Workload::Load: return "Load";
      case Workload::A: return "A";
      case Workload::B: return "B";
      case Workload::C: return "C";
      case Workload::D: return "D";
      case Workload::E: return "E";
      case Workload::F: return "F";
    }
    return "?";
}

WorkloadSpec
specFor(Workload w)
{
    WorkloadSpec s;
    using Dist = WorkloadSpec::Dist;
    switch (w) {
      case Workload::Load:
        s.insertProportion = 1.0;
        s.dist = Dist::Uniform;
        break;
      case Workload::A:
        s.readProportion = 0.5;
        s.updateProportion = 0.5;
        break;
      case Workload::B:
        s.readProportion = 0.95;
        s.updateProportion = 0.05;
        break;
      case Workload::C:
        s.readProportion = 1.0;
        break;
      case Workload::D:
        s.readProportion = 0.95;
        s.insertProportion = 0.05;
        s.dist = Dist::Latest;
        break;
      case Workload::E:
        s.scanProportion = 0.95;
        s.insertProportion = 0.05;
        break;
      case Workload::F:
        s.readProportion = 0.5;
        s.rmwProportion = 0.5;
        break;
    }
    return s;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : items_(n ? n : 1), theta_(theta)
{
    computeConstants();
}

void
ZipfianGenerator::computeConstants()
{
    // zeta(n, theta); fine to recompute for the modest n used here.
    zetan_ = 0;
    for (uint64_t i = 1; i <= items_; i++)
        zetan_ += 1.0 / std::pow((double)i, theta_);
    zeta2theta_ = 0;
    for (uint64_t i = 1; i <= 2 && i <= items_; i++)
        zeta2theta_ += 1.0 / std::pow((double)i, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / (double)items_, 1.0 - theta_)) /
           (1.0 - zeta2theta_ / zetan_);
}

void
ZipfianGenerator::setItemCount(uint64_t n)
{
    if (n == items_ || n == 0)
        return;
    if (n > items_) {
        // Incremental zeta extension (as in YCSB's
        // ZipfianGenerator), avoiding an O(n) recompute per insert.
        for (uint64_t i = items_ + 1; i <= n; i++)
            zetan_ += 1.0 / std::pow((double)i, theta_);
        items_ = n;
        eta_ = (1.0 -
                std::pow(2.0 / (double)items_, 1.0 - theta_)) /
               (1.0 - zeta2theta_ / zetan_);
        return;
    }
    items_ = n;
    computeConstants();
}

uint64_t
ZipfianGenerator::next(Rng &rng)
{
    double u = rng.nextDouble();
    double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    return (uint64_t)((double)items_ *
                      std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

namespace
{

/** FNV-1a scatter used for the scrambled-Zipfian key space. */
uint64_t
fnvHash(uint64_t v)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (int i = 0; i < 8; i++) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

Generator::Generator(Workload w, uint64_t record_count,
                     uint64_t op_count, uint64_t seed)
    : workload_(w), spec_(specFor(w)), recordCount_(record_count),
      opCount_(op_count), insertCursor_(record_count), rng_(seed),
      zipf_(record_count), scanLen_(spec_.maxScanLength)
{
    hippo_assert(record_count > 0, "empty record space");
}

uint64_t
Generator::chooseKey()
{
    using Dist = WorkloadSpec::Dist;
    uint64_t bound = insertCursor_; // records present so far
    switch (spec_.dist) {
      case Dist::Uniform:
        return rng_.nextBelow(bound);
      case Dist::Zipfian: {
        // Scrambled Zipfian: scatter the hot ranks over the space.
        uint64_t rank = zipf_.next(rng_);
        return fnvHash(rank) % bound;
      }
      case Dist::Latest: {
        // Hot keys are the most recently inserted ones.
        uint64_t rank = zipf_.next(rng_);
        return rank >= bound ? bound - 1 : bound - 1 - rank;
      }
    }
    return 0;
}

Op
Generator::next()
{
    hippo_assert(hasNext(), "generator exhausted");
    produced_++;

    Op op;
    if (workload_ == Workload::Load) {
        op.type = OpType::Insert;
        op.key = produced_ - 1; // dense sequential load
        return op;
    }

    double p = rng_.nextDouble();
    if (p < spec_.readProportion) {
        op.type = OpType::Read;
        op.key = chooseKey();
    } else if (p < spec_.readProportion + spec_.updateProportion) {
        op.type = OpType::Update;
        op.key = chooseKey();
    } else if (p < spec_.readProportion + spec_.updateProportion +
                       spec_.scanProportion) {
        op.type = OpType::Scan;
        op.key = chooseKey();
        op.scanLength = 1 + scanLen_.next(rng_);
        if (op.scanLength > spec_.maxScanLength)
            op.scanLength = spec_.maxScanLength;
    } else if (p < spec_.readProportion + spec_.updateProportion +
                       spec_.scanProportion +
                       spec_.rmwProportion) {
        op.type = OpType::ReadModifyWrite;
        op.key = chooseKey();
    } else {
        op.type = OpType::Insert;
        op.key = insertCursor_++;
        if (spec_.dist == WorkloadSpec::Dist::Latest)
            zipf_.setItemCount(insertCursor_);
    }
    return op;
}

uint64_t
Generator::finalRecordCount() const
{
    return insertCursor_;
}

} // namespace hippo::ycsb
