#include "apps/pmlog.hh"

#include "ir/builder.hh"
#include "ir/verifier.hh"
#include "support/logging.hh"

namespace hippo::apps
{

using namespace hippo::ir;

namespace
{

constexpr uint64_t metaWriteOff = 0;
constexpr uint64_t metaMagic = 8;
constexpr uint64_t metaBytes = 64;
constexpr uint64_t magicValue = 0x10C;
constexpr uint64_t entHeader = 8;

struct Ctx
{
    Module *m;
    IRBuilder b;
    const PmlogConfig &cfg;

    Function *logCopy = nullptr;
    Function *append = nullptr;

    Ctx(Module *mod, const PmlogConfig &c) : m(mod), b(mod), cfg(c)
    {}

    Constant *ci(uint64_t v) { return m->getInt(v); }
    bool buggy() const { return cfg.seedBugs; }

    Instruction *mapMeta() { return b.createPmMap("log.meta",
                                                  metaBytes); }
    Instruction *
    mapData()
    {
        return b.createPmMap("log.data", cfg.capacity);
    }

    Instruction *
    roundUp8(Value *v)
    {
        return b.createBin(BinOp::And, b.createAdd(v, ci(7)),
                           ci(~7ULL));
    }
};

/** @log_copy(dst, src, len): the shared copy helper. */
void
buildLogCopy(Ctx &c)
{
    Function *f = c.m->addFunction("log_copy", Type::Void);
    Argument *dst = f->addParam(Type::Ptr, "dst");
    Argument *src = f->addParam(Type::Ptr, "src");
    Argument *len = f->addParam(Type::Int, "len");
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *loop = f->addBlock("loop");
    BasicBlock *body = f->addBlock("body");
    BasicBlock *exit = f->addBlock("exit");

    IRBuilder &b = c.b;
    b.setInsertPoint(entry);
    b.setLoc("pmlog.c", 12);
    Instruction *iv = b.createAlloca(8);
    b.createStore(c.ci(0), iv, 8);
    b.createBr(loop);
    b.setInsertPoint(loop);
    Instruction *i = b.createLoad(iv, 8);
    b.createCondBr(b.createCmp(CmpPred::Ult, i, len), body, exit);
    b.setInsertPoint(body);
    b.setLoc("pmlog.c", 15);
    b.createStore(b.createLoad(b.createGep(src, i), 8),
                  b.createGep(dst, i), 8);
    b.createStore(b.createAdd(i, c.ci(8)), iv, 8);
    b.createBr(loop);
    b.setInsertPoint(exit);
    b.createRet();
    c.logCopy = f;
}

/** @log_append(src, len) -> 1 ok / 0 full. */
void
buildAppend(Ctx &c)
{
    Function *f = c.m->addFunction("log_append", Type::Int);
    Argument *src = f->addParam(Type::Ptr, "src");
    Argument *len = f->addParam(Type::Int, "len");
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *full = f->addBlock("full");
    BasicBlock *write = f->addBlock("write");

    IRBuilder &b = c.b;
    b.setInsertPoint(entry);
    b.setLoc("pmlog.c", 24);
    Instruction *meta = c.mapMeta();
    Instruction *data = c.mapData();
    Instruction *offp = b.createGep(meta, c.ci(metaWriteOff));
    Instruction *off = b.createLoad(offp, 8);
    Instruction *need =
        b.createAdd(c.roundUp8(len), c.ci(entHeader));
    Instruction *end = b.createAdd(off, need);
    b.createCondBr(b.createCmp(CmpPred::Ugt, end,
                               c.ci(c.cfg.capacity)),
                   full, write);

    b.setInsertPoint(full);
    b.createRet(c.ci(0));

    b.setInsertPoint(write);
    b.setLoc("pmlog.c", 31);
    Instruction *entry_p = b.createGep(data, off);
    Instruction *payload = b.createGep(entry_p, c.ci(entHeader));
    // Payload first (log-1: never flushed in the buggy build).
    b.createCall(c.logCopy, {payload, src, c.roundUp8(len)});
    // Entry header second (log-2).
    b.setLoc("pmlog.c", 34);
    b.createStore(len, entry_p, 8);
    if (!c.buggy()) {
        // Developer durability: persist the whole entry range with
        // a flush loop, like pmemlog_append does via pmem_persist.
        BasicBlock *floop = f->addBlock("floop");
        BasicBlock *fbody = f->addBlock("fbody");
        BasicBlock *fdone = f->addBlock("fdone");
        Instruction *iv = b.createAlloca(8);
        b.createStore(c.ci(0), iv, 8);
        b.createBr(floop);
        b.setInsertPoint(floop);
        Instruction *i = b.createLoad(iv, 8);
        b.createCondBr(b.createCmp(CmpPred::Ult, i, need), fbody,
                       fdone);
        b.setInsertPoint(fbody);
        b.createFlush(b.createGep(entry_p, i), FlushKind::Clwb);
        b.createStore(b.createAdd(i, c.ci(64)), iv, 8);
        b.createBr(floop);
        b.setInsertPoint(fdone);
        Instruction *last = b.createSub(need, c.ci(1));
        b.createFlush(b.createGep(entry_p, last), FlushKind::Clwb);
        b.createFence(FenceKind::Sfence);
    }
    // Publish the new write offset (log-3).
    b.setLoc("pmlog.c", 38);
    b.createStore(end, offp, 8);
    if (!c.buggy())
        b.createFlush(offp, FlushKind::Clwb);
    b.createFence(FenceKind::Sfence);
    b.createDurPoint("log-append");
    b.createRet(c.ci(1));
    c.append = f;
}

void
buildRest(Ctx &c)
{
    IRBuilder &b = c.b;

    // @log_init()
    {
        Function *f = c.m->addFunction("log_init", Type::Void);
        BasicBlock *entry = f->addBlock("entry");
        BasicBlock *format = f->addBlock("format");
        BasicBlock *done = f->addBlock("done");
        b.setInsertPoint(entry);
        b.setLoc("pmlog.c", 50);
        Instruction *meta = c.mapMeta();
        c.mapData();
        Instruction *magicp = b.createGep(meta, c.ci(metaMagic));
        b.createCondBr(
            b.createCmp(CmpPred::Ne, b.createLoad(magicp, 8),
                        c.ci(magicValue)),
            format, done);
        b.setInsertPoint(format);
        Instruction *offp = b.createGep(meta, c.ci(metaWriteOff));
        b.createStore(c.ci(0), offp, 8);
        b.createStore(c.ci(magicValue), magicp, 8);
        b.createFlush(offp, FlushKind::Clwb);
        b.createFlush(magicp, FlushKind::Clwb);
        b.createFence(FenceKind::Sfence);
        b.createDurPoint("log-init");
        b.createBr(done);
        b.setInsertPoint(done);
        b.createRet();
    }

    // @log_walk() -> complete entry count (the recovery procedure)
    {
        Function *f = c.m->addFunction("log_walk", Type::Int);
        BasicBlock *entry = f->addBlock("entry");
        BasicBlock *loop = f->addBlock("loop");
        BasicBlock *body = f->addBlock("body");
        BasicBlock *done = f->addBlock("done");
        b.setInsertPoint(entry);
        b.setLoc("pmlog.c", 70);
        Instruction *meta = c.mapMeta();
        Instruction *data = c.mapData();
        Instruction *used = b.createLoad(
            b.createGep(meta, c.ci(metaWriteOff)), 8);
        Instruction *offv = b.createAlloca(8);
        Instruction *acc = b.createAlloca(8);
        b.createStore(c.ci(0), offv, 8);
        b.createStore(c.ci(0), acc, 8);
        b.createBr(loop);
        b.setInsertPoint(loop);
        Instruction *off = b.createLoad(offv, 8);
        Instruction *more = b.createCmp(
            CmpPred::Ult, b.createAdd(off, c.ci(entHeader)), used);
        b.createCondBr(more, body, done);
        b.setInsertPoint(body);
        Instruction *len =
            b.createLoad(b.createGep(data, off), 8);
        Instruction *ent_size =
            b.createAdd(c.roundUp8(len), c.ci(entHeader));
        Instruction *fits = b.createCmp(
            CmpPred::Ule, b.createAdd(off, ent_size), used);
        Instruction *cur = b.createLoad(acc, 8);
        b.createStore(b.createAdd(cur, fits), acc, 8);
        b.createStore(b.createAdd(off, ent_size), offv, 8);
        b.createBr(loop);
        b.setInsertPoint(done);
        b.createRet(b.createLoad(acc, 8));
    }

    // @log_rewind()
    {
        Function *f = c.m->addFunction("log_rewind", Type::Void);
        b.setInsertPoint(f->addBlock("entry"));
        b.setLoc("pmlog.c", 90);
        Instruction *meta = c.mapMeta();
        Instruction *offp = b.createGep(meta, c.ci(metaWriteOff));
        b.createStore(c.ci(0), offp, 8);
        b.createFlush(offp, FlushKind::Clwb);
        b.createFence(FenceKind::Sfence);
        b.createDurPoint("log-rewind");
        b.createRet();
    }

    // @log_tail_read(len) -> first word of the newest payload
    // (volatile use of @log_copy: copies into an output buffer).
    {
        Function *f = c.m->addFunction("log_tail_read", Type::Int);
        Argument *len = f->addParam(Type::Int, "len");
        b.setInsertPoint(f->addBlock("entry"));
        b.setLoc("pmlog.c", 100);
        Instruction *meta = c.mapMeta();
        Instruction *data = c.mapData();
        Instruction *out = b.createAlloca(256);
        Instruction *used = b.createLoad(
            b.createGep(meta, c.ci(metaWriteOff)), 8);
        Instruction *vlen8 = c.roundUp8(len);
        Instruction *ent_size =
            b.createAdd(vlen8, c.ci(entHeader));
        Instruction *start = b.createSub(used, ent_size);
        Instruction *payload = b.createGep(
            data, b.createAdd(start, c.ci(entHeader)));
        b.createCall(c.logCopy, {out, payload, vlen8});
        b.createRet(b.createLoad(out, 8));
    }

    // @log_handle_append(seed, len)
    {
        Function *f =
            c.m->addFunction("log_handle_append", Type::Int);
        Argument *seed = f->addParam(Type::Int, "seed");
        Argument *len = f->addParam(Type::Int, "len");
        b.setInsertPoint(f->addBlock("entry"));
        b.setLoc("pmlog.c", 110);
        Instruction *staging = b.createAlloca(256);
        b.createMemset(staging,
                       b.createBin(BinOp::And, seed, c.ci(0xff)),
                       c.roundUp8(len));
        b.createRet(b.createCall(c.append, {staging, len}));
    }

    // @log_example(n) -> digest
    {
        Function *f = c.m->addFunction("log_example", Type::Int);
        Argument *n = f->addParam(Type::Int, "n");
        BasicBlock *entry = f->addBlock("entry");
        BasicBlock *loop = f->addBlock("loop");
        BasicBlock *body = f->addBlock("body");
        BasicBlock *done = f->addBlock("done");
        b.setInsertPoint(entry);
        b.setLoc("pmlog.c", 120);
        b.createCall(c.m->findFunction("log_init"), {});
        Instruction *iv = b.createAlloca(8);
        Instruction *digest = b.createAlloca(8);
        b.createStore(c.ci(1), iv, 8);
        b.createStore(c.ci(0), digest, 8);
        b.createBr(loop);
        b.setInsertPoint(loop);
        Instruction *i = b.createLoad(iv, 8);
        b.createCondBr(b.createCmp(CmpPred::Ule, i, n), body, done);
        b.setInsertPoint(body);
        b.createCall(c.m->findFunction("log_handle_append"),
                     {i, c.ci(40)});
        Instruction *tail = b.createCall(
            c.m->findFunction("log_tail_read"), {c.ci(40)});
        Instruction *cur = b.createLoad(digest, 8);
        b.createStore(b.createBin(BinOp::Xor,
                                  b.createMul(cur, c.ci(131)), tail),
                      digest, 8);
        b.createStore(b.createAdd(i, c.ci(1)), iv, 8);
        b.createBr(loop);
        b.setInsertPoint(done);
        Instruction *walked =
            b.createCall(c.m->findFunction("log_walk"), {});
        Instruction *dg = b.createLoad(digest, 8);
        b.createPrint("log_entries", walked);
        b.createPrint("log_digest", dg);
        b.createRet(dg);
    }
}

} // namespace

std::unique_ptr<Module>
buildPmlog(const PmlogConfig &cfg)
{
    hippo_assert(cfg.capacity >= 4096, "log too small");
    auto m = std::make_unique<Module>(cfg.seedBugs ? "pmlog-buggy"
                                                   : "pmlog-fixed");
    Ctx c(m.get(), cfg);
    buildLogCopy(c);
    buildAppend(c);
    buildRest(c);
    verifyOrDie(*m);
    return m;
}

} // namespace hippo::apps
