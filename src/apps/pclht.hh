/**
 * @file
 * pclht: a persistent cache-line hash table modeled on RECIPE's
 * P-CLHT index (§6 evaluation target). Each bucket occupies exactly
 * one 64-byte cache line: an occupancy bitmap word plus three
 * key/value slot pairs; collisions linear-probe to the next bucket.
 *
 * The buggy build seeds the two durability bugs the paper reports
 * finding in P-CLHT with pmemcheck:
 *  - pclht-1 (missing-flush): the table zeroing in @clht_init is
 *    never flushed (the fence is present);
 *  - pclht-2 (missing-flush&fence): @clht_put publishes the slot by
 *    writing the occupancy bitmap *after* the bucket flush+fence, so
 *    the publish itself is neither flushed nor fenced.
 */

#ifndef HIPPO_APPS_PCLHT_HH
#define HIPPO_APPS_PCLHT_HH

#include <cstdint>
#include <memory>

#include "ir/module.hh"

namespace hippo::apps
{

/** Build parameters for pclht. */
struct PclhtConfig
{
    uint64_t buckets = 1024; ///< power of two
    bool seedBugs = true;    ///< build the buggy variant
};

/**
 * Build the pclht module. Entry points:
 *  - @clht_init()
 *  - @clht_put(key, val) -> 1 on success, 0 when full (keys != 0)
 *  - @clht_get(key) -> val (0 on miss)
 *  - @clht_del(key) -> 1 if removed
 *  - @clht_recover() -> number of occupied slots
 *  - @clht_example(n): the RECIPE-style exercise driver (insert n,
 *    delete every 3rd, look everything up, print a digest)
 */
std::unique_ptr<ir::Module> buildPclht(const PclhtConfig &cfg = {});

} // namespace hippo::apps

#endif // HIPPO_APPS_PCLHT_HH
