/**
 * @file
 * pmcache: a memcached-pm-style persistent item cache (one of the
 * paper's evaluation targets; the authors found 10 previously
 * undocumented durability bugs in memcached-pm with pmemcheck).
 *
 * Fixed-slot item slabs + a bucket-chained hash index + a persistent
 * statistics page. The buggy build seeds ten durability bugs across
 * the set/get/delete/init/stats paths:
 *
 *   mc-1  flags store in @mc_set            missing-flush
 *   mc-2  item payload via @slab_write      missing-flush (hoistable)
 *   mc-3  exptime store in @mc_set          missing-flush
 *   mc-4  hash-table zeroing in @mc_init    missing-flush
 *   mc-5  bucket link store in @mc_set      missing-flush
 *   mc-6  allocation cursor in @mc_set      missing-flush
 *   mc-7  item count in @mc_set             missing-flush
 *   mc-8  LRU stamp in @mc_touch            missing-fence
 *   mc-9  unlink store in @mc_delete        missing-flush&fence
 *   mc-10 ops counter in @mc_stats_persist  missing-flush&fence
 */

#ifndef HIPPO_APPS_PMCACHE_HH
#define HIPPO_APPS_PMCACHE_HH

#include <cstdint>
#include <memory>

#include "ir/module.hh"

namespace hippo::apps
{

/** Build parameters for pmcache. */
struct PmcacheConfig
{
    uint64_t buckets = 512;  ///< power of two
    uint64_t items = 2048;   ///< slab capacity (ring reuse beyond)
    bool seedBugs = true;    ///< build the buggy variant
};

/**
 * Build the pmcache module. Entry points:
 *  - @mc_init()
 *  - @mc_handle_set(key, len), @mc_handle_get(key) -> datalen,
 *    @mc_handle_del(key) -> 1 if removed
 *  - @mc_stats_persist()
 *  - @mc_recover() -> linked item count
 *  - @mc_example(n): set/get/del driver, prints a digest
 */
std::unique_ptr<ir::Module>
buildPmcache(const PmcacheConfig &cfg = {});

} // namespace hippo::apps

#endif // HIPPO_APPS_PMCACHE_HH
