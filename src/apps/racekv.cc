#include "apps/racekv.hh"

#include "ir/builder.hh"
#include "ir/verifier.hh"
#include "support/logging.hh"

namespace hippo::apps
{

using namespace hippo::ir;

namespace
{

/** PM layout: slot[i] at i*64, flag[i] at 1024 + i*64, published
 *  count at 2048 — every field on its own cache line, so a torn
 *  crash can persist a publication flag without its payload. */
constexpr uint64_t slotBase = 0;
constexpr uint64_t flagBase = 1024;
constexpr uint64_t countOff = 2048;
constexpr uint64_t lineBytes = 64;
constexpr uint64_t valueBias = 100; ///< slot i holds valueBias + i

} // namespace

std::unique_ptr<ir::Module>
buildRaceKv(const RaceKvBuild &cfg)
{
    hippo_assert(cfg.slots >= 1 &&
                     flagBase + cfg.slots * lineBytes <= countOff,
                 "racekv: slot count out of layout range");
    auto m = std::make_unique<Module>("racekv");
    IRBuilder b(m.get());

    // @producer(%pool): fill and publish every slot. One static
    // publication site (the loop body), so the buggy build seeds
    // exactly one cross-thread bug however many slots run.
    Function *producer = m->addFunction("producer", Type::Int);
    {
        Argument *pool = producer->addParam(Type::Ptr, "pool");
        BasicBlock *entry = producer->addBlock("entry");
        BasicBlock *loop = producer->addBlock("loop");
        BasicBlock *body = producer->addBlock("body");
        BasicBlock *done = producer->addBlock("done");
        b.setInsertPoint(entry);
        b.setLoc("racekv.c", 10);
        Instruction *iv = b.createAlloca(8);
        b.createStore(m->getInt(0), iv, 8);
        b.createBr(loop);
        b.setInsertPoint(loop);
        Instruction *i = b.createLoad(iv, 8);
        b.createCondBr(
            b.createCmp(CmpPred::Ult, i, m->getInt(cfg.slots)), body,
            done);
        b.setInsertPoint(body);
        Instruction *off = b.createBin(BinOp::Mul, i,
                                       m->getInt(lineBytes));
        Instruction *slot =
            b.createGep(pool, b.createAdd(m->getInt(slotBase), off));
        b.createStore(b.createAdd(i, m->getInt(valueBias)), slot, 8);
        if (cfg.flushSlots) {
            b.createFlush(slot, FlushKind::Clwb);
            b.createFence(FenceKind::Sfence);
        }
        Instruction *flag =
            b.createGep(pool, b.createAdd(m->getInt(flagBase), off));
        b.createAtomicStore(m->getInt(1), flag, MemOrder::Release, 8);
        // The publication itself is made durable either way; the
        // seeded bug is publishing *before* the payload persists.
        b.createFlush(flag, FlushKind::Clwb);
        b.createFence(FenceKind::Sfence);
        b.createStore(b.createAdd(i, m->getInt(1)), iv, 8);
        b.createBr(loop);
        b.setInsertPoint(done);
        b.createRet(m->getInt(0));
    }

    // A single non-blocking poll pass over the flags with acquire
    // loads; shared by the concurrent consumer pass and the
    // post-join pass. Returns the number of published slots seen.
    auto emitPollPass = [&](Function *f, Value *pool,
                            const char *prefix) {
        BasicBlock *loop = f->addBlock(std::string(prefix) + "_loop");
        BasicBlock *body = f->addBlock(std::string(prefix) + "_body");
        BasicBlock *done = f->addBlock(std::string(prefix) + "_done");
        Instruction *iv = b.createAlloca(8);
        Instruction *seen = b.createAlloca(8);
        b.createStore(m->getInt(0), iv, 8);
        b.createStore(m->getInt(0), seen, 8);
        b.createBr(loop);
        b.setInsertPoint(loop);
        Instruction *i = b.createLoad(iv, 8);
        b.createCondBr(
            b.createCmp(CmpPred::Ult, i, m->getInt(cfg.slots)), body,
            done);
        b.setInsertPoint(body);
        Instruction *off = b.createBin(BinOp::Mul, i,
                                       m->getInt(lineBytes));
        Instruction *flag =
            b.createGep(pool, b.createAdd(m->getInt(flagBase), off));
        Instruction *pub =
            b.createAtomicLoad(flag, MemOrder::Acquire, 8);
        b.createStore(b.createAdd(b.createLoad(seen, 8), pub), seen,
                      8);
        b.createStore(b.createAdd(i, m->getInt(1)), iv, 8);
        b.createBr(loop);
        b.setInsertPoint(done);
        return b.createLoad(seen, 8);
    };

    // @main: spawn the producer, consume concurrently (one poll
    // pass — non-blocking, so no schedule can livelock it), join,
    // poll again for the final count, bump the published count in
    // PM, and declare durability.
    Function *main_fn = m->addFunction("main", Type::Int);
    {
        b.setInsertPoint(main_fn->addBlock("entry"));
        b.setLoc("racekv.c", 40);
        Instruction *pool =
            b.createPmMap("racekv", raceKvPoolBytes);
        Instruction *tid = b.createThreadSpawn(producer, {pool});
        emitPollPass(main_fn, pool, "peek");
        b.createThreadJoin(tid);
        Instruction *count = emitPollPass(main_fn, pool, "final");
        Instruction *cnt_ptr =
            b.createGep(pool, m->getInt(countOff));
        b.createStore(count, cnt_ptr, 8);
        if (cfg.flushCount) {
            b.createFlush(cnt_ptr, FlushKind::Clwb);
            b.createFence(FenceKind::Sfence);
        }
        b.createDurPoint("published");
        b.createRet(count);
    }

    // @recover: classify every published slot from the surviving
    // image. Plain loads — recovery is single-threaded.
    Function *rec = m->addFunction("recover", Type::Int);
    {
        BasicBlock *entry = rec->addBlock("entry");
        BasicBlock *loop = rec->addBlock("loop");
        BasicBlock *body = rec->addBlock("body");
        BasicBlock *pub_bb = rec->addBlock("published");
        BasicBlock *valid_bb = rec->addBlock("valid");
        BasicBlock *torn_bb = rec->addBlock("torn");
        BasicBlock *next = rec->addBlock("next");
        BasicBlock *done = rec->addBlock("done");
        b.setInsertPoint(entry);
        b.setLoc("racekv.c", 70);
        Instruction *pool =
            b.createPmMap("racekv", raceKvPoolBytes);
        Instruction *iv = b.createAlloca(8);
        Instruction *valid = b.createAlloca(8);
        Instruction *torn = b.createAlloca(8);
        b.createStore(m->getInt(0), iv, 8);
        b.createStore(m->getInt(0), valid, 8);
        b.createStore(m->getInt(0), torn, 8);
        b.createBr(loop);
        b.setInsertPoint(loop);
        Instruction *i = b.createLoad(iv, 8);
        b.createCondBr(
            b.createCmp(CmpPred::Ult, i, m->getInt(cfg.slots)), body,
            done);
        b.setInsertPoint(body);
        Instruction *off = b.createBin(BinOp::Mul, i,
                                       m->getInt(lineBytes));
        Instruction *flag =
            b.createGep(pool, b.createAdd(m->getInt(flagBase), off));
        b.createCondBr(b.createCmp(CmpPred::Eq,
                                   b.createLoad(flag, 8),
                                   m->getInt(1)),
                       pub_bb, next);
        b.setInsertPoint(pub_bb);
        Instruction *slot =
            b.createGep(pool, b.createAdd(m->getInt(slotBase),
                                          b.createBin(BinOp::Mul,
                                                      b.createLoad(
                                                          iv, 8),
                                                      m->getInt(
                                                          lineBytes))));
        Instruction *want = b.createAdd(b.createLoad(iv, 8),
                                        m->getInt(valueBias));
        b.createCondBr(b.createCmp(CmpPred::Eq,
                                   b.createLoad(slot, 8), want),
                       valid_bb, torn_bb);
        b.setInsertPoint(valid_bb);
        b.createStore(b.createAdd(b.createLoad(valid, 8),
                                  m->getInt(1)),
                      valid, 8);
        b.createBr(next);
        b.setInsertPoint(torn_bb);
        b.createStore(b.createAdd(b.createLoad(torn, 8),
                                  m->getInt(1)),
                      torn, 8);
        b.createBr(next);
        b.setInsertPoint(next);
        b.createStore(b.createAdd(b.createLoad(iv, 8), m->getInt(1)),
                      iv, 8);
        b.createBr(loop);
        b.setInsertPoint(done);
        // valid + 100 * torn: a torn publication dominates the
        // recovered value, so crash digests separate the two cases.
        Instruction *ret = b.createAdd(
            b.createLoad(valid, 8),
            b.createBin(BinOp::Mul, b.createLoad(torn, 8),
                        m->getInt(100)));
        b.createRet(ret);
    }

    auto errs = verifyModule(*m);
    hippo_assert(errs.empty(), "racekv build invalid: %s",
                 errs.empty() ? "" : errs.front().c_str());
    return m;
}

} // namespace hippo::apps
