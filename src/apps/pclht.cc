#include "apps/pclht.hh"

#include "ir/builder.hh"
#include "ir/verifier.hh"
#include "support/logging.hh"

namespace hippo::apps
{

using namespace hippo::ir;

namespace
{

/** Bucket layout: one 64-byte cache line. */
constexpr uint64_t bmapOff = 0;   ///< occupancy bitmap (bits 0..2)
constexpr uint64_t keysOff = 8;   ///< 3 keys
constexpr uint64_t valsOff = 32;  ///< 3 values
constexpr uint64_t bucketBytes = 64;
constexpr uint64_t slotsPerBucket = 3;
constexpr uint64_t probeMax = 8;

constexpr uint64_t metaMagicOff = 0;
constexpr uint64_t metaBytes = 64;
constexpr uint64_t magicValue = 0xC1;

struct Ctx
{
    Module *m;
    IRBuilder b;
    const PclhtConfig &cfg;

    Function *hash = nullptr;
    Function *put = nullptr;
    Function *get = nullptr;
    Function *del = nullptr;

    Ctx(Module *mod, const PclhtConfig &c) : m(mod), b(mod), cfg(c) {}

    Constant *ci(uint64_t v) { return m->getInt(v); }

    Instruction *
    mapTable()
    {
        return b.createPmMap("clht.table",
                             cfg.buckets * bucketBytes);
    }

    Instruction *mapMeta() { return b.createPmMap("clht.meta",
                                                  metaBytes); }
};

void
buildHash(Ctx &c)
{
    Function *f = c.m->addFunction("clht_hash", Type::Int);
    Argument *key = f->addParam(Type::Int, "key");
    IRBuilder &b = c.b;
    b.setInsertPoint(f->addBlock("entry"));
    b.setLoc("pclht.c", 12);
    Instruction *h1 = b.createMul(key, c.ci(0x9e3779b97f4a7c15ULL));
    Instruction *h2 = b.createBin(
        BinOp::Xor, h1, b.createBin(BinOp::LShr, h1, c.ci(32)));
    b.createRet(b.createBin(BinOp::And, h2,
                            c.ci(c.cfg.buckets - 1)));
    c.hash = f;
}

void
buildInit(Ctx &c)
{
    Function *f = c.m->addFunction("clht_init", Type::Void);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *format = f->addBlock("format");
    BasicBlock *done = f->addBlock("done");

    IRBuilder &b = c.b;
    b.setInsertPoint(entry);
    b.setLoc("pclht.c", 20);
    Instruction *meta = c.mapMeta();
    Instruction *table = c.mapTable();
    Instruction *magic = b.createLoad(
        b.createGep(meta, c.ci(metaMagicOff)), 8);
    Instruction *fresh =
        b.createCmp(CmpPred::Ne, magic, c.ci(magicValue));
    b.createCondBr(fresh, format, done);

    b.setInsertPoint(format);
    b.setLoc("pclht.c", 24);
    b.createMemset(table, c.ci(0),
                   c.ci(c.cfg.buckets * bucketBytes));
    if (!c.cfg.seedBugs) {
        // Developer fix for pclht-1: persist the zeroed table.
        BasicBlock *floop = f->addBlock("flush_loop");
        BasicBlock *fbody = f->addBlock("flush_body");
        BasicBlock *fdone = f->addBlock("flush_done");
        Instruction *iv = b.createAlloca(8);
        b.createStore(c.ci(0), iv, 8);
        b.createBr(floop);
        b.setInsertPoint(floop);
        Instruction *i = b.createLoad(iv, 8);
        Instruction *more = b.createCmp(
            CmpPred::Ult, i, c.ci(c.cfg.buckets * bucketBytes));
        b.createCondBr(more, fbody, fdone);
        b.setInsertPoint(fbody);
        b.createFlush(b.createGep(table, i), FlushKind::Clwb);
        b.createStore(b.createAdd(i, c.ci(64)), iv, 8);
        b.createBr(floop);
        b.setInsertPoint(fdone);
        b.setLoc("pclht.c", 26);
        Instruction *magicp = b.createGep(meta, c.ci(metaMagicOff));
        b.createStore(c.ci(magicValue), magicp, 8);
        b.createFlush(magicp, FlushKind::Clwb);
        b.createFence(FenceKind::Sfence);
        b.createDurPoint("clht-init");
        b.createBr(done);
    } else {
        // pclht-1: the zeroed table is never flushed; the magic is,
        // so recovery believes the table is formatted.
        b.setLoc("pclht.c", 26);
        Instruction *magicp = b.createGep(meta, c.ci(metaMagicOff));
        b.createStore(c.ci(magicValue), magicp, 8);
        b.createFlush(magicp, FlushKind::Clwb);
        b.createFence(FenceKind::Sfence);
        b.createDurPoint("clht-init");
        b.createBr(done);
    }

    b.setInsertPoint(done);
    b.createRet();
}

void
buildPut(Ctx &c)
{
    Function *f = c.m->addFunction("clht_put", Type::Int);
    Argument *key = f->addParam(Type::Int, "key");
    Argument *val = f->addParam(Type::Int, "val");

    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *probe = f->addBlock("probe");
    BasicBlock *bucket_scan = f->addBlock("bucket_scan");
    BasicBlock *slot_loop = f->addBlock("slot_loop");
    BasicBlock *slot_check = f->addBlock("slot_check");
    BasicBlock *slot_occupied = f->addBlock("slot_occupied");
    BasicBlock *overwrite = f->addBlock("overwrite");
    BasicBlock *slot_next = f->addBlock("slot_next");
    BasicBlock *claim = f->addBlock("claim");
    BasicBlock *next_bucket = f->addBlock("next_bucket");
    BasicBlock *full = f->addBlock("full");

    IRBuilder &b = c.b;
    b.setInsertPoint(entry);
    b.setLoc("pclht.c", 40);
    Instruction *table = c.mapTable();
    Instruction *h = b.createCall(c.hash, {key});
    Instruction *attempt = b.createAlloca(8);
    Instruction *slotv = b.createAlloca(8);
    Instruction *freeslot = b.createAlloca(8);
    b.createStore(c.ci(0), attempt, 8);
    b.createBr(probe);

    b.setInsertPoint(probe);
    Instruction *a = b.createLoad(attempt, 8);
    Instruction *more =
        b.createCmp(CmpPred::Ult, a, c.ci(probeMax));
    b.createCondBr(more, bucket_scan, full);

    // bucket = table + ((h + attempt) & mask) * 64
    b.setInsertPoint(bucket_scan);
    Instruction *idx = b.createBin(
        BinOp::And, b.createAdd(h, a), c.ci(c.cfg.buckets - 1));
    Instruction *bucket =
        b.createGep(table, b.createMul(idx, c.ci(bucketBytes)));
    Instruction *bmapp = b.createGep(bucket, c.ci(bmapOff));
    Instruction *bmap0 = b.createLoad(bmapp, 8);
    b.createStore(c.ci(0), slotv, 8);
    b.createStore(c.ci(slotsPerBucket), freeslot, 8);
    b.createBr(slot_loop);

    b.setInsertPoint(slot_loop);
    Instruction *s = b.createLoad(slotv, 8);
    Instruction *smore =
        b.createCmp(CmpPred::Ult, s, c.ci(slotsPerBucket));
    b.createCondBr(smore, slot_check, claim);

    b.setInsertPoint(slot_check);
    Instruction *bit = b.createBin(BinOp::Shl, c.ci(1), s);
    Instruction *occ = b.createBin(BinOp::And, bmap0, bit);
    Instruction *isocc = b.createCmp(CmpPred::Ne, occ, c.ci(0));
    b.createCondBr(isocc, slot_occupied, slot_next);

    b.setInsertPoint(slot_occupied);
    Instruction *kp = b.createGep(
        bucket, b.createAdd(c.ci(keysOff), b.createMul(s, c.ci(8))));
    Instruction *ekey = b.createLoad(kp, 8);
    Instruction *match = b.createCmp(CmpPred::Eq, ekey, key);
    BasicBlock *advance = f->addBlock("advance");
    b.createCondBr(match, overwrite, advance);
    b.setInsertPoint(advance);
    b.createStore(b.createAdd(s, c.ci(1)), slotv, 8);
    b.createBr(slot_loop);

    // Existing key: in-place value update (correct in both builds).
    b.setInsertPoint(overwrite);
    b.setLoc("pclht.c", 55);
    Instruction *vp = b.createGep(
        bucket, b.createAdd(c.ci(valsOff), b.createMul(s, c.ci(8))));
    b.createStore(val, vp, 8);
    b.createFlush(vp, FlushKind::Clwb);
    b.createFence(FenceKind::Sfence);
    b.createDurPoint("clht-put");
    b.createRet(c.ci(1));

    b.setInsertPoint(slot_next);
    // Remember the first free slot, keep scanning for the key.
    Instruction *cur_free = b.createLoad(freeslot, 8);
    Instruction *have_free = b.createCmp(
        CmpPred::Eq, cur_free, c.ci(slotsPerBucket));
    Instruction *newfree = b.createSelect(have_free, s, cur_free);
    b.createStore(newfree, freeslot, 8);
    b.createStore(b.createAdd(s, c.ci(1)), slotv, 8);
    b.createBr(slot_loop);

    b.setInsertPoint(claim);
    Instruction *fs = b.createLoad(freeslot, 8);
    Instruction *none =
        b.createCmp(CmpPred::Eq, fs, c.ci(slotsPerBucket));
    BasicBlock *write_slot = f->addBlock("write_slot");
    b.createCondBr(none, next_bucket, write_slot);

    b.setInsertPoint(write_slot);
    b.setLoc("pclht.c", 66);
    Instruction *wkp = b.createGep(
        bucket,
        b.createAdd(c.ci(keysOff), b.createMul(fs, c.ci(8))));
    Instruction *wvp = b.createGep(
        bucket,
        b.createAdd(c.ci(valsOff), b.createMul(fs, c.ci(8))));
    b.createStore(val, wvp, 8);
    b.createStore(key, wkp, 8);
    b.createFlush(bucket, FlushKind::Clwb);
    b.createFence(FenceKind::Sfence);
    // Publish the slot in the occupancy bitmap.
    b.setLoc("pclht.c", 71);
    Instruction *wbit = b.createBin(BinOp::Shl, c.ci(1), fs);
    Instruction *nbmap = b.createBin(BinOp::Or, bmap0, wbit);
    b.createStore(nbmap, bmapp, 8);
    if (!c.cfg.seedBugs) {
        // Developer fix for pclht-2: persist the publish too.
        b.createFlush(bmapp, FlushKind::Clwb);
        b.createFence(FenceKind::Sfence);
    }
    // pclht-2 (buggy build): the bitmap store reaches the durability
    // point with neither a flush nor a fence behind it.
    b.createDurPoint("clht-put");
    b.createRet(c.ci(1));

    b.setInsertPoint(next_bucket);
    b.createStore(b.createAdd(a, c.ci(1)), attempt, 8);
    b.createBr(probe);

    b.setInsertPoint(full);
    b.createRet(c.ci(0));
    c.put = f;
}

void
buildGetDel(Ctx &c)
{
    // @clht_get(key) -> val or 0
    {
        Function *f = c.m->addFunction("clht_get", Type::Int);
        Argument *key = f->addParam(Type::Int, "key");
        BasicBlock *entry = f->addBlock("entry");
        BasicBlock *probe = f->addBlock("probe");
        BasicBlock *bucket_scan = f->addBlock("bucket_scan");
        BasicBlock *slot_loop = f->addBlock("slot_loop");
        BasicBlock *slot_check = f->addBlock("slot_check");
        BasicBlock *key_check = f->addBlock("key_check");
        BasicBlock *hit = f->addBlock("hit");
        BasicBlock *slot_next = f->addBlock("slot_next");
        BasicBlock *next_bucket = f->addBlock("next_bucket");
        BasicBlock *miss = f->addBlock("miss");

        IRBuilder &b = c.b;
        b.setInsertPoint(entry);
        b.setLoc("pclht.c", 90);
        Instruction *table = c.mapTable();
        Instruction *h = b.createCall(c.hash, {key});
        Instruction *attempt = b.createAlloca(8);
        Instruction *slotv = b.createAlloca(8);
        b.createStore(c.ci(0), attempt, 8);
        b.createBr(probe);

        b.setInsertPoint(probe);
        Instruction *a = b.createLoad(attempt, 8);
        Instruction *more =
            b.createCmp(CmpPred::Ult, a, c.ci(probeMax));
        b.createCondBr(more, bucket_scan, miss);

        b.setInsertPoint(bucket_scan);
        Instruction *idx = b.createBin(
            BinOp::And, b.createAdd(h, a), c.ci(c.cfg.buckets - 1));
        Instruction *bucket = b.createGep(
            table, b.createMul(idx, c.ci(bucketBytes)));
        Instruction *bmap =
            b.createLoad(b.createGep(bucket, c.ci(bmapOff)), 8);
        b.createStore(c.ci(0), slotv, 8);
        b.createBr(slot_loop);

        b.setInsertPoint(slot_loop);
        Instruction *s = b.createLoad(slotv, 8);
        Instruction *smore =
            b.createCmp(CmpPred::Ult, s, c.ci(slotsPerBucket));
        b.createCondBr(smore, slot_check, next_bucket);

        b.setInsertPoint(slot_check);
        Instruction *bit = b.createBin(BinOp::Shl, c.ci(1), s);
        Instruction *occ = b.createBin(BinOp::And, bmap, bit);
        Instruction *isocc =
            b.createCmp(CmpPred::Ne, occ, c.ci(0));
        b.createCondBr(isocc, key_check, slot_next);

        b.setInsertPoint(key_check);
        Instruction *kp = b.createGep(
            bucket,
            b.createAdd(c.ci(keysOff), b.createMul(s, c.ci(8))));
        Instruction *ekey = b.createLoad(kp, 8);
        Instruction *match = b.createCmp(CmpPred::Eq, ekey, key);
        b.createCondBr(match, hit, slot_next);

        b.setInsertPoint(hit);
        Instruction *vp = b.createGep(
            bucket,
            b.createAdd(c.ci(valsOff), b.createMul(s, c.ci(8))));
        b.createRet(b.createLoad(vp, 8));

        b.setInsertPoint(slot_next);
        b.createStore(b.createAdd(s, c.ci(1)), slotv, 8);
        b.createBr(slot_loop);

        b.setInsertPoint(next_bucket);
        b.createStore(b.createAdd(a, c.ci(1)), attempt, 8);
        b.createBr(probe);

        b.setInsertPoint(miss);
        b.createRet(c.ci(0));
        c.get = f;
    }

    // @clht_del(key) -> 1 if removed (correct durability either way)
    {
        Function *f = c.m->addFunction("clht_del", Type::Int);
        Argument *key = f->addParam(Type::Int, "key");
        BasicBlock *entry = f->addBlock("entry");
        BasicBlock *probe = f->addBlock("probe");
        BasicBlock *bucket_scan = f->addBlock("bucket_scan");
        BasicBlock *slot_loop = f->addBlock("slot_loop");
        BasicBlock *slot_check = f->addBlock("slot_check");
        BasicBlock *key_check = f->addBlock("key_check");
        BasicBlock *clear = f->addBlock("clear");
        BasicBlock *slot_next = f->addBlock("slot_next");
        BasicBlock *next_bucket = f->addBlock("next_bucket");
        BasicBlock *miss = f->addBlock("miss");

        IRBuilder &b = c.b;
        b.setInsertPoint(entry);
        b.setLoc("pclht.c", 130);
        Instruction *table = c.mapTable();
        Instruction *h = b.createCall(c.hash, {key});
        Instruction *attempt = b.createAlloca(8);
        Instruction *slotv = b.createAlloca(8);
        b.createStore(c.ci(0), attempt, 8);
        b.createBr(probe);

        b.setInsertPoint(probe);
        Instruction *a = b.createLoad(attempt, 8);
        Instruction *more =
            b.createCmp(CmpPred::Ult, a, c.ci(probeMax));
        b.createCondBr(more, bucket_scan, miss);

        b.setInsertPoint(bucket_scan);
        Instruction *idx = b.createBin(
            BinOp::And, b.createAdd(h, a), c.ci(c.cfg.buckets - 1));
        Instruction *bucket = b.createGep(
            table, b.createMul(idx, c.ci(bucketBytes)));
        Instruction *bmapp = b.createGep(bucket, c.ci(bmapOff));
        Instruction *bmap = b.createLoad(bmapp, 8);
        b.createStore(c.ci(0), slotv, 8);
        b.createBr(slot_loop);

        b.setInsertPoint(slot_loop);
        Instruction *s = b.createLoad(slotv, 8);
        Instruction *smore =
            b.createCmp(CmpPred::Ult, s, c.ci(slotsPerBucket));
        b.createCondBr(smore, slot_check, next_bucket);

        b.setInsertPoint(slot_check);
        Instruction *bit = b.createBin(BinOp::Shl, c.ci(1), s);
        Instruction *occ = b.createBin(BinOp::And, bmap, bit);
        Instruction *isocc =
            b.createCmp(CmpPred::Ne, occ, c.ci(0));
        b.createCondBr(isocc, key_check, slot_next);

        b.setInsertPoint(key_check);
        Instruction *kp = b.createGep(
            bucket,
            b.createAdd(c.ci(keysOff), b.createMul(s, c.ci(8))));
        Instruction *ekey = b.createLoad(kp, 8);
        Instruction *match = b.createCmp(CmpPred::Eq, ekey, key);
        b.createCondBr(match, clear, slot_next);

        b.setInsertPoint(clear);
        b.setLoc("pclht.c", 142);
        Instruction *nbmap = b.createBin(
            BinOp::And, bmap,
            b.createBin(BinOp::Xor, bit, c.ci(~0ULL)));
        b.createStore(nbmap, bmapp, 8);
        b.createFlush(bmapp, FlushKind::Clwb);
        b.createFence(FenceKind::Sfence);
        b.createDurPoint("clht-del");
        b.createRet(c.ci(1));

        b.setInsertPoint(slot_next);
        b.createStore(b.createAdd(s, c.ci(1)), slotv, 8);
        b.createBr(slot_loop);

        b.setInsertPoint(next_bucket);
        b.createStore(b.createAdd(a, c.ci(1)), attempt, 8);
        b.createBr(probe);

        b.setInsertPoint(miss);
        b.createRet(c.ci(0));
        c.del = f;
    }
}

void
buildRecoverAndExample(Ctx &c)
{
    IRBuilder &b = c.b;

    // @clht_recover() -> occupied slot count
    {
        Function *f = c.m->addFunction("clht_recover", Type::Int);
        BasicBlock *entry = f->addBlock("entry");
        BasicBlock *loop = f->addBlock("loop");
        BasicBlock *body = f->addBlock("body");
        BasicBlock *done = f->addBlock("done");

        b.setInsertPoint(entry);
        b.setLoc("pclht.c", 160);
        Instruction *table = c.mapTable();
        Instruction *iv = b.createAlloca(8);
        Instruction *acc = b.createAlloca(8);
        b.createStore(c.ci(0), iv, 8);
        b.createStore(c.ci(0), acc, 8);
        b.createBr(loop);

        b.setInsertPoint(loop);
        Instruction *i = b.createLoad(iv, 8);
        Instruction *more =
            b.createCmp(CmpPred::Ult, i, c.ci(c.cfg.buckets));
        b.createCondBr(more, body, done);

        b.setInsertPoint(body);
        Instruction *bucket = b.createGep(
            table, b.createMul(i, c.ci(bucketBytes)));
        Instruction *bmap =
            b.createLoad(b.createGep(bucket, c.ci(bmapOff)), 8);
        // popcount of the 3 slot bits
        Instruction *b0 = b.createBin(BinOp::And, bmap, c.ci(1));
        Instruction *b1 = b.createBin(
            BinOp::And, b.createBin(BinOp::LShr, bmap, c.ci(1)),
            c.ci(1));
        Instruction *b2 = b.createBin(
            BinOp::And, b.createBin(BinOp::LShr, bmap, c.ci(2)),
            c.ci(1));
        Instruction *sum =
            b.createAdd(b.createAdd(b0, b1), b2);
        Instruction *cur = b.createLoad(acc, 8);
        b.createStore(b.createAdd(cur, sum), acc, 8);
        b.createStore(b.createAdd(i, c.ci(1)), iv, 8);
        b.createBr(loop);

        b.setInsertPoint(done);
        b.createRet(b.createLoad(acc, 8));
    }

    // @clht_example(n): the RECIPE-style insert/delete/lookup driver
    {
        Function *f = c.m->addFunction("clht_example", Type::Int);
        Argument *n = f->addParam(Type::Int, "n");
        BasicBlock *entry = f->addBlock("entry");
        BasicBlock *ins_loop = f->addBlock("ins_loop");
        BasicBlock *ins_body = f->addBlock("ins_body");
        BasicBlock *del_loop = f->addBlock("del_loop");
        BasicBlock *del_body = f->addBlock("del_body");
        BasicBlock *get_loop = f->addBlock("get_loop");
        BasicBlock *get_body = f->addBlock("get_body");
        BasicBlock *done = f->addBlock("done");

        b.setInsertPoint(entry);
        b.setLoc("pclht.c", 180);
        Instruction *iv = b.createAlloca(8);
        Instruction *digest = b.createAlloca(8);
        b.createCall(c.m->findFunction("clht_init"), {});
        b.createStore(c.ci(1), iv, 8);
        b.createStore(c.ci(0), digest, 8);
        b.createBr(ins_loop);

        b.setInsertPoint(ins_loop);
        Instruction *i = b.createLoad(iv, 8);
        Instruction *more = b.createCmp(CmpPred::Ule, i, n);
        b.createCondBr(more, ins_body, del_loop);
        b.setInsertPoint(ins_body);
        b.createCall(c.put,
                     {i, b.createMul(i, c.ci(31))});
        b.createStore(b.createAdd(i, c.ci(1)), iv, 8);
        b.createBr(ins_loop);

        b.setInsertPoint(del_loop);
        // restart counter at 3, step 3
        Instruction *i2 = b.createLoad(iv, 8);
        Instruction *started =
            b.createCmp(CmpPred::Ugt, i2, n);
        BasicBlock *del_reset = f->addBlock("del_reset");
        b.createCondBr(started, del_reset, del_body);
        b.setInsertPoint(del_reset);
        b.createStore(c.ci(3), iv, 8);
        b.createBr(del_body);
        b.setInsertPoint(del_body);
        Instruction *i3 = b.createLoad(iv, 8);
        Instruction *in_range = b.createCmp(CmpPred::Ule, i3, n);
        BasicBlock *do_del = f->addBlock("do_del");
        b.createCondBr(in_range, do_del, get_loop);
        b.setInsertPoint(do_del);
        b.createCall(c.del, {i3});
        b.createStore(b.createAdd(i3, c.ci(3)), iv, 8);
        b.createBr(del_body);

        b.setInsertPoint(get_loop);
        b.createStore(c.ci(1), iv, 8);
        b.createBr(get_body);
        b.setInsertPoint(get_body);
        Instruction *i4 = b.createLoad(iv, 8);
        Instruction *gmore = b.createCmp(CmpPred::Ule, i4, n);
        BasicBlock *do_get = f->addBlock("do_get");
        b.createCondBr(gmore, do_get, done);
        b.setInsertPoint(do_get);
        Instruction *v = b.createCall(c.get, {i4});
        Instruction *cur = b.createLoad(digest, 8);
        b.createStore(
            b.createBin(BinOp::Xor,
                        b.createMul(cur, c.ci(1099511628211ULL)), v),
            digest, 8);
        b.createStore(b.createAdd(i4, c.ci(1)), iv, 8);
        b.createBr(get_body);

        b.setInsertPoint(done);
        Instruction *dg = b.createLoad(digest, 8);
        b.createPrint("clht_digest", dg);
        b.createRet(dg);
    }
}

} // namespace

std::unique_ptr<Module>
buildPclht(const PclhtConfig &cfg)
{
    hippo_assert((cfg.buckets & (cfg.buckets - 1)) == 0,
                 "buckets must be a power of two");
    auto m = std::make_unique<Module>(cfg.seedBugs ? "pclht-buggy"
                                                   : "pclht-fixed");
    Ctx c(m.get(), cfg);
    buildHash(c);
    buildInit(c);
    buildPut(c);
    buildGetDel(c);
    buildRecoverAndExample(c);
    verifyOrDie(*m);
    return m;
}

} // namespace hippo::apps
