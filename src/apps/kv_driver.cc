#include "apps/kv_driver.hh"

#include <vector>

#include "support/logging.hh"

namespace hippo::apps
{

KvDriver::KvDriver(ir::Module *module, pmem::PmPool *pool,
                   vm::VmConfig vc, uint64_t val_len)
    : vm_(module, pool, vc), valLen_(val_len)
{}

void
KvDriver::init()
{
    vm_.run("kv_init");
}

void
KvDriver::execute(const ycsb::Op &op)
{
    using ycsb::OpType;
    switch (op.type) {
      case OpType::Insert:
        vm_.run("kv_handle_set", {op.key, valLen_});
        break;
      case OpType::Read:
        vm_.run("kv_handle_get", {op.key});
        break;
      case OpType::Update:
        vm_.run("kv_handle_update", {op.key, valLen_});
        break;
      case OpType::Scan:
        vm_.run("kv_handle_scan", {op.key, op.scanLength});
        break;
      case OpType::ReadModifyWrite:
        vm_.run("kv_handle_rmw", {op.key, valLen_});
        break;
    }
}

WorkloadResult
KvDriver::run(ycsb::Workload w, uint64_t record_count,
              uint64_t op_count, uint64_t seed)
{
    ycsb::Generator gen(w, record_count, op_count, seed);
    WorkloadResult res;
    double start = vm_.simNanos();
    while (gen.hasNext()) {
        execute(gen.next());
        res.ops++;
    }
    res.simSeconds = (vm_.simNanos() - start) * 1e-9;
    return res;
}

namespace
{

/**
 * Trace a small mixed workload that covers every PM write path plus
 * the volatile read paths (needed so Trace-AA observes the
 * mixed-usage of the shared helpers).
 */
void
traceCoverageRun(KvDriver &driver)
{
    driver.init();
    driver.run(ycsb::Workload::Load, 24, 24, 7);
    driver.run(ycsb::Workload::A, 24, 24, 11);
    driver.run(ycsb::Workload::F, 24, 8, 13);
    driver.run(ycsb::Workload::E, 24, 4, 17);
}

} // namespace

RedisVariants
buildRedisVariants(const PmkvConfig &cfg, analysis::AaMode aa,
                   bool optimized)
{
    hippo_assert(cfg.variant == PmkvVariant::FlushFree,
                 "variants derive from the flush-free build");
    RedisVariants out;

    PmkvConfig manual_cfg = cfg;
    manual_cfg.variant = PmkvVariant::Manual;
    out.manual = buildPmkv(manual_cfg);

    // One bug-finding run; both repairs consume the same trace, as
    // in the paper's pipeline (Fig. 2 Step 1).
    out.hippoFull = buildPmkv(cfg);
    out.hippoIntra = buildPmkv(cfg);

    pmem::PmPool pool(64u << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    KvDriver tracer(out.hippoFull.get(), &pool, vc);
    traceCoverageRun(tracer);
    out.flushFreeReport = pmcheck::analyze(tracer.vm().trace());

    {
        core::FixerConfig fc;
        fc.aaMode = aa;
        fc.enableHoisting = true;
        core::Fixer fixer(out.hippoFull.get(), fc);
        out.fullSummary =
            fixer.fix(out.flushFreeReport, tracer.vm().trace(),
                      &tracer.vm().dynPointsTo());
    }
    {
        core::FixerConfig fc;
        fc.aaMode = aa;
        fc.enableHoisting = false;
        core::Fixer fixer(out.hippoIntra.get(), fc);
        out.intraSummary =
            fixer.fix(out.flushFreeReport, tracer.vm().trace(),
                      &tracer.vm().dynPointsTo());
    }

    // Optimized leg: repair a fourth copy exactly like RedisH-full
    // (the fixer is deterministic, so it comes out identical), then
    // shrink it with the global flush/fence optimizer.
    if (optimized) {
        out.hippoOpt = buildPmkv(cfg);
        core::FixerConfig fc;
        fc.aaMode = aa;
        fc.enableHoisting = true;
        core::Fixer fixer(out.hippoOpt.get(), fc);
        fixer.fix(out.flushFreeReport, tracer.vm().trace(),
                  &tracer.vm().dynPointsTo());
        out.optStats = core::optimizeFlushes(out.hippoOpt.get());
    }

    // Validate every repair: re-run the bug finder (§6.1).
    std::vector<ir::Module *> repaired{out.hippoFull.get(),
                                       out.hippoIntra.get()};
    if (out.hippoOpt)
        repaired.push_back(out.hippoOpt.get());
    for (ir::Module *m : repaired) {
        pmem::PmPool vpool(64u << 20);
        vm::VmConfig vvc;
        vvc.traceEnabled = true;
        KvDriver check(m, &vpool, vvc);
        traceCoverageRun(check);
        auto report = pmcheck::analyze(check.vm().trace());
        if (!report.clean()) {
            hippo_fatal("repaired pmkv (%s) still has %zu bug(s)",
                        m->name().c_str(), report.bugs.size());
        }
    }
    return out;
}

} // namespace hippo::apps
