/**
 * @file
 * racekv: a racy publisher/consumer KV slab for the interleaving-
 * bounded explorer (DESIGN.md "Thread model & interleaving-bounded
 * exploration"). A producer thread fills per-line slots and publishes
 * each with a release-ordered atomic flag; the main thread consumes
 * concurrently, joins, and records the published count under a
 * durability point. Its recovery entry classifies every published
 * slot as valid or torn, so a crash image in which a publication
 * became durable before its payload is directly visible in the
 * recovered value.
 *
 * The default build seeds two durability bugs:
 *  - the slot payload is never flushed before the release publication
 *    (the cross-thread CROSS bug the interleaving explorer forks at);
 *  - the published-count bump is never flushed before the final
 *    durability point (a plain single-thread missing-flush&fence).
 *
 * Both knobs on produce the developer-fixed build: detector-clean,
 * and race-free under every bounded schedule.
 */

#ifndef HIPPO_APPS_RACEKV_HH
#define HIPPO_APPS_RACEKV_HH

#include <memory>

#include "ir/module.hh"

namespace hippo::apps
{

/** Build knobs: which durability steps the build performs. */
struct RaceKvBuild
{
    uint32_t slots = 4;      ///< published slots (one PM line each)
    bool flushSlots = false; ///< flush+fence payload before publish
    bool flushCount = false; ///< flush+fence the final count bump
};

/** PM pool bytes the racekv region needs. */
constexpr uint64_t raceKvPoolBytes = 4096;

/** Entry / recovery function names (see buildRaceKv). */
constexpr const char *raceKvEntry = "main";
constexpr const char *raceKvRecovery = "recover";

/**
 * Build the module: @c \@producer (spawned thread), @c \@main
 * (spawn, concurrent poll, join, count bump, durpoint), and
 * @c \@recover, which returns `valid + 100 * torn` over the
 * published slots — torn > 0 exactly when a crash image holds a
 * durable publication flag whose payload did not persist.
 */
std::unique_ptr<ir::Module> buildRaceKv(const RaceKvBuild &b = {});

} // namespace hippo::apps

#endif // HIPPO_APPS_RACEKV_HH
