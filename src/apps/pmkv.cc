#include "apps/pmkv.hh"

#include "ir/builder.hh"
#include "ir/verifier.hh"
#include "support/logging.hh"

namespace hippo::apps
{

using namespace hippo::ir;

namespace
{

/** Entry layout offsets (all fields u64). */
constexpr uint64_t entNext = 0;
constexpr uint64_t entKey = 8;
constexpr uint64_t entValLen = 16;
constexpr uint64_t entChecksum = 24;
constexpr uint64_t entValue = 32;

/** Meta layout offsets. */
constexpr uint64_t metaHead = 0;
constexpr uint64_t metaCount = 8;
constexpr uint64_t metaChecksum = 16;
constexpr uint64_t metaBytes = 64;

/** First usable log offset (0 is the "null" chain link). */
constexpr uint64_t logStart = 8;

/** Builder-side helper bundle shared by all pmkv functions. */
struct Ctx
{
    Module *m;
    IRBuilder b;
    const PmkvConfig &cfg;

    Function *bufCopy = nullptr;
    Function *u64Store = nullptr;
    Function *hdrChecksum = nullptr;
    Function *statsBump = nullptr;
    Function *devPersist = nullptr;
    Function *hashKey = nullptr;
    Function *logAlloc = nullptr;
    Function *kvSet = nullptr;
    Function *kvGet = nullptr;

    Ctx(Module *mod, const PmkvConfig &c) : m(mod), b(mod), cfg(c) {}

    bool manual() const
    {
        return cfg.variant == PmkvVariant::Manual;
    }

    Constant *
    ci(uint64_t v)
    {
        return m->getInt(v);
    }

    /** round up to a multiple of 8: (v + 7) & ~7 */
    Instruction *
    roundUp8(Value *v)
    {
        Instruction *p7 = b.createAdd(v, ci(7));
        return b.createBin(BinOp::And, p7, ci(~7ULL));
    }
};

/** @buf_copy(dst, src, len): 8 bytes per iteration. */
void
buildBufCopy(Ctx &c)
{
    Function *f = c.m->addFunction("buf_copy", Type::Void);
    Argument *dst = f->addParam(Type::Ptr, "dst");
    Argument *src = f->addParam(Type::Ptr, "src");
    Argument *len = f->addParam(Type::Int, "len");
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *loop = f->addBlock("loop");
    BasicBlock *body = f->addBlock("body");
    BasicBlock *exit = f->addBlock("exit");

    IRBuilder &b = c.b;
    b.setLoc("pmkv.c", 10);
    b.setInsertPoint(entry);
    Instruction *iv = b.createAlloca(8);
    b.createStore(c.ci(0), iv, 8);
    b.createBr(loop);

    b.setInsertPoint(loop);
    Instruction *i = b.createLoad(iv, 8);
    Instruction *more = b.createCmp(CmpPred::Ult, i, len);
    b.createCondBr(more, body, exit);

    b.setInsertPoint(body);
    b.setLoc("pmkv.c", 13);
    Instruction *s = b.createGep(src, i);
    Instruction *v = b.createLoad(s, 8);
    Instruction *d = b.createGep(dst, i);
    b.createStore(v, d, 8);
    if (c.manual()) {
        // Redis-pmem does NOT flush inside its copy helper either;
        // it persists ranges at the call sites (cf. Listing 2).
    }
    b.createStore(b.createAdd(i, c.ci(8)), iv, 8);
    b.createBr(loop);

    b.setInsertPoint(exit);
    b.createRet();
    c.bufCopy = f;
}

/** @u64_store(p, v): the shared single-store primitive. */
void
buildU64Store(Ctx &c)
{
    Function *f = c.m->addFunction("u64_store", Type::Void);
    Argument *p = f->addParam(Type::Ptr, "p");
    Argument *v = f->addParam(Type::Int, "v");
    IRBuilder &b = c.b;
    b.setInsertPoint(f->addBlock("entry"));
    b.setLoc("pmkv.c", 22);
    b.createStore(v, p, 8);
    b.createRet();
    c.u64Store = f;
}

/**
 * @hdr_checksum(p, words): sums the first @p words u64s of p and
 * stores the sum at p + words*8 through @u64_store.
 */
void
buildHdrChecksum(Ctx &c)
{
    Function *f = c.m->addFunction("hdr_checksum", Type::Void);
    Argument *p = f->addParam(Type::Ptr, "p");
    Argument *words = f->addParam(Type::Int, "words");
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *loop = f->addBlock("loop");
    BasicBlock *body = f->addBlock("body");
    BasicBlock *done = f->addBlock("done");

    IRBuilder &b = c.b;
    b.setInsertPoint(entry);
    b.setLoc("pmkv.c", 30);
    Instruction *iv = b.createAlloca(8);
    Instruction *acc = b.createAlloca(8);
    b.createStore(c.ci(0), iv, 8);
    b.createStore(c.ci(0xc5a1d), acc, 8);
    b.createBr(loop);

    b.setInsertPoint(loop);
    Instruction *i = b.createLoad(iv, 8);
    Instruction *more = b.createCmp(CmpPred::Ult, i, words);
    b.createCondBr(more, body, done);

    b.setInsertPoint(body);
    Instruction *off = b.createMul(i, c.ci(8));
    Instruction *wp = b.createGep(p, off);
    Instruction *w = b.createLoad(wp, 8);
    Instruction *cur = b.createLoad(acc, 8);
    Instruction *mixed = b.createBin(
        BinOp::Xor, b.createMul(cur, c.ci(0x100000001b3ULL)), w);
    b.createStore(mixed, acc, 8);
    b.createStore(b.createAdd(i, c.ci(1)), iv, 8);
    b.createBr(loop);

    b.setInsertPoint(done);
    b.setLoc("pmkv.c", 38);
    Instruction *sum = b.createLoad(acc, 8);
    Instruction *ckp = b.createGep(p, b.createMul(words, c.ci(8)));
    b.createCall(c.u64Store, {ckp, sum});
    b.createRet();
    c.hdrChecksum = f;
}

/** @stats_bump(p): volatile counter increment via @u64_store. */
void
buildStatsBump(Ctx &c)
{
    Function *f = c.m->addFunction("stats_bump", Type::Void);
    Argument *p = f->addParam(Type::Ptr, "p");
    IRBuilder &b = c.b;
    b.setInsertPoint(f->addBlock("entry"));
    b.setLoc("pmkv.c", 45);
    Instruction *v = b.createLoad(p, 8);
    b.createCall(c.u64Store, {p, b.createAdd(v, c.ci(1))});
    b.createRet();
    c.statsBump = f;
}

/** @dev_persist(p, len): pmem_persist analog (Manual only). */
void
buildDevPersist(Ctx &c)
{
    Function *f = c.m->addFunction("dev_persist", Type::Void);
    Argument *p = f->addParam(Type::Ptr, "p");
    Argument *len = f->addParam(Type::Int, "len");
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *loop = f->addBlock("loop");
    BasicBlock *body = f->addBlock("body");
    BasicBlock *done = f->addBlock("done");

    IRBuilder &b = c.b;
    b.setInsertPoint(entry);
    b.setLoc("pmkv.c", 52);
    Instruction *iv = b.createAlloca(8);
    b.createStore(c.ci(0), iv, 8);
    b.createBr(loop);

    b.setInsertPoint(loop);
    Instruction *i = b.createLoad(iv, 8);
    Instruction *more = b.createCmp(CmpPred::Ult, i, len);
    b.createCondBr(more, body, done);

    b.setInsertPoint(body);
    b.createFlush(b.createGep(p, i), FlushKind::Clwb);
    b.createStore(b.createAdd(i, c.ci(64)), iv, 8);
    b.createBr(loop);

    b.setInsertPoint(done);
    Instruction *last = b.createSub(len, c.ci(1));
    b.createFlush(b.createGep(p, last), FlushKind::Clwb);
    b.createFence(FenceKind::Sfence);
    b.createRet();
    c.devPersist = f;
}

/** @hash_key(key) -> bucket index. */
void
buildHashKey(Ctx &c)
{
    Function *f = c.m->addFunction("hash_key", Type::Int);
    Argument *key = f->addParam(Type::Int, "key");
    IRBuilder &b = c.b;
    b.setInsertPoint(f->addBlock("entry"));
    b.setLoc("pmkv.c", 60);
    Instruction *h1 = b.createBin(
        BinOp::Xor, key, b.createBin(BinOp::LShr, key, c.ci(33)));
    Instruction *h2 = b.createMul(h1, c.ci(0xff51afd7ed558ccdULL));
    Instruction *h3 = b.createBin(
        BinOp::Xor, h2, b.createBin(BinOp::LShr, h2, c.ci(29)));
    Instruction *idx =
        b.createBin(BinOp::And, h3, c.ci(c.cfg.buckets - 1));
    b.createRet(idx);
    c.hashKey = f;
}

/** @log_alloc(meta, len) -> entry offset (reads head only). */
void
buildLogAlloc(Ctx &c)
{
    Function *f = c.m->addFunction("log_alloc", Type::Int);
    Argument *meta = f->addParam(Type::Ptr, "meta");
    f->addParam(Type::Int, "len");
    IRBuilder &b = c.b;
    b.setInsertPoint(f->addBlock("entry"));
    b.setLoc("pmkv.c", 70);
    Instruction *head = b.createLoad(
        b.createGep(meta, c.ci(metaHead)), 8);
    b.createRet(head);
    c.logAlloc = f;
}

/** @kv_set(key, val, vallen): the persisting write path. */
void
buildKvSet(Ctx &c)
{
    Function *f = c.m->addFunction("kv_set", Type::Void);
    Argument *key = f->addParam(Type::Int, "key");
    Argument *val = f->addParam(Type::Ptr, "val");
    Argument *vallen = f->addParam(Type::Int, "vallen");
    IRBuilder &b = c.b;
    b.setInsertPoint(f->addBlock("entry"));
    b.setLoc("pmkv.c", 80);

    Instruction *meta = b.createPmMap("kv.meta", metaBytes);
    Instruction *buckets =
        b.createPmMap("kv.buckets", c.cfg.buckets * 8);
    Instruction *log = b.createPmMap("kv.log", c.cfg.logCapacity);

    Instruction *h = b.createCall(c.hashKey, {key});
    Instruction *bucketp =
        b.createGep(buckets, b.createMul(h, c.ci(8)));
    Instruction *vlen8 = c.roundUp8(vallen);
    Instruction *entsize = b.createAdd(vlen8, c.ci(entValue));
    Instruction *off = b.createCall(c.logAlloc, {meta, vallen});
    Instruction *entry = b.createGep(log, off);

    // Entry header: next link, key, value length.
    b.setLoc("pmkv.c", 86);
    Instruction *chain = b.createLoad(bucketp, 8);
    b.createStore(chain, b.createGep(entry, c.ci(entNext)), 8);
    b.setLoc("pmkv.c", 87);
    b.createStore(key, b.createGep(entry, c.ci(entKey)), 8);
    b.setLoc("pmkv.c", 88);
    b.createStore(vallen, b.createGep(entry, c.ci(entValLen)), 8);
    b.setLoc("pmkv.c", 89);
    b.createCall(c.hdrChecksum, {entry, c.ci(3)});

    // Value payload through the shared copy loop.
    b.setLoc("pmkv.c", 91);
    b.createCall(c.bufCopy,
                 {b.createGep(entry, c.ci(entValue)), val, vlen8});
    if (c.manual()) {
        b.createCall(c.devPersist, {entry, entsize});
    }

    // Publish: bucket head, then allocation head + count + checksum.
    b.setLoc("pmkv.c", 95);
    b.createStore(off, bucketp, 8);
    if (c.manual())
        b.createFlush(bucketp, FlushKind::Clwb);

    b.setLoc("pmkv.c", 97);
    b.createStore(b.createAdd(off, entsize),
                  b.createGep(meta, c.ci(metaHead)), 8);
    Instruction *countp = b.createGep(meta, c.ci(metaCount));
    b.setLoc("pmkv.c", 98);
    b.createStore(b.createAdd(b.createLoad(countp, 8), c.ci(1)),
                  countp, 8);
    b.setLoc("pmkv.c", 99);
    b.createCall(c.hdrChecksum, {meta, c.ci(2)});
    if (c.manual()) {
        b.createCall(c.devPersist, {meta, c.ci(metaBytes)});
    } else {
        // The ordering point the developer kept (§6.3: fences are
        // left in place; only flushes were removed).
        b.createFence(FenceKind::Sfence);
    }
    b.setLoc("pmkv.c", 103);
    b.createDurPoint("set-committed");
    b.createRet();
    c.kvSet = f;
}

/** @kv_get(key, out) -> vallen (0 on miss). */
void
buildKvGet(Ctx &c)
{
    Function *f = c.m->addFunction("kv_get", Type::Int);
    Argument *key = f->addParam(Type::Int, "key");
    Argument *out = f->addParam(Type::Ptr, "out");
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *loop = f->addBlock("loop");
    BasicBlock *check = f->addBlock("check");
    BasicBlock *found = f->addBlock("found");
    BasicBlock *step = f->addBlock("step");
    BasicBlock *miss = f->addBlock("miss");

    IRBuilder &b = c.b;
    b.setInsertPoint(entry);
    b.setLoc("pmkv.c", 110);
    Instruction *buckets =
        b.createPmMap("kv.buckets", c.cfg.buckets * 8);
    Instruction *log = b.createPmMap("kv.log", c.cfg.logCapacity);
    Instruction *h = b.createCall(c.hashKey, {key});
    Instruction *bucketp =
        b.createGep(buckets, b.createMul(h, c.ci(8)));
    Instruction *offv = b.createAlloca(8);
    b.createStore(b.createLoad(bucketp, 8), offv, 8);
    b.createBr(loop);

    b.setInsertPoint(loop);
    Instruction *off = b.createLoad(offv, 8);
    Instruction *isnull = b.createCmp(CmpPred::Eq, off, c.ci(0));
    b.createCondBr(isnull, miss, check);

    b.setInsertPoint(check);
    Instruction *ent = b.createGep(log, off);
    Instruction *ekey =
        b.createLoad(b.createGep(ent, c.ci(entKey)), 8);
    Instruction *match = b.createCmp(CmpPred::Eq, ekey, key);
    b.createCondBr(match, found, step);

    b.setInsertPoint(found);
    b.setLoc("pmkv.c", 120);
    Instruction *vl =
        b.createLoad(b.createGep(ent, c.ci(entValLen)), 8);
    Instruction *vl8 = c.roundUp8(vl);
    b.createCall(c.bufCopy,
                 {out, b.createGep(ent, c.ci(entValue)), vl8});
    b.createRet(vl);

    b.setInsertPoint(step);
    b.createStore(b.createLoad(b.createGep(ent, c.ci(entNext)), 8),
                  offv, 8);
    b.createBr(loop);

    b.setInsertPoint(miss);
    b.createRet(c.ci(0));
    c.kvGet = f;
}

/** @kv_init(): map + format the store when empty. */
void
buildKvInit(Ctx &c)
{
    Function *f = c.m->addFunction("kv_init", Type::Void);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *format = f->addBlock("format");
    BasicBlock *done = f->addBlock("done");

    IRBuilder &b = c.b;
    b.setInsertPoint(entry);
    b.setLoc("pmkv.c", 130);
    Instruction *meta = b.createPmMap("kv.meta", metaBytes);
    Instruction *buckets =
        b.createPmMap("kv.buckets", c.cfg.buckets * 8);
    b.createPmMap("kv.log", c.cfg.logCapacity);
    Instruction *head =
        b.createLoad(b.createGep(meta, c.ci(metaHead)), 8);
    Instruction *fresh = b.createCmp(CmpPred::Eq, head, c.ci(0));
    b.createCondBr(fresh, format, done);

    b.setInsertPoint(format);
    b.setLoc("pmkv.c", 134);
    b.createMemset(buckets, c.ci(0), c.ci(c.cfg.buckets * 8));
    b.setLoc("pmkv.c", 135);
    b.createStore(c.ci(logStart), b.createGep(meta, c.ci(metaHead)),
                  8);
    b.setLoc("pmkv.c", 136);
    b.createStore(c.ci(0), b.createGep(meta, c.ci(metaCount)), 8);
    b.setLoc("pmkv.c", 137);
    b.createCall(c.hdrChecksum, {meta, c.ci(2)});
    if (c.manual()) {
        b.createCall(c.devPersist,
                     {buckets, c.ci(c.cfg.buckets * 8)});
        b.createCall(c.devPersist, {meta, c.ci(metaBytes)});
    } else {
        b.createFence(FenceKind::Sfence);
    }
    b.createDurPoint("init-committed");
    b.createBr(done);

    b.setInsertPoint(done);
    b.createRet();
}

/** Request handlers: the "network" layer with volatile staging. */
void
buildHandlers(Ctx &c)
{
    IRBuilder &b = c.b;

    auto build_write_handler = [&](const std::string &name,
                                   int line) {
        Function *f = c.m->addFunction(name, Type::Void);
        Argument *key = f->addParam(Type::Int, "key");
        Argument *vallen = f->addParam(Type::Int, "vallen");
        b.setInsertPoint(f->addBlock("entry"));
        b.setLoc("pmkv.c", line);
        Instruction *staging = b.createAlloca(c.cfg.stagingBytes);
        Instruction *stats = b.createAlloca(8);
        // "Receive" the request payload into the staging buffer.
        b.createMemset(staging, b.createBin(BinOp::And, key,
                                            c.ci(0xff)),
                       c.roundUp8(vallen));
        // Validate the (volatile) request header.
        b.createCall(c.hdrChecksum, {staging, c.ci(2)});
        b.createCall(c.statsBump, {stats});
        b.createCall(c.kvSet, {key, staging, vallen});
        b.createRet();
        return f;
    };

    build_write_handler("kv_handle_set", 150);
    build_write_handler("kv_handle_update", 160);

    // kv_handle_get(key) -> vallen
    {
        Function *f = c.m->addFunction("kv_handle_get", Type::Int);
        Argument *key = f->addParam(Type::Int, "key");
        b.setInsertPoint(f->addBlock("entry"));
        b.setLoc("pmkv.c", 170);
        Instruction *out = b.createAlloca(c.cfg.stagingBytes);
        Instruction *stats = b.createAlloca(8);
        b.createCall(c.statsBump, {stats});
        Instruction *vl = b.createCall(c.kvGet, {key, out});
        b.createRet(vl);
    }

    // kv_handle_rmw(key, vallen)
    {
        Function *f = c.m->addFunction("kv_handle_rmw", Type::Void);
        Argument *key = f->addParam(Type::Int, "key");
        Argument *vallen = f->addParam(Type::Int, "vallen");
        b.setInsertPoint(f->addBlock("entry"));
        b.setLoc("pmkv.c", 180);
        Instruction *out = b.createAlloca(c.cfg.stagingBytes);
        Instruction *stats = b.createAlloca(8);
        b.createCall(c.statsBump, {stats});
        b.createCall(c.kvGet, {key, out});
        // Modify in place, then write back through kv_set.
        Instruction *w = b.createLoad(out, 8);
        b.createStore(b.createAdd(w, c.ci(1)), out, 8);
        b.createCall(c.kvSet, {key, out, vallen});
        b.createRet();
    }

    // kv_handle_scan(key, n) -> entries touched
    {
        Function *f = c.m->addFunction("kv_handle_scan", Type::Int);
        Argument *key = f->addParam(Type::Int, "key");
        Argument *n = f->addParam(Type::Int, "n");
        BasicBlock *entry = f->addBlock("entry");
        BasicBlock *loop = f->addBlock("loop");
        BasicBlock *body = f->addBlock("body");
        BasicBlock *done = f->addBlock("done");

        b.setInsertPoint(entry);
        b.setLoc("pmkv.c", 190);
        Instruction *out = b.createAlloca(c.cfg.stagingBytes);
        Instruction *stats = b.createAlloca(8);
        b.createCall(c.statsBump, {stats});
        Instruction *iv = b.createAlloca(8);
        Instruction *hits = b.createAlloca(8);
        b.createStore(c.ci(0), iv, 8);
        b.createStore(c.ci(0), hits, 8);
        b.createBr(loop);

        b.setInsertPoint(loop);
        Instruction *i = b.createLoad(iv, 8);
        Instruction *more = b.createCmp(CmpPred::Ult, i, n);
        b.createCondBr(more, body, done);

        b.setInsertPoint(body);
        Instruction *vl = b.createCall(
            c.kvGet, {b.createAdd(key, i), out});
        Instruction *hit = b.createCmp(CmpPred::Ne, vl, c.ci(0));
        Instruction *cur = b.createLoad(hits, 8);
        b.createStore(b.createAdd(cur, hit), hits, 8);
        b.createStore(b.createAdd(i, c.ci(1)), iv, 8);
        b.createBr(loop);

        b.setInsertPoint(done);
        b.createRet(b.createLoad(hits, 8));
    }
}

/** @kv_recover() -> count of checksum-valid entries in the log. */
void
buildKvRecover(Ctx &c)
{
    Function *f = c.m->addFunction("kv_recover", Type::Int);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *loop = f->addBlock("loop");
    BasicBlock *body = f->addBlock("body");
    BasicBlock *done = f->addBlock("done");

    IRBuilder &b = c.b;
    b.setInsertPoint(entry);
    b.setLoc("pmkv.c", 210);
    Instruction *meta = b.createPmMap("kv.meta", metaBytes);
    Instruction *log = b.createPmMap("kv.log", c.cfg.logCapacity);
    Instruction *limit =
        b.createLoad(b.createGep(meta, c.ci(metaHead)), 8);
    Instruction *offv = b.createAlloca(8);
    Instruction *valid = b.createAlloca(8);
    Instruction *scratch = b.createAlloca(32);
    b.createStore(c.ci(logStart), offv, 8);
    b.createStore(c.ci(0), valid, 8);
    b.createBr(loop);

    b.setInsertPoint(loop);
    Instruction *off = b.createLoad(offv, 8);
    Instruction *more = b.createCmp(CmpPred::Ult, off, limit);
    b.createCondBr(more, body, done);

    b.setInsertPoint(body);
    Instruction *ent = b.createGep(log, off);
    // Recompute the header checksum into a scratch header copy and
    // compare with the stored one.
    b.createMemcpy(scratch, ent, c.ci(24));
    b.createCall(c.hdrChecksum, {scratch, c.ci(3)});
    Instruction *want =
        b.createLoad(b.createGep(scratch, c.ci(24)), 8);
    Instruction *got =
        b.createLoad(b.createGep(ent, c.ci(entChecksum)), 8);
    Instruction *ok = b.createCmp(CmpPred::Eq, want, got);
    Instruction *cur = b.createLoad(valid, 8);
    b.createStore(b.createAdd(cur, ok), valid, 8);

    Instruction *vl =
        b.createLoad(b.createGep(ent, c.ci(entValLen)), 8);
    Instruction *ent_size =
        b.createAdd(c.roundUp8(vl), c.ci(entValue));
    b.createStore(b.createAdd(off, ent_size), offv, 8);
    b.createBr(loop);

    b.setInsertPoint(done);
    b.createRet(b.createLoad(valid, 8));
}

} // namespace

std::unique_ptr<Module>
buildPmkv(const PmkvConfig &cfg)
{
    hippo_assert((cfg.buckets & (cfg.buckets - 1)) == 0,
                 "buckets must be a power of two");
    auto m = std::make_unique<Module>(
        cfg.variant == PmkvVariant::Manual ? "pmkv-manual"
                                           : "pmkv-flushfree");
    Ctx c(m.get(), cfg);

    buildU64Store(c);
    buildBufCopy(c);
    buildHdrChecksum(c);
    buildStatsBump(c);
    if (c.manual())
        buildDevPersist(c);
    buildHashKey(c);
    buildLogAlloc(c);
    buildKvSet(c);
    buildKvGet(c);
    buildKvInit(c);
    buildHandlers(c);
    buildKvRecover(c);

    verifyOrDie(*m);
    return m;
}

} // namespace hippo::apps
