/**
 * @file
 * Host-side driver that feeds YCSB operation streams to a pmkv
 * module running in the VM, plus the factory that produces the three
 * Redis variants of the paper's §6.3 case study:
 *
 *   Redis-pm     = pmkv built with developer flushes (Manual);
 *   RedisH-full  = flush-free pmkv repaired by Hippocrates with the
 *                  hoisting heuristic enabled;
 *   RedisH-intra = flush-free pmkv repaired with hoisting disabled
 *                  (intraprocedural fixes only).
 */

#ifndef HIPPO_APPS_KV_DRIVER_HH
#define HIPPO_APPS_KV_DRIVER_HH

#include <memory>

#include "apps/pmkv.hh"
#include "core/fixer.hh"
#include "core/flush_optimizer.hh"
#include "pmem/pm_pool.hh"
#include "vm/vm.hh"
#include "ycsb/ycsb.hh"

namespace hippo::apps
{

/** Result of one workload execution. */
struct WorkloadResult
{
    uint64_t ops = 0;
    double simSeconds = 0;

    /** Simulated operations per second. */
    double
    throughput() const
    {
        return simSeconds > 0 ? ops / simSeconds : 0;
    }
};

/** Drives a pmkv module with YCSB operations. */
class KvDriver
{
  public:
    KvDriver(ir::Module *module, pmem::PmPool *pool,
             vm::VmConfig vc = {}, uint64_t val_len = 100);

    /** Run @kv_init. */
    void init();

    /** Run one full workload; returns ops and simulated time. */
    WorkloadResult run(ycsb::Workload w, uint64_t record_count,
                       uint64_t op_count, uint64_t seed);

    /** Execute a single operation. */
    void execute(const ycsb::Op &op);

    vm::Vm &vm() { return vm_; }

  private:
    vm::Vm vm_;
    uint64_t valLen_;
};

/** The §6.3 variants plus the fix summaries that made them. */
struct RedisVariants
{
    std::unique_ptr<ir::Module> manual;     ///< Redis-pm
    std::unique_ptr<ir::Module> hippoFull;  ///< RedisH-full
    std::unique_ptr<ir::Module> hippoIntra; ///< RedisH-intra
    /** RedisH-full after the global flush/fence optimizer — the
     *  "optimized fix" leg of the ablation (null unless requested). */
    std::unique_ptr<ir::Module> hippoOpt;
    core::FixSummary fullSummary;
    core::FixSummary intraSummary;
    core::FlushOptStats optStats; ///< optimizer counters for hippoOpt
    pmcheck::Report flushFreeReport; ///< bugs found pre-fix
};

/**
 * Build all the variants: builds flush-free pmkv, traces a small
 * mixed workload under the bug finder, and repairs copies of the
 * module (hoisting heuristic on/off). With @p optimized a fourth
 * copy is repaired identically to RedisH-full and then run through
 * core::optimizeFlushes. Every repaired module is re-checked to be
 * bug-free before returning.
 */
RedisVariants buildRedisVariants(
    const PmkvConfig &cfg = {},
    analysis::AaMode aa = analysis::AaMode::FullAA,
    bool optimized = false);

} // namespace hippo::apps

#endif // HIPPO_APPS_KV_DRIVER_HH
