/**
 * @file
 * The §3 study dataset: the 26 PMDK durability bugs found with
 * pmemcheck and later fixed by developers (Fig. 1). Issue numbers and
 * group-level aggregates (average commits to a passing build, average
 * and maximum days from open to close, bug kind) come from the paper;
 * the per-issue effort figures are synthesized to be consistent with
 * every aggregate the paper reports, so the Fig. 1 table can be
 * regenerated from issue-level data.
 */

#ifndef HIPPO_APPS_BUGSTUDY_HH
#define HIPPO_APPS_BUGSTUDY_HH

#include <string>
#include <vector>

namespace hippo::apps
{

/** Bug-kind classes of the study. */
enum class StudyKind { CoreLibraryOrTool, ApiMisuse };

const char *studyKindName(StudyKind k);

/** One studied PMDK issue. */
struct StudiedBug
{
    int issue = 0;
    StudyKind kind = StudyKind::CoreLibraryOrTool;
    /** Fix-effort data; absent (-1) for issues the tracker lacks. */
    int commits = -1;
    int daysOpenToClose = -1;

    bool hasEffortData() const { return commits >= 0; }
};

/** All 26 studied bugs. */
const std::vector<StudiedBug> &studiedBugs();

/** One aggregated row of the Fig. 1 table. */
struct BugStudyRow
{
    std::string issues;    ///< comma-separated issue numbers
    double avgCommits = 0; ///< -1 when the group lacks data
    double avgDays = 0;
    int maxDays = 0;
    std::string kind;
    bool hasData = false;
};

/** The four groups of Fig. 1 plus the Average row (last). */
std::vector<BugStudyRow> bugStudyTable();

} // namespace hippo::apps

#endif // HIPPO_APPS_BUGSTUDY_HH
