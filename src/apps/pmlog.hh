/**
 * @file
 * pmlog: a persistent append-only log modeled on PMDK's libpmemlog.
 * PMDK is "a mature collection of libraries" (§3); pmkv exercises the
 * object-store shape and pmlog adds the log shape: fixed header,
 * bump-allocated entries of {length, payload}, walk-based recovery.
 *
 * The buggy build seeds three durability bugs on the append path:
 * the payload copy through the shared @log_copy helper (hoistable),
 * the entry-length header store, and the write-offset publish.
 */

#ifndef HIPPO_APPS_PMLOG_HH
#define HIPPO_APPS_PMLOG_HH

#include <cstdint>
#include <memory>

#include "ir/module.hh"

namespace hippo::apps
{

/** Build parameters for pmlog. */
struct PmlogConfig
{
    uint64_t capacity = 1u << 20; ///< data region bytes
    bool seedBugs = true;         ///< build the buggy variant
};

/**
 * Build the pmlog module. Entry points:
 *  - @log_init()
 *  - @log_handle_append(seed, len) -> 1 ok / 0 full
 *  - @log_tail_read(len) -> first payload word of the last entry
 *  - @log_walk() -> complete (length-consistent) entry count
 *  - @log_rewind()
 *  - @log_example(n) -> digest
 */
std::unique_ptr<ir::Module> buildPmlog(const PmlogConfig &cfg = {});

} // namespace hippo::apps

#endif // HIPPO_APPS_PMLOG_HH
