#include "apps/bugsuite.hh"

#include <algorithm>

#include "ir/builder.hh"
#include "ir/verifier.hh"
#include "pmem/pm_pool.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"
#include "vm/vm.hh"

namespace hippo::apps
{

using namespace hippo::ir;

const char *
devFixStyleName(DevFixStyle s)
{
    switch (s) {
      case DevFixStyle::InterproceduralFlushFence:
        return "interprocedural flush+fence";
      case DevFixStyle::PortableRangedFlush:
        return "interprocedural flush (portable)";
    }
    return "?";
}

namespace
{

/** libpmem-style helpers the PMDK developers reach for. */
struct LibPmem
{
    Function *flush;   ///< @pmem_flush(p, len): ranged flush
    Function *persist; ///< @pmem_persist(p, len): flush + fence
};

LibPmem
addLibPmem(Module *m)
{
    IRBuilder b(m);
    LibPmem lib;

    auto build_range_flush = [&](const std::string &name,
                                 bool with_fence) {
        Function *f = m->addFunction(name, Type::Void);
        Argument *p = f->addParam(Type::Ptr, "p");
        Argument *len = f->addParam(Type::Int, "len");
        BasicBlock *entry = f->addBlock("entry");
        BasicBlock *loop = f->addBlock("loop");
        BasicBlock *body = f->addBlock("body");
        BasicBlock *done = f->addBlock("done");
        b.setInsertPoint(entry);
        b.setLoc("libpmem.c", 1);
        Instruction *iv = b.createAlloca(8);
        b.createStore(m->getInt(0), iv, 8);
        b.createBr(loop);
        b.setInsertPoint(loop);
        Instruction *i = b.createLoad(iv, 8);
        b.createCondBr(b.createCmp(CmpPred::Ult, i, len), body,
                       done);
        b.setInsertPoint(body);
        b.createFlush(b.createGep(p, i), FlushKind::Clwb);
        b.createStore(b.createAdd(i, m->getInt(64)), iv, 8);
        b.createBr(loop);
        b.setInsertPoint(done);
        Instruction *last = b.createSub(len, m->getInt(1));
        b.createFlush(b.createGep(p, last), FlushKind::Clwb);
        if (with_fence)
            b.createFence(FenceKind::Sfence);
        b.createRet();
        return f;
    };

    lib.flush = build_range_flush("pmem_flush", false);
    lib.persist = build_range_flush("pmem_persist", true);
    return lib;
}

/**
 * Shared skeleton for the "helper with mixed callers" cases
 * (Group A: interprocedural developer fixes). The knobs produce
 * materially different reproducers per issue while keeping the
 * corpus maintainable.
 */
struct HelperCaseShape
{
    const char *region;     ///< pool region name
    uint64_t poolBytes = 4096;
    const char *file;       ///< synthetic source file name
};

/** pmdk-447: pool-header memcpy through a shared copy helper. */
std::unique_ptr<Module>
build447(bool dev_fixed)
{
    auto m = std::make_unique<Module>("pmdk-447");
    LibPmem lib = addLibPmem(m.get());
    IRBuilder b(m.get());

    Function *hdr_copy = m->addFunction("hdr_copy", Type::Void);
    {
        Argument *dst = hdr_copy->addParam(Type::Ptr, "dst");
        Argument *src = hdr_copy->addParam(Type::Ptr, "src");
        Argument *len = hdr_copy->addParam(Type::Int, "len");
        b.setInsertPoint(hdr_copy->addBlock("entry"));
        b.setLoc("pool_hdr.c", 12);
        b.createMemcpy(dst, src, len);
        b.createRet();
    }

    Function *main = m->addFunction("test_main", Type::Int);
    b.setInsertPoint(main->addBlock("entry"));
    b.setLoc("pool_hdr.c", 40);
    Instruction *pool = b.createPmMap("pool447", 4096);
    Instruction *scratch = b.createAlloca(128);
    Instruction *shadow = b.createAlloca(128);
    b.createMemset(scratch, m->getInt(0x5A), m->getInt(64));
    // Volatile use of the helper: the in-memory shadow header.
    b.createCall(hdr_copy, {shadow, scratch, m->getInt(64)});
    // PM use: write the pool header. Never flushed (the bug).
    b.setLoc("pool_hdr.c", 44);
    b.createCall(hdr_copy, {pool, scratch, m->getInt(64)});
    if (dev_fixed)
        b.createCall(lib.persist, {pool, m->getInt(64)});
    b.createDurPoint("pmdk-447");
    Instruction *check = b.createLoad(pool, 8);
    b.createPrint("hdr0", check);
    b.createRet(check);

    verifyOrDie(*m);
    return m;
}

/** pmdk-458: persistent list insert-at-head via a slot-store helper. */
std::unique_ptr<Module>
build458(bool dev_fixed)
{
    auto m = std::make_unique<Module>("pmdk-458");
    LibPmem lib = addLibPmem(m.get());
    IRBuilder b(m.get());

    Function *slot_store = m->addFunction("slot_store", Type::Void);
    {
        Argument *p = slot_store->addParam(Type::Ptr, "p");
        Argument *v = slot_store->addParam(Type::Int, "v");
        b.setInsertPoint(slot_store->addBlock("entry"));
        b.setLoc("list.c", 8);
        b.createStore(v, p, 8);
        b.createRet();
    }

    Function *main = m->addFunction("test_main", Type::Int);
    b.setInsertPoint(main->addBlock("entry"));
    b.setLoc("list.c", 30);
    Instruction *pool = b.createPmMap("pool458", 4096);
    Instruction *tmp = b.createAlloca(64);
    // Volatile bookkeeping through the same helper.
    b.createCall(slot_store, {tmp, m->getInt(1)});
    // New node at offset 64: value, next; then head publish.
    b.setLoc("list.c", 34);
    b.createCall(slot_store,
                 {b.createGep(pool, m->getInt(64)), m->getInt(77)});
    b.setLoc("list.c", 35);
    b.createCall(slot_store,
                 {b.createGep(pool, m->getInt(72)), m->getInt(0)});
    b.setLoc("list.c", 36);
    b.createCall(slot_store, {pool, m->getInt(64)});
    if (dev_fixed)
        b.createCall(lib.persist, {pool, m->getInt(128)});
    b.createDurPoint("pmdk-458");
    Instruction *head = b.createLoad(pool, 8);
    b.createPrint("head", head);
    b.createRet(head);

    verifyOrDie(*m);
    return m;
}

/** pmdk-459: insert-at-tail, two frames deep (hoist level 2). */
std::unique_ptr<Module>
build459(bool dev_fixed)
{
    auto m = std::make_unique<Module>("pmdk-459");
    LibPmem lib = addLibPmem(m.get());
    IRBuilder b(m.get());

    Function *slot_store = m->addFunction("slot_store", Type::Void);
    {
        Argument *p = slot_store->addParam(Type::Ptr, "p");
        Argument *v = slot_store->addParam(Type::Int, "v");
        b.setInsertPoint(slot_store->addBlock("entry"));
        b.setLoc("list.c", 8);
        b.createStore(v, p, 8);
        b.createRet();
    }

    // list_insert(list, val): tail node write + tail pointer swing.
    Function *list_insert = m->addFunction("list_insert", Type::Void);
    {
        Argument *list = list_insert->addParam(Type::Ptr, "list");
        Argument *val = list_insert->addParam(Type::Int, "val");
        b.setInsertPoint(list_insert->addBlock("entry"));
        b.setLoc("list.c", 18);
        Instruction *tail =
            b.createLoad(b.createGep(list, m->getInt(8)), 8);
        Instruction *node = b.createGep(
            list, b.createAdd(m->getInt(64),
                              b.createMul(tail, m->getInt(16))));
        b.createCall(slot_store, {node, val});
        b.setLoc("list.c", 20);
        b.createCall(slot_store,
                     {b.createGep(list, m->getInt(8)),
                      b.createAdd(tail, m->getInt(1))});
        b.createRet();
    }

    Function *main = m->addFunction("test_main", Type::Int);
    b.setInsertPoint(main->addBlock("entry"));
    b.setLoc("list.c", 40);
    Instruction *pool = b.createPmMap("pool459", 4096);
    Instruction *shadow = b.createAlloca(512);
    // The volatile shadow list exercises both helper levels.
    b.createCall(list_insert, {shadow, m->getInt(5)});
    b.setLoc("list.c", 43);
    b.createCall(list_insert, {pool, m->getInt(41)});
    if (dev_fixed)
        b.createCall(lib.persist, {pool, m->getInt(256)});
    b.createDurPoint("pmdk-459");
    Instruction *tail =
        b.createLoad(b.createGep(pool, m->getInt(8)), 8);
    b.createPrint("tail", tail);
    b.createRet(tail);

    verifyOrDie(*m);
    return m;
}

/** pmdk-460: list remove via an unlink helper with mixed callers. */
std::unique_ptr<Module>
build460(bool dev_fixed)
{
    auto m = std::make_unique<Module>("pmdk-460");
    LibPmem lib = addLibPmem(m.get());
    IRBuilder b(m.get());

    Function *unlink = m->addFunction("list_unlink", Type::Void);
    {
        Argument *headp = unlink->addParam(Type::Ptr, "headp");
        Argument *next = unlink->addParam(Type::Int, "next");
        b.setInsertPoint(unlink->addBlock("entry"));
        b.setLoc("list.c", 60);
        b.createStore(next, headp, 8);
        b.createRet();
    }

    Function *main = m->addFunction("test_main", Type::Int);
    b.setInsertPoint(main->addBlock("entry"));
    b.setLoc("list.c", 80);
    Instruction *pool = b.createPmMap("pool460", 4096);
    Instruction *shadow = b.createAlloca(64);
    // Seed: head -> node@64 -> node@128 (pre-existing, persisted).
    b.createStore(m->getInt(64), pool, 8);
    b.createStore(m->getInt(128),
                  b.createGep(pool, m->getInt(64)), 8);
    b.createFlush(pool, FlushKind::Clwb);
    b.createFlush(b.createGep(pool, m->getInt(64)),
                  FlushKind::Clwb);
    b.createFence(FenceKind::Sfence);
    // Volatile shadow unlink through the same helper.
    b.createCall(unlink, {shadow, m->getInt(0)});
    // Remove the head node: head = head->next. The bug.
    b.setLoc("list.c", 86);
    b.createCall(unlink, {pool, m->getInt(128)});
    if (dev_fixed)
        b.createCall(lib.persist, {pool, m->getInt(8)});
    b.createDurPoint("pmdk-460");
    Instruction *head = b.createLoad(pool, 8);
    b.createPrint("head", head);
    b.createRet(head);

    verifyOrDie(*m);
    return m;
}

/** pmdk-461: object user-data memcpy via a shared od_copy helper. */
std::unique_ptr<Module>
build461(bool dev_fixed)
{
    auto m = std::make_unique<Module>("pmdk-461");
    LibPmem lib = addLibPmem(m.get());
    IRBuilder b(m.get());

    Function *od_copy = m->addFunction("od_copy", Type::Void);
    {
        Argument *obj = od_copy->addParam(Type::Ptr, "obj");
        Argument *buf = od_copy->addParam(Type::Ptr, "buf");
        Argument *n = od_copy->addParam(Type::Int, "n");
        b.setInsertPoint(od_copy->addBlock("entry"));
        b.setLoc("obj.c", 15);
        b.createMemcpy(b.createGep(obj, m->getInt(16)), buf, n);
        b.createRet();
    }

    Function *main = m->addFunction("test_main", Type::Int);
    b.setInsertPoint(main->addBlock("entry"));
    b.setLoc("obj.c", 44);
    Instruction *pool = b.createPmMap("pool461", 4096);
    Instruction *payload = b.createAlloca(128);
    Instruction *volobj = b.createAlloca(160);
    b.createMemset(payload, m->getInt(0x33), m->getInt(96));
    b.createCall(od_copy, {volobj, payload, m->getInt(96)});
    b.setLoc("obj.c", 47);
    b.createCall(od_copy, {pool, payload, m->getInt(96)});
    if (dev_fixed)
        b.createCall(lib.persist, {pool, m->getInt(128)});
    b.createDurPoint("pmdk-461");
    Instruction *w =
        b.createLoad(b.createGep(pool, m->getInt(16)), 8);
    b.createPrint("userdata0", w);
    b.createRet(w);

    verifyOrDie(*m);
    return m;
}

/** pmdk-585: pool-tool metadata writer loop with mixed callers. */
std::unique_ptr<Module>
build585(bool dev_fixed)
{
    auto m = std::make_unique<Module>("pmdk-585");
    LibPmem lib = addLibPmem(m.get());
    IRBuilder b(m.get());

    Function *meta_write = m->addFunction("meta_write", Type::Void);
    {
        Argument *dst = meta_write->addParam(Type::Ptr, "dst");
        Argument *n = meta_write->addParam(Type::Int, "n");
        BasicBlock *entry = meta_write->addBlock("entry");
        BasicBlock *loop = meta_write->addBlock("loop");
        BasicBlock *body = meta_write->addBlock("body");
        BasicBlock *done = meta_write->addBlock("done");
        b.setInsertPoint(entry);
        b.setLoc("spoil.c", 22);
        Instruction *iv = b.createAlloca(8);
        b.createStore(m->getInt(0), iv, 8);
        b.createBr(loop);
        b.setInsertPoint(loop);
        Instruction *i = b.createLoad(iv, 8);
        b.createCondBr(b.createCmp(CmpPred::Ult, i, n), body, done);
        b.setInsertPoint(body);
        b.setLoc("spoil.c", 25);
        b.createStore(b.createMul(i, m->getInt(0x9E37)),
                      b.createGep(dst, b.createMul(i, m->getInt(8))),
                      8);
        b.createStore(b.createAdd(i, m->getInt(1)), iv, 8);
        b.createBr(loop);
        b.setInsertPoint(done);
        b.createRet();
    }

    Function *main = m->addFunction("test_main", Type::Int);
    b.setInsertPoint(main->addBlock("entry"));
    b.setLoc("spoil.c", 50);
    Instruction *pool = b.createPmMap("pool585", 4096);
    Instruction *preview = b.createAlloca(256);
    b.createCall(meta_write, {preview, m->getInt(8)});
    b.setLoc("spoil.c", 53);
    b.createCall(meta_write, {pool, m->getInt(16)});
    if (dev_fixed)
        b.createCall(lib.persist, {pool, m->getInt(128)});
    b.createDurPoint("pmdk-585");
    Instruction *w = b.createLoad(pool, 8);
    b.createPrint("meta0", w);
    b.createRet(w);

    verifyOrDie(*m);
    return m;
}

/** pmdk-942: API misuse — ranged object copy without persist. */
std::unique_ptr<Module>
build942(bool dev_fixed)
{
    auto m = std::make_unique<Module>("pmdk-942");
    LibPmem lib = addLibPmem(m.get());
    IRBuilder b(m.get());

    Function *obj_memcpy = m->addFunction("obj_memcpy", Type::Void);
    {
        Argument *dst = obj_memcpy->addParam(Type::Ptr, "dst");
        Argument *src = obj_memcpy->addParam(Type::Ptr, "src");
        Argument *n = obj_memcpy->addParam(Type::Int, "n");
        b.setInsertPoint(obj_memcpy->addBlock("entry"));
        b.setLoc("ut942.c", 10);
        b.createMemcpy(dst, src, n);
        b.createRet();
    }

    Function *main = m->addFunction("test_main", Type::Int);
    b.setInsertPoint(main->addBlock("entry"));
    b.setLoc("ut942.c", 30);
    Instruction *pool = b.createPmMap("pool942", 2048);
    Instruction *input = b.createAlloca(256);
    Instruction *reply = b.createAlloca(256);
    b.createMemset(input, m->getInt(0x42), m->getInt(200));
    b.setLoc("ut942.c", 33);
    b.createCall(obj_memcpy, {pool, input, m->getInt(200)});
    if (dev_fixed)
        b.createCall(lib.persist, {pool, m->getInt(200)});
    // Build the (volatile) reply through the same helper.
    b.createCall(obj_memcpy, {reply, input, m->getInt(200)});
    b.createDurPoint("pmdk-942");
    Instruction *w = b.createLoad(pool, 8);
    b.createPrint("obj0", w);
    b.createRet(w);

    verifyOrDie(*m);
    return m;
}

/** pmdk-945: util_buf field writes via a shared fill helper. */
std::unique_ptr<Module>
build945(bool dev_fixed)
{
    auto m = std::make_unique<Module>("pmdk-945");
    LibPmem lib = addLibPmem(m.get());
    IRBuilder b(m.get());

    Function *buf_fill = m->addFunction("buf_fill", Type::Void);
    {
        Argument *buf = buf_fill->addParam(Type::Ptr, "buf");
        Argument *seed = buf_fill->addParam(Type::Int, "seed");
        b.setInsertPoint(buf_fill->addBlock("entry"));
        b.setLoc("ut945.c", 14);
        b.createStore(seed, buf, 8);
        b.createStore(b.createMul(seed, m->getInt(3)),
                      b.createGep(buf, m->getInt(8)), 8);
        b.createStore(b.createAdd(seed, m->getInt(9)),
                      b.createGep(buf, m->getInt(16)), 8);
        b.createStore(m->getInt(0xB0F),
                      b.createGep(buf, m->getInt(24)), 8);
        b.createRet();
    }

    Function *main = m->addFunction("test_main", Type::Int);
    b.setInsertPoint(main->addBlock("entry"));
    b.setLoc("ut945.c", 40);
    Instruction *pool = b.createPmMap("pool945", 2048);
    Instruction *scratch = b.createAlloca(64);
    b.createCall(buf_fill, {scratch, m->getInt(2)});
    b.setLoc("ut945.c", 42);
    b.createCall(buf_fill, {pool, m->getInt(11)});
    if (dev_fixed)
        b.createCall(lib.persist, {pool, m->getInt(32)});
    b.createDurPoint("pmdk-945");
    Instruction *w = b.createLoad(pool, 8);
    b.createPrint("buf0", w);
    b.createRet(w);

    verifyOrDie(*m);
    return m;
}

/** pmdk-452: "*oid = NULL" — direct store, fence already present. */
std::unique_ptr<Module>
build452(bool dev_fixed)
{
    auto m = std::make_unique<Module>("pmdk-452");
    LibPmem lib = addLibPmem(m.get());
    IRBuilder b(m.get());

    Function *main = m->addFunction("test_main", Type::Int);
    b.setInsertPoint(main->addBlock("entry"));
    b.setLoc("tx.c", 1103);
    Instruction *pool = b.createPmMap("pool452", 2048);
    Instruction *oidp = b.createGep(pool, m->getInt(128));
    // Seed a non-null oid, persisted.
    b.createStore(m->getInt(0xDEAD), oidp, 8);
    b.createFlush(oidp, FlushKind::Clwb);
    b.createFence(FenceKind::Sfence);
    // if_free: clear the oid. Flush forgotten; fence below remains.
    b.setLoc("tx.c", 1107);
    b.createStore(m->getInt(0), oidp, 8);
    if (dev_fixed)
        b.createCall(lib.flush, {oidp, m->getInt(8)});
    b.createFence(FenceKind::Sfence);
    b.createDurPoint("pmdk-452");
    Instruction *w = b.createLoad(oidp, 8);
    b.createPrint("oid", w);
    b.createRet(w);

    verifyOrDie(*m);
    return m;
}

/** pmdk-940: unit-test region write right after mapping. */
std::unique_ptr<Module>
build940(bool dev_fixed)
{
    auto m = std::make_unique<Module>("pmdk-940");
    LibPmem lib = addLibPmem(m.get());
    IRBuilder b(m.get());

    Function *main = m->addFunction("test_main", Type::Int);
    b.setInsertPoint(main->addBlock("entry"));
    b.setLoc("ut940.c", 21);
    Instruction *pool = b.createPmMap("pool940", 2048);
    Instruction *slotp = b.createGep(pool, m->getInt(512));
    b.createStore(m->getInt(0xFACE), slotp, 8);
    if (dev_fixed)
        b.createCall(lib.flush, {slotp, m->getInt(8)});
    b.createFence(FenceKind::Sfence);
    b.createDurPoint("pmdk-940");
    Instruction *w = b.createLoad(slotp, 8);
    b.createPrint("slot", w);
    b.createRet(w);

    verifyOrDie(*m);
    return m;
}

/** pmdk-943: header field update with the fence already placed. */
std::unique_ptr<Module>
build943(bool dev_fixed)
{
    auto m = std::make_unique<Module>("pmdk-943");
    LibPmem lib = addLibPmem(m.get());
    IRBuilder b(m.get());

    Function *main = m->addFunction("test_main", Type::Int);
    b.setInsertPoint(main->addBlock("entry"));
    b.setLoc("ut943.c", 33);
    Instruction *pool = b.createPmMap("pool943", 2048);
    Instruction *verp = b.createGep(pool, m->getInt(40));
    Instruction *old = b.createLoad(verp, 8);
    b.createStore(b.createAdd(old, m->getInt(1)), verp, 8);
    if (dev_fixed)
        b.createCall(lib.flush, {verp, m->getInt(8)});
    b.createFence(FenceKind::Sfence);
    b.createDurPoint("pmdk-943");
    Instruction *w = b.createLoad(verp, 8);
    b.createPrint("version", w);
    b.createRet(w);

    verifyOrDie(*m);
    return m;
}

} // namespace

const std::vector<BugCase> &
pmdkBugCases()
{
    using BK = pmcheck::BugKind;
    using FK = core::FixKind;
    using DS = DevFixStyle;
    static const std::vector<BugCase> cases = {
        {"pmdk-447", "pool header memcpy never persisted",
         BK::MissingFlushFence, DS::InterproceduralFlushFence,
         FK::Interprocedural, "test_main", build447},
        {"pmdk-452", "oid cleared without a flush (Listing 1)",
         BK::MissingFlush, DS::PortableRangedFlush, FK::IntraFlush,
         "test_main", build452},
        {"pmdk-458", "list insert-at-head unflushed publishes",
         BK::MissingFlushFence, DS::InterproceduralFlushFence,
         FK::Interprocedural, "test_main", build458},
        {"pmdk-459", "list insert-at-tail, two frames deep",
         BK::MissingFlushFence, DS::InterproceduralFlushFence,
         FK::Interprocedural, "test_main", build459},
        {"pmdk-460", "list remove: head unlink not persisted",
         BK::MissingFlushFence, DS::InterproceduralFlushFence,
         FK::Interprocedural, "test_main", build460},
        {"pmdk-461", "object user-data copy not persisted",
         BK::MissingFlushFence, DS::InterproceduralFlushFence,
         FK::Interprocedural, "test_main", build461},
        {"pmdk-585", "pool tool metadata writer not persisted",
         BK::MissingFlushFence, DS::InterproceduralFlushFence,
         FK::Interprocedural, "test_main", build585},
        {"pmdk-940", "unit test writes region without flush",
         BK::MissingFlush, DS::PortableRangedFlush, FK::IntraFlush,
         "test_main", build940},
        {"pmdk-942", "ranged object copy without persist",
         BK::MissingFlushFence, DS::InterproceduralFlushFence,
         FK::Interprocedural, "test_main", build942},
        {"pmdk-943", "header version bump without flush",
         BK::MissingFlush, DS::PortableRangedFlush, FK::IntraFlush,
         "test_main", build943},
        {"pmdk-945", "util_buf field writes not persisted",
         BK::MissingFlushFence, DS::InterproceduralFlushFence,
         FK::Interprocedural, "test_main", build945},
    };
    return cases;
}

namespace
{

/** Persisted bytes of every region after a crash at durpoint 0. */
std::vector<uint8_t>
crashImage(ir::Module *m, const std::string &entry)
{
    pmem::PmPool pool(1 << 20);
    vm::VmConfig vc;
    vc.crashAtDurPoint = 0;
    vm::Vm machine(m, &pool, vc);
    machine.run(entry);
    pool.crash();
    std::vector<uint8_t> image;
    for (const auto &[name, region] : pool.regions()) {
        size_t off = image.size();
        image.resize(off + region.size);
        pool.load(region.base, image.data() + off, region.size);
    }
    return image;
}

} // namespace

CaseResult
evaluateCase(const BugCase &c, core::FixerConfig cfg)
{
    CaseResult res;
    res.id = c.id;

    auto buggy = c.build(false);
    {
        pmem::PmPool pool(1 << 20);
        vm::VmConfig vc;
        vc.traceEnabled = true;
        vm::Vm machine(buggy.get(), &pool, vc);
        machine.run(c.entry);
        auto report = pmcheck::analyze(machine.trace());
        res.detected = !report.clean();
        if (res.detected)
            res.foundKind = report.bugs[0].kind;

        core::Fixer fixer(buggy.get(), cfg);
        res.summary = fixer.fix(report, machine.trace(),
                                &machine.dynPointsTo());
    }

    // Re-check the repaired module.
    {
        pmem::PmPool pool(1 << 20);
        vm::VmConfig vc;
        vc.traceEnabled = true;
        vm::Vm machine(buggy.get(), &pool, vc);
        machine.run(c.entry);
        res.fixedClean = pmcheck::analyze(machine.trace()).clean();
    }

    // Classify: interprocedural if any fix hoisted.
    res.hippoKind = core::FixKind::IntraFlush;
    for (const auto &f : res.summary.fixes) {
        if (f.kind == core::FixKind::Interprocedural) {
            res.hippoKind = core::FixKind::Interprocedural;
            break;
        }
        res.hippoKind = f.kind;
    }

    // Developer build must be clean, and both fixed builds must
    // persist the same state across a crash at the durability point.
    auto dev = c.build(true);
    {
        pmem::PmPool pool(1 << 20);
        vm::VmConfig vc;
        vc.traceEnabled = true;
        vm::Vm machine(dev.get(), &pool, vc);
        machine.run(c.entry);
        res.devClean = pmcheck::analyze(machine.trace()).clean();
    }
    res.persistedStateMatches =
        crashImage(buggy.get(), c.entry) ==
        crashImage(dev.get(), c.entry);
    return res;
}

std::vector<CaseResult>
evaluateCases(const std::vector<BugCase> &cases,
              core::FixerConfig cfg)
{
    std::vector<CaseResult> results(cases.size());
    unsigned jobs = support::resolveJobs(cfg.jobs);
    jobs = (unsigned)std::min<size_t>(jobs, cases.size());
    auto one = [&](uint64_t i) {
        results[i] = evaluateCase(cases[i], cfg);
    };
    if (jobs <= 1) {
        for (uint64_t i = 0; i < cases.size(); i++)
            one(i);
    } else {
        support::ThreadPool pool(jobs);
        pool.parallelForEach(0, cases.size(), one);
    }
    return results;
}

} // namespace hippo::apps
