/**
 * @file
 * The PMDK bug corpus: 11 reproductions of the durability bugs from
 * the paper's study (§3, Fig. 1) that the authors could reproduce
 * and fix (§6.1–6.2, Fig. 3). Each case provides a buggy build and a
 * developer-fixed build, plus the metadata needed to regenerate the
 * Fig. 3 qualitative comparison:
 *
 *  - issues 452, 940, 943: Hippocrates inserts an intraprocedural
 *    flush (CLWB); the developers used an interprocedural
 *    libpmem-style ranged flush — functionally equivalent, the
 *    developer fix being more machine-portable;
 *  - issues 447, 458, 459, 460, 461, 585, 942, 945: both Hippocrates
 *    and the developers produce interprocedural flush+fence fixes —
 *    functionally identical.
 */

#ifndef HIPPO_APPS_BUGSUITE_HH
#define HIPPO_APPS_BUGSUITE_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/fixer.hh"
#include "ir/module.hh"
#include "pmcheck/detector.hh"

namespace hippo::apps
{

/** How the PMDK developers fixed the issue. */
enum class DevFixStyle : uint8_t
{
    InterproceduralFlushFence, ///< persistent helper / pmem_persist
    PortableRangedFlush,       ///< pmem_flush range + existing fence
};

const char *devFixStyleName(DevFixStyle s);

/** One corpus entry. */
struct BugCase
{
    std::string id;          ///< e.g. "pmdk-447"
    std::string description;
    pmcheck::BugKind expectedKind;
    DevFixStyle devStyle;
    core::FixKind expectedHippoKind;
    std::string entry; ///< entry function of the reproducer

    /** Build the module; @p dev_fixed selects the developer fix. */
    std::function<std::unique_ptr<ir::Module>(bool dev_fixed)> build;
};

/** The 11 reproduced PMDK cases. */
const std::vector<BugCase> &pmdkBugCases();

/** Outcome of fixing one case and comparing against the developer. */
struct CaseResult
{
    std::string id;
    bool detected = false;       ///< bug found in the buggy build
    pmcheck::BugKind foundKind = pmcheck::BugKind::MissingFlush;
    bool fixedClean = false;     ///< re-check after repair is clean
    core::FixKind hippoKind = core::FixKind::IntraFlush;
    bool devClean = false;       ///< developer build is clean
    bool persistedStateMatches = false; ///< crash-state equivalence
    core::FixSummary summary;
};

/** Run detect -> fix -> re-check -> compare for one case. */
CaseResult evaluateCase(const BugCase &c,
                        core::FixerConfig cfg = {});

/**
 * Evaluate many cases with one worker per bug program (`cfg.jobs`
 * workers; 0 = hardware concurrency). Every case builds, fixes, and
 * re-verifies its own modules/pools/VMs, so results come back in
 * case order and identical to a serial evaluateCase loop.
 */
std::vector<CaseResult>
evaluateCases(const std::vector<BugCase> &cases,
              core::FixerConfig cfg = {});

} // namespace hippo::apps

#endif // HIPPO_APPS_BUGSUITE_HH
