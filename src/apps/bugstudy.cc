#include "apps/bugstudy.hh"

#include <algorithm>

#include "support/strings.hh"

namespace hippo::apps
{

const char *
studyKindName(StudyKind k)
{
    return k == StudyKind::CoreLibraryOrTool ? "Core library/tool bug"
                                             : "API Misuse";
}

const std::vector<StudiedBug> &
studiedBugs()
{
    using K = StudyKind;
    // Group 2 per-issue figures sum to 238 commits / 462 days over
    // 14 issues (mean 17 / 33, max 66); group 4 sums to 10 commits /
    // 75 days over 5 issues (mean 2 / 15, max 38). Overall means:
    // 248/19 = 13 commits, 537/19 = 28 days — Fig. 1's Average row.
    static const std::vector<StudiedBug> bugs = {
        // Core library/tool bugs without tracker effort data.
        {440, K::CoreLibraryOrTool, -1, -1},
        {441, K::CoreLibraryOrTool, -1, -1},
        {444, K::CoreLibraryOrTool, -1, -1},
        // Core library/tool bugs with effort data.
        {442, K::CoreLibraryOrTool, 10, 21},
        {446, K::CoreLibraryOrTool, 14, 30},
        {447, K::CoreLibraryOrTool, 22, 44},
        {448, K::CoreLibraryOrTool, 31, 66},
        {449, K::CoreLibraryOrTool, 9, 12},
        {450, K::CoreLibraryOrTool, 12, 25},
        {452, K::CoreLibraryOrTool, 18, 33},
        {458, K::CoreLibraryOrTool, 25, 48},
        {459, K::CoreLibraryOrTool, 8, 9},
        {460, K::CoreLibraryOrTool, 16, 38},
        {461, K::CoreLibraryOrTool, 21, 52},
        {463, K::CoreLibraryOrTool, 13, 17},
        {465, K::CoreLibraryOrTool, 24, 41},
        {466, K::CoreLibraryOrTool, 15, 26},
        // API misuse without effort data.
        {940, K::ApiMisuse, -1, -1},
        {942, K::ApiMisuse, -1, -1},
        {943, K::ApiMisuse, -1, -1},
        {945, K::ApiMisuse, -1, -1},
        // API misuse with effort data.
        {535, K::ApiMisuse, 1, 8},
        {585, K::ApiMisuse, 2, 15},
        {949, K::ApiMisuse, 3, 38},
        {1103, K::ApiMisuse, 2, 6},
        {1118, K::ApiMisuse, 2, 8},
    };
    return bugs;
}

namespace
{

BugStudyRow
aggregate(const std::vector<const StudiedBug *> &group,
          const std::string &kind)
{
    BugStudyRow row;
    row.kind = kind;
    int commits = 0, days = 0, counted = 0;
    for (const StudiedBug *b : group) {
        if (!row.issues.empty())
            row.issues += ", ";
        row.issues += format("%d", b->issue);
        if (b->hasEffortData()) {
            commits += b->commits;
            days += b->daysOpenToClose;
            row.maxDays = std::max(row.maxDays, b->daysOpenToClose);
            counted++;
        }
    }
    if (counted) {
        row.hasData = true;
        row.avgCommits = (double)commits / counted;
        row.avgDays = (double)days / counted;
    }
    return row;
}

} // namespace

std::vector<BugStudyRow>
bugStudyTable()
{
    std::vector<const StudiedBug *> g1, g2, g3, g4, with_data;
    for (const StudiedBug &b : studiedBugs()) {
        bool core = b.kind == StudyKind::CoreLibraryOrTool;
        if (core && !b.hasEffortData())
            g1.push_back(&b);
        else if (core)
            g2.push_back(&b);
        else if (!b.hasEffortData())
            g3.push_back(&b);
        else
            g4.push_back(&b);
        if (b.hasEffortData())
            with_data.push_back(&b);
    }

    std::vector<BugStudyRow> rows;
    rows.push_back(aggregate(g1, studyKindName(
                                     StudyKind::CoreLibraryOrTool)));
    rows.push_back(aggregate(g2, studyKindName(
                                     StudyKind::CoreLibraryOrTool)));
    rows.push_back(aggregate(g3, studyKindName(StudyKind::ApiMisuse)));
    rows.push_back(aggregate(g4, studyKindName(StudyKind::ApiMisuse)));
    BugStudyRow avg = aggregate(with_data, "Average");
    avg.issues = "Average";
    rows.push_back(avg);
    return rows;
}

} // namespace hippo::apps
