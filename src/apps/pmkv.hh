/**
 * @file
 * pmkv: a Redis-like persistent key-value store written in PMIR, the
 * workload of the paper's §6.3 case study (Fig. 4).
 *
 * Structure mirrors the parts of Redis-pmem that matter for the
 * experiment:
 *  - a persistent append-only value log + bucket-chained hash index
 *    (PM regions "kv.meta", "kv.buckets", "kv.log");
 *  - a shared 8-byte-at-a-time copy loop @buf_copy (the memcpy
 *    analog) used both for persisting values (PM destination) and
 *    for staging requests / building replies (volatile destination);
 *  - a shared checksum helper chain @hdr_checksum -> @u64_store used
 *    on persistent headers *and* on volatile request buffers, giving
 *    the heuristic a two-level hoisting decision;
 *  - per-request volatile staging buffers and statistics, like
 *    Redis's sds/client bookkeeping.
 *
 * Variants:
 *  - FlushFree: all cache-line flushes removed, memory fences kept
 *    (exactly how the paper prepares Redis for Hippocrates, §6.3);
 *  - Manual: developer-written durability via @dev_persist
 *    (pmem_persist analog: ranged flush + fence), the Redis-pmem
 *    baseline.
 */

#ifndef HIPPO_APPS_PMKV_HH
#define HIPPO_APPS_PMKV_HH

#include <cstdint>
#include <memory>

#include "ir/module.hh"

namespace hippo::apps
{

/** Which durability scheme the built module uses. */
enum class PmkvVariant
{
    FlushFree, ///< fences only; input to Hippocrates
    Manual,    ///< developer flushes (Redis-pmem baseline)
};

/** Build-time parameters. */
struct PmkvConfig
{
    PmkvVariant variant = PmkvVariant::FlushFree;
    uint64_t buckets = 4096;          ///< power of two
    uint64_t logCapacity = 8u << 20;  ///< value-log bytes
    uint64_t stagingBytes = 256;      ///< request buffer size
};

/**
 * Build the pmkv module. Entry points (all driven by integer args):
 *  - @kv_init()
 *  - @kv_handle_set(key, vallen), @kv_handle_update(key, vallen)
 *  - @kv_handle_get(key) -> vallen-or-0
 *  - @kv_handle_rmw(key, vallen)
 *  - @kv_handle_scan(key, n) -> values-touched
 *  - @kv_recover() -> valid-entry-count
 */
std::unique_ptr<ir::Module> buildPmkv(const PmkvConfig &cfg = {});

} // namespace hippo::apps

#endif // HIPPO_APPS_PMKV_HH
