#include "apps/pmcache.hh"

#include "ir/builder.hh"
#include "ir/verifier.hh"
#include "support/logging.hh"

namespace hippo::apps
{

using namespace hippo::ir;

namespace
{

/** Item layout (192 bytes = 3 cache lines). */
constexpr uint64_t itNext = 0;    ///< item index + 1 (0 = none)
constexpr uint64_t itKey = 8;
constexpr uint64_t itFlags = 16;
constexpr uint64_t itExptime = 24;
constexpr uint64_t itLru = 32;
constexpr uint64_t itDataLen = 40;
constexpr uint64_t itData = 64;
constexpr uint64_t itemBytes = 192;
constexpr uint64_t dataMax = 128;

/** Meta layout. */
constexpr uint64_t mMagic = 0;
constexpr uint64_t mCursor = 8;
constexpr uint64_t mCount = 16;
constexpr uint64_t metaBytes = 64;

struct Ctx
{
    Module *m;
    IRBuilder b;
    const PmcacheConfig &cfg;

    Function *hash = nullptr;
    Function *slabWrite = nullptr;
    Function *findItem = nullptr;
    Function *touch = nullptr;
    Function *set = nullptr;
    Function *get = nullptr;
    Function *del = nullptr;

    Ctx(Module *mod, const PmcacheConfig &c) : m(mod), b(mod), cfg(c)
    {}

    Constant *ci(uint64_t v) { return m->getInt(v); }
    bool buggy() const { return cfg.seedBugs; }

    Instruction *mapMeta() { return b.createPmMap("mc.meta",
                                                  metaBytes); }
    Instruction *
    mapHash()
    {
        return b.createPmMap("mc.hash", cfg.buckets * 8);
    }
    Instruction *
    mapItems()
    {
        return b.createPmMap("mc.items", cfg.items * itemBytes);
    }
    Instruction *mapStats() { return b.createPmMap("mc.stats", 64); }

    /** Flush+fence a single location (developer fix idiom). */
    void
    devPersist(Value *p)
    {
        b.createFlush(p, FlushKind::Clwb);
        b.createFence(FenceKind::Sfence);
    }

    Instruction *
    roundUp8(Value *v)
    {
        return b.createBin(BinOp::And, b.createAdd(v, ci(7)),
                           ci(~7ULL));
    }
};

void
buildHash(Ctx &c)
{
    Function *f = c.m->addFunction("mc_hash", Type::Int);
    Argument *key = f->addParam(Type::Int, "key");
    IRBuilder &b = c.b;
    b.setInsertPoint(f->addBlock("entry"));
    b.setLoc("pmcache.c", 10);
    Instruction *h = b.createMul(
        b.createBin(BinOp::Xor, key,
                    b.createBin(BinOp::LShr, key, c.ci(17))),
        c.ci(0xc2b2ae3d27d4eb4fULL));
    b.createRet(b.createBin(BinOp::And, h,
                            c.ci(c.cfg.buckets - 1)));
    c.hash = f;
}

/** @slab_write(dst, src, len): shared copy loop (PM and volatile). */
void
buildSlabWrite(Ctx &c)
{
    Function *f = c.m->addFunction("slab_write", Type::Void);
    Argument *dst = f->addParam(Type::Ptr, "dst");
    Argument *src = f->addParam(Type::Ptr, "src");
    Argument *len = f->addParam(Type::Int, "len");
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *loop = f->addBlock("loop");
    BasicBlock *body = f->addBlock("body");
    BasicBlock *exit = f->addBlock("exit");

    IRBuilder &b = c.b;
    b.setInsertPoint(entry);
    b.setLoc("pmcache.c", 20);
    Instruction *iv = b.createAlloca(8);
    b.createStore(c.ci(0), iv, 8);
    b.createBr(loop);
    b.setInsertPoint(loop);
    Instruction *i = b.createLoad(iv, 8);
    b.createCondBr(b.createCmp(CmpPred::Ult, i, len), body, exit);
    b.setInsertPoint(body);
    b.setLoc("pmcache.c", 23);
    Instruction *v = b.createLoad(b.createGep(src, i), 8);
    b.createStore(v, b.createGep(dst, i), 8);
    b.createStore(b.createAdd(i, c.ci(8)), iv, 8);
    b.createBr(loop);
    b.setInsertPoint(exit);
    b.createRet();
    c.slabWrite = f;
}

/** @mc_find(key) -> item pointer offset+1 in slab, 0 on miss. */
void
buildFindItem(Ctx &c)
{
    Function *f = c.m->addFunction("mc_find", Type::Int);
    Argument *key = f->addParam(Type::Int, "key");
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *loop = f->addBlock("loop");
    BasicBlock *check = f->addBlock("check");
    BasicBlock *hit = f->addBlock("hit");
    BasicBlock *step = f->addBlock("step");
    BasicBlock *miss = f->addBlock("miss");

    IRBuilder &b = c.b;
    b.setInsertPoint(entry);
    b.setLoc("pmcache.c", 32);
    Instruction *hashtab = c.mapHash();
    Instruction *items = c.mapItems();
    Instruction *h = b.createCall(c.hash, {key});
    Instruction *cur = b.createAlloca(8);
    b.createStore(
        b.createLoad(b.createGep(hashtab, b.createMul(h, c.ci(8))),
                     8),
        cur, 8);
    b.createBr(loop);

    b.setInsertPoint(loop);
    Instruction *idx1 = b.createLoad(cur, 8);
    b.createCondBr(b.createCmp(CmpPred::Eq, idx1, c.ci(0)), miss,
                   check);

    b.setInsertPoint(check);
    Instruction *item = b.createGep(
        items,
        b.createMul(b.createSub(idx1, c.ci(1)), c.ci(itemBytes)));
    Instruction *ekey =
        b.createLoad(b.createGep(item, c.ci(itKey)), 8);
    b.createCondBr(b.createCmp(CmpPred::Eq, ekey, key), hit, step);

    b.setInsertPoint(hit);
    b.createRet(idx1);

    b.setInsertPoint(step);
    b.createStore(b.createLoad(b.createGep(item, c.ci(itNext)), 8),
                  cur, 8);
    b.createBr(loop);

    b.setInsertPoint(miss);
    b.createRet(c.ci(0));
    c.findItem = f;
}

/** @mc_touch(item): LRU stamp; mc-8 missing-fence in the buggy build. */
void
buildTouch(Ctx &c)
{
    Function *f = c.m->addFunction("mc_touch", Type::Void);
    Argument *item = f->addParam(Type::Ptr, "item");
    IRBuilder &b = c.b;
    b.setInsertPoint(f->addBlock("entry"));
    b.setLoc("pmcache.c", 50);
    Instruction *meta = c.mapMeta();
    Instruction *stamp =
        b.createLoad(b.createGep(meta, c.ci(mCount)), 8);
    Instruction *lrup = b.createGep(item, c.ci(itLru));
    b.createStore(stamp, lrup, 8);
    b.createFlush(lrup, FlushKind::Clwb);
    if (!c.buggy())
        b.createFence(FenceKind::Sfence);
    // mc-8: the CLWB above is never ordered before the durability
    // point without the SFENCE.
    b.createDurPoint("mc-touch");
    b.createRet();
    c.touch = f;
}

void
buildSet(Ctx &c)
{
    Function *f = c.m->addFunction("mc_set", Type::Void);
    Argument *key = f->addParam(Type::Int, "key");
    Argument *flags = f->addParam(Type::Int, "flags");
    Argument *exptime = f->addParam(Type::Int, "exptime");
    Argument *src = f->addParam(Type::Ptr, "src");
    Argument *len = f->addParam(Type::Int, "len");

    IRBuilder &b = c.b;
    b.setInsertPoint(f->addBlock("entry"));
    b.setLoc("pmcache.c", 60);
    Instruction *meta = c.mapMeta();
    Instruction *hashtab = c.mapHash();
    Instruction *items = c.mapItems();

    Instruction *cursorp = b.createGep(meta, c.ci(mCursor));
    Instruction *cursor = b.createLoad(cursorp, 8);
    Instruction *slot = b.createBin(
        BinOp::URem, cursor, c.ci(c.cfg.items)); // ring reuse
    Instruction *item = b.createGep(
        items, b.createMul(slot, c.ci(itemBytes)));
    Instruction *h = b.createCall(c.hash, {key});
    Instruction *bucketp =
        b.createGep(hashtab, b.createMul(h, c.ci(8)));

    // Header line first: link, key, datalen; persisted correctly.
    b.setLoc("pmcache.c", 66);
    Instruction *old_head = b.createLoad(bucketp, 8);
    b.createStore(old_head, b.createGep(item, c.ci(itNext)), 8);
    b.createStore(key, b.createGep(item, c.ci(itKey)), 8);
    b.createStore(len, b.createGep(item, c.ci(itDataLen)), 8);

    // Payload through the shared slab writer.
    b.setLoc("pmcache.c", 70);
    b.createCall(c.slabWrite,
                 {b.createGep(item, c.ci(itData)), src,
                  c.roundUp8(len)});
    // mc-2 (buggy): the payload lines are never flushed.
    if (!c.buggy()) {
        Instruction *iv = b.createAlloca(8);
        BasicBlock *floop = f->addBlock("floop");
        BasicBlock *fbody = f->addBlock("fbody");
        BasicBlock *fdone = f->addBlock("fdone");
        b.createStore(c.ci(0), iv, 8);
        b.createBr(floop);
        b.setInsertPoint(floop);
        Instruction *i = b.createLoad(iv, 8);
        b.createCondBr(b.createCmp(CmpPred::Ult, i,
                                   c.ci(dataMax)),
                       fbody, fdone);
        b.setInsertPoint(fbody);
        b.createFlush(b.createGep(item,
                                  b.createAdd(c.ci(itData), i)),
                      FlushKind::Clwb);
        b.createStore(b.createAdd(i, c.ci(64)), iv, 8);
        b.createBr(floop);
        b.setInsertPoint(fdone);
    }

    // Persist the header line (covers next/key/datalen).
    b.setLoc("pmcache.c", 74);
    b.createFlush(item, FlushKind::Clwb);
    b.createFence(FenceKind::Sfence);

    // Metadata written after the header flush, on the same line —
    // each store below needs its own flush.
    b.setLoc("pmcache.c", 77);
    Instruction *flagsp = b.createGep(item, c.ci(itFlags));
    b.createStore(flags, flagsp, 8); // mc-1
    if (!c.buggy())
        b.createFlush(flagsp, FlushKind::Clwb);
    b.setLoc("pmcache.c", 79);
    Instruction *expp = b.createGep(item, c.ci(itExptime));
    b.createStore(exptime, expp, 8); // mc-3
    if (!c.buggy())
        b.createFlush(expp, FlushKind::Clwb);

    // Publish in the hash chain and bump allocation state.
    b.setLoc("pmcache.c", 82);
    b.createStore(b.createAdd(slot, c.ci(1)), bucketp, 8); // mc-5
    if (!c.buggy())
        b.createFlush(bucketp, FlushKind::Clwb);
    b.setLoc("pmcache.c", 84);
    b.createStore(b.createAdd(cursor, c.ci(1)), cursorp, 8); // mc-6
    if (!c.buggy())
        b.createFlush(cursorp, FlushKind::Clwb);
    b.setLoc("pmcache.c", 86);
    Instruction *countp = b.createGep(meta, c.ci(mCount));
    b.createStore(b.createAdd(b.createLoad(countp, 8), c.ci(1)),
                  countp, 8); // mc-7
    if (!c.buggy())
        b.createFlush(countp, FlushKind::Clwb);

    // Ordering point retained in both builds.
    b.createFence(FenceKind::Sfence);
    b.createDurPoint("mc-set");
    b.createRet();
    c.set = f;
}

void
buildGetDelete(Ctx &c)
{
    IRBuilder &b = c.b;

    // @mc_get(key, out) -> datalen (0 on miss)
    {
        Function *f = c.m->addFunction("mc_get", Type::Int);
        Argument *key = f->addParam(Type::Int, "key");
        Argument *out = f->addParam(Type::Ptr, "out");
        BasicBlock *entry = f->addBlock("entry");
        BasicBlock *hit = f->addBlock("hit");
        BasicBlock *miss = f->addBlock("miss");

        b.setInsertPoint(entry);
        b.setLoc("pmcache.c", 100);
        Instruction *items = c.mapItems();
        Instruction *idx1 = b.createCall(c.findItem, {key});
        b.createCondBr(b.createCmp(CmpPred::Ne, idx1, c.ci(0)), hit,
                       miss);

        b.setInsertPoint(hit);
        Instruction *item = b.createGep(
            items, b.createMul(b.createSub(idx1, c.ci(1)),
                               c.ci(itemBytes)));
        Instruction *dl =
            b.createLoad(b.createGep(item, c.ci(itDataLen)), 8);
        b.createCall(c.slabWrite,
                     {out, b.createGep(item, c.ci(itData)),
                      c.roundUp8(dl)});
        b.createCall(c.touch, {item});
        b.createRet(dl);

        b.setInsertPoint(miss);
        b.createRet(c.ci(0));
        c.get = f;
    }

    // @mc_delete(key) -> 1 if removed (head unlink only: ring slabs
    // keep chains short; deeper links age out with the ring).
    {
        Function *f = c.m->addFunction("mc_delete", Type::Int);
        Argument *key = f->addParam(Type::Int, "key");
        BasicBlock *entry = f->addBlock("entry");
        BasicBlock *have = f->addBlock("have");
        BasicBlock *unlink_head = f->addBlock("unlink_head");
        BasicBlock *miss = f->addBlock("miss");

        b.setInsertPoint(entry);
        b.setLoc("pmcache.c", 120);
        Instruction *hashtab = c.mapHash();
        Instruction *items = c.mapItems();
        Instruction *h = b.createCall(c.hash, {key});
        Instruction *bucketp =
            b.createGep(hashtab, b.createMul(h, c.ci(8)));
        Instruction *head = b.createLoad(bucketp, 8);
        b.createCondBr(b.createCmp(CmpPred::Eq, head, c.ci(0)),
                       miss, have);

        b.setInsertPoint(have);
        Instruction *item = b.createGep(
            items, b.createMul(b.createSub(head, c.ci(1)),
                               c.ci(itemBytes)));
        Instruction *ekey =
            b.createLoad(b.createGep(item, c.ci(itKey)), 8);
        b.createCondBr(b.createCmp(CmpPred::Eq, ekey, key),
                       unlink_head, miss);

        b.setInsertPoint(unlink_head);
        b.setLoc("pmcache.c", 128);
        Instruction *next =
            b.createLoad(b.createGep(item, c.ci(itNext)), 8);
        b.createStore(next, bucketp, 8); // mc-9
        if (!c.buggy()) {
            b.createFlush(bucketp, FlushKind::Clwb);
            b.createFence(FenceKind::Sfence);
        }
        b.createDurPoint("mc-del");
        b.createRet(c.ci(1));

        b.setInsertPoint(miss);
        b.createRet(c.ci(0));
        c.del = f;
    }
}

void
buildInitStatsHandlers(Ctx &c)
{
    IRBuilder &b = c.b;

    // @mc_init()
    {
        Function *f = c.m->addFunction("mc_init", Type::Void);
        BasicBlock *entry = f->addBlock("entry");
        BasicBlock *format = f->addBlock("format");
        BasicBlock *done = f->addBlock("done");

        b.setInsertPoint(entry);
        b.setLoc("pmcache.c", 140);
        Instruction *meta = c.mapMeta();
        Instruction *hashtab = c.mapHash();
        c.mapItems();
        c.mapStats();
        Instruction *magicp = b.createGep(meta, c.ci(mMagic));
        Instruction *magic = b.createLoad(magicp, 8);
        b.createCondBr(
            b.createCmp(CmpPred::Ne, magic, c.ci(0xAC)), format,
            done);

        b.setInsertPoint(format);
        b.setLoc("pmcache.c", 144);
        b.createMemset(hashtab, c.ci(0),
                       c.ci(c.cfg.buckets * 8)); // mc-4
        if (!c.buggy()) {
            BasicBlock *floop = f->addBlock("floop");
            BasicBlock *fbody = f->addBlock("fbody");
            BasicBlock *fdone = f->addBlock("fdone");
            Instruction *iv = b.createAlloca(8);
            b.createStore(c.ci(0), iv, 8);
            b.createBr(floop);
            b.setInsertPoint(floop);
            Instruction *i = b.createLoad(iv, 8);
            b.createCondBr(
                b.createCmp(CmpPred::Ult, i,
                            c.ci(c.cfg.buckets * 8)),
                fbody, fdone);
            b.setInsertPoint(fbody);
            b.createFlush(b.createGep(hashtab, i), FlushKind::Clwb);
            b.createStore(b.createAdd(i, c.ci(64)), iv, 8);
            b.createBr(floop);
            b.setInsertPoint(fdone);
        }
        b.setLoc("pmcache.c", 146);
        b.createStore(c.ci(0),
                      b.createGep(meta, c.ci(mCursor)), 8);
        b.createStore(c.ci(0), b.createGep(meta, c.ci(mCount)), 8);
        b.createStore(c.ci(0xAC), magicp, 8);
        b.createFlush(magicp, FlushKind::Clwb);
        b.createFence(FenceKind::Sfence);
        b.createDurPoint("mc-init");
        b.createBr(done);

        b.setInsertPoint(done);
        b.createRet();
    }

    // @mc_stats_persist()
    {
        Function *f =
            c.m->addFunction("mc_stats_persist", Type::Void);
        b.setInsertPoint(f->addBlock("entry"));
        b.setLoc("pmcache.c", 160);
        Instruction *meta = c.mapMeta();
        Instruction *stats = c.mapStats();
        Instruction *ops =
            b.createLoad(b.createGep(meta, c.ci(mCount)), 8);
        b.createStore(ops, stats, 8); // mc-10
        if (!c.buggy()) {
            b.createFlush(stats, FlushKind::Clwb);
            b.createFence(FenceKind::Sfence);
        }
        b.createDurPoint("mc-stats");
        b.createRet();
    }

    // Handlers with volatile staging.
    {
        Function *f = c.m->addFunction("mc_handle_set", Type::Void);
        Argument *key = f->addParam(Type::Int, "key");
        Argument *len = f->addParam(Type::Int, "len");
        b.setInsertPoint(f->addBlock("entry"));
        b.setLoc("pmcache.c", 170);
        Instruction *staging = b.createAlloca(dataMax);
        b.createMemset(staging,
                       b.createBin(BinOp::And, key, c.ci(0xff)),
                       c.roundUp8(len));
        b.createCall(c.set,
                     {key, c.ci(7), c.ci(1000), staging, len});
        b.createRet();
    }
    {
        Function *f = c.m->addFunction("mc_handle_get", Type::Int);
        Argument *key = f->addParam(Type::Int, "key");
        b.setInsertPoint(f->addBlock("entry"));
        b.setLoc("pmcache.c", 176);
        Instruction *out = b.createAlloca(dataMax);
        b.createRet(b.createCall(c.get, {key, out}));
    }
    {
        Function *f = c.m->addFunction("mc_handle_del", Type::Int);
        Argument *key = f->addParam(Type::Int, "key");
        b.setInsertPoint(f->addBlock("entry"));
        b.setLoc("pmcache.c", 180);
        b.createRet(b.createCall(c.del, {key}));
    }

    // @mc_recover() -> linked item count across all buckets
    {
        Function *f = c.m->addFunction("mc_recover", Type::Int);
        BasicBlock *entry = f->addBlock("entry");
        BasicBlock *bloop = f->addBlock("bloop");
        BasicBlock *bbody = f->addBlock("bbody");
        BasicBlock *chain = f->addBlock("chain");
        BasicBlock *cbody = f->addBlock("cbody");
        BasicBlock *bnext = f->addBlock("bnext");
        BasicBlock *done = f->addBlock("done");

        b.setInsertPoint(entry);
        b.setLoc("pmcache.c", 190);
        Instruction *hashtab = c.mapHash();
        Instruction *items = c.mapItems();
        Instruction *iv = b.createAlloca(8);
        Instruction *cur = b.createAlloca(8);
        Instruction *acc = b.createAlloca(8);
        Instruction *guard = b.createAlloca(8);
        b.createStore(c.ci(0), iv, 8);
        b.createStore(c.ci(0), acc, 8);
        b.createBr(bloop);

        b.setInsertPoint(bloop);
        Instruction *i = b.createLoad(iv, 8);
        b.createCondBr(
            b.createCmp(CmpPred::Ult, i, c.ci(c.cfg.buckets)),
            bbody, done);

        b.setInsertPoint(bbody);
        b.createStore(
            b.createLoad(
                b.createGep(hashtab, b.createMul(i, c.ci(8))), 8),
            cur, 8);
        b.createStore(c.ci(0), guard, 8);
        b.createBr(chain);

        b.setInsertPoint(chain);
        Instruction *idx1 = b.createLoad(cur, 8);
        Instruction *g = b.createLoad(guard, 8);
        Instruction *live = b.createBin(
            BinOp::And, b.createCmp(CmpPred::Ne, idx1, c.ci(0)),
            b.createCmp(CmpPred::Ult, g, c.ci(c.cfg.items)));
        b.createCondBr(live, cbody, bnext);

        b.setInsertPoint(cbody);
        Instruction *item = b.createGep(
            items, b.createMul(b.createSub(idx1, c.ci(1)),
                               c.ci(itemBytes)));
        Instruction *a = b.createLoad(acc, 8);
        b.createStore(b.createAdd(a, c.ci(1)), acc, 8);
        b.createStore(
            b.createLoad(b.createGep(item, c.ci(itNext)), 8), cur,
            8);
        b.createStore(b.createAdd(g, c.ci(1)), guard, 8);
        b.createBr(chain);

        b.setInsertPoint(bnext);
        b.createStore(b.createAdd(i, c.ci(1)), iv, 8);
        b.createBr(bloop);

        b.setInsertPoint(done);
        b.createRet(b.createLoad(acc, 8));
    }

    // @mc_example(n)
    {
        Function *f = c.m->addFunction("mc_example", Type::Int);
        Argument *n = f->addParam(Type::Int, "n");
        BasicBlock *entry = f->addBlock("entry");
        BasicBlock *set_loop = f->addBlock("set_loop");
        BasicBlock *set_body = f->addBlock("set_body");
        BasicBlock *get_loop = f->addBlock("get_loop");
        BasicBlock *get_body = f->addBlock("get_body");
        BasicBlock *del_loop = f->addBlock("del_loop");
        BasicBlock *del_body = f->addBlock("del_body");
        BasicBlock *done = f->addBlock("done");

        b.setInsertPoint(entry);
        b.setLoc("pmcache.c", 210);
        Instruction *iv = b.createAlloca(8);
        Instruction *digest = b.createAlloca(8);
        b.createCall(c.m->findFunction("mc_init"), {});
        b.createStore(c.ci(1), iv, 8);
        b.createStore(c.ci(0), digest, 8);
        b.createBr(set_loop);

        b.setInsertPoint(set_loop);
        Instruction *i = b.createLoad(iv, 8);
        BasicBlock *to_get = f->addBlock("to_get");
        b.createCondBr(b.createCmp(CmpPred::Ule, i, n), set_body,
                       to_get);
        b.setInsertPoint(set_body);
        b.createCall(c.m->findFunction("mc_handle_set"),
                     {i, c.ci(48)});
        b.createStore(b.createAdd(i, c.ci(1)), iv, 8);
        b.createBr(set_loop);

        b.setInsertPoint(to_get);
        b.createStore(c.ci(1), iv, 8);
        b.createBr(get_loop);
        b.setInsertPoint(get_loop);
        Instruction *i2 = b.createLoad(iv, 8);
        BasicBlock *to_del = f->addBlock("to_del");
        b.createCondBr(b.createCmp(CmpPred::Ule, i2, n), get_body,
                       to_del);
        b.setInsertPoint(get_body);
        Instruction *dl = b.createCall(
            c.m->findFunction("mc_handle_get"), {i2});
        Instruction *cur = b.createLoad(digest, 8);
        b.createStore(b.createBin(BinOp::Xor,
                                  b.createMul(cur, c.ci(31)), dl),
                      digest, 8);
        b.createStore(b.createAdd(i2, c.ci(1)), iv, 8);
        b.createBr(get_loop);

        b.setInsertPoint(to_del);
        b.createStore(c.ci(2), iv, 8);
        b.createBr(del_loop);
        b.setInsertPoint(del_loop);
        Instruction *i3 = b.createLoad(iv, 8);
        b.createCondBr(b.createCmp(CmpPred::Ule, i3, n), del_body,
                       done);
        b.setInsertPoint(del_body);
        b.createCall(c.m->findFunction("mc_handle_del"), {i3});
        b.createStore(b.createAdd(i3, c.ci(4)), iv, 8);
        b.createBr(del_loop);

        b.setInsertPoint(done);
        b.createCall(c.m->findFunction("mc_stats_persist"), {});
        Instruction *dg = b.createLoad(digest, 8);
        b.createPrint("mc_digest", dg);
        b.createRet(dg);
    }
}

} // namespace

std::unique_ptr<Module>
buildPmcache(const PmcacheConfig &cfg)
{
    hippo_assert((cfg.buckets & (cfg.buckets - 1)) == 0,
                 "buckets must be a power of two");
    auto m = std::make_unique<Module>(
        cfg.seedBugs ? "pmcache-buggy" : "pmcache-fixed");
    Ctx c(m.get(), cfg);
    buildHash(c);
    buildSlabWrite(c);
    buildFindItem(c);
    buildTouch(c);
    buildSet(c);
    buildGetDelete(c);
    buildInitStatsHandlers(c);
    verifyOrDie(*m);
    return m;
}

} // namespace hippo::apps
