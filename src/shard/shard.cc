#include "shard/shard.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"
#include "support/stopwatch.hh"

namespace hippo::shard
{

namespace
{

constexpr uint64_t fnvOffset = 1469598103934665603ULL;
constexpr uint64_t fnvPrime = 1099511628211ULL;

uint64_t
fnvMix(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; i++) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= fnvPrime;
    }
    return h;
}

} // namespace

// ---------------------------------------------------------------
// Router
// ---------------------------------------------------------------

Router::Router(unsigned shards, uint64_t buckets)
    : shards_(shards), buckets_(buckets)
{
    hippo_assert(shards >= 1, "need at least one shard");
    hippo_assert((shards & (shards - 1)) == 0,
                 "shard count must be a power of two (got %u)",
                 shards);
    hippo_assert((buckets & (buckets - 1)) == 0 && buckets >= shards,
                 "shards must divide the bucket count (%u vs %llu)",
                 shards, (unsigned long long)buckets);
}

uint64_t
Router::bucketFor(uint64_t key, uint64_t buckets)
{
    // The pmkv @hash_key function (src/apps/pmkv.cc), replicated
    // host-side so routing agrees with the store's chaining. The
    // determinism tests cross-check this against the VM.
    uint64_t h = key ^ (key >> 33);
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 29;
    return h & (buckets - 1);
}

unsigned
Router::shardFor(uint64_t key) const
{
    // Whole-bucket ownership: shards_ divides buckets_, so this
    // assigns every key of one hash chain to the same shard.
    return (unsigned)(bucketFor(key, buckets_) & (shards_ - 1));
}

std::vector<std::vector<RoutedOp>>
Router::route(const std::vector<ycsb::Op> &ops)
{
    std::vector<std::vector<RoutedOp>> queues(shards_);
    for (const ycsb::Op &op : ops) {
        stats_.ops++;
        if (op.type == ycsb::OpType::Scan) {
            // Scans span buckets, so they are ALWAYS decomposed
            // into single-key Gets — even at shards == 1 — keeping
            // executed work shard-count invariant.
            for (uint64_t i = 0; i < op.scanLength; i++) {
                ycsb::Op get{ycsb::OpType::Read, op.key + i, 0};
                queues[shardFor(get.key)].push_back(
                    RoutedOp{get, true});
                stats_.subOps++;
                stats_.scanSubOps++;
            }
            continue;
        }
        queues[shardFor(op.key)].push_back(RoutedOp{op, false});
        stats_.subOps++;
    }
    return queues;
}

void
Router::exportMetrics(support::MetricsRegistry &reg,
                      const std::string &prefix) const
{
    reg.counter(prefix + ".ops").inc(stats_.ops);
    reg.counter(prefix + ".subops").inc(stats_.subOps);
    reg.counter(prefix + ".scan_subops").inc(stats_.scanSubOps);
}

// ---------------------------------------------------------------
// ShardedKv
// ---------------------------------------------------------------

/** One shard: private pool + VM + queue + run accumulators. */
struct ShardedKv::Shard
{
    explicit Shard(ir::Module *m, const ShardConfig &cfg)
        : pool(cfg.poolBytes)
    {
        vm::VmConfig vc;
        vc.engine = cfg.engine;
        vm = std::make_unique<vm::Vm>(m, &pool, vc);
    }

    pmem::PmPool pool;
    std::unique_ptr<vm::Vm> vm;
    std::vector<RoutedOp> queue;

    // Per-run accumulators, written only by the worker that owns
    // this shard, read by the caller after the batch drains.
    uint64_t subOps = 0;
    uint64_t opSteps = 0;
    uint64_t scanHits = 0;
    double opNanos = 0;
};

ShardedKv::ShardedKv(ir::Module *module, const ShardConfig &cfg,
                     support::MetricsRegistry *reg)
    : cfg_(cfg),
      module_(module),
      reg_(reg ? reg : &support::MetricsRegistry::global()),
      router_(cfg.shards, cfg.kv.buckets)
{
    shards_.reserve(cfg.shards);
    for (unsigned s = 0; s < cfg.shards; s++)
        shards_.push_back(std::make_unique<Shard>(module, cfg));
    unsigned workers = std::min(support::resolveJobs(cfg.jobs),
                                (unsigned)shards_.size());
    if (workers > 1)
        pool_ = std::make_unique<support::ThreadPool>(workers);
}

ShardedKv::~ShardedKv() = default;

void
ShardedKv::init()
{
    for (auto &sh : shards_) {
        vm::RunResult res = sh->vm->run("kv_init");
        hippo_assert(res.ok(), "kv_init failed: %s",
                     res.diag.c_str());
    }
}

namespace
{

/** Execute one routed sub-op; returns the handler's return value. */
uint64_t
runOp(vm::Vm &vm, const ycsb::Op &op, uint64_t val_len)
{
    using ycsb::OpType;
    vm::RunResult res;
    switch (op.type) {
      case OpType::Insert:
        res = vm.run("kv_handle_set", {op.key, val_len});
        break;
      case OpType::Read:
        res = vm.run("kv_handle_get", {op.key});
        break;
      case OpType::Update:
        res = vm.run("kv_handle_update", {op.key, val_len});
        break;
      case OpType::Scan:
        hippo_panic("Scan reached a shard queue undecomposed");
      case OpType::ReadModifyWrite:
        res = vm.run("kv_handle_rmw", {op.key, val_len});
        break;
    }
    hippo_assert(res.ok(), "kv op failed: %s", res.diag.c_str());
    return res.returnValue;
}

} // namespace

ShardRunStats
ShardedKv::run(const std::vector<ycsb::Op> &ops)
{
    Stopwatch wall;
    auto queues = router_.route(ops);
    for (unsigned s = 0; s < shards_.size(); s++) {
        Shard &sh = *shards_[s];
        sh.queue = std::move(queues[s]);
        sh.subOps = 0;
        sh.opSteps = 0;
        sh.scanHits = 0;
        sh.opNanos = 0;
    }

    support::Histogram &lat =
        reg_->histogram("ycsb.latency.op_ns");
    uint64_t val_len = cfg_.valLen;
    auto drain = [&lat, val_len](Shard &sh) {
        vm::Vm &vm = *sh.vm;
        for (const RoutedOp &r : sh.queue) {
            double t0 = vm.simNanos();
            uint64_t s0 = vm.steps();
            uint64_t ret = runOp(vm, r.op, val_len);
            double dt = vm.simNanos() - t0;
            sh.opSteps += vm.steps() - s0;
            sh.opNanos += dt;
            sh.subOps++;
            if (r.fromScan && ret)
                sh.scanHits++;
            // Rounded to integer ns: integer-valued doubles sum
            // exactly in any order, so the histogram (count, sum,
            // percentiles) stays byte-identical at every jobs
            // setting; raw dt sums would drift in the last ulp
            // with worker interleaving.
            lat.observe(std::floor(dt + 0.5));
        }
        sh.queue.clear();
    };

    if (pool_) {
        // One drain closure per shard, published as a single batch
        // (ThreadPool::submitAll): this is the hot dispatch path.
        std::vector<std::function<void()>> tasks;
        tasks.reserve(shards_.size());
        for (auto &sh : shards_)
            tasks.push_back([&drain, &sh] { drain(*sh); });
        pool_->submitAll(tasks);
    } else {
        for (auto &sh : shards_)
            drain(*sh);
    }

    ShardRunStats stats;
    stats.ops = ops.size();
    double busy_max = 0;
    for (auto &sh : shards_) {
        stats.subOps += sh->subOps;
        stats.opSteps += sh->opSteps;
        stats.scanHits += sh->scanHits;
        stats.opSimNanos += sh->opNanos;
        busy_max = std::max(busy_max, sh->opNanos);
    }
    stats.simSecondsMax = busy_max * 1e-9;
    stats.wallSeconds = wall.elapsedSeconds();

    totals_.ops += stats.ops;
    totals_.subOps += stats.subOps;
    totals_.opSteps += stats.opSteps;
    totals_.scanHits += stats.scanHits;
    totals_.opSimNanos += stats.opSimNanos;
    totals_.simSecondsMax += stats.simSecondsMax;
    totals_.wallSeconds += stats.wallSeconds;
    runs_++;
    return stats;
}

uint64_t
ShardedKv::recoverAll()
{
    uint64_t total = 0;
    for (auto &sh : shards_) {
        vm::RunResult res = sh->vm->run("kv_recover");
        hippo_assert(res.ok(), "kv_recover failed: %s",
                     res.diag.c_str());
        total += res.returnValue;
    }
    return total;
}

uint64_t
ShardedKv::stateDigest(uint64_t key_limit)
{
    // Probe keys in GLOBAL order on the owning shard: the digest
    // depends only on the logical store contents, never on the
    // shard count or drain scheduling.
    uint64_t h = fnvOffset;
    for (uint64_t key = 0; key < key_limit; key++) {
        Shard &sh = *shards_[router_.shardFor(key)];
        vm::RunResult res = sh.vm->run("kv_handle_get", {key});
        hippo_assert(res.ok(), "kv_handle_get failed: %s",
                     res.diag.c_str());
        h = fnvMix(h, key);
        h = fnvMix(h, res.returnValue);
    }
    return h;
}

uint64_t
ShardedKv::mergedRecoveryDigest(uint64_t key_limit)
{
    uint64_t h = fnvOffset;
    h = fnvMix(h, recoverAll());
    h = fnvMix(h, stateDigest(key_limit));
    return h;
}

vm::Vm &
ShardedKv::vmOf(unsigned shard)
{
    hippo_assert(shard < shards_.size(), "shard %u out of range",
                 shard);
    return *shards_[shard]->vm;
}

void
ShardedKv::exportMetrics(support::MetricsRegistry &reg,
                         const std::string &prefix) const
{
    reg.counter(prefix + ".shards").inc(shards_.size());
    reg.counter(prefix + ".runs").inc(runs_);
    reg.counter(prefix + ".ops").inc(totals_.ops);
    reg.counter(prefix + ".subops").inc(totals_.subOps);
    reg.counter(prefix + ".op_steps").inc(totals_.opSteps);
    reg.counter(prefix + ".scan_hits").inc(totals_.scanHits);
    reg.doubleSum(prefix + ".op_sim_ns").add(totals_.opSimNanos);
    router_.exportMetrics(reg, prefix + ".router");
}

// ---------------------------------------------------------------
// Per-shard exploration
// ---------------------------------------------------------------

MergedExploration
exploreShards(ir::Module *m,
              const pmcheck::CrashExplorerConfig &cfg,
              unsigned shards)
{
    hippo_assert(shards >= 1, "need at least one shard");
    MergedExploration merged;
    merged.shardDigests.reserve(shards);
    // Shards explore serially — each exploration already fans out
    // over cfg.jobs internally — and each runs against its own
    // fresh pool/log (exploreCrashes builds pools per replay), so
    // the per-shard results are independent.
    for (unsigned s = 0; s < shards; s++) {
        pmcheck::ExplorationResult res =
            pmcheck::exploreCrashes(m, cfg);
        merged.shardDigests.push_back(
            pmcheck::recoveryDigest(res));
        merged.unverified += res.unverifiedCount();
    }
    merged.consistent =
        std::all_of(merged.shardDigests.begin(),
                    merged.shardDigests.end(),
                    [&](uint64_t d) {
                        return d == merged.shardDigests[0];
                    });
    if (merged.consistent)
        merged.digest = merged.shardDigests[0];
    return merged;
}

} // namespace hippo::shard
