/**
 * @file
 * Shard-per-worker concurrent execution for pmkv: the front-end
 * request router plus the sharded store it feeds.
 *
 * Ownership model (DESIGN.md "Sharded execution"): shard s owns a
 * private PmPool, a private Vm (Bytecode engine by default), and a
 * private pmkv hashtable + append log inside that pool. The only
 * state shared between workers is the ir::Module, which the VM
 * never mutates. There is NO cross-shard mutable state — workers
 * never touch each other's pools, VMs, or queues — so the whole
 * run needs no locks beyond the thread-pool batch handoff.
 *
 * Routing invariant (what makes the perf gates possible): pmkv
 * chains colliding keys per bucket, and the router assigns whole
 * buckets to shards (shard = bucket & (shards-1), with `shards` a
 * power of two dividing the bucket count). Every hash chain
 * therefore lives entirely inside one shard, every shard keeps the
 * full-size bucket array (identical layout at every shard count),
 * and the per-shard op sequence is the source sequence filtered to
 * that shard's buckets. Consequences, relied on by
 * bench_shard_scale and tests/test_shard.cc:
 *
 *  - each op executes the exact same chain walk — hence the same
 *    VM step count and simulated nanoseconds — at ANY shard count;
 *  - aggregate integer op/step counters are byte-identical across
 *    `--shards` x `--jobs`; the per-op latency histogram (rounded
 *    integer sim-ns, so sums are order-independent) is
 *    byte-identical across `--jobs` at any fixed shard count;
 *  - recovery replays each shard's log independently, and the
 *    merged digest (total valid entries + a key-ordered fold of
 *    every key's value length) equals the 1-shard digest.
 *
 * Scans are the one op class that spans buckets: the router always
 * decomposes Scan(key, n) into n single-key Get sub-ops — at every
 * shard count, including 1 — and the driver re-aggregates the hit
 * count host-side, so scan semantics and step counts stay
 * shard-count invariant.
 */

#ifndef HIPPO_SHARD_SHARD_HH
#define HIPPO_SHARD_SHARD_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/kv_driver.hh"
#include "pmcheck/crash_explorer.hh"
#include "support/metrics.hh"
#include "support/thread_pool.hh"
#include "ycsb/concurrent.hh"

namespace hippo::shard
{

/** Geometry and execution knobs of one sharded store. */
struct ShardConfig
{
    /** Shard count: a power of two that divides kv.buckets. */
    unsigned shards = 1;
    /** Worker threads draining shard queues; 0 = all cores. The
     *  effective count is further clamped to `shards`. */
    unsigned jobs = 1;
    uint64_t poolBytes = 32u << 20; ///< per-shard pool capacity
    uint64_t valLen = 100;          ///< value bytes per write op
    /** Per-worker interpreter; Bytecode is the production path,
     *  Tree kept for the differential tests. */
    vm::VmEngine engine = vm::VmEngine::Bytecode;
    apps::PmkvConfig kv; ///< per-shard store geometry
};

/** One routed sub-operation in a shard's FIFO queue. */
struct RoutedOp
{
    ycsb::Op op;
    bool fromScan = false; ///< Get synthesized from a Scan
};

/**
 * Deterministic front-end request router: hash-of-key -> bucket ->
 * shard, with Scan decomposition (see file comment). Stateless per
 * route() call apart from monotonic counters.
 */
class Router
{
  public:
    struct Stats
    {
        uint64_t ops = 0;        ///< source ops routed
        uint64_t subOps = 0;     ///< ops after Scan decomposition
        uint64_t scanSubOps = 0; ///< Gets synthesized from Scans
    };

    /** @p buckets must match the pmkv geometry; @p shards must be
     *  a power of two dividing it. */
    Router(unsigned shards, uint64_t buckets);

    /** The pmkv @hash_key function, replicated host-side. */
    static uint64_t bucketFor(uint64_t key, uint64_t buckets);

    unsigned shardFor(uint64_t key) const;

    /** Fan @p ops out into per-shard FIFO queues. */
    std::vector<std::vector<RoutedOp>>
    route(const std::vector<ycsb::Op> &ops);

    unsigned shards() const { return shards_; }
    const Stats &stats() const { return stats_; }

    /** router.* counters (docs/FORMATS.md §5). */
    void exportMetrics(support::MetricsRegistry &reg,
                       const std::string &prefix = "router") const;

  private:
    unsigned shards_;
    uint64_t buckets_;
    Stats stats_;
};

/** Aggregate result of one ShardedKv::run call. */
struct ShardRunStats
{
    uint64_t ops = 0;      ///< source ops executed
    uint64_t subOps = 0;   ///< after Scan decomposition
    uint64_t opSteps = 0;  ///< VM steps inside op handlers only
    uint64_t scanHits = 0; ///< live keys touched by Scans
    double opSimNanos = 0; ///< summed per-op simulated nanos
    /** Makespan: the largest per-shard simulated busy time — what
     *  a perfectly parallel run would take. Deterministic. */
    double simSecondsMax = 0;
    double wallSeconds = 0; ///< host wall clock (informational)

    /** Simulated ops/s of the parallel run (ops / makespan). */
    double
    throughput() const
    {
        return simSecondsMax > 0 ? ops / simSecondsMax : 0;
    }
};

/**
 * The sharded store: N private (pool, VM, pmkv log) triples behind
 * one Router, drained by a ThreadPool. The module is shared
 * read-only; everything mutable is per-shard (see file comment).
 */
class ShardedKv
{
  public:
    /** @p reg defaults to the global registry; tests pass private
     *  registries for isolation. */
    ShardedKv(ir::Module *module, const ShardConfig &cfg,
              support::MetricsRegistry *reg = nullptr);
    ~ShardedKv();

    ShardedKv(const ShardedKv &) = delete;
    ShardedKv &operator=(const ShardedKv &) = delete;

    /** Run @kv_init on every shard. */
    void init();

    /**
     * Route @p ops and drain every shard queue to completion
     * (one closed-loop round). Per-op simulated latency lands in
     * the `ycsb.latency.op_ns` histogram of the registry.
     */
    ShardRunStats run(const std::vector<ycsb::Op> &ops);

    /** Replay every shard's log independently; returns the total
     *  checksum-valid entry count (shard-count invariant). */
    uint64_t recoverAll();

    /**
     * FNV-1a over (key, value-length) for every key in
     * [0, keyLimit), probed in global key order on the owning
     * shard. Shard-count and jobs invariant.
     */
    uint64_t stateDigest(uint64_t key_limit);

    /** Fold of recoverAll() and stateDigest(): the merged recovery
     *  digest bench_shard_scale compares across shard counts. */
    uint64_t mergedRecoveryDigest(uint64_t key_limit);

    unsigned shards() const { return (unsigned)shards_.size(); }
    const Router &router() const { return router_; }
    vm::Vm &vmOf(unsigned shard);
    const ShardConfig &config() const { return cfg_; }

    /** shard.* counters (docs/FORMATS.md §5). */
    void exportMetrics(support::MetricsRegistry &reg,
                       const std::string &prefix = "shard") const;

  private:
    struct Shard;

    ShardConfig cfg_;
    ir::Module *module_;
    support::MetricsRegistry *reg_;
    Router router_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::unique_ptr<support::ThreadPool> pool_; ///< null when serial
    /** Lifetime totals across run() calls (exportMetrics). */
    ShardRunStats totals_;
    uint64_t runs_ = 0;
};

/** Per-shard crash exploration, merged. */
struct MergedExploration
{
    std::vector<uint64_t> shardDigests; ///< recoveryDigest per shard
    uint64_t unverified = 0;            ///< summed unverified counts
    /** True when every shard digests identically — the expected
     *  state, since each shard runs the same exercise against its
     *  own fresh pool/log. */
    bool consistent = false;
    /** The common digest when consistent (shardDigests[0]); this is
     *  what stays invariant across shard counts. */
    uint64_t digest = 0;
};

/**
 * Run the existing crash explorer once per shard — each exploration
 * executes cfg.entry against that shard's own fresh pool/log and
 * replays recovery from every crash point — and merge the digests.
 * The do-no-harm machinery (detector, static checker, optimizer
 * verify) applies unchanged per shard because each shard is a
 * complete pmkv instance. Shards explore serially; each exploration
 * parallelizes internally over cfg.jobs.
 */
MergedExploration
exploreShards(ir::Module *m, const pmcheck::CrashExplorerConfig &cfg,
              unsigned shards);

} // namespace hippo::shard

#endif // HIPPO_SHARD_SHARD_HH
