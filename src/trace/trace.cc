#include "trace/trace.hh"

#include <map>
#include <sstream>

#include "support/logging.hh"
#include "support/strings.hh"

namespace hippo::trace
{

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::PmMap: return "PMMAP";
      case EventKind::Store: return "STORE";
      case EventKind::Flush: return "FLUSH";
      case EventKind::Fence: return "FENCE";
      case EventKind::DurPoint: return "DURPOINT";
      case EventKind::Output: return "OUTPUT";
    }
    return "?";
}

namespace
{

EventKind
eventKindFromName(const std::string &s, bool &ok)
{
    ok = true;
    if (s == "PMMAP") return EventKind::PmMap;
    if (s == "STORE") return EventKind::Store;
    if (s == "FLUSH") return EventKind::Flush;
    if (s == "FENCE") return EventKind::Fence;
    if (s == "DURPOINT") return EventKind::DurPoint;
    if (s == "OUTPUT") return EventKind::Output;
    ok = false;
    return EventKind::Store;
}

} // namespace

std::string
StackFrame::str() const
{
    return format("%s@%u(%s:%d)", function.c_str(), instrId,
                  file.empty() ? "?" : file.c_str(), line);
}

std::string
stackToString(const std::vector<StackFrame> &stack)
{
    std::string out;
    for (size_t i = 0; i < stack.size(); i++) {
        if (i)
            out += " < ";
        out += stack[i].str();
    }
    return out;
}

bool
stackFromString(const std::string &s, std::vector<StackFrame> &out)
{
    out.clear();
    if (trim(s).empty())
        return true;
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t next = s.find(" < ", pos);
        std::string part(trim(next == std::string::npos
                                  ? s.substr(pos)
                                  : s.substr(pos, next - pos)));
        // func@id(file:line)
        size_t at = part.rfind('@');
        size_t lp = part.find('(', at);
        size_t rp = part.rfind(')');
        if (at == std::string::npos || lp == std::string::npos ||
            rp == std::string::npos || rp < lp)
            return false;
        StackFrame f;
        f.function = part.substr(0, at);
        uint64_t id;
        if (!parseUint(part.substr(at + 1, lp - at - 1), id))
            return false;
        f.instrId = (uint32_t)id;
        std::string loc = part.substr(lp + 1, rp - lp - 1);
        size_t colon = loc.rfind(':');
        if (colon == std::string::npos)
            return false;
        f.file = loc.substr(0, colon);
        if (f.file == "?")
            f.file.clear();
        int64_t ln;
        if (!parseInt(loc.substr(colon + 1), ln))
            return false;
        f.line = (int)ln;
        out.push_back(std::move(f));
        if (next == std::string::npos)
            break;
        pos = next + 3;
    }
    return true;
}

uint32_t
Trace::internObject(const std::string &site, bool is_pm)
{
    for (uint32_t i = 0; i < objects_.size(); i++) {
        if (objects_[i].site == site)
            return i;
    }
    objects_.push_back({site, is_pm});
    return (uint32_t)objects_.size() - 1;
}

Event &
Trace::append(Event ev)
{
    ev.seq = events_.size();
    events_.push_back(std::move(ev));
    return events_.back();
}

void
Trace::clear()
{
    events_.clear();
    objects_.clear();
}

std::string
Trace::writeText() const
{
    std::ostringstream os;
    for (uint32_t i = 0; i < objects_.size(); i++) {
        os << "OBJ " << i << " pm=" << (objects_[i].isPm ? 1 : 0)
           << " site=" << objects_[i].site << "\n";
    }
    for (const Event &e : events_) {
        os << "#" << e.seq << " " << eventKindName(e.kind);
        os << format(" addr=0x%llx size=%llu pm=%d nt=%d sub=%u",
                     (unsigned long long)e.addr,
                     (unsigned long long)e.size, e.isPm ? 1 : 0,
                     e.nonTemporal ? 1 : 0, e.sub);
        // tid/at are omitted when default so single-threaded traces
        // stay byte-identical to the pre-thread format.
        if (e.tid != 0)
            os << " tid=" << e.tid;
        if (e.atomic)
            os << " at=1";
        if (e.objectId != ~0u)
            os << " obj=" << e.objectId;
        if (!e.symbol.empty())
            os << " sym=\"" << e.symbol << "\"";
        if (e.kind == EventKind::Output)
            os << " val=" << e.value;
        os << " | " << stackToString(e.stack) << "\n";
    }
    return os.str();
}

bool
Trace::readText(const std::string &text, Trace &out, std::string *error)
{
    out.clear();
    int line_no = 0;
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = format("trace line %d: %s", line_no, msg.c_str());
        return false;
    };

    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        line_no++;
        std::string_view t = trim(line);
        if (t.empty())
            continue;
        if (startsWith(t, "OBJ ")) {
            auto words = splitWhitespace(t);
            if (words.size() < 4)
                return fail("malformed OBJ");
            TraceObject obj;
            if (!startsWith(words[2], "pm="))
                return fail("OBJ missing pm=");
            obj.isPm = words[2] == "pm=1";
            if (!startsWith(words[3], "site="))
                return fail("OBJ missing site=");
            obj.site = words[3].substr(5);
            out.objects_.push_back(std::move(obj));
            continue;
        }
        if (!startsWith(t, "#"))
            return fail("expected event line");

        size_t bar = line.find(" | ");
        if (bar == std::string::npos)
            return fail("missing stack separator");
        std::string head = line.substr(0, bar);
        std::string stack_str = line.substr(bar + 3);

        auto words = splitWhitespace(head);
        if (words.size() < 2)
            return fail("short event line");
        Event e;
        uint64_t seq;
        if (!parseUint(std::string_view(words[0]).substr(1), seq))
            return fail("bad sequence number");
        bool ok;
        e.kind = eventKindFromName(words[1], ok);
        if (!ok)
            return fail("unknown event kind: " + words[1]);
        for (size_t i = 2; i < words.size(); i++) {
            const std::string &w = words[i];
            auto kv = split(w, '=');
            if (kv.size() != 2)
                return fail("malformed field: " + w);
            uint64_t v = 0;
            if (kv[0] == "sym") {
                std::string s = kv[1];
                if (s.size() >= 2 && s.front() == '"' &&
                    s.back() == '"')
                    s = s.substr(1, s.size() - 2);
                e.symbol = s;
                continue;
            }
            if (!parseUint(kv[1], v))
                return fail("bad value in field: " + w);
            if (kv[0] == "addr")
                e.addr = v;
            else if (kv[0] == "size")
                e.size = v;
            else if (kv[0] == "pm")
                e.isPm = v != 0;
            else if (kv[0] == "nt")
                e.nonTemporal = v != 0;
            else if (kv[0] == "sub")
                e.sub = (uint8_t)v;
            else if (kv[0] == "tid")
                e.tid = (uint32_t)v;
            else if (kv[0] == "at")
                e.atomic = v != 0;
            else if (kv[0] == "obj")
                e.objectId = (uint32_t)v;
            else if (kv[0] == "val")
                e.value = v;
            else
                return fail("unknown field: " + kv[0]);
        }
        if (!stackFromString(stack_str, e.stack))
            return fail("bad stack: " + stack_str);
        // Consumers index objects_ by objectId and read frame()
        // (stack.front()) unconditionally, so a hostile trace must
        // not smuggle in dangling ids or empty stacks.
        if (e.stack.empty())
            return fail("event without a stack");
        if (e.objectId != ~0u && e.objectId >= out.objects_.size())
            return fail(format("object id %u out of range (%zu "
                               "objects)",
                               e.objectId, out.objects_.size()));
        Event &stored = out.append(std::move(e));
        if (stored.seq != seq)
            return fail("non-contiguous sequence numbers");
    }
    return true;
}

} // namespace hippo::trace
