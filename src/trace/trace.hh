/**
 * @file
 * The PM-operation trace interface between bug finders and
 * Hippocrates (paper §4.1): each event carries the source line where
 * it occurred, the full stack trace at the time of the event, and
 * PM-specific information (address/size being modified or flushed,
 * fence kind, durability points). pmemcheck emits this by default;
 * our pmcheck detector consumes it and appends bug records.
 */

#ifndef HIPPO_TRACE_TRACE_HH
#define HIPPO_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hippo::trace
{

/** One call-stack entry; frame 0 is the frame executing the event. */
struct StackFrame
{
    std::string function; ///< function name
    uint32_t instrId = 0; ///< executing/calling instruction id
    std::string file;     ///< source file of that instruction
    int line = 0;         ///< source line of that instruction

    bool operator==(const StackFrame &o) const = default;
    std::string str() const;
};

/** Kinds of trace events. */
enum class EventKind : uint8_t
{
    PmMap,    ///< a persistent region was mapped
    Store,    ///< store (PM or volatile per Event::isPm)
    Flush,    ///< cache-line flush
    Fence,    ///< memory fence
    DurPoint, ///< durability point (the paper's instruction I)
    Output,   ///< program output (print)
};

const char *eventKindName(EventKind k);

/** A memory object (allocation site instance) referenced by events. */
struct TraceObject
{
    std::string site; ///< "pm:<region>" or "<func>#<instrId>"
    bool isPm = false;
};

/** One trace event. */
struct Event
{
    uint64_t seq = 0; ///< global sequence number
    EventKind kind = EventKind::Store;
    uint64_t addr = 0;
    uint64_t size = 0;
    bool isPm = false;
    bool nonTemporal = false;
    bool atomic = false;   ///< store/load from an atomic_* op
    uint8_t sub = 0;       ///< FlushOp / fence kind / MemOrder ordinal
    uint32_t tid = 0;      ///< VM thread id (0 = the main thread)
    uint32_t objectId = ~0u; ///< index into Trace::objects()
    std::string symbol;    ///< region / durpoint label / print label
    uint64_t value = 0;    ///< print value
    std::vector<StackFrame> stack;

    /** Frame executing the event (innermost). */
    const StackFrame &frame() const { return stack.front(); }
};

/**
 * An append-only PM-operation trace plus its object table.
 * Serializes to a line-oriented text format (see writeText) so traces
 * can cross a process boundary exactly as pmemcheck output does.
 */
class Trace
{
  public:
    /** Register an object; returns its id (uniqued by site). */
    uint32_t internObject(const std::string &site, bool is_pm);

    /** Append an event, assigning its sequence number. */
    Event &append(Event ev);

    const std::vector<Event> &events() const { return events_; }
    const std::vector<TraceObject> &objects() const { return objects_; }
    size_t size() const { return events_.size(); }
    const Event &at(size_t i) const { return events_[i]; }
    bool empty() const { return events_.empty(); }
    void clear();

    /** Serialize in the pmemcheck-like text format. */
    std::string writeText() const;

    /**
     * Parse a trace previously produced by writeText.
     * @param error Receives a message on failure.
     * @retval true on success.
     */
    static bool readText(const std::string &text, Trace &out,
                         std::string *error = nullptr);

  private:
    std::vector<Event> events_;
    std::vector<TraceObject> objects_;
};

/**
 * Receiver for a live event stream. The VM can forward events to a
 * sink instead of materializing them in memory, which keeps
 * bug-finding runs of large workloads within bounds (pmemcheck
 * traces reach hundreds of megabytes, §5.1).
 */
class EventSink
{
  public:
    virtual ~EventSink() = default;

    /** One event; seq numbers arrive in order from 0. */
    virtual void onEvent(const Event &event) = 0;
};

/** Render a stack as "f0@i0(file:line) < f1@i1(...) < ...". */
std::string stackToString(const std::vector<StackFrame> &stack);

/** Parse the output of stackToString. @retval true on success. */
bool stackFromString(const std::string &s,
                     std::vector<StackFrame> &out);

} // namespace hippo::trace

#endif // HIPPO_TRACE_TRACE_HH
