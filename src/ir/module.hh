/**
 * @file
 * The PMIR translation unit: owns functions and uniqued constants.
 */

#ifndef HIPPO_IR_MODULE_HH
#define HIPPO_IR_MODULE_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.hh"

namespace hippo::ir
{

/** A whole PMIR program. */
class Module
{
  public:
    explicit Module(std::string name = "module")
        : name_(std::move(name))
    {}

    const std::string &name() const { return name_; }

    /** Create a new function; the name must be unique in the module. */
    Function *addFunction(std::string name, Type return_type);

    /** Find a function by name; null when absent. */
    Function *findFunction(const std::string &name) const;

    const std::vector<std::unique_ptr<Function>> &functions() const
    {
        return functions_;
    }

    /** Uniqued integer constant. */
    Constant *getInt(uint64_t value);

    /** Uniqued null pointer constant. */
    Constant *getNullPtr();

    /** Total instruction count across all functions. */
    size_t instrCount() const;

  private:
    std::string name_;
    std::vector<std::unique_ptr<Function>> functions_;
    std::map<std::string, Function *> byName_;
    std::map<std::pair<int, uint64_t>, std::unique_ptr<Constant>>
        constants_;
};

} // namespace hippo::ir

#endif // HIPPO_IR_MODULE_HH
