/**
 * @file
 * Text serialization of PMIR modules. The format round-trips through
 * Parser (ids included), so traces and bug reports referring to
 * (function, instruction id) stay valid across a print/parse cycle.
 */

#ifndef HIPPO_IR_PRINTER_HH
#define HIPPO_IR_PRINTER_HH

#include <ostream>
#include <string>

namespace hippo::ir
{

class Function;
class Instruction;
class Module;

/** Print @p m in PMIR text form. */
void printModule(const Module &m, std::ostream &os);

/** Print a single function in PMIR text form. */
void printFunction(const Function &f, std::ostream &os);

/** Render one instruction (no trailing newline). */
std::string instructionToString(const Instruction &instr);

/** Convenience: whole module as a string. */
std::string moduleToString(const Module &m);

} // namespace hippo::ir

#endif // HIPPO_IR_PRINTER_HH
