/**
 * @file
 * IRBuilder: the factory API for constructing PMIR, used both by the
 * application builders in src/apps/ and by Hippocrates itself when it
 * materializes fixes. Mirrors the ergonomics of llvm::IRBuilder.
 */

#ifndef HIPPO_IR_BUILDER_HH
#define HIPPO_IR_BUILDER_HH

#include <memory>
#include <string>

#include "ir/module.hh"

namespace hippo::ir
{

/**
 * Stateful instruction factory. Maintains an insertion point (a block
 * plus position) and a current source location that is attached to
 * every created instruction.
 */
class IRBuilder
{
  public:
    explicit IRBuilder(Module *module) : module_(module) {}

    Module *module() const { return module_; }

    /// @name Insertion point control
    /// @{
    /** Append new instructions to the end of @p bb. */
    void setInsertPoint(BasicBlock *bb);

    /** Insert new instructions before @p pos inside @p bb. */
    void setInsertPoint(BasicBlock *bb, BasicBlock::iterator pos);

    /** Insert new instructions immediately after @p instr. */
    void setInsertPointAfter(Instruction *instr);

    /** Insert new instructions immediately before @p instr. */
    void setInsertPointBefore(Instruction *instr);

    BasicBlock *insertBlock() const { return block_; }
    /// @}

    /** Set the source location attached to subsequent instructions. */
    void setLoc(std::string file, int line) { loc_ = {std::move(file), line}; }
    void setLoc(SourceLoc loc) { loc_ = std::move(loc); }
    const SourceLoc &loc() const { return loc_; }

    /// @name Constants
    /// @{
    Constant *getInt(uint64_t v) { return module_->getInt(v); }
    Constant *getNullPtr() { return module_->getNullPtr(); }
    /// @}

    /// @name Instruction factories
    /// @{
    /** Reserve @p bytes of volatile stack memory. */
    Instruction *createAlloca(uint64_t bytes);

    /** Load @p size bytes (1/2/4/8) from @p ptr. */
    Instruction *createLoad(Value *ptr, uint64_t size = 8);

    /** Store the low @p size bytes of @p value to @p ptr. */
    Instruction *createStore(Value *value, Value *ptr,
                             uint64_t size = 8,
                             bool non_temporal = false);

    /** Flush the cache line containing @p ptr. */
    Instruction *createFlush(Value *ptr,
                             FlushKind kind = FlushKind::Clwb);

    /** Issue a memory fence. */
    Instruction *createFence(FenceKind kind = FenceKind::Sfence);

    /** Pointer arithmetic: @p ptr + @p offset bytes. */
    Instruction *createGep(Value *ptr, Value *offset);

    Instruction *createBin(BinOp op, Value *lhs, Value *rhs);
    Instruction *createCmp(CmpPred pred, Value *lhs, Value *rhs);
    Instruction *createSelect(Value *cond, Value *a, Value *b);

    Instruction *createBr(BasicBlock *target);
    Instruction *createCondBr(Value *cond, BasicBlock *if_true,
                              BasicBlock *if_false);

    Instruction *createCall(Function *callee,
                            std::vector<Value *> args);
    Instruction *createRet(Value *value = nullptr);

    /** Map the named persistent region of @p bytes; yields its base. */
    Instruction *createPmMap(std::string region, uint64_t bytes);

    Instruction *createMemcpy(Value *dst, Value *src, Value *len);
    Instruction *createMemset(Value *dst, Value *byte, Value *len);

    /**
     * Durability point: all prior PM stores must be durable when
     * execution reaches this instruction (the paper's @c I).
     */
    Instruction *createDurPoint(std::string label);

    /** Emit (@p label, value) to the program output log. */
    Instruction *createPrint(std::string label, Value *value);

    /** Start a VM thread running @p callee; yields its thread id. */
    Instruction *createThreadSpawn(Function *callee,
                                   std::vector<Value *> args);

    /** Wait for @p tid; yields the thread's return value (0 if the
     *  spawned function returns void). */
    Instruction *createThreadJoin(Value *tid);

    /** Ordered load of @p size bytes from @p ptr. */
    Instruction *createAtomicLoad(Value *ptr, MemOrder order,
                                  uint64_t size = 8);

    /** Ordered store of the low @p size bytes of @p value. */
    Instruction *createAtomicStore(Value *value, Value *ptr,
                                   MemOrder order, uint64_t size = 8);

    /** Ordered read-modify-write; yields the OLD value. */
    Instruction *createAtomicRmw(BinOp op, Value *ptr, Value *value,
                                 MemOrder order, uint64_t size = 8);
    /// @}

    /// @name Common shorthands
    /// @{
    Instruction *createAdd(Value *l, Value *r)
    {
        return createBin(BinOp::Add, l, r);
    }
    Instruction *createSub(Value *l, Value *r)
    {
        return createBin(BinOp::Sub, l, r);
    }
    Instruction *createMul(Value *l, Value *r)
    {
        return createBin(BinOp::Mul, l, r);
    }
    /// @}

  private:
    Instruction *make(Opcode op, Type result_type);
    Instruction *place(std::unique_ptr<Instruction> instr);

    Module *module_;
    BasicBlock *block_ = nullptr;
    BasicBlock::iterator pos_;
    bool atEnd_ = true;
    SourceLoc loc_;
};

} // namespace hippo::ir

#endif // HIPPO_IR_BUILDER_HH
