/**
 * @file
 * Core value hierarchy of PMIR, the small compiler IR this project
 * uses in place of LLVM IR.
 *
 * PMIR is deliberately close to clang -O0 output: it is *not* SSA with
 * phis; mutable locals live in allocas and loops re-execute
 * instructions, overwriting their previous results. Values are 64-bit
 * integers or byte-addressed pointers. This models exactly the surface
 * Hippocrates needs: stores, cache-line flushes, memory fences, calls,
 * and source locations.
 */

#ifndef HIPPO_IR_VALUE_HH
#define HIPPO_IR_VALUE_HH

#include <cstdint>
#include <string>

namespace hippo::ir
{

class Function;

/** PMIR value types: 64-bit integers, pointers, or nothing. */
enum class Type : uint8_t { Void, Int, Ptr };

/** Printable name of a type ("void", "i64", "ptr"). */
const char *typeName(Type t);

/** Discriminator for the Value hierarchy. */
enum class ValueKind : uint8_t { Constant, Argument, Instruction };

/**
 * Base of all PMIR values. A Value is anything that can appear as an
 * instruction operand: constants, function arguments, or the results
 * of other instructions.
 */
class Value
{
  public:
    virtual ~Value() = default;

    ValueKind kind() const { return kind_; }
    Type type() const { return type_; }

    /** Short human-readable spelling used by the printer. */
    virtual std::string displayName() const = 0;

  protected:
    Value(ValueKind kind, Type type) : kind_(kind), type_(type) {}

    /** Late type fixup (parser only). */
    void setType(Type t) { type_ = t; }

  private:
    ValueKind kind_;
    Type type_;
};

/** An integer or pointer literal; uniqued and owned by the Module. */
class Constant : public Value
{
  public:
    Constant(Type type, uint64_t value)
        : Value(ValueKind::Constant, type), value_(value)
    {}

    uint64_t value() const { return value_; }

    std::string displayName() const override;

  private:
    uint64_t value_;
};

/** A formal parameter of a Function. */
class Argument : public Value
{
  public:
    Argument(Type type, std::string name, unsigned index,
             Function *parent)
        : Value(ValueKind::Argument, type), name_(std::move(name)),
          index_(index), parent_(parent)
    {}

    const std::string &name() const { return name_; }
    unsigned index() const { return index_; }
    Function *parent() const { return parent_; }

    std::string displayName() const override { return "%" + name_; }

  private:
    std::string name_;
    unsigned index_;
    Function *parent_;
};

} // namespace hippo::ir

#endif // HIPPO_IR_VALUE_HH
