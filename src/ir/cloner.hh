/**
 * @file
 * Function cloning, the mechanical core of the persistent subprogram
 * transformation (§4.2.4 of the paper): duplicate a function under a
 * new name, remapping arguments, instruction results, and branch
 * targets, with an optional callee-rewrite hook for redirecting calls
 * inside the clone to persistent versions of their callees.
 */

#ifndef HIPPO_IR_CLONER_HH
#define HIPPO_IR_CLONER_HH

#include <functional>
#include <map>
#include <string>

namespace hippo::ir
{

class Function;
class Instruction;
class Value;

/** Result of cloneFunction: the clone plus the old→new value map. */
struct CloneResult
{
    Function *clone = nullptr;
    /** Maps source arguments/instructions to their copies. */
    std::map<const Value *, Value *> valueMap;
    /** Maps source instructions to their copies. */
    std::map<const Instruction *, Instruction *> instrMap;
};

/**
 * Clone @p src into its module under @p new_name.
 *
 * @param src The function to duplicate.
 * @param new_name Unique name for the copy.
 * @param remap_callee Optional hook invoked for every Call in the
 *        clone with the original callee; returning non-null redirects
 *        the cloned call to the returned function.
 */
CloneResult cloneFunction(
    Function *src, const std::string &new_name,
    const std::function<Function *(Function *)> &remap_callee = {});

} // namespace hippo::ir

#endif // HIPPO_IR_CLONER_HH
