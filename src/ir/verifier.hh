/**
 * @file
 * Structural verifier for PMIR modules. Run after construction and
 * again after Hippocrates applies fixes, guaranteeing fixes leave the
 * module well formed.
 */

#ifndef HIPPO_IR_VERIFIER_HH
#define HIPPO_IR_VERIFIER_HH

#include <string>
#include <vector>

namespace hippo::ir
{

class Function;
class Module;

/**
 * Verify @p m; returns a list of human-readable problems (empty when
 * the module is well formed).
 */
std::vector<std::string> verifyModule(const Module &m);

/** Verify one function. */
std::vector<std::string> verifyFunction(const Function &f);

/** Verify and panic with the first problem if any; for tests. */
void verifyOrDie(const Module &m);

} // namespace hippo::ir

#endif // HIPPO_IR_VERIFIER_HH
