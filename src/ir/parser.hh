/**
 * @file
 * Parser for the PMIR text format produced by Printer. Supports the
 * full instruction set including `!id` / `!loc` metadata so modules
 * round-trip with stable instruction ids.
 */

#ifndef HIPPO_IR_PARSER_HH
#define HIPPO_IR_PARSER_HH

#include <memory>
#include <string>
#include <string_view>

namespace hippo::ir
{

class Module;

/**
 * Parse a PMIR module from text.
 *
 * @param text The module source; `;` starts a line comment.
 * @param error Filled with "line N: message" on failure.
 * @return The parsed module, or null on error.
 */
std::unique_ptr<Module> parseModule(std::string_view text,
                                    std::string *error = nullptr);

} // namespace hippo::ir

#endif // HIPPO_IR_PARSER_HH
