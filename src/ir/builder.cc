#include "ir/builder.hh"

#include "support/logging.hh"

namespace hippo::ir
{

void
IRBuilder::setInsertPoint(BasicBlock *bb)
{
    block_ = bb;
    atEnd_ = true;
}

void
IRBuilder::setInsertPoint(BasicBlock *bb, BasicBlock::iterator pos)
{
    block_ = bb;
    pos_ = pos;
    atEnd_ = false;
}

void
IRBuilder::setInsertPointAfter(Instruction *instr)
{
    BasicBlock *bb = instr->parent();
    auto it = bb->iteratorTo(instr);
    ++it;
    setInsertPoint(bb, it);
}

void
IRBuilder::setInsertPointBefore(Instruction *instr)
{
    BasicBlock *bb = instr->parent();
    setInsertPoint(bb, bb->iteratorTo(instr));
}

Instruction *
IRBuilder::make(Opcode op, Type result_type)
{
    hippo_assert(block_, "no insertion point");
    Function *f = block_->parent();
    auto instr = std::make_unique<Instruction>(op, result_type,
                                               f->nextInstrId());
    instr->setLoc(loc_);
    return place(std::move(instr));
}

Instruction *
IRBuilder::place(std::unique_ptr<Instruction> instr)
{
    if (atEnd_)
        return block_->append(std::move(instr));
    return block_->insert(pos_, std::move(instr));
}

Instruction *
IRBuilder::createAlloca(uint64_t bytes)
{
    Instruction *i = make(Opcode::Alloca, Type::Ptr);
    i->setAccessSize(bytes);
    return i;
}

Instruction *
IRBuilder::createLoad(Value *ptr, uint64_t size)
{
    hippo_assert(ptr->type() == Type::Ptr, "load from non-pointer");
    Instruction *i = make(Opcode::Load, Type::Int);
    i->addOperand(ptr);
    i->setAccessSize(size);
    return i;
}

Instruction *
IRBuilder::createStore(Value *value, Value *ptr, uint64_t size,
                       bool non_temporal)
{
    hippo_assert(ptr->type() == Type::Ptr, "store to non-pointer");
    Instruction *i = make(Opcode::Store, Type::Void);
    i->addOperand(value);
    i->addOperand(ptr);
    i->setAccessSize(size);
    i->setNonTemporal(non_temporal);
    return i;
}

Instruction *
IRBuilder::createFlush(Value *ptr, FlushKind kind)
{
    hippo_assert(ptr->type() == Type::Ptr, "flush of non-pointer");
    Instruction *i = make(Opcode::Flush, Type::Void);
    i->addOperand(ptr);
    i->setFlushKind(kind);
    return i;
}

Instruction *
IRBuilder::createFence(FenceKind kind)
{
    Instruction *i = make(Opcode::Fence, Type::Void);
    i->setFenceKind(kind);
    return i;
}

Instruction *
IRBuilder::createGep(Value *ptr, Value *offset)
{
    hippo_assert(ptr->type() == Type::Ptr, "gep of non-pointer");
    Instruction *i = make(Opcode::Gep, Type::Ptr);
    i->addOperand(ptr);
    i->addOperand(offset);
    return i;
}

Instruction *
IRBuilder::createBin(BinOp op, Value *lhs, Value *rhs)
{
    Instruction *i = make(Opcode::Bin, Type::Int);
    i->addOperand(lhs);
    i->addOperand(rhs);
    i->setBinOp(op);
    return i;
}

Instruction *
IRBuilder::createCmp(CmpPred pred, Value *lhs, Value *rhs)
{
    Instruction *i = make(Opcode::Cmp, Type::Int);
    i->addOperand(lhs);
    i->addOperand(rhs);
    i->setCmpPred(pred);
    return i;
}

Instruction *
IRBuilder::createSelect(Value *cond, Value *a, Value *b)
{
    hippo_assert(a->type() == b->type(), "select type mismatch");
    Instruction *i = make(Opcode::Select, a->type());
    i->addOperand(cond);
    i->addOperand(a);
    i->addOperand(b);
    return i;
}

Instruction *
IRBuilder::createBr(BasicBlock *target)
{
    Instruction *i = make(Opcode::Br, Type::Void);
    i->setTarget(0, target);
    return i;
}

Instruction *
IRBuilder::createCondBr(Value *cond, BasicBlock *if_true,
                        BasicBlock *if_false)
{
    Instruction *i = make(Opcode::CondBr, Type::Void);
    i->addOperand(cond);
    i->setTarget(0, if_true);
    i->setTarget(1, if_false);
    return i;
}

Instruction *
IRBuilder::createCall(Function *callee, std::vector<Value *> args)
{
    hippo_assert(callee, "null callee");
    hippo_assert(args.size() == callee->numParams(),
                 "call arity mismatch");
    Instruction *i = make(Opcode::Call, callee->returnType());
    for (Value *a : args)
        i->addOperand(a);
    i->setCallee(callee);
    return i;
}

Instruction *
IRBuilder::createRet(Value *value)
{
    Instruction *i = make(Opcode::Ret, Type::Void);
    if (value)
        i->addOperand(value);
    return i;
}

Instruction *
IRBuilder::createPmMap(std::string region, uint64_t bytes)
{
    Instruction *i = make(Opcode::PmMap, Type::Ptr);
    i->setRegionSize(bytes);
    i->setSymbol(std::move(region));
    return i;
}

Instruction *
IRBuilder::createMemcpy(Value *dst, Value *src, Value *len)
{
    Instruction *i = make(Opcode::Memcpy, Type::Void);
    i->addOperand(dst);
    i->addOperand(src);
    i->addOperand(len);
    return i;
}

Instruction *
IRBuilder::createMemset(Value *dst, Value *byte, Value *len)
{
    Instruction *i = make(Opcode::Memset, Type::Void);
    i->addOperand(dst);
    i->addOperand(byte);
    i->addOperand(len);
    return i;
}

Instruction *
IRBuilder::createDurPoint(std::string label)
{
    Instruction *i = make(Opcode::DurPoint, Type::Void);
    i->setSymbol(std::move(label));
    return i;
}

Instruction *
IRBuilder::createPrint(std::string label, Value *value)
{
    Instruction *i = make(Opcode::Print, Type::Void);
    i->addOperand(value);
    i->setSymbol(std::move(label));
    return i;
}

Instruction *
IRBuilder::createThreadSpawn(Function *callee,
                             std::vector<Value *> args)
{
    hippo_assert(callee, "null spawn callee");
    hippo_assert(args.size() == callee->numParams(),
                 "thread_spawn arity mismatch");
    Instruction *i = make(Opcode::ThreadSpawn, Type::Int);
    for (Value *a : args)
        i->addOperand(a);
    i->setCallee(callee);
    return i;
}

Instruction *
IRBuilder::createThreadJoin(Value *tid)
{
    hippo_assert(tid->type() == Type::Int, "join of non-int tid");
    Instruction *i = make(Opcode::ThreadJoin, Type::Int);
    i->addOperand(tid);
    return i;
}

Instruction *
IRBuilder::createAtomicLoad(Value *ptr, MemOrder order, uint64_t size)
{
    hippo_assert(ptr->type() == Type::Ptr,
                 "atomic load from non-pointer");
    Instruction *i = make(Opcode::AtomicLoad, Type::Int);
    i->addOperand(ptr);
    i->setAccessSize(size);
    i->setMemOrder(order);
    return i;
}

Instruction *
IRBuilder::createAtomicStore(Value *value, Value *ptr, MemOrder order,
                             uint64_t size)
{
    hippo_assert(ptr->type() == Type::Ptr,
                 "atomic store to non-pointer");
    Instruction *i = make(Opcode::AtomicStore, Type::Void);
    i->addOperand(value);
    i->addOperand(ptr);
    i->setAccessSize(size);
    i->setMemOrder(order);
    return i;
}

Instruction *
IRBuilder::createAtomicRmw(BinOp op, Value *ptr, Value *value,
                           MemOrder order, uint64_t size)
{
    hippo_assert(ptr->type() == Type::Ptr,
                 "atomic rmw of non-pointer");
    Instruction *i = make(Opcode::AtomicRmw, Type::Int);
    i->addOperand(ptr);
    i->addOperand(value);
    i->setBinOp(op);
    i->setAccessSize(size);
    i->setMemOrder(order);
    return i;
}

} // namespace hippo::ir
