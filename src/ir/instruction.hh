/**
 * @file
 * PMIR instruction set.
 *
 * Instructions carry a per-function id that is assigned at creation
 * and never reused, so ids remain stable while Hippocrates inserts
 * fixes; trace events and bug reports refer to instructions by
 * (function name, instruction id).
 */

#ifndef HIPPO_IR_INSTRUCTION_HH
#define HIPPO_IR_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/value.hh"

namespace hippo::ir
{

class BasicBlock;
class Function;

/** PMIR opcodes. */
enum class Opcode : uint8_t
{
    Alloca,   ///< reserve stack bytes; result: ptr
    Load,     ///< load accessSize bytes; result: int
    Store,    ///< store accessSize bytes (optionally non-temporal)
    Flush,    ///< cache-line flush (CLWB / CLFLUSHOPT / CLFLUSH)
    Fence,    ///< memory fence (SFENCE / MFENCE)
    Gep,      ///< pointer + byte offset; result: ptr
    Bin,      ///< 64-bit integer arithmetic/logic
    Cmp,      ///< integer comparison; result: int 0/1
    Select,   ///< cond ? a : b
    Br,       ///< unconditional branch
    CondBr,   ///< conditional branch
    Call,     ///< direct call to a Function in this Module
    Ret,      ///< return (optionally with a value)
    PmMap,    ///< map a named persistent-memory region; result: ptr
    Memcpy,   ///< byte copy (dst, src, len)
    Memset,   ///< byte fill (dst, byteval, len)
    DurPoint, ///< durability point: prior PM stores must be durable
    Print,    ///< emit a labelled value to the program's output log

    ThreadSpawn, ///< start a VM thread running a Function; result: tid
    ThreadJoin,  ///< wait for a spawned thread; result: its return value
    AtomicLoad,  ///< ordered load (scheduler-visible); result: int
    AtomicStore, ///< ordered store (scheduler-visible)
    AtomicRmw,   ///< ordered read-modify-write; result: the OLD value
};

/** Printable mnemonic of an opcode. */
const char *opcodeName(Opcode op);

/** Cache-line flush flavors (x86 semantics per Intel SDM). */
enum class FlushKind : uint8_t { Clwb, ClflushOpt, Clflush };

/** Memory fence flavors. */
enum class FenceKind : uint8_t { Sfence, Mfence };

/** Integer binary operators. */
enum class BinOp : uint8_t
{
    Add, Sub, Mul, UDiv, URem, And, Or, Xor, Shl, LShr
};

/** Integer comparison predicates (unsigned and signed orderings). */
enum class CmpPred : uint8_t
{
    Eq, Ne, Ult, Ule, Ugt, Uge, Slt, Sle, Sgt, Sge
};

/** Atomic memory orderings (C11 subset; no consume). */
enum class MemOrder : uint8_t
{
    Relaxed, Acquire, Release, AcqRel, SeqCst
};

/** True when @p o publishes prior writes (release semantics). */
inline bool
isReleaseOrder(MemOrder o)
{
    return o == MemOrder::Release || o == MemOrder::AcqRel ||
           o == MemOrder::SeqCst;
}

const char *flushKindName(FlushKind k);
const char *fenceKindName(FenceKind k);
const char *binOpName(BinOp op);
const char *cmpPredName(CmpPred p);
const char *memOrderName(MemOrder o);

/** Parse a textual ordering token ("acquire", "seq_cst", ...). */
bool parseMemOrder(const std::string &word, MemOrder &out);

/** A source-file location attached to an instruction (`!loc`). */
struct SourceLoc
{
    std::string file;
    int line = 0;

    bool valid() const { return !file.empty(); }
    bool operator==(const SourceLoc &o) const = default;
    std::string str() const;
};

/**
 * A PMIR instruction. One concrete class covers all opcodes; the
 * operand list plus a few immediate fields describe each form. The
 * per-opcode operand layouts are documented on the factory methods of
 * IRBuilder and enforced by the Verifier.
 */
class Instruction : public Value
{
  public:
    Instruction(Opcode op, Type result_type, uint32_t id)
        : Value(ValueKind::Instruction, result_type), op_(op), id_(id)
    {}

    Opcode op() const { return op_; }
    uint32_t id() const { return id_; }

    BasicBlock *parent() const { return parent_; }
    void setParent(BasicBlock *bb) { parent_ = bb; }

    /** Function containing this instruction (via its parent block). */
    Function *function() const;

    const std::vector<Value *> &operands() const { return operands_; }
    Value *operand(size_t i) const { return operands_[i]; }
    size_t numOperands() const { return operands_.size(); }
    void setOperand(size_t i, Value *v) { operands_[i] = v; }
    void addOperand(Value *v) { operands_.push_back(v); }

    const SourceLoc &loc() const { return loc_; }
    void setLoc(SourceLoc loc) { loc_ = std::move(loc); }

    /// @name Immediate fields (meaning depends on opcode)
    /// @{
    /** Load/Store: access size in bytes; Alloca: allocation size. */
    uint64_t accessSize() const { return imm_; }
    void setAccessSize(uint64_t s) { imm_ = s; }

    /** PmMap: region size in bytes. */
    uint64_t regionSize() const { return imm_; }
    void setRegionSize(uint64_t s) { imm_ = s; }

    FlushKind flushKind() const { return (FlushKind)sub_; }
    void setFlushKind(FlushKind k) { sub_ = (uint8_t)k; }

    FenceKind fenceKind() const { return (FenceKind)sub_; }
    void setFenceKind(FenceKind k) { sub_ = (uint8_t)k; }

    BinOp binOp() const { return (BinOp)sub_; }
    void setBinOp(BinOp op) { sub_ = (uint8_t)op; }

    CmpPred cmpPred() const { return (CmpPred)sub_; }
    void setCmpPred(CmpPred p) { sub_ = (uint8_t)p; }

    /** Store: true when this is a non-temporal (streaming) store. */
    bool nonTemporal() const { return flag_; }
    void setNonTemporal(bool nt) { flag_ = nt; }

    /** AtomicLoad/AtomicStore/AtomicRmw: the memory ordering.
     *  Kept out of sub_, which AtomicRmw uses for its BinOp. */
    MemOrder memOrder() const { return (MemOrder)ord_; }
    void setMemOrder(MemOrder o) { ord_ = (uint8_t)o; }
    /// @}

    /** Call: the callee. */
    Function *callee() const { return callee_; }
    void setCallee(Function *f) { callee_ = f; }

    /** Br/CondBr: branch targets (CondBr: [0]=true, [1]=false). */
    BasicBlock *target(unsigned i) const { return targets_[i]; }
    void setTarget(unsigned i, BasicBlock *bb) { targets_[i] = bb; }

    /** PmMap region name / DurPoint label / Print label. */
    const std::string &symbol() const { return symbol_; }
    void setSymbol(std::string s) { symbol_ = std::move(s); }

    /** True for Br, CondBr, and Ret. */
    bool isTerminator() const;

    /** True when this instruction produces a result value. */
    bool hasResult() const { return type() != Type::Void; }

    /** Late result-type fixup used by the text parser. */
    void setResultType(Type t) { setType(t); }

    std::string displayName() const override;

  private:
    Opcode op_;
    uint32_t id_;
    BasicBlock *parent_ = nullptr;
    std::vector<Value *> operands_;
    uint64_t imm_ = 0;
    uint8_t sub_ = 0;
    uint8_t ord_ = 0;
    bool flag_ = false;
    Function *callee_ = nullptr;
    BasicBlock *targets_[2] = {nullptr, nullptr};
    std::string symbol_;
    SourceLoc loc_;
};

} // namespace hippo::ir

#endif // HIPPO_IR_INSTRUCTION_HH
