#include "ir/dominators.hh"

#include <algorithm>

#include "ir/basic_block.hh"
#include "ir/function.hh"
#include "support/logging.hh"

namespace hippo::ir
{

namespace
{

const std::vector<BasicBlock *> kEmptyEdges;

} // namespace

Cfg::Cfg(Function &f) : fn_(f)
{
    for (const auto &bb : f.blocks()) {
        index_[bb.get()] = (uint32_t)blocks_.size();
        blocks_.push_back(bb.get());
    }
    preds_.resize(blocks_.size());
    succs_.resize(blocks_.size());
    for (BasicBlock *bb : blocks_) {
        Instruction *term = bb->terminator();
        if (!term)
            continue;
        unsigned ntargets = term->op() == Opcode::Br      ? 1
                            : term->op() == Opcode::CondBr ? 2
                                                           : 0;
        for (unsigned i = 0; i < ntargets; i++) {
            BasicBlock *to = term->target(i);
            succs_[index_[bb]].push_back(to);
            preds_[index_[to]].push_back(bb);
        }
    }
    // Entry reachability: plain BFS over successors.
    reachable_.assign(blocks_.size(), false);
    if (!blocks_.empty()) {
        std::vector<BasicBlock *> work{blocks_.front()};
        reachable_[0] = true;
        while (!work.empty()) {
            BasicBlock *bb = work.back();
            work.pop_back();
            for (BasicBlock *s : succs_[index_[bb]]) {
                uint32_t i = index_[s];
                if (!reachable_[i]) {
                    reachable_[i] = true;
                    work.push_back(s);
                }
            }
        }
    }
}

const std::vector<BasicBlock *> &
Cfg::preds(const BasicBlock *bb) const
{
    uint32_t i = indexOf(bb);
    return i == ~0u ? kEmptyEdges : preds_[i];
}

const std::vector<BasicBlock *> &
Cfg::succs(const BasicBlock *bb) const
{
    uint32_t i = indexOf(bb);
    return i == ~0u ? kEmptyEdges : succs_[i];
}

bool
Cfg::reachableFromEntry(const BasicBlock *bb) const
{
    uint32_t i = indexOf(bb);
    return i != ~0u && reachable_[i];
}

uint32_t
Cfg::indexOf(const BasicBlock *bb) const
{
    auto it = index_.find(bb);
    return it == index_.end() ? ~0u : it->second;
}

DominatorTree::DominatorTree(const Cfg &cfg, Kind kind) : kind_(kind)
{
    // Traversal graph: the CFG itself rooted at the entry, or the
    // edge-reversed CFG rooted at a virtual exit every Ret block
    // feeds. The virtual exit is block index n.
    const bool post = kind == Kind::PostDominators;
    for (BasicBlock *bb : cfg.blocks()) {
        index_[bb] = (uint32_t)blocks_.size();
        blocks_.push_back(bb);
    }
    const uint32_t n = (uint32_t)blocks_.size();
    const uint32_t vexit = n; // post only
    const uint32_t nnodes = post ? n + 1 : n;
    if (n == 0) {
        return;
    }

    auto traversal_succs = [&](uint32_t i) {
        std::vector<uint32_t> out;
        if (!post) {
            for (BasicBlock *s : cfg.succs(blocks_[i]))
                out.push_back(index_.at(s));
            return out;
        }
        if (i == vexit) {
            for (uint32_t b = 0; b < n; b++) {
                Instruction *term =
                    cfg.blocks()[b]->terminator();
                if (term && term->op() == Opcode::Ret)
                    out.push_back(b);
            }
            return out;
        }
        for (BasicBlock *p : cfg.preds(blocks_[i]))
            out.push_back(index_.at(p));
        return out;
    };
    auto traversal_preds = [&](uint32_t i) {
        std::vector<uint32_t> out;
        if (!post) {
            for (BasicBlock *p : cfg.preds(blocks_[i]))
                out.push_back(index_.at(p));
            return out;
        }
        hippo_assert(i != vexit, "virtual exit has no preds");
        for (BasicBlock *s : cfg.succs(blocks_[i]))
            out.push_back(index_.at(s));
        Instruction *term = blocks_[i]->terminator();
        if (term && term->op() == Opcode::Ret)
            out.push_back(vexit);
        return out;
    };

    const uint32_t root = post ? vexit : 0;

    // Reverse postorder of the traversal graph (iterative DFS).
    std::vector<uint32_t> order;         // postorder
    std::vector<uint32_t> rpoNum(nnodes, kNone);
    {
        std::vector<uint8_t> state(nnodes, 0); // 0 new, 1 open, 2 done
        std::vector<std::pair<uint32_t, size_t>> stack;
        stack.emplace_back(root, 0);
        state[root] = 1;
        while (!stack.empty()) {
            auto &[node, next] = stack.back();
            auto succs = traversal_succs(node);
            if (next < succs.size()) {
                uint32_t s = succs[next++];
                if (state[s] == 0) {
                    state[s] = 1;
                    stack.emplace_back(s, 0);
                }
            } else {
                state[node] = 2;
                order.push_back(node);
                stack.pop_back();
            }
        }
        std::reverse(order.begin(), order.end()); // now RPO
        for (uint32_t i = 0; i < order.size(); i++)
            rpoNum[order[i]] = i;
    }

    // Cooper-Harvey-Kennedy: iterate to fixpoint over RPO.
    std::vector<uint32_t> idom(nnodes, kNone);
    idom[root] = root;
    auto intersect = [&](uint32_t a, uint32_t b) {
        while (a != b) {
            while (rpoNum[a] > rpoNum[b])
                a = idom[a];
            while (rpoNum[b] > rpoNum[a])
                b = idom[b];
        }
        return a;
    };
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t node : order) {
            if (node == root)
                continue;
            uint32_t new_idom = kNone;
            for (uint32_t p : traversal_preds(node)) {
                if (rpoNum[p] == kNone || idom[p] == kNone)
                    continue; // pred outside the traversal
                new_idom = new_idom == kNone ? p
                                             : intersect(p, new_idom);
            }
            if (new_idom != kNone && idom[node] != new_idom) {
                idom[node] = new_idom;
                changed = true;
            }
        }
    }

    // Publish for real blocks only; the virtual exit maps to kNone
    // (idom() answers null for roots).
    idom_.assign(n, kNone);
    depth_.assign(n, 0);
    for (uint32_t i = 0; i < n; i++) {
        if (rpoNum[i] == kNone)
            continue; // outside the tree
        idom_[i] = i == root ? i : idom[i];
    }
    // Depths via repeated idom chasing (chains are short).
    for (uint32_t i = 0; i < n; i++) {
        if (idom_[i] == kNone)
            continue;
        uint32_t d = 0, cur = i;
        while (cur != root && !(post && idom_[cur] == vexit)) {
            uint32_t up = idom_[cur];
            if (post && up == vexit)
                break;
            cur = up;
            d++;
            hippo_assert(d <= n + 1, "idom chain cycle");
        }
        depth_[i] = d;
    }
}

uint32_t
DominatorTree::indexOf(const BasicBlock *bb) const
{
    auto it = index_.find(bb);
    return it == index_.end() ? kNone : it->second;
}

const BasicBlock *
DominatorTree::idom(const BasicBlock *bb) const
{
    uint32_t i = indexOf(bb);
    if (i == kNone || i >= idom_.size() || idom_[i] == kNone)
        return nullptr;
    uint32_t up = idom_[i];
    if (up == i || up >= blocks_.size())
        return nullptr; // root, or post-idom is the virtual exit
    return blocks_[up];
}

bool
DominatorTree::inTree(const BasicBlock *bb) const
{
    uint32_t i = indexOf(bb);
    return i != kNone && i < idom_.size() && idom_[i] != kNone;
}

bool
DominatorTree::dominates(const BasicBlock *a,
                         const BasicBlock *b) const
{
    uint32_t ia = indexOf(a), ib = indexOf(b);
    if (ia == kNone || ib == kNone || idom_[ia] == kNone ||
        idom_[ib] == kNone)
        return false;
    // Walk b up to a's depth, then compare.
    uint32_t cur = ib;
    while (depth_[cur] > depth_[ia]) {
        uint32_t up = idom_[cur];
        if (up == cur || up >= idom_.size())
            return false;
        cur = up;
    }
    return cur == ia;
}

const BasicBlock *
DominatorTree::nearestCommonDominator(const BasicBlock *a,
                                      const BasicBlock *b) const
{
    uint32_t ia = indexOf(a), ib = indexOf(b);
    if (ia == kNone || ib == kNone || idom_[ia] == kNone ||
        idom_[ib] == kNone)
        return nullptr;
    auto parent = [&](uint32_t i) -> uint32_t {
        uint32_t up = idom_[i];
        return (up == i || up >= idom_.size()) ? kNone : up;
    };
    while (ia != ib) {
        if (depth_[ia] < depth_[ib])
            std::swap(ia, ib);
        ia = parent(ia);
        if (ia == kNone)
            return nullptr; // met only at the virtual exit / no NCD
    }
    return blocks_[ia];
}

} // namespace hippo::ir
