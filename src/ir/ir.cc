/**
 * @file
 * Implementations for the PMIR core classes (Value, Instruction,
 * BasicBlock, Function, Module).
 */

#include "ir/module.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace hippo::ir
{

const char *
typeName(Type t)
{
    switch (t) {
      case Type::Void: return "void";
      case Type::Int: return "i64";
      case Type::Ptr: return "ptr";
    }
    return "?";
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Alloca: return "alloca";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Flush: return "flush";
      case Opcode::Fence: return "fence";
      case Opcode::Gep: return "gep";
      case Opcode::Bin: return "bin";
      case Opcode::Cmp: return "cmp";
      case Opcode::Select: return "select";
      case Opcode::Br: return "br";
      case Opcode::CondBr: return "condbr";
      case Opcode::Call: return "call";
      case Opcode::Ret: return "ret";
      case Opcode::PmMap: return "pmmap";
      case Opcode::Memcpy: return "memcpy";
      case Opcode::Memset: return "memset";
      case Opcode::DurPoint: return "durpoint";
      case Opcode::Print: return "print";
      case Opcode::ThreadSpawn: return "thread_spawn";
      case Opcode::ThreadJoin: return "thread_join";
      case Opcode::AtomicLoad: return "atomic_load";
      case Opcode::AtomicStore: return "atomic_store";
      case Opcode::AtomicRmw: return "atomic_rmw";
    }
    return "?";
}

const char *
memOrderName(MemOrder o)
{
    switch (o) {
      case MemOrder::Relaxed: return "relaxed";
      case MemOrder::Acquire: return "acquire";
      case MemOrder::Release: return "release";
      case MemOrder::AcqRel: return "acq_rel";
      case MemOrder::SeqCst: return "seq_cst";
    }
    return "?";
}

bool
parseMemOrder(const std::string &word, MemOrder &out)
{
    for (auto o : {MemOrder::Relaxed, MemOrder::Acquire,
                   MemOrder::Release, MemOrder::AcqRel,
                   MemOrder::SeqCst}) {
        if (word == memOrderName(o)) {
            out = o;
            return true;
        }
    }
    return false;
}

const char *
flushKindName(FlushKind k)
{
    switch (k) {
      case FlushKind::Clwb: return "clwb";
      case FlushKind::ClflushOpt: return "clflushopt";
      case FlushKind::Clflush: return "clflush";
    }
    return "?";
}

const char *
fenceKindName(FenceKind k)
{
    switch (k) {
      case FenceKind::Sfence: return "sfence";
      case FenceKind::Mfence: return "mfence";
    }
    return "?";
}

const char *
binOpName(BinOp op)
{
    switch (op) {
      case BinOp::Add: return "add";
      case BinOp::Sub: return "sub";
      case BinOp::Mul: return "mul";
      case BinOp::UDiv: return "udiv";
      case BinOp::URem: return "urem";
      case BinOp::And: return "and";
      case BinOp::Or: return "or";
      case BinOp::Xor: return "xor";
      case BinOp::Shl: return "shl";
      case BinOp::LShr: return "lshr";
    }
    return "?";
}

const char *
cmpPredName(CmpPred p)
{
    switch (p) {
      case CmpPred::Eq: return "eq";
      case CmpPred::Ne: return "ne";
      case CmpPred::Ult: return "ult";
      case CmpPred::Ule: return "ule";
      case CmpPred::Ugt: return "ugt";
      case CmpPred::Uge: return "uge";
      case CmpPred::Slt: return "slt";
      case CmpPred::Sle: return "sle";
      case CmpPred::Sgt: return "sgt";
      case CmpPred::Sge: return "sge";
    }
    return "?";
}

std::string
SourceLoc::str() const
{
    if (!valid())
        return "<unknown>";
    return format("%s:%d", file.c_str(), line);
}

std::string
Constant::displayName() const
{
    if (type() == Type::Ptr)
        return value() == 0 ? "null" : format("ptr:%llu",
                                              (unsigned long long)value());
    return format("%llu", (unsigned long long)value());
}

std::string
Instruction::displayName() const
{
    return format("%%v%u", id_);
}

Function *
Instruction::function() const
{
    return parent_ ? parent_->parent() : nullptr;
}

bool
Instruction::isTerminator() const
{
    return op_ == Opcode::Br || op_ == Opcode::CondBr ||
           op_ == Opcode::Ret;
}

Instruction *
BasicBlock::terminator() const
{
    if (instrs_.empty())
        return nullptr;
    Instruction *last = instrs_.back().get();
    return last->isTerminator() ? last : nullptr;
}

Instruction *
BasicBlock::append(std::unique_ptr<Instruction> instr)
{
    instr->setParent(this);
    instrs_.push_back(std::move(instr));
    return instrs_.back().get();
}

Instruction *
BasicBlock::insert(iterator pos, std::unique_ptr<Instruction> instr)
{
    instr->setParent(this);
    auto it = instrs_.insert(pos, std::move(instr));
    return it->get();
}

BasicBlock::iterator
BasicBlock::iteratorTo(Instruction *instr)
{
    for (auto it = instrs_.begin(); it != instrs_.end(); ++it) {
        if (it->get() == instr)
            return it;
    }
    hippo_panic("instruction %%v%u not in block %s", instr->id(),
                name_.c_str());
}

void
BasicBlock::erase(Instruction *instr)
{
    instrs_.erase(iteratorTo(instr));
}

Argument *
Function::addParam(Type type, std::string name)
{
    hippo_assert(type != Type::Void, "void parameter");
    params_.push_back(std::make_unique<Argument>(
        type, std::move(name), (unsigned)params_.size(), this));
    return params_.back().get();
}

BasicBlock *
Function::addBlock(std::string name)
{
    blocks_.push_back(
        std::make_unique<BasicBlock>(std::move(name), this));
    return blocks_.back().get();
}

BasicBlock *
Function::findBlock(const std::string &name) const
{
    for (const auto &bb : blocks_) {
        if (bb->name() == name)
            return bb.get();
    }
    return nullptr;
}

Instruction *
Function::findInstr(uint32_t id) const
{
    for (const auto &bb : blocks_) {
        for (const auto &instr : *bb) {
            if (instr->id() == id)
                return instr.get();
        }
    }
    return nullptr;
}

size_t
Function::instrCount() const
{
    size_t n = 0;
    for (const auto &bb : blocks_)
        n += bb->size();
    return n;
}

Function *
Module::addFunction(std::string name, Type return_type)
{
    hippo_assert(!findFunction(name), "duplicate function");
    functions_.push_back(
        std::make_unique<Function>(name, return_type, this));
    Function *f = functions_.back().get();
    byName_[f->name()] = f;
    return f;
}

Function *
Module::findFunction(const std::string &name) const
{
    auto it = byName_.find(name);
    return it == byName_.end() ? nullptr : it->second;
}

Constant *
Module::getInt(uint64_t value)
{
    auto key = std::make_pair((int)Type::Int, value);
    auto it = constants_.find(key);
    if (it == constants_.end()) {
        it = constants_
                 .emplace(key,
                          std::make_unique<Constant>(Type::Int, value))
                 .first;
    }
    return it->second.get();
}

Constant *
Module::getNullPtr()
{
    auto key = std::make_pair((int)Type::Ptr, (uint64_t)0);
    auto it = constants_.find(key);
    if (it == constants_.end()) {
        it = constants_
                 .emplace(key, std::make_unique<Constant>(Type::Ptr, 0))
                 .first;
    }
    return it->second.get();
}

size_t
Module::instrCount() const
{
    size_t n = 0;
    for (const auto &f : functions_)
        n += f->instrCount();
    return n;
}

} // namespace hippo::ir
